package policy_test

import (
	"fmt"
	"log"

	alps "repro"
	"repro/internal/policy"
)

// Example installs the monitor policy: one line turns an object into a
// monitor, with the bodies untouched.
func Example() {
	mgr, icpts := policy.Exclusive("Inc")
	n := 0
	obj, err := alps.New("Counter",
		alps.WithEntry(alps.EntrySpec{Name: "Inc", Results: 1,
			Body: func(inv *alps.Invocation) error {
				n++ // safe: the manager serializes executions
				inv.Return(n)
				return nil
			}}),
		alps.WithManager(mgr, icpts...),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()

	for i := 0; i < 3; i++ {
		res, err := obj.Call("Inc")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res[0])
	}
	// Output:
	// 1
	// 2
	// 3
}
