package policy

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	alps "repro"
)

// tracker counts concurrent executions per entry name.
type tracker struct {
	mu      sync.Mutex
	cur     map[string]int
	peak    map[string]int
	order   []string
	touched int
}

func newTracker() *tracker {
	return &tracker{cur: make(map[string]int), peak: make(map[string]int)}
}

func (tr *tracker) body(name string, hold time.Duration) alps.Body {
	return func(inv *alps.Invocation) error {
		tr.mu.Lock()
		tr.cur[name]++
		tr.touched++
		if tr.cur[name] > tr.peak[name] {
			tr.peak[name] = tr.cur[name]
		}
		tr.order = append(tr.order, name)
		tr.mu.Unlock()
		if hold > 0 {
			time.Sleep(hold)
		}
		tr.mu.Lock()
		tr.cur[name]--
		tr.mu.Unlock()
		return nil
	}
}

func (tr *tracker) totalPeak() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	total := 0
	for _, p := range tr.peak {
		total += p
	}
	return total
}

func callAll(t *testing.T, obj *alps.Object, entry string, n int) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := obj.Call(entry); err != nil {
				t.Errorf("Call(%s): %v", entry, err)
			}
		}()
	}
	wg.Wait()
}

func TestExclusiveIsAMonitor(t *testing.T) {
	tr := newTracker()
	mgr, icpts := Exclusive("A", "B")
	obj, err := alps.New("Mon",
		alps.WithEntry(alps.EntrySpec{Name: "A", Array: 4, Body: tr.body("A", time.Millisecond)}),
		alps.WithEntry(alps.EntrySpec{Name: "B", Array: 4, Body: tr.body("B", time.Millisecond)}),
		alps.WithManager(mgr, icpts...),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); callAll(t, obj, "A", 10) }()
	go func() { defer wg.Done(); callAll(t, obj, "B", 10) }()
	wg.Wait()
	// Monitor semantics: never more than one body inside, across entries.
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.peak["A"] > 1 || tr.peak["B"] > 1 {
		t.Fatalf("peaks %v exceed monitor exclusion", tr.peak)
	}
	if tr.touched != 20 {
		t.Fatalf("executed %d calls, want 20", tr.touched)
	}
}

func TestFIFOOrdersAcrossEntries(t *testing.T) {
	var mu sync.Mutex
	var served []uint64
	seen := func(a *alps.Accepted) {
		mu.Lock()
		served = append(served, a.CallID())
		mu.Unlock()
	}
	// Wrap FIFO manually so we can observe acceptance order.
	obj, err := alps.New("Fifo",
		alps.WithEntry(alps.EntrySpec{Name: "A", Array: 8, Body: func(inv *alps.Invocation) error { return nil }}),
		alps.WithEntry(alps.EntrySpec{Name: "B", Array: 8, Body: func(inv *alps.Invocation) error { return nil }}),
		alps.WithManager(func(m *alps.Mgr) {
			// Give all callers time to enqueue, then serve FIFO.
			for m.Pending("A")+m.Pending("B") < 8 {
				time.Sleep(time.Millisecond)
			}
			_ = m.Loop(
				alps.OnAccept("A", func(a *alps.Accepted) { seen(a); _, _ = m.Execute(a) }).
					PriAccept(func(a *alps.Accepted) int { return int(a.CallID()) }),
				alps.OnAccept("B", func(a *alps.Accepted) { seen(a); _, _ = m.Execute(a) }).
					PriAccept(func(a *alps.Accepted) int { return int(a.CallID()) }),
			)
		}, alps.Intercept("A"), alps.Intercept("B")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		entry := "A"
		if i%2 == 1 {
			entry = "B"
		}
		go func(entry string) {
			defer wg.Done()
			if _, err := obj.Call(entry); err != nil {
				t.Errorf("Call: %v", err)
			}
		}(entry)
		time.Sleep(2 * time.Millisecond) // stagger arrivals for a defined order
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(served); i++ {
		if served[i] < served[i-1] {
			t.Fatalf("service order %v not FIFO by arrival", served)
		}
	}
	if len(served) != 8 {
		t.Fatalf("served %d, want 8", len(served))
	}
}

func TestFIFOPolicyRuns(t *testing.T) {
	tr := newTracker()
	mgr, icpts := FIFO("A")
	obj, err := alps.New("Fifo2",
		alps.WithEntry(alps.EntrySpec{Name: "A", Array: 4, Body: tr.body("A", 0)}),
		alps.WithManager(mgr, icpts...),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	callAll(t, obj, "A", 20)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.touched != 20 {
		t.Fatalf("executed %d, want 20", tr.touched)
	}
}

func TestConcurrentLimits(t *testing.T) {
	tr := newTracker()
	mgr, icpts := Concurrent(map[string]int{"A": 3, "B": 1})
	obj, err := alps.New("Ser",
		alps.WithEntry(alps.EntrySpec{Name: "A", Array: 8, Body: tr.body("A", 2*time.Millisecond)}),
		alps.WithEntry(alps.EntrySpec{Name: "B", Array: 8, Body: tr.body("B", 2*time.Millisecond)}),
		alps.WithManager(mgr, icpts...),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); callAll(t, obj, "A", 15) }()
	go func() { defer wg.Done(); callAll(t, obj, "B", 15) }()
	wg.Wait()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.peak["A"] > 3 {
		t.Fatalf("A peak %d > limit 3", tr.peak["A"])
	}
	if tr.peak["B"] > 1 {
		t.Fatalf("B peak %d > limit 1", tr.peak["B"])
	}
	if tr.peak["A"] < 2 {
		t.Fatalf("A peak %d; limit 3 never exploited", tr.peak["A"])
	}
}

func TestConcurrentLimitBelowOne(t *testing.T) {
	tr := newTracker()
	mgr, icpts := Concurrent(map[string]int{"A": 0}) // clamped to 1
	obj, err := alps.New("Ser2",
		alps.WithEntry(alps.EntrySpec{Name: "A", Array: 4, Body: tr.body("A", time.Millisecond)}),
		alps.WithManager(mgr, icpts...),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	callAll(t, obj, "A", 6)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.peak["A"] > 1 {
		t.Fatalf("A peak %d despite clamped limit", tr.peak["A"])
	}
}

func TestReadersWritersPolicy(t *testing.T) {
	var cur, peak, writerIn, violations atomic.Int64
	readBody := func(inv *alps.Invocation) error {
		if writerIn.Load() > 0 {
			violations.Add(1)
		}
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	}
	writeBody := func(inv *alps.Invocation) error {
		if cur.Load() > 0 || writerIn.Add(1) > 1 {
			violations.Add(1)
		}
		time.Sleep(time.Millisecond)
		writerIn.Add(-1)
		return nil
	}
	mgr, icpts := ReadersWriters("R", "W", 3)
	obj, err := alps.New("RW",
		alps.WithEntry(alps.EntrySpec{Name: "R", Array: 3, Body: readBody}),
		alps.WithEntry(alps.EntrySpec{Name: "W", Array: 2, Body: writeBody}),
		alps.WithManager(mgr, icpts...),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); callAll(t, obj, "R", 30) }()
	go func() { defer wg.Done(); callAll(t, obj, "W", 10) }()
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d exclusion violations", v)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak readers %d > 3", p)
	}
}

func TestPipelineCyclicOrder(t *testing.T) {
	tr := newTracker()
	mgr, icpts := Pipeline("First", "Second", "Third")
	obj, err := alps.New("Pipe",
		alps.WithEntry(alps.EntrySpec{Name: "First", Array: 4, Body: tr.body("First", 0)}),
		alps.WithEntry(alps.EntrySpec{Name: "Second", Array: 4, Body: tr.body("Second", 0)}),
		alps.WithEntry(alps.EntrySpec{Name: "Third", Array: 4, Body: tr.body("Third", 0)}),
		alps.WithManager(mgr, icpts...),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	const rounds = 5
	var wg sync.WaitGroup
	for _, name := range []string{"Third", "First", "Second"} { // deliberately out of order
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			callAll(t, obj, name, rounds)
		}(name)
	}
	wg.Wait()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	want := []string{"First", "Second", "Third"}
	if len(tr.order) != 3*rounds {
		t.Fatalf("executed %d, want %d", len(tr.order), 3*rounds)
	}
	for i, name := range tr.order {
		if name != want[i%3] {
			t.Fatalf("execution order %v violates the pipeline at %d", tr.order, i)
		}
	}
}
