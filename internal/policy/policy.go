// Package policy provides prebuilt manager processes for common
// synchronization abstractions. The paper positions the manager as "a
// generalization of the well-known synchronization abstractions monitor,
// serializer and path expressions" (§1); this package makes the claim
// concrete: each abstraction is a few lines of manager code, installable
// with alps.WithManager(policy.Xxx(...), intercepts...).
//
// Every policy returns a manager function plus the intercepts clause it
// needs, so installation is one call:
//
//	mgr, icpts := policy.Exclusive("Deposit", "Remove")
//	obj, err := alps.New("Buffer",
//	    alps.WithEntry(...),
//	    alps.WithManager(mgr, icpts...),
//	)
package policy

import (
	alps "repro"
)

// Exclusive is the monitor policy: each accepted call executes to
// completion before another is accepted, across all listed entries
// ("Monitor-like mutual exclusion can be implemented by programming the
// manager to execute each request to completion before accepting another
// request", §1).
func Exclusive(entries ...string) (func(*alps.Mgr), []alps.InterceptSpec) {
	return func(m *alps.Mgr) {
		guards := make([]alps.Guard, 0, len(entries))
		for _, name := range entries {
			guards = append(guards, alps.OnAccept(name, func(a *alps.Accepted) {
				_, _ = m.Execute(a)
			}))
		}
		_ = m.Loop(guards...)
	}, intercepts(entries)
}

// FIFO is the strict arrival-order policy: calls across all listed entries
// execute one at a time, in exactly the order they arrived at the object.
// It is expressed entirely with run-time priorities: pri = arrival
// sequence number (§2.4).
func FIFO(entries ...string) (func(*alps.Mgr), []alps.InterceptSpec) {
	return func(m *alps.Mgr) {
		guards := make([]alps.Guard, 0, len(entries))
		for _, name := range entries {
			guards = append(guards, alps.OnAccept(name, func(a *alps.Accepted) {
				_, _ = m.Execute(a)
			}).PriAccept(func(a *alps.Accepted) int { return int(a.CallID()) }))
		}
		_ = m.Loop(guards...)
	}, intercepts(entries)
}

// Concurrent is the serializer-style policy: each entry runs with at most
// its configured number of simultaneous executions ("The manager can be
// programmed to allow multiple users to access the resource simultaneously
// — a facility sought in the design of the serializer mechanism", §1).
// Entries map to their concurrency limits; a limit below 1 is treated as 1.
func Concurrent(limits map[string]int) (func(*alps.Mgr), []alps.InterceptSpec) {
	names := make([]string, 0, len(limits))
	for name := range limits {
		names = append(names, name)
	}
	return func(m *alps.Mgr) {
		active := make(map[string]int, len(limits))
		guards := make([]alps.Guard, 0, 2*len(limits))
		for name, limit := range limits {
			if limit < 1 {
				limit = 1
			}
			name, limit := name, limit
			guards = append(guards,
				alps.OnAccept(name, func(a *alps.Accepted) {
					if err := m.Start(a); err == nil {
						active[name]++
					}
				}).When(func(*alps.Accepted) bool { return active[name] < limit }),
				alps.OnAwait(name, func(aw *alps.Awaited) {
					if err := m.Finish(aw); err == nil {
						active[name]--
					}
				}),
			)
		}
		_ = m.Loop(guards...)
	}, intercepts(names)
}

// ReadersWriters is the §2.5.1 policy over arbitrary entry names: readers
// share (up to readMax simultaneously), writers exclude everyone, and the
// writer-turn alternation prevents starvation on both sides.
func ReadersWriters(readEntry, writeEntry string, readMax int) (func(*alps.Mgr), []alps.InterceptSpec) {
	if readMax < 1 {
		readMax = 1
	}
	return func(m *alps.Mgr) {
		readCount := 0
		writerLast := false
		_ = m.Loop(
			alps.OnAccept(readEntry, func(a *alps.Accepted) {
				if err := m.Start(a); err == nil {
					readCount++
				}
			}).When(func(*alps.Accepted) bool {
				return readCount < readMax && (m.Pending(writeEntry) == 0 || writerLast)
			}),
			alps.OnAwait(readEntry, func(aw *alps.Awaited) {
				if err := m.Finish(aw); err == nil {
					readCount--
					writerLast = false
				}
			}),
			alps.OnAccept(writeEntry, func(a *alps.Accepted) {
				if _, err := m.Execute(a); err == nil {
					writerLast = true
				}
			}).When(func(*alps.Accepted) bool {
				return readCount == 0 && (m.Pending(readEntry) == 0 || !writerLast)
			}),
		)
	}, intercepts([]string{readEntry, writeEntry})
}

// Pipeline enforces a strict cyclic order over the listed entries: one
// execution of entries[0], then one of entries[1], ..., wrapping around —
// the manager expression of the path "e1; e2; ...; en" (§1's path
// expressions; see internal/pathexpr for the general compiler).
func Pipeline(entries ...string) (func(*alps.Mgr), []alps.InterceptSpec) {
	return func(m *alps.Mgr) {
		turn := 0
		guards := make([]alps.Guard, 0, len(entries))
		for i, name := range entries {
			i := i
			guards = append(guards, alps.OnAccept(name, func(a *alps.Accepted) {
				if _, err := m.Execute(a); err == nil {
					turn = (turn + 1) % len(entries)
				}
			}).When(func(*alps.Accepted) bool { return turn == i }))
		}
		_ = m.Loop(guards...)
	}, intercepts(entries)
}

func intercepts(entries []string) []alps.InterceptSpec {
	out := make([]alps.InterceptSpec, len(entries))
	for i, name := range entries {
		out[i] = alps.Intercept(name)
	}
	return out
}
