package simnet

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestKillSeversEndpoint: killing an endpoint breaks every connection
// touching it — both peers observe the break, in-flight bytes are lost —
// and dials to the dead address fail.
func TestKillSeversEndpoint(t *testing.T) {
	n := New(Config{})
	lis, err := n.Listen("nodeB")
	if err != nil {
		t.Fatal(err)
	}
	dial := func(from string) (client, server net.Conn) {
		t.Helper()
		accepted := make(chan net.Conn, 1)
		go func() {
			c, err := lis.Accept()
			if err != nil {
				close(accepted)
				return
			}
			accepted <- c
		}()
		client, err := n.DialFrom(from, "nodeB")
		if err != nil {
			t.Fatal(err)
		}
		server, ok := <-accepted
		if !ok {
			t.Fatal("accept failed")
		}
		return client, server
	}
	c1, s1 := dial("clientA")
	c2, s2 := dial("clientC")

	// Bytes in flight at the moment of death must not be delivered.
	if _, err := c1.Write([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if severed := n.Kill("nodeB"); severed != 2 {
		t.Fatalf("Kill severed %d connections, want 2", severed)
	}
	for _, c := range []net.Conn{c1, s1, c2, s2} {
		c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		buf := make([]byte, 8)
		if _, err := c.Read(buf); err == nil {
			t.Fatal("read on a killed endpoint's connection succeeded")
		}
		if _, err := c.Write([]byte("x")); err == nil {
			t.Fatal("write on a killed endpoint's connection succeeded")
		}
	}
	if _, err := n.Dial("nodeB"); err == nil {
		t.Fatal("dial to a dead endpoint succeeded")
	}
	kills, _, _ := n.Stats()
	if kills != 2 {
		t.Fatalf("Stats kills = %d, want 2", kills)
	}
}

// TestKillThenRestartSameAddress: the crash-restart primitive. After Kill,
// Listen with the same name revives the endpoint at the same address;
// fresh dials reach the new incarnation while connections from before the
// crash stay dead.
func TestKillThenRestartSameAddress(t *testing.T) {
	n := New(Config{})
	c1, _ := fpair(t, n, "clientA", "nodeB")
	n.Kill("nodeB")

	lis, err := n.Listen("nodeB")
	if err != nil {
		t.Fatalf("restart at the same address: %v", err)
	}
	defer lis.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	c2, err := n.DialFrom("clientA", "nodeB")
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	s2, ok := <-accepted
	if !ok {
		t.Fatal("restarted listener did not accept")
	}
	// New incarnation works end to end.
	if _, err := c2.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	s2.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := s2.Read(buf); err != nil {
		t.Fatalf("read on restarted endpoint: %v", err)
	}
	// Pre-crash connection is still dead: reconnection is explicit.
	if _, err := c1.Write([]byte("zombie")); err == nil {
		t.Fatal("pre-crash connection wrote through the restart")
	}
}

// TestKillUnknownEndpoint: killing an endpoint with no listener and no
// connections is a no-op, not a panic — chaos schedules may fire at
// already-dead targets.
func TestKillUnknownEndpoint(t *testing.T) {
	n := New(Config{})
	if severed := n.Kill("ghost"); severed != 0 {
		t.Fatalf("Kill(ghost) severed %d, want 0", severed)
	}
}

// TestKillIsDeterministicWithSeededChaos: explicit kills do not consume
// from the seeded fault stream, so a schedule of Kill calls layered on a
// seeded network leaves the probabilistic decisions unchanged.
func TestKillIsDeterministicWithSeededChaos(t *testing.T) {
	run := func() []byte {
		n := New(Config{Seed: 99, CorruptProb: 0.5})
		c, s := fpair(t, n, "a", "b")
		// Interleave an explicit kill of an unrelated endpoint.
		n.Kill("unrelated")
		var got []byte
		for i := 0; i < 8; i++ {
			if _, err := c.Write([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 1)
			s.SetReadDeadline(time.Now().Add(time.Second))
			if _, err := s.Read(buf); err != nil {
				if errors.Is(err, net.ErrClosed) {
					break
				}
				t.Fatal(err)
			}
			got = append(got, buf[0])
		}
		return got
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("seeded runs diverged with explicit kills interleaved: %v vs %v", a, b)
	}
}
