package simnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

func pair(t *testing.T, cfg Config) (client, server net.Conn) {
	t.Helper()
	n := New(cfg)
	lis, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		accepted <- c
	}()
	client, err = n.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	server = <-accepted
	t.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
		_ = lis.Close()
	})
	return client, server
}

func TestRoundTrip(t *testing.T) {
	client, server := pair(t, Config{})
	msg := []byte("hello transputer")
	go func() {
		if _, err := client.Write(msg); err != nil {
			t.Errorf("Write: %v", err)
		}
	}()
	buf := make([]byte, 64)
	n, err := server.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], msg) {
		t.Fatalf("Read = %q", buf[:n])
	}
}

func TestBidirectional(t *testing.T) {
	client, server := pair(t, Config{})
	go func() {
		buf := make([]byte, 16)
		n, err := server.Read(buf)
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := server.Write(bytes.ToUpper(buf[:n])); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "PING" {
		t.Fatalf("echo = %q", buf[:n])
	}
}

func TestLatencyIsApplied(t *testing.T) {
	const latency = 30 * time.Millisecond
	client, server := pair(t, Config{Latency: latency})
	start := time.Now()
	if _, err := client.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := server.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < latency {
		t.Fatalf("message arrived after %v, configured latency %v", elapsed, latency)
	}
}

func TestOrderPreservedUnderJitter(t *testing.T) {
	client, server := pair(t, Config{Latency: time.Millisecond, Jitter: 5 * time.Millisecond, Seed: 3})
	var want bytes.Buffer
	go func() {
		for i := 0; i < 50; i++ {
			msg := []byte{byte(i)}
			if _, err := client.Write(msg); err != nil {
				t.Errorf("Write: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		want.WriteByte(byte(i))
	}
	got := make([]byte, 0, 50)
	buf := make([]byte, 8)
	for len(got) < 50 {
		n, err := server.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("stream reordered under jitter:\n got %v\nwant %v", got, want.Bytes())
	}
}

func TestBandwidthDelaysLargeWrites(t *testing.T) {
	// 10 KB at 100 KB/s = 100ms serialization delay.
	client, server := pair(t, Config{Bandwidth: 100_000})
	payload := make([]byte, 10_000)
	start := time.Now()
	go func() {
		if _, err := client.Write(payload); err != nil {
			t.Errorf("Write: %v", err)
		}
	}()
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("10KB at 100KB/s arrived in %v", elapsed)
	}
}

func TestCloseGivesEOFAfterDrain(t *testing.T) {
	client, server := pair(t, Config{Latency: 10 * time.Millisecond})
	if _, err := client.Write([]byte("last")); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	// The in-flight message is still delivered...
	buf := make([]byte, 8)
	n, err := server.Read(buf)
	if err != nil || string(buf[:n]) != "last" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	// ...then EOF.
	if _, err := server.Read(buf); err != io.EOF {
		t.Fatalf("Read after close = %v, want EOF", err)
	}
	// Writes on the closed conn fail.
	if _, err := client.Write([]byte("x")); err == nil {
		t.Fatal("Write after Close succeeded")
	}
}

func TestBreakSeversAbruptly(t *testing.T) {
	client, server := pair(t, Config{Latency: 50 * time.Millisecond})
	if _, err := client.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	if err := BreakConn(client); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := server.Read(buf); err == nil || err == io.EOF {
		t.Fatalf("Read on broken link = %v, want hard error", err)
	}
	var fake net.Conn = &net.TCPConn{}
	if err := BreakConn(fake); !errors.Is(err, ErrNotSimnet) {
		t.Fatalf("BreakConn(tcp) = %v", err)
	}
}

func TestReadDeadline(t *testing.T) {
	client, _ := pair(t, Config{})
	if err := client.SetReadDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	start := time.Now()
	_, err := client.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Read = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline ignored")
	}
	// Clearing the deadline restores blocking reads.
	if err := client.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := client.SetWriteDeadline(time.Now()); err != nil {
		t.Fatal(err) // no-op but must not error
	}
}

func TestDialErrors(t *testing.T) {
	n := New(Config{})
	if _, err := n.Dial("ghost"); err == nil {
		t.Fatal("dial to unknown endpoint succeeded")
	}
	lis, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	_ = lis.Close()
	if _, err := n.Dial("a"); err == nil {
		t.Fatal("dial to closed endpoint succeeded")
	}
	// Name freed after close: can listen again.
	if _, err := n.Listen("a"); err != nil {
		t.Fatal(err)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	n := New(Config{})
	lis, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := lis.Accept()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = lis.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Accept = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept not unblocked by Close")
	}
}

func TestAddrs(t *testing.T) {
	client, server := pair(t, Config{})
	if client.RemoteAddr().String() != "srv" || client.RemoteAddr().Network() != "sim" {
		t.Fatalf("client remote = %v", client.RemoteAddr())
	}
	if server.LocalAddr().String() != "srv" {
		t.Fatalf("server local = %v", server.LocalAddr())
	}
}

func TestConcurrentWriters(t *testing.T) {
	client, server := pair(t, Config{})
	const writers, per = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := client.Write([]byte{7}); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
			}
		}()
	}
	total := 0
	buf := make([]byte, 64)
	for total < writers*per {
		n, err := server.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range buf[:n] {
			if b != 7 {
				t.Fatalf("corrupted byte %d", b)
			}
		}
		total += n
	}
	wg.Wait()
}
