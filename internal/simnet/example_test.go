package simnet_test

import (
	"fmt"
	"log"
	"time"

	"repro/internal/simnet"
)

// Example opens a simulated link with 5ms one-way latency and measures a
// round trip across it.
func Example() {
	network := simnet.New(simnet.Config{Latency: 5 * time.Millisecond})
	lis, err := network.Listen("server")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 16)
		n, _ := conn.Read(buf)
		_, _ = conn.Write(buf[:n])
	}()

	conn, err := network.Dial("server")
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := conn.Write([]byte("ping")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("echo:", string(buf[:n]))
	fmt.Println("round trip took at least 10ms:", time.Since(start) >= 10*time.Millisecond)
	// Output:
	// echo: ping
	// round trip took at least 10ms: true
}
