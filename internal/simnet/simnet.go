// Package simnet is an in-memory network simulator implementing net.Conn
// and net.Listener. The paper's runtime targeted a 16-node transputer
// network (§4); real transputer links are unavailable, so experiments that
// need controllable link characteristics run the rpc substrate over simnet
// instead of TCP loopback: every connection gets a configurable one-way
// latency (optionally jittered) and bandwidth, while preserving reliable,
// ordered byte-stream semantics.
//
// For chaos experiments the network also injects faults (see Config and
// docs/FAULTS.md): per-write connection-kill probability, byte corruption,
// and one-way partitions between named endpoints that can be set and
// healed at runtime. Fault decisions are drawn from one seeded stream, so
// a single-connection run reproduces exactly and concurrent runs
// reproduce statistically.
//
//	net := simnet.New(simnet.Config{Latency: 500 * time.Microsecond})
//	lis, _ := net.Listen("nodeA")
//	go node.Serve(lis)
//	conn, _ := net.Dial("nodeA")
//	rem := rpc.DialConn(conn)
package simnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// Config describes the links of a simulated network.
type Config struct {
	Latency   time.Duration // one-way delay added to every write
	Jitter    time.Duration // uniform extra delay in [0, Jitter)
	Bandwidth int           // bytes per second; 0 = infinite
	Seed      uint64        // seed for jitter and fault randomness

	// KillProb is the per-write probability that the whole connection is
	// severed (both directions, in-flight data lost) — a connection reset.
	KillProb float64
	// CorruptProb is the per-write probability that one byte of the
	// written segment is flipped before delivery.
	CorruptProb float64
}

// Network is a set of named listeners connected by simulated links.
type Network struct {
	cfg Config

	mu         sync.Mutex
	listeners  map[string]*listener
	partitions map[[2]string]bool
	conns      map[string]map[*conn]struct{} // live conns by local endpoint
	rng        *workload.RNG

	kills       metrics.Counter
	corruptions metrics.Counter
	partDrops   metrics.Counter
}

// New creates a network.
func New(cfg Config) *Network {
	return &Network{
		cfg:        cfg,
		listeners:  make(map[string]*listener),
		partitions: make(map[[2]string]bool),
		conns:      make(map[string]map[*conn]struct{}),
		rng:        workload.NewRNG(cfg.Seed),
	}
}

// Partition installs a one-way partition: traffic and new dials from
// endpoint a to endpoint b fail until Heal. Existing connections crossing
// the partition are severed lazily, at their next a→b write (a byte
// stream with a hole cannot resynchronize, so the loss is fatal).
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	n.partitions[[2]string{a, b}] = true
	n.mu.Unlock()
}

// Heal removes the one-way partition from a to b. Connections severed
// while it was up stay dead; redialling establishes fresh ones.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	delete(n.partitions, [2]string{a, b})
	n.mu.Unlock()
}

// HealAll removes every partition.
func (n *Network) HealAll() {
	n.mu.Lock()
	n.partitions = make(map[[2]string]bool)
	n.mu.Unlock()
}

func (n *Network) partitioned(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitions[[2]string{from, to}]
}

// Stats reports fault-injection totals: connections killed, segments
// corrupted, and writes severed by partitions.
func (n *Network) Stats() (kills, corruptions, partitionDrops uint64) {
	return n.kills.Value(), n.corruptions.Value(), n.partDrops.Value()
}

// faults draws this write's fault decisions from the seeded stream.
func (n *Network) faults(size int) (kill, corrupt bool, flip int) {
	if n.cfg.KillProb <= 0 && n.cfg.CorruptProb <= 0 {
		return false, false, 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.KillProb > 0 && n.rng.Bool(n.cfg.KillProb) {
		return true, false, 0
	}
	if n.cfg.CorruptProb > 0 && size > 0 && n.rng.Bool(n.cfg.CorruptProb) {
		return false, true, n.rng.Intn(size)
	}
	return false, false, 0
}

// Listen registers a named endpoint. Names play the role of addresses.
func (n *Network) Listen(name string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.listeners[name]; dup {
		return nil, fmt.Errorf("simnet: %q already listening", name)
	}
	l := &listener{
		net:     n,
		name:    name,
		backlog: make(chan net.Conn, 16),
		done:    make(chan struct{}),
	}
	n.listeners[name] = l
	return l, nil
}

// Dial connects to a named endpoint, returning the client side of a new
// simulated connection. The caller endpoint is named "client"; use
// DialFrom to dial from a named endpoint that partitions can target.
func (n *Network) Dial(name string) (net.Conn, error) {
	return n.DialFrom("client", name)
}

// DialFrom connects from endpoint from to endpoint to. A partition in
// either direction fails the dial (a handshake needs both ways).
func (n *Network) DialFrom(from, to string) (net.Conn, error) {
	if n.partitioned(from, to) || n.partitioned(to, from) {
		return nil, fmt.Errorf("simnet: dial %s->%s: partitioned: %w", from, to, net.ErrClosed)
	}
	n.mu.Lock()
	l, ok := n.listeners[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("simnet: dial %q: no such endpoint", to)
	}
	client, server := n.newPair(from, to)
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("simnet: dial %q: %w", to, net.ErrClosed)
	}
}

// jitterDelay computes one write's total delay.
func (n *Network) jitterDelay(size int) time.Duration {
	d := n.cfg.Latency
	if n.cfg.Jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Intn(int(n.cfg.Jitter)))
		n.mu.Unlock()
	}
	if n.cfg.Bandwidth > 0 {
		d += time.Duration(int64(size) * int64(time.Second) / int64(n.cfg.Bandwidth))
	}
	return d
}

// newPair builds the two half-duplex pipes of one connection and registers
// both endpoints for crash injection (Kill).
func (n *Network) newPair(from, to string) (client, server net.Conn) {
	c2s := newHalf(n, from, to)
	s2c := newHalf(n, to, from)
	c2s.twin, s2c.twin = s2c, c2s
	cc := &conn{net: n, read: s2c, write: c2s, local: from, remote: to}
	sc := &conn{net: n, read: c2s, write: s2c, local: to, remote: from}
	n.register(cc)
	n.register(sc)
	return cc, sc
}

func (n *Network) register(c *conn) {
	n.mu.Lock()
	set := n.conns[c.local]
	if set == nil {
		set = make(map[*conn]struct{})
		n.conns[c.local] = set
	}
	set[c] = struct{}{}
	n.mu.Unlock()
}

func (n *Network) unregister(c *conn) {
	n.mu.Lock()
	if set := n.conns[c.local]; set != nil {
		delete(set, c)
		if len(set) == 0 {
			delete(n.conns, c.local)
		}
	}
	n.mu.Unlock()
}

// Kill crashes the named endpoint: every live connection touching it is
// severed abruptly — in-flight frames are dropped, both peers observe a
// broken link — and its listener closes, so dials fail until the endpoint
// restarts. This models kill -9 of the process behind the address: a
// half-written consensus message or response frame is simply gone. Restart
// the endpoint by calling Listen with the same name (names are addresses,
// so the revived node is reachable exactly where the dead one was — the
// rejoin scenario of docs/REPLICATION.md). Returns how many connections
// were severed; each counts toward the kills total in Stats. Decisions are
// made by the caller, not the seeded fault stream, so a test can schedule
// crashes deterministically on top of (or instead of) KillProb chaos.
func (n *Network) Kill(name string) int {
	n.mu.Lock()
	lis := n.listeners[name]
	victims := make([]*conn, 0, len(n.conns[name]))
	for c := range n.conns[name] {
		victims = append(victims, c)
	}
	n.mu.Unlock()
	if lis != nil {
		_ = lis.Close()
	}
	for _, c := range victims {
		c.Break()
		n.kills.Inc()
	}
	return len(victims)
}

type listener struct {
	net     *Network
	name    string
	backlog chan net.Conn
	done    chan struct{}
	once    sync.Once
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.name)
		l.net.mu.Unlock()
	})
	return nil
}

// Addr implements net.Listener.
func (l *listener) Addr() net.Addr { return addr(l.name) }

type addr string

func (a addr) Network() string { return "sim" }
func (a addr) String() string  { return string(a) }

// chunk is a delayed byte segment in flight.
type chunk struct {
	data []byte
	at   time.Time // earliest delivery time
}

// half is one direction of a connection: a latency-delayed, ordered byte
// stream from endpoint from to endpoint to, reliable unless faults are
// injected.
type half struct {
	net  *Network
	from string
	to   string
	twin *half // opposite direction of the same connection

	mu      sync.Mutex
	chunks  []chunk
	lastAt  time.Time // monotonic delivery ordering
	closed  bool
	broken  bool
	waiters []chan struct{}
}

func newHalf(n *Network, from, to string) *half {
	return &half{net: n, from: from, to: to}
}

func (h *half) write(p []byte) (int, error) {
	h.mu.Lock()
	dead := h.closed || h.broken
	h.mu.Unlock()
	if dead {
		// Already severed or closed: no further fault decisions are drawn,
		// so counters tally one fault per connection event.
		return 0, fmt.Errorf("simnet: %w", net.ErrClosed)
	}
	n := h.net
	if n.partitioned(h.from, h.to) {
		// The segment is lost inside the partition; a byte stream with a
		// hole can never resynchronize, so the direction is severed.
		n.partDrops.Inc()
		h.breakLink()
		return 0, fmt.Errorf("simnet: %s->%s partitioned: %w", h.from, h.to, net.ErrClosed)
	}
	kill, corrupt, flip := n.faults(len(p))
	if kill {
		n.kills.Inc()
		h.breakLink()
		h.twin.breakLink()
		return 0, fmt.Errorf("simnet: connection %s<->%s killed: %w", h.from, h.to, net.ErrClosed)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || h.broken {
		return 0, fmt.Errorf("simnet: %w", net.ErrClosed)
	}
	at := time.Now().Add(h.net.jitterDelay(len(p)))
	if at.Before(h.lastAt) {
		at = h.lastAt // preserve stream order under jitter
	}
	h.lastAt = at
	data := make([]byte, len(p))
	copy(data, p)
	if corrupt {
		n.corruptions.Inc()
		data[flip] ^= 0xff
	}
	h.chunks = append(h.chunks, chunk{data: data, at: at})
	h.wakeLocked()
	return len(p), nil
}

// read blocks until delayed data is deliverable, EOF, or the deadline.
func (h *half) read(p []byte, deadline time.Time) (int, error) {
	for {
		h.mu.Lock()
		if h.broken {
			h.mu.Unlock()
			return 0, fmt.Errorf("simnet: link broken: %w", io.ErrUnexpectedEOF)
		}
		now := time.Now()
		if len(h.chunks) > 0 && !h.chunks[0].at.After(now) {
			c := &h.chunks[0]
			n := copy(p, c.data)
			if n == len(c.data) {
				h.chunks = h.chunks[1:]
			} else {
				c.data = c.data[n:]
			}
			h.mu.Unlock()
			return n, nil
		}
		if h.closed && len(h.chunks) == 0 {
			h.mu.Unlock()
			return 0, io.EOF
		}
		// Nothing deliverable yet: wait for new data, in-flight data to
		// mature, close, or deadline.
		var matureIn time.Duration = -1
		if len(h.chunks) > 0 {
			matureIn = h.chunks[0].at.Sub(now)
		}
		w := make(chan struct{}, 1)
		h.waiters = append(h.waiters, w)
		h.mu.Unlock()

		var timer *time.Timer
		var timeout <-chan time.Time
		if matureIn >= 0 {
			timer = time.NewTimer(matureIn)
			timeout = timer.C
		}
		var deadlineCh <-chan time.Time
		var dTimer *time.Timer
		if !deadline.IsZero() {
			dTimer = time.NewTimer(time.Until(deadline))
			deadlineCh = dTimer.C
		}
		select {
		case <-w:
		case <-timeout:
		case <-deadlineCh:
			stopTimer(timer)
			stopTimer(dTimer)
			return 0, os.ErrDeadlineExceeded
		}
		stopTimer(timer)
		stopTimer(dTimer)
	}
}

func (h *half) close() {
	h.mu.Lock()
	h.closed = true
	h.wakeLocked()
	h.mu.Unlock()
}

func (h *half) breakLink() {
	h.mu.Lock()
	h.broken = true
	h.chunks = nil
	h.wakeLocked()
	h.mu.Unlock()
}

func (h *half) wakeLocked() {
	for _, w := range h.waiters {
		select {
		case w <- struct{}{}:
		default:
		}
	}
	h.waiters = nil
}

func stopTimer(t *time.Timer) {
	if t != nil {
		t.Stop()
	}
}

// conn is one endpoint of a simulated connection.
type conn struct {
	net    *Network
	read   *half
	write  *half
	local  string
	remote string

	mu           sync.Mutex
	readDeadline time.Time
}

var _ net.Conn = (*conn)(nil)

// Read implements net.Conn.
func (c *conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	deadline := c.readDeadline
	c.mu.Unlock()
	return c.read.read(p, deadline)
}

// Write implements net.Conn.
func (c *conn) Write(p []byte) (int, error) {
	return c.write.write(p)
}

// Close implements net.Conn: it half-closes both directions, so the peer
// reads EOF after draining in-flight data.
func (c *conn) Close() error {
	c.net.unregister(c)
	c.write.close()
	c.read.close()
	return nil
}

// Break severs the connection abruptly: in-flight data is lost and both
// sides fail — the link-failure injection hook for tests.
func (c *conn) Break() {
	c.net.unregister(c)
	c.write.breakLink()
	c.read.breakLink()
}

// LocalAddr implements net.Conn.
func (c *conn) LocalAddr() net.Addr { return addr(c.local) }

// RemoteAddr implements net.Conn.
func (c *conn) RemoteAddr() net.Addr { return addr(c.remote) }

// SetDeadline implements net.Conn (read side only; writes never block).
func (c *conn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn (writes are buffered and never
// block, so this is a no-op).
func (c *conn) SetWriteDeadline(time.Time) error { return nil }

// Breaker is implemented by simnet connections for failure injection.
type Breaker interface {
	Break()
}

// ErrNotSimnet is returned by BreakConn on foreign connections.
var ErrNotSimnet = errors.New("simnet: not a simulated connection")

// BreakConn severs a simulated connection; it fails on other net.Conns.
func BreakConn(c net.Conn) error {
	b, ok := c.(Breaker)
	if !ok {
		return ErrNotSimnet
	}
	b.Break()
	return nil
}
