// Package simnet is an in-memory network simulator implementing net.Conn
// and net.Listener. The paper's runtime targeted a 16-node transputer
// network (§4); real transputer links are unavailable, so experiments that
// need controllable link characteristics run the rpc substrate over simnet
// instead of TCP loopback: every connection gets a configurable one-way
// latency (optionally jittered) and bandwidth, while preserving reliable,
// ordered byte-stream semantics.
//
//	net := simnet.New(simnet.Config{Latency: 500 * time.Microsecond})
//	lis, _ := net.Listen("nodeA")
//	go node.Serve(lis)
//	conn, _ := net.Dial("nodeA")
//	rem := rpc.DialConn(conn)
package simnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/workload"
)

// Config describes the links of a simulated network.
type Config struct {
	Latency   time.Duration // one-way delay added to every write
	Jitter    time.Duration // uniform extra delay in [0, Jitter)
	Bandwidth int           // bytes per second; 0 = infinite
	Seed      uint64        // jitter randomness seed
}

// Network is a set of named listeners connected by simulated links.
type Network struct {
	cfg Config

	mu        sync.Mutex
	listeners map[string]*listener
	rng       *workload.RNG
}

// New creates a network.
func New(cfg Config) *Network {
	return &Network{
		cfg:       cfg,
		listeners: make(map[string]*listener),
		rng:       workload.NewRNG(cfg.Seed),
	}
}

// Listen registers a named endpoint. Names play the role of addresses.
func (n *Network) Listen(name string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.listeners[name]; dup {
		return nil, fmt.Errorf("simnet: %q already listening", name)
	}
	l := &listener{
		net:     n,
		name:    name,
		backlog: make(chan net.Conn, 16),
		done:    make(chan struct{}),
	}
	n.listeners[name] = l
	return l, nil
}

// Dial connects to a named endpoint, returning the client side of a new
// simulated connection.
func (n *Network) Dial(name string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[name]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("simnet: dial %q: no such endpoint", name)
	}
	client, server := n.newPair(name)
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("simnet: dial %q: %w", name, net.ErrClosed)
	}
}

// jitterDelay computes one write's total delay.
func (n *Network) jitterDelay(size int) time.Duration {
	d := n.cfg.Latency
	if n.cfg.Jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Intn(int(n.cfg.Jitter)))
		n.mu.Unlock()
	}
	if n.cfg.Bandwidth > 0 {
		d += time.Duration(int64(size) * int64(time.Second) / int64(n.cfg.Bandwidth))
	}
	return d
}

// newPair builds the two half-duplex pipes of one connection.
func (n *Network) newPair(name string) (client, server net.Conn) {
	c2s := newHalf(n)
	s2c := newHalf(n)
	client = &conn{net: n, read: s2c, write: c2s, local: "client", remote: name}
	server = &conn{net: n, read: c2s, write: s2c, local: name, remote: "client"}
	return client, server
}

type listener struct {
	net     *Network
	name    string
	backlog chan net.Conn
	done    chan struct{}
	once    sync.Once
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.name)
		l.net.mu.Unlock()
	})
	return nil
}

// Addr implements net.Listener.
func (l *listener) Addr() net.Addr { return addr(l.name) }

type addr string

func (a addr) Network() string { return "sim" }
func (a addr) String() string  { return string(a) }

// chunk is a delayed byte segment in flight.
type chunk struct {
	data []byte
	at   time.Time // earliest delivery time
}

// half is one direction of a connection: a latency-delayed, ordered,
// reliable byte stream.
type half struct {
	net *Network

	mu      sync.Mutex
	chunks  []chunk
	lastAt  time.Time // monotonic delivery ordering
	closed  bool
	broken  bool
	waiters []chan struct{}
}

func newHalf(n *Network) *half { return &half{net: n} }

func (h *half) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || h.broken {
		return 0, fmt.Errorf("simnet: %w", net.ErrClosed)
	}
	at := time.Now().Add(h.net.jitterDelay(len(p)))
	if at.Before(h.lastAt) {
		at = h.lastAt // preserve stream order under jitter
	}
	h.lastAt = at
	data := make([]byte, len(p))
	copy(data, p)
	h.chunks = append(h.chunks, chunk{data: data, at: at})
	h.wakeLocked()
	return len(p), nil
}

// read blocks until delayed data is deliverable, EOF, or the deadline.
func (h *half) read(p []byte, deadline time.Time) (int, error) {
	for {
		h.mu.Lock()
		if h.broken {
			h.mu.Unlock()
			return 0, fmt.Errorf("simnet: link broken: %w", io.ErrUnexpectedEOF)
		}
		now := time.Now()
		if len(h.chunks) > 0 && !h.chunks[0].at.After(now) {
			c := &h.chunks[0]
			n := copy(p, c.data)
			if n == len(c.data) {
				h.chunks = h.chunks[1:]
			} else {
				c.data = c.data[n:]
			}
			h.mu.Unlock()
			return n, nil
		}
		if h.closed && len(h.chunks) == 0 {
			h.mu.Unlock()
			return 0, io.EOF
		}
		// Nothing deliverable yet: wait for new data, in-flight data to
		// mature, close, or deadline.
		var matureIn time.Duration = -1
		if len(h.chunks) > 0 {
			matureIn = h.chunks[0].at.Sub(now)
		}
		w := make(chan struct{}, 1)
		h.waiters = append(h.waiters, w)
		h.mu.Unlock()

		var timer *time.Timer
		var timeout <-chan time.Time
		if matureIn >= 0 {
			timer = time.NewTimer(matureIn)
			timeout = timer.C
		}
		var deadlineCh <-chan time.Time
		var dTimer *time.Timer
		if !deadline.IsZero() {
			dTimer = time.NewTimer(time.Until(deadline))
			deadlineCh = dTimer.C
		}
		select {
		case <-w:
		case <-timeout:
		case <-deadlineCh:
			stopTimer(timer)
			stopTimer(dTimer)
			return 0, os.ErrDeadlineExceeded
		}
		stopTimer(timer)
		stopTimer(dTimer)
	}
}

func (h *half) close() {
	h.mu.Lock()
	h.closed = true
	h.wakeLocked()
	h.mu.Unlock()
}

func (h *half) breakLink() {
	h.mu.Lock()
	h.broken = true
	h.chunks = nil
	h.wakeLocked()
	h.mu.Unlock()
}

func (h *half) wakeLocked() {
	for _, w := range h.waiters {
		select {
		case w <- struct{}{}:
		default:
		}
	}
	h.waiters = nil
}

func stopTimer(t *time.Timer) {
	if t != nil {
		t.Stop()
	}
}

// conn is one endpoint of a simulated connection.
type conn struct {
	net    *Network
	read   *half
	write  *half
	local  string
	remote string

	mu           sync.Mutex
	readDeadline time.Time
}

var _ net.Conn = (*conn)(nil)

// Read implements net.Conn.
func (c *conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	deadline := c.readDeadline
	c.mu.Unlock()
	return c.read.read(p, deadline)
}

// Write implements net.Conn.
func (c *conn) Write(p []byte) (int, error) {
	return c.write.write(p)
}

// Close implements net.Conn: it half-closes both directions, so the peer
// reads EOF after draining in-flight data.
func (c *conn) Close() error {
	c.write.close()
	c.read.close()
	return nil
}

// Break severs the connection abruptly: in-flight data is lost and both
// sides fail — the link-failure injection hook for tests.
func (c *conn) Break() {
	c.write.breakLink()
	c.read.breakLink()
}

// LocalAddr implements net.Conn.
func (c *conn) LocalAddr() net.Addr { return addr(c.local) }

// RemoteAddr implements net.Conn.
func (c *conn) RemoteAddr() net.Addr { return addr(c.remote) }

// SetDeadline implements net.Conn (read side only; writes never block).
func (c *conn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn (writes are buffered and never
// block, so this is a no-op).
func (c *conn) SetWriteDeadline(time.Time) error { return nil }

// Breaker is implemented by simnet connections for failure injection.
type Breaker interface {
	Break()
}

// ErrNotSimnet is returned by BreakConn on foreign connections.
var ErrNotSimnet = errors.New("simnet: not a simulated connection")

// BreakConn severs a simulated connection; it fails on other net.Conns.
func BreakConn(c net.Conn) error {
	b, ok := c.(Breaker)
	if !ok {
		return ErrNotSimnet
	}
	b.Break()
	return nil
}
