package simnet

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// pair establishes a client/server connection between named endpoints.
func fpair(t *testing.T, n *Network, from, to string) (client, server net.Conn) {
	t.Helper()
	lis, err := n.Listen(to)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	client, err = n.DialFrom(from, to)
	if err != nil {
		t.Fatal(err)
	}
	server, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { _ = lis.Close() })
	return client, server
}

func TestPartitionBlocksDial(t *testing.T) {
	n := New(Config{})
	if _, err := n.Listen("b"); err != nil {
		t.Fatal(err)
	}
	n.Partition("a", "b")
	if _, err := n.DialFrom("a", "b"); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("dial across partition = %v, want ErrClosed", err)
	}
	// The reverse direction is also undialable: a handshake needs both ways.
	if _, err := n.DialFrom("b", "a"); err == nil {
		t.Fatal("reverse dial across one-way partition succeeded")
	}
	// Unrelated endpoints are unaffected.
	if _, err := n.DialFrom("c", "b"); err != nil {
		t.Fatalf("unrelated dial failed: %v", err)
	}
	n.Heal("a", "b")
	if _, err := n.DialFrom("a", "b"); err != nil {
		t.Fatalf("dial after Heal failed: %v", err)
	}
}

func TestPartitionSeversExistingConnOneWay(t *testing.T) {
	n := New(Config{})
	client, server := fpair(t, n, "a", "b")

	n.Partition("a", "b")
	if _, err := client.Write([]byte("lost")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write across partition = %v, want ErrClosed", err)
	}
	// The b→a direction still works: the partition is one-way.
	if _, err := server.Write([]byte("back")); err != nil {
		t.Fatalf("reverse write failed: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := client.Read(buf); err != nil {
		t.Fatalf("reverse read failed: %v", err)
	}
	_, _, drops := n.Stats()
	if drops == 0 {
		t.Error("partition drop counter not incremented")
	}

	// Healing does not resurrect the severed direction (the stream has a
	// hole), but a fresh connection works.
	n.Heal("a", "b")
	if _, err := client.Write([]byte("dead")); err == nil {
		t.Error("severed direction writable after Heal")
	}
	c2, s2 := fpair(t, n, "a", "b2")
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatalf("fresh conn write failed: %v", err)
	}
	_ = c2.Close()
	_ = s2.Close()
}

func TestKillProbSeversBothDirections(t *testing.T) {
	n := New(Config{KillProb: 1, Seed: 1})
	client, server := fpair(t, n, "a", "b")
	if _, err := client.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write on killed conn = %v, want ErrClosed", err)
	}
	if _, err := server.Write([]byte("y")); err == nil {
		t.Fatal("peer write survived the kill")
	}
	if _, err := server.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read survived the kill")
	}
	kills, _, _ := n.Stats()
	if kills != 1 {
		t.Errorf("kills = %d, want 1", kills)
	}
}

func TestCorruptProbFlipsOneByte(t *testing.T) {
	n := New(Config{CorruptProb: 1, Seed: 7})
	client, server := fpair(t, n, "a", "b")
	sent := []byte("hello, transputer")
	if _, err := client.Write(sent); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(sent))
	if _, err := server.Read(got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range sent {
		if sent[i] != got[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1 (sent %q, got %q)", diff, sent, got)
	}
	_, corruptions, _ := n.Stats()
	if corruptions != 1 {
		t.Errorf("corruptions = %d, want 1", corruptions)
	}
}

// TestFaultDeterminism: the same seed yields the same kill point on a
// single-connection write sequence.
func TestFaultDeterminism(t *testing.T) {
	run := func() int {
		n := New(Config{KillProb: 0.05, Seed: 99})
		client, _ := fpair(t, n, "a", "b")
		for i := 1; ; i++ {
			if _, err := client.Write([]byte("chunk")); err != nil {
				return i
			}
			if i > 10000 {
				t.Fatal("kill never fired")
			}
		}
	}
	first := run()
	second := run()
	if first != second {
		t.Fatalf("kill point differs across seeded runs: %d vs %d", first, second)
	}
	if first <= 1 && 0.05 < 0.5 {
		t.Logf("kill fired on the first write (allowed, just unusual)")
	}
}

// TestNoFaultsIsStillReliable guards the default path: without fault
// config, the stream is byte-identical.
func TestNoFaultsIsStillReliable(t *testing.T) {
	n := New(Config{Latency: 100 * time.Microsecond})
	client, server := fpair(t, n, "a", "b")
	sent := bytes.Repeat([]byte{0xab, 0xcd}, 512)
	go func() { _, _ = client.Write(sent) }()
	got := make([]byte, len(sent))
	total := 0
	for total < len(sent) {
		m, err := server.Read(got[total:])
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		total += m
	}
	if !bytes.Equal(sent, got) {
		t.Fatal("stream corrupted without fault injection")
	}
	kills, corruptions, drops := n.Stats()
	if kills+corruptions+drops != 0 {
		t.Fatalf("spurious fault counters: %d/%d/%d", kills, corruptions, drops)
	}
}
