package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

func mustEncode(t testing.TB, f *Frame, tab *TypeTable) []byte {
	t.Helper()
	b, err := AppendFrame(nil, f, tab)
	if err != nil {
		t.Fatalf("AppendFrame(%+v): %v", f, err)
	}
	return b
}

func roundTrip(t *testing.T, f *Frame, tab *TypeTable) *Frame {
	t.Helper()
	got, err := DecodeFrame(mustEncode(t, f, tab), tab)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	return got
}

// randValue generates a random value of a random supported type,
// recursing into lists and maps.
func randValue(r *rand.Rand, depth int) any {
	max := 18
	if depth > 2 {
		max = 15 // leaf types only once nested a few levels deep
	}
	switch r.Intn(max) {
	case 0:
		return nil
	case 1:
		return r.Intn(2) == 0
	case 2:
		return int(r.Int63()) - math.MaxInt32
	case 3:
		return int8(r.Intn(256) - 128)
	case 4:
		return int16(r.Intn(1 << 16))
	case 5:
		return int32(r.Int31()) - 1<<30
	case 6:
		return r.Int63() - 1<<62
	case 7:
		return uint(r.Uint64())
	case 8:
		return uint8(r.Intn(256))
	case 9:
		return uint16(r.Intn(1 << 16))
	case 10:
		return uint32(r.Uint32())
	case 11:
		return r.Uint64()
	case 12:
		return float32(r.NormFloat64())
	case 13:
		return r.NormFloat64()
	case 14:
		return randString(r)
	case 15:
		b := make([]byte, r.Intn(64))
		r.Read(b)
		return b
	case 16:
		n := r.Intn(5)
		l := make([]any, n)
		for i := range l {
			l[i] = randValue(r, depth+1)
		}
		return l
	default:
		n := r.Intn(5)
		m := make(map[string]any, n)
		for i := 0; i < n; i++ {
			m[randString(r)] = randValue(r, depth+1)
		}
		return m
	}
}

func randString(r *rand.Rand) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABC €𝔘\x00"
	n := r.Intn(24)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[r.Intn(len(alphabet))])
	}
	return sb.String()
}

// TestValueRoundTripProperty is the property-based codec test: random
// values of every supported type must round-trip to deeply equal values
// with identical dynamic types — an int8 must come back an int8, not an
// int64 — including nested lists and maps.
func TestValueRoundTripProperty(t *testing.T) {
	tab := NewTypeTable()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		vals := make([]any, r.Intn(4)+1)
		for j := range vals {
			vals[j] = randValue(r, 0)
		}
		f := &Frame{Kind: KindRequest, ID: uint64(i), Object: "O", Entry: "E", Params: vals}
		got := roundTrip(t, f, tab)
		if !reflect.DeepEqual(got.Params, vals) {
			t.Fatalf("iteration %d: params %#v round-tripped to %#v", i, vals, got.Params)
		}
		for j := range vals {
			if reflect.TypeOf(vals[j]) != reflect.TypeOf(got.Params[j]) {
				t.Fatalf("iteration %d: value %d type %T became %T", i, j, vals[j], got.Params[j])
			}
		}
	}
}

// TestExplicitValues pins the full supported type set with handpicked
// edge values (extremes, empties, NaN handling by bits).
func TestExplicitValues(t *testing.T) {
	tab := NewTypeTable()
	vals := []any{
		nil, true, false,
		0, -1, math.MaxInt64, math.MinInt64,
		int8(-128), int16(-32768), int32(math.MinInt32), int64(math.MinInt64),
		uint(math.MaxUint64), uint8(255), uint16(65535), uint32(math.MaxUint32), uint64(math.MaxUint64),
		float32(math.Pi), math.Inf(-1), 0.0, math.Copysign(0, -1),
		"", "héllo wörld", string([]byte{0, 1, 2}),
		[]byte{}, []byte{1, 2, 3},
		[]any{}, []any{[]any{[]any{"deep"}}},
		map[string]any{}, map[string]any{"k": map[string]any{"n": 1}},
		ChanRef{Name: "chan-42"},
		[2]int{-3, 1 << 40},
	}
	f := &Frame{Kind: KindRequest, ID: 9, Object: "O", Entry: "E", Params: vals}
	got := roundTrip(t, f, tab)
	if len(got.Params) != len(vals) {
		t.Fatalf("got %d values, want %d", len(got.Params), len(vals))
	}
	for i, want := range vals {
		if !reflect.DeepEqual(got.Params[i], want) {
			t.Errorf("value %d: %#v became %#v", i, want, got.Params[i])
		}
	}
	// NaN can't use DeepEqual; check bits survive separately.
	nan := roundTrip(t, &Frame{Kind: KindRequest, Object: "O", Entry: "E",
		Params: []any{math.NaN(), float32(math.NaN())}}, tab)
	if v, ok := nan.Params[0].(float64); !ok || !math.IsNaN(v) {
		t.Errorf("float64 NaN became %#v", nan.Params[0])
	}
	if v, ok := nan.Params[1].(float32); !ok || !math.IsNaN(float64(v)) {
		t.Errorf("float32 NaN became %#v", nan.Params[1])
	}
}

// TestErrorValuesRoundTrip checks error values inside params keep sentinel
// identity via errors.Is after a wire crossing.
func TestErrorValuesRoundTrip(t *testing.T) {
	tab := NewTypeTable()
	cases := []struct {
		in       error
		sentinel error
	}{
		{core.ErrOverload, core.ErrOverload},
		{fmt.Errorf("shard 3: %w", core.ErrObjectPoisoned), core.ErrObjectPoisoned},
		{ErrReplayTimeout, ErrReplayTimeout},
		{errors.New("plain failure"), nil},
	}
	for _, c := range cases {
		got := roundTrip(t, &Frame{Kind: KindRequest, Object: "O", Entry: "E", Params: []any{c.in}}, tab)
		gotErr, ok := got.Params[0].(error)
		if !ok {
			t.Fatalf("error %v decoded as %T", c.in, got.Params[0])
		}
		if c.sentinel != nil && !errors.Is(gotErr, c.sentinel) {
			t.Errorf("errors.Is(%v, %v) lost across the wire", gotErr, c.sentinel)
		}
		if gotErr.Error() != c.in.Error() {
			t.Errorf("message %q became %q", c.in.Error(), gotErr.Error())
		}
	}
}

// TestBytesAliasArena pins the ownership-transfer rule: decoded []byte
// values alias the decoder's arena (zero copy), and the decoder abandons
// that arena rather than reusing it, so a later frame can never scribble
// over an earlier frame's decoded bytes.
func TestBytesAliasArena(t *testing.T) {
	tab := NewTypeTable()
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	var stream bytes.Buffer
	for i := 0; i < 3; i++ {
		b, err := AppendFrame(nil, &Frame{Kind: KindChanSend, Chan: "c",
			Params: []any{append([]byte(nil), payload...), i}}, tab)
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(b)
	}
	d := NewDecoder(bufio.NewReader(&stream), tab)
	var got [][]byte
	for i := 0; i < 3; i++ {
		var f Frame
		if err := d.Decode(&f); err != nil {
			t.Fatal(err)
		}
		got = append(got, f.Params[0].([]byte))
	}
	for i, g := range got {
		if !bytes.Equal(g, payload) {
			t.Fatalf("frame %d bytes corrupted by later decode: %x", i, g)
		}
	}
	// Distinct frames must not share backing storage.
	got[0][0] = 0x00
	if got[1][0] == 0x00 {
		t.Fatal("frames share a backing arena")
	}
}

// TestStringsAreCopies pins the complementary rule: strings never alias
// the arena (they are immutable, so the decoder may reuse its buffer after
// producing them). We verify indirectly: a frame with only strings lets
// the decoder keep its arena, and successive decodes still yield intact
// earlier strings.
func TestStringsAreCopies(t *testing.T) {
	tab := NewTypeTable()
	var stream bytes.Buffer
	for i := 0; i < 2; i++ {
		b, err := AppendFrame(nil, &Frame{Kind: KindChanSend, Chan: "c",
			Params: []any{fmt.Sprintf("value-%d", i)}}, tab)
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(b)
	}
	d := NewDecoder(bufio.NewReader(&stream), tab)
	var f0, f1 Frame
	if err := d.Decode(&f0); err != nil {
		t.Fatal(err)
	}
	s0 := f0.Params[0].(string)
	if err := d.Decode(&f1); err != nil {
		t.Fatal(err)
	}
	if s0 != "value-0" {
		t.Fatalf("string from frame 0 corrupted by decode of frame 1: %q", s0)
	}
	if d.arena == nil {
		t.Fatal("decoder abandoned arena for a string-only frame; strings must be copies")
	}
}

// TestFrameKindsRoundTrip covers every frame kind end to end.
func TestFrameKindsRoundTrip(t *testing.T) {
	tab := NewTypeTable()
	frames := []*Frame{
		{Kind: KindRequest, ID: 1, Object: "X", Entry: "P", Params: []any{1, "s"}, Client: "c", Seq: 7},
		{Kind: KindResponse, ID: 2, Results: []any{42}, Err: "boom", ErrKind: ErrKindClosed},
		{Kind: KindResponse, ID: 3},
		{Kind: KindChanSend, Chan: "chan-1", Params: []any{[]byte{1, 2, 3}}},
		{Kind: KindList, ID: 3},
		{Kind: KindListResp, ID: 3, Names: []string{"A", "B"}},
		{Kind: KindListResp, ID: 4},
	}
	for _, f := range frames {
		got := roundTrip(t, f, tab)
		if !reflect.DeepEqual(got, f) {
			t.Errorf("frame %+v round-tripped to %+v", f, got)
		}
	}
}

// TestNegativeControls feeds structurally broken inputs to the decoder:
// truncated varints, oversized lengths, unknown tags and kinds, CRC
// damage, trailing garbage. Every case must fail with ErrMalformed — no
// panic, no hang, no silent success.
func TestNegativeControls(t *testing.T) {
	tab := NewTypeTable()
	good := mustEncode(t, &Frame{Kind: KindRequest, ID: 5, Object: "Obj", Entry: "Do",
		Client: "cli", Seq: 9, Params: []any{"abc", 7, []any{1.5}}}, tab)

	frameWith := func(mut func(payload []byte) []byte) []byte {
		// Rebuild a frame with a mutated payload and a *correct* CRC, so
		// the test exercises the parser, not just the checksum.
		n, hdr := binary.Uvarint(good)
		payload := append([]byte(nil), good[hdr+4:hdr+4+int(n)]...)
		payload = mut(payload)
		out := binary.AppendUvarint(nil, uint64(len(payload)))
		out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
		return append(out, payload...)
	}

	cases := map[string][]byte{
		"empty payload":    frameWith(func(p []byte) []byte { return nil }),
		"unknown kind":     frameWith(func(p []byte) []byte { p[0] = 99; return p }),
		"kind zero":        frameWith(func(p []byte) []byte { p[0] = 0; return p }),
		"truncated":        good[:len(good)-3],
		"trailing garbage": frameWith(func(p []byte) []byte { return append(p, 0xAA) }),
		"unknown tag": frameWith(func(p []byte) []byte {
			return bytes.Replace(p, []byte{tagString, 3, 'a', 'b', 'c'}, []byte{200, 3, 'a', 'b', 'c'}, 1)
		}),
		"oversized field": frameWith(func(p []byte) []byte {
			return bytes.Replace(p, []byte{tagString, 3, 'a', 'b', 'c'}, []byte{tagString, 250, 'a', 'b', 'c'}, 1)
		}),
		"truncated varint": frameWith(func(p []byte) []byte {
			return bytes.Replace(p, []byte{tagInt, 14}, []byte{tagInt, 0x80}, 1)
		}),
		"oversized list": frameWith(func(p []byte) []byte {
			return bytes.Replace(p, []byte{tagList, 1}, []byte{tagList, 0xFF, 0xFF, 0x7F}, 1)
		}),
		"huge frame length": binary.AppendUvarint(nil, MaxFrame+1),
		"crc flip": func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)-1] ^= 0x01
			return b
		}(),
		"bad response errkind": func() []byte {
			resp := mustEncode(t, &Frame{Kind: KindResponse, ID: 5, Err: "x", ErrKind: ErrGeneric}, tab)
			n, hdr := binary.Uvarint(resp)
			payload := append([]byte(nil), resp[hdr+4:hdr+4+int(n)]...)
			payload[bytes.IndexByte(payload, byte(ErrGeneric))] = 77
			out := binary.AppendUvarint(nil, uint64(len(payload)))
			out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
			return append(out, payload...)
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeFrame(data, tab); err == nil {
			t.Errorf("%s: decode succeeded, want ErrMalformed", name)
		} else if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrVersionSkew) {
			// Truncation mid-header surfaces as io errors wrapped in
			// ErrMalformed; anything else is a classification bug.
			t.Errorf("%s: error %v not ErrMalformed", name, err)
		}
	}

	// Nesting bomb: a list-of-list chain deeper than maxValueDepth must be
	// rejected by the depth guard, not blow the stack.
	deep := []byte{}
	for i := 0; i < maxValueDepth+4; i++ {
		deep = append(deep, tagList, 1)
	}
	deep = append(deep, tagNil)
	vd := &valueDecoder{table: tab}
	if _, _, err := vd.value(deep, 0); !errors.Is(err, ErrMalformed) {
		t.Errorf("nesting bomb: got %v, want ErrMalformed", err)
	}
}

// TestHello pins version negotiation: the right banner passes, a gob
// stream (or any foreign bytes) fails with ErrVersionSkew before a frame
// is parsed, and a future version number is refused.
func TestHello(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ReadHello(&buf); err != nil {
		t.Fatalf("self hello rejected: %v", err)
	}
	for name, banner := range map[string][]byte{
		"gob stream":     {0x2b, 0xff, 0x81, 0x03, 0x01}, // typical gob type-def prefix
		"foreign":        []byte("HTTP/"),
		"future version": {'A', 'L', 'P', 'W', Version + 1},
	} {
		if err := ReadHello(bytes.NewReader(banner)); !errors.Is(err, ErrVersionSkew) {
			t.Errorf("%s: got %v, want ErrVersionSkew", name, err)
		}
	}
	if err := ReadHello(bytes.NewReader([]byte{'A', 'L'})); err == nil {
		t.Error("truncated hello accepted")
	}
}

type testJob struct {
	Name  string
	Pages int
	Tags  []string
}

// TestNamedTypesRoundTrip covers the registered-user-type path.
func TestNamedTypesRoundTrip(t *testing.T) {
	tab := NewTypeTable()
	tab.Register(testJob{})
	snap := tab.Snapshot()
	in := testJob{Name: "thesis", Pages: 88, Tags: []string{"alps", "sched"}}
	got := roundTrip(t, &Frame{Kind: KindRequest, Object: "O", Entry: "E", Params: []any{in}}, snap)
	if !reflect.DeepEqual(got.Params[0], in) {
		t.Fatalf("named type %+v became %+v", in, got.Params[0])
	}

	// Unregistered type: encode must fail with ErrUnsupported, wire stays clean.
	type hidden struct{ X int }
	if _, err := AppendFrame(nil, &Frame{Kind: KindRequest, Object: "O", Entry: "E",
		Params: []any{hidden{1}}}, snap); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("unregistered type: got %v, want ErrUnsupported", err)
	}
	// Decoding a name the receiver doesn't know must be malformed, not a panic.
	empty := NewTypeTable().Snapshot()
	data := mustEncode(t, &Frame{Kind: KindRequest, Object: "O", Entry: "E", Params: []any{in}}, snap)
	if _, err := DecodeFrame(data, empty); !errors.Is(err, ErrMalformed) {
		t.Fatalf("unknown named type on decode: got %v, want ErrMalformed", err)
	}
}

// TestConcurrentRegister is the regression test for the gob.Register
// sprawl bugfix: many goroutines registering overlapping type sets while
// links snapshot concurrently must neither race (caught by -race) nor
// panic on duplicates — the failure mode global gob registration had.
func TestConcurrentRegister(t *testing.T) {
	tab := NewTypeTable()
	type a struct{ X int }
	type b struct{ Y string }
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tab.Register(a{})
				tab.Register(b{})
				tab.Register(testJob{})
				snap := tab.Snapshot()
				if _, err := AppendFrame(nil, &Frame{Kind: KindRequest, Object: "O", Entry: "E",
					Params: []any{a{j}}}, snap); err != nil {
					t.Errorf("encode after register: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(tab.Names()); got != 3 {
		t.Fatalf("table holds %d names, want 3 (%v)", got, tab.Names())
	}
	// Snapshots are frozen: registering on one must panic loudly rather
	// than mutate a table a live link is reading.
	snap := tab.Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("Register on frozen snapshot did not panic")
		}
	}()
	snap.Register(a{})
}

// TestDecoderBytesRead checks the byte accounting the link metrics ride on.
func TestDecoderBytesRead(t *testing.T) {
	tab := NewTypeTable()
	data := mustEncode(t, &Frame{Kind: KindList, ID: 1}, tab)
	d := NewDecoder(bufio.NewReader(bytes.NewReader(data)), tab)
	var f Frame
	if err := d.Decode(&f); err != nil {
		t.Fatal(err)
	}
	if got := d.BytesRead(); got != uint64(len(data)) {
		t.Fatalf("BytesRead = %d, want %d", got, len(data))
	}
	if got := d.BytesRead(); got != 0 {
		t.Fatalf("BytesRead did not reset: %d", got)
	}
}
