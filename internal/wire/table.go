package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// TypeTable maps user-defined param/result types to wire names. The
// built-in types (value.go's tag set) never touch it; only types outside
// that set — structs registered by applications — go through tagNamed.
//
// Unlike gob's process-global registry, a TypeTable is an explicit value:
// registration is concurrency-safe and idempotent, duplicate names cannot
// panic (names are fully qualified by package path, so two distinct types
// can never collide), and links capture an immutable Snapshot at creation
// so concurrent Register calls can never race a link's encoder.
type TypeTable struct {
	mu    sync.RWMutex
	types map[string]reflect.Type

	// frozen tables (link snapshots) reject Register instead of racing.
	frozen bool
}

// NewTypeTable returns an empty, mutable table.
func NewTypeTable() *TypeTable {
	return &TypeTable{types: make(map[string]reflect.Type)}
}

// typeName returns the fully qualified wire name for v's dynamic type:
// "pkgpath.TypeName". Unnamed or unexported-package types return "".
func typeName(rt reflect.Type) string {
	if rt.Name() == "" {
		return ""
	}
	if pp := rt.PkgPath(); pp != "" {
		return pp + "." + rt.Name()
	}
	return rt.Name()
}

// Register makes v's concrete type encodable through this table. Safe for
// concurrent use; registering the same type twice is a no-op. Distinct
// types always get distinct names (package-path qualified), so the
// duplicate-name panic class of gob.Register is structurally impossible.
func (t *TypeTable) Register(v any) {
	rt := reflect.TypeOf(v)
	if rt == nil {
		return
	}
	name := typeName(rt)
	if name == "" {
		panic(fmt.Sprintf("wire: cannot register unnamed type %v", rt))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen {
		panic("wire: Register on a frozen TypeTable snapshot")
	}
	if prev, ok := t.types[name]; ok && prev != rt {
		// Only reachable if two types share a package path and name —
		// i.e. never from real Go code. Guard anyway.
		panic(fmt.Sprintf("wire: name %q already registered for %v", name, prev))
	}
	t.types[name] = rt
}

// Snapshot returns an immutable copy of the table. Links take one at
// creation: later Register calls on the source table do not affect frames
// already in flight, and nothing can mutate the snapshot.
func (t *TypeTable) Snapshot() *TypeTable {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cp := make(map[string]reflect.Type, len(t.types))
	for k, v := range t.types {
		cp[k] = v
	}
	return &TypeTable{types: cp, frozen: true}
}

// Names returns the registered wire names, sorted (for tests/debugging).
func (t *TypeTable) Names() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.types))
	for k := range t.types {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// appendNamed encodes a registered user type as
// `tagNamed | name | gob(value)`. The gob payload is a self-contained
// per-value stream (fresh encoder), so it needs no registry on the far
// side beyond this table — the name lookup supplies the concrete type and
// gob fills in the fields reflectively. User structs are the cold path;
// the hot-path types all have dedicated tags.
func (t *TypeTable) appendNamed(dst []byte, v any) ([]byte, error) {
	rt := reflect.TypeOf(v)
	name := typeName(rt)
	t.mu.RLock()
	reg, ok := t.types[name]
	t.mu.RUnlock()
	if name == "" || !ok || reg != rt {
		return nil, fmt.Errorf("%w: %T (register it with rpc.Register)", ErrUnsupported, v)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("%w: %T: %v", ErrUnsupported, v, err)
	}
	dst = append(dst, tagNamed)
	dst = appendStringField(dst, name)
	return appendBytesField(dst, buf.Bytes()), nil
}

// decodeNamed reconstructs a registered user type from its wire name and
// gob payload.
func (t *TypeTable) decodeNamed(name string, payload []byte) (any, error) {
	t.mu.RLock()
	rt, ok := t.types[name]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: unregistered type %q", ErrMalformed, name)
	}
	pv := reflect.New(rt)
	if err := gob.NewDecoder(bytes.NewReader(payload)).DecodeValue(pv); err != nil {
		return nil, fmt.Errorf("%w: decoding %q: %v", ErrMalformed, name, err)
	}
	return pv.Elem().Interface(), nil
}

// DefaultTable is the table package-level Register feeds. It exists so the
// common one-node-per-process case keeps the old ergonomic
// `rpc.Register(T{})`; multi-node tests that want isolation can build their
// own tables.
var DefaultTable = NewTypeTable()

// Register adds v's type to DefaultTable.
func Register(v any) { DefaultTable.Register(v) }
