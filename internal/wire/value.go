package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Value tags. Every param/result/message value is `tag | payload`. Integer
// payloads are varints (zigzag for signed), floats are fixed-width
// little-endian IEEE 754, and byte-ish payloads are `uvarint len | bytes`.
// The tag preserves the concrete Go type, so a value round-trips to the
// exact dynamic type it was sent with (an int8 comes back an int8, the way
// gob behaved) — the property-based round-trip test pins this.
const (
	tagNil byte = iota
	tagFalse
	tagTrue
	tagInt
	tagInt8
	tagInt16
	tagInt32
	tagInt64
	tagUint
	tagUint8
	tagUint16
	tagUint32
	tagUint64
	tagFloat32
	tagFloat64
	tagString  // uvarint len | utf-8 bytes (decoded as a copy: strings are immutable)
	tagBytes   // uvarint len | bytes     (decoded aliasing the frame arena)
	tagList    // uvarint n | n values    ([]any)
	tagMap     // uvarint n | n (string key, value) pairs (map[string]any)
	tagChanRef // uvarint len | channel name
	tagPair    // two zigzag varints ([2]int, the classic buffer-test tuple)
	tagErr     // ErrKind byte | uvarint len | message (any error value)
	tagNamed   // registered user type: uvarint len | type name | uvarint len | gob payload
)

// maxValueDepth bounds nesting of lists/maps so a hostile frame cannot
// recurse the decoder into a stack overflow.
const maxValueDepth = 32

// appendUvarint / appendVarint are binary.AppendUvarint/AppendVarint,
// named locally for symmetry with the readers below.
func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }
func appendVarint(dst []byte, v int64) []byte   { return binary.AppendVarint(dst, v) }

// uvarint reads a uvarint off the front of b. n == 0 reports a truncated
// or oversized varint.
func uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated uvarint", ErrMalformed)
	}
	return v, b[n:], nil
}

func varint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated varint", ErrMalformed)
	}
	return v, b[n:], nil
}

// bytesField reads `uvarint len | bytes`, returning a subslice of b (no
// copy) — the caller decides whether aliasing is allowed.
func bytesField(b []byte) ([]byte, []byte, error) {
	n, b, err := uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("%w: field length %d exceeds remaining %d bytes", ErrMalformed, n, len(b))
	}
	return b[:n], b[n:], nil
}

func appendBytesField(dst []byte, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendStringField(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendValue encodes one value. Unsupported types (never registered in t)
// return ErrUnsupported before any byte of the value is committed; the
// caller discards the whole frame, so a half-encoded value never reaches
// the wire.
func appendValue(dst []byte, v any, t *TypeTable) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, tagNil), nil
	case bool:
		if x {
			return append(dst, tagTrue), nil
		}
		return append(dst, tagFalse), nil
	case int:
		return appendVarint(append(dst, tagInt), int64(x)), nil
	case int8:
		return appendVarint(append(dst, tagInt8), int64(x)), nil
	case int16:
		return appendVarint(append(dst, tagInt16), int64(x)), nil
	case int32:
		return appendVarint(append(dst, tagInt32), int64(x)), nil
	case int64:
		return appendVarint(append(dst, tagInt64), x), nil
	case uint:
		return appendUvarint(append(dst, tagUint), uint64(x)), nil
	case uint8:
		return appendUvarint(append(dst, tagUint8), uint64(x)), nil
	case uint16:
		return appendUvarint(append(dst, tagUint16), uint64(x)), nil
	case uint32:
		return appendUvarint(append(dst, tagUint32), uint64(x)), nil
	case uint64:
		return appendUvarint(append(dst, tagUint64), x), nil
	case float32:
		return binary.LittleEndian.AppendUint32(append(dst, tagFloat32), math.Float32bits(x)), nil
	case float64:
		return binary.LittleEndian.AppendUint64(append(dst, tagFloat64), math.Float64bits(x)), nil
	case string:
		return appendStringField(append(dst, tagString), x), nil
	case []byte:
		return appendBytesField(append(dst, tagBytes), x), nil
	case []any:
		dst = appendUvarint(append(dst, tagList), uint64(len(x)))
		var err error
		for _, e := range x {
			if dst, err = appendValue(dst, e, t); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case map[string]any:
		dst = appendUvarint(append(dst, tagMap), uint64(len(x)))
		var err error
		for k, e := range x {
			dst = appendStringField(dst, k)
			if dst, err = appendValue(dst, e, t); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case ChanRef:
		return appendStringField(append(dst, tagChanRef), x.Name), nil
	case [2]int:
		dst = appendVarint(append(dst, tagPair), int64(x[0]))
		return appendVarint(dst, int64(x[1])), nil
	case error:
		msg, kind := EncodeErr(x)
		dst = append(dst, tagErr, byte(kind))
		return appendStringField(dst, msg), nil
	default:
		return t.appendNamed(dst, v)
	}
}

// valueDecoder carries per-frame decode state: the type table snapshot and
// whether any decoded value aliases the frame arena (tagBytes does; the
// frame buffer must then outlive the values instead of being recycled).
type valueDecoder struct {
	table   *TypeTable
	aliased bool
}

// value decodes one value off the front of b.
func (d *valueDecoder) value(b []byte, depth int) (any, []byte, error) {
	if depth > maxValueDepth {
		return nil, nil, fmt.Errorf("%w: value nesting exceeds %d", ErrMalformed, maxValueDepth)
	}
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("%w: truncated value", ErrMalformed)
	}
	tag, b := b[0], b[1:]
	switch tag {
	case tagNil:
		return nil, b, nil
	case tagTrue:
		return true, b, nil
	case tagFalse:
		return false, b, nil
	case tagInt, tagInt8, tagInt16, tagInt32, tagInt64:
		v, b, err := varint(b)
		if err != nil {
			return nil, nil, err
		}
		switch tag {
		case tagInt:
			return int(v), b, nil
		case tagInt8:
			return int8(v), b, nil
		case tagInt16:
			return int16(v), b, nil
		case tagInt32:
			return int32(v), b, nil
		default:
			return v, b, nil
		}
	case tagUint, tagUint8, tagUint16, tagUint32, tagUint64:
		v, b, err := uvarint(b)
		if err != nil {
			return nil, nil, err
		}
		switch tag {
		case tagUint:
			return uint(v), b, nil
		case tagUint8:
			return uint8(v), b, nil
		case tagUint16:
			return uint16(v), b, nil
		case tagUint32:
			return uint32(v), b, nil
		default:
			return v, b, nil
		}
	case tagFloat32:
		if len(b) < 4 {
			return nil, nil, fmt.Errorf("%w: truncated float32", ErrMalformed)
		}
		return math.Float32frombits(binary.LittleEndian.Uint32(b)), b[4:], nil
	case tagFloat64:
		if len(b) < 8 {
			return nil, nil, fmt.Errorf("%w: truncated float64", ErrMalformed)
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
	case tagString:
		raw, b, err := bytesField(b)
		if err != nil {
			return nil, nil, err
		}
		return string(raw), b, nil
	case tagBytes:
		raw, b, err := bytesField(b)
		if err != nil {
			return nil, nil, err
		}
		// Ownership transfer: the value aliases the frame arena; the
		// decoder marks the arena as escaped instead of copying.
		d.aliased = true
		return raw, b, nil
	case tagList:
		n, b, err := uvarint(b)
		if err != nil {
			return nil, nil, err
		}
		// Each element costs at least one tag byte, so n > len(b) cannot
		// be satisfied — reject before allocating n slots.
		if n > uint64(len(b)) {
			return nil, nil, fmt.Errorf("%w: list of %d elements in %d bytes", ErrMalformed, n, len(b))
		}
		out := make([]any, n)
		for i := range out {
			if out[i], b, err = d.value(b, depth+1); err != nil {
				return nil, nil, err
			}
		}
		return out, b, nil
	case tagMap:
		n, b, err := uvarint(b)
		if err != nil {
			return nil, nil, err
		}
		if n > uint64(len(b)) {
			return nil, nil, fmt.Errorf("%w: map of %d entries in %d bytes", ErrMalformed, n, len(b))
		}
		out := make(map[string]any, n)
		for i := uint64(0); i < n; i++ {
			var raw []byte
			if raw, b, err = bytesField(b); err != nil {
				return nil, nil, err
			}
			var v any
			if v, b, err = d.value(b, depth+1); err != nil {
				return nil, nil, err
			}
			out[string(raw)] = v
		}
		return out, b, nil
	case tagChanRef:
		raw, b, err := bytesField(b)
		if err != nil {
			return nil, nil, err
		}
		return ChanRef{Name: string(raw)}, b, nil
	case tagPair:
		a, b, err := varint(b)
		if err != nil {
			return nil, nil, err
		}
		c, b, err := varint(b)
		if err != nil {
			return nil, nil, err
		}
		return [2]int{int(a), int(c)}, b, nil
	case tagErr:
		if len(b) < 1 {
			return nil, nil, fmt.Errorf("%w: truncated error kind", ErrMalformed)
		}
		kind, b := ErrKind(b[0]), b[1:]
		if !kind.Valid() || kind == ErrNone {
			return nil, nil, fmt.Errorf("%w: unknown error kind %d in value", ErrMalformed, kind)
		}
		raw, b, err := bytesField(b)
		if err != nil {
			return nil, nil, err
		}
		return DecodeErr(string(raw), kind), b, nil
	case tagNamed:
		name, b, err := bytesField(b)
		if err != nil {
			return nil, nil, err
		}
		payload, b, err := bytesField(b)
		if err != nil {
			return nil, nil, err
		}
		v, err := d.table.decodeNamed(string(name), payload)
		if err != nil {
			return nil, nil, err
		}
		return v, b, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown value tag %d", ErrMalformed, tag)
	}
}

// appendValues encodes a value slice as `uvarint n | values`. A nil slice
// encodes as n == 0 and decodes back to nil.
func appendValues(dst []byte, vals []any, t *TypeTable) ([]byte, error) {
	dst = appendUvarint(dst, uint64(len(vals)))
	var err error
	for _, v := range vals {
		if dst, err = appendValue(dst, v, t); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func (d *valueDecoder) values(b []byte) ([]any, []byte, error) {
	n, b, err := uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, b, nil
	}
	if n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("%w: %d values in %d bytes", ErrMalformed, n, len(b))
	}
	out := make([]any, n)
	for i := range out {
		if out[i], b, err = d.value(b, 0); err != nil {
			return nil, nil, err
		}
	}
	return out, b, nil
}
