// Package wire is the transport-agnostic binary wire format of the rpc
// substrate: a length-prefixed, CRC-guarded frame codec with a compact
// tag-based value encoding, replacing the gob streams of the early PRs.
//
// Design goals, in order:
//
//   - Cheap: encoding appends to a pooled []byte with no reflection on the
//     supported types; decoding parses out of a single per-frame arena and
//     aliases it where ownership transfer allows (docs/WIRE.md).
//   - Self-delimiting: every frame is `uvarint length | crc32c | payload`,
//     so a reader can size its buffer before parsing and a flipped byte
//     anywhere in the frame is detected with certainty rather than the
//     "overwhelming probability" gob gave us (docs/FAULTS.md §corruption).
//   - Loud on skew: connections open with a fixed magic+version hello;
//     a peer speaking another protocol (or the old gob framing) fails the
//     hello with ErrVersionSkew instead of producing garbage frames.
//
// The package is independent of any particular transport: internal/rpc
// runs it over TCP and simnet, and future replication traffic (ROADMAP
// item 1) can reuse the same frames.
package wire

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
)

// Kind discriminates wire frames.
type Kind uint8

const (
	KindRequest  Kind = iota + 1 // call an entry procedure
	KindResponse                 // results of a request
	KindChanSend                 // message for a published channel
	KindList                     // list hosted objects
	KindListResp                 // response to KindList
)

// Valid reports whether k is a known frame kind.
func (k Kind) Valid() bool { return k >= KindRequest && k <= KindListResp }

// ErrKind carries sentinel-error identity across the wire.
type ErrKind uint8

const (
	ErrNone ErrKind = iota
	ErrGeneric
	ErrKindClosed
	ErrKindUnknownEntry
	ErrKindUnknownObject
	ErrKindBadArity
	ErrKindOverload      // core.ErrOverload: admission control shed the call; retryable
	ErrKindPoisoned      // core.ErrObjectPoisoned: object's manager died; terminal
	ErrKindReplayTimeout // ErrReplayTimeout: duplicate gave up waiting on the primary; retryable
	ErrKindNotLeader     // ErrNotLeader: replica cannot commit the call here; retryable, same seq
)

// Valid reports whether k is a known error kind.
func (k ErrKind) Valid() bool { return k <= ErrKindNotLeader }

// Frame is the single wire message type.
type Frame struct {
	Kind    Kind
	ID      uint64
	Object  string
	Entry   string
	Params  []any
	Results []any
	Err     string
	ErrKind ErrKind
	Chan    string
	Names   []string

	// Client and Seq identify a logical call across retries and
	// reconnects: Client is the caller's stable identity, Seq its
	// per-client call sequence number. Nodes dedup on the pair so retried
	// requests execute at most once (docs/FAULTS.md); a zero Client means
	// the caller wants no dedup.
	Client string
	Seq    uint64
}

// ChanRef names a channel published on the sending side of a call. When a
// ChanRef arrives as a call parameter, the receiving node replaces it with
// a live channel whose sends are forwarded back to the publisher — this is
// how a user communicates with an executing remote procedure (§1). The
// "Channels as Objects" model (PAPERS.md, arXiv 1110.4157) rides on this:
// channel ends are first-class remote values.
type ChanRef struct {
	Name string
}

// ErrMalformed reports a frame that failed structural validation: a bad
// length, a CRC mismatch, a truncated varint, an unknown tag or an
// out-of-protocol discriminant. A peer producing such frames is either
// corrupting bytes or not speaking this protocol, so links tear down on it
// rather than guessing. internal/rpc re-exports it as ErrBadFrame.
var ErrMalformed = errors.New("wire: malformed frame")

// ErrVersionSkew reports a connection whose hello did not carry this
// package's magic and version — an old gob-era peer, a different protocol
// entirely, or a corrupted stream. It is deliberately distinct from
// ErrMalformed so operators can tell "mixed-version cluster" from "bytes
// rotted in flight".
var ErrVersionSkew = errors.New("wire: protocol version mismatch (gob-era or foreign peer?)")

// ErrUnsupported reports a value that the codec cannot encode: a type
// outside the supported set that was never registered. Unlike a decode
// failure it is detected before any byte reaches the wire, so the link
// survives it.
var ErrUnsupported = errors.New("wire: unsupported value type")

// ErrUnknownObject is returned when a call names an object the node does
// not host. Defined here (not in rpc) so the error codec can map it.
var ErrUnknownObject = errors.New("rpc: unknown object")

// ErrReplayTimeout is returned to a duplicate request that waited out the
// node's ReplayWait without seeing the primary execution of its
// (client, seq) complete. Retryable with the SAME sequence number.
var ErrReplayTimeout = errors.New("rpc: timed out waiting for in-flight duplicate")

// ErrNotLeader is returned by a consensus-replicated object
// (internal/replica) when the member that received a call cannot commit it:
// no leader is known, an election is in flight, or a forward to the leader
// failed. The call did not commit here, but it MAY have committed on the
// group (a forwarded call whose response was lost), so retries must keep
// the SAME sequence number — the replicated session table turns the retry
// into a replay if the original landed (docs/REPLICATION.md).
var ErrNotLeader = errors.New("replica: not the leader")

// Validate rejects frames whose discriminants fall outside the protocol.
// The decoder enforces the same bounds while parsing; this remains the
// defense-in-depth hook for frames constructed in-process (tests, fuzz).
func (f *Frame) Validate() error {
	if !f.Kind.Valid() {
		return fmt.Errorf("%w: unknown frame kind %d", ErrMalformed, int(f.Kind))
	}
	if !f.ErrKind.Valid() {
		return fmt.Errorf("%w: unknown error kind %d", ErrMalformed, int(f.ErrKind))
	}
	return nil
}

// EncodeErr maps an error to its wire representation.
func EncodeErr(err error) (string, ErrKind) {
	if err == nil {
		return "", ErrNone
	}
	kind := ErrGeneric
	switch {
	// Poison wraps the manager's panic text, which could itself mention
	// other sentinels; check it first so the terminal classification wins.
	case errors.Is(err, core.ErrObjectPoisoned):
		kind = ErrKindPoisoned
	case errors.Is(err, core.ErrOverload):
		kind = ErrKindOverload
	case errors.Is(err, core.ErrClosed):
		kind = ErrKindClosed
	case errors.Is(err, core.ErrUnknownEntry):
		kind = ErrKindUnknownEntry
	case errors.Is(err, ErrUnknownObject):
		kind = ErrKindUnknownObject
	case errors.Is(err, core.ErrBadArity):
		kind = ErrKindBadArity
	case errors.Is(err, ErrReplayTimeout):
		kind = ErrKindReplayTimeout
	case errors.Is(err, ErrNotLeader):
		kind = ErrKindNotLeader
	}
	return err.Error(), kind
}

// DecodeErr reconstructs an error from its wire representation, preserving
// sentinel identity for errors.Is.
func DecodeErr(msg string, kind ErrKind) error {
	if kind == ErrNone {
		return nil
	}
	switch kind {
	case ErrKindClosed:
		return rewrap(msg, core.ErrClosed)
	case ErrKindUnknownEntry:
		return rewrap(msg, core.ErrUnknownEntry)
	case ErrKindUnknownObject:
		return rewrap(msg, ErrUnknownObject)
	case ErrKindBadArity:
		return rewrap(msg, core.ErrBadArity)
	case ErrKindOverload:
		return rewrap(msg, core.ErrOverload)
	case ErrKindPoisoned:
		return rewrap(msg, core.ErrObjectPoisoned)
	case ErrKindReplayTimeout:
		return rewrap(msg, ErrReplayTimeout)
	case ErrKindNotLeader:
		return rewrap(msg, ErrNotLeader)
	case ErrGeneric:
		return errors.New(msg)
	default:
		// The decoder rejects out-of-range kinds before dispatch, so this
		// is defense in depth for callers that skip validation.
		return fmt.Errorf("%s: %w", msg, ErrMalformed)
	}
}

// rewrap re-attaches a sentinel to a remote error message for errors.Is,
// without repeating the sentinel's own text when the message (produced by
// wrapping the same sentinel on the server) already ends with it.
func rewrap(msg string, sentinel error) error {
	s := sentinel.Error()
	if msg == s {
		return sentinel
	}
	msg = strings.TrimSuffix(msg, ": "+s)
	return fmt.Errorf("%s: %w", msg, sentinel)
}

// Version is the wire protocol version carried in the hello exchange.
// Bump it on any incompatible frame-layout or tag change.
const Version = 1

// hello is the fixed banner each side writes before its first frame: a
// 4-byte magic that no gob stream starts with, then the version byte.
var hello = [5]byte{'A', 'L', 'P', 'W', Version}

// WriteHello writes the protocol banner. Call it once, before any frame.
func WriteHello(w io.Writer) error {
	_, err := w.Write(hello[:])
	return err
}

// ReadHello consumes and verifies the peer's banner. A mismatched magic
// or version returns ErrVersionSkew — the "old-gob peers fail loudly"
// guarantee: a stream that opens with anything else is torn down before a
// single frame is parsed.
func ReadHello(r io.Reader) error {
	var got [5]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return fmt.Errorf("reading hello: %w", err)
	}
	if got[0] != hello[0] || got[1] != hello[1] || got[2] != hello[2] || got[3] != hello[3] {
		return fmt.Errorf("%w: bad magic %q", ErrVersionSkew, got[:4])
	}
	if got[4] != Version {
		return fmt.Errorf("%w: peer speaks version %d, this build speaks %d", ErrVersionSkew, got[4], Version)
	}
	return nil
}
