package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzWireDecode feeds arbitrary byte streams to the frame decoder — the
// migration of internal/rpc's gob-era FuzzFrameDecode corpus to the binary
// codec. readLoop treats any decode failure as link death, so a truncated,
// corrupted, or adversarial stream must produce an error — never a panic,
// a hang, or an unbounded allocation — and whatever does decode must pass
// Validate and round-trip the error codec consistently.
func FuzzWireDecode(f *testing.F) {
	tab := NewTypeTable()
	seedFrames := []Frame{
		{Kind: KindRequest, ID: 1, Object: "X", Entry: "P", Params: []any{1, "s"}, Client: "c", Seq: 7},
		{Kind: KindResponse, ID: 2, Results: []any{42}, Err: "boom", ErrKind: ErrKindClosed},
		{Kind: KindChanSend, Chan: "chan-1", Params: []any{[]byte{1, 2, 3}}},
		{Kind: KindList, ID: 3},
		{Kind: KindListResp, ID: 3, Names: []string{"A", "B"}},
		// Group-routed request: a call addressed to a shard.Group published
		// under one name, with the string routing key in params — the wire
		// shape cmd/alpsd serves with -shards.
		{Kind: KindRequest, ID: 4, Object: "words", Entry: "Add", Params: []any{"alps", 3}, Client: "g", Seq: 1},
		{Kind: KindResponse, ID: 4, Err: "shard 2 poisoned", ErrKind: ErrKindPoisoned},
		// Exercise every value tag, including nesting.
		{Kind: KindRequest, ID: 5, Object: "O", Entry: "E", Params: []any{
			nil, true, false, -7, int8(1), int16(2), int32(3), int64(4),
			uint(5), uint8(6), uint16(7), uint32(8), uint64(9),
			float32(1.5), 2.5, "str", []byte{0xff},
			[]any{"nested", map[string]any{"k": [2]int{1, 2}}},
			ChanRef{Name: "ch"},
		}},
		// Consensus traffic (internal/replica) rides the same request
		// frames: votes, append-entries batches and snapshot installs
		// addressed to a group's control endpoint. Seed the healthy shapes
		// so the mutators below derive truncated votes, stale terms and
		// absurd LSNs from realistic bytes.
		{Kind: KindRequest, ID: 6, Object: "!raft:KV", Entry: "RequestVote",
			Params: []any{uint64(7), "b", uint64(42), uint64(6)}, Client: "b", Seq: 9},
		{Kind: KindRequest, ID: 7, Object: "!raft:KV", Entry: "AppendEntries",
			Params: []any{uint64(7), "a", uint64(41), uint64(6), uint64(40), []any{
				[]any{uint64(7), "Append", "c1", uint64(3), []any{"k", "v"}},
				[]any{uint64(7), "", "", uint64(0), []any{}}, // no-op barrier
			}}, Client: "a", Seq: 12},
		// Stale term (0) and absurd LSN/prev-index (max uint64): the replica
		// layer must reject these by value, but the codec must pass them
		// through unharmed — they are structurally legal frames.
		{Kind: KindRequest, ID: 8, Object: "!raft:KV", Entry: "AppendEntries",
			Params: []any{uint64(0), "z", uint64(1<<64 - 1), uint64(1<<64 - 1), uint64(1<<64 - 1), []any{}}},
		{Kind: KindRequest, ID: 9, Object: "!raft:KV", Entry: "InstallSnapshot",
			Params: []any{uint64(8), "a", uint64(1 << 62), uint64(8), []byte("snapshot-blob")}},
		{Kind: KindResponse, ID: 9, Err: "replica: not the leader", ErrKind: ErrKindNotLeader},
		// ReadIndex control traffic: the lightweight Heartbeat frame a
		// leader uses to confirm leadership for a read round
		// ([term, leaderID, confirm]), its [term, ok, confirm] echo, and
		// an AppendEntries ack carrying a piggybacked confirmation.
		{Kind: KindRequest, ID: 10, Object: "!raft:KV", Entry: "Heartbeat",
			Params: []any{uint64(7), "a", uint64(19)}, Client: "a", Seq: 14},
		{Kind: KindResponse, ID: 10, Results: []any{uint64(7), true, uint64(19)}},
		{Kind: KindResponse, ID: 7, Results: []any{uint64(7), true, uint64(0), uint64(19)}},
		// Hostile confirmation values: a round counter from the far future
		// and a zero-term heartbeat — structurally legal, rejected by value
		// at the replica layer, passed through unharmed by the codec.
		{Kind: KindRequest, ID: 11, Object: "!raft:KV", Entry: "Heartbeat",
			Params: []any{uint64(0), "", uint64(1<<64 - 1)}},
	}
	var full []byte
	for i := range seedFrames {
		b, err := AppendFrame(full, &seedFrames[i], tab)
		if err != nil {
			f.Fatal(err)
		}
		full = b
	}
	f.Add(append([]byte(nil), full...))
	// Truncations at assorted depths.
	for _, cut := range []int{1, len(full) / 3, len(full) / 2, len(full) - 1} {
		f.Add(append([]byte(nil), full[:cut]...))
	}
	// Truncated consensus frames: a vote, an append-entries batch and the
	// ReadIndex heartbeat/ack shapes cut mid-payload — what a leader kill
	// between confirmation and serve leaves on the wire.
	for _, i := range []int{5, 6, 7, 13, 14, 16} {
		b, err := AppendFrame(nil, &seedFrames[i], tab)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), b[:len(b)/2]...))
		f.Add(append([]byte(nil), b[:len(b)-3]...))
	}
	// Byte corruption sweep (CRC must catch these).
	corrupted := append([]byte(nil), full...)
	for i := 7; i < len(corrupted); i += 13 {
		corrupted[i] ^= 0xff
	}
	f.Add(corrupted)
	// Tag mutation: smash plausible tag positions to out-of-range values.
	mutTags := append([]byte(nil), full...)
	for i := 8; i < len(mutTags); i += 11 {
		mutTags[i] = 200 + byte(i%50)
	}
	f.Add(mutTags)
	// Length mutation: inflate the first frame's length prefix.
	f.Add(append([]byte{0xff, 0xff, 0xff, 0x7f}, full[:16]...))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bufio.NewReader(bytes.NewReader(data)), tab)
		for i := 0; i < 64; i++ {
			var fr Frame
			if err := d.Decode(&fr); err != nil {
				return // corrupt/truncated input must fail cleanly
			}
			// Anything the decoder accepts must be in-protocol.
			if err := fr.Validate(); err != nil {
				t.Fatalf("decoder produced invalid frame %+v: %v", fr, err)
			}
			if err := DecodeErr(fr.Err, fr.ErrKind); (err == nil) != (fr.ErrKind == ErrNone) {
				t.Fatalf("DecodeErr(%q, %d) nil-ness inconsistent", fr.Err, fr.ErrKind)
			}
		}
	})
}
