package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// MaxFrame caps the payload size the decoder will buffer for a single
// frame. Anything larger is treated as malformed — a corrupted or hostile
// length prefix must not convince the reader to allocate gigabytes.
const MaxFrame = 16 << 20

// castagnoli is the CRC-32C table; crc32c is hardware-accelerated on the
// platforms we run on.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// bufPool recycles encode buffers. Frames are framed as
// `uvarint len | crc32c | payload`, so the encoder builds the payload in a
// pooled scratch first, then commits the framed bytes in one append.
var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 1024); return &b },
}

// GetBuf returns a pooled, empty byte slice for encode scratch.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf recycles a buffer obtained from GetBuf. Oversized buffers are
// dropped so one huge frame doesn't pin memory in the pool forever.
func PutBuf(b *[]byte) {
	if cap(*b) > 1<<20 {
		return
	}
	bufPool.Put(b)
}

// appendPayload encodes f's body (everything inside the frame envelope).
// Field order is fixed per kind; absent fields are simply not encoded, so
// a request carries no error slot and a response no object name.
func appendPayload(dst []byte, f *Frame, t *TypeTable) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	dst = append(dst, byte(f.Kind))
	dst = appendUvarint(dst, f.ID)
	var err error
	switch f.Kind {
	case KindRequest:
		dst = appendStringField(dst, f.Object)
		dst = appendStringField(dst, f.Entry)
		dst = appendStringField(dst, f.Client)
		dst = appendUvarint(dst, f.Seq)
		if dst, err = appendValues(dst, f.Params, t); err != nil {
			return nil, err
		}
	case KindResponse:
		dst = append(dst, byte(f.ErrKind))
		dst = appendStringField(dst, f.Err)
		if dst, err = appendValues(dst, f.Results, t); err != nil {
			return nil, err
		}
	case KindChanSend:
		dst = appendStringField(dst, f.Chan)
		if dst, err = appendValues(dst, f.Params, t); err != nil {
			return nil, err
		}
	case KindList:
		// kind and ID only
	case KindListResp:
		dst = appendUvarint(dst, uint64(len(f.Names)))
		for _, n := range f.Names {
			dst = appendStringField(dst, n)
		}
	}
	return dst, nil
}

// AppendFrame appends the complete wire encoding of f —
// `uvarint len | crc32c(payload) | payload` — to dst. Encoding failures
// (unsupported value types) leave dst unchanged, so a half-encoded frame
// can never reach the wire: the caller reports the error to the local
// waiter and the link lives on.
func AppendFrame(dst []byte, f *Frame, t *TypeTable) ([]byte, error) {
	scratch := GetBuf()
	defer PutBuf(scratch)
	payload, err := appendPayload(*scratch, f, t)
	if err != nil {
		return dst, err
	}
	*scratch = payload
	if len(payload) > MaxFrame {
		return dst, fmt.Errorf("%w: frame payload %d exceeds MaxFrame", ErrMalformed, len(payload))
	}
	dst = appendUvarint(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...), nil
}

// Decoder reads frames off a buffered stream. It is not safe for
// concurrent use — each link owns one, driven by its read loop.
type Decoder struct {
	r     *bufio.Reader
	table *TypeTable

	// arena is the per-frame payload buffer. If a decoded value aliased it
	// (tagBytes ownership transfer), the arena has escaped to the caller
	// and is abandoned to the GC; otherwise it is reused for the next
	// frame. This mirrors PR 2's copy-elision rule: the producer hands the
	// buffer over instead of copying, and never touches it again.
	arena []byte

	// interned caches small repeated strings — object, entry, client and
	// channel names recur on every frame of a conversation, so decode them
	// once instead of allocating per frame.
	interned map[string]string

	// bytesRead counts wire bytes consumed (header + CRC + payload),
	// drained by the link into its BytesRecv metric.
	bytesRead uint64
}

// NewDecoder returns a Decoder reading from r using table's registered
// user types. The table should be an immutable Snapshot when links share
// a source table across goroutines.
func NewDecoder(r *bufio.Reader, table *TypeTable) *Decoder {
	return &Decoder{r: r, table: table, interned: make(map[string]string)}
}

// BytesRead returns and resets the count of wire bytes consumed since the
// last call.
func (d *Decoder) BytesRead() uint64 {
	n := d.bytesRead
	d.bytesRead = 0
	return n
}

// intern returns raw as a string, reusing a prior allocation when the same
// bytes were seen before. Only used for identifier-ish fields; payload
// strings are not interned (arbitrary cardinality would grow the map
// without bound).
func (d *Decoder) intern(raw []byte) string {
	if len(raw) == 0 {
		return ""
	}
	if s, ok := d.interned[string(raw)]; ok { // no-alloc map lookup
		return s
	}
	s := string(raw)
	if len(d.interned) < 4096 && len(s) <= 256 {
		d.interned[s] = s
	}
	return s
}

func (d *Decoder) internField(b []byte) (string, []byte, error) {
	raw, b, err := bytesField(b)
	if err != nil {
		return "", nil, err
	}
	return d.intern(raw), b, nil
}

// Decode reads the next frame into f. Frame fields are freshly decoded
// values (or arena aliases, per the tagBytes rule); f's previous contents
// are fully overwritten. Structural problems — bad length, CRC mismatch,
// unknown kinds or tags, trailing garbage — return an error wrapping
// ErrMalformed; the caller should tear the link down, because a stream
// that framed one frame wrong has lost sync for all subsequent ones.
func (d *Decoder) Decode(f *Frame) error {
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return io.EOF
		}
		return err
	}
	hdr := uvarintLen(n)
	if n > MaxFrame {
		return fmt.Errorf("%w: frame length %d exceeds MaxFrame", ErrMalformed, n)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(d.r, crcBuf[:]); err != nil {
		return fmt.Errorf("%w: short frame header: %v", ErrMalformed, err)
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if uint64(cap(d.arena)) < n {
		d.arena = make([]byte, n)
	}
	payload := d.arena[:n]
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return fmt.Errorf("%w: short frame payload: %v", ErrMalformed, err)
	}
	d.bytesRead += uint64(hdr) + 4 + n
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrMalformed, got, want)
	}

	vd := valueDecoder{table: d.table}
	if err := d.parse(&vd, payload, f); err != nil {
		return err
	}
	if vd.aliased {
		// A decoded []byte aliases the arena: hand the buffer over and
		// start fresh next frame.
		d.arena = nil
	}
	return nil
}

func (d *Decoder) parse(vd *valueDecoder, b []byte, f *Frame) error {
	*f = Frame{}
	if len(b) < 1 {
		return fmt.Errorf("%w: empty payload", ErrMalformed)
	}
	f.Kind = Kind(b[0])
	b = b[1:]
	if !f.Kind.Valid() {
		return fmt.Errorf("%w: unknown frame kind %d", ErrMalformed, int(f.Kind))
	}
	var err error
	if f.ID, b, err = uvarint(b); err != nil {
		return err
	}
	switch f.Kind {
	case KindRequest:
		if f.Object, b, err = d.internField(b); err != nil {
			return err
		}
		if f.Entry, b, err = d.internField(b); err != nil {
			return err
		}
		if f.Client, b, err = d.internField(b); err != nil {
			return err
		}
		if f.Seq, b, err = uvarint(b); err != nil {
			return err
		}
		if f.Params, b, err = vd.values(b); err != nil {
			return err
		}
	case KindResponse:
		if len(b) < 1 {
			return fmt.Errorf("%w: truncated response", ErrMalformed)
		}
		f.ErrKind = ErrKind(b[0])
		b = b[1:]
		if !f.ErrKind.Valid() {
			return fmt.Errorf("%w: unknown error kind %d", ErrMalformed, int(f.ErrKind))
		}
		var raw []byte
		if raw, b, err = bytesField(b); err != nil {
			return err
		}
		f.Err = string(raw)
		if f.Results, b, err = vd.values(b); err != nil {
			return err
		}
	case KindChanSend:
		if f.Chan, b, err = d.internField(b); err != nil {
			return err
		}
		if f.Params, b, err = vd.values(b); err != nil {
			return err
		}
	case KindList:
	case KindListResp:
		var n uint64
		if n, b, err = uvarint(b); err != nil {
			return err
		}
		if n > uint64(len(b)) {
			return fmt.Errorf("%w: %d names in %d bytes", ErrMalformed, n, len(b))
		}
		if n > 0 {
			f.Names = make([]string, n)
			for i := range f.Names {
				var raw []byte
				if raw, b, err = bytesField(b); err != nil {
					return err
				}
				f.Names[i] = string(raw)
			}
		}
	}
	if len(b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after frame", ErrMalformed, len(b))
	}
	return nil
}

// DecodeFrame parses a single standalone framed message from b (tests,
// fuzzing). Production links use Decoder for arena reuse and interning.
func DecodeFrame(b []byte, table *TypeTable) (*Frame, error) {
	d := NewDecoder(bufio.NewReader(bytes.NewReader(b)), table)
	var f Frame
	if err := d.Decode(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

// uvarintLen reports the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
