package trace

import "time"

// Transition names one edge of the call lifecycle, e.g. Arrived→Accepted.
type Transition struct {
	From, To Kind
}

// LatencyStats summarizes the observed durations of one transition.
type LatencyStats struct {
	Count int
	Mean  time.Duration
	Max   time.Duration
}

// Analyze computes per-transition latency statistics from a recorder's
// events: for every call, the time spent between consecutive lifecycle
// states. This is how experiment E8 measures the manager's receptivity
// (Arrived→Accepted) and how tests assert where time goes.
func Analyze(events []Event) map[Transition]LatencyStats {
	type sums struct {
		count int
		total time.Duration
		max   time.Duration
	}
	byCall := make(map[uint64]Event)
	acc := make(map[Transition]*sums)
	for _, e := range events {
		prev, ok := byCall[e.CallID]
		byCall[e.CallID] = e
		if !ok {
			continue
		}
		tr := Transition{From: prev.Kind, To: e.Kind}
		s := acc[tr]
		if s == nil {
			s = &sums{}
			acc[tr] = s
		}
		d := e.Time.Sub(prev.Time)
		s.count++
		s.total += d
		if d > s.max {
			s.max = d
		}
	}
	out := make(map[Transition]LatencyStats, len(acc))
	for tr, s := range acc {
		out[tr] = LatencyStats{
			Count: s.count,
			Mean:  s.total / time.Duration(s.count),
			Max:   s.max,
		}
	}
	return out
}

// Latency reports the mean duration of one transition (0 if unobserved).
func Latency(events []Event, from, to Kind) time.Duration {
	return Analyze(events)[Transition{From: from, To: to}].Mean
}

// Between computes latency statistics between two not-necessarily-adjacent
// lifecycle states: for each call, the time from its first `from` event to
// its first subsequent `to` event. Calls missing either event are skipped.
func Between(events []Event, from, to Kind) LatencyStats {
	type mark struct {
		fromAt time.Time
		seen   bool
		done   bool
	}
	marks := make(map[uint64]*mark)
	var stats LatencyStats
	var total time.Duration
	for _, e := range events {
		m := marks[e.CallID]
		if m == nil {
			m = &mark{}
			marks[e.CallID] = m
		}
		switch {
		case e.Kind == from && !m.seen:
			m.fromAt = e.Time
			m.seen = true
		case e.Kind == to && m.seen && !m.done:
			m.done = true
			d := e.Time.Sub(m.fromAt)
			stats.Count++
			total += d
			if d > stats.Max {
				stats.Max = d
			}
		}
	}
	if stats.Count > 0 {
		stats.Mean = total / time.Duration(stats.Count)
	}
	return stats
}
