// Package trace records the lifecycle events of calls inside an ALPS object.
//
// The paper (§1) notes that the manager "provides a facility for pre- and
// post-processing of entry calls which can be used not only to implement
// scheduling but also to monitor the object". The recorder is the
// object-monitoring hook: the core runtime emits one event per lifecycle
// transition, and tests assert on the resulting sequences.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Kind identifies a call lifecycle transition.
type Kind int

const (
	// Arrived: a call reached the object.
	Arrived Kind = iota + 1
	// Attached: the call was bound to a hidden-procedure-array element.
	Attached
	// Accepted: the manager executed accept for the call.
	Accepted
	// Started: the manager executed start; the body is running.
	Started
	// Ready: the body finished and is awaiting the manager's endorsement.
	Ready
	// Awaited: the manager executed await for the call.
	Awaited
	// Finished: the manager executed finish; results returned to caller.
	Finished
	// Combined: the call was finished without being started (§2.7).
	Combined
	// Failed: the call ended with an error (panic, cancellation, close).
	Failed
	// LinkUp: an rpc connection was established (or re-established).
	LinkUp
	// LinkDown: an rpc connection failed or was torn down.
	LinkDown
	// Retried: a client re-issued a call after a link failure or timeout.
	Retried
	// Replayed: a node answered a retried call from its at-most-once cache.
	Replayed
	// Shed: admission control rejected a call (entry MaxPending bound full).
	Shed
	// Stalled: the stall watchdog found the oldest pending call older than
	// its threshold while the manager was still live.
	Stalled
	// MgrRestart: the supervisor restarted a crashed manager process.
	MgrRestart
	// Poisoned: the object was poisoned — its manager died without recovery
	// and every pending and future call fails with ErrObjectPoisoned.
	Poisoned
	// Closed: the object began shutting down. Emitted exactly once, before
	// the close sweep fails the calls the manager can no longer serve, so
	// trace consumers can scope close-phase lifecycle relaxations (a call
	// may jump to Failed, or a started body may finish without the
	// manager's await/finish endorsement) to events after this marker.
	Closed
)

var kindNames = map[Kind]string{
	Arrived:    "arrived",
	Attached:   "attached",
	Accepted:   "accepted",
	Started:    "started",
	Ready:      "ready",
	Awaited:    "awaited",
	Finished:   "finished",
	Combined:   "combined",
	Failed:     "failed",
	LinkUp:     "link-up",
	LinkDown:   "link-down",
	Retried:    "retried",
	Replayed:   "replayed",
	Shed:       "shed",
	Stalled:    "stalled",
	MgrRestart: "mgr-restart",
	Poisoned:   "poisoned",
	Closed:     "closed",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded lifecycle transition.
type Event struct {
	Time   time.Time
	Object string
	Entry  string
	Slot   int // hidden-array index, -1 if not yet attached
	CallID uint64
	Kind   Kind
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%s.%s[%d]#%d %s", e.Object, e.Entry, e.Slot, e.CallID, e.Kind)
}

// Recorder accumulates events. A nil *Recorder is valid and records nothing,
// so the runtime can call it unconditionally.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	limit  int
}

// NewRecorder creates a recorder that keeps at most limit events
// (0 means unlimited). When full, the oldest events are dropped.
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Record appends an event. Safe on a nil receiver.
func (r *Recorder) Record(object, entry string, slot int, callID uint64, kind Kind) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event{
		Time:   time.Now(),
		Object: object,
		Entry:  entry,
		Slot:   slot,
		CallID: callID,
		Kind:   kind,
	})
	if r.limit > 0 && len(r.events) > r.limit {
		drop := len(r.events) - r.limit
		r.events = append(r.events[:0], r.events[drop:]...)
	}
}

// Events returns a copy of the recorded events in order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = r.events[:0]
}

// ByCall groups the recorded events by call ID, preserving order within
// each call.
func (r *Recorder) ByCall() map[uint64][]Event {
	events := r.Events()
	out := make(map[uint64][]Event)
	for _, e := range events {
		out[e.CallID] = append(out[e.CallID], e)
	}
	return out
}

// Count reports how many events of the given kind were recorded for the
// given entry ("" matches all entries).
func (r *Recorder) Count(entry string, kind Kind) int {
	n := 0
	for _, e := range r.Events() {
		if (entry == "" || e.Entry == entry) && e.Kind == kind {
			n++
		}
	}
	return n
}
