package trace

import (
	"testing"
	"time"
)

func evt(callID uint64, kind Kind, at time.Time) Event {
	return Event{Time: at, Object: "X", Entry: "P", CallID: callID, Kind: kind}
}

func TestAnalyzeTransitions(t *testing.T) {
	t0 := time.Now()
	events := []Event{
		evt(1, Arrived, t0),
		evt(1, Accepted, t0.Add(10*time.Millisecond)),
		evt(1, Finished, t0.Add(30*time.Millisecond)),
		evt(2, Arrived, t0),
		evt(2, Accepted, t0.Add(20*time.Millisecond)),
	}
	stats := Analyze(events)

	aa := stats[Transition{Arrived, Accepted}]
	if aa.Count != 2 {
		t.Fatalf("Arrived→Accepted count = %d, want 2", aa.Count)
	}
	if aa.Mean != 15*time.Millisecond {
		t.Fatalf("mean = %v, want 15ms", aa.Mean)
	}
	if aa.Max != 20*time.Millisecond {
		t.Fatalf("max = %v, want 20ms", aa.Max)
	}
	af := stats[Transition{Accepted, Finished}]
	if af.Count != 1 || af.Mean != 20*time.Millisecond {
		t.Fatalf("Accepted→Finished = %+v", af)
	}
	if _, ok := stats[Transition{Arrived, Finished}]; ok {
		t.Fatal("non-adjacent transition reported")
	}
}

func TestAnalyzeInterleavedCalls(t *testing.T) {
	// Events of different calls interleave in the recorder; Analyze must
	// pair per call, not globally.
	t0 := time.Now()
	events := []Event{
		evt(1, Arrived, t0),
		evt(2, Arrived, t0.Add(time.Millisecond)),
		evt(2, Accepted, t0.Add(2*time.Millisecond)),
		evt(1, Accepted, t0.Add(9*time.Millisecond)),
	}
	got := Latency(events, Arrived, Accepted)
	// call 1: 9ms; call 2: 1ms → mean 5ms.
	if got != 5*time.Millisecond {
		t.Fatalf("mean = %v, want 5ms", got)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if got := Analyze(nil); len(got) != 0 {
		t.Fatalf("Analyze(nil) = %v", got)
	}
	if got := Latency(nil, Arrived, Accepted); got != 0 {
		t.Fatalf("Latency(nil) = %v", got)
	}
}

func TestAnalyzeFromLiveRecorder(t *testing.T) {
	r := NewRecorder(0)
	r.Record("X", "P", 0, 1, Arrived)
	time.Sleep(2 * time.Millisecond)
	r.Record("X", "P", 0, 1, Accepted)
	got := Latency(r.Events(), Arrived, Accepted)
	if got < time.Millisecond {
		t.Fatalf("live latency = %v, want >= 1ms", got)
	}
}

func TestBetweenNonAdjacent(t *testing.T) {
	t0 := time.Now()
	events := []Event{
		evt(1, Arrived, t0),
		evt(1, Attached, t0.Add(time.Millisecond)),
		evt(1, Accepted, t0.Add(4*time.Millisecond)),
		evt(2, Arrived, t0),
		evt(2, Attached, t0.Add(time.Millisecond)), // never accepted
	}
	st := Between(events, Arrived, Accepted)
	if st.Count != 1 || st.Mean != 4*time.Millisecond || st.Max != 4*time.Millisecond {
		t.Fatalf("Between = %+v", st)
	}
	if st := Between(nil, Arrived, Accepted); st.Count != 0 {
		t.Fatalf("Between(nil) = %+v", st)
	}
}
