package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record("X", "P", 0, 1, Arrived) // must not panic
	if got := r.Events(); got != nil {
		t.Fatalf("nil recorder Events = %v, want nil", got)
	}
	r.Reset()
	if got := r.Count("", Arrived); got != 0 {
		t.Fatalf("nil recorder Count = %d", got)
	}
}

func TestRecordAndQuery(t *testing.T) {
	r := NewRecorder(0)
	r.Record("Buf", "Deposit", 0, 1, Arrived)
	r.Record("Buf", "Deposit", 0, 1, Attached)
	r.Record("Buf", "Deposit", 0, 1, Accepted)
	r.Record("Buf", "Remove", 1, 2, Arrived)

	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	if evs[0].Kind != Arrived || evs[2].Kind != Accepted {
		t.Fatalf("event order not preserved: %v", evs)
	}
	if got := r.Count("Deposit", Arrived); got != 1 {
		t.Errorf("Count(Deposit, Arrived) = %d, want 1", got)
	}
	if got := r.Count("", Arrived); got != 2 {
		t.Errorf("Count(all, Arrived) = %d, want 2", got)
	}

	byCall := r.ByCall()
	if len(byCall[1]) != 3 || len(byCall[2]) != 1 {
		t.Fatalf("ByCall grouping wrong: %v", byCall)
	}
}

func TestLimitDropsOldest(t *testing.T) {
	r := NewRecorder(3)
	for i := uint64(1); i <= 5; i++ {
		r.Record("X", "P", 0, i, Arrived)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	if evs[0].CallID != 3 || evs[2].CallID != 5 {
		t.Fatalf("oldest events not dropped: %v", evs)
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(0)
	r.Record("X", "P", 0, 1, Arrived)
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestStringForms(t *testing.T) {
	e := Event{Object: "Buf", Entry: "Deposit", Slot: 2, CallID: 7, Kind: Started}
	s := e.String()
	for _, want := range []string{"Buf", "Deposit", "[2]", "#7", "started"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q, missing %q", s, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown Kind String = %q", got)
	}
	for k := Arrived; k <= Failed; k++ {
		if strings.Contains(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record("X", "P", g, uint64(g*100+i), Arrived)
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.Events()); got != 800 {
		t.Fatalf("recorded %d events, want 800", got)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	r := NewRecorder(0)
	r.Record("X", "P", 0, 1, Arrived)
	evs := r.Events()
	evs[0].Object = "mutated"
	if r.Events()[0].Object != "X" {
		t.Fatal("Events exposed internal slice")
	}
}
