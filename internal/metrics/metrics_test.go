package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if got := c.Value(); got != 10 {
		t.Fatalf("Value = %d, want 10", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value = %d, want 8000", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if got, want := h.Mean(), 50500*time.Microsecond; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if got := h.Min(); got != time.Millisecond {
		t.Fatalf("Min = %v, want 1ms", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Fatalf("Max = %v, want 100ms", got)
	}
	if got := h.Percentile(50); got < 45*time.Millisecond || got > 55*time.Millisecond {
		t.Fatalf("p50 = %v, want ~50ms", got)
	}
	if got := h.Percentile(99); got < 95*time.Millisecond {
		t.Fatalf("p99 = %v, want >= 95ms", got)
	}
	if got := h.Percentile(0.0001); got != time.Millisecond {
		t.Fatalf("p~0 = %v, want min sample", got)
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram(64)
	for i := 0; i < 10000; i++ {
		h.Observe(time.Duration(i))
	}
	h.mu.Lock()
	n := len(h.samples)
	h.mu.Unlock()
	if n != 64 {
		t.Fatalf("reservoir holds %d samples, want 64", n)
	}
	if h.Count() != 10000 {
		t.Fatalf("Count = %d, want exact 10000", h.Count())
	}
	// Percentiles remain plausible even when downsampled.
	if p := h.Percentile(50); p < 1000 || p > 9000 {
		t.Fatalf("downsampled p50 = %v, implausible", p)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("E1: bounded buffer", "impl", "throughput", "factor")
	tbl.AddRow("alps-manager", "123456 ops/s", 1.0)
	tbl.AddRow("monitor", "234567 ops/s", 1.9)
	if tbl.Rows() != 2 {
		t.Fatalf("Rows = %d, want 2", tbl.Rows())
	}
	s := tbl.String()
	for _, want := range []string{"E1: bounded buffer", "impl", "alps-manager", "1.90", "----"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), s)
	}
}

func TestTableFormatsDurations(t *testing.T) {
	tbl := NewTable("", "lat")
	tbl.AddRow(1500 * time.Nanosecond)
	if s := tbl.String(); !strings.Contains(s, "2µs") && !strings.Contains(s, "1µs") {
		t.Fatalf("duration not rounded to microseconds: %s", s)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(1000, time.Second); got != "1000 ops/s" {
		t.Fatalf("Rate = %q", got)
	}
	if got := Rate(5, 0); got != "inf" {
		t.Fatalf("Rate with zero elapsed = %q", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 2); got != "1.50" {
		t.Fatalf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "inf" {
		t.Fatalf("Ratio by zero = %q", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(128)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("Count = %d, want 4000", h.Count())
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("T1", "a", "b")
	tbl.AddRow(1, "x")
	md := tbl.Markdown()
	for _, want := range []string{"**T1**", "| a | b |", "|---|---|", "| 1 | x |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}
