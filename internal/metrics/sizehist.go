package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// SizeHist is a fixed-bucket histogram for small integer sizes — batch
// lengths, queue depths, window occupancy. Buckets are powers of two
// (≤1, 2, 4, … 128, >128), which is the resolution that matters for
// "did batching happen at all, and how hard": a combining path that only
// ever lands in the ≤1 bucket is not combining. The zero value is ready
// to use.
type SizeHist struct {
	mu      sync.Mutex
	buckets [9]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// bucketFor maps n to its power-of-two bucket index.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b > 8 {
		b = 8
	}
	return b
}

// Observe records one size sample (negative values clamp to zero).
func (h *SizeHist) Observe(n int) {
	if n < 0 {
		n = 0
	}
	h.mu.Lock()
	h.buckets[bucketFor(n)]++
	h.count++
	h.sum += uint64(n)
	if uint64(n) > h.max {
		h.max = uint64(n)
	}
	h.mu.Unlock()
}

// Count reports the number of observations.
func (h *SizeHist) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean reports the exact mean sample.
func (h *SizeHist) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max reports the largest sample.
func (h *SizeHist) Max() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// String renders the non-empty buckets as "≤1:12 2:3 ≤8:9 >128:1 (mean 2.4)".
func (h *SizeHist) String() string {
	h.mu.Lock()
	buckets := h.buckets
	count, sum := h.count, h.sum
	h.mu.Unlock()
	if count == 0 {
		return "empty"
	}
	labels := [9]string{"≤1", "2", "≤4", "≤8", "≤16", "≤32", "≤64", "≤128", ">128"}
	var b strings.Builder
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", labels[i], n)
	}
	fmt.Fprintf(&b, " (mean %.1f)", float64(sum)/float64(count))
	return b.String()
}
