// Package metrics provides the counters, latency histograms and table
// rendering used by the experiment harness (cmd/alpsbench) and the
// benchmarks in bench_test.go.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct {
	mu sync.Mutex
	v  uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Supervision aggregates the object-layer supervision counters: admission
// sheds, manager restarts, object poisonings and watchdog stall detections.
// Share one instance across objects (e.g. all objects hosted by a node) to
// aggregate, or use one each. The zero value is ready to use.
type Supervision struct {
	Sheds    Counter // calls rejected by admission control (ErrOverload)
	Restarts Counter // manager processes restarted by the supervisor
	Poisons  Counter // objects poisoned (manager dead, no recovery)
	Stalls   Counter // stall-watchdog detections (old pending call, live manager)
}

// Histogram accumulates duration samples and reports percentiles. To bound
// memory it keeps a uniform reservoir of at most maxSamples samples plus
// exact count/sum/min/max.
type Histogram struct {
	mu       sync.Mutex
	samples  []time.Duration
	cap      int
	count    uint64
	sum      time.Duration
	min      time.Duration
	max      time.Duration
	rngState uint64
}

// NewHistogram creates a histogram with the given reservoir capacity
// (0 selects a default of 8192).
func NewHistogram(maxSamples int) *Histogram {
	if maxSamples <= 0 {
		maxSamples = 8192
	}
	return &Histogram{cap: maxSamples, rngState: 0x9e3779b97f4a7c15}
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
		return
	}
	// Vitter's algorithm R: replace a random element with probability cap/count.
	if idx := h.rand() % h.count; idx < uint64(h.cap) {
		h.samples[idx] = d
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean reports the exact mean of all observations.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min reports the smallest observation.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max reports the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile reports the q-th percentile (0 < q <= 100) estimated from the
// reservoir.
func (h *Histogram) Percentile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(h.samples))
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// xorshift64; deterministic, no global rand dependency.
func (h *Histogram) rand() uint64 {
	x := h.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	h.rngState = x
	return x
}

// Table renders fixed-width experiment tables in the style of a paper's
// results section.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cells returns a copy of the formatted data rows, for machine-readable
// output (cmd/alpsbench -format json).
func (t *Table) Cells() [][]string {
	out := make([][]string, len(t.rows))
	for i, row := range t.rows {
		out[i] = append([]string(nil), row...)
	}
	return out
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("|")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString("|")
		for _, cell := range row {
			fmt.Fprintf(&b, " %s |", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Rate formats ops over elapsed as "N ops/s".
func Rate(ops uint64, elapsed time.Duration) string {
	if elapsed <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.0f ops/s", float64(ops)/elapsed.Seconds())
}

// Ratio formats a/b with two decimals, guarding against division by zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", a/b)
}
