package shard_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
)

// logRecorder collects, per key, the sequence numbers in execution order
// and the set of shards that executed them.
type logRecorder struct {
	mu     sync.Mutex
	seqs   map[string][]int
	shards map[string]map[int]bool
}

func newLogRecorder() *logRecorder {
	return &logRecorder{seqs: make(map[string][]int), shards: make(map[string]map[int]bool)}
}

func (r *logRecorder) record(key string, seq, shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seqs[key] = append(r.seqs[key], seq)
	if r.shards[key] == nil {
		r.shards[key] = make(map[int]bool)
	}
	r.shards[key][shard] = true
}

// appendLog builds one shard replica: an Append(key, seq) entry whose
// calls are serialized by a manager Execute loop, exactly like a plain
// single object would serialize them.
func appendLog(rec *logRecorder) func(i int, name string) (*core.Object, error) {
	return func(i int, name string) (*core.Object, error) {
		return core.New(name,
			core.WithEntry(core.EntrySpec{Name: "Append", Params: 2, Results: 1,
				Body: func(inv *core.Invocation) error {
					rec.record(inv.Param(0).(string), inv.Param(1).(int), i)
					inv.Return(i)
					return nil
				}}),
			core.WithManager(func(m *core.Mgr) {
				_ = m.Loop(core.OnAccept("Append", func(a *core.Accepted) {
					_, _ = m.Execute(a)
				}))
			}, core.Intercept("Append")),
		)
	}
}

// TestKeyAffinityOrdering is the acceptance check for keyed routing: 16
// keys interleaved across 4 shards, each key's calls issued in sequence
// by its own goroutine. Every key must land on exactly one shard (the
// one ShardFor predicts) and be executed in submission order — the same
// per-key serialization a single un-sharded object provides.
func TestKeyAffinityOrdering(t *testing.T) {
	rec := newLogRecorder()
	g, err := shard.New("log", 4, appendLog(rec), shard.WithKey("Append", shard.StringKey(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	const keys, per = 16, 50
	var wg sync.WaitGroup
	errCh := make(chan error, keys)
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", k)
			for s := 0; s < per; s++ {
				if _, err := g.Call("Append", key, s); err != nil {
					errCh <- fmt.Errorf("key %s seq %d: %w", key, s, err)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		want := g.ShardFor("Append", key, 0)
		if want < 0 || want >= 4 {
			t.Fatalf("ShardFor(%s) = %d", key, want)
		}
		if len(rec.shards[key]) != 1 || !rec.shards[key][want] {
			t.Fatalf("key %s executed on shards %v, want only %d", key, rec.shards[key], want)
		}
		if len(rec.seqs[key]) != per {
			t.Fatalf("key %s: %d executions, want %d", key, len(rec.seqs[key]), per)
		}
		for i, seq := range rec.seqs[key] {
			if seq != i {
				t.Fatalf("key %s: execution %d has seq %d; per-key order broken: %v",
					key, i, seq, rec.seqs[key])
			}
		}
	}
}

// poisonable builds a replica whose manager panics when it accepts the
// key "boom"; the default FailFast policy then poisons that shard only.
func poisonable(i int, name string) (*core.Object, error) {
	return core.New(name,
		core.WithEntry(core.EntrySpec{Name: "Get", Params: 1, Results: 1,
			Body: func(inv *core.Invocation) error { inv.Return(i); return nil }}),
		core.WithEntry(core.EntrySpec{Name: "Ping", Results: 1,
			Body: func(inv *core.Invocation) error { inv.Return(i); return nil }}),
		core.WithManager(func(m *core.Mgr) {
			_ = m.Loop(
				core.OnAccept("Get", func(a *core.Accepted) {
					if a.Params[0] == "boom" {
						panic("boom")
					}
					_, _ = m.Execute(a)
				}),
				core.OnAccept("Ping", func(a *core.Accepted) { _, _ = m.Execute(a) }),
			)
		}, core.InterceptPR("Get", 1, 0), core.Intercept("Ping")),
	)
}

// TestPoisonedShardIsolation poisons one shard and checks the blast
// radius: keys pinned to the dead shard fail with ErrObjectPoisoned,
// every other key keeps working, and keyless routing steers around the
// down shard entirely.
func TestPoisonedShardIsolation(t *testing.T) {
	g, err := shard.New("db", 4, poisonable, shard.WithKey("Get", shard.StringKey(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	dead := g.ShardFor("Get", "boom")
	if _, err := g.Call("Get", "boom"); !errors.Is(err, core.ErrObjectPoisoned) {
		t.Fatalf("poisoning call: err = %v, want ErrObjectPoisoned", err)
	}
	if down := g.Down(); len(down) != 1 || down[0] != dead {
		t.Fatalf("Down() = %v, want [%d]", g.Down(), dead)
	}

	served, failed := 0, 0
	for k := 0; k < 64; k++ {
		key := fmt.Sprintf("key-%d", k)
		res, err := g.Call("Get", key)
		switch g.ShardFor("Get", key) {
		case dead:
			if !errors.Is(err, core.ErrObjectPoisoned) {
				t.Fatalf("key %s on dead shard: err = %v, want ErrObjectPoisoned", key, err)
			}
			failed++
		default:
			if err != nil {
				t.Fatalf("key %s on live shard: %v", key, err)
			}
			if res[0].(int) == dead {
				t.Fatalf("key %s executed on dead shard %d", key, dead)
			}
			served++
		}
	}
	if served == 0 || failed == 0 {
		t.Fatalf("test keys did not cover both live and dead shards (served=%d failed=%d)", served, failed)
	}

	// Keyless calls must steer around the down shard now that it is marked.
	for i := 0; i < 100; i++ {
		res, err := g.Call("Ping")
		if err != nil {
			t.Fatalf("keyless call %d: %v", i, err)
		}
		if res[0].(int) == dead {
			t.Fatalf("keyless call %d routed to down shard %d", i, dead)
		}
	}

	st := g.SupervisionStats()
	if st.Poisoned {
		t.Fatalf("aggregate Poisoned = true with %d live shards", 3)
	}
	if st.Err != nil {
		t.Fatalf("partial failure surfaced aggregate Err = %v", st.Err)
	}
}

// TestKeylessSpread drives concurrent keyless calls and checks that
// power-of-two-choices touches every shard.
func TestKeylessSpread(t *testing.T) {
	g, err := shard.New("spread", 4, poisonable)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := g.Call("Ping"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	total := uint64(0)
	for i := 0; i < g.Len(); i++ {
		st, ok := g.Shard(i).EntryStats("Ping")
		if !ok {
			t.Fatalf("shard %d: no Ping stats", i)
		}
		if st.Completed == 0 {
			t.Fatalf("shard %d served no keyless calls", i)
		}
		total += st.Completed
	}
	if total != 800 {
		t.Fatalf("total completed = %d, want 800", total)
	}
	agg, ok := g.EntryStats("Ping")
	if !ok || agg.Completed != 800 || agg.Calls != 800 {
		t.Fatalf("aggregate stats = %+v, want 800 calls/completed", agg)
	}
}

// TestBuildFailureCleanup verifies that a failing shard build closes the
// replicas already constructed.
func TestBuildFailureCleanup(t *testing.T) {
	var built []*core.Object
	_, err := shard.New("broken", 4, func(i int, name string) (*core.Object, error) {
		if i == 2 {
			return nil, errors.New("synthetic build failure")
		}
		obj, err := poisonable(i, name)
		if err == nil {
			built = append(built, obj)
		}
		return obj, err
	})
	if err == nil {
		t.Fatal("New succeeded despite build failure")
	}
	if len(built) != 2 {
		t.Fatalf("built %d shards before failure, want 2", len(built))
	}
	for i, obj := range built {
		if _, err := obj.Call("Ping"); !errors.Is(err, core.ErrClosed) {
			t.Fatalf("shard %d not closed after build failure: err = %v", i, err)
		}
	}
}

func TestBadShardCount(t *testing.T) {
	_, err := shard.New("empty", 0, poisonable)
	if !errors.Is(err, shard.ErrBadShardCount) {
		t.Fatalf("err = %v, want ErrBadShardCount", err)
	}
}

// TestCloseJoinsErrors verifies fan-out Close reports every shard's close
// error and is idempotent.
func TestCloseJoinsErrors(t *testing.T) {
	g, err := shard.New("closer", 3, poisonable)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := g.Call("Ping"); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("call after close: err = %v, want ErrClosed", err)
	}
}

// TestBroadcast fans one call out to every shard and gathers the results
// index-aligned; a poisoned shard contributes its error (joined) while the
// healthy shards still answer.
func TestBroadcast(t *testing.T) {
	g, err := shard.New("bcast", 4, poisonable, shard.WithKey("Get", shard.StringKey(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	res, err := g.Broadcast(context.Background(), "Ping")
	if err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	if len(res) != 4 {
		t.Fatalf("broadcast returned %d result sets, want 4", len(res))
	}
	for i, r := range res {
		if len(r) != 1 || r[0].(int) != i {
			t.Fatalf("shard %d answered %v, want its own index", i, r)
		}
	}

	// Poison one shard directly, then broadcast again: the dead shard's
	// slot is nil and the joined error carries its poison, but the rest
	// still answer.
	_, _ = g.Shard(2).Call("Get", "boom")
	res, err = g.Broadcast(context.Background(), "Ping")
	if err == nil || !errors.Is(err, core.ErrObjectPoisoned) {
		t.Fatalf("broadcast over poisoned shard: err = %v, want ErrObjectPoisoned", err)
	}
	for i, r := range res {
		if i == 2 {
			if r != nil {
				t.Fatalf("poisoned shard produced results %v", r)
			}
			continue
		}
		if len(r) != 1 || r[0].(int) != i {
			t.Fatalf("shard %d answered %v after sibling poison", i, r)
		}
	}
	if down := g.Down(); len(down) != 1 || down[0] != 2 {
		t.Fatalf("Down() = %v, want [2]", down)
	}
}
