package shard_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/shard"
)

// ExampleGroup shards a word-count dictionary across 4 replicas. Both
// entries are keyed on the word, so every call for one word is pinned to
// one shard and the paper's per-object serialization holds per key: the
// three sequential Add("alps") calls are counted in order on one replica
// while "paper" lives on (possibly) another, and Count observes every
// preceding Add for its word.
func ExampleGroup() {
	build := func(i int, name string) (*core.Object, error) {
		counts := make(map[string]int) // shard-private: only this replica's manager touches it
		return core.New(name,
			core.WithEntry(core.EntrySpec{Name: "Add", Params: 1,
				Body: func(inv *core.Invocation) error {
					counts[inv.Param(0).(string)]++
					return nil
				}}),
			core.WithEntry(core.EntrySpec{Name: "Count", Params: 1, Results: 1,
				Body: func(inv *core.Invocation) error {
					inv.Return(counts[inv.Param(0).(string)])
					return nil
				}}),
			core.WithManager(func(m *core.Mgr) {
				_ = m.Loop(
					// Execute runs each body in exclusion on the manager,
					// so the shard-private map needs no further locking.
					core.OnAccept("Add", func(a *core.Accepted) { _, _ = m.Execute(a) }),
					core.OnAccept("Count", func(a *core.Accepted) { _, _ = m.Execute(a) }),
				)
			}, core.Intercept("Add"), core.Intercept("Count")),
		)
	}

	g, err := shard.New("wordcount", 4, build,
		shard.WithKey("Add", shard.StringKey(0)),
		shard.WithKey("Count", shard.StringKey(0)),
	)
	if err != nil {
		panic(err)
	}
	defer g.Close()

	for _, word := range []string{"alps", "paper", "alps", "object", "alps"} {
		if _, err := g.Call("Add", word); err != nil {
			panic(err)
		}
	}
	for _, word := range []string{"alps", "paper", "object", "missing"} {
		res, err := g.Call("Count", word)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s=%d\n", word, res[0].(int))
	}
	// Output:
	// alps=3
	// paper=1
	// object=1
	// missing=0
}
