// Package shard scales one ALPS object specification across cores by
// running N replicas ("shards") behind a single name.
//
// The paper's manager is a single logical process: it serializes every
// accept/start/await/finish for its object, which caps one object's
// throughput at one manager's speed no matter how many cores the host
// has. A Group recovers scaling the way ALPS programs compose it by
// hand — many objects, one router — without giving up the model:
//
//   - Calls whose entry has a registered KeyFunc are routed by key hash,
//     so every call with the same key lands on the same shard and the
//     paper's per-object serialization becomes per-key serialization.
//   - Keyless calls are spread with power-of-two-choices over the
//     shards' pending depths, which keeps the load within a constant
//     factor of best with only two atomic reads per call.
//
// A Group exposes the same CallCtx surface as a *core.Object, so it can
// be published on an rpc.Node under one name (rpc.PublishCallable) and
// driven by unmodified clients.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// KeyFunc extracts a routing key from a call's parameters. Returning
// ok=false falls back to load-based (power-of-two-choices) routing for
// that call.
type KeyFunc func(params []core.Value) (key uint64, ok bool)

// StringKey routes on the string parameter at index arg (FNV-1a).
// Non-string or missing parameters fall back to load-based routing and
// are rejected later by the shard's own arity/type checks.
func StringKey(arg int) KeyFunc {
	return func(params []core.Value) (uint64, bool) {
		if arg < 0 || arg >= len(params) {
			return 0, false
		}
		s, ok := params[arg].(string)
		if !ok {
			return 0, false
		}
		h := fnv.New64a()
		_, _ = h.Write([]byte(s))
		return h.Sum64(), true
	}
}

// IntKey routes on the integer parameter at index arg.
func IntKey(arg int) KeyFunc {
	return func(params []core.Value) (uint64, bool) {
		if arg < 0 || arg >= len(params) {
			return 0, false
		}
		switch v := params[arg].(type) {
		case int:
			return splitmix64(uint64(v)), true
		case int64:
			return splitmix64(uint64(v)), true
		case uint64:
			return splitmix64(v), true
		case uint:
			return splitmix64(uint64(v)), true
		case int32:
			return splitmix64(uint64(v)), true
		case uint32:
			return splitmix64(uint64(v)), true
		default:
			return 0, false
		}
	}
}

// Option configures a Group at construction time.
type Option func(*Group)

// WithKey registers a KeyFunc for one entry. Calls to that entry with a
// key are pinned to shard key%N, preserving per-key call ordering.
func WithKey(entry string, fn KeyFunc) Option {
	return func(g *Group) { g.keyFns[entry] = fn }
}

// Group is N replica objects behind one name. See the package comment
// for the routing rules. All methods are safe for concurrent use.
type Group struct {
	name   string
	shards []*core.Object
	keyFns map[string]KeyFunc

	// inflight tracks each shard's in-flight group calls; the keyless
	// router compares two entries and picks the shallower.
	inflight []atomic.Int64

	// down marks shards observed poisoned. Keyed routing ignores it
	// (affinity is a correctness property: a key's shard failing must
	// not silently re-home the key mid-stream); keyless routing steers
	// around down shards while any remain up.
	down []atomic.Bool

	// rr seeds the router's two pseudo-random shard picks (splitmix64
	// over a shared counter: no locks, no global rand contention).
	rr atomic.Uint64

	closeOnce sync.Once
	closeErr  error
}

// New builds a Group of n shards. build is called once per shard with
// the shard index and the name the replica should carry (name#i); it
// normally wraps core.New. On any build error the shards already built
// are closed and the error is returned.
func New(name string, n int, build func(i int, shardName string) (*core.Object, error), opts ...Option) (*Group, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard group %s: %w: %d shards", name, ErrBadShardCount, n)
	}
	if build == nil {
		return nil, fmt.Errorf("shard group %s: nil build function", name)
	}
	g := &Group{
		name:     name,
		shards:   make([]*core.Object, 0, n),
		keyFns:   make(map[string]KeyFunc),
		inflight: make([]atomic.Int64, n),
		down:     make([]atomic.Bool, n),
	}
	for _, opt := range opts {
		opt(g)
	}
	for i := 0; i < n; i++ {
		obj, err := build(i, fmt.Sprintf("%s#%d", name, i))
		if err != nil {
			for _, built := range g.shards {
				_ = built.Close()
			}
			return nil, fmt.Errorf("shard group %s: shard %d: %w", name, i, err)
		}
		if obj == nil {
			for _, built := range g.shards {
				_ = built.Close()
			}
			return nil, fmt.Errorf("shard group %s: shard %d: build returned nil object", name, i)
		}
		g.shards = append(g.shards, obj)
	}
	return g, nil
}

// ErrBadShardCount reports a Group constructed with fewer than one shard.
var ErrBadShardCount = errors.New("shard count must be at least 1")

// Name reports the group's published name.
func (g *Group) Name() string { return g.name }

// Len reports the number of shards.
func (g *Group) Len() int { return len(g.shards) }

// Shard exposes one replica (for tests and diagnostics).
func (g *Group) Shard(i int) *core.Object { return g.shards[i] }

// ShardFor reports the shard index a keyed call to entry with params
// would be routed to, or -1 when the call would route by load.
func (g *Group) ShardFor(entry string, params ...core.Value) int {
	if fn, ok := g.keyFns[entry]; ok {
		if key, ok := fn(params); ok {
			return int(key % uint64(len(g.shards)))
		}
	}
	return -1
}

// Call invokes entry on the routed shard and waits for its results.
func (g *Group) Call(entry string, params ...core.Value) ([]core.Value, error) {
	return g.CallCtx(context.Background(), entry, params...)
}

// CallCtx is Call with a caller-supplied context. The signature matches
// core.Object's, so a Group satisfies rpc.Callable.
func (g *Group) CallCtx(ctx context.Context, entry string, params ...core.Value) ([]core.Value, error) {
	i := g.route(entry, params)
	g.inflight[i].Add(1)
	res, err := g.shards[i].CallCtx(ctx, entry, params...)
	g.inflight[i].Add(-1)
	if errors.Is(err, core.ErrObjectPoisoned) {
		g.down[i].Store(true)
	}
	return res, err
}

// Broadcast invokes entry on every shard concurrently and returns the
// per-shard results, index-aligned with Shard(i). It is the complement of
// keyed routing for entries that aggregate state scattered across shards
// (the fabric host enumerates its resident keys this way); errors are
// joined, with each shard's slot left nil on failure.
func (g *Group) Broadcast(ctx context.Context, entry string, params ...core.Value) ([][]core.Value, error) {
	results := make([][]core.Value, len(g.shards))
	errs := make([]error, len(g.shards))
	var wg sync.WaitGroup
	for i, obj := range g.shards {
		wg.Add(1)
		go func(i int, obj *core.Object) {
			defer wg.Done()
			g.inflight[i].Add(1)
			res, err := obj.CallCtx(ctx, entry, params...)
			g.inflight[i].Add(-1)
			if errors.Is(err, core.ErrObjectPoisoned) {
				g.down[i].Store(true)
			}
			results[i], errs[i] = res, err
		}(i, obj)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// route picks the shard index for one call: key affinity when the entry
// has a KeyFunc that yields a key, power-of-two-choices otherwise.
func (g *Group) route(entry string, params []core.Value) int {
	n := uint64(len(g.shards))
	if fn, ok := g.keyFns[entry]; ok {
		if key, ok := fn(params); ok {
			return int(key % n)
		}
	}
	if n == 1 {
		return 0
	}
	// Two independent picks from a splitmix64 stream; prefer the one
	// with the shallower pending depth, steering around down shards.
	r := splitmix64(g.rr.Add(1))
	a := int(r % n)
	b := int((r >> 32) % n)
	if b == a {
		b = (a + 1) % int(n)
	}
	switch {
	case g.down[a].Load() && !g.down[b].Load():
		return b
	case g.down[b].Load() && !g.down[a].Load():
		return a
	case g.down[a].Load() && g.down[b].Load():
		// Both picks down: scan for any live shard before giving up and
		// letting the poisoned shard report the error.
		for i := range g.shards {
			if !g.down[i].Load() {
				return i
			}
		}
		return a
	}
	if g.inflight[b].Load() < g.inflight[a].Load() {
		return b
	}
	return a
}

// splitmix64 is the SplitMix64 mixer (Steele et al.), used both to
// decorrelate integer keys and to derive the router's two picks.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Entries reports the entry names of shard 0 (all shards share a spec).
func (g *Group) Entries() []string { return g.shards[0].Entries() }

// EntryStats sums the named entry's counters across all shards.
func (g *Group) EntryStats(entry string) (core.EntryStats, bool) {
	var sum core.EntryStats
	found := false
	for _, obj := range g.shards {
		st, ok := obj.EntryStats(entry)
		if !ok {
			continue
		}
		found = true
		sum.Calls += st.Calls
		sum.Completed += st.Completed
		sum.Combined += st.Combined
		sum.Failed += st.Failed
		sum.Shed += st.Shed
		sum.Pending += st.Pending
		sum.Active += st.Active
	}
	return sum, found
}

// SupervisionStats aggregates supervision counters across shards.
// Poisoned is true only when every shard is poisoned (the group keeps
// serving the surviving key ranges until then); Err carries the first
// poisoned shard's error.
func (g *Group) SupervisionStats() core.SupervisionStats {
	var sum core.SupervisionStats
	sum.Poisoned = true
	for _, obj := range g.shards {
		st := obj.SupervisionStats()
		sum.Restarts += st.Restarts
		sum.Sheds += st.Sheds
		sum.Stalls += st.Stalls
		if st.Poisoned {
			if sum.Err == nil {
				sum.Err = st.Err
			}
		} else {
			sum.Poisoned = false
		}
	}
	if !sum.Poisoned && sum.Err != nil {
		// Partial failure: surface the error only through Down/per-shard
		// stats; a non-poisoned aggregate carries no poison error.
		sum.Err = nil
	}
	return sum
}

// Down reports the indices of shards observed poisoned by group calls.
func (g *Group) Down() []int {
	var out []int
	for i := range g.down {
		if g.down[i].Load() {
			out = append(out, i)
		}
	}
	return out
}

// MinMaxInflight reports the current smallest and largest per-shard
// in-flight counts (diagnostics for routing balance).
func (g *Group) MinMaxInflight() (min, max int64) {
	min, max = math.MaxInt64, math.MinInt64
	for i := range g.inflight {
		v := g.inflight[i].Load()
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Close closes every shard concurrently and returns the joined errors.
func (g *Group) Close() error {
	g.closeOnce.Do(func() {
		errs := make([]error, len(g.shards))
		var wg sync.WaitGroup
		for i, obj := range g.shards {
			wg.Add(1)
			go func(i int, obj *core.Object) {
				defer wg.Done()
				errs[i] = obj.Close()
			}(i, obj)
		}
		wg.Wait()
		g.closeErr = errors.Join(errs...)
	})
	return g.closeErr
}
