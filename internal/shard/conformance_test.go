package shard_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/shard"
)

// TestShardKeyOrderConformance drives a keyed group with interleaved
// multi-client traffic and replays the execution ledger through the
// conformance key-order checker: every key pinned to one shard
// (key-affinity), every synchronous client's per-key calls executed in
// issue order (per-key-fifo), and no call executed twice (at-most-once).
func TestShardKeyOrderConformance(t *testing.T) {
	var (
		mu     sync.Mutex
		ledger []conformance.KeyedExec
	)
	build := func(i int, name string) (*core.Object, error) {
		return core.New(name,
			core.WithEntry(core.EntrySpec{Name: "Exec", Params: 3, Results: 1, Array: 2,
				Body: func(inv *core.Invocation) error {
					mu.Lock()
					ledger = append(ledger, conformance.KeyedExec{
						Key:    inv.Param(0).(string),
						Client: inv.Param(1).(string),
						Seq:    inv.Param(2).(int),
						Shard:  name,
					})
					mu.Unlock()
					inv.Return(inv.Param(2))
					return nil
				}}),
			core.WithManager(func(m *core.Mgr) {
				_ = m.Loop(core.OnAccept("Exec", func(a *core.Accepted) {
					_, _ = m.Execute(a)
				}))
			}, core.Intercept("Exec")),
		)
	}
	g, err := shard.New("conf", 4, build, shard.WithKey("Exec", shard.StringKey(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// 6 clients share 8 keys; each client walks its keys round-robin with
	// its own per-key sequence counters, issuing synchronously.
	const clients, keys, rounds = 6, 8, 12
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("c%d", c)
			seqs := make(map[string]int)
			for r := 0; r < rounds; r++ {
				for k := 0; k < keys; k++ {
					if (k+c)%2 == 0 { // each client uses half the keys
						continue
					}
					key := fmt.Sprintf("key-%d", k)
					seq := seqs[key]
					seqs[key]++
					res, err := g.Call("Exec", key, client, seq)
					if err != nil {
						t.Errorf("%s %s seq %d: %v", client, key, seq, err)
						return
					}
					if len(res) != 1 || res[0] != seq {
						t.Errorf("%s %s seq %d: answered %v", client, key, seq, res)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if want := clients * rounds * keys / 2; len(ledger) != want {
		t.Errorf("ledger has %d executions, want %d", len(ledger), want)
	}
	for _, d := range conformance.CheckKeyOrder(ledger) {
		t.Errorf("divergence: %s", d)
	}
	// Cross-check affinity against the router's own prediction.
	for _, e := range ledger {
		if want := g.Shard(g.ShardFor("Exec", e.Key, e.Client, e.Seq)).Name(); e.Shard != want {
			t.Errorf("key %q executed on %q, router predicts %q", e.Key, e.Shard, want)
		}
	}
}
