package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestIntakeFIFOAcrossBurst locks in the mailbox ordering guarantee: calls
// drained from the intake list must be served in arrival (call-id) order,
// exactly as if each had been appended to the wait queue directly.
func TestIntakeFIFOAcrossBurst(t *testing.T) {
	var mu sync.Mutex
	var served []uint64
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1,
			Body: func(inv *Invocation) error { inv.Return(inv.Param(0)); return nil }}),
		WithManager(func(m *Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				mu.Lock()
				served = append(served, a.CallID())
				mu.Unlock()
				if err := m.FinishAccepted(a, a.Params[0]); err != nil {
					t.Error(err)
					return
				}
			}
		}, InterceptPR("P", 1, 1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				res, err := o.Call("P", w)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if res[0].(int) != w {
					t.Errorf("worker %d: got %v (cross-talk)", w, res[0])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	mustClose(t, o)
	if len(served) != workers*perWorker {
		t.Fatalf("served %d calls, want %d", len(served), workers*perWorker)
	}
	for i := 1; i < len(served); i++ {
		if served[i] <= served[i-1] {
			t.Fatalf("service order not arrival order: id %d after %d (index %d)",
				served[i], served[i-1], i)
		}
	}
}

// TestIntakeCancellation verifies a caller can withdraw a cancelled call
// that is still sitting in the mailbox (never drained by the manager).
func TestIntakeCancellation(t *testing.T) {
	block := make(chan struct{})
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(*Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			<-block // never accepts until released
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := o.CallCtx(ctx, "P"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if st, _ := o.EntryStats("P"); st.Failed != 1 || st.Pending != 0 {
		t.Fatalf("stats after withdraw: %+v", st)
	}
	close(block)
	mustClose(t, o)
}

// TestIntakeCloseRace closes the object while submitters are hammering the
// fast path; every call must return a result or ErrClosed — no hangs, no
// lost calls.
func TestIntakeCloseRace(t *testing.T) {
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Results: 1,
			Body: func(inv *Invocation) error { inv.Return(1); return nil }}),
		WithManager(func(m *Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if err := m.FinishAccepted(a, 1); err != nil {
					return
				}
			}
		}, InterceptPR("P", 0, 1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				_, err := o.Call("P")
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("unexpected error: %v", err)
					return
				}
				if err != nil {
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	mustClose(t, o)
	stop.Store(true)
	wg.Wait()
}

// TestIntakePoisonRace panics the manager under fast-path load; every
// in-flight and subsequent call must fail with ErrObjectPoisoned (FailFast),
// never hang in the mailbox.
func TestIntakePoisonRace(t *testing.T) {
	var accepted atomic.Int64
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Results: 1,
			Body: func(inv *Invocation) error { inv.Return(1); return nil }}),
		WithManager(func(m *Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if accepted.Add(1) == 100 {
					panic("boom")
				}
				if err := m.FinishAccepted(a, 1); err != nil {
					return
				}
			}
		}, InterceptPR("P", 0, 1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := o.Call("P")
				if err != nil {
					if !errors.Is(err, ErrObjectPoisoned) {
						t.Errorf("unexpected error: %v", err)
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	if !o.Poisoned() {
		t.Fatal("object not poisoned")
	}
}

// TestIntakeStatsVisibility checks EntryStats observes calls that are still
// in the mailbox (the manager is blocked and never drains).
func TestIntakeStatsVisibility(t *testing.T) {
	block := make(chan struct{})
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(*Invocation) error { return nil }}),
		WithEntry(EntrySpec{Name: "Q", Body: func(*Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			<-block
			for {
				// Serve P so close can complete cleanly.
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, Intercept("P"), Intercept("Q")),
	)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = o.Call("P")
	}()
	// Wait until the call reaches the mailbox (or queue) and becomes
	// visible to stats.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, ok := o.EntryStats("P")
		if !ok {
			t.Fatal("entry missing")
		}
		if st.Calls == 1 {
			if st.Pending != 1 {
				t.Fatalf("pending = %d, want 1", st.Pending)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("call never became visible to EntryStats")
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	<-done
	mustClose(t, o)
}
