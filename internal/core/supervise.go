package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ManagerPolicy selects what the runtime does when an object's manager
// process dies (panics). The paper makes the manager the single arbiter of
// an object's synchronization (§2), so a dead manager would otherwise wedge
// every pending and future call forever.
type ManagerPolicy int

const (
	// FailFast poisons the object on the first manager panic: all pending,
	// accepted and future calls fail promptly with ErrObjectPoisoned
	// wrapping the panic. This is the default.
	FailFast ManagerPolicy = iota
	// Restart re-runs the manager function after a panic, with capped
	// exponential backoff and a restart budget. Calls the dead manager had
	// accepted (or awaited) are re-attached (or re-readied) so the new
	// incarnation sees them as fresh arrivals. An exhausted budget poisons
	// the object. The manager function must be restartable: it is invoked
	// from scratch and must rebuild any manager-local state it needs.
	Restart
)

// String implements fmt.Stringer.
func (p ManagerPolicy) String() string {
	switch p {
	case FailFast:
		return "fail-fast"
	case Restart:
		return "restart"
	default:
		return fmt.Sprintf("ManagerPolicy(%d)", int(p))
	}
}

// RestartPolicy tunes the Restart manager policy.
type RestartPolicy struct {
	// Max is the restart budget: the number of restarts allowed before the
	// object is poisoned (default 5).
	Max int
	// Backoff is the delay before the first restart (default 1ms); each
	// subsequent restart doubles it.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 250ms).
	MaxBackoff time.Duration
}

func (p RestartPolicy) withDefaults() RestartPolicy {
	if p.Max <= 0 {
		p.Max = 5
	}
	if p.Backoff <= 0 {
		p.Backoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	return p
}

// ShedPolicy selects what admission control does with a call that arrives
// while the entry's MaxPending bound is full.
type ShedPolicy int

const (
	// ShedBlock makes the caller wait (honouring its context) until a
	// pending slot frees up. Queue order is preserved: blocked callers are
	// admitted FIFO. This is the default.
	ShedBlock ShedPolicy = iota
	// ShedRejectNewest fails the arriving call with ErrOverload.
	ShedRejectNewest
	// ShedRejectOldest fails the oldest pending call with ErrOverload and
	// admits the arriving one (freshness-biased shedding).
	ShedRejectOldest
)

// String implements fmt.Stringer.
func (p ShedPolicy) String() string {
	switch p {
	case ShedBlock:
		return "block"
	case ShedRejectNewest:
		return "reject-newest"
	case ShedRejectOldest:
		return "reject-oldest"
	default:
		return fmt.Sprintf("ShedPolicy(%d)", int(p))
	}
}

// StallInfo describes one stall-watchdog detection: the oldest pending call
// of the object exceeded the threshold while the manager was still live —
// typically a manager blocked in a guard set that can never fire.
type StallInfo struct {
	Object  string
	Entry   string        // entry of the oldest pending call
	CallID  uint64        // its call id
	Age     time.Duration // how long it has been pending
	Pending int           // the entry's #P at detection time
}

// WatchdogConfig configures the optional per-object stall watchdog. The
// signal is oldest-pending-call age, not manager idle time: a manager
// legitimately blocked in accept on an empty queue never trips it.
type WatchdogConfig struct {
	// Threshold is the pending age that trips the watchdog (0 disables it).
	Threshold time.Duration
	// Interval is the poll cadence (default Threshold/4, at least 1ms).
	Interval time.Duration
	// OnStall, when non-nil, is invoked outside all runtime locks for each
	// detection (at most once per distinct oldest call).
	OnStall func(StallInfo)
}

func (c WatchdogConfig) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	iv := c.Threshold / 4
	if iv < time.Millisecond {
		iv = time.Millisecond
	}
	return iv
}

// ObjectOptions bundles the supervision and admission-control configuration
// of an object: manager policy, per-entry pending bounds with shed policies,
// a default call deadline, and the stall watchdog. See docs/SUPERVISION.md.
type ObjectOptions struct {
	// ManagerPolicy selects the reaction to a manager panic (default
	// FailFast: poison the object).
	ManagerPolicy ManagerPolicy
	// Restart tunes the Restart policy (budget, backoff).
	Restart RestartPolicy
	// MaxPending bounds each entry's pending calls (#P: waiting + attached,
	// not yet accepted). 0 leaves entries unbounded. EntrySpec.MaxPending
	// overrides it per entry.
	MaxPending int
	// Shed is the policy applied when MaxPending is full (default
	// ShedBlock). Only meaningful together with MaxPending; an entry-level
	// EntrySpec.MaxPending brings its own EntrySpec.Shed.
	Shed ShedPolicy
	// DefaultCallTimeout is applied to Call/CallCtx when the caller's
	// context carries no deadline (0 = none). It bounds the wait for
	// acceptance; an accepted call still runs to completion (§5 of
	// docs/SEMANTICS.md).
	DefaultCallTimeout time.Duration
	// Watchdog configures the stall watchdog (zero Threshold disables).
	Watchdog WatchdogConfig
	// Metrics, when non-nil, accumulates shed/restart/poison/stall
	// counters. Share one instance across objects to aggregate.
	Metrics *metrics.Supervision
	// Sequencer, when non-nil, receives a Point callback at every
	// scheduling decision inside the runtime (see Sequencer). It is the
	// deterministic-schedule hook used by the conformance harness; leave it
	// nil in production (the default costs one branch per point).
	Sequencer Sequencer
	// Journal, when non-nil, receives every delivered call outcome for
	// write-ahead logging (see Journal and internal/wal). Nil — the
	// default — keeps the delivery path free of durability work beyond one
	// nil check.
	Journal Journal
}

// WithObjectOptions attaches supervision and admission-control
// configuration to an object.
func WithObjectOptions(opts ObjectOptions) Option {
	return func(c *config) { c.sup = opts; c.supSet = true }
}

// validate rejects nonsensical supervision configuration at New time.
func (so ObjectOptions) validate(name string, hasMgr bool) error {
	if so.ManagerPolicy == Restart && !hasMgr {
		return fmt.Errorf("object %s: ManagerPolicy Restart: %w", name, ErrNoManager)
	}
	if so.MaxPending < 0 {
		return fmt.Errorf("object %s: negative MaxPending %d: %w", name, so.MaxPending, ErrBadState)
	}
	if so.DefaultCallTimeout < 0 {
		return fmt.Errorf("object %s: negative DefaultCallTimeout: %w", name, ErrBadState)
	}
	if so.Watchdog.Threshold < 0 {
		return fmt.Errorf("object %s: negative watchdog threshold: %w", name, ErrBadState)
	}
	return nil
}

// SupervisionStats is a snapshot of an object's supervision state.
type SupervisionStats struct {
	Restarts int   // manager restarts performed so far
	Poisoned bool  // terminal: manager dead without recovery
	Err      error // the poison error (nil unless Poisoned)
	Sheds    uint64
	Stalls   uint64
}

// SupervisionStats reports the object's supervision counters.
func (o *Object) SupervisionStats() SupervisionStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return SupervisionStats{
		Restarts: o.restarts,
		Poisoned: o.poisoned,
		Err:      o.poisonErr,
		Sheds:    o.sheds,
		Stalls:   o.stalls,
	}
}

// Poisoned reports whether the object has been poisoned. A poisoned object
// fails every call with ErrObjectPoisoned; see docs/SUPERVISION.md.
func (o *Object) Poisoned() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.poisoned
}

// superviseManager runs manager incarnations until one returns normally,
// the object closes, or the policy gives up and poisons the object. It owns
// o.mgrDone: the channel closes when no further incarnation will run.
func (o *Object) superviseManager() {
	defer close(o.mgrDone)
	pol := o.sup.Restart.withDefaults()
	backoff := pol.Backoff
	for {
		m := newMgr(o)
		o.mgr.Store(m)
		reason := o.runManagerOnce(m)
		if reason == nil {
			// The manager returned of its own accord (normally after
			// Loop/Select reports ErrClosed). If the object is still open,
			// accepted-but-unstarted calls can no longer progress; mark the
			// manager gone so cancellation can withdraw them.
			o.mu.Lock()
			o.mgrGone = true
			o.mu.Unlock()
			return
		}
		o.mu.Lock()
		o.mgrErr = reason
		closed := o.closed
		restarts := o.restarts
		o.mu.Unlock()
		if closed {
			return
		}
		if o.sup.ManagerPolicy != Restart || restarts >= pol.Max {
			o.poison(reason)
			return
		}
		o.mu.Lock()
		o.restarts++
		o.requeueForRestartLocked()
		o.mu.Unlock()
		if s := o.sup.Metrics; s != nil {
			s.Restarts.Inc()
		}
		o.record("", -1, uint64(restarts+1), trace.MgrRestart)
		select {
		case <-time.After(backoff):
		case <-o.closeCh:
			return
		}
		if backoff *= 2; backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
}

// runManagerOnce executes one manager incarnation, converting a panic into
// an error and releasing the incarnation's channel subscriptions.
func (o *Object) runManagerOnce(m *Mgr) (reason error) {
	defer func() {
		if r := recover(); r != nil {
			reason = fmt.Errorf("alps: manager of %s panicked: %v", o.name, r)
		}
		m.unsubscribeAll()
	}()
	o.mgrFn(m)
	return nil
}

// requeueForRestartLocked rolls manager-held call state back so the next
// incarnation sees it afresh: accepted-but-unstarted calls re-attach,
// awaited-but-unfinished calls become ready again. Started bodies keep
// running; their completions queue as ready for the new manager.
func (o *Object) requeueForRestartLocked() {
	for _, name := range o.order {
		e := o.entries[name]
		for _, s := range e.slots {
			switch s.state {
			case slotAccepted:
				s.state = slotAttached
				e.attached = enlist(e.attached, s)
				o.record(name, s.index, s.call.id, trace.Attached)
			case slotAwaited:
				s.state = slotReady
				e.ready = enlist(e.ready, s)
				o.record(name, s.index, s.call.id, trace.Ready)
			}
		}
	}
}

// poison marks the object terminally failed: every pending, accepted,
// ready and awaited call fails now with ErrObjectPoisoned (wrapping the
// manager's panic), running bodies are cancelled via Invocation.Ctx, and
// every future call fails at submission. Started bodies deliver the poison
// error when they complete (the dead manager cannot endorse their results).
func (o *Object) poison(reason error) {
	perr := fmt.Errorf("alps: object %s poisoned: %v: %w", o.name, reason, ErrObjectPoisoned)
	o.mu.Lock()
	if o.poisoned || o.closed {
		o.mu.Unlock()
		return
	}
	o.poisoned = true
	o.poisonErr = perr
	o.closeIntakeLocked()
	for _, name := range o.order {
		e := o.entries[name]
		for _, cr := range e.waitq {
			o.deliverLocked(cr, nil, perr)
			o.record(name, -1, cr.id, trace.Failed)
			cr.release(o) // runtime reference: the call never attached
		}
		e.waitq = nil
		for _, s := range e.slots {
			switch s.state {
			case slotAttached, slotAccepted, slotReady, slotAwaited:
				if s.state == slotReady || s.state == slotAwaited {
					e.active-- // body finished; nobody will Finish it
				}
				o.deliverLocked(s.call, nil, perr)
				o.record(name, s.index, s.call.id, trace.Failed)
				o.freeSlotLocked(s)
			}
		}
		o.releaseAdmissionWaitersLocked(e)
	}
	o.record("", -1, 0, trace.Poisoned)
	o.mu.Unlock()
	o.lifeCancel() // running bodies observe Invocation.Ctx cancellation
	if s := o.sup.Metrics; s != nil {
		s.Poisons.Inc()
	}
}

// releaseAdmissionWaitersLocked wakes every caller blocked in admission
// control (ShedBlock); they re-examine the object under the lock and fail
// with the poison or close error.
func (o *Object) releaseAdmissionWaitersLocked(e *entry) {
	for _, ch := range e.spaceq {
		close(ch)
	}
	e.spaceq = nil
}

// notifySpaceLocked admits blocked callers for the pending capacity that
// just freed up, FIFO. Each closed channel admits one caller, which
// re-checks the bound under the lock, so overshoot is impossible.
func (o *Object) notifySpaceLocked(e *entry) {
	if e.maxPending <= 0 || len(e.spaceq) == 0 {
		return
	}
	free := e.maxPending - e.pending()
	for free > 0 && len(e.spaceq) > 0 {
		close(e.spaceq[0])
		e.spaceq = e.spaceq[1:]
		free--
	}
}

// removeAdmissionWaiterLocked abandons a blocked caller's wait slot. If the
// channel was already closed (a grant raced with the abandonment), the
// grant is passed on so capacity is not lost.
func (o *Object) removeAdmissionWaiterLocked(e *entry, ch chan struct{}) {
	for i, w := range e.spaceq {
		if w == ch {
			e.spaceq = append(e.spaceq[:i], e.spaceq[i+1:]...)
			return
		}
	}
	o.notifySpaceLocked(e) // ch was granted; hand the space to the next waiter
}

// shedNewestLocked rejects an arriving call with ErrOverload and counts it.
func (o *Object) shedNewestLocked(e *entry) error {
	id := o.nextCallID.Add(1)
	e.shed++
	o.sheds++
	o.record(e.spec.Name, -1, id, trace.Shed)
	if s := o.sup.Metrics; s != nil {
		s.Sheds.Inc()
	}
	return fmt.Errorf("object %s: entry %s: %d pending (max %d): %w",
		o.name, e.spec.Name, e.pending(), e.maxPending, ErrOverload)
}

// shedOldestLocked fails the oldest pending call of e with ErrOverload,
// freeing one pending slot for an arriving call. It reports whether a
// victim was found.
func (o *Object) shedOldestLocked(e *entry) bool {
	fail := func(cr *callRecord) {
		err := fmt.Errorf("object %s: entry %s: shed by newer arrival (max %d pending): %w",
			o.name, e.spec.Name, e.maxPending, ErrOverload)
		o.deliverLocked(cr, nil, err)
		e.shed++
		o.sheds++
		o.record(e.spec.Name, cr.slotIndex(), cr.id, trace.Shed)
		if s := o.sup.Metrics; s != nil {
			s.Sheds.Inc()
		}
	}
	// Attached calls are older than waiting ones (attachment is FIFO), so
	// prefer the attached slot with the smallest call id.
	var victim *slot
	for _, s := range e.attached {
		if victim == nil || s.call.id < victim.call.id {
			victim = s
		}
	}
	if victim != nil {
		fail(victim.call)
		o.freeSlotLocked(victim)
		return true
	}
	if len(e.waitq) > 0 {
		cr := e.waitq[0]
		e.waitq = e.waitq[1:]
		fail(cr)
		cr.release(o) // runtime reference: the call never attached
		return true
	}
	return false
}

// admitLocked applies the entry's admission bound to an arriving call,
// blocking (per ShedBlock) with o.mu held-and-released until there is room,
// the context ends, or the object dies. It returns with o.mu held and the
// object re-validated; a non-nil error means the call was not admitted (and
// the lock is released).
func (o *Object) admitLocked(ctx context.Context, e *entry) error {
	for {
		if o.closed {
			o.mu.Unlock()
			return fmt.Errorf("object %s: %w", o.name, ErrClosed)
		}
		if o.poisoned {
			err := o.poisonErr
			o.mu.Unlock()
			return err
		}
		if e.maxPending <= 0 || e.pending() < e.maxPending {
			return nil
		}
		switch e.shedPolicy {
		case ShedRejectNewest:
			err := o.shedNewestLocked(e)
			o.mu.Unlock()
			return err
		case ShedRejectOldest:
			if o.shedOldestLocked(e) {
				return nil
			}
			// No pending victim (bound smaller than the hidden array and
			// everything already accepted): reject the newcomer instead.
			err := o.shedNewestLocked(e)
			o.mu.Unlock()
			return err
		default: // ShedBlock
			ch := make(chan struct{})
			e.spaceq = append(e.spaceq, ch)
			o.mu.Unlock()
			select {
			case <-ch:
				o.mu.Lock()
			case <-ctx.Done():
				o.mu.Lock()
				o.removeAdmissionWaiterLocked(e, ch)
				o.mu.Unlock()
				return ctx.Err()
			case <-o.lifeCtx.Done():
				// Close or poison: loop re-checks under the lock and
				// returns the precise error.
				o.mu.Lock()
				o.removeAdmissionWaiterLocked(e, ch)
			}
		}
	}
}

// runWatchdog polls the object's oldest pending call age and reports a
// stall — trace event, metric, optional callback — when it exceeds the
// threshold while the manager is live. The signal is oldest-pending-age,
// not manager idle time, so a manager blocked in accept on an empty queue
// never trips it. Each distinct oldest call fires at most once.
func (o *Object) runWatchdog(cfg WatchdogConfig) {
	defer close(o.wdDone)
	t := time.NewTicker(cfg.interval())
	defer t.Stop()
	var lastFired uint64
	for {
		select {
		case <-o.closeCh:
			return
		case <-t.C:
		}
		now := time.Now()
		o.mu.Lock()
		o.drainIntakeLocked() // age mailbox arrivals like any pending call
		if o.poisoned || o.mgrGone {
			// Not a live-manager stall: poison already failed the calls,
			// and a voluntarily-exited manager is not coming back.
			o.mu.Unlock()
			continue
		}
		info, ok := o.oldestPendingLocked(now)
		if ok && info.Age >= cfg.Threshold && info.CallID != lastFired {
			lastFired = info.CallID
			o.stalls++
			o.mu.Unlock()
			if s := o.sup.Metrics; s != nil {
				s.Stalls.Inc()
			}
			o.record(info.Entry, -1, info.CallID, trace.Stalled)
			if cfg.OnStall != nil {
				cfg.OnStall(info)
			}
			continue
		}
		o.mu.Unlock()
	}
}

// oldestPendingLocked finds the oldest pending (waiting or attached, not
// yet accepted) call across all entries. Waiting queues are FIFO, so only
// their heads need checking; attached lists are scanned in full (delist
// breaks their order).
func (o *Object) oldestPendingLocked(now time.Time) (StallInfo, bool) {
	var best StallInfo
	var bestArrived time.Time
	found := false
	for _, name := range o.order {
		e := o.entries[name]
		consider := func(cr *callRecord) {
			if cr.arrived.IsZero() {
				return
			}
			if !found || cr.arrived.Before(bestArrived) {
				found = true
				bestArrived = cr.arrived
				best = StallInfo{Object: o.name, Entry: name, CallID: cr.id, Pending: e.pending()}
			}
		}
		if len(e.waitq) > 0 {
			consider(e.waitq[0])
		}
		for _, s := range e.attached {
			consider(s.call)
		}
	}
	if found {
		best.Age = now.Sub(bestArrived)
	}
	return best, found
}
