package core

import "fmt"

// SeqPoint identifies one scheduling decision point inside the runtime: a
// place where the interleaving of caller, manager and body processes is
// chosen. The conformance harness (internal/conformance) injects a Sequencer
// at these points to explore seeded schedules; production objects leave the
// hook nil and pay one predictable branch per point.
type SeqPoint int

const (
	// SeqSubmit: a caller is about to submit a call to the object.
	SeqSubmit SeqPoint = iota + 1
	// SeqAwaitResult: a caller is about to block for its call's outcome.
	SeqAwaitResult
	// SeqMgrScan: the manager is about to scan for an eligible alternative
	// (top of a Select/Accept/Await iteration).
	SeqMgrScan
	// SeqMgrAccept: the manager committed an accept.
	SeqMgrAccept
	// SeqMgrStart: the manager is about to start an accepted call.
	SeqMgrStart
	// SeqMgrAwait: the manager committed an await.
	SeqMgrAwait
	// SeqMgrFinish: the manager is about to finish an awaited call.
	SeqMgrFinish
	// SeqMgrCombine: the manager is about to finish an accepted call without
	// starting it (request combining, §2.7).
	SeqMgrCombine
	// SeqMgrExecute: the manager is about to run an accepted call inline.
	SeqMgrExecute
	// SeqBodyBegin: a body is about to run on its lightweight process.
	SeqBodyBegin
	// SeqBodyEnd: a body just returned; its termination is about to be
	// routed (to the manager's await queue, or directly to the caller).
	SeqBodyEnd
)

var seqPointNames = map[SeqPoint]string{
	SeqSubmit:      "submit",
	SeqAwaitResult: "await-result",
	SeqMgrScan:     "mgr-scan",
	SeqMgrAccept:   "mgr-accept",
	SeqMgrStart:    "mgr-start",
	SeqMgrAwait:    "mgr-await",
	SeqMgrFinish:   "mgr-finish",
	SeqMgrCombine:  "mgr-combine",
	SeqMgrExecute:  "mgr-execute",
	SeqBodyBegin:   "body-begin",
	SeqBodyEnd:     "body-end",
}

// String implements fmt.Stringer.
func (p SeqPoint) String() string {
	if s, ok := seqPointNames[p]; ok {
		return s
	}
	return fmt.Sprintf("SeqPoint(%d)", int(p))
}

// Sequencer is the virtual-scheduler hook: the runtime calls Point at every
// scheduling decision point, identifying the point kind, the entry involved
// ("" when none) and the call id (0 when not yet assigned). Implementations
// may block, yield or sleep to steer the interleaving; the runtime guarantees
// that Point is invoked with no runtime locks held, so a Sequencer can never
// deadlock the object by parking inside the hook.
//
// A nil Sequencer (the default) costs one branch per point and nothing else.
// Inject one via ObjectOptions.Sequencer.
type Sequencer interface {
	Point(p SeqPoint, object, entry string, callID uint64)
}

// seqPoint is the hook fast path: the common case (no sequencer) is a single
// nil check, mirroring the trace recorder's record fast path.
func (o *Object) seqPoint(p SeqPoint, entry string, callID uint64) {
	if o.seq != nil {
		o.seq.Point(p, o.name, entry, callID)
	}
}
