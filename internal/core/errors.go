package core

import (
	"errors"
	"fmt"
)

var (
	// ErrClosed is returned for operations on a closed object, including
	// calls that were pending when the object closed.
	ErrClosed = errors.New("alps: object closed")

	// ErrUnknownEntry is returned when a call or manager primitive names a
	// procedure the object does not implement.
	ErrUnknownEntry = errors.New("alps: unknown entry procedure")

	// ErrBadArity is returned when a call, start, finish or return supplies
	// the wrong number of values for the procedure's declaration.
	ErrBadArity = errors.New("alps: arity mismatch")

	// ErrBadState is returned when a manager primitive is applied to a call
	// in the wrong lifecycle state (e.g. finish before await, start twice).
	ErrBadState = errors.New("alps: protocol violation")

	// ErrNotIntercepted is returned when a manager primitive names an entry
	// that is not listed in the manager's intercepts clause.
	ErrNotIntercepted = errors.New("alps: entry not intercepted by manager")

	// ErrNoManager is returned when manager-only configuration is used on an
	// object without a manager.
	ErrNoManager = errors.New("alps: object has no manager")

	// ErrObjectPoisoned is returned for every pending, accepted and future
	// call on an object whose manager died without recovering: a FailFast
	// manager panic, or a Restart budget exhausted. The wrapping error text
	// carries the original panic. Poisoning is terminal — callers must not
	// retry (contrast ErrOverload).
	ErrObjectPoisoned = errors.New("alps: object poisoned")

	// ErrOverload is returned when admission control sheds a call because an
	// entry's MaxPending bound is full. The call definitively did not
	// execute, so retrying (with backoff) is always safe.
	ErrOverload = errors.New("alps: entry overloaded")
)

// BodyError wraps a panic raised by an entry procedure body. The call that
// was being serviced fails with this error; the object and its slot recover.
type BodyError struct {
	Object string
	Entry  string
	Slot   int
	Reason any
}

// Error implements the error interface.
func (e *BodyError) Error() string {
	return fmt.Sprintf("alps: body %s.%s[%d] panicked: %v", e.Object, e.Entry, e.Slot, e.Reason)
}
