// Package core implements the ALPS object model: objects with shared data
// and entry procedures, manager processes that intercept calls and implement
// all synchronization and scheduling, and hidden procedure arrays
// (Vishnubhotla, "Synchronization and Scheduling in ALPS Objects",
// ICDCS 1988).
//
// An Object is built from EntrySpecs and an optional manager function. Calls
// to intercepted entries are delayed until the manager accepts them; the
// manager then starts, awaits and finishes each call (or finishes an
// accepted call directly, combining several requests into one execution).
// Entries declared with Array > 1 are hidden procedure arrays: callers see a
// single procedure while the implementation services up to Array calls
// concurrently, each attached to its own array element.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/trace"
)

// Object is an ALPS object instance: a data part shared by a set of entry
// procedures, plus an optional manager process that owns all scheduling.
type Object struct {
	name string

	mu      sync.Mutex
	entries map[string]*entry
	order   []string // declaration order, for deterministic introspection
	closed  bool

	closeCh chan struct{}
	pool    *sched.Pool
	rec     *trace.Recorder
	gate    bool // priority gate: yield to the manager after state changes

	mgrFn      func(*Mgr)
	mgr        atomic.Pointer[Mgr] // current incarnation; swapped on restart
	mgrDone    chan struct{}
	mgrErr     error
	initFn     func()
	nextCallID atomic.Uint64
	bodyWG     sync.WaitGroup

	// Supervision state (docs/SUPERVISION.md). lifeCtx is cancelled on close
	// or poison, so bodies (Invocation.Ctx) and blocked admission waiters
	// observe either promptly.
	sup        ObjectOptions
	poisoned   bool
	poisonErr  error
	mgrGone    bool // manager returned normally while the object was open
	restarts   int
	sheds      uint64
	stalls     uint64
	lifeCtx    context.Context
	lifeCancel context.CancelFunc
	wdDone     chan struct{} // nil unless the stall watchdog is running
	wdEnabled  bool

	// crPool recycles callRecords (and their buffered result channels)
	// across invocations; see the lifecycle notes on callRecord.
	crPool sync.Pool

	// Batched intake mailbox (docs/PERFORMANCE.md): arrivals at intercepted,
	// unbounded entries append here under intakeMu — held only for the
	// append — instead of competing for o.mu with a manager that holds it
	// across guard scans. The manager folds the whole list into the wait
	// queues in one wakeup (drainIntakeLocked). intakeSpare is the drained
	// buffer kept for the next swap; it is touched only under o.mu.
	// intakeClosed is set (under intakeMu) at close/poison so late arrivals
	// fall through to the slow path and observe the precise error.
	intakeMu     sync.Mutex
	intake       []*callRecord
	intakeClosed bool
	intakeSpare  []*callRecord

	// Asynchronous completion (CallAsync): deliverLocked queues settled
	// async calls here instead of sending to a parked caller, and one
	// lazily-started dispatcher goroutine invokes the callbacks outside
	// o.mu. doneSig is allocated at New (capacity 1, coalescing signal);
	// the dispatcher itself starts on the first CallAsync.
	doneq        []asyncDone
	doneSpare    []asyncDone // drained buffer kept for the next swap; dispatcher-only
	doneSig      chan struct{}
	dispatching  bool          // dispatcher started; guarded by o.mu
	dispatchDone chan struct{} // closed when the dispatcher exits

	// seq is the scheduling-decision hook (nil in production; see
	// Sequencer). Immutable after New.
	seq Sequencer

	// journal is the durability hook (nil in production unless the object
	// is journaled; see Journal). Immutable after New.
	journal Journal

	poolMode    sched.Mode
	poolWorkers int
}

// Option configures an Object at construction time.
type Option func(*config)

type config struct {
	entries     []EntrySpec
	mgrFn       func(*Mgr)
	intercepts  []InterceptSpec
	initFn      func()
	rec         *trace.Recorder
	gate        bool
	gateSet     bool
	poolMode    sched.Mode
	poolWorkers int
	sup         ObjectOptions
	supSet      bool
}

// WithEntry declares one procedure of the object's implementation part.
func WithEntry(spec EntrySpec) Option {
	return func(c *config) { c.entries = append(c.entries, spec) }
}

// WithManager installs the manager process and its intercepts clause. The
// function runs on its own process, started implicitly after the object's
// initialization code (paper §2.3); it should return when its Loop or Select
// reports ErrClosed.
func WithManager(fn func(*Mgr), intercepts ...InterceptSpec) Option {
	return func(c *config) {
		c.mgrFn = fn
		c.intercepts = append(c.intercepts, intercepts...)
	}
}

// WithInit registers initialization code executed when the object is
// created, before the manager starts.
func WithInit(fn func()) Option {
	return func(c *config) { c.initFn = fn }
}

// WithTrace attaches a lifecycle event recorder (object monitoring).
func WithTrace(rec *trace.Recorder) Option {
	return func(c *config) { c.rec = rec }
}

// WithPriorityGate controls whether state-changing processes yield to the
// scheduler after waking the manager, approximating the paper's
// high-priority manager (§3). Default on.
func WithPriorityGate(on bool) Option {
	return func(c *config) { c.gate = on; c.gateSet = true }
}

// WithPool selects the lightweight-process provisioning mode (paper §3).
// workers is M for sched.ModePooled and is ignored otherwise: ModeOneToOne
// always pre-creates one process per hidden-array element. The default is
// sched.ModeSpawn (a fresh process per started call).
func WithPool(mode sched.Mode, workers int) Option {
	return func(c *config) { c.poolMode = mode; c.poolWorkers = workers }
}

// New creates, initializes and starts an object: the initialization code
// runs first, then the manager process is created and started (paper §2.3).
func New(name string, opts ...Option) (*Object, error) {
	cfg := config{gate: true, poolMode: sched.ModeSpawn}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.gateSet && cfg.mgrFn == nil {
		return nil, fmt.Errorf("object %s: WithPriorityGate: %w", name, ErrNoManager)
	}
	if len(cfg.intercepts) > 0 && cfg.mgrFn == nil {
		return nil, fmt.Errorf("object %s: intercepts clause without manager: %w", name, ErrNoManager)
	}
	if cfg.supSet {
		if err := cfg.sup.validate(name, cfg.mgrFn != nil); err != nil {
			return nil, err
		}
	}

	o := &Object{
		name:     name,
		entries:  make(map[string]*entry, len(cfg.entries)),
		closeCh:  make(chan struct{}),
		doneSig:  make(chan struct{}, 1),
		rec:      cfg.rec,
		gate:     cfg.gate && cfg.mgrFn != nil,
		mgrFn:    cfg.mgrFn,
		initFn:   cfg.initFn,
		poolMode: cfg.poolMode,
		sup:      cfg.sup,
		seq:      cfg.sup.Sequencer,
		journal:  cfg.sup.Journal,
	}
	o.wdEnabled = cfg.sup.Watchdog.Threshold > 0
	o.lifeCtx, o.lifeCancel = context.WithCancel(context.Background())
	if len(cfg.entries) == 0 {
		return nil, fmt.Errorf("object %s: no entry procedures: %w", name, ErrBadState)
	}
	totalSlots := 0
	for _, spec := range cfg.entries {
		if err := spec.validate(); err != nil {
			return nil, fmt.Errorf("object %s: %w", name, err)
		}
		if _, dup := o.entries[spec.Name]; dup {
			return nil, fmt.Errorf("object %s: duplicate entry %q: %w", name, spec.Name, ErrBadState)
		}
		e := newEntry(spec)
		if spec.MaxPending > 0 {
			e.maxPending, e.shedPolicy = spec.MaxPending, spec.Shed
		} else {
			e.maxPending, e.shedPolicy = cfg.sup.MaxPending, cfg.sup.Shed
		}
		o.entries[spec.Name] = e
		o.order = append(o.order, spec.Name)
		totalSlots += e.spec.Array
	}
	for _, is := range cfg.intercepts {
		e, ok := o.entries[is.Entry]
		if !ok {
			return nil, fmt.Errorf("object %s: intercepts %q: %w", name, is.Entry, ErrUnknownEntry)
		}
		if e.intercepted {
			return nil, fmt.Errorf("object %s: entry %q intercepted twice: %w", name, is.Entry, ErrBadState)
		}
		if is.Params < 0 || is.Params > e.spec.Params {
			return nil, fmt.Errorf("object %s: intercepts %s(%d params) but entry declares %d: %w",
				name, is.Entry, is.Params, e.spec.Params, ErrBadArity)
		}
		if is.Results < 0 || is.Results > e.spec.Results {
			return nil, fmt.Errorf("object %s: intercepts %s(%d results) but entry declares %d: %w",
				name, is.Entry, is.Results, e.spec.Results, ErrBadArity)
		}
		e.intercepted = true
		e.ipParams = is.Params
		e.ipResults = is.Results
	}
	for _, e := range o.entries {
		// Intercepted entries without an admission bound take the mailbox
		// fast path: nothing on the submit side needs o.mu (validation uses
		// immutable spec data, and there is no pending bound to check).
		e.fastIntake = e.intercepted && e.maxPending == 0
	}

	workers := cfg.poolWorkers
	if cfg.poolMode == sched.ModeOneToOne {
		workers = totalSlots
	}
	pool, err := sched.New(cfg.poolMode, workers)
	if err != nil {
		return nil, fmt.Errorf("object %s: %w", name, err)
	}
	o.pool = pool
	o.poolWorkers = workers

	if o.initFn != nil {
		o.initFn()
	}
	if o.wdEnabled {
		o.wdDone = make(chan struct{})
		go o.runWatchdog(o.sup.Watchdog)
	}
	if o.mgrFn != nil {
		o.mgrDone = make(chan struct{})
		go o.superviseManager()
	}
	return o, nil
}

// Name reports the object's name.
func (o *Object) Name() string { return o.name }

// Entries reports the declared procedure names in declaration order.
func (o *Object) Entries() []string {
	out := make([]string, len(o.order))
	copy(out, o.order)
	return out
}

// EntryInfo reports the declared arities of an entry.
func (o *Object) EntryInfo(name string) (EntrySpec, bool) {
	e, ok := o.entries[name]
	if !ok {
		return EntrySpec{}, false
	}
	spec := e.spec
	spec.Body = nil
	return spec, true
}

// EntryIntercepted reports whether the entry is listed in the manager's
// intercepts clause, and the intercepted parameter/result prefix widths.
// The conformance checker uses this to select the legal lifecycle shape for
// the entry's calls (intercepted calls pass through accept/await/finish;
// plain calls start as soon as an array element frees up).
func (o *Object) EntryIntercepted(name string) (intercepted bool, ipParams, ipResults int) {
	e, ok := o.entries[name]
	if !ok {
		return false, 0, 0
	}
	return e.intercepted, e.ipParams, e.ipResults
}

// PoolStats reports lightweight-process statistics for the object.
func (o *Object) PoolStats() sched.Stats { return o.pool.Stats() }

// EntryStats reports an entry's lifetime counters and current queue state,
// the monitoring counterpart to the #P notation.
func (o *Object) EntryStats(name string) (EntryStats, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.drainIntakeLocked() // count mailbox arrivals in Calls and Pending
	e, ok := o.entries[name]
	if !ok {
		return EntryStats{}, false
	}
	return EntryStats{
		Calls:     e.calls,
		Completed: e.completed,
		Combined:  e.combined,
		Failed:    e.failed,
		Shed:      e.shed,
		Pending:   e.pending(),
		Active:    e.active,
	}, true
}

// Call invokes an entry procedure and blocks until it terminates, returning
// its regular results ("X.P(...)", paper §2.2).
//
// Ownership of the params slice transfers to the runtime for the duration
// of the call: callers that spread a retained slice (o.Call(name, vals...))
// must not mutate it until Call returns. The usual literal-argument form
// allocates a fresh slice at the call site, so no defensive copy is made.
func (o *Object) Call(name string, params ...Value) ([]Value, error) {
	return o.CallCtx(context.Background(), name, params...)
}

// CallCtx is Call with a context. Cancellation is honoured while the call is
// waiting to be attached or accepted; once the manager has accepted the
// call, it runs to completion and the results are discarded.
func (o *Object) CallCtx(ctx context.Context, name string, params ...Value) ([]Value, error) {
	if t := o.sup.DefaultCallTimeout; t > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, t)
			defer cancel()
		}
	}
	cr, err := o.submit(ctx, name, params, false)
	if err != nil {
		return nil, err
	}
	return o.awaitResult(ctx, cr)
}

// asyncDone is one settled asynchronous call awaiting its callback: the
// outcome is copied out of the call record at delivery so the record can
// recycle before the callback runs.
type asyncDone struct {
	fn      func([]Value, error)
	results []Value
	err     error
}

// CallAsync submits a call whose completion is delivered by invoking done
// instead of parking the calling goroutine. It reports false — without
// submitting — when the entry or the object's current state requires the
// blocking path: unknown or local entries, intercepted entries (the
// manager protocol owns their completion order), admission-bounded
// entries (submission itself can block), journaled or sequenced objects
// (settlement must wait on durability / the deterministic scheduler), a
// configured call timeout, or a closed/poisoned object. The caller then
// falls back to CallCtx, which reproduces the exact error semantics.
//
// For accepted calls, done is invoked exactly once, on the object's
// completion dispatcher, after the entry body finishes (or with ErrClosed
// if the object shuts down first). done must not block indefinitely: it
// runs on a goroutine shared by every async caller of this object.
func (o *Object) CallAsync(name string, params []Value, done func([]Value, error)) bool {
	e, ok := o.entries[name]
	if !ok || e.spec.Local || e.intercepted || e.maxPending > 0 ||
		len(params) != e.spec.Params ||
		o.journal != nil || o.seq != nil || o.sup.DefaultCallTimeout > 0 {
		return false
	}
	o.mu.Lock()
	if o.closed || o.poisoned {
		o.mu.Unlock()
		return false
	}
	if !o.dispatching {
		o.dispatching = true
		o.dispatchDone = make(chan struct{})
		go o.completionLoop()
	}
	cr := o.acquireCall(e, params)
	cr.onDone = done
	e.calls++
	o.record(name, -1, cr.id, trace.Arrived)
	e.waitq = append(e.waitq, cr)
	o.attachWaitingLocked(e)
	o.mu.Unlock()
	o.wakeManager(e)
	return true
}

// completionLoop is the object's completion dispatcher: it drains the
// async-done queue on each signal and exits at close, after a final
// drain. Deliveries that land between its exit and the end of Close are
// drained by Close itself.
func (o *Object) completionLoop() {
	for {
		select {
		case <-o.doneSig:
			o.drainCompletions()
		case <-o.closeCh:
			o.drainCompletions()
			close(o.dispatchDone)
			return
		}
	}
}

// drainCompletions swaps the queued completions out under o.mu and
// invokes their callbacks outside it. Only one drainer runs at a time
// (the dispatcher while it lives, Close after it exits), so the spare
// buffer needs no further synchronization.
func (o *Object) drainCompletions() {
	for {
		o.mu.Lock()
		batch := o.doneq
		o.doneq = o.doneSpare[:0]
		o.mu.Unlock()
		if len(batch) == 0 {
			return
		}
		for i := range batch {
			d := &batch[i]
			d.fn(d.results, d.err)
			*d = asyncDone{} // drop the references for GC
		}
		o.doneSpare = batch
	}
}

// awaitResult blocks for the call's outcome, honouring cancellation, and
// drops the caller's reference on the record when done. The uncancellable
// case (context.Background and friends) skips the two-way select.
func (o *Object) awaitResult(ctx context.Context, cr *callRecord) ([]Value, error) {
	o.seqPoint(SeqAwaitResult, cr.entry.spec.Name, cr.id)
	if ctx.Done() == nil {
		res := <-cr.resultCh
		return o.settle(cr, res)
	}
	select {
	case res := <-cr.resultCh:
		return o.settle(cr, res)
	case <-ctx.Done():
	}
	// Try to withdraw the call; if it is already accepted we must wait.
	if o.withdraw(cr) {
		cr.release(o)
		return nil, ctx.Err()
	}
	res := <-cr.resultCh
	return o.settle(cr, res)
}

// settle hands a delivered result to the caller, first holding it until
// the outcome is durable when the object's journal asked for that (the
// record's lsn must be read before release returns the record to the
// pool). With no journal this is the release the fast path always did.
func (o *Object) settle(cr *callRecord, res callResult) ([]Value, error) {
	if o.journal == nil {
		cr.release(o)
		return res.results, res.err
	}
	lsn := cr.lsn
	cr.release(o)
	if lsn != 0 {
		if err := o.journal.WaitDurable(lsn); err != nil {
			// The transition happened in memory but is not on disk; the
			// caller must not treat it as done.
			return nil, err
		}
	}
	return res.results, res.err
}

// submit validates, admits and enqueues a call. internal marks calls
// originating from inside the object (local procedure interception, §2.3).
// ctx is consulted only when admission control blocks the caller.
//
// Validation is lock-free (the entries map and specs are immutable after
// New). Intercepted, unbounded entries then take the mailbox fast path; all
// other calls — and late arrivals racing with close or poison — go through
// o.mu, where the precise admission and error rules live.
func (o *Object) submit(ctx context.Context, name string, params []Value, internal bool) (*callRecord, error) {
	e, ok := o.entries[name]
	if !ok {
		return nil, fmt.Errorf("object %s: call %q: %w", o.name, name, ErrUnknownEntry)
	}
	if e.spec.Local && !internal {
		return nil, fmt.Errorf("object %s: %q is a local procedure: %w", o.name, name, ErrUnknownEntry)
	}
	if len(params) != e.spec.Params {
		return nil, fmt.Errorf("object %s: call %s with %d params, declared %d: %w",
			o.name, name, len(params), e.spec.Params, ErrBadArity)
	}
	o.seqPoint(SeqSubmit, name, 0)
	if e.fastIntake {
		if cr, ok := o.submitIntake(e, params); ok {
			o.wakeManager(e)
			return cr, nil
		}
	}
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil, fmt.Errorf("object %s: %w", o.name, ErrClosed)
	}
	if o.poisoned || e.maxPending > 0 {
		if err := o.admitLocked(ctx, e); err != nil {
			return nil, err // admitLocked released the lock
		}
	}
	cr := o.acquireCall(e, params)
	e.calls++
	o.record(name, -1, cr.id, trace.Arrived)
	e.waitq = append(e.waitq, cr)
	o.attachWaitingLocked(e)
	o.mu.Unlock()
	o.wakeManager(e)
	return cr, nil
}

// submitIntake is the mailbox fast path: append the arriving call under
// intakeMu and let the manager fold the whole list into the wait queues in
// one wakeup. It reports false when the mailbox is sealed (object closing
// or poisoned); the caller falls back to the slow path for the precise
// error. Publication safety: every field of the record is written by this
// goroutine before the append, and the manager reads them only after a
// drain, so the intakeMu release/acquire pair orders the writes before
// every manager access.
func (o *Object) submitIntake(e *entry, params []Value) (*callRecord, bool) {
	o.intakeMu.Lock()
	if o.intakeClosed {
		o.intakeMu.Unlock()
		return nil, false
	}
	cr := o.acquireCall(e, params)
	o.record(e.spec.Name, -1, cr.id, trace.Arrived)
	o.intake = append(o.intake, cr)
	o.intakeMu.Unlock()
	return cr, true
}

// drainIntakeLocked folds every mailbox arrival into its entry's wait
// queue and attaches what fits. Called with o.mu held — by the manager at
// the top of each blocking primitive and scan (one drain serves the whole
// batch), and by any path that must observe the complete pending set
// (withdraw, stats, the watchdog, close, poison).
func (o *Object) drainIntakeLocked() {
	o.intakeMu.Lock()
	batch := o.intake
	if len(batch) == 0 {
		o.intakeMu.Unlock()
		return
	}
	o.intake = o.intakeSpare[:0]
	o.intakeMu.Unlock()
	attach := !o.closed && !o.poisoned
	for _, cr := range batch {
		e := cr.entry
		e.calls++
		e.waitq = append(e.waitq, cr)
		if attach {
			o.attachWaitingLocked(e)
		}
	}
	clear(batch) // drop the record references for GC
	o.intakeSpare = batch
}

// closeIntakeLocked seals the mailbox — future fast-path submissions fall
// through to the slow path and observe the close/poison state under o.mu —
// and folds buffered arrivals into their wait queues so the caller's sweep
// fails them like any other pending call. Called with o.mu held.
func (o *Object) closeIntakeLocked() {
	o.intakeMu.Lock()
	o.intakeClosed = true
	o.intakeMu.Unlock()
	o.drainIntakeLocked()
}

// acquireCall returns a recycled (or new) call record, fully reinitialized
// for a call to e with the given params (ownership of the slice transfers
// to the runtime). Callers hold either o.mu (slow path) or intakeMu (fast
// path); in both cases the record is unreachable from live handles — only
// stale ones, which validate through their slot before touching the record
// (see callRecord) — so the resets cannot be observed mid-write.
func (o *Object) acquireCall(e *entry, params []Value) *callRecord {
	cr, _ := o.crPool.Get().(*callRecord)
	if cr == nil {
		cr = &callRecord{resultCh: make(chan callResult, 1)}
		cr.runFn = func() { o.runBody(cr) }
	}
	cr.id = o.nextCallID.Add(1)
	cr.entry = e
	cr.params = params
	cr.delivered = false
	cr.onDone = nil
	cr.slot = nil
	cr.mgrParams = nil
	cr.hiddenParams = nil
	cr.bodyResults = nil
	cr.hiddenResults = nil
	cr.bodyErr = nil
	cr.lsn = 0
	cr.inv = Invocation{}
	if o.wdEnabled {
		cr.arrived = time.Now()
	}
	cr.refs.Store(2) // one ref for the caller, one for the runtime
	return cr
}

// release drops one of the record's two references. The last release
// recycles the record; by then resultCh is guaranteed empty and no live
// handle refers to this lifecycle (stale ones are id-checked).
func (cr *callRecord) release(o *Object) {
	if cr.refs.Add(-1) == 0 {
		o.crPool.Put(cr)
	}
}

// record is the trace fast path: the common untraced case costs one branch
// instead of a five-argument call into the recorder.
func (o *Object) record(entry string, slot int, id uint64, kind trace.Kind) {
	if o.rec != nil {
		o.rec.Record(o.name, entry, slot, id, kind)
	}
}

// withdraw removes a cancelled call if it has not been accepted yet — or,
// when the manager is dead (object poisoned or manager returned while the
// object was open), even an accepted-but-unstarted call: no manager will
// ever start it, so holding the caller past its cancellation would be a
// hang. It reports whether the call was withdrawn.
func (o *Object) withdraw(cr *callRecord) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.drainIntakeLocked() // the call may still be sitting in the mailbox
	if cr.delivered {
		return false
	}
	e := cr.entry
	for i, w := range e.waitq {
		if w == cr {
			e.waitq = append(e.waitq[:i], e.waitq[i+1:]...)
			cr.delivered = true
			e.failed++
			o.record(e.spec.Name, -1, cr.id, trace.Failed)
			cr.release(o) // runtime reference: the call never attached
			o.notifySpaceLocked(e)
			return true
		}
	}
	if cr.slot != nil && (cr.slot.state == slotAttached ||
		(cr.slot.state == slotAccepted && (o.mgrGone || o.poisoned))) {
		cr.delivered = true
		e.failed++
		o.record(e.spec.Name, cr.slotIndex(), cr.id, trace.Failed)
		o.freeSlotLocked(cr.slot) // drops the runtime reference
		o.attachWaitingLocked(e)
		o.notifySpaceLocked(e)
		return true
	}
	return false // accepted or beyond: must run to completion
}

// attachWaitingLocked binds waiting calls to free hidden-array elements,
// choosing elements by rotating scan ("selected arbitrarily by the
// implementation", §2.5). Non-intercepted entries start immediately.
func (o *Object) attachWaitingLocked(e *entry) {
	for len(e.waitq) > 0 {
		s := o.findFreeSlotLocked(e)
		if s == nil {
			return
		}
		cr := e.waitq[0]
		e.waitq = e.waitq[1:]
		s.state = slotAttached
		s.call = cr
		cr.slot = s
		o.record(e.spec.Name, s.index, cr.id, trace.Attached)
		if e.intercepted {
			e.attached = enlist(e.attached, s)
		} else {
			// Non-intercepted: the call leaves the pending set (#P) the
			// moment it starts, freeing admission capacity.
			o.startBodyLocked(cr, cr.params, nil)
			o.notifySpaceLocked(e)
		}
	}
}

func (o *Object) findFreeSlotLocked(e *entry) *slot {
	n := len(e.slots)
	for i := 0; i < n; i++ {
		s := e.slots[(e.attachRot+i)%n]
		if s.state == slotFree {
			e.attachRot = (s.index + 1) % n
			return s
		}
	}
	return nil
}

// startBodyLocked transitions a call to started and submits its body to the
// process pool. regular and hidden are the parameter vectors the body sees.
// The record's embedded Invocation and pre-bound run thunk keep this
// allocation-free.
func (o *Object) startBodyLocked(cr *callRecord, regular, hidden []Value) {
	e := cr.entry
	cr.slot.state = slotStarted
	cr.hiddenParams = hidden
	e.active++
	o.record(e.spec.Name, cr.slotIndex(), cr.id, trace.Started)
	o.bodyWG.Add(1)
	cr.inv = Invocation{obj: o, call: cr, params: regular, hidden: hidden}
	if err := o.pool.Go(cr.runFn); err != nil {
		// Pool closed: the object is shutting down; fail the call.
		o.bodyWG.Done()
		e.active--
		o.deliverLocked(cr, nil, ErrClosed)
		o.record(e.spec.Name, cr.slotIndex(), cr.id, trace.Failed)
		o.freeSlotLocked(cr.slot)
	}
}

// runBody executes a body on a pool process and routes its termination.
func (o *Object) runBody(cr *callRecord) {
	defer o.bodyWG.Done()
	inv := &cr.inv
	e := cr.entry
	o.seqPoint(SeqBodyBegin, e.spec.Name, cr.id)
	err := runSafely(o, cr, e.spec.Body, inv)
	if err == nil {
		if !inv.returned && e.spec.Results > 0 {
			err = fmt.Errorf("body %s.%s returned no results (declared %d): %w",
				o.name, e.spec.Name, e.spec.Results, ErrBadArity)
		}
		if inv.returned && len(inv.results) != e.spec.Results {
			err = fmt.Errorf("body %s.%s returned %d results, declared %d: %w",
				o.name, e.spec.Name, len(inv.results), e.spec.Results, ErrBadArity)
		}
		if err == nil && len(inv.hiddenRes) != e.spec.HiddenResults {
			err = fmt.Errorf("body %s.%s returned %d hidden results, declared %d: %w",
				o.name, e.spec.Name, len(inv.hiddenRes), e.spec.HiddenResults, ErrBadArity)
		}
	}

	o.seqPoint(SeqBodyEnd, e.spec.Name, cr.id)

	o.mu.Lock()
	cr.bodyResults = inv.results
	cr.hiddenResults = inv.hiddenRes
	cr.bodyErr = err
	if e.intercepted && !o.closed && !o.poisoned {
		// Wait for the manager's endorsement of termination (§2.3).
		cr.slot.state = slotReady
		e.ready = enlist(e.ready, cr.slot)
		o.record(e.spec.Name, cr.slotIndex(), cr.id, trace.Ready)
		o.mu.Unlock()
		o.wakeManager(e)
		return
	}
	// Non-intercepted entry (or closing/poisoned object): terminate directly.
	e.active--
	if err != nil {
		o.deliverLocked(cr, nil, err)
	} else if o.poisoned && e.intercepted {
		// The dead manager cannot endorse the result (§2.3's await/finish
		// will never run), so the caller gets the poison error.
		o.deliverLocked(cr, nil, o.poisonErr)
	} else if o.closed && e.intercepted {
		o.deliverLocked(cr, nil, ErrClosed)
	} else {
		o.deliverLocked(cr, cr.bodyResults, nil)
	}
	o.record(e.spec.Name, cr.slotIndex(), cr.id, trace.Finished)
	o.freeSlotLocked(cr.slot)
	o.attachWaitingLocked(e)
	o.mu.Unlock()
	o.wakeManager(e)
}

func runSafely(o *Object, cr *callRecord, body Body, inv *Invocation) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &BodyError{Object: o.name, Entry: cr.entry.spec.Name, Slot: cr.slotIndex(), Reason: r}
		}
	}()
	return body(inv)
}

func (o *Object) deliverLocked(cr *callRecord, results []Value, err error) {
	if cr.delivered {
		return
	}
	cr.delivered = true
	if err != nil {
		cr.entry.failed++
	} else {
		cr.entry.completed++
	}
	if o.journal != nil {
		// Under o.mu: the journal sees outcomes in delivery order, which
		// for manager-exclusive mutations is execution order — the order a
		// crash-recovery replay must reapply them in (docs/DURABILITY.md).
		cr.lsn = o.journal.RecordOutcome(cr.entry.spec.Name, cr.id, cr.params, results, err)
	}
	if cr.onDone != nil {
		// Asynchronous completion: queue the outcome for the dispatcher
		// instead of a parked caller. The caller's reference drops here —
		// no awaitResult will — and the outcome is copied out so the
		// record can recycle before the callback runs.
		o.doneq = append(o.doneq, asyncDone{fn: cr.onDone, results: results, err: err})
		cr.onDone = nil
		cr.release(o)
		select {
		case o.doneSig <- struct{}{}:
		default:
		}
		return
	}
	cr.resultCh <- callResult{results: results, err: err}
}

// freeSlotLocked detaches the slot's call for good: every caller is
// finishing (or failing) the call, so the runtime reference is dropped here.
func (o *Object) freeSlotLocked(s *slot) {
	cr := s.call
	if s.listPos >= 0 {
		e := cr.entry
		switch s.state {
		case slotAttached:
			e.attached = delist(e.attached, s)
		case slotReady:
			e.ready = delist(e.ready, s)
		}
	}
	s.state = slotFree
	s.call = nil
	cr.release(o)
}

// wakeManager pokes the manager's selector — but only when the manager's
// published watch set says it could react to a change on e (poke elision,
// §3: the manager need not be disturbed for entries no guard watches) — and,
// when the priority gate is on, yields the processor so the high-priority
// manager runs first.
func (o *Object) wakeManager(e *entry) {
	m := o.mgr.Load()
	if m == nil || !m.interested(e) {
		return
	}
	m.wake()
	if o.gate {
		runtime.Gosched()
	}
}

// ManagerErr reports a manager panic, if any.
func (o *Object) ManagerErr() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.mgrErr
}

// Done is closed when the object closes; long-running bodies should monitor
// it and terminate.
func (o *Object) Done() <-chan struct{} { return o.closeCh }

// Close shuts the object down: pending (unaccepted) calls fail with
// ErrClosed, the manager process exits, running bodies finish, and their
// callers — whom the manager can no longer serve — receive ErrClosed.
// Close blocks until shutdown completes and is idempotent.
func (o *Object) Close() error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		if o.mgrDone != nil {
			<-o.mgrDone
		}
		o.bodyWG.Wait()
		return nil
	}
	o.closed = true
	close(o.closeCh)
	o.record("", -1, 0, trace.Closed)
	o.closeIntakeLocked()
	for _, name := range o.order {
		e := o.entries[name]
		for _, cr := range e.waitq {
			o.deliverLocked(cr, nil, ErrClosed)
			o.record(name, -1, cr.id, trace.Failed)
			cr.release(o) // runtime reference: the call never attached
		}
		e.waitq = nil
		for _, s := range e.slots {
			if s.state == slotAttached || s.state == slotAccepted {
				o.deliverLocked(s.call, nil, ErrClosed)
				o.record(name, s.index, s.call.id, trace.Failed)
				o.freeSlotLocked(s)
			}
		}
		o.releaseAdmissionWaitersLocked(e)
	}
	o.mu.Unlock()
	o.lifeCancel()

	if m := o.mgr.Load(); m != nil {
		m.poke()
	}
	if o.mgrDone != nil {
		<-o.mgrDone
	}
	if o.wdDone != nil {
		<-o.wdDone
	}
	o.bodyWG.Wait()
	o.pool.Close()

	// Bodies that completed but were never finished by the manager.
	o.mu.Lock()
	for _, name := range o.order {
		e := o.entries[name]
		for _, s := range e.slots {
			if s.state != slotFree && s.call != nil {
				o.deliverLocked(s.call, nil, ErrClosed)
				o.record(name, s.index, s.call.id, trace.Failed)
				o.freeSlotLocked(s)
			}
		}
	}
	dispatching, dd := o.dispatching, o.dispatchDone
	o.mu.Unlock()
	if dispatching {
		// The dispatcher exits on closeCh after its own final drain;
		// completions delivered after that (late bodies, the sweep above)
		// are flushed here, so every async caller hears its callback.
		<-dd
		o.drainCompletions()
	}
	return nil
}
