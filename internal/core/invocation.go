package core

import (
	"context"
	"fmt"
)

// Invocation is the body-side view of one call being serviced: the regular
// parameters (whether supplied by the caller directly or routed through the
// manager), the hidden parameters supplied by the manager at start, and the
// means to produce regular and hidden results.
type Invocation struct {
	obj    *Object
	call   *callRecord
	params []Value
	hidden []Value

	returned  bool
	results   []Value
	hiddenRes []Value
}

// Object returns the object this invocation executes in.
func (inv *Invocation) Object() *Object { return inv.obj }

// Entry reports the procedure name.
func (inv *Invocation) Entry() string { return inv.call.entry.spec.Name }

// Slot reports the hidden-procedure-array element servicing this call.
func (inv *Invocation) Slot() int { return inv.call.slotIndex() }

// CallID reports the unique id of the call (monitoring/tracing).
func (inv *Invocation) CallID() uint64 { return inv.call.id }

// Params returns all regular invocation parameters.
func (inv *Invocation) Params() []Value { return inv.params }

// Param returns the i-th regular invocation parameter.
func (inv *Invocation) Param(i int) Value { return inv.params[i] }

// Hidden returns the i-th hidden parameter supplied by the manager (§2.8).
func (inv *Invocation) Hidden(i int) Value { return inv.hidden[i] }

// HiddenParams returns all hidden parameters.
func (inv *Invocation) HiddenParams() []Value { return inv.hidden }

// Return records the procedure's regular results. It must be called exactly
// once (unless the entry declares zero results), with exactly the declared
// number of values; violations fail the call.
//
// Ownership of the results slice transfers to the runtime: a body that
// spreads a retained slice (inv.Return(vals...)) must not mutate it
// afterwards. The usual literal-argument form allocates a fresh slice at the
// call site, so no defensive copy is made here.
func (inv *Invocation) Return(results ...Value) {
	if inv.returned {
		panic(fmt.Sprintf("alps: body %s.%s called Return twice", inv.obj.name, inv.Entry()))
	}
	inv.returned = true
	inv.results = results
}

// ReturnHidden records hidden results delivered to the manager's await, not
// to the caller (§2.8). Ownership of the slice transfers to the runtime, as
// with Return.
func (inv *Invocation) ReturnHidden(hidden ...Value) {
	inv.hiddenRes = hidden
}

// Done is closed when the object is closing; long-running bodies should
// monitor it and terminate promptly.
func (inv *Invocation) Done() <-chan struct{} { return inv.obj.closeCh }

// Ctx returns a context cancelled when the object closes or is poisoned
// (its manager died without recovering). Long-running bodies should pass it
// to blocking operations so they stop promptly in either case; a plain
// Done() channel only observes close.
func (inv *Invocation) Ctx() context.Context { return inv.obj.lifeCtx }

// CallLocal invokes another procedure of the same object from inside a
// body. If the target is listed in the manager's intercepts clause the call
// is directed to the manager like any entry call — this is how two entries
// sharing a local procedure R put the manager in sole charge of scheduling
// (§2.3).
func (inv *Invocation) CallLocal(name string, params ...Value) ([]Value, error) {
	return inv.CallLocalCtx(context.Background(), name, params...)
}

// CallLocalCtx is CallLocal with a context.
func (inv *Invocation) CallLocalCtx(ctx context.Context, name string, params ...Value) ([]Value, error) {
	cr, err := inv.obj.submit(ctx, name, params, true)
	if err != nil {
		return nil, err
	}
	return inv.obj.awaitResult(ctx, cr)
}
