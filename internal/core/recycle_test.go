package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestStaleHandleRejectedAfterRecycle locks in the ABA guard on manager
// handles: once a call is finished its record may be recycled for a later
// call, so a retained Accepted handle must be rejected by the id check —
// never silently operate on the new call occupying the record.
func TestStaleHandleRejectedAfterRecycle(t *testing.T) {
	errCh := make(chan error, 64)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1,
			Body: func(inv *Invocation) error { inv.Return(inv.Param(0)); return nil }}),
		WithManager(func(m *Mgr) {
			var prev *Accepted
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if prev != nil {
					// prev was combined away on the previous iteration; its
					// record may by now be the record of call a.
					if err := m.Start(prev); !errors.Is(err, ErrBadState) {
						errCh <- fmt.Errorf("stale Start: err=%v, want ErrBadState", err)
					}
					if err := m.FinishAccepted(prev, 0); !errors.Is(err, ErrBadState) {
						errCh <- fmt.Errorf("stale FinishAccepted: err=%v, want ErrBadState", err)
					}
				}
				if err := m.FinishAccepted(a, a.Params[0]); err != nil {
					errCh <- fmt.Errorf("FinishAccepted: %v", err)
				}
				prev = a
			}
		}, InterceptPR("P", 1, 1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	for i := 0; i < 500; i++ {
		res, err := o.Call("P", i)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if res[0].(int) != i {
			t.Fatalf("call %d: got %v, want %d (cross-talk through recycled record?)", i, res[0], i)
		}
	}
	close(errCh)
	for e := range errCh {
		t.Error(e)
	}
}

// TestRecycleUnderCancellation hammers the pooled call pipeline with calls
// withdrawn mid-queue: a cancelled record (and its result channel) must
// never be observed by a later call that recycles it. Result integrity is
// the detector — every successful echo must return its own argument.
// Meant to run under -race as well.
func TestRecycleUnderCancellation(t *testing.T) {
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1,
			Body: func(inv *Invocation) error {
				time.Sleep(20 * time.Microsecond) // keep a queue forming
				inv.Return(inv.Param(0))
				return nil
			}}),
		WithManager(func(m *Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)

	const workers = 8
	const perWorker = 250
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v := g*1_000_000 + i
				if i%3 == 1 {
					// Cancel while the call is (likely) still queued, so the
					// record is withdrawn and recycled.
					ctx, cancel := context.WithTimeout(context.Background(),
						time.Duration(1+i%7)*10*time.Microsecond)
					res, err := o.CallCtx(ctx, "P", v)
					cancel()
					switch {
					case err == nil:
						if res[0].(int) != v {
							t.Errorf("worker %d: cancelled-race call got %v, want %d", g, res[0], v)
						}
					case errors.Is(err, context.DeadlineExceeded):
					default:
						t.Errorf("worker %d: unexpected error %v", g, err)
					}
					continue
				}
				res, err := o.Call("P", v)
				if err != nil {
					t.Errorf("worker %d: call: %v", g, err)
					return
				}
				if res[0].(int) != v {
					t.Errorf("worker %d: got %v, want %d (result stolen by recycled channel?)", g, res[0], v)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCancellationDuringCloseRecycle interleaves withdrawals with Close to
// cover the shutdown sweeps' reference handling.
func TestCancellationDuringCloseRecycle(t *testing.T) {
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1,
			Body: func(inv *Invocation) error {
				time.Sleep(50 * time.Microsecond)
				inv.Return(inv.Param(0))
				return nil
			}}),
		WithManager(func(m *Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v := g*1000 + i
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(1+i%5)*20*time.Microsecond)
				res, err := o.CallCtx(ctx, "P", v)
				cancel()
				if err == nil && res[0].(int) != v {
					t.Errorf("worker %d: got %v, want %d", g, res[0], v)
				}
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	if err := o.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	wg.Wait()
}
