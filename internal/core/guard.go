package core

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/trace"
)

// Guard is one guarded alternative of a select or loop statement (§2.4).
// Guards are built with OnAccept, OnAwait, OnReceive and OnCond, and refined
// with When (acceptance conditions, evaluated against the values that would
// be received) and Pri (run-time priorities; among eligible alternatives the
// smallest value is selected).
type Guard struct {
	kind guardKind

	entry   string
	slotIdx int // -1 = any element

	ch *channel.Chan

	whenAccept func(*Accepted) bool
	whenAwait  func(*Awaited) bool
	whenMsg    func(channel.Message) bool
	cond       func() bool

	priAccept func(*Accepted) int
	priAwait  func(*Awaited) int
	priMsg    func(channel.Message) int
	priConst  int
	hasPri    bool

	actAccept func(*Accepted)
	actAwait  func(*Awaited)
	actMsg    func(channel.Message)
	actCond   func()
}

type guardKind int

const (
	guardAccept guardKind = iota + 1
	guardAwait
	guardReceive
	guardCond
)

// OnAccept builds an "accept P[i](...) => action" guard ranging over all
// elements of P's hidden procedure array ("(i:1..N) accept P[i]").
func OnAccept(entryName string, action func(*Accepted)) Guard {
	return Guard{kind: guardAccept, entry: entryName, slotIdx: -1, actAccept: action}
}

// OnAwait builds an "await P[i](...) => action" guard ranging over all
// started executions of P that are ready to terminate.
func OnAwait(entryName string, action func(*Awaited)) Guard {
	return Guard{kind: guardAwait, entry: entryName, slotIdx: -1, actAwait: action}
}

// OnReceive builds a "receive C(...) => action" guard.
func OnReceive(ch *channel.Chan, action func(channel.Message)) Guard {
	return Guard{kind: guardReceive, ch: ch, actMsg: action}
}

// OnCond builds a pure boolean "when B => action" guard.
func OnCond(cond func() bool, action func()) Guard {
	return Guard{kind: guardCond, cond: cond, actCond: action}
}

// Slot restricts an accept or await guard to one specific array element.
func (g Guard) Slot(i int) Guard {
	g.slotIdx = i
	return g
}

// When attaches an acceptance condition to an accept guard; the predicate
// sees the intercepted parameters the manager would receive (§2.4).
func (g Guard) When(pred func(*Accepted) bool) Guard {
	g.whenAccept = pred
	return g
}

// WhenAwait attaches an acceptance condition to an await guard.
func (g Guard) WhenAwait(pred func(*Awaited) bool) Guard {
	g.whenAwait = pred
	return g
}

// WhenMsg attaches an acceptance condition to a receive guard; the predicate
// sees the message that would be received.
func (g Guard) WhenMsg(pred func(channel.Message) bool) Guard {
	g.whenMsg = pred
	return g
}

// Pri attaches a constant run-time priority ("pri E"); among eligible
// alternatives the smallest value is selected. Guards without Pri default
// to priority 0.
func (g Guard) Pri(p int) Guard {
	g.priConst = p
	g.hasPri = true
	return g
}

// PriAccept computes the priority from the accepted call's intercepted
// parameters (run-time evaluable priorities, §2.4).
func (g Guard) PriAccept(f func(*Accepted) int) Guard {
	g.priAccept = f
	g.hasPri = true
	return g
}

// PriAwait computes the priority from the awaited call's results.
func (g Guard) PriAwait(f func(*Awaited) int) Guard {
	g.priAwait = f
	g.hasPri = true
	return g
}

// PriMsg computes the priority from the message that would be received.
func (g Guard) PriMsg(f func(channel.Message) int) Guard {
	g.priMsg = f
	g.hasPri = true
	return g
}

// candidate is one eligible (guard, datum) pair found during a scan.
type candidate struct {
	guardIdx int
	pri      int
	commit   func() bool // performs the state change; false if stolen
	run      func()      // guard action, executed outside the object lock
}

// Select evaluates the guards and executes exactly one eligible
// alternative, blocking until one becomes eligible. It returns the index of
// the selected guard, or ErrClosed once the object has closed. Semantics
// follow CSP's alternative command with SR-style acceptance conditions and
// priorities: each array element (or buffered message) is a separate
// alternative; the acceptance condition is evaluated against the values that
// would be received; the smallest pri value among eligible alternatives
// wins, with rotating tie-breaks for fairness.
func (m *Mgr) Select(guards ...Guard) (int, error) {
	if len(guards) == 0 {
		return -1, fmt.Errorf("select with no guards: %w", ErrBadState)
	}
	o := m.obj
	for i, g := range guards {
		if err := m.checkGuard(g); err != nil {
			return -1, fmt.Errorf("select guard %d: %w", i, err)
		}
		if g.kind == guardReceive {
			m.subscribe(g.ch)
		}
	}
	for {
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			return -1, ErrClosed
		}
		m.inScan = true
		cands := m.scanLocked(guards)
		m.inScan = false
		if len(cands) == 0 {
			o.mu.Unlock()
			select {
			case <-m.pokeCh:
				continue
			case <-o.closeCh:
				return -1, ErrClosed
			}
		}
		best := pickCandidate(cands, m.rot)
		m.rot++
		if !best.commit() {
			// A receive guard's message was consumed between peek and take;
			// rescan.
			o.mu.Unlock()
			continue
		}
		o.mu.Unlock()
		best.run()
		return best.guardIdx, nil
	}
}

func (m *Mgr) checkGuard(g Guard) error {
	switch g.kind {
	case guardAccept, guardAwait:
		e, ok := m.obj.entries[g.entry]
		if !ok {
			return fmt.Errorf("entry %q: %w", g.entry, ErrUnknownEntry)
		}
		if !e.intercepted {
			return fmt.Errorf("entry %q: %w", g.entry, ErrNotIntercepted)
		}
		if g.slotIdx >= e.spec.Array {
			return fmt.Errorf("entry %q has array size %d, guard names element %d: %w",
				g.entry, e.spec.Array, g.slotIdx, ErrBadArity)
		}
	case guardReceive:
		if g.ch == nil {
			return fmt.Errorf("receive guard with nil channel: %w", ErrBadState)
		}
	case guardCond:
		if g.cond == nil {
			return fmt.Errorf("when guard with nil condition: %w", ErrBadState)
		}
	default:
		return fmt.Errorf("malformed guard: %w", ErrBadState)
	}
	return nil
}

// scanLocked collects every eligible alternative. Called with o.mu held.
func (m *Mgr) scanLocked(guards []Guard) []candidate {
	o := m.obj
	var cands []candidate
	for gi := range guards {
		g := guards[gi]
		switch g.kind {
		case guardAccept:
			// Iterate only attached slots (§3: polling all N elements of a
			// hidden array would be wasteful).
			e := o.entries[g.entry]
			if g.slotIdx >= 0 {
				if s := e.slots[g.slotIdx]; s.state == slotAttached {
					if c, ok := m.acceptCandidate(gi, g, e, s); ok {
						cands = append(cands, c)
					}
				}
				continue
			}
			for _, s := range e.attached {
				if c, ok := m.acceptCandidate(gi, g, e, s); ok {
					cands = append(cands, c)
				}
			}
		case guardAwait:
			e := o.entries[g.entry]
			if g.slotIdx >= 0 {
				if s := e.slots[g.slotIdx]; s.state == slotReady {
					if c, ok := m.awaitCandidate(gi, g, e, s); ok {
						cands = append(cands, c)
					}
				}
				continue
			}
			for _, s := range e.ready {
				if c, ok := m.awaitCandidate(gi, g, e, s); ok {
					cands = append(cands, c)
				}
			}
		case guardReceive:
			msg, ok := g.ch.PeekWhere(g.whenMsg)
			if !ok {
				continue
			}
			// Priority is computed from the peeked message; in the rare case
			// another receiver consumes it before commit, the take below
			// selects the next message satisfying the same condition.
			pri := g.priConst
			if g.priMsg != nil {
				pri = g.priMsg(msg)
			}
			gc := g
			var taken channel.Message
			cands = append(cands, candidate{
				guardIdx: gi,
				pri:      pri,
				commit: func() bool {
					got, ok := gc.ch.TakeWhere(gc.whenMsg)
					if ok {
						taken = got
					}
					return ok
				},
				run: func() { gc.actMsg(taken) },
			})
		case guardCond:
			if !g.cond() {
				continue
			}
			gc := g
			cands = append(cands, candidate{
				guardIdx: gi,
				pri:      g.priConst,
				commit:   func() bool { return true },
				run:      func() { gc.actCond() },
			})
		}
	}
	return cands
}

func (m *Mgr) acceptCandidate(gi int, g Guard, e *entry, s *slot) (candidate, bool) {
	o := m.obj
	cr := s.call
	a := &Accepted{
		m:      m,
		call:   cr,
		Entry:  e.spec.Name,
		Slot:   s.index,
		Params: append([]Value(nil), cr.params[:e.ipParams]...),
	}
	if g.whenAccept != nil && !g.whenAccept(a) {
		return candidate{}, false
	}
	pri := g.priConst
	if g.priAccept != nil {
		pri = g.priAccept(a)
	}
	gc := g
	return candidate{
		guardIdx: gi,
		pri:      pri,
		commit: func() bool {
			e.attached = delist(e.attached, s)
			s.state = slotAccepted
			cr.mgrParams = a.Params
			o.rec.Record(o.name, e.spec.Name, s.index, cr.id, trace.Accepted)
			return true
		},
		run: func() { gc.actAccept(a) },
	}, true
}

func (m *Mgr) awaitCandidate(gi int, g Guard, e *entry, s *slot) (candidate, bool) {
	o := m.obj
	cr := s.call
	aw := &Awaited{
		m:      m,
		call:   cr,
		Entry:  e.spec.Name,
		Slot:   s.index,
		Hidden: append([]Value(nil), cr.hiddenResults...),
		Err:    cr.bodyErr,
	}
	if cr.bodyErr == nil {
		aw.Results = append([]Value(nil), cr.bodyResults[:e.ipResults]...)
	} else {
		aw.Results = make([]Value, e.ipResults)
	}
	if g.whenAwait != nil && !g.whenAwait(aw) {
		return candidate{}, false
	}
	pri := g.priConst
	if g.priAwait != nil {
		pri = g.priAwait(aw)
	}
	gc := g
	return candidate{
		guardIdx: gi,
		pri:      pri,
		commit: func() bool {
			e.ready = delist(e.ready, s)
			s.state = slotAwaited
			o.rec.Record(o.name, e.spec.Name, s.index, cr.id, trace.Awaited)
			return true
		},
		run: func() { gc.actAwait(aw) },
	}, true
}

// pickCandidate selects the minimum-pri candidate. The scan starts at a
// rotating offset and keeps the first minimum found, so equal-priority
// alternatives are served fairly across successive selections.
func pickCandidate(cands []candidate, rot int) candidate {
	n := len(cands)
	best := cands[rot%n]
	for k := 1; k < n; k++ {
		if c := cands[(rot+k)%n]; c.pri < best.pri {
			best = c
		}
	}
	return best
}
