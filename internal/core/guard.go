package core

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/trace"
)

// Guard is one guarded alternative of a select or loop statement (§2.4).
// Guards are built with OnAccept, OnAwait, OnReceive and OnCond, and refined
// with When (acceptance conditions, evaluated against the values that would
// be received) and Pri (run-time priorities; among eligible alternatives the
// smallest value is selected).
//
// Guards must not be mutated between Select calls that reuse the same slice
// (as Loop does): Select caches validation and entry resolution per slice.
type Guard struct {
	kind guardKind

	entry   string
	slotIdx int // -1 = any element

	ch *channel.Chan

	whenAccept func(*Accepted) bool
	whenAwait  func(*Awaited) bool
	whenMsg    func(channel.Message) bool
	cond       func() bool

	priAccept func(*Accepted) int
	priAwait  func(*Awaited) int
	priMsg    func(channel.Message) int
	priConst  int
	hasPri    bool

	actAccept func(*Accepted)
	actAwait  func(*Awaited)
	actMsg    func(channel.Message)
	actCond   func()

	// Filled in by Mgr.prepare (manager goroutine only): the resolved
	// entry for accept/await guards and the preparation stamp that lets
	// repeated Selects over the same slice skip validation entirely.
	res  *entry
	prep uint64
}

type guardKind int

const (
	guardAccept guardKind = iota + 1
	guardAwait
	guardReceive
	guardCond
)

// OnAccept builds an "accept P[i](...) => action" guard ranging over all
// elements of P's hidden procedure array ("(i:1..N) accept P[i]").
func OnAccept(entryName string, action func(*Accepted)) Guard {
	return Guard{kind: guardAccept, entry: entryName, slotIdx: -1, actAccept: action}
}

// OnAwait builds an "await P[i](...) => action" guard ranging over all
// started executions of P that are ready to terminate.
func OnAwait(entryName string, action func(*Awaited)) Guard {
	return Guard{kind: guardAwait, entry: entryName, slotIdx: -1, actAwait: action}
}

// OnReceive builds a "receive C(...) => action" guard.
func OnReceive(ch *channel.Chan, action func(channel.Message)) Guard {
	return Guard{kind: guardReceive, ch: ch, actMsg: action}
}

// OnCond builds a pure boolean "when B => action" guard.
func OnCond(cond func() bool, action func()) Guard {
	return Guard{kind: guardCond, cond: cond, actCond: action}
}

// Slot restricts an accept or await guard to one specific array element.
func (g Guard) Slot(i int) Guard {
	g.slotIdx = i
	return g
}

// When attaches an acceptance condition to an accept guard; the predicate
// sees the intercepted parameters the manager would receive (§2.4). The
// handle passed to the predicate is a scratch value valid only for the
// duration of the call: predicates must not retain it or mutate its Params.
func (g Guard) When(pred func(*Accepted) bool) Guard {
	g.whenAccept = pred
	return g
}

// WhenAwait attaches an acceptance condition to an await guard. The handle
// is scratch, as with When.
func (g Guard) WhenAwait(pred func(*Awaited) bool) Guard {
	g.whenAwait = pred
	return g
}

// WhenMsg attaches an acceptance condition to a receive guard; the predicate
// sees the message that would be received.
func (g Guard) WhenMsg(pred func(channel.Message) bool) Guard {
	g.whenMsg = pred
	return g
}

// Pri attaches a constant run-time priority ("pri E"); among eligible
// alternatives the smallest value is selected. Guards without Pri default
// to priority 0.
func (g Guard) Pri(p int) Guard {
	g.priConst = p
	g.hasPri = true
	return g
}

// PriAccept computes the priority from the accepted call's intercepted
// parameters (run-time evaluable priorities, §2.4). The handle is scratch,
// as with When.
func (g Guard) PriAccept(f func(*Accepted) int) Guard {
	g.priAccept = f
	g.hasPri = true
	return g
}

// PriAwait computes the priority from the awaited call's results. The
// handle is scratch, as with When.
func (g Guard) PriAwait(f func(*Awaited) int) Guard {
	g.priAwait = f
	g.hasPri = true
	return g
}

// PriMsg computes the priority from the message that would be received.
func (g Guard) PriMsg(f func(channel.Message) int) Guard {
	g.priMsg = f
	g.hasPri = true
	return g
}

// candidate is one eligible (guard, datum) pair found during a scan. It is
// a plain value — no handles, no closures — so scanning allocates nothing;
// the winning candidate is materialized at commit time.
type candidate struct {
	guardIdx int
	pri      int
	kind     guardKind
	e        *entry
	s        *slot
}

// Select evaluates the guards and executes exactly one eligible
// alternative, blocking until one becomes eligible. It returns the index of
// the selected guard, or ErrClosed once the object has closed. Semantics
// follow CSP's alternative command with SR-style acceptance conditions and
// priorities: each array element (or buffered message) is a separate
// alternative; the acceptance condition is evaluated against the values that
// would be received; the smallest pri value among eligible alternatives
// wins, with rotating tie-breaks for fairness.
func (m *Mgr) Select(guards ...Guard) (int, error) {
	if len(guards) == 0 {
		return -1, fmt.Errorf("select with no guards: %w", ErrBadState)
	}
	if err := m.prepare(guards); err != nil {
		return -1, err
	}
	o := m.obj
	for {
		o.seqPoint(SeqMgrScan, "", 0)
		m.dirty.Store(0)
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			return -1, ErrClosed
		}
		o.drainIntakeLocked()
		m.inScan = true
		m.scanLocked(guards)
		m.inScan = false
		if len(m.cands) == 0 {
			if err := m.blockLocked(); err != nil {
				return -1, err
			}
			continue
		}
		c := pickCandidate(m.cands, m.rot)
		m.rot++
		g := &guards[c.guardIdx]
		switch c.kind {
		case guardAccept:
			a := m.commitAcceptLocked(c.e, c.s)
			o.mu.Unlock()
			o.seqPoint(SeqMgrAccept, a.Entry, a.id)
			g.actAccept(a)
			return c.guardIdx, nil
		case guardAwait:
			aw := m.commitAwaitLocked(c.e, c.s)
			o.mu.Unlock()
			o.seqPoint(SeqMgrAwait, aw.Entry, aw.id)
			g.actAwait(aw)
			return c.guardIdx, nil
		case guardReceive:
			// The message was only peeked during the scan; in the rare case
			// another receiver consumed it in between, TakeWhere selects the
			// next message satisfying the same condition, or we rescan.
			msg, ok := g.ch.TakeWhere(g.whenMsg)
			o.mu.Unlock()
			if !ok {
				continue
			}
			g.actMsg(msg)
			return c.guardIdx, nil
		default: // guardCond
			o.mu.Unlock()
			g.actCond()
			return c.guardIdx, nil
		}
	}
}

// prepare validates the guard set, resolves entries, (re)subscribes receive
// channels, and publishes the watch set wakers consult for poke elision.
// Loop passes the identical slice on every iteration, so the fully prepared
// case is recognized by (first, len, stamp) and skipped.
func (m *Mgr) prepare(guards []Guard) error {
	if m.lastFirst == &guards[0] && m.lastLen == len(guards) {
		hit := true
		for i := range guards {
			if guards[i].prep != m.lastPrep {
				hit = false
				break
			}
		}
		if hit {
			// A fast-path primitive (Accept/Await/AwaitCall) may have
			// narrowed the published watch set since the last Select over
			// this slice; restore it.
			if ws := m.lastWatch; ws != nil && m.watch.Load() != ws {
				m.watch.Store(ws)
			}
			return nil
		}
	}
	m.prepSeq++
	m.subGen++
	watchAll := false
	m.watchScratch = m.watchScratch[:0]
	for i := range guards {
		g := &guards[i]
		switch g.kind {
		case guardAccept, guardAwait:
			e, err := m.resolveIntercepted(g.entry, g.slotIdx)
			if err != nil {
				return fmt.Errorf("select guard %d: %w", i, err)
			}
			g.res = e
			if !entryIn(m.watchScratch, e) {
				m.watchScratch = append(m.watchScratch, e)
			}
		case guardReceive:
			if g.ch == nil {
				return fmt.Errorf("select guard %d: receive guard with nil channel: %w", i, ErrBadState)
			}
			m.subscribe(g.ch)
		case guardCond:
			if g.cond == nil {
				return fmt.Errorf("select guard %d: when guard with nil condition: %w", i, ErrBadState)
			}
			watchAll = true
		default:
			return fmt.Errorf("select guard %d: malformed guard: %w", i, ErrBadState)
		}
		g.prep = m.prepSeq
	}
	m.sweepSubs()
	ws := watchAllSet
	if !watchAll {
		ws = &watchSet{entries: append([]*entry(nil), m.watchScratch...)}
	}
	m.watch.Store(ws)
	m.lastWatch = ws
	m.lastFirst, m.lastLen, m.lastPrep = &guards[0], len(guards), m.prepSeq
	return nil
}

func entryIn(list []*entry, e *entry) bool {
	for _, x := range list {
		if x == e {
			return true
		}
	}
	return false
}

// scanLocked refills m.cands with every eligible alternative. Called with
// o.mu held. Acceptance conditions and run-time priorities are evaluated
// against the manager's scratch handles; nothing is heap-allocated for a
// candidate that does not win.
func (m *Mgr) scanLocked(guards []Guard) {
	m.cands = m.cands[:0]
	for gi := range guards {
		g := &guards[gi]
		switch g.kind {
		case guardAccept:
			// Iterate only attached slots (§3: polling all N elements of a
			// hidden array would be wasteful).
			e := g.res
			if g.slotIdx >= 0 {
				if s := e.slots[g.slotIdx]; s.state == slotAttached {
					if pri, ok := m.acceptEligible(g, e, s); ok {
						m.cands = append(m.cands, candidate{guardIdx: gi, pri: pri, kind: guardAccept, e: e, s: s})
					}
				}
				continue
			}
			for _, s := range e.attached {
				if pri, ok := m.acceptEligible(g, e, s); ok {
					m.cands = append(m.cands, candidate{guardIdx: gi, pri: pri, kind: guardAccept, e: e, s: s})
				}
			}
		case guardAwait:
			e := g.res
			if g.slotIdx >= 0 {
				if s := e.slots[g.slotIdx]; s.state == slotReady {
					if pri, ok := m.awaitEligible(g, e, s); ok {
						m.cands = append(m.cands, candidate{guardIdx: gi, pri: pri, kind: guardAwait, e: e, s: s})
					}
				}
				continue
			}
			for _, s := range e.ready {
				if pri, ok := m.awaitEligible(g, e, s); ok {
					m.cands = append(m.cands, candidate{guardIdx: gi, pri: pri, kind: guardAwait, e: e, s: s})
				}
			}
		case guardReceive:
			msg, ok := g.ch.PeekWhere(g.whenMsg)
			if !ok {
				continue
			}
			// Priority is computed from the peeked message (§2.4: one
			// candidate per channel — the frontmost eligible message).
			pri := g.priConst
			if g.priMsg != nil {
				pri = g.priMsg(msg)
			}
			m.cands = append(m.cands, candidate{guardIdx: gi, pri: pri, kind: guardReceive})
		case guardCond:
			if !g.cond() {
				continue
			}
			m.cands = append(m.cands, candidate{guardIdx: gi, pri: g.priConst, kind: guardCond})
		}
	}
}

// acceptEligible evaluates an accept guard's acceptance condition and
// priority against an attached slot using the scratch handle. The handle's
// Params alias the call's parameters (capped, so appends cannot clobber the
// suffix); predicates must treat it as read-only and not retain it.
func (m *Mgr) acceptEligible(g *Guard, e *entry, s *slot) (int, bool) {
	if g.whenAccept == nil && g.priAccept == nil {
		return g.priConst, true
	}
	cr := s.call
	a := &m.scratchA
	a.m = m
	a.call = cr
	a.s = s
	a.id = cr.id
	a.Entry = e.spec.Name
	a.Slot = s.index
	a.Params = cr.params[:e.ipParams:e.ipParams]
	if g.whenAccept != nil && !g.whenAccept(a) {
		return 0, false
	}
	pri := g.priConst
	if g.priAccept != nil {
		pri = g.priAccept(a)
	}
	return pri, true
}

// awaitEligible is acceptEligible's counterpart for ready slots.
func (m *Mgr) awaitEligible(g *Guard, e *entry, s *slot) (int, bool) {
	if g.whenAwait == nil && g.priAwait == nil {
		return g.priConst, true
	}
	cr := s.call
	aw := &m.scratchAw
	aw.m = m
	aw.call = cr
	aw.s = s
	aw.id = cr.id
	aw.Entry = e.spec.Name
	aw.Slot = s.index
	aw.Hidden = cr.hiddenResults
	aw.Err = cr.bodyErr
	if cr.bodyErr == nil {
		aw.Results = cr.bodyResults[:e.ipResults:e.ipResults]
	} else if e.ipResults > 0 {
		aw.Results = make([]Value, e.ipResults)
	} else {
		aw.Results = nil
	}
	if g.whenAwait != nil && !g.whenAwait(aw) {
		return 0, false
	}
	pri := g.priConst
	if g.priAwait != nil {
		pri = g.priAwait(aw)
	}
	return pri, true
}

// commitAcceptLocked performs the accept state change for the selected slot
// and materializes the manager's handle. The intercepted parameter prefix
// is copied: the manager may replace values through the handle, and the
// caller's slice must stay untouched.
func (m *Mgr) commitAcceptLocked(e *entry, s *slot) *Accepted {
	o := m.obj
	cr := s.call
	e.attached = delist(e.attached, s)
	s.state = slotAccepted
	a := &Accepted{
		m:      m,
		call:   cr,
		s:      s,
		id:     cr.id,
		Entry:  e.spec.Name,
		Slot:   s.index,
		Params: append([]Value(nil), cr.params[:e.ipParams]...),
	}
	cr.mgrParams = a.Params
	o.record(e.spec.Name, s.index, cr.id, trace.Accepted)
	o.notifySpaceLocked(e) // acceptance shrinks the pending set (#P)
	return a
}

// commitAwaitLocked performs the await state change for the selected slot
// and materializes the manager's handle. Results and Hidden alias the
// body's returned slices (body ownership ended at return; the manager is
// their only consumer).
func (m *Mgr) commitAwaitLocked(e *entry, s *slot) *Awaited {
	o := m.obj
	cr := s.call
	e.ready = delist(e.ready, s)
	s.state = slotAwaited
	aw := &Awaited{
		m:      m,
		call:   cr,
		s:      s,
		id:     cr.id,
		Entry:  e.spec.Name,
		Slot:   s.index,
		Hidden: cr.hiddenResults,
		Err:    cr.bodyErr,
	}
	if cr.bodyErr == nil {
		aw.Results = cr.bodyResults[:e.ipResults:e.ipResults]
	} else if e.ipResults > 0 {
		aw.Results = make([]Value, e.ipResults)
	}
	o.record(e.spec.Name, s.index, cr.id, trace.Awaited)
	return aw
}

// pickCandidate selects the minimum-pri candidate. The scan starts at a
// rotating offset and keeps the first minimum found, so equal-priority
// alternatives are served fairly across successive selections.
func pickCandidate(cands []candidate, rot int) candidate {
	n := len(cands)
	best := cands[rot%n]
	for k := 1; k < n; k++ {
		if c := cands[(rot+k)%n]; c.pri < best.pri {
			best = c
		}
	}
	return best
}
