package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/trace"
)

// echoBody returns its single parameter as its single result.
func echoBody(inv *Invocation) error {
	inv.Return(inv.Param(0))
	return nil
}

func mustClose(t *testing.T, o *Object) {
	t.Helper()
	if err := o.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestConstructionValidation(t *testing.T) {
	valid := EntrySpec{Name: "P", Params: 1, Results: 1, Body: echoBody}
	tests := []struct {
		name string
		opts []Option
	}{
		{"no entries", nil},
		{"empty entry name", []Option{WithEntry(EntrySpec{Body: echoBody})}},
		{"nil body", []Option{WithEntry(EntrySpec{Name: "P"})}},
		{"negative params", []Option{WithEntry(EntrySpec{Name: "P", Params: -1, Body: echoBody})}},
		{"negative array", []Option{WithEntry(EntrySpec{Name: "P", Array: -2, Body: echoBody})}},
		{"duplicate entry", []Option{WithEntry(valid), WithEntry(valid)}},
		{"intercept without manager", []Option{WithEntry(valid), func(c *config) { c.intercepts = append(c.intercepts, Intercept("P")) }}},
		{"gate without manager", []Option{WithEntry(valid), WithPriorityGate(true)}},
		{"intercept unknown entry", []Option{WithEntry(valid), WithManager(func(m *Mgr) {}, Intercept("Q"))}},
		{"intercept too many params", []Option{WithEntry(valid), WithManager(func(m *Mgr) {}, InterceptPR("P", 2, 0))}},
		{"intercept too many results", []Option{WithEntry(valid), WithManager(func(m *Mgr) {}, InterceptPR("P", 0, 2))}},
		{"intercept twice", []Option{WithEntry(valid), WithManager(func(m *Mgr) {}, Intercept("P"), Intercept("P"))}},
		{"bad pool", []Option{WithEntry(valid), WithPool(sched.Mode(99), 0)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New("X", tt.opts...); err == nil {
				t.Fatalf("New succeeded, want error")
			}
		})
	}
}

func TestUnmanagedCallReturnsResults(t *testing.T) {
	o, err := New("Echo", WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Body: echoBody}))
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	res, err := o.Call("P", 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != 42 {
		t.Fatalf("Call = %v, want [42]", res)
	}
}

func TestCallValidation(t *testing.T) {
	o, err := New("Echo",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Body: echoBody}),
		WithEntry(EntrySpec{Name: "R", Params: 0, Results: 0, Local: true, Body: func(inv *Invocation) error { return nil }}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)

	if _, err := o.Call("Nope"); !errors.Is(err, ErrUnknownEntry) {
		t.Errorf("unknown entry err = %v", err)
	}
	if _, err := o.Call("P"); !errors.Is(err, ErrBadArity) {
		t.Errorf("wrong arity err = %v", err)
	}
	if _, err := o.Call("P", 1, 2); !errors.Is(err, ErrBadArity) {
		t.Errorf("wrong arity err = %v", err)
	}
	// Local procedures are not part of the definition part: outside calls fail.
	if _, err := o.Call("R"); !errors.Is(err, ErrUnknownEntry) {
		t.Errorf("local entry called externally: err = %v", err)
	}
}

func TestIntrospection(t *testing.T) {
	o, err := New("X",
		WithEntry(EntrySpec{Name: "A", Params: 2, Results: 1, Array: 3, HiddenParams: 1, Body: echoBody}),
		WithEntry(EntrySpec{Name: "B", Body: func(inv *Invocation) error { return nil }}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	if o.Name() != "X" {
		t.Errorf("Name = %q", o.Name())
	}
	names := o.Entries()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Entries = %v, want declaration order [A B]", names)
	}
	spec, ok := o.EntryInfo("A")
	if !ok || spec.Params != 2 || spec.Array != 3 || spec.HiddenParams != 1 {
		t.Errorf("EntryInfo(A) = %+v, %v", spec, ok)
	}
	if spec.Body != nil {
		t.Error("EntryInfo leaked the body")
	}
	if _, ok := o.EntryInfo("Z"); ok {
		t.Error("EntryInfo(Z) reported ok")
	}
}

func TestHiddenArrayLimitsConcurrency(t *testing.T) {
	// Array=2: at most two bodies run at once; the third call waits for a
	// free element (paper §2.5: "the remaining requests continue to wait").
	const arrayN = 2
	gate := make(chan struct{})
	var mu sync.Mutex
	running, peak := 0, 0
	body := func(inv *Invocation) error {
		mu.Lock()
		running++
		if running > peak {
			peak = running
		}
		mu.Unlock()
		<-gate
		mu.Lock()
		running--
		mu.Unlock()
		return nil
	}
	o, err := New("X", WithEntry(EntrySpec{Name: "P", Array: arrayN, Body: body}))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := o.Call("P"); err != nil {
				t.Errorf("Call: %v", err)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	if running > arrayN {
		t.Errorf("%d bodies running, array size %d", running, arrayN)
	}
	mu.Unlock()
	close(gate)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if peak > arrayN {
		t.Errorf("peak concurrency %d exceeded array size %d", peak, arrayN)
	}
	mustClose(t, o)
}

func TestCallCtxCancelWhileQueued(t *testing.T) {
	gate := make(chan struct{})
	o, err := New("X", WithEntry(EntrySpec{Name: "P", Array: 1, Body: func(inv *Invocation) error {
		<-gate
		return nil
	}}))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the single element.
	first := make(chan error, 1)
	go func() { _, err := o.Call("P"); first <- err }()
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { _, err := o.CallCtx(ctx, "P"); done <- err }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled queued call err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled call did not return")
	}
	close(gate)
	if err := <-first; err != nil {
		t.Fatalf("first call: %v", err)
	}
	mustClose(t, o)
}

func TestCallCtxCancelTooLateStillGetsResult(t *testing.T) {
	// Once a body has started, cancellation is ineffective: the call runs to
	// completion and the caller gets the result.
	started := make(chan struct{})
	o, err := New("X", WithEntry(EntrySpec{Name: "P", Results: 1, Body: func(inv *Invocation) error {
		close(started)
		time.Sleep(30 * time.Millisecond)
		inv.Return("done")
		return nil
	}}))
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan callResult, 1)
	go func() {
		r, err := o.CallCtx(ctx, "P")
		res <- callResult{r, err}
	}()
	<-started
	cancel()
	r := <-res
	if r.err != nil || len(r.results) != 1 || r.results[0] != "done" {
		t.Fatalf("late-cancelled call = %v, %v; want result despite cancel", r.results, r.err)
	}
}

func TestBodyPanicBecomesBodyError(t *testing.T) {
	o, err := New("X", WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error {
		panic("boom")
	}}))
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	_, err = o.Call("P")
	var be *BodyError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BodyError", err)
	}
	if be.Reason != "boom" || be.Entry != "P" {
		t.Fatalf("BodyError = %+v", be)
	}
	// The slot recovered: the next call succeeds... by not panicking we can't
	// reuse the same body; instead verify the object still serves calls.
	if _, err := o.Call("P"); err == nil {
		t.Fatal("expected the panicking body to fail again (slot reuse check)")
	}
}

func TestBodyErrorReturn(t *testing.T) {
	sentinel := errors.New("domain failure")
	o, err := New("X", WithEntry(EntrySpec{Name: "P", Results: 1, Body: func(inv *Invocation) error {
		return sentinel
	}}))
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	if _, err := o.Call("P"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestBodyResultArityViolations(t *testing.T) {
	tests := []struct {
		name string
		spec EntrySpec
	}{
		{"missing results", EntrySpec{Name: "P", Results: 1, Body: func(inv *Invocation) error { return nil }}},
		{"too many results", EntrySpec{Name: "P", Results: 1, Body: func(inv *Invocation) error {
			inv.Return(1, 2)
			return nil
		}}},
		{"unexpected hidden results", EntrySpec{Name: "P", Body: func(inv *Invocation) error {
			inv.ReturnHidden(9)
			return nil
		}}},
		{"double return", EntrySpec{Name: "P", Results: 1, Body: func(inv *Invocation) error {
			inv.Return(1)
			inv.Return(2)
			return nil
		}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o, err := New("X", WithEntry(tt.spec))
			if err != nil {
				t.Fatal(err)
			}
			defer mustClose(t, o)
			if _, err := o.Call("P"); err == nil {
				t.Fatal("call succeeded despite result protocol violation")
			}
		})
	}
}

func TestCloseFailsPendingAndRejectsNewCalls(t *testing.T) {
	gate := make(chan struct{})
	o, err := New("X", WithEntry(EntrySpec{Name: "P", Array: 1, Body: func(inv *Invocation) error {
		select {
		case <-gate:
		case <-inv.Done():
		}
		return nil
	}}))
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the element, then queue another call.
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := o.Call("P")
			errs <- err
		}()
	}
	time.Sleep(30 * time.Millisecond)
	mustClose(t, o)
	wg.Wait()
	close(errs)
	var queuedClosed bool
	for err := range errs {
		if errors.Is(err, ErrClosed) {
			queuedClosed = true
		} else if err != nil {
			t.Errorf("unexpected err: %v", err)
		}
	}
	if !queuedClosed {
		t.Error("queued call was not failed with ErrClosed")
	}
	if _, err := o.Call("P"); !errors.Is(err, ErrClosed) {
		t.Errorf("call after Close: err = %v, want ErrClosed", err)
	}
	mustClose(t, o) // idempotent
}

func TestTraceLifecycleUnmanaged(t *testing.T) {
	rec := trace.NewRecorder(0)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Body: echoBody}),
		WithTrace(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Call("P", 1); err != nil {
		t.Fatal(err)
	}
	mustClose(t, o)
	var kinds []trace.Kind
	for _, e := range rec.Events() {
		kinds = append(kinds, e.Kind)
	}
	// Close emits the shutdown marker after the call's own lifecycle.
	want := []trace.Kind{trace.Arrived, trace.Attached, trace.Started, trace.Finished, trace.Closed}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("lifecycle = %v, want %v", kinds, want)
	}
}

func TestPoolModesServeCalls(t *testing.T) {
	for _, mode := range []sched.Mode{sched.ModeSpawn, sched.ModeOneToOne, sched.ModePooled} {
		t.Run(mode.String(), func(t *testing.T) {
			o, err := New("X",
				WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Array: 4, Body: echoBody}),
				WithPool(mode, 2),
			)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for i := 0; i < 20; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					res, err := o.Call("P", i)
					if err != nil || res[0] != i {
						t.Errorf("Call(%d) = %v, %v", i, res, err)
					}
				}(i)
			}
			wg.Wait()
			st := o.PoolStats()
			if st.Mode != mode {
				t.Errorf("PoolStats.Mode = %v", st.Mode)
			}
			if mode == sched.ModeOneToOne && st.Workers != 4 {
				t.Errorf("one-to-one workers = %d, want array size 4", st.Workers)
			}
			mustClose(t, o)
		})
	}
}

func TestConcurrentCallsConservation(t *testing.T) {
	// Every submitted call returns exactly once with its own result.
	o, err := New("X", WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Array: 8, Body: echoBody}))
	if err != nil {
		t.Fatal(err)
	}
	const callers, per = 8, 100
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := c*per + i
				res, err := o.Call("P", v)
				if err != nil {
					t.Errorf("Call: %v", err)
					return
				}
				if res[0] != v {
					t.Errorf("Call(%d) = %v: cross-talk between calls", v, res[0])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	mustClose(t, o)
}
