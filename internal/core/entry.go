package core

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Value is one ALPS parameter, result, or message value.
type Value = any

// Body is the implementation of an entry (or local) procedure. It runs on a
// lightweight process from the object's pool, asynchronously with respect to
// the manager. Results are produced with inv.Return (and inv.ReturnHidden);
// a non-nil error fails the call. A panic inside the body is recovered and
// surfaces to the caller as a *BodyError.
type Body func(inv *Invocation) error

// EntrySpec declares one procedure of an object's implementation part.
//
// Array > 1 declares a hidden procedure array (paper §2.5): the definition
// part exports a single procedure name while the implementation attaches up
// to Array concurrent calls, each to its own element. HiddenParams and
// HiddenResults declare the extra values exchanged only between the manager
// and the body (paper §2.8); they are invisible to callers.
type EntrySpec struct {
	Name          string
	Params        int // regular invocation parameters
	Results       int // regular results
	Array         int // hidden-procedure-array size; 0 or 1 means plain
	HiddenParams  int
	HiddenResults int
	Local         bool // local procedure: callable only from inside the object
	Body          Body

	// MaxPending bounds this entry's pending calls (#P: waiting plus
	// attached-but-unaccepted). 0 inherits ObjectOptions.MaxPending; either
	// way 0 means unbounded. Shed selects the policy applied when the bound
	// is full (only meaningful with a non-zero MaxPending here; an inherited
	// object-level bound uses ObjectOptions.Shed).
	MaxPending int
	Shed       ShedPolicy
}

func (s EntrySpec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("%w: entry with empty name", ErrBadState)
	}
	if s.Body == nil {
		return fmt.Errorf("%w: entry %q has no body", ErrBadState, s.Name)
	}
	if s.Params < 0 || s.Results < 0 || s.HiddenParams < 0 || s.HiddenResults < 0 {
		return fmt.Errorf("%w: entry %q has negative arity", ErrBadArity, s.Name)
	}
	if s.Array < 0 {
		return fmt.Errorf("%w: entry %q has negative array size", ErrBadArity, s.Name)
	}
	if s.MaxPending < 0 {
		return fmt.Errorf("%w: entry %q has negative MaxPending", ErrBadState, s.Name)
	}
	return nil
}

// InterceptSpec is one element of a manager's intercepts clause
// (paper §2.3, §2.6): the named procedure's calls are directed to the
// manager, which receives the first Params invocation parameters at accept
// and supplies the first Results results at finish.
type InterceptSpec struct {
	Entry   string
	Params  int // initial subsequence of invocation params given to the manager
	Results int // initial subsequence of results supplied by the manager
}

// Intercept lists an entry in the intercepts clause without parameter or
// result interception ("intercepts P").
func Intercept(entry string) InterceptSpec {
	return InterceptSpec{Entry: entry}
}

// InterceptPR lists an entry with interception of the first params
// invocation parameters and first results results
// ("intercepts P(params; results)").
func InterceptPR(entry string, params, results int) InterceptSpec {
	return InterceptSpec{Entry: entry, Params: params, Results: results}
}

type slotState int

const (
	slotFree     slotState = iota + 1
	slotAttached           // call bound to this element, not yet accepted
	slotAccepted           // manager accepted, not yet started
	slotStarted            // body running
	slotReady              // body done, awaiting the manager's await
	slotAwaited            // awaited, awaiting the manager's finish
)

func (s slotState) String() string {
	switch s {
	case slotFree:
		return "free"
	case slotAttached:
		return "attached"
	case slotAccepted:
		return "accepted"
	case slotStarted:
		return "started"
	case slotReady:
		return "ready"
	case slotAwaited:
		return "awaited"
	default:
		return fmt.Sprintf("slotState(%d)", int(s))
	}
}

// slot is one element of a hidden procedure array.
type slot struct {
	index int
	state slotState
	call  *callRecord

	// listPos is this slot's position in the entry's attached or ready
	// list, -1 when in neither. Exactly one list can contain a slot at a
	// time (attached vs ready are disjoint states).
	listPos int
}

// entry is the runtime representation of a procedure.
//
// The attached and ready lists address the implementation issue of §3: "a
// hidden procedure array P[1..N] may have only a small number of requests
// attached to it on the average and it is wasteful to implement a guarded
// command of the form (i:1..N) accept P[i]" by polling all N elements.
// Guard evaluation iterates only the slots that can actually fire.
type entry struct {
	spec        EntrySpec
	intercepted bool
	ipParams    int
	ipResults   int

	// fastIntake marks entries whose submissions take the mailbox fast
	// path (intercepted, no admission bound). Resolved at New, immutable.
	fastIntake bool

	// watchSelf is the singleton watch set {this entry}, pre-built so the
	// manager's single-entry fast paths (Accept, Await, AwaitCall) can
	// publish their interest without allocating.
	watchSelf *watchSet

	slots     []*slot
	attached  []*slot       // slots in state slotAttached (accept candidates)
	ready     []*slot       // slots in state slotReady (await candidates)
	waitq     []*callRecord // calls waiting for a free element
	attachRot int           // rotating scan offset for arbitrary slot choice
	active    int           // bodies started and not yet finished

	// Admission control (resolved at New from EntrySpec/ObjectOptions).
	maxPending int             // bound on pending(); 0 = unbounded
	shedPolicy ShedPolicy      // policy when maxPending is full
	spaceq     []chan struct{} // callers blocked by ShedBlock, FIFO

	// Lifetime counters (under the object lock).
	calls     uint64 // invocations that passed validation
	completed uint64 // calls that returned results to their caller
	combined  uint64 // calls answered without a body execution (§2.7)
	failed    uint64 // calls that returned an error
	shed      uint64 // calls rejected by admission control (ErrOverload)
}

// EntryStats is a snapshot of one entry's lifetime counters.
type EntryStats struct {
	Calls     uint64 // invocations accepted by the runtime
	Completed uint64 // calls that returned results
	Combined  uint64 // calls answered by combining (no body execution)
	Failed    uint64 // calls that returned an error (body error, close, cancel)
	Shed      uint64 // calls rejected by admission control (ErrOverload)
	Pending   int    // current #P (attached + waiting)
	Active    int    // bodies started and not finished
}

// enlist appends s to list and records its position.
func enlist(list []*slot, s *slot) []*slot {
	s.listPos = len(list)
	return append(list, s)
}

// delist removes s from list by swapping in the last element.
func delist(list []*slot, s *slot) []*slot {
	i := s.listPos
	last := len(list) - 1
	list[i] = list[last]
	list[i].listPos = i
	list[last] = nil
	s.listPos = -1
	return list[:last]
}

func newEntry(spec EntrySpec) *entry {
	n := spec.Array
	if n < 1 {
		n = 1
	}
	spec.Array = n
	e := &entry{spec: spec, slots: make([]*slot, n)}
	e.watchSelf = &watchSet{entries: []*entry{e}}
	for i := range e.slots {
		e.slots[i] = &slot{index: i, state: slotFree, listPos: -1}
	}
	return e
}

// pending implements the #P count (paper §2.5.1): calls attached but not yet
// accepted plus calls waiting to be attached.
func (e *entry) pending() int {
	return len(e.waitq) + len(e.attached)
}

type callResult struct {
	results []Value
	err     error
}

// callRecord tracks one invocation through its lifecycle.
//
// Records are recycled through the object's crPool. The protocol (see
// docs/PERFORMANCE.md):
//
//   - refs starts at 2: one reference for the caller blocked on resultCh,
//     one for the runtime (held until the record leaves waitq/slots for
//     good). The side that drops refs to 0 returns the record to the pool.
//   - acquireCall resets every field under either o.mu (slow path) or
//     intakeMu (mailbox fast path); afterwards fields are written only
//     under o.mu, by the record's current owner lifecycle. Fast-path
//     writes are published to the manager by the intakeMu release/acquire
//     pair around the drain, so every o.mu-side access is ordered after
//     them. A stale manager handle from a previous lifecycle must not
//     read the record directly (a fast-path acquire may be rewriting it):
//     it validates through its captured slot first — slot fields are
//     written only under o.mu — and only a slot still bound to the
//     handle's record (which therefore cannot be mid-acquire) licenses
//     the cr.id comparison that detects recycling (ids are unique, so an
//     ABA match is impossible).
//   - resultCh is reused across lifecycles. It is provably empty at
//     recycle time: deliverLocked sends at most once per lifecycle
//     (delivered flag, under the lock), the caller always performs the
//     matching receive before releasing its reference, and a successful
//     withdraw marks delivered before any send can happen.
type callRecord struct {
	id        uint64
	entry     *entry
	params    []Value // caller-supplied regular parameters (ownership transferred)
	resultCh  chan callResult
	delivered bool
	// onDone, when set (CallAsync), routes delivery to the completion
	// dispatcher instead of resultCh; cleared at delivery and on reuse.
	onDone func([]Value, error)
	slot   *slot // nil until attached

	mgrParams     []Value // intercepted prefix handed to the manager at accept
	hiddenParams  []Value // supplied by the manager at start
	bodyResults   []Value // regular results produced by the body
	hiddenResults []Value // hidden results produced by the body
	bodyErr       error

	refs  atomic.Int32
	inv   Invocation // body-side view, embedded to avoid a per-start allocation
	runFn func()     // pre-bound o.runBody(cr) thunk, created once per record

	// lsn is the journal position of this call's outcome record (0 when
	// the object has no journal, the outcome was not journaled, or the
	// journal defers the sync to the rpc acknowledgement). Written in
	// deliverLocked, read by the awaiter after the resultCh receive.
	lsn uint64

	// arrived is the submission timestamp, stamped only when the stall
	// watchdog is enabled (a time.Now() per call is measurable on the hot
	// path and useless otherwise).
	arrived time.Time
}

func (cr *callRecord) slotIndex() int {
	if cr.slot == nil {
		return -1
	}
	return cr.slot.index
}
