//go:build !race

package core

import "testing"

// Allocation regression tests for the pooled call pipeline (PR 2). Limits
// are set with modest headroom over the measured steady state so genuine
// regressions fail while scheduler noise does not. Race builds are excluded:
// the race runtime allocates on its own account.

func newEchoManaged(t *testing.T) *Object {
	t.Helper()
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1,
			Body: func(inv *Invocation) error { inv.Return(inv.Param(0)); return nil }}),
		WithManager(func(m *Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestAllocsManagedExecute(t *testing.T) {
	o := newEchoManaged(t)
	defer mustClose(t, o)
	for i := 0; i < 64; i++ { // warm the record pool
		if _, err := o.Call("P", i); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := o.Call("P", 1); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state measures ~6 allocs/op (was ~26 before the pooled
	// pipeline; see BENCH_baseline.json vs BENCH_PR2.json).
	const limit = 11.0
	if avg > limit {
		t.Errorf("managed execute: %.1f allocs/op, want <= %.0f", avg, limit)
	}
}

func TestAllocsUnmanagedCall(t *testing.T) {
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1,
			Body: func(inv *Invocation) error { inv.Return(inv.Param(0)); return nil }}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	for i := 0; i < 64; i++ {
		if _, err := o.Call("P", i); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := o.Call("P", 1); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state measures ~4 allocs/op (was ~9).
	const limit = 7.0
	if avg > limit {
		t.Errorf("unmanaged call: %.1f allocs/op, want <= %.0f", avg, limit)
	}
}

func TestAllocsGuardLoopCombining(t *testing.T) {
	// E1's manager shape: a bounded buffer driven by When guards with
	// request combining, exercising the lazy guard scan.
	const n = 4
	var buf []Value
	nop := func(inv *Invocation) error { return nil }
	o, err := New("B",
		WithEntry(EntrySpec{Name: "Deposit", Params: 1, Body: nop}),
		WithEntry(EntrySpec{Name: "Remove", Results: 1, Body: nop}),
		WithManager(func(m *Mgr) {
			dep := OnAccept("Deposit", func(a *Accepted) {
				buf = append(buf, a.Params[0])
				_ = m.FinishAccepted(a)
			}).When(func(*Accepted) bool { return len(buf) < n })
			rem := OnAccept("Remove", func(a *Accepted) {
				v := buf[0]
				buf = buf[1:]
				_ = m.FinishAccepted(a, v)
			}).When(func(*Accepted) bool { return len(buf) > 0 })
			_ = m.Loop(dep, rem)
		}, InterceptPR("Deposit", 1, 0), InterceptPR("Remove", 0, 1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	for i := 0; i < 64; i++ {
		if _, err := o.Call("Deposit", i); err != nil {
			t.Fatal(err)
		}
		if _, err := o.Call("Remove"); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := o.Call("Deposit", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := o.Call("Remove"); err != nil {
			t.Fatal(err)
		}
	})
	// One deposit+remove pair measures ~10 allocs (was ~42 with eager
	// candidate materialization).
	const limit = 16.0
	if avg > limit {
		t.Errorf("guard-loop pair: %.1f allocs/op, want <= %.0f", avg, limit)
	}
}
