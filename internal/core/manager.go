package core

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/trace"
)

// Mgr is the handle the manager process uses to run the object's
// synchronization and scheduling. It provides the paper's four primitives —
// accept, start, await, finish — plus the packaged execute, combining
// (FinishAccepted), pending-call counts, and the select/loop guard engine.
//
// All methods must be called from the manager function's process only.
type Mgr struct {
	obj    *Object
	pokeCh chan struct{}
	rot    int // rotation counter for fair tie-breaking among equal-pri guards
	subs   map[*channel.Chan]func()

	// inScan is true while Select holds the object lock to evaluate guards.
	// Guard predicates run in that window on the manager's own process, so
	// Pending/Active must read state directly instead of re-locking. Only
	// the manager goroutine reads or writes this field.
	inScan bool
}

func newMgr(o *Object) *Mgr {
	return &Mgr{
		obj:    o,
		pokeCh: make(chan struct{}, 1),
		subs:   make(map[*channel.Chan]func()),
	}
}

// Object returns the object this manager controls.
func (m *Mgr) Object() *Object { return m.obj }

func (m *Mgr) poke() {
	select {
	case m.pokeCh <- struct{}{}:
	default:
	}
}

func (m *Mgr) unsubscribeAll() {
	for _, unsub := range m.subs {
		unsub()
	}
	m.subs = nil
}

// subscribe lazily registers the manager's poke channel with a channel used
// in a receive guard, for the lifetime of the manager.
func (m *Mgr) subscribe(ch *channel.Chan) {
	if m.subs == nil {
		return // manager exiting
	}
	if _, ok := m.subs[ch]; ok {
		return
	}
	m.subs[ch] = ch.Subscribe(m.pokeCh)
}

// Accepted is the manager's handle on a call it has accepted. Params holds
// the intercepted parameter prefix; the manager may inspect or replace the
// values before Start supplies them to the procedure.
type Accepted struct {
	m      *Mgr
	call   *callRecord
	Entry  string
	Slot   int
	Params []Value
}

// CallID reports the accepted call's unique id. Ids are assigned in
// arrival order at the object, so they double as arrival sequence numbers
// (useful for FIFO scheduling policies via run-time priorities).
func (a *Accepted) CallID() uint64 { return a.call.id }

// Awaited is the manager's handle on a call whose body has terminated and
// been awaited. Results holds the intercepted result prefix; Hidden holds
// all hidden results; Err is non-nil if the body failed (panic or error).
type Awaited struct {
	m       *Mgr
	call    *callRecord
	Entry   string
	Slot    int
	Results []Value
	Hidden  []Value
	Err     error
}

// CallID reports the awaited call's unique id.
func (aw *Awaited) CallID() uint64 { return aw.call.id }

// Pending implements the #P notation: calls attached but not yet accepted
// plus calls waiting to be attached (§2.5.1).
func (m *Mgr) Pending(entryName string) int {
	o := m.obj
	if !m.inScan {
		o.mu.Lock()
		defer o.mu.Unlock()
	}
	e, ok := o.entries[entryName]
	if !ok {
		return 0
	}
	return e.pending()
}

// Active reports the number of started-but-unfinished executions of an entry.
func (m *Mgr) Active(entryName string) int {
	o := m.obj
	if !m.inScan {
		o.mu.Lock()
		defer o.mu.Unlock()
	}
	e, ok := o.entries[entryName]
	if !ok {
		return 0
	}
	return e.active
}

// ArrayLen reports the hidden-procedure-array size of an entry.
func (m *Mgr) ArrayLen(entryName string) int {
	e, ok := m.obj.entries[entryName]
	if !ok {
		return 0
	}
	return e.spec.Array
}

// Closed returns a channel closed when the object closes.
func (m *Mgr) Closed() <-chan struct{} { return m.obj.closeCh }

// Accept blocks until a call to the named entry is attached to some array
// element and accepts it ("accept P[i](...)"), returning the intercepted
// parameter prefix in the handle.
func (m *Mgr) Accept(entryName string) (*Accepted, error) {
	var out *Accepted
	g := OnAccept(entryName, func(a *Accepted) { out = a })
	if _, err := m.Select(g); err != nil {
		return nil, err
	}
	return out, nil
}

// AcceptSlot blocks until a call is attached to the specific element i and
// accepts it. Per §2.5, "if P[i] does not have a request attached and an
// accept P[i] is executed, it is delayed until a request is attached".
func (m *Mgr) AcceptSlot(entryName string, i int) (*Accepted, error) {
	var out *Accepted
	g := OnAccept(entryName, func(a *Accepted) { out = a }).Slot(i)
	if _, err := m.Select(g); err != nil {
		return nil, err
	}
	return out, nil
}

// Start begins executing an accepted call asynchronously with respect to
// the manager ("start P[i](...)"), supplying the (possibly modified)
// intercepted parameters and the hidden parameters (§2.8). The caller's
// remaining parameters are passed directly to the procedure.
func (m *Mgr) Start(a *Accepted, hidden ...Value) error {
	o := m.obj
	o.mu.Lock()
	defer o.mu.Unlock()
	cr := a.call
	e := cr.entry
	if cr.slot == nil || cr.slot.call != cr || cr.slot.state != slotAccepted {
		return fmt.Errorf("start %s.%s: call not in accepted state: %w", o.name, a.Entry, ErrBadState)
	}
	if len(a.Params) != e.ipParams {
		return fmt.Errorf("start %s.%s: manager supplies %d params, intercepts clause says %d: %w",
			o.name, a.Entry, len(a.Params), e.ipParams, ErrBadArity)
	}
	if len(hidden) != e.spec.HiddenParams {
		return fmt.Errorf("start %s.%s: %d hidden params, declared %d: %w",
			o.name, a.Entry, len(hidden), e.spec.HiddenParams, ErrBadArity)
	}
	regular := make([]Value, 0, e.spec.Params)
	regular = append(regular, a.Params...)
	regular = append(regular, cr.params[e.ipParams:]...)
	o.startBodyLocked(cr, regular, append([]Value(nil), hidden...))
	return nil
}

// Await blocks until some started execution of the named entry is ready to
// terminate and awaits it ("await P[i](...)").
func (m *Mgr) Await(entryName string) (*Awaited, error) {
	var out *Awaited
	g := OnAwait(entryName, func(aw *Awaited) { out = aw })
	if _, err := m.Select(g); err != nil {
		return nil, err
	}
	return out, nil
}

// AwaitCall blocks until the specific accepted-and-started call is ready to
// terminate and awaits it.
func (m *Mgr) AwaitCall(a *Accepted) (*Awaited, error) {
	var out *Awaited
	g := OnAwait(a.Entry, func(aw *Awaited) { out = aw }).Slot(a.Slot)
	if _, err := m.Select(g); err != nil {
		return nil, err
	}
	if out.call != a.call {
		return nil, fmt.Errorf("await %s.%s[%d]: slot reused by another call: %w",
			m.obj.name, a.Entry, a.Slot, ErrBadState)
	}
	return out, nil
}

// Finish endorses an awaited call's termination ("finish P[i](...)"): the
// supplied values replace the intercepted result prefix, the caller receives
// them together with the body's remaining results, and the array element is
// freed for the next waiting call. Finish never blocks (§2.3).
func (m *Mgr) Finish(aw *Awaited, results ...Value) error {
	o := m.obj
	o.mu.Lock()
	cr := aw.call
	e := cr.entry
	if cr.slot == nil || cr.slot.call != cr || cr.slot.state != slotAwaited {
		o.mu.Unlock()
		return fmt.Errorf("finish %s.%s: call not in awaited state: %w", o.name, aw.Entry, ErrBadState)
	}
	if len(results) != e.ipResults {
		o.mu.Unlock()
		return fmt.Errorf("finish %s.%s: manager supplies %d results, intercepts clause says %d: %w",
			o.name, aw.Entry, len(results), e.ipResults, ErrBadArity)
	}
	if cr.bodyErr != nil {
		o.deliverLocked(cr, nil, cr.bodyErr)
	} else {
		final := make([]Value, 0, e.spec.Results)
		final = append(final, results...)
		final = append(final, cr.bodyResults[e.ipResults:]...)
		o.deliverLocked(cr, final, nil)
	}
	e.active--
	o.rec.Record(o.name, e.spec.Name, cr.slotIndex(), cr.id, trace.Finished)
	o.freeSlotLocked(cr.slot)
	o.attachWaitingLocked(e)
	o.mu.Unlock()
	return nil
}

// FinishAccepted finishes an accepted call without starting it — request
// combining (§2.7). The manager must have intercepted all invocation
// parameters and must supply all results the caller expects.
func (m *Mgr) FinishAccepted(a *Accepted, results ...Value) error {
	o := m.obj
	o.mu.Lock()
	cr := a.call
	e := cr.entry
	if cr.slot == nil || cr.slot.call != cr || cr.slot.state != slotAccepted {
		o.mu.Unlock()
		return fmt.Errorf("finish %s.%s: call not in accepted state: %w", o.name, a.Entry, ErrBadState)
	}
	if e.ipParams != e.spec.Params {
		o.mu.Unlock()
		return fmt.Errorf("combining %s.%s: manager intercepts %d of %d params; must intercept all: %w",
			o.name, a.Entry, e.ipParams, e.spec.Params, ErrBadState)
	}
	if len(results) != e.spec.Results {
		o.mu.Unlock()
		return fmt.Errorf("combining %s.%s: manager supplies %d results, entry declares %d: %w",
			o.name, a.Entry, len(results), e.spec.Results, ErrBadArity)
	}
	o.deliverLocked(cr, append([]Value(nil), results...), nil)
	e.combined++
	o.rec.Record(o.name, e.spec.Name, cr.slotIndex(), cr.id, trace.Combined)
	o.freeSlotLocked(cr.slot)
	o.attachWaitingLocked(e)
	o.mu.Unlock()
	return nil
}

// Execute runs an accepted call to completion in exclusion with respect to
// the manager: "execute P(params, results)" is equivalent to
// "start P(params); await P(results); finish P(results)" (§2.3). The
// intercepted results pass through unchanged; the Awaited handle is returned
// for monitoring.
func (m *Mgr) Execute(a *Accepted, hidden ...Value) (*Awaited, error) {
	if err := m.Start(a, hidden...); err != nil {
		return nil, err
	}
	aw, err := m.AwaitCall(a)
	if err != nil {
		return nil, err
	}
	return aw, m.Finish(aw, aw.Results...)
}

// Receive blocks until a message is available on the channel and returns
// it ("receive C(...)" outside a guard position). It aborts with ErrClosed
// when the object closes.
func (m *Mgr) Receive(ch *channel.Chan) (channel.Message, error) {
	var out channel.Message
	g := OnReceive(ch, func(msg channel.Message) { out = msg })
	if _, err := m.Select(g); err != nil {
		return nil, err
	}
	return out, nil
}

// Loop repeatedly runs Select over the guards until the object closes,
// implementing the paper's "loop G1 => S1 or ... or Gn => Sn end loop".
func (m *Mgr) Loop(guards ...Guard) error {
	for {
		if _, err := m.Select(guards...); err != nil {
			return err
		}
	}
}
