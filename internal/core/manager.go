package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/channel"
	"repro/internal/trace"
)

// Mgr is the handle the manager process uses to run the object's
// synchronization and scheduling. It provides the paper's four primitives —
// accept, start, await, finish — plus the packaged execute, combining
// (FinishAccepted), pending-call counts, and the select/loop guard engine.
//
// All methods must be called from the manager function's process only.
type Mgr struct {
	obj    *Object
	pokeCh chan struct{}
	rot    int // rotation counter for fair tie-breaking among equal-pri guards

	subs   map[*channel.Chan]*subRec
	subGen uint64 // bumped per prepared guard set; stale subs are swept

	// inScan is true while Select holds the object lock to evaluate guards.
	// Guard predicates run in that window on the manager's own process, so
	// Pending/Active must read state directly instead of re-locking. Only
	// the manager goroutine reads or writes this field.
	inScan bool

	// Guard-set cache (manager goroutine only): Loop passes the same guards
	// slice to Select on every iteration, so validation, entry resolution
	// and the watch set are computed once and stamped into the guards
	// (Guard.prep); a matching (first, len, stamp) triple skips prepare.
	lastFirst *Guard
	lastLen   int
	lastPrep  uint64
	prepSeq   uint64
	lastWatch *watchSet

	// watch publishes the set of entries the manager's current (or most
	// recent) blocking construct can react to; wakers consult it to elide
	// pokes for entries no guard watches. Immutable once stored.
	watch atomic.Pointer[watchSet]

	// dirty/idle implement the wakeup handshake (a Dekker-style flag pair,
	// both seq-cst): the manager clears dirty, scans, publishes idle, then
	// re-checks dirty before blocking; a waker sets dirty and pokes only if
	// idle is set. Either the waker sees idle and pokes, or the manager
	// sees dirty and rescans — a wakeup can never be lost.
	dirty atomic.Int32
	idle  atomic.Int32

	// Reused scan state (manager goroutine only): candidate slice, watch
	// scratch, and the scratch handles guard predicates and priorities are
	// evaluated against (nothing is materialized for losing candidates).
	cands        []candidate
	watchScratch []*entry
	scratchA     Accepted
	scratchAw    Awaited
}

// watchSet is an immutable set of entries a blocked manager can react to.
// all is set when a cond guard is present: arbitrary object state may flip
// it, so every change must wake the manager.
type watchSet struct {
	all     bool
	entries []*entry
}

// watchAllSet is the shared "wake me for everything" set.
var watchAllSet = &watchSet{all: true}

type subRec struct {
	unsub func()
	gen   uint64
}

func newMgr(o *Object) *Mgr {
	return &Mgr{
		obj:    o,
		pokeCh: make(chan struct{}, 1),
		subs:   make(map[*channel.Chan]*subRec),
	}
}

// Object returns the object this manager controls.
func (m *Mgr) Object() *Object { return m.obj }

func (m *Mgr) poke() {
	select {
	case m.pokeCh <- struct{}{}:
	default:
	}
}

// interested reports whether the manager's published watch set covers e.
// A nil set (manager not yet blocked on anything) conservatively matches.
func (m *Mgr) interested(e *entry) bool {
	ws := m.watch.Load()
	if ws == nil || ws.all {
		return true
	}
	for _, we := range ws.entries {
		if we == e {
			return true
		}
	}
	return false
}

// wake is the waker half of the poke-elision handshake: publish the change,
// then poke only if the manager is (or is about to be) blocked.
func (m *Mgr) wake() {
	m.dirty.Store(1)
	if m.idle.Load() != 0 {
		m.poke()
	}
}

// blockLocked is called with o.mu held after a scan found nothing eligible.
// It publishes idle, releases the lock, re-checks dirty (closing the race
// with wakers that missed the idle flag) and blocks until a poke or close.
func (m *Mgr) blockLocked() error {
	o := m.obj
	m.idle.Store(1)
	o.mu.Unlock()
	if m.dirty.Load() != 0 {
		m.idle.Store(0)
		return nil
	}
	select {
	case <-m.pokeCh:
		m.idle.Store(0)
		return nil
	case <-o.closeCh:
		m.idle.Store(0)
		return ErrClosed
	}
}

// watchEntry publishes the single-entry watch set for the fast-path
// primitives, using the entry's pre-built singleton to avoid allocating.
func (m *Mgr) watchEntry(e *entry) {
	if m.watch.Load() != e.watchSelf {
		m.watch.Store(e.watchSelf)
	}
}

func (m *Mgr) unsubscribeAll() {
	for _, s := range m.subs {
		s.unsub()
	}
	m.subs = nil
}

// subscribe registers the manager's poke channel with a channel used in a
// receive guard, exactly once per channel, and stamps the subscription with
// the current guard-set generation.
func (m *Mgr) subscribe(ch *channel.Chan) {
	if m.subs == nil {
		return // manager exiting
	}
	if s, ok := m.subs[ch]; ok {
		s.gen = m.subGen
		return
	}
	m.subs[ch] = &subRec{unsub: ch.Subscribe(m.pokeCh), gen: m.subGen}
}

// sweepSubs unsubscribes channels the newly prepared guard set no longer
// uses, so long-lived managers do not accumulate stale poke sources.
func (m *Mgr) sweepSubs() {
	for ch, s := range m.subs {
		if s.gen != m.subGen {
			s.unsub()
			delete(m.subs, ch)
		}
	}
}

// Accepted is the manager's handle on a call it has accepted. Params holds
// the intercepted parameter prefix; the manager may inspect or replace the
// values before Start supplies them to the procedure.
type Accepted struct {
	m    *Mgr
	call *callRecord
	s    *slot  // the call's array element, captured at accept
	id   uint64 // captured call id; guards against recycled records (ABA)

	Entry  string
	Slot   int
	Params []Value
}

// CallID reports the accepted call's unique id. Ids are assigned in
// arrival order at the object, so they double as arrival sequence numbers
// (useful for FIFO scheduling policies via run-time priorities).
func (a *Accepted) CallID() uint64 { return a.id }

// Awaited is the manager's handle on a call whose body has terminated and
// been awaited. Results holds the intercepted result prefix; Hidden holds
// all hidden results; Err is non-nil if the body failed (panic or error).
type Awaited struct {
	m    *Mgr
	call *callRecord
	s    *slot  // the call's array element, captured at await
	id   uint64 // captured call id; guards against recycled records (ABA)

	Entry   string
	Slot    int
	Results []Value
	Hidden  []Value
	Err     error
}

// CallID reports the awaited call's unique id.
func (aw *Awaited) CallID() uint64 { return aw.id }

// liveHandle reports whether a manager handle (slot s, record cr, captured
// id) still denotes its original call in the wanted slot state. It reads
// only slot fields — written exclusively under o.mu — before touching the
// record: a slot still bound to cr proves the record belongs to this
// lifecycle (not mid-recycle on the mailbox fast path), which makes the
// cr.id ABA comparison safe.
func liveHandle(s *slot, cr *callRecord, id uint64, want slotState) bool {
	return s != nil && s.call == cr && s.state == want && cr.id == id
}

// Pending implements the #P notation: calls attached but not yet accepted
// plus calls waiting to be attached (§2.5.1).
func (m *Mgr) Pending(entryName string) int {
	o := m.obj
	if !m.inScan {
		o.mu.Lock()
		defer o.mu.Unlock()
		o.drainIntakeLocked()
	}
	e, ok := o.entries[entryName]
	if !ok {
		return 0
	}
	return e.pending()
}

// Active reports the number of started-but-unfinished executions of an entry.
func (m *Mgr) Active(entryName string) int {
	o := m.obj
	if !m.inScan {
		o.mu.Lock()
		defer o.mu.Unlock()
		o.drainIntakeLocked()
	}
	e, ok := o.entries[entryName]
	if !ok {
		return 0
	}
	return e.active
}

// ArrayLen reports the hidden-procedure-array size of an entry.
func (m *Mgr) ArrayLen(entryName string) int {
	e, ok := m.obj.entries[entryName]
	if !ok {
		return 0
	}
	return e.spec.Array
}

// Closed returns a channel closed when the object closes.
func (m *Mgr) Closed() <-chan struct{} { return m.obj.closeCh }

// resolveIntercepted maps an entry name to its runtime entry, validating
// that the manager may accept/await it and that slotIdx (or -1 for any) is
// within the hidden array.
func (m *Mgr) resolveIntercepted(entryName string, slotIdx int) (*entry, error) {
	e, ok := m.obj.entries[entryName]
	if !ok {
		return nil, fmt.Errorf("entry %q: %w", entryName, ErrUnknownEntry)
	}
	if !e.intercepted {
		return nil, fmt.Errorf("entry %q: %w", entryName, ErrNotIntercepted)
	}
	if slotIdx >= e.spec.Array {
		return nil, fmt.Errorf("entry %q has array size %d, guard names element %d: %w",
			entryName, e.spec.Array, slotIdx, ErrBadArity)
	}
	return e, nil
}

// Accept blocks until a call to the named entry is attached to some array
// element and accepts it ("accept P[i](...)"), returning the intercepted
// parameter prefix in the handle. This is the single-guard fast path of
// Select(OnAccept(entryName, ...)): no guard machinery, no scan.
func (m *Mgr) Accept(entryName string) (*Accepted, error) {
	e, err := m.resolveIntercepted(entryName, -1)
	if err != nil {
		return nil, err
	}
	o := m.obj
	m.watchEntry(e)
	for {
		o.seqPoint(SeqMgrScan, e.spec.Name, 0)
		m.dirty.Store(0)
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			return nil, ErrClosed
		}
		o.drainIntakeLocked()
		if len(e.attached) > 0 {
			a := m.commitAcceptLocked(e, e.attached[0])
			o.mu.Unlock()
			o.seqPoint(SeqMgrAccept, e.spec.Name, a.id)
			return a, nil
		}
		if err := m.blockLocked(); err != nil {
			return nil, err
		}
	}
}

// AcceptSlot blocks until a call is attached to the specific element i and
// accepts it. Per §2.5, "if P[i] does not have a request attached and an
// accept P[i] is executed, it is delayed until a request is attached".
func (m *Mgr) AcceptSlot(entryName string, i int) (*Accepted, error) {
	e, err := m.resolveIntercepted(entryName, i)
	if err != nil {
		return nil, err
	}
	if i < 0 {
		return nil, fmt.Errorf("entry %q: negative element %d: %w", entryName, i, ErrBadArity)
	}
	o := m.obj
	m.watchEntry(e)
	for {
		o.seqPoint(SeqMgrScan, e.spec.Name, 0)
		m.dirty.Store(0)
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			return nil, ErrClosed
		}
		o.drainIntakeLocked()
		if s := e.slots[i]; s.state == slotAttached {
			a := m.commitAcceptLocked(e, s)
			o.mu.Unlock()
			o.seqPoint(SeqMgrAccept, e.spec.Name, a.id)
			return a, nil
		}
		if err := m.blockLocked(); err != nil {
			return nil, err
		}
	}
}

// Start begins executing an accepted call asynchronously with respect to
// the manager ("start P[i](...)"), supplying the (possibly modified)
// intercepted parameters and the hidden parameters (§2.8). The caller's
// remaining parameters are passed directly to the procedure. Ownership of
// the hidden values transfers to the runtime.
func (m *Mgr) Start(a *Accepted, hidden ...Value) error {
	o := m.obj
	o.seqPoint(SeqMgrStart, a.Entry, a.id)
	o.mu.Lock()
	defer o.mu.Unlock()
	cr := a.call
	if !liveHandle(a.s, cr, a.id, slotAccepted) {
		return fmt.Errorf("start %s.%s: call not in accepted state: %w", o.name, a.Entry, ErrBadState)
	}
	e := cr.entry
	if len(a.Params) != e.ipParams {
		return fmt.Errorf("start %s.%s: manager supplies %d params, intercepts clause says %d: %w",
			o.name, a.Entry, len(a.Params), e.ipParams, ErrBadArity)
	}
	if len(hidden) != e.spec.HiddenParams {
		return fmt.Errorf("start %s.%s: %d hidden params, declared %d: %w",
			o.name, a.Entry, len(hidden), e.spec.HiddenParams, ErrBadArity)
	}
	regular := cr.params
	if e.ipParams > 0 {
		// Re-merge the (possibly replaced) intercepted prefix with the
		// caller's remaining parameters.
		regular = make([]Value, 0, e.spec.Params)
		regular = append(regular, a.Params...)
		regular = append(regular, cr.params[e.ipParams:]...)
	}
	o.startBodyLocked(cr, regular, hidden)
	return nil
}

// Await blocks until some started execution of the named entry is ready to
// terminate and awaits it ("await P[i](...)"). Fast path of
// Select(OnAwait(entryName, ...)).
func (m *Mgr) Await(entryName string) (*Awaited, error) {
	e, err := m.resolveIntercepted(entryName, -1)
	if err != nil {
		return nil, err
	}
	o := m.obj
	m.watchEntry(e)
	for {
		o.seqPoint(SeqMgrScan, e.spec.Name, 0)
		m.dirty.Store(0)
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			return nil, ErrClosed
		}
		o.drainIntakeLocked()
		if len(e.ready) > 0 {
			aw := m.commitAwaitLocked(e, e.ready[0])
			o.mu.Unlock()
			o.seqPoint(SeqMgrAwait, e.spec.Name, aw.id)
			return aw, nil
		}
		if err := m.blockLocked(); err != nil {
			return nil, err
		}
	}
}

// AwaitCall blocks until the specific accepted-and-started call is ready to
// terminate and awaits it.
func (m *Mgr) AwaitCall(a *Accepted) (*Awaited, error) {
	e, err := m.resolveIntercepted(a.Entry, a.Slot)
	if err != nil {
		return nil, err
	}
	o := m.obj
	m.watchEntry(e)
	for {
		o.seqPoint(SeqMgrScan, e.spec.Name, 0)
		m.dirty.Store(0)
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			return nil, ErrClosed
		}
		o.drainIntakeLocked()
		if s := e.slots[a.Slot]; s.state == slotReady {
			aw := m.commitAwaitLocked(e, s)
			o.mu.Unlock()
			o.seqPoint(SeqMgrAwait, e.spec.Name, aw.id)
			if aw.id != a.id {
				return nil, fmt.Errorf("await %s.%s[%d]: slot reused by another call: %w",
					o.name, a.Entry, a.Slot, ErrBadState)
			}
			return aw, nil
		}
		if err := m.blockLocked(); err != nil {
			return nil, err
		}
	}
}

// Finish endorses an awaited call's termination ("finish P[i](...)"): the
// supplied values replace the intercepted result prefix, the caller receives
// them together with the body's remaining results, and the array element is
// freed for the next waiting call. Finish never blocks (§2.3). Ownership of
// the result values transfers to the caller.
func (m *Mgr) Finish(aw *Awaited, results ...Value) error {
	o := m.obj
	o.seqPoint(SeqMgrFinish, aw.Entry, aw.id)
	o.mu.Lock()
	cr := aw.call
	if !liveHandle(aw.s, cr, aw.id, slotAwaited) {
		o.mu.Unlock()
		return fmt.Errorf("finish %s.%s: call not in awaited state: %w", o.name, aw.Entry, ErrBadState)
	}
	e := cr.entry
	if len(results) != e.ipResults {
		o.mu.Unlock()
		return fmt.Errorf("finish %s.%s: manager supplies %d results, intercepts clause says %d: %w",
			o.name, aw.Entry, len(results), e.ipResults, ErrBadArity)
	}
	if cr.bodyErr != nil {
		o.deliverLocked(cr, nil, cr.bodyErr)
	} else {
		final := cr.bodyResults
		if e.ipResults > 0 {
			final = make([]Value, 0, e.spec.Results)
			final = append(final, results...)
			final = append(final, cr.bodyResults[e.ipResults:]...)
		}
		o.deliverLocked(cr, final, nil)
	}
	e.active--
	o.record(e.spec.Name, cr.slotIndex(), cr.id, trace.Finished)
	o.freeSlotLocked(cr.slot)
	o.attachWaitingLocked(e)
	o.mu.Unlock()
	return nil
}

// FinishAccepted finishes an accepted call without starting it — request
// combining (§2.7). The manager must have intercepted all invocation
// parameters and must supply all results the caller expects. Ownership of
// the result values transfers to the caller.
func (m *Mgr) FinishAccepted(a *Accepted, results ...Value) error {
	o := m.obj
	o.seqPoint(SeqMgrCombine, a.Entry, a.id)
	o.mu.Lock()
	cr := a.call
	if !liveHandle(a.s, cr, a.id, slotAccepted) {
		o.mu.Unlock()
		return fmt.Errorf("finish %s.%s: call not in accepted state: %w", o.name, a.Entry, ErrBadState)
	}
	e := cr.entry
	if e.ipParams != e.spec.Params {
		o.mu.Unlock()
		return fmt.Errorf("combining %s.%s: manager intercepts %d of %d params; must intercept all: %w",
			o.name, a.Entry, e.ipParams, e.spec.Params, ErrBadState)
	}
	if len(results) != e.spec.Results {
		o.mu.Unlock()
		return fmt.Errorf("combining %s.%s: manager supplies %d results, entry declares %d: %w",
			o.name, a.Entry, len(results), e.spec.Results, ErrBadArity)
	}
	o.deliverLocked(cr, results, nil)
	e.combined++
	o.record(e.spec.Name, cr.slotIndex(), cr.id, trace.Combined)
	o.freeSlotLocked(cr.slot)
	o.attachWaitingLocked(e)
	o.mu.Unlock()
	return nil
}

// Execute runs an accepted call to completion in exclusion with respect to
// the manager: "execute P(params, results)" is equivalent to
// "start P(params); await P(results); finish P(results)" (§2.3). Because
// the exclusion holds the manager for the whole sequence — it could do
// nothing concurrently anyway — the body runs inline on the manager's own
// process: no pool handoff, no wakeup round trips, observably the same
// schedule at roughly half the per-call cost. The intercepted results pass
// through unchanged; the Awaited handle is returned for monitoring.
func (m *Mgr) Execute(a *Accepted, hidden ...Value) (*Awaited, error) {
	o := m.obj
	o.seqPoint(SeqMgrExecute, a.Entry, a.id)
	o.mu.Lock()
	cr := a.call
	if !liveHandle(a.s, cr, a.id, slotAccepted) {
		o.mu.Unlock()
		return nil, fmt.Errorf("execute %s.%s: call not in accepted state: %w", o.name, a.Entry, ErrBadState)
	}
	e := cr.entry
	if len(a.Params) != e.ipParams {
		o.mu.Unlock()
		return nil, fmt.Errorf("execute %s.%s: manager supplies %d params, intercepts clause says %d: %w",
			o.name, a.Entry, len(a.Params), e.ipParams, ErrBadArity)
	}
	if len(hidden) != e.spec.HiddenParams {
		o.mu.Unlock()
		return nil, fmt.Errorf("execute %s.%s: %d hidden params, declared %d: %w",
			o.name, a.Entry, len(hidden), e.spec.HiddenParams, ErrBadArity)
	}
	regular := cr.params
	if e.ipParams > 0 {
		regular = make([]Value, 0, e.spec.Params)
		regular = append(regular, a.Params...)
		regular = append(regular, cr.params[e.ipParams:]...)
	}
	s := a.s
	s.state = slotStarted
	cr.hiddenParams = hidden
	e.active++
	o.record(e.spec.Name, s.index, cr.id, trace.Started)
	cr.inv = Invocation{obj: o, call: cr, params: regular, hidden: hidden}
	o.mu.Unlock()

	inv := &cr.inv
	o.seqPoint(SeqBodyBegin, e.spec.Name, cr.id)
	err := runSafely(o, cr, e.spec.Body, inv)
	if err == nil {
		if !inv.returned && e.spec.Results > 0 {
			err = fmt.Errorf("body %s.%s returned no results (declared %d): %w",
				o.name, e.spec.Name, e.spec.Results, ErrBadArity)
		}
		if inv.returned && len(inv.results) != e.spec.Results {
			err = fmt.Errorf("body %s.%s returned %d results, declared %d: %w",
				o.name, e.spec.Name, len(inv.results), e.spec.Results, ErrBadArity)
		}
		if err == nil && len(inv.hiddenRes) != e.spec.HiddenResults {
			err = fmt.Errorf("body %s.%s returned %d hidden results, declared %d: %w",
				o.name, e.spec.Name, len(inv.hiddenRes), e.spec.HiddenResults, ErrBadArity)
		}
	}

	o.seqPoint(SeqBodyEnd, e.spec.Name, cr.id)

	o.mu.Lock()
	cr.bodyResults = inv.results
	cr.hiddenResults = inv.hiddenRes
	cr.bodyErr = err
	o.record(e.spec.Name, s.index, cr.id, trace.Ready)
	o.record(e.spec.Name, s.index, cr.id, trace.Awaited)
	aw := &Awaited{
		m:      m,
		call:   cr,
		s:      s,
		id:     cr.id,
		Entry:  e.spec.Name,
		Slot:   s.index,
		Hidden: cr.hiddenResults,
		Err:    cr.bodyErr,
	}
	if cr.bodyErr == nil {
		aw.Results = cr.bodyResults[:e.ipResults:e.ipResults]
	} else if e.ipResults > 0 {
		aw.Results = make([]Value, e.ipResults)
	}
	e.active--
	switch {
	case cr.bodyErr != nil:
		o.deliverLocked(cr, nil, cr.bodyErr)
	case o.poisoned:
		// The poison sweep skipped this running call; fail it like runBody
		// would (the object is terminally dead).
		o.deliverLocked(cr, nil, o.poisonErr)
	case o.closed:
		o.deliverLocked(cr, nil, ErrClosed)
	default:
		o.deliverLocked(cr, cr.bodyResults, nil)
	}
	o.record(e.spec.Name, s.index, cr.id, trace.Finished)
	o.freeSlotLocked(s)
	o.attachWaitingLocked(e)
	o.mu.Unlock()
	return aw, nil
}

// Receive blocks until a message is available on the channel and returns
// it ("receive C(...)" outside a guard position). It aborts with ErrClosed
// when the object closes.
func (m *Mgr) Receive(ch *channel.Chan) (channel.Message, error) {
	var out channel.Message
	g := OnReceive(ch, func(msg channel.Message) { out = msg })
	if _, err := m.Select(g); err != nil {
		return nil, err
	}
	return out, nil
}

// Loop repeatedly runs Select over the guards until the object closes,
// implementing the paper's "loop G1 => S1 or ... or Gn => Sn end loop".
func (m *Mgr) Loop(guards ...Guard) error {
	for {
		if _, err := m.Select(guards...); err != nil {
			return err
		}
	}
}
