package core

// Journal is the durability hook: when an object carries one
// (ObjectOptions.Journal), every delivered call outcome is offered to it
// from inside the delivery path, under o.mu — which makes journal order
// identical to delivery order, the order a replay must re-execute
// mutations in. internal/wal provides the implementation; core only knows
// the interface, exactly as with Sequencer, so the disabled path stays a
// nil field check.
//
// RecordOutcome returns the log position local awaiters must wait on
// before treating the call as done, or 0 when there is nothing to wait
// for (failed calls, filtered entries, replay, or a journal configured to
// let a later acknowledgement record carry the sync — see
// wal.JournalOptions.Wait). WaitDurable blocks until that position is on
// stable storage.
type Journal interface {
	RecordOutcome(entry string, callID uint64, params, results []Value, callErr error) uint64
	WaitDurable(lsn uint64) error
}
