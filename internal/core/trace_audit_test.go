package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/trace"
)

// The conformance checker (internal/conformance) requires every lifecycle
// transition to emit a trace event: a call that reaches a terminal outcome
// with no terminal event is invisible to the model. These tests pin the
// emits on the rare paths the mainline suites never exercise.

// TestTraceFailedOnPoolClosedStart covers the start path racing with
// shutdown: the process pool is already closed when a call tries to start,
// so the call fails with ErrClosed — and must leave a Failed event, not
// vanish from the trace after Arrived/Attached.
func TestTraceFailedOnPoolClosedStart(t *testing.T) {
	rec := trace.NewRecorder(0)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Body: echoBody}),
		WithTrace(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)

	// Close the pool out from under the object, as Close does mid-shutdown.
	o.pool.Close()
	if _, err := o.Call("P", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("call with closed pool: err = %v, want ErrClosed", err)
	}

	byCall := rec.ByCall()
	if len(byCall) != 1 {
		t.Fatalf("traced %d calls, want 1", len(byCall))
	}
	for id, events := range byCall {
		last := events[len(events)-1]
		if last.Kind != trace.Failed {
			t.Errorf("call %d: terminal event = %v, want failed (events: %v)", id, last.Kind, events)
		}
		terminals := 0
		for _, e := range events {
			switch e.Kind {
			case trace.Finished, trace.Combined, trace.Failed:
				terminals++
			}
		}
		if terminals != 1 {
			t.Errorf("call %d: %d terminal events, want exactly 1 (events: %v)", id, terminals, events)
		}
	}
}

// TestTraceClosedMarker pins the shutdown marker: Close emits exactly one
// Closed event, before the sweep that fails calls the manager can no longer
// serve, so checkers can scope close-phase relaxations to events after it.
func TestTraceClosedMarker(t *testing.T) {
	rec := trace.NewRecorder(0)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Body: echoBody}),
		WithTrace(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Call("P", 1); err != nil {
		t.Fatal(err)
	}
	mustClose(t, o)
	mustClose(t, o) // idempotent: must not emit a second marker

	closed := 0
	for _, e := range rec.Events() {
		if e.Kind == trace.Closed {
			closed++
		}
	}
	if closed != 1 {
		t.Fatalf("Closed events = %d, want exactly 1", closed)
	}
}

// TestTraceFailedOnManagerlessWithdraw covers the withdraw path: a
// cancelled call that never attached must still record a Failed terminal.
func TestTraceFailedOnManagerlessWithdraw(t *testing.T) {
	rec := trace.NewRecorder(0)
	started := make(chan struct{})
	release := make(chan struct{})
	o, err := New("X",
		WithEntry(EntrySpec{Name: "Slow", Params: 0, Results: 0, Body: func(inv *Invocation) error {
			close(started)
			<-release
			return nil
		}}),
		WithTrace(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	// LIFO: release the body first, then close the object.
	defer func() { mustClose(t, o) }()
	defer close(release)

	// Occupy the single array element, then cancel a queued second call.
	go func() { _, _ = o.Call("Slow") }()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := o.CallCtx(ctx, "Slow")
		done <- err
	}()
	// Wait (counter-based) until the second call is pending in the queue.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if st, ok := o.EntryStats("Slow"); ok && st.Pending >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second call never became pending")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call err = %v", err)
	}
	if rec.Count("Slow", trace.Failed) != 1 {
		t.Fatalf("Failed events = %d, want 1 (events: %v)", rec.Count("Slow", trace.Failed), rec.Events())
	}
}
