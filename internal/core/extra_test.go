package core

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/channel"
	"repro/internal/sched"
)

func TestWithInitRunsBeforeManagerAndReturn(t *testing.T) {
	initialized := false
	sawInit := make(chan bool, 1)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithInit(func() { initialized = true }),
		WithManager(func(m *Mgr) {
			sawInit <- initialized // manager starts after init (§2.3)
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	if !initialized {
		t.Fatal("New returned before initialization code ran")
	}
	if !<-sawInit {
		t.Fatal("manager started before initialization code")
	}
}

func TestManagerAccessors(t *testing.T) {
	probe := make(chan any, 3)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Array: 5, Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			probe <- m.ArrayLen("P")
			probe <- m.ArrayLen("Nope")
			probe <- m.Object().Name()
			<-m.Closed()
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := <-probe; got != 5 {
		t.Errorf("ArrayLen(P) = %v, want 5", got)
	}
	if got := <-probe; got != 0 {
		t.Errorf("ArrayLen(Nope) = %v, want 0", got)
	}
	if got := <-probe; got != "X" {
		t.Errorf("Object().Name() = %v", got)
	}
	mustClose(t, o)
}

func TestWhenAwaitFiltersByResults(t *testing.T) {
	// The manager awaits only executions whose (intercepted) result is
	// even; odd ones are awaited by a second, lower-priority guard.
	// The unfiltered guard may legitimately receive every result, so its
	// channel must hold all of them or the manager blocks mid-action.
	evens := make(chan int, 16)
	odds := make(chan int, 16)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Array: 8, Body: echoBody}),
		WithManager(func(m *Mgr) {
			_ = m.Loop(
				OnAccept("P", func(a *Accepted) { _ = m.Start(a) }),
				OnAwait("P", func(aw *Awaited) {
					evens <- aw.Results[0].(int)
					_ = m.Finish(aw, aw.Results...)
				}).WhenAwait(func(aw *Awaited) bool {
					return aw.Err == nil && aw.Results[0].(int)%2 == 0
				}),
				OnAwait("P", func(aw *Awaited) {
					odds <- aw.Results[0].(int)
					_ = m.Finish(aw, aw.Results...)
				}),
			)
		}, InterceptPR("P", 0, 1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if res, err := o.Call("P", i); err != nil || res[0] != i {
				t.Errorf("Call(%d) = %v, %v", i, res, err)
			}
		}(i)
	}
	wg.Wait()
	close(evens)
	close(odds)
	for v := range evens {
		if v%2 != 0 {
			t.Errorf("even-guard awaited %d", v)
		}
	}
	// The odd guard may legitimately see even results too (both guards are
	// eligible for evens; pri 0 ties break by rotation), so only the even
	// guard's purity is asserted.
}

func TestPriAwaitOrdersCompletionHandling(t *testing.T) {
	// Three bodies complete while the manager is blocked; when it wakes it
	// must await them smallest-result-first.
	release := make(chan struct{})
	order := make(chan int, 3)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Array: 4, Body: echoBody}),
		WithManager(func(m *Mgr) {
			for i := 0; i < 3; i++ {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if err := m.Start(a); err != nil {
					return
				}
			}
			<-release // all three bodies finish meanwhile
			for i := 0; i < 3; i++ {
				_, err := m.Select(
					OnAwait("P", func(aw *Awaited) {
						order <- aw.Results[0].(int)
						_ = m.Finish(aw, aw.Results...)
					}).PriAwait(func(aw *Awaited) int { return aw.Results[0].(int) }),
				)
				if err != nil {
					return
				}
			}
			<-m.Closed()
		}, InterceptPR("P", 0, 1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, v := range []int{30, 10, 20} {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			if _, err := o.Call("P", v); err != nil {
				t.Errorf("Call(%d): %v", v, err)
			}
		}(v)
	}
	time.Sleep(50 * time.Millisecond) // bodies run and become ready
	close(release)
	wg.Wait()
	mustClose(t, o)
	close(order)
	want := []int{10, 20, 30}
	i := 0
	for v := range order {
		if v != want[i] {
			t.Fatalf("await order: got %d at %d, want %v", v, i, want)
		}
		i++
	}
	if i != 3 {
		t.Fatalf("awaited %d, want 3", i)
	}
}

func TestMixedGuardKindsInOneSelect(t *testing.T) {
	ch := channel.New("cmds")
	var log []string
	var mu sync.Mutex
	record := func(s string) {
		mu.Lock()
		log = append(log, s)
		mu.Unlock()
	}
	flag := false
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			_ = m.Loop(
				OnAccept("P", func(a *Accepted) {
					record("accept")
					_, _ = m.Execute(a)
					flag = true
				}),
				OnReceive(ch, func(msg channel.Message) { record("receive") }),
				OnCond(func() bool { return flag }, func() {
					record("cond")
					flag = false
				}),
			)
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Call("P"); err != nil {
		t.Fatal(err)
	}
	if err := ch.Send("hello"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := len(log)
		mu.Unlock()
		if n >= 3 {
			break
		}
		select {
		case <-deadline:
			mu.Lock()
			t.Fatalf("log = %v, want accept+cond+receive", log)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	mustClose(t, o)
	mu.Lock()
	defer mu.Unlock()
	seen := map[string]bool{}
	for _, s := range log {
		seen[s] = true
	}
	if !seen["accept"] || !seen["receive"] || !seen["cond"] {
		t.Fatalf("log = %v", log)
	}
}

func TestStaleAcceptedHandleRejected(t *testing.T) {
	errs := make(chan error, 2)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			a, err := m.Accept("P")
			if err != nil {
				return
			}
			if _, err := m.Execute(a); err != nil {
				return
			}
			// The call is finished; the handle is stale in every way.
			errs <- m.Start(a)
			errs <- m.FinishAccepted(a)
			<-m.Closed()
		}, InterceptPR("P", 0, 0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Call("P"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, ErrBadState) {
			t.Errorf("stale handle op %d: err = %v, want ErrBadState", i, err)
		}
	}
	mustClose(t, o)
}

func TestWaitQueueIsFIFO(t *testing.T) {
	// With Array=1 and a gated manager, waiting calls attach in arrival
	// order (the waitq is FIFO).
	gate := make(chan struct{})
	order := make(chan int, 8)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Array: 1, Body: echoBody}),
		WithManager(func(m *Mgr) {
			<-gate
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				order <- a.Params[0].(int)
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, InterceptPR("P", 1, 0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := o.Call("P", i); err != nil {
				t.Errorf("Call: %v", err)
			}
		}(i)
		time.Sleep(5 * time.Millisecond) // define the arrival order
	}
	close(gate)
	wg.Wait()
	mustClose(t, o)
	close(order)
	prev := -1
	for v := range order {
		if v <= prev {
			t.Fatalf("attachment order violated FIFO: %d after %d", v, prev)
		}
		prev = v
	}
}

func TestOneToOnePoolCountsAllArrays(t *testing.T) {
	o, err := New("X",
		WithEntry(EntrySpec{Name: "A", Array: 3, Body: func(inv *Invocation) error { return nil }}),
		WithEntry(EntrySpec{Name: "B", Array: 5, Body: func(inv *Invocation) error { return nil }}),
		WithPool(sched.ModeOneToOne, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	if st := o.PoolStats(); st.Workers != 8 {
		t.Fatalf("one-to-one workers = %d, want 3+5", st.Workers)
	}
}

func TestCondGuardWithConstantPri(t *testing.T) {
	picked := make(chan string, 1)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			_, err := m.Select(
				OnCond(func() bool { return true }, func() { picked <- "low" }).Pri(5),
				OnCond(func() bool { return true }, func() { picked <- "high" }).Pri(1),
			)
			if err != nil {
				return
			}
			<-m.Closed()
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := <-picked; got != "high" {
		t.Fatalf("selected %q, want the pri-1 guard", got)
	}
	mustClose(t, o)
}

// Property: a manager-maintained token-bucket object never over-admits
// under random concurrent load, and every call completes.
func TestQuickTokenBucketInvariant(t *testing.T) {
	f := func(tokensRaw, callersRaw uint8) bool {
		tokens := int(tokensRaw%4) + 1
		callers := int(callersRaw%12) + 1
		var cur, peak int
		var mu sync.Mutex
		o, err := New("TB",
			WithEntry(EntrySpec{Name: "Use", Array: 16, Body: func(inv *Invocation) error {
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				mu.Lock()
				cur--
				mu.Unlock()
				return nil
			}}),
			WithManager(func(m *Mgr) {
				inUse := 0
				_ = m.Loop(
					OnAccept("Use", func(a *Accepted) {
						if err := m.Start(a); err == nil {
							inUse++
						}
					}).When(func(*Accepted) bool { return inUse < tokens }),
					OnAwait("Use", func(aw *Awaited) {
						if err := m.Finish(aw); err == nil {
							inUse--
						}
					}),
				)
			}, Intercept("Use")),
		)
		if err != nil {
			return false
		}
		var wg sync.WaitGroup
		ok := true
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					if _, err := o.Call("Use"); err != nil {
						ok = false
						return
					}
				}
			}()
		}
		wg.Wait()
		_ = o.Close()
		mu.Lock()
		defer mu.Unlock()
		return ok && peak <= tokens
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestMgrReceiveBlocking(t *testing.T) {
	ch := channel.New("in")
	got := make(chan channel.Message, 2)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			for {
				msg, err := m.Receive(ch)
				if err != nil {
					return // ErrClosed at object close
				}
				got <- msg
			}
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Send("a", 1); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if msg[0] != "a" || msg[1] != 1 {
			t.Fatalf("Receive = %v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("manager Receive did not deliver")
	}
	mustClose(t, o) // manager blocked in Receive must exit
}

// TestNonInterceptedEntryBypassesManager covers §2.3: "Calls to a procedure
// that is not listed in the intercepts clause are not directed to the
// manager but the procedure execution is started implicitly" — the paper's
// example being a status query that must not queue behind scheduling.
func TestNonInterceptedEntryBypassesManager(t *testing.T) {
	released := make(chan struct{})
	o, err := New("X",
		WithEntry(EntrySpec{Name: "Work", Body: func(inv *Invocation) error { return nil }}),
		WithEntry(EntrySpec{Name: "Status", Results: 1, Body: func(inv *Invocation) error {
			inv.Return("ok")
			return nil
		}}),
		WithManager(func(m *Mgr) {
			<-released // the manager is unresponsive for a while
			for {
				a, err := m.Accept("Work")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, Intercept("Work")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)

	workDone := make(chan error, 1)
	go func() { _, err := o.Call("Work"); workDone <- err }()

	// Status answers immediately even though the manager accepts nothing.
	statusDone := make(chan error, 1)
	go func() {
		res, err := o.Call("Status")
		if err == nil && res[0] != "ok" {
			err = errors.New("wrong status")
		}
		statusDone <- err
	}()
	select {
	case err := <-statusDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("non-intercepted Status queued behind the manager")
	}
	select {
	case <-workDone:
		t.Fatal("intercepted Work ran without the manager")
	default:
	}
	close(released)
	if err := <-workDone; err != nil {
		t.Fatal(err)
	}
}

func TestInvocationAccessors(t *testing.T) {
	probe := make(chan string, 4)
	o, err := New("Obj",
		WithEntry(EntrySpec{Name: "P", Params: 2, Results: 1, Array: 3, HiddenParams: 1,
			Body: func(inv *Invocation) error {
				probe <- inv.Entry()
				probe <- inv.Object().Name()
				if inv.Slot() < 0 || inv.Slot() >= 3 {
					t.Errorf("Slot = %d", inv.Slot())
				}
				if inv.CallID() == 0 {
					t.Error("CallID = 0")
				}
				if len(inv.Params()) != 2 || len(inv.HiddenParams()) != 1 {
					t.Errorf("params %v hidden %v", inv.Params(), inv.HiddenParams())
				}
				inv.Return(inv.Param(0).(int) + inv.Param(1).(int) + inv.Hidden(0).(int))
				return nil
			}}),
		WithManager(func(m *Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if err := m.Start(a, 100); err != nil {
					return
				}
				aw, err := m.AwaitCall(a)
				if err != nil {
					return
				}
				if aw.CallID() != a.CallID() {
					t.Error("Accepted/Awaited CallID mismatch")
				}
				if err := m.Finish(aw); err != nil {
					return
				}
			}
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	res, err := o.Call("P", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 103 {
		t.Fatalf("result = %v", res[0])
	}
	if got := <-probe; got != "P" {
		t.Errorf("Entry = %q", got)
	}
	if got := <-probe; got != "Obj" {
		t.Errorf("Object = %q", got)
	}
}

func TestManagedObjectWithSharedPool(t *testing.T) {
	// A pooled-M object with a manager: bodies queue for the M workers but
	// the manager never blocks on start.
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Array: 8, Body: echoBody}),
		WithManager(func(m *Mgr) {
			_ = m.Loop(
				OnAccept("P", func(a *Accepted) { _ = m.Start(a) }),
				OnAwait("P", func(aw *Awaited) { _ = m.Finish(aw) }),
			)
		}, Intercept("P")),
		WithPool(sched.ModePooled, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if res, err := o.Call("P", i); err != nil || res[0] != i {
				t.Errorf("Call(%d) = %v, %v", i, res, err)
			}
		}(i)
	}
	wg.Wait()
	if st := o.PoolStats(); st.ProcessesCreated != 2 {
		t.Fatalf("pooled object created %d processes, want 2", st.ProcessesCreated)
	}
	mustClose(t, o)
}

func TestCallLocalUnknownEntry(t *testing.T) {
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Results: 1, Body: func(inv *Invocation) error {
			if _, err := inv.CallLocal("Ghost"); !errors.Is(err, ErrUnknownEntry) {
				return errors.New("CallLocal(Ghost) did not fail")
			}
			inv.Return("ok")
			return nil
		}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	if res, err := o.Call("P"); err != nil || res[0] != "ok" {
		t.Fatalf("Call = %v, %v", res, err)
	}
}

func TestReceiveGuardOnClosedChannel(t *testing.T) {
	// A closed, drained channel never fires its guard; the manager simply
	// blocks on the other guards and exits at object close.
	ch := channel.New("dead")
	ch.Close()
	served := make(chan struct{}, 1)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			_ = m.Loop(
				OnReceive(ch, func(channel.Message) { t.Error("received from closed channel") }),
				OnAccept("P", func(a *Accepted) {
					if _, err := m.Execute(a); err == nil {
						served <- struct{}{}
					}
				}),
			)
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Call("P"); err != nil {
		t.Fatal(err)
	}
	<-served
	mustClose(t, o)
}

func TestEntryStats(t *testing.T) {
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Body: func(inv *Invocation) error {
			if inv.Param(0).(int) < 0 {
				return errors.New("negative")
			}
			inv.Return(inv.Param(0))
			return nil
		}}),
		WithEntry(EntrySpec{Name: "C", Params: 1, Results: 1, Body: echoBody}),
		WithManager(func(m *Mgr) {
			_ = m.Loop(
				OnAccept("C", func(a *Accepted) {
					_ = m.FinishAccepted(a, a.Params[0]) // combining
				}),
			)
		}, InterceptPR("C", 1, 1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Call("P", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Call("P", -1); err == nil {
		t.Fatal("negative call succeeded")
	}
	if _, err := o.Call("C", 9); err != nil {
		t.Fatal(err)
	}
	st, ok := o.EntryStats("P")
	if !ok {
		t.Fatal("no stats for P")
	}
	if st.Calls != 2 || st.Completed != 1 || st.Failed != 1 || st.Combined != 0 {
		t.Fatalf("P stats = %+v", st)
	}
	cst, _ := o.EntryStats("C")
	if cst.Calls != 1 || cst.Combined != 1 || cst.Completed != 1 {
		t.Fatalf("C stats = %+v", cst)
	}
	if _, ok := o.EntryStats("Ghost"); ok {
		t.Fatal("stats for unknown entry")
	}
	mustClose(t, o)
	if st, _ := o.EntryStats("P"); st.Pending != 0 || st.Active != 0 {
		t.Fatalf("post-close stats = %+v", st)
	}
}
