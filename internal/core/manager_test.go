package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// managedEcho builds an object whose manager runs each accepted call with
// the sequence accept → start → await → finish, exercising the full
// four-primitive protocol with parameter and result interception.
func managedEcho(t *testing.T, mgrBody func(m *Mgr)) *Object {
	t.Helper()
	o, err := New("Echo",
		WithEntry(EntrySpec{Name: "P", Params: 2, Results: 2, Array: 4, Body: func(inv *Invocation) error {
			a, b := inv.Param(0).(int), inv.Param(1).(int)
			inv.Return(a+b, a*b)
			return nil
		}}),
		WithManager(mgrBody, InterceptPR("P", 1, 1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestAcceptStartAwaitFinish(t *testing.T) {
	var acceptedParam, awaitedResult Value
	o := managedEcho(t, func(m *Mgr) {
		for {
			a, err := m.Accept("P")
			if err != nil {
				return
			}
			acceptedParam = a.Params[0] // intercepted first param
			if err := m.Start(a); err != nil {
				t.Errorf("Start: %v", err)
				return
			}
			aw, err := m.AwaitCall(a)
			if err != nil {
				return
			}
			awaitedResult = aw.Results[0] // intercepted first result
			if err := m.Finish(aw, aw.Results...); err != nil {
				t.Errorf("Finish: %v", err)
				return
			}
		}
	})
	defer mustClose(t, o)

	res, err := o.Call("P", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 7 || res[1] != 12 {
		t.Fatalf("Call = %v, want [7 12]", res)
	}
	if acceptedParam != 3 {
		t.Errorf("manager saw intercepted param %v, want 3", acceptedParam)
	}
	if awaitedResult != 7 {
		t.Errorf("manager saw intercepted result %v, want 7", awaitedResult)
	}
}

func TestManagerModifiesInterceptedParamsAndResults(t *testing.T) {
	// §2.6: the manager receives the intercepted prefix, supplies it at
	// start (possibly altered), and can monitor/alter the intercepted
	// results at finish.
	o := managedEcho(t, func(m *Mgr) {
		for {
			a, err := m.Accept("P")
			if err != nil {
				return
			}
			a.Params[0] = a.Params[0].(int) * 10 // rewrite first param
			if err := m.Start(a); err != nil {
				return
			}
			aw, err := m.AwaitCall(a)
			if err != nil {
				return
			}
			if err := m.Finish(aw, aw.Results[0].(int)+1000); err != nil { // rewrite first result
				return
			}
		}
	})
	defer mustClose(t, o)
	res, err := o.Call("P", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// body sees (30, 4): sum=34, prod=120; manager rewrites sum to 1034.
	if res[0] != 1034 || res[1] != 120 {
		t.Fatalf("Call = %v, want [1034 120]", res)
	}
}

func TestCallDelayedUntilAccepted(t *testing.T) {
	release := make(chan struct{})
	bodyRan := make(chan struct{}, 1)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error {
			bodyRan <- struct{}{}
			return nil
		}}),
		WithManager(func(m *Mgr) {
			<-release // refuse to accept for a while
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)

	done := make(chan error, 1)
	go func() { _, err := o.Call("P"); done <- err }()
	select {
	case <-bodyRan:
		t.Fatal("body ran before the manager accepted the call")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	<-bodyRan
}

func TestExecuteRunsToCompletion(t *testing.T) {
	// execute = start; await; finish — results pass through unchanged.
	o := managedEcho(t, func(m *Mgr) {
		for {
			a, err := m.Accept("P")
			if err != nil {
				return
			}
			if _, err := m.Execute(a); err != nil {
				return
			}
		}
	})
	defer mustClose(t, o)
	res, err := o.Call("P", 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 11 || res[1] != 30 {
		t.Fatalf("Call = %v, want [11 30]", res)
	}
}

func TestHiddenParamsAndResults(t *testing.T) {
	// §2.8: manager supplies a hidden slot index at start; body returns it
	// as a hidden result; the caller never sees either.
	var gotHidden Value
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, HiddenParams: 1, HiddenResults: 1,
			Body: func(inv *Invocation) error {
				place := inv.Hidden(0).(int)
				inv.Return(fmt.Sprintf("stored %v at %d", inv.Param(0), place))
				inv.ReturnHidden(place)
				return nil
			}}),
		WithManager(func(m *Mgr) {
			next := 7
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if err := m.Start(a, next); err != nil {
					return
				}
				aw, err := m.AwaitCall(a)
				if err != nil {
					return
				}
				gotHidden = aw.Hidden[0]
				if err := m.Finish(aw); err != nil {
					return
				}
			}
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	res, err := o.Call("P", "msg")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "stored msg at 7" {
		t.Fatalf("result = %v", res[0])
	}
	if len(res) != 1 {
		t.Fatalf("hidden result leaked to caller: %v", res)
	}
	if gotHidden != 7 {
		t.Fatalf("manager's hidden result = %v, want 7", gotHidden)
	}
}

func TestCombiningFinishAccepted(t *testing.T) {
	// §2.7: manager answers a call without starting any body.
	rec := trace.NewRecorder(0)
	bodyRuns := 0
	o, err := New("Dict",
		WithEntry(EntrySpec{Name: "Search", Params: 1, Results: 1, Array: 4,
			Body: func(inv *Invocation) error {
				bodyRuns++
				inv.Return("meaning of " + inv.Param(0).(string))
				return nil
			}}),
		WithManager(func(m *Mgr) {
			for {
				a, err := m.Accept("Search")
				if err != nil {
					return
				}
				if err := m.FinishAccepted(a, "cached: "+a.Params[0].(string)); err != nil {
					return
				}
			}
		}, InterceptPR("Search", 1, 1)),
		WithTrace(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Call("Search", "word")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "cached: word" {
		t.Fatalf("combined result = %v", res)
	}
	mustClose(t, o)
	if bodyRuns != 0 {
		t.Fatalf("body ran %d times; combining must not start a body", bodyRuns)
	}
	if rec.Count("Search", trace.Combined) != 1 {
		t.Fatal("no Combined trace event")
	}
	if rec.Count("Search", trace.Started) != 0 {
		t.Fatal("Started event recorded for a combined call")
	}
}

func TestCombiningRequiresFullParamInterception(t *testing.T) {
	errCh := make(chan error, 1)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 2, Results: 0, Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			a, err := m.Accept("P")
			if err != nil {
				return
			}
			errCh <- m.FinishAccepted(a)
			// Recover: run the call properly so the caller returns.
			if err := m.Start(a); err != nil {
				return
			}
			aw, err := m.AwaitCall(a)
			if err != nil {
				return
			}
			_ = m.Finish(aw)
		}, InterceptPR("P", 1, 0)), // only 1 of 2 params intercepted
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	if _, err := o.Call("P", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrBadState) {
		t.Fatalf("FinishAccepted with partial interception: err = %v, want ErrBadState", err)
	}
}

func TestProtocolViolations(t *testing.T) {
	type result struct {
		startTwice     error
		finishNoAwait  error
		combineStarted error
		badHidden      error
	}
	resCh := make(chan result, 1)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 0, Results: 0, HiddenParams: 0, Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			var r result
			a, err := m.Accept("P")
			if err != nil {
				return
			}
			r.badHidden = m.Start(a, "unexpected hidden param")
			if err := m.Start(a); err != nil {
				return
			}
			r.startTwice = m.Start(a)
			r.combineStarted = m.FinishAccepted(a)
			// The slot is started or ready, but not awaited: finishing a
			// hand-built handle must be rejected.
			r.finishNoAwait = m.Finish(&Awaited{m: m, call: a.call, Entry: "P", Slot: a.Slot})
			aw, err := m.AwaitCall(a)
			if err != nil {
				return
			}
			_ = m.Finish(aw)
			resCh <- r
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	if _, err := o.Call("P"); err != nil {
		t.Fatal(err)
	}
	r := <-resCh
	if !errors.Is(r.badHidden, ErrBadArity) {
		t.Errorf("start with undeclared hidden param: %v, want ErrBadArity", r.badHidden)
	}
	if !errors.Is(r.startTwice, ErrBadState) {
		t.Errorf("double start: %v, want ErrBadState", r.startTwice)
	}
	if !errors.Is(r.combineStarted, ErrBadState) {
		t.Errorf("combine after start: %v, want ErrBadState", r.combineStarted)
	}
	if r.finishNoAwait == nil {
		t.Error("finish before await succeeded")
	}
}

func TestPendingCount(t *testing.T) {
	// #P counts attached-but-unaccepted plus waiting-to-attach (§2.5.1).
	probe := make(chan int)
	proceed := make(chan struct{})
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Array: 2, Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			<-proceed
			probe <- m.Pending("P")
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ { // 2 attach, 3 wait
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := o.Call("P"); err != nil {
				t.Errorf("Call: %v", err)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(proceed)
	if got := <-probe; got != 5 {
		t.Errorf("Pending = %d, want 5", got)
	}
	wg.Wait()
	mustClose(t, o)
}

func TestActiveCount(t *testing.T) {
	inBody := make(chan struct{}, 3)
	release := make(chan struct{})
	probe := make(chan int)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Array: 3, Body: func(inv *Invocation) error {
			inBody <- struct{}{}
			<-release
			return nil
		}}),
		WithManager(func(m *Mgr) {
			for i := 0; i < 3; i++ {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if err := m.Start(a); err != nil {
					return
				}
			}
			probe <- m.Active("P")
			for i := 0; i < 3; i++ {
				aw, err := m.Await("P")
				if err != nil {
					return
				}
				if err := m.Finish(aw); err != nil {
					return
				}
			}
			probe <- m.Active("P")
			m.Loop() // returns error immediately (no guards) — exit
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := o.Call("P"); err != nil {
				t.Errorf("Call: %v", err)
			}
		}()
	}
	for i := 0; i < 3; i++ {
		<-inBody
	}
	if got := <-probe; got != 3 {
		t.Errorf("Active = %d with 3 running bodies", got)
	}
	close(release)
	if got := <-probe; got != 0 {
		t.Errorf("Active = %d after all finished, want 0", got)
	}
	wg.Wait()
	mustClose(t, o)
}

func TestAcceptSlotWaitsForSpecificElement(t *testing.T) {
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Array: 3, Body: echoBody}),
		WithManager(func(m *Mgr) {
			for {
				// Service elements strictly in order 0, 1, 2, ...
				for i := 0; i < 3; i++ {
					a, err := m.AcceptSlot("P", i)
					if err != nil {
						return
					}
					if a.Slot != i {
						t.Errorf("AcceptSlot(%d) returned slot %d", i, a.Slot)
					}
					if _, err := m.Execute(a); err != nil {
						return
					}
				}
			}
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	var wg sync.WaitGroup
	for i := 0; i < 9; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if res, err := o.Call("P", i); err != nil || res[0] != i {
				t.Errorf("Call(%d) = %v, %v", i, res, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestAwaitedErrPropagatesBodyFailure(t *testing.T) {
	sentinel := errors.New("body failed")
	sawErr := make(chan error, 1)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Results: 1, Body: func(inv *Invocation) error {
			return sentinel
		}}),
		WithManager(func(m *Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if err := m.Start(a); err != nil {
					return
				}
				aw, err := m.AwaitCall(a)
				if err != nil {
					return
				}
				sawErr <- aw.Err
				if err := m.Finish(aw, aw.Results...); err != nil {
					return
				}
			}
		}, InterceptPR("P", 0, 1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	if _, err := o.Call("P"); !errors.Is(err, sentinel) {
		t.Fatalf("caller err = %v, want body error", err)
	}
	if err := <-sawErr; !errors.Is(err, sentinel) {
		t.Fatalf("manager Awaited.Err = %v, want body error", err)
	}
	// Slot recovered: a second call also round-trips.
	if _, err := o.Call("P"); !errors.Is(err, sentinel) {
		t.Fatalf("second call err = %v", err)
	}
}

func TestManagerPanicIsRecorded(t *testing.T) {
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			panic("manager bug")
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	mustClose(t, o)
	if err := o.ManagerErr(); err == nil || !strings.Contains(err.Error(), "manager bug") {
		t.Fatalf("ManagerErr = %v", err)
	}
}

func TestManagerExitsOnClose(t *testing.T) {
	exited := make(chan struct{})
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			defer close(exited)
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	mustClose(t, o)
	select {
	case <-exited:
	case <-time.After(2 * time.Second):
		t.Fatal("manager did not exit on Close")
	}
}

func TestCallLocalThroughManager(t *testing.T) {
	// §2.3: entries P and Q share local procedure R; the manager intercepts
	// R so it remains in sole charge of the critical section even after
	// starting P and Q.
	var mu sync.Mutex
	inR, peakR := 0, 0
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 0, Results: 1, Array: 4, Body: func(inv *Invocation) error {
			res, err := inv.CallLocal("R")
			if err != nil {
				return err
			}
			inv.Return(res[0])
			return nil
		}}),
		WithEntry(EntrySpec{Name: "R", Params: 0, Results: 1, Array: 4, Local: true, Body: func(inv *Invocation) error {
			mu.Lock()
			inR++
			if inR > peakR {
				peakR = inR
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inR--
			mu.Unlock()
			inv.Return("r")
			return nil
		}}),
		WithManager(func(m *Mgr) {
			err := m.Loop(
				OnAccept("P", func(a *Accepted) {
					if err := m.Start(a); err != nil {
						t.Errorf("start P: %v", err)
					}
				}),
				OnAwait("P", func(aw *Awaited) {
					if err := m.Finish(aw); err != nil {
						t.Errorf("finish P: %v", err)
					}
				}),
				// R is executed in mutual exclusion: the manager is its only
				// scheduler, one at a time.
				OnAccept("R", func(a *Accepted) {
					if _, err := m.Execute(a); err != nil {
						t.Errorf("execute R: %v", err)
					}
				}),
			)
			if !errors.Is(err, ErrClosed) {
				t.Errorf("Loop: %v", err)
			}
		}, Intercept("P"), Intercept("R")),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if res, err := o.Call("P"); err != nil || res[0] != "r" {
				t.Errorf("Call(P) = %v, %v", res, err)
			}
		}()
	}
	wg.Wait()
	mustClose(t, o)
	mu.Lock()
	defer mu.Unlock()
	if peakR != 1 {
		t.Fatalf("peak concurrent R executions = %d, want 1 (manager-enforced exclusion)", peakR)
	}
}

func TestTraceLifecycleManaged(t *testing.T) {
	rec := trace.NewRecorder(0)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Body: echoBody}),
		WithManager(func(m *Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, Intercept("P")),
		WithTrace(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Call("P", 1); err != nil {
		t.Fatal(err)
	}
	mustClose(t, o)
	var kinds []trace.Kind
	for _, e := range rec.Events() {
		kinds = append(kinds, e.Kind)
	}
	want := []trace.Kind{trace.Arrived, trace.Attached, trace.Accepted,
		trace.Started, trace.Ready, trace.Awaited, trace.Finished, trace.Closed}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("managed lifecycle = %v, want %v", kinds, want)
	}
}
