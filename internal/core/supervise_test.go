package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// crashableEcho builds an object whose manager executes calls one at a time
// and panics when the parameter equals "boom". onlyOnce makes each distinct
// poison pill lethal a single time, so a Restart policy can make progress
// after requeueing it.
func crashableEcho(t *testing.T, opts ObjectOptions, onlyOnce bool) *Object {
	t.Helper()
	var seen sync.Map
	o, err := New("Crashable",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Array: 4, Body: func(inv *Invocation) error {
			inv.Return(inv.Param(0))
			return nil
		}}),
		WithManager(func(m *Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if p, ok := a.Params[0].(string); ok && strings.HasPrefix(p, "boom") {
					if !onlyOnce {
						panic("manager hit a poison pill")
					}
					if _, dup := seen.LoadOrStore(p, true); !dup {
						panic("manager hit a poison pill")
					}
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, InterceptPR("P", 1, 0)),
		WithObjectOptions(opts),
	)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// waitLeaks waits for stray goroutines to settle back to the baseline.
func waitLeaks(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d, baseline %d — leak", runtime.NumGoroutine(), before)
}

func TestFailFastPoisonsObject(t *testing.T) {
	before := runtime.NumGoroutine()
	sup := &metrics.Supervision{}
	rec := trace.NewRecorder(0)
	// A manager that accepts a few calls (parking them accepted, unstarted)
	// and then panics, leaving in-flight callers at every pre-start stage.
	o, err := New("FailFast",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Array: 2, Body: func(inv *Invocation) error {
			inv.Return(inv.Param(0))
			return nil
		}}),
		WithManager(func(m *Mgr) {
			// Accept one call and never start it; panic on the second.
			if _, err := m.Accept("P"); err != nil {
				return
			}
			if _, err := m.Accept("P"); err != nil {
				return
			}
			panic("manager bug")
		}, Intercept("P")),
		WithObjectOptions(ObjectOptions{Metrics: sup}),
		WithTrace(rec),
	)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 6
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			_, err := o.Call("P", i)
			errs <- err
		}(i)
	}

	// Every in-flight caller — accepted, attached or still waiting — must
	// resolve with ErrObjectPoisoned promptly once the manager dies.
	deadline := time.After(2 * time.Second)
	for i := 0; i < callers; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrObjectPoisoned) {
				t.Fatalf("in-flight call err = %v, want ErrObjectPoisoned", err)
			}
		case <-deadline:
			t.Fatalf("call %d still hanging after manager death", i)
		}
	}

	// Subsequent calls fail fast too — well within the 100ms budget.
	start := time.Now()
	if _, err := o.Call("P", 99); !errors.Is(err, ErrObjectPoisoned) {
		t.Fatalf("post-poison call err = %v, want ErrObjectPoisoned", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("post-poison call took %v, want < 100ms", d)
	}
	if !o.Poisoned() {
		t.Fatal("Poisoned() = false after manager panic")
	}
	if got := sup.Poisons.Value(); got != 1 {
		t.Fatalf("Poisons = %d, want 1", got)
	}
	if err := o.ManagerErr(); err == nil || !strings.Contains(err.Error(), "manager bug") {
		t.Fatalf("ManagerErr = %v", err)
	}
	if n := rec.Count("", trace.Poisoned); n != 1 {
		t.Fatalf("Poisoned trace events = %d, want 1", n)
	}
	mustClose(t, o)
	waitLeaks(t, before)
}

func TestRestartPolicyRecovers(t *testing.T) {
	sup := &metrics.Supervision{}
	rec := trace.NewRecorder(0)
	o, err := New("Recovering",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Array: 4, Body: func(inv *Invocation) error {
			inv.Return(inv.Param(0))
			return nil
		}}),
		WithManager(func(m *Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if a.Params[0] == "boom" {
					panic("pill")
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, InterceptPR("P", 1, 0)),
		WithObjectOptions(ObjectOptions{
			ManagerPolicy: Restart,
			Restart:       RestartPolicy{Max: 3, Backoff: time.Millisecond},
			Metrics:       sup,
		}),
		WithTrace(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)

	if res, err := o.Call("P", "ok"); err != nil || res[0] != "ok" {
		t.Fatalf("pre-crash call = %v, %v", res, err)
	}
	// The pill kills the manager once: it is accepted, the manager panics,
	// and the restarted incarnation re-accepts the requeued call. The pill
	// only panics when freshly accepted from "boom" params, so on requeue
	// the new incarnation panics again... — use a ctx-bounded caller and a
	// one-shot pill instead.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_, err := o.CallCtx(ctx, "P", "boom")
		done <- err
	}()
	// The manager keeps panicking on the requeued pill until the budget
	// would exhaust — but each restart is counted; wait for at least one.
	deadline := time.Now().Add(2 * time.Second)
	for sup.Restarts.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sup.Restarts.Value() == 0 {
		t.Fatal("no restart recorded")
	}
	<-done

	if o.Poisoned() {
		// Budget exhausted because the pill re-panics every incarnation —
		// acceptable for this half of the test; recovery with a one-shot
		// pill is covered by TestRestartRecoversWithOneShotPill.
		return
	}
	// Manager alive again: the object serves new calls.
	if res, err := o.Call("P", "after"); err != nil || res[0] != "after" {
		t.Fatalf("post-restart call = %v, %v", res, err)
	}
}

func TestRestartRecoversWithOneShotPill(t *testing.T) {
	sup := &metrics.Supervision{}
	o := crashableEcho(t, ObjectOptions{
		ManagerPolicy: Restart,
		Restart:       RestartPolicy{Max: 5, Backoff: time.Millisecond},
		Metrics:       sup,
	}, true)
	defer mustClose(t, o)

	// The pill panics the manager exactly once; after the restart the
	// requeued call is re-accepted and executes normally.
	res, err := o.Call("P", "boom-1")
	if err != nil || res[0] != "boom-1" {
		t.Fatalf("pill call = %v, %v", res, err)
	}
	if got := sup.Restarts.Value(); got != 1 {
		t.Fatalf("Restarts = %d, want 1", got)
	}
	if st := o.SupervisionStats(); st.Restarts != 1 || st.Poisoned {
		t.Fatalf("SupervisionStats = %+v", st)
	}
	// And the object still serves ordinary traffic.
	if res, err := o.Call("P", "ok"); err != nil || res[0] != "ok" {
		t.Fatalf("post-restart call = %v, %v", res, err)
	}
}

func TestRestartBudgetExhaustionPoisons(t *testing.T) {
	sup := &metrics.Supervision{}
	o := crashableEcho(t, ObjectOptions{
		ManagerPolicy: Restart,
		Restart:       RestartPolicy{Max: 2, Backoff: time.Millisecond},
		Metrics:       sup,
	}, false) // pill is always lethal: requeue → re-accept → re-panic
	defer mustClose(t, o)

	_, err := o.Call("P", "boom")
	if !errors.Is(err, ErrObjectPoisoned) {
		t.Fatalf("call err = %v, want ErrObjectPoisoned", err)
	}
	if got := sup.Restarts.Value(); got != 2 {
		t.Fatalf("Restarts = %d, want 2 (budget)", got)
	}
	if got := sup.Poisons.Value(); got != 1 {
		t.Fatalf("Poisons = %d, want 1", got)
	}
	if !o.Poisoned() {
		t.Fatal("object not poisoned after budget exhaustion")
	}
}

func TestRestartWithoutManagerRejected(t *testing.T) {
	_, err := New("NoMgr",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithObjectOptions(ObjectOptions{ManagerPolicy: Restart}),
	)
	if !errors.Is(err, ErrNoManager) {
		t.Fatalf("New err = %v, want ErrNoManager", err)
	}
}

// stalledObject builds an object whose manager accepts nothing: every call
// stays pending forever (a guard set that can never fire).
func stalledObject(t *testing.T, opts ObjectOptions) *Object {
	t.Helper()
	o, err := New("Stalled",
		WithEntry(EntrySpec{Name: "P", Results: 1, Array: 2, Body: func(inv *Invocation) error {
			inv.Return(1)
			return nil
		}}),
		WithEntry(EntrySpec{Name: "Q", Results: 1, Array: 2, Body: func(inv *Invocation) error {
			inv.Return(2)
			return nil
		}}),
		WithManager(func(m *Mgr) {
			// Accept only Q; P's calls can never progress.
			for {
				a, err := m.Accept("Q")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, Intercept("P"), Intercept("Q")),
		WithObjectOptions(opts),
	)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestAdmissionRejectNewest(t *testing.T) {
	sup := &metrics.Supervision{}
	rec := trace.NewRecorder(0)
	o, err := New("Bounded",
		WithEntry(EntrySpec{Name: "P", Results: 1, Array: 2, MaxPending: 2, Shed: ShedRejectNewest,
			Body: func(inv *Invocation) error { inv.Return(1); return nil }}),
		WithManager(func(m *Mgr) {
			<-m.Closed() // never accept: pending stays where the callers put it
		}, Intercept("P")),
		WithObjectOptions(ObjectOptions{Metrics: sup}),
		WithTrace(rec),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Fill the bound with two async callers, then overflow it.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = o.Call("P")
		}()
	}
	waitFor(t, func() bool {
		st, _ := o.EntryStats("P")
		return st.Pending == 2
	})
	_, err = o.Call("P")
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("overflow call err = %v, want ErrOverload", err)
	}
	if st, _ := o.EntryStats("P"); st.Shed != 1 {
		t.Fatalf("EntryStats.Shed = %d, want 1", st.Shed)
	}
	if got := sup.Sheds.Value(); got != 1 {
		t.Fatalf("Supervision.Sheds = %d, want 1", got)
	}
	if n := rec.Count("P", trace.Shed); n != 1 {
		t.Fatalf("Shed trace events = %d, want 1", n)
	}
	mustClose(t, o)
	wg.Wait()
}

func TestAdmissionRejectOldest(t *testing.T) {
	o, err := New("Freshest",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Array: 2, MaxPending: 1, Shed: ShedRejectOldest,
			Body: func(inv *Invocation) error { inv.Return(inv.Param(0)); return nil }}),
		WithManager(func(m *Mgr) {
			<-m.Closed()
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)

	oldErr := make(chan error, 1)
	go func() {
		_, err := o.Call("P", "old")
		oldErr <- err
	}()
	waitFor(t, func() bool {
		st, _ := o.EntryStats("P")
		return st.Pending == 1
	})

	// The newcomer evicts the oldest pending call and takes its place.
	newDone := make(chan error, 1)
	go func() {
		_, err := o.Call("P", "new")
		newDone <- err
	}()
	if err := <-oldErr; !errors.Is(err, ErrOverload) {
		t.Fatalf("evicted call err = %v, want ErrOverload", err)
	}
	waitFor(t, func() bool {
		st, _ := o.EntryStats("P")
		return st.Pending == 1
	})
	mustClose(t, o)
	if err := <-newDone; !errors.Is(err, ErrClosed) {
		t.Fatalf("admitted call err = %v, want ErrClosed at close", err)
	}
}

func TestAdmissionBlockAdmitsWhenSpaceFrees(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	o, err := New("Blocking",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Array: 1, MaxPending: 1,
			Body: func(inv *Invocation) error { inv.Return(inv.Param(0)); return nil }}),
		WithManager(func(m *Mgr) {
			<-started
			<-release
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	close(started)

	first := make(chan error, 1)
	go func() {
		_, err := o.Call("P", 1)
		first <- err
	}()
	waitFor(t, func() bool {
		st, _ := o.EntryStats("P")
		return st.Pending == 1
	})

	// Second caller blocks in admission (ShedBlock) until the manager
	// accepts the first.
	second := make(chan error, 1)
	go func() {
		_, err := o.Call("P", 2)
		second <- err
	}()
	select {
	case err := <-second:
		t.Fatalf("second call returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("first call: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("second call: %v", err)
	}
}

func TestAdmissionBlockHonoursContext(t *testing.T) {
	o, err := New("BlockedForever",
		WithEntry(EntrySpec{Name: "P", Results: 1, Array: 1, MaxPending: 1,
			Body: func(inv *Invocation) error { inv.Return(1); return nil }}),
		WithManager(func(m *Mgr) {
			<-m.Closed()
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)

	hold := make(chan error, 1)
	go func() {
		_, err := o.Call("P")
		hold <- err
	}()
	waitFor(t, func() bool {
		st, _ := o.EntryStats("P")
		return st.Pending == 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := o.CallCtx(ctx, "P"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked admission err = %v, want DeadlineExceeded", err)
	}
	mustClose(t, o)
	if err := <-hold; !errors.Is(err, ErrClosed) {
		t.Fatalf("held call err = %v", err)
	}
}

func TestDefaultCallTimeout(t *testing.T) {
	o := stalledObject(t, ObjectOptions{DefaultCallTimeout: 30 * time.Millisecond})
	defer mustClose(t, o)

	start := time.Now()
	_, err := o.Call("P") // P is never accepted
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("call err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("deadline took %v", d)
	}
	// A caller-supplied deadline wins over the default.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start = time.Now()
	if _, err := o.CallCtx(ctx, "P"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ctx call err = %v", err)
	}
	if d := time.Since(start); d > 25*time.Millisecond {
		t.Fatalf("caller deadline not honoured: %v", d)
	}
}

func TestInvocationCtxCancelledOnPoison(t *testing.T) {
	bodyBlocked := make(chan struct{})
	bodyErr := make(chan error, 1)
	o, err := New("LongBody",
		WithEntry(EntrySpec{Name: "P", Results: 1, Array: 1, Body: func(inv *Invocation) error {
			close(bodyBlocked)
			<-inv.Ctx().Done() // stops on poison, not only on close
			bodyErr <- inv.Ctx().Err()
			inv.Return(1)
			return nil
		}}),
		WithEntry(EntrySpec{Name: "Kill", Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			a, err := m.Accept("P")
			if err != nil {
				return
			}
			if err := m.Start(a); err != nil {
				return
			}
			if _, err := m.Accept("Kill"); err != nil {
				return
			}
			panic("killed")
		}, Intercept("P"), Intercept("Kill")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)

	pDone := make(chan error, 1)
	go func() {
		_, err := o.Call("P")
		pDone <- err
	}()
	<-bodyBlocked
	go o.Call("Kill") //nolint:errcheck // poison error checked via pDone

	select {
	case err := <-bodyErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("body ctx err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("body not cancelled on poison")
	}
	if err := <-pDone; !errors.Is(err, ErrObjectPoisoned) {
		t.Fatalf("P caller err = %v, want ErrObjectPoisoned", err)
	}
}

// TestWithdrawAcceptedAfterManagerDeath is the regression test for the
// accepted-but-unstarted hang: a caller whose call was accepted by a
// manager that then returned (without poisoning) must be able to cancel.
func TestWithdrawAcceptedAfterManagerDeath(t *testing.T) {
	accepted := make(chan struct{})
	o, err := New("Abandoner",
		WithEntry(EntrySpec{Name: "P", Results: 1, Array: 1, Body: func(inv *Invocation) error {
			inv.Return(1)
			return nil
		}}),
		WithManager(func(m *Mgr) {
			if _, err := m.Accept("P"); err != nil {
				return
			}
			close(accepted)
			// Manager returns with the call accepted but never started.
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := o.CallCtx(ctx, "P")
		done <- err
	}()
	<-accepted
	// Give the manager goroutine time to exit and be marked gone.
	waitFor(t, func() bool {
		o.mu.Lock()
		defer o.mu.Unlock()
		return o.mgrGone
	})
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled caller err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("caller hung in awaitResult past cancellation (regression)")
	}
}

func TestWatchdogDetectsStall(t *testing.T) {
	sup := &metrics.Supervision{}
	rec := trace.NewRecorder(0)
	var stalls atomic.Int32
	var info atomic.Value
	o := func() *Object {
		o, err := New("Stuck",
			WithEntry(EntrySpec{Name: "P", Results: 1, Array: 2, Body: func(inv *Invocation) error {
				inv.Return(1)
				return nil
			}}),
			WithManager(func(m *Mgr) {
				<-m.Closed() // stuck: accepts nothing, forever
			}, Intercept("P")),
			WithObjectOptions(ObjectOptions{
				Metrics: sup,
				Watchdog: WatchdogConfig{
					Threshold: 20 * time.Millisecond,
					Interval:  5 * time.Millisecond,
					OnStall: func(si StallInfo) {
						stalls.Add(1)
						info.Store(si)
					},
				},
			}),
			WithTrace(rec),
		)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}()
	defer mustClose(t, o)

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = o.Call("P")
	}()
	waitFor(t, func() bool { return stalls.Load() >= 1 })
	si := info.Load().(StallInfo)
	if si.Object != "Stuck" || si.Entry != "P" || si.Age < 20*time.Millisecond || si.Pending != 1 {
		t.Fatalf("StallInfo = %+v", si)
	}
	if sup.Stalls.Value() == 0 {
		t.Fatal("Supervision.Stalls not incremented")
	}
	if rec.Count("P", trace.Stalled) == 0 {
		t.Fatal("no Stalled trace event")
	}
	// One distinct oldest call fires once, not once per tick.
	n := stalls.Load()
	time.Sleep(60 * time.Millisecond)
	if got := stalls.Load(); got != n {
		t.Fatalf("watchdog re-fired for the same call: %d -> %d", n, got)
	}
	mustClose(t, o)
	<-done
}

// TestWatchdogIdleManagerNoFalsePositive: a manager legitimately blocked in
// accept on an EMPTY queue must not trip the watchdog — the signal is
// oldest-pending-call age, not manager idle time.
func TestWatchdogIdleManagerNoFalsePositive(t *testing.T) {
	var stalls atomic.Int32
	o, err := New("Idle",
		WithEntry(EntrySpec{Name: "P", Results: 1, Array: 2, Body: func(inv *Invocation) error {
			inv.Return(1)
			return nil
		}}),
		WithManager(func(m *Mgr) {
			for {
				a, err := m.Accept("P") // blocks idle on the empty queue
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, Intercept("P")),
		WithObjectOptions(ObjectOptions{
			Watchdog: WatchdogConfig{
				Threshold: 10 * time.Millisecond,
				Interval:  2 * time.Millisecond,
				OnStall:   func(StallInfo) { stalls.Add(1) },
			},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)

	// Idle far past the threshold, sprinkling in calls that are served
	// promptly: pending age never accumulates, so no stall may fire.
	for i := 0; i < 5; i++ {
		if _, err := o.Call("P"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(15 * time.Millisecond)
	}
	if got := stalls.Load(); got != 0 {
		t.Fatalf("watchdog fired %d times on an idle-but-live manager", got)
	}
}

// waitFor polls cond until true or the test deadline budget expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
