package core

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/channel"
)

func TestSelectNoGuards(t *testing.T) {
	done := make(chan error, 1)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			_, err := m.Select()
			done <- err
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrBadState) {
		t.Fatalf("Select() = %v, want ErrBadState", err)
	}
	mustClose(t, o)
}

func TestSelectGuardValidation(t *testing.T) {
	results := make(chan error, 4)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithEntry(EntrySpec{Name: "Free", Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			_, err := m.Select(OnAccept("Nope", func(*Accepted) {}))
			results <- err
			_, err = m.Select(OnAccept("Free", func(*Accepted) {})) // not intercepted
			results <- err
			_, err = m.Select(OnAccept("P", func(*Accepted) {}).Slot(5)) // array size 1
			results <- err
			_, err = m.Select(OnReceive(nil, func(channel.Message) {}))
			results <- err
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, o)
	wants := []error{ErrUnknownEntry, ErrNotIntercepted, ErrBadArity, ErrBadState}
	for i, want := range wants {
		if got := <-results; !errors.Is(got, want) {
			t.Errorf("guard validation case %d: err = %v, want %v", i, got, want)
		}
	}
}

// TestAcceptanceConditionSeesParams exercises §2.4's acceptance conditions:
// the when-predicate depends on the values received by the accept, so a
// pending call that fails the condition is left pending while one that
// passes is accepted, regardless of arrival order.
func TestAcceptanceConditionSeesParams(t *testing.T) {
	accepted := make(chan int, 8)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Array: 4, Body: echoBody}),
		WithManager(func(m *Mgr) {
			err := m.Loop(
				OnAccept("P", func(a *Accepted) {
					accepted <- a.Params[0].(int)
					if _, err := m.Execute(a); err != nil {
						t.Errorf("execute: %v", err)
					}
				}).When(func(a *Accepted) bool { return a.Params[0].(int)%2 == 0 }),
			)
			if !errors.Is(err, ErrClosed) {
				t.Errorf("Loop: %v", err)
			}
		}, InterceptPR("P", 1, 0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	// An odd call first: it must wait forever (until close).
	oddDone := make(chan error, 1)
	go func() { _, err := o.Call("P", 3); oddDone <- err }()
	time.Sleep(30 * time.Millisecond)

	// Even calls sail through even though the odd one arrived first.
	for _, v := range []int{2, 4} {
		if res, err := o.Call("P", v); err != nil || res[0] != v {
			t.Fatalf("Call(%d) = %v, %v", v, res, err)
		}
	}
	select {
	case err := <-oddDone:
		t.Fatalf("odd call returned early: %v", err)
	default:
	}
	mustClose(t, o)
	if err := <-oddDone; !errors.Is(err, ErrClosed) {
		t.Fatalf("odd call after close: %v, want ErrClosed", err)
	}
	close(accepted)
	for v := range accepted {
		if v%2 != 0 {
			t.Fatalf("manager accepted odd value %d despite acceptance condition", v)
		}
	}
}

// TestPrioritySelectsSmallest checks the "pri E" clause: among eligible
// alternatives the one with the smallest run-time priority value wins.
func TestPrioritySelectsSmallest(t *testing.T) {
	order := make(chan int, 8)
	gate := make(chan struct{})
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Params: 1, Results: 1, Array: 8, Body: echoBody}),
		WithManager(func(m *Mgr) {
			<-gate // let all calls attach first
			err := m.Loop(
				OnAccept("P", func(a *Accepted) {
					order <- a.Params[0].(int)
					if _, err := m.Execute(a); err != nil {
						t.Errorf("execute: %v", err)
					}
				}).PriAccept(func(a *Accepted) int { return a.Params[0].(int) }),
			)
			if !errors.Is(err, ErrClosed) {
				t.Errorf("Loop: %v", err)
			}
		}, InterceptPR("P", 1, 0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	vals := []int{5, 1, 4, 2, 3}
	for _, v := range vals {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			if _, err := o.Call("P", v); err != nil {
				t.Errorf("Call(%d): %v", v, err)
			}
		}(v)
	}
	time.Sleep(50 * time.Millisecond) // all five attach
	close(gate)
	wg.Wait()
	mustClose(t, o)
	close(order)
	var got []int
	for v := range order {
		got = append(got, v)
	}
	if len(got) != 5 {
		t.Fatalf("accepted %d calls, want 5", len(got))
	}
	// The first selection sees all five pending: it must pick 1. After each
	// completes, the next smallest remaining must be picked.
	for i, want := range []int{1, 2, 3, 4, 5} {
		if got[i] != want {
			t.Fatalf("acceptance order = %v, want ascending priority", got)
		}
	}
}

func TestConstantPriOrdersGuards(t *testing.T) {
	first := make(chan string, 1)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "A", Array: 2, Body: func(inv *Invocation) error { return nil }}),
		WithEntry(EntrySpec{Name: "B", Array: 2, Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			// Wait until both calls are pending, then select once.
			for m.Pending("A") == 0 || m.Pending("B") == 0 {
				time.Sleep(time.Millisecond)
			}
			_, err := m.Select(
				OnAccept("A", func(a *Accepted) {
					first <- "A"
					_, _ = m.Execute(a)
				}).Pri(2),
				OnAccept("B", func(a *Accepted) {
					first <- "B"
					_, _ = m.Execute(a)
				}).Pri(1),
			)
			if err != nil {
				return
			}
			// Drain the other call.
			err = m.Loop(
				OnAccept("A", func(a *Accepted) { _, _ = m.Execute(a) }),
				OnAccept("B", func(a *Accepted) { _, _ = m.Execute(a) }),
			)
			if !errors.Is(err, ErrClosed) {
				t.Errorf("Loop: %v", err)
			}
		}, Intercept("A"), Intercept("B")),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, name := range []string{"A", "B"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if _, err := o.Call(name); err != nil {
				t.Errorf("Call(%s): %v", name, err)
			}
		}(name)
	}
	wg.Wait()
	if got := <-first; got != "B" {
		t.Fatalf("first selection = %s, want B (pri 1 < pri 2)", got)
	}
	mustClose(t, o)
}

// TestEqualPriorityFairness checks rotating tie-breaks: with two always-
// eligible guard alternatives at equal priority, both are selected over time.
func TestEqualPriorityFairness(t *testing.T) {
	counts := make(map[string]int)
	var mu sync.Mutex
	done := make(chan struct{})
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			for i := 0; i < 100; i++ {
				_, err := m.Select(
					OnCond(func() bool { return true }, func() {
						mu.Lock()
						counts["a"]++
						mu.Unlock()
					}),
					OnCond(func() bool { return true }, func() {
						mu.Lock()
						counts["b"]++
						mu.Unlock()
					}),
				)
				if err != nil {
					return
				}
			}
			close(done)
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("manager select loop stalled")
	}
	mustClose(t, o)
	mu.Lock()
	defer mu.Unlock()
	if counts["a"] == 0 || counts["b"] == 0 {
		t.Fatalf("tie-breaking starved a guard: %v", counts)
	}
	if counts["a"]+counts["b"] != 100 {
		t.Fatalf("selected %d alternatives, want 100", counts["a"]+counts["b"])
	}
}

func TestReceiveGuardInManager(t *testing.T) {
	req := channel.New("req")
	got := make(chan string, 4)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			err := m.Loop(
				OnReceive(req, func(msg channel.Message) {
					got <- msg[0].(string)
				}),
			)
			if !errors.Is(err, ErrClosed) {
				t.Errorf("Loop: %v", err)
			}
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"one", "two", "three"} {
		if err := req.Send(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{"one", "two", "three"} {
		select {
		case g := <-got:
			if g != want {
				t.Fatalf("received %q, want %q (FIFO)", g, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("manager did not receive message")
		}
	}
	mustClose(t, o)
}

func TestReceiveGuardAcceptanceCondition(t *testing.T) {
	req := channel.New("req")
	got := make(chan int, 8)
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			_ = m.Loop(
				OnReceive(req, func(msg channel.Message) {
					got <- msg[0].(int)
				}).WhenMsg(func(msg channel.Message) bool { return msg[0].(int) >= 10 }),
			)
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{1, 12, 2, 15} {
		if err := req.Send(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []int{12, 15} {
		select {
		case g := <-got:
			if g != want {
				t.Fatalf("received %d, want %d", g, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("manager did not receive eligible message")
		}
	}
	// Ineligible messages remain buffered.
	if req.Len() != 2 {
		t.Fatalf("channel Len = %d, want 2 ineligible messages retained", req.Len())
	}
	mustClose(t, o)
}

func TestReceiveGuardMessagePriority(t *testing.T) {
	req := channel.New("req")
	got := make(chan int, 8)
	release := make(chan struct{})
	o, err := New("X",
		WithEntry(EntrySpec{Name: "P", Body: func(inv *Invocation) error { return nil }}),
		WithManager(func(m *Mgr) {
			<-release
			_ = m.Loop(
				OnReceive(req, func(msg channel.Message) {
					got <- msg[0].(int)
				}).PriMsg(func(msg channel.Message) int { return msg[0].(int) }),
			)
		}, Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{30, 10, 20} {
		if err := req.Send(v); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	// PriMsg ranks the frontmost eligible message only (one candidate per
	// receive guard); the front message is 30 regardless. This documents
	// that priority applies across guards, not within one channel's queue.
	want := []int{30, 10, 20}
	for _, w := range want {
		select {
		case g := <-got:
			if g != w {
				t.Fatalf("received %d, want %d", g, w)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("manager stalled")
		}
	}
	mustClose(t, o)
}

func TestCondGuardGatesOnState(t *testing.T) {
	// The bounded-buffer pattern: "accept Deposit when Count < N".
	const n = 3
	var count int // manager-local state, only the manager touches it
	o, err := New("Buf",
		WithEntry(EntrySpec{Name: "Deposit", Params: 1, Body: func(inv *Invocation) error { return nil }}),
		WithEntry(EntrySpec{Name: "Remove", Results: 1, Body: func(inv *Invocation) error {
			inv.Return("item")
			return nil
		}}),
		WithManager(func(m *Mgr) {
			_ = m.Loop(
				OnAccept("Deposit", func(a *Accepted) {
					if _, err := m.Execute(a); err == nil {
						count++
					}
				}).When(func(*Accepted) bool { return count < n }),
				OnAccept("Remove", func(a *Accepted) {
					if _, err := m.Execute(a); err == nil {
						count--
					}
				}).When(func(*Accepted) bool { return count > 0 }),
			)
		}, Intercept("Deposit"), Intercept("Remove")),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the buffer.
	for i := 0; i < n; i++ {
		if _, err := o.Call("Deposit", i); err != nil {
			t.Fatal(err)
		}
	}
	// The n+1st deposit must block until a remove happens.
	blocked := make(chan error, 1)
	go func() { _, err := o.Call("Deposit", n); blocked <- err }()
	select {
	case <-blocked:
		t.Fatal("deposit into full buffer did not block")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := o.Call("Remove"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("deposit did not unblock after remove")
	}
	mustClose(t, o)
}

// Property: for random interleavings of producers and a manager-gated
// buffer, the count never exceeds the bound and all calls complete.
func TestQuickManagerGatedBuffer(t *testing.T) {
	f := func(seed uint8) bool {
		bound := int(seed%4) + 1
		var count, peak int
		o, err := New("Buf",
			WithEntry(EntrySpec{Name: "D", Array: 8, Body: func(inv *Invocation) error { return nil }}),
			WithEntry(EntrySpec{Name: "R", Array: 8, Body: func(inv *Invocation) error { return nil }}),
			WithManager(func(m *Mgr) {
				_ = m.Loop(
					OnAccept("D", func(a *Accepted) {
						if _, err := m.Execute(a); err == nil {
							count++
							if count > peak {
								peak = count
							}
						}
					}).When(func(*Accepted) bool { return count < bound }),
					OnAccept("R", func(a *Accepted) {
						if _, err := m.Execute(a); err == nil {
							count--
						}
					}).When(func(*Accepted) bool { return count > 0 }),
				)
			}, Intercept("D"), Intercept("R")),
		)
		if err != nil {
			return false
		}
		const items = 20
		var wg sync.WaitGroup
		wg.Add(2)
		ok := true
		go func() {
			defer wg.Done()
			for i := 0; i < items; i++ {
				if _, err := o.Call("D"); err != nil {
					ok = false
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < items; i++ {
				if _, err := o.Call("R"); err != nil {
					ok = false
					return
				}
			}
		}()
		wg.Wait()
		_ = o.Close()
		return ok && count == 0 && peak <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
