package sched

import (
	"fmt"
	"testing"
)

// BenchmarkPoolDispatch measures the pure hand-off cost of the pool: the
// per-task price of Go → worker pickup → retirement with a zero-cost body.
// This isolates the dispatch path that E7's 200µs sleeping bodies hide.
func BenchmarkPoolDispatch(b *testing.B) {
	configs := []struct {
		name    string
		mode    Mode
		workers int
	}{
		{"spawn", ModeSpawn, 0},
		{"pooled-2", ModePooled, 2},
		{"pooled-8", ModePooled, 8},
		{"one-to-one-64", ModeOneToOne, 64},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			p, err := New(cfg.mode, cfg.workers)
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Go(func() {}); err != nil {
					b.Fatal(err)
				}
			}
			p.Wait()
		})
	}
}

// BenchmarkPoolDispatchParallel submits from many goroutines at once, the
// contended shape a busy manager mailbox produces.
func BenchmarkPoolDispatchParallel(b *testing.B) {
	for _, workers := range []int{2, 8} {
		b.Run(fmt.Sprintf("pooled-%d", workers), func(b *testing.B) {
			p, err := New(ModePooled, workers)
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := p.Go(func() {}); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			p.Wait()
		})
	}
}
