// Package sched provides the lightweight-process substrate ALPS objects run
// on (paper §3).
//
// The paper discusses three ways to obtain the process that executes a
// started entry procedure:
//
//   - create a process dynamically at call time (expensive on 1988 OSes;
//     cheap for goroutines — kept as ModeSpawn for comparison),
//   - pre-create one process per hidden-procedure-array element when the
//     object is created (ModeOneToOne: "the mapping between the procedures
//     and processes is one-to-one"),
//   - pre-allocate a pool of M processes where M is much less than N and
//     bind a process to a call when it is started rather than when it
//     arrives (ModePooled: attractive "for resources in high demand where
//     the average number of waiting requests is significant").
//
// The paper suggests the programmer chooses between these with compiler
// switches; here it is a per-object option. Experiment E7 measures the
// trade-off.
//
// Worker hand-off uses a buffered channel: a submission is one non-blocking
// send and a worker picks it up with one receive, with no mutex or condition
// variable on the dispatch path. Submissions that find the channel full spill
// to an unbounded overflow list (Go must never block the manager, §2.3);
// workers drain the spill between channel receives.
package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Mode selects how processes are provided for started procedures.
type Mode int

const (
	// ModeSpawn creates a fresh process (goroutine) per started call.
	ModeSpawn Mode = iota + 1
	// ModeOneToOne pre-creates one worker per hidden-array element at
	// object creation time.
	ModeOneToOne
	// ModePooled pre-creates M workers (M typically much less than the
	// total array size) and binds one to a call at start time.
	ModePooled
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSpawn:
		return "spawn"
	case ModeOneToOne:
		return "one-to-one"
	case ModePooled:
		return "pooled"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ErrClosed is returned by Go after Close.
var ErrClosed = errors.New("sched: pool closed")

// Stats is a snapshot of pool activity.
type Stats struct {
	Mode             Mode
	Workers          int    // configured worker count (0 for ModeSpawn)
	ProcessesCreated uint64 // total processes ever created
	MaxResident      int    // peak simultaneously-live processes
	TasksExecuted    uint64
	MaxQueueLen      int // peak tasks waiting for a worker
}

// Pool runs tasks on lightweight processes according to its Mode. Submission
// never blocks: a started procedure must run asynchronously with respect to
// the manager (paper §2.3), so excess tasks queue.
type Pool struct {
	mode    Mode
	workers int

	// tasks is the buffered dispatch channel. Workers receive from it
	// without touching mu; Go sends into it non-blockingly.
	tasks chan func()

	mu       sync.Mutex
	overflow []func() // tasks that found the channel full, FIFO
	closed   bool

	wg     sync.WaitGroup // persistent workers and spawned processes
	taskWG sync.WaitGroup // outstanding (queued or running) tasks

	// executed is the one counter workers touch per task; atomic so the
	// completion path stays lock-free.
	executed atomic.Uint64

	created  uint64
	resident int
	maxRes   int
	maxQueue int
}

// New creates a pool. workers is the pre-created process count for
// ModeOneToOne (the total hidden-array size) and ModePooled (M); it is
// ignored for ModeSpawn.
func New(mode Mode, workers int) (*Pool, error) {
	switch mode {
	case ModeSpawn:
		workers = 0
	case ModeOneToOne, ModePooled:
		if workers < 1 {
			return nil, fmt.Errorf("sched: mode %v requires at least 1 worker, got %d", mode, workers)
		}
	default:
		return nil, fmt.Errorf("sched: unknown mode %d", int(mode))
	}
	p := &Pool{mode: mode, workers: workers}
	p.created = uint64(workers)
	p.resident = workers
	p.maxRes = workers
	if workers > 0 {
		depth := workers * 8
		if depth < 16 {
			depth = 16
		}
		p.tasks = make(chan func(), depth)
		for i := 0; i < workers; i++ {
			p.wg.Add(1)
			go p.worker()
		}
	}
	return p, nil
}

// Mode reports the pool's mode.
func (p *Pool) Mode() Mode { return p.mode }

// Go submits a task. It never blocks the caller; the task runs on a pool
// process as soon as one is available.
func (p *Pool) Go(f func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.taskWG.Add(1)
	if p.mode == ModeSpawn {
		p.created++
		p.resident++
		if p.resident > p.maxRes {
			p.maxRes = p.resident
		}
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer p.taskWG.Done()
			f()
			p.executed.Add(1)
			p.mu.Lock()
			p.resident--
			p.mu.Unlock()
		}()
		return nil
	}
	select {
	case p.tasks <- f:
	default:
		p.overflow = append(p.overflow, f)
		// The workers may have drained the whole channel between the
		// failed send and the append; with every worker now blocked on
		// an empty channel nothing would ever revisit the overflow, so
		// push spilled heads back out while there is room. After this
		// loop either the overflow is empty or the channel is full —
		// and a full channel guarantees a worker will complete a task
		// ordered after this append and drain the spill.
		for len(p.overflow) > 0 {
			select {
			case p.tasks <- p.overflow[0]:
				p.overflow[0] = nil
				p.overflow = p.overflow[1:]
			default:
				goto spilled
			}
		}
	spilled:
	}
	if q := len(p.tasks) + len(p.overflow); q > p.maxQueue {
		p.maxQueue = q
	}
	p.mu.Unlock()
	return nil
}

// Wait blocks until all submitted tasks have completed. It does not prevent
// new submissions.
func (p *Pool) Wait() {
	p.taskWG.Wait()
}

// Close stops accepting tasks, waits for queued and running tasks to finish,
// and shuts down the workers. It is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.taskWG.Wait()
	if p.tasks != nil {
		close(p.tasks)
	}
	p.wg.Wait()
}

// Stats returns a snapshot of pool activity.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Mode:             p.mode,
		Workers:          p.workers,
		ProcessesCreated: p.created,
		MaxResident:      p.maxRes,
		TasksExecuted:    p.executed.Load(),
		MaxQueueLen:      p.maxQueue,
	}
}

// runTask executes one task and retires it.
func (p *Pool) runTask(f func()) {
	f()
	p.executed.Add(1)
	p.taskWG.Done()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for f := range p.tasks {
		p.runTask(f)
		// Drain spilled tasks before blocking on the channel again.
		for {
			p.mu.Lock()
			if len(p.overflow) == 0 {
				p.mu.Unlock()
				break
			}
			g := p.overflow[0]
			p.overflow[0] = nil
			p.overflow = p.overflow[1:]
			p.mu.Unlock()
			p.runTask(g)
		}
	}
	p.mu.Lock()
	p.resident--
	p.mu.Unlock()
}
