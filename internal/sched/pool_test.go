package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestModeString(t *testing.T) {
	tests := []struct {
		mode Mode
		want string
	}{
		{ModeSpawn, "spawn"},
		{ModeOneToOne, "one-to-one"},
		{ModePooled, "pooled"},
		{Mode(99), "Mode(99)"},
	}
	for _, tt := range tests {
		if got := tt.mode.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.mode), got, tt.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(ModePooled, 0); err == nil {
		t.Error("New(ModePooled, 0) succeeded, want error")
	}
	if _, err := New(ModeOneToOne, -1); err == nil {
		t.Error("New(ModeOneToOne, -1) succeeded, want error")
	}
	if _, err := New(Mode(42), 1); err == nil {
		t.Error("New with unknown mode succeeded, want error")
	}
	p, err := New(ModeSpawn, 1234) // workers ignored for spawn
	if err != nil {
		t.Fatalf("New(ModeSpawn): %v", err)
	}
	if s := p.Stats(); s.Workers != 0 {
		t.Errorf("spawn pool Workers = %d, want 0", s.Workers)
	}
	p.Close()
}

func runAll(t *testing.T, mode Mode, workers, tasks int) *Pool {
	t.Helper()
	p, err := New(mode, workers)
	if err != nil {
		t.Fatal(err)
	}
	var done int64
	for i := 0; i < tasks; i++ {
		if err := p.Go(func() { atomic.AddInt64(&done, 1) }); err != nil {
			t.Fatalf("Go: %v", err)
		}
	}
	p.Wait()
	if got := atomic.LoadInt64(&done); got != int64(tasks) {
		t.Fatalf("mode %v: executed %d tasks, want %d", mode, got, tasks)
	}
	return p
}

func TestAllModesRunAllTasks(t *testing.T) {
	for _, mode := range []Mode{ModeSpawn, ModeOneToOne, ModePooled} {
		t.Run(mode.String(), func(t *testing.T) {
			p := runAll(t, mode, 4, 200)
			defer p.Close()
			if s := p.Stats(); s.TasksExecuted < 200 {
				t.Errorf("TasksExecuted = %d, want >= 200", s.TasksExecuted)
			}
		})
	}
}

func TestGoNeverBlocks(t *testing.T) {
	// One worker, tasks that block until released: submission must still be
	// immediate because the manager may never be blocked by a start.
	p, err := New(ModePooled, 1)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	for i := 0; i < 100; i++ {
		if err := p.Go(func() { <-release }); err != nil {
			t.Fatal(err)
		}
	}
	// All Go calls returned already; release and close.
	close(release)
	p.Close()
	if s := p.Stats(); s.MaxQueueLen < 90 {
		t.Errorf("MaxQueueLen = %d, expected deep queue with 1 worker", s.MaxQueueLen)
	}
}

func TestPooledBoundsResidentProcesses(t *testing.T) {
	const m = 3
	p, err := New(ModePooled, m)
	if err != nil {
		t.Fatal(err)
	}
	var concurrent, peak int64
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		if err := p.Go(func() {
			c := atomic.AddInt64(&concurrent, 1)
			mu.Lock()
			if c > peak {
				peak = c
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&concurrent, -1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	mu.Lock()
	defer mu.Unlock()
	if peak > m {
		t.Fatalf("observed %d concurrent tasks, pool has only %d workers", peak, m)
	}
	if s := p.Stats(); s.ProcessesCreated != m {
		t.Fatalf("ProcessesCreated = %d, want exactly %d (bound at start time)", s.ProcessesCreated, m)
	}
}

func TestSpawnCreatesProcessPerTask(t *testing.T) {
	p, err := New(ModeSpawn, 0)
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 25
	for i := 0; i < tasks; i++ {
		if err := p.Go(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if s := p.Stats(); s.ProcessesCreated != tasks {
		t.Fatalf("ProcessesCreated = %d, want %d (one per task)", s.ProcessesCreated, tasks)
	}
}

func TestCloseWaitsForTasks(t *testing.T) {
	for _, mode := range []Mode{ModeSpawn, ModeOneToOne, ModePooled} {
		t.Run(mode.String(), func(t *testing.T) {
			p, err := New(mode, 2)
			if err != nil {
				t.Fatal(err)
			}
			var done atomic.Bool
			if err := p.Go(func() {
				time.Sleep(20 * time.Millisecond)
				done.Store(true)
			}); err != nil {
				t.Fatal(err)
			}
			p.Close()
			if !done.Load() {
				t.Fatal("Close returned before task completed")
			}
		})
	}
}

func TestGoAfterClose(t *testing.T) {
	p, err := New(ModePooled, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := p.Go(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Go after Close: err = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

func TestOneToOneStats(t *testing.T) {
	const n = 8
	p, err := New(ModeOneToOne, n)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.ProcessesCreated != n || s.MaxResident != n {
		t.Fatalf("one-to-one created/resident = %d/%d, want %d/%d (pre-created at object creation)",
			s.ProcessesCreated, s.MaxResident, n, n)
	}
	p.Close()
}

func TestTasksRunConcurrentlyUpToWorkers(t *testing.T) {
	const m = 4
	p, err := New(ModePooled, m)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// m tasks that can only finish when all m are running proves the pool
	// really provides m concurrent processes.
	var started sync.WaitGroup
	started.Add(m)
	gate := make(chan struct{})
	for i := 0; i < m; i++ {
		if err := p.Go(func() {
			started.Done()
			<-gate
		}); err != nil {
			t.Fatal(err)
		}
	}
	allStarted := make(chan struct{})
	go func() { started.Wait(); close(allStarted) }()
	select {
	case <-allStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not run m tasks concurrently")
	}
	close(gate)
}

// Property: for any mode and worker count, every submitted task runs
// exactly once and Close leaves no residue.
func TestQuickPoolRunsEverything(t *testing.T) {
	modes := []Mode{ModeSpawn, ModeOneToOne, ModePooled}
	for seed := 0; seed < 12; seed++ {
		mode := modes[seed%3]
		workers := seed%4 + 1
		tasks := (seed * 7 % 40) + 1
		p, err := New(mode, workers)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var ran atomic.Int64
		for i := 0; i < tasks; i++ {
			if err := p.Go(func() { ran.Add(1) }); err != nil {
				t.Fatalf("seed %d: Go: %v", seed, err)
			}
		}
		p.Close()
		if got := ran.Load(); got != int64(tasks) {
			t.Fatalf("seed %d: mode %v ran %d of %d tasks", seed, mode, got, tasks)
		}
		if s := p.Stats(); s.TasksExecuted != uint64(tasks) {
			t.Fatalf("seed %d: TasksExecuted = %d, want %d", seed, s.TasksExecuted, tasks)
		}
	}
}
