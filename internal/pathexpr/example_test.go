package pathexpr_test

import (
	"fmt"
	"log"

	alps "repro"
	"repro/internal/pathexpr"
)

// Example compiles the one-slot bounded buffer path and shows the strict
// alternation it enforces.
func Example() {
	p, err := pathexpr.Compile("1:(deposit; remove)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("procs:", p.Procs())

	mgr, icpts := p.Manager()
	noop := func(inv *alps.Invocation) error { return nil }
	obj, err := alps.New("Buffer",
		alps.WithEntry(alps.EntrySpec{Name: "deposit", Array: 2, Body: noop}),
		alps.WithEntry(alps.EntrySpec{Name: "remove", Array: 2, Body: noop}),
		alps.WithManager(mgr, icpts...),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()

	for i := 0; i < 2; i++ {
		if _, err := obj.Call("deposit"); err != nil {
			log.Fatal(err)
		}
		if _, err := obj.Call("remove"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("two deposit/remove cycles completed")
	// Output:
	// procs: [deposit remove]
	// two deposit/remove cycles completed
}
