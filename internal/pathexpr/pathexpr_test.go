package pathexpr

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	alps "repro"
)

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"a;;b",
		"a |",
		"2:(a",
		"0:(a)",
		"-1:(a)",
		"a b",
		"(a",
		"a)",
		"2:a",
		"!?",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestCompileShapes(t *testing.T) {
	tests := []struct {
		src      string
		procs    []string
		counters int
	}{
		{"a", []string{"a"}, 0},
		{"a;b", []string{"a", "b"}, 1},
		{"a;b;c", []string{"a", "b", "c"}, 2},
		{"a|b", []string{"a", "b"}, 0},
		{"3:(a)", []string{"a"}, 1},
		{"1:(a;b)", []string{"a", "b"}, 2},
		{"2:(r|w)", []string{"r", "w"}, 1},
		{"open; 3:(read|write); close", []string{"open", "read", "write", "close"}, 3},
	}
	for _, tt := range tests {
		p, err := Compile(tt.src)
		if err != nil {
			t.Errorf("Compile(%q): %v", tt.src, err)
			continue
		}
		if got := p.Procs(); len(got) != len(tt.procs) {
			t.Errorf("Compile(%q).Procs() = %v, want %v", tt.src, got, tt.procs)
			continue
		}
		for i, name := range p.Procs() {
			if name != tt.procs[i] {
				t.Errorf("Compile(%q).Procs() = %v, want %v", tt.src, p.Procs(), tt.procs)
			}
		}
		if got := len(p.inits); got != tt.counters {
			t.Errorf("Compile(%q) allocated %d counters, want %d\n%s", tt.src, got, tt.counters, p.Describe())
		}
		if p.String() != tt.src {
			t.Errorf("String() = %q", p.String())
		}
		if !strings.Contains(p.Describe(), "path") {
			t.Errorf("Describe() = %q", p.Describe())
		}
	}
}

// install builds an object with the given path over entries that track
// per-entry concurrency and a global execution log.
type probe struct {
	mu    sync.Mutex
	log   []string
	cur   map[string]int
	peak  map[string]int
	total atomic.Int64
}

func installPath(t *testing.T, src string, hold time.Duration, arrays map[string]int) (*alps.Object, *probe) {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	pr := &probe{cur: make(map[string]int), peak: make(map[string]int)}
	mgrFn, icpts := p.Manager()
	opts := []alps.Option{alps.WithManager(mgrFn, icpts...)}
	for _, name := range p.Procs() {
		name := name
		array := 8
		if arrays != nil && arrays[name] > 0 {
			array = arrays[name]
		}
		opts = append(opts, alps.WithEntry(alps.EntrySpec{Name: name, Array: array,
			Body: func(inv *alps.Invocation) error {
				pr.mu.Lock()
				pr.log = append(pr.log, name)
				pr.cur[name]++
				if pr.cur[name] > pr.peak[name] {
					pr.peak[name] = pr.cur[name]
				}
				pr.mu.Unlock()
				pr.total.Add(1)
				if hold > 0 {
					time.Sleep(hold)
				}
				pr.mu.Lock()
				pr.cur[name]--
				pr.mu.Unlock()
				return nil
			}}))
	}
	obj, err := alps.New("Pathed", opts...)
	if err != nil {
		t.Fatal(err)
	}
	return obj, pr
}

func callN(t *testing.T, obj *alps.Object, entry string, n int) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := obj.Call(entry); err != nil {
				t.Errorf("Call(%s): %v", entry, err)
			}
		}()
	}
	return &wg
}

// TestSequencePath: "produce; consume" — every consume must be preceded by
// a distinct completed produce.
func TestSequencePath(t *testing.T) {
	obj, pr := installPath(t, "produce; consume", 0, nil)
	defer obj.Close()

	// Consumers first: they must block.
	cwg := callN(t, obj, "consume", 3)
	time.Sleep(30 * time.Millisecond)
	if pr.total.Load() != 0 {
		t.Fatal("consume ran before any produce")
	}
	pwg := callN(t, obj, "produce", 3)
	pwg.Wait()
	cwg.Wait()
	pr.mu.Lock()
	defer pr.mu.Unlock()
	// Prefix property: at every prefix, #produce >= #consume.
	bal := 0
	for _, e := range pr.log {
		if e == "produce" {
			bal++
		} else {
			bal--
		}
		if bal < 0 {
			t.Fatalf("log %v: consume overtook produce", pr.log)
		}
	}
}

// TestRestrictionBoundsConcurrency: "3:(work)" — at most 3 concurrent.
func TestRestrictionBoundsConcurrency(t *testing.T) {
	obj, pr := installPath(t, "3:(work)", 3*time.Millisecond, map[string]int{"work": 8})
	defer obj.Close()
	callN(t, obj, "work", 12).Wait()
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.peak["work"] > 3 {
		t.Fatalf("peak concurrency %d > restriction 3", pr.peak["work"])
	}
	if pr.peak["work"] < 2 {
		t.Fatalf("peak concurrency %d; restriction never exploited", pr.peak["work"])
	}
}

// TestBoundedBufferPath: "1:(deposit; remove)" is a one-slot buffer —
// strict alternation deposit, remove, deposit, remove...
func TestBoundedBufferPath(t *testing.T) {
	obj, pr := installPath(t, "1:(deposit; remove)", 0, nil)
	defer obj.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); callN(t, obj, "deposit", 10).Wait() }()
	go func() { defer wg.Done(); callN(t, obj, "remove", 10).Wait() }()
	wg.Wait()
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if len(pr.log) != 20 {
		t.Fatalf("executed %d, want 20", len(pr.log))
	}
	for i, e := range pr.log {
		want := "deposit"
		if i%2 == 1 {
			want = "remove"
		}
		if e != want {
			t.Fatalf("log %v: not strictly alternating at %d", pr.log, i)
		}
	}
}

// TestSelectionShares: "2:(read | write)" — reads and writes share one
// 2-bounded restriction.
func TestSelectionShares(t *testing.T) {
	obj, pr := installPath(t, "2:(read | write)", 3*time.Millisecond, nil)
	defer obj.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); callN(t, obj, "read", 10).Wait() }()
	go func() { defer wg.Done(); callN(t, obj, "write", 10).Wait() }()
	wg.Wait()
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.peak["read"]+pr.peak["write"] > 4 { // 2 at once, peaks may not coincide
		t.Logf("peaks: %v", pr.peak)
	}
	if pr.peak["read"] > 2 || pr.peak["write"] > 2 {
		t.Fatalf("individual peaks %v exceed shared bound", pr.peak)
	}
}

// TestFileProtocolPath is the classic: open; (read|write)*-ish; close —
// here "1:(open; 3:(read|write); close)": one session at a time; within a
// session at most 3 concurrent reads/writes; close ends the session.
// Because open paths count completions, a single read unlocks close; we
// assert ordering, not exhaustiveness.
func TestFileProtocolPath(t *testing.T) {
	obj, pr := installPath(t, "open; 3:(read|write); close", 0, nil)
	defer obj.Close()

	// close and read block until open completes.
	rwg := callN(t, obj, "read", 1)
	time.Sleep(20 * time.Millisecond)
	if pr.total.Load() != 0 {
		t.Fatal("read ran before open")
	}
	callN(t, obj, "open", 1).Wait()
	rwg.Wait()
	callN(t, obj, "close", 1).Wait()

	pr.mu.Lock()
	defer pr.mu.Unlock()
	if len(pr.log) != 3 || pr.log[0] != "open" || pr.log[2] != "close" {
		t.Fatalf("log %v, want open read close", pr.log)
	}
}

// TestRepeatedProcOccurrence: a procedure appearing twice in the path can
// play either role: "a;b | b;a" means b after a OR b before a... with
// shared counters both interleavings of the two occurrences are legal; we
// simply verify all calls complete (no deadlock) and compile allocates two
// rules for each name.
func TestRepeatedProcOccurrence(t *testing.T) {
	p, err := Compile("a;b | b;a")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.rules["a"]) != 2 || len(p.rules["b"]) != 2 {
		t.Fatalf("rules: a=%d b=%d, want 2 occurrences each\n%s",
			len(p.rules["a"]), len(p.rules["b"]), p.Describe())
	}
	obj, pr := installPath(t, "a;b | b;a", 0, nil)
	defer obj.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); callN(t, obj, "a", 5).Wait() }()
	go func() { defer wg.Done(); callN(t, obj, "b", 5).Wait() }()
	wg.Wait()
	if pr.total.Load() != 10 {
		t.Fatalf("executed %d, want 10", pr.total.Load())
	}
}
