package pathexpr

import (
	"strings"
	"testing"
)

// FuzzCompile checks the parser/translator never panics and that every
// successfully compiled path has a consistent shape: at least one
// procedure, every procedure has at least one rule, and all counter
// references are in range.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"a",
		"a;b",
		"a|b",
		"3:(a)",
		"1:(deposit; remove)",
		"open; 3:(read|write); close",
		"a;b | b;a",
		"((a))",
		"10:(x;y;z)",
		"",
		"a;;b",
		"2:(", "0:(a)", "a b", "!?", "9999999999999999999:(a)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Compile(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		procs := p.Procs()
		if len(procs) == 0 {
			t.Fatalf("Compile(%q) succeeded with no procedures", src)
		}
		for _, name := range procs {
			rules := p.rules[name]
			if len(rules) == 0 {
				t.Fatalf("Compile(%q): procedure %q has no rules", src, name)
			}
			for _, r := range rules {
				for _, c := range append(append([]int(nil), r.pre...), r.post...) {
					if c < 0 || c >= len(p.inits) {
						t.Fatalf("Compile(%q): counter %d out of range %d", src, c, len(p.inits))
					}
				}
			}
		}
		if !strings.Contains(p.Describe(), "path") {
			t.Fatalf("Describe broken for %q", src)
		}
	})
}
