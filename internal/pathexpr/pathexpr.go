// Package pathexpr compiles Campbell–Habermann style path expressions into
// ALPS manager processes. The paper claims the manager generalizes path
// expressions (§1: "all scheduling is implemented separately in the
// [manager] … was first used in path expressions"); this package is the
// constructive proof: a path expression is parsed, translated to
// counting-semaphore prologues/epilogues (the classic open-path
// translation), and enforced by a generated manager that gates accepts on
// the prologues and releases the epilogues at finish.
//
// Grammar (whitespace insensitive):
//
//	expr   := seq
//	seq    := term (';' term)*            sequencing
//	term   := factor ('|' factor)*        selection ('|' binds tighter)
//	factor := NUMBER ':' '(' expr ')'     restriction (≤ N concurrent)
//	        | '(' expr ')'
//	        | IDENT                       a procedure name
//
// Open-path semantics: the whole path repeats implicitly and places no
// global bound unless restricted. "deposit; remove" lets every remove be
// preceded by a distinct completed deposit; "1:(deposit; remove)" is the
// one-slot bounded buffer; "3:(read | write)" admits at most three
// concurrent operations of either kind.
package pathexpr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	alps "repro"
)

// Path is a compiled path expression.
type Path struct {
	src   string
	inits []int             // initial value of each counter
	rules map[string][]rule // per procedure: its occurrences in the path
	procs []string          // declaration order
}

// rule is one occurrence of a procedure: the counters it must decrement to
// start and increment on completion.
type rule struct {
	pre  []int // counter indices P'd (decremented) at accept
	post []int // counter indices V'd (incremented) at finish
}

// Compile parses and translates a path expression.
func Compile(src string) (*Path, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, fmt.Errorf("pathexpr %q: %w", src, err)
	}
	p := &parser{toks: toks}
	root, err := p.parseSeq()
	if err != nil {
		return nil, fmt.Errorf("pathexpr %q: %w", src, err)
	}
	if !p.eof() {
		return nil, fmt.Errorf("pathexpr %q: trailing input at %q", src, p.peek().text)
	}
	c := &Path{src: src, rules: make(map[string][]rule)}
	c.translate(root, nil, nil)
	return c, nil
}

// Procs reports the procedure names appearing in the path, in first-
// appearance order. The object installing the path must declare them all.
func (p *Path) Procs() []string {
	out := make([]string, len(p.procs))
	copy(out, p.procs)
	return out
}

// String returns the source expression.
func (p *Path) String() string { return p.src }

// Manager returns the generated manager function and its intercepts
// clause, ready for alps.WithManager.
func (p *Path) Manager() (func(*alps.Mgr), []alps.InterceptSpec) {
	icpts := make([]alps.InterceptSpec, len(p.procs))
	for i, name := range p.procs {
		icpts[i] = alps.Intercept(name)
	}
	mgrFn := func(m *alps.Mgr) {
		counters := make([]int, len(p.inits))
		copy(counters, p.inits)
		// slotKey -> the rule chosen when the call was started.
		type slotKey struct {
			proc string
			slot int
		}
		chosen := make(map[slotKey]rule)

		passable := func(r rule) bool {
			for _, c := range r.pre {
				if counters[c] <= 0 {
					return false
				}
			}
			return true
		}
		firstPassable := func(proc string) (rule, bool) {
			for _, r := range p.rules[proc] {
				if passable(r) {
					return r, true
				}
			}
			return rule{}, false
		}

		guards := make([]alps.Guard, 0, 2*len(p.procs))
		for _, proc := range p.procs {
			proc := proc
			guards = append(guards,
				alps.OnAccept(proc, func(a *alps.Accepted) {
					r, ok := firstPassable(proc)
					if !ok {
						return // raced; the When re-evaluates next round
					}
					for _, c := range r.pre {
						counters[c]--
					}
					if err := m.Start(a); err != nil {
						for _, c := range r.pre {
							counters[c]++
						}
						return
					}
					chosen[slotKey{proc, a.Slot}] = r
				}).When(func(*alps.Accepted) bool {
					_, ok := firstPassable(proc)
					return ok
				}),
				alps.OnAwait(proc, func(aw *alps.Awaited) {
					if err := m.Finish(aw); err != nil {
						return
					}
					key := slotKey{proc, aw.Slot}
					r := chosen[key]
					delete(chosen, key)
					for _, c := range r.post {
						counters[c]++
					}
				}),
			)
		}
		_ = m.Loop(guards...)
	}
	return mgrFn, icpts
}

// ---- translation -----------------------------------------------------------

type node interface{ isNode() }

type nameNode struct{ name string }
type seqNode struct{ children []node }
type selNode struct{ children []node }
type restrictNode struct {
	n     int
	child node
}

func (nameNode) isNode()     {}
func (seqNode) isNode()      {}
func (selNode) isNode()      {}
func (restrictNode) isNode() {}

// newCounter allocates a counter with the given initial value.
func (p *Path) newCounter(init int) int {
	p.inits = append(p.inits, init)
	return len(p.inits) - 1
}

// translate implements the open-path translation: sequencing introduces a
// zero-initialized counter between adjacent elements; selection shares the
// context; restriction wraps the context in an n-initialized counter.
func (p *Path) translate(n node, pre, post []int) {
	switch t := n.(type) {
	case nameNode:
		if _, seen := p.rules[t.name]; !seen {
			p.procs = append(p.procs, t.name)
		}
		p.rules[t.name] = append(p.rules[t.name], rule{
			pre:  append([]int(nil), pre...),
			post: append([]int(nil), post...),
		})
	case seqNode:
		k := len(t.children)
		links := make([]int, k-1)
		for i := range links {
			links[i] = p.newCounter(0)
		}
		for i, child := range t.children {
			childPre := pre
			childPost := post
			if i > 0 {
				childPre = []int{links[i-1]}
			}
			if i < k-1 {
				childPost = []int{links[i]}
			}
			p.translate(child, childPre, childPost)
		}
	case selNode:
		for _, child := range t.children {
			p.translate(child, pre, post)
		}
	case restrictNode:
		c := p.newCounter(t.n)
		p.translate(t.child, append([]int{c}, pre...), append(append([]int(nil), post...), c))
	}
}

// ---- lexer and parser -------------------------------------------------------

type token struct {
	kind rune // 'i' ident, 'n' number, or the punctuation itself
	text string
}

func lex(src string) ([]token, error) {
	var toks []token
	rs := []rune(src)
	for i := 0; i < len(rs); {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == ';' || r == '|' || r == ':' || r == '(' || r == ')':
			toks = append(toks, token{kind: r, text: string(r)})
			i++
		case unicode.IsDigit(r):
			j := i
			for j < len(rs) && unicode.IsDigit(rs[j]) {
				j++
			}
			toks = append(toks, token{kind: 'n', text: string(rs[i:j])})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: 'i', text: string(rs[i:j])})
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q", r)
		}
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty expression")
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{}
	}
	return p.toks[p.pos]
}

func (p *parser) eat(kind rune) (token, error) {
	if p.eof() || p.toks[p.pos].kind != kind {
		return token{}, fmt.Errorf("expected %q at %s", string(kind), p.where())
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

func (p *parser) where() string {
	if p.eof() {
		return "end of input"
	}
	return fmt.Sprintf("%q", p.toks[p.pos].text)
}

func (p *parser) parseSeq() (node, error) {
	first, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	children := []node{first}
	for !p.eof() && p.peek().kind == ';' {
		p.pos++
		next, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		return first, nil
	}
	return seqNode{children: children}, nil
}

func (p *parser) parseTerm() (node, error) {
	first, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	children := []node{first}
	for !p.eof() && p.peek().kind == '|' {
		p.pos++
		next, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		return first, nil
	}
	return selNode{children: children}, nil
}

func (p *parser) parseFactor() (node, error) {
	switch t := p.peek(); t.kind {
	case 'n':
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("restriction bound %q must be a positive integer", t.text)
		}
		if _, err := p.eat(':'); err != nil {
			return nil, err
		}
		if _, err := p.eat('('); err != nil {
			return nil, err
		}
		child, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(')'); err != nil {
			return nil, err
		}
		return restrictNode{n: n, child: child}, nil
	case '(':
		p.pos++
		child, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(')'); err != nil {
			return nil, err
		}
		return child, nil
	case 'i':
		p.pos++
		return nameNode{name: t.text}, nil
	default:
		return nil, fmt.Errorf("expected a procedure name, '(' or 'N:(' at %s", p.where())
	}
}

// Describe renders the compiled counter rules, for debugging and tests.
func (p *Path) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "path %s: %d counters %v\n", p.src, len(p.inits), p.inits)
	for _, proc := range p.procs {
		for _, r := range p.rules[proc] {
			fmt.Fprintf(&b, "  %s: P%v V%v\n", proc, r.pre, r.post)
		}
	}
	return b.String()
}
