package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// TestBadFrameKillsLink sends a structurally invalid frame (unknown kind)
// to a serving node over a raw connection: the node must tear the link
// down — the connection reads EOF — rather than ignore the frame, and the
// node itself must keep serving new connections.
func TestBadFrameKillsLink(t *testing.T) {
	_, addr := startEchoNode(t)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if err := wire.WriteHello(conn); err != nil {
		t.Fatal(err)
	}
	if err := wire.ReadHello(br); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a frame with kind 42 — AppendFrame refuses to build one,
	// so assemble length | crc | payload directly with a valid checksum to
	// prove it is the parser, not the CRC, that rejects it.
	payload := []byte{42, 1} // kind 42, ID 1
	bad := binary.AppendUvarint(nil, uint64(len(payload)))
	bad = binary.LittleEndian.AppendUint32(bad, crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	bad = append(bad, payload...)
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := br.Read(buf); err == nil {
		t.Fatal("link stayed up after malformed frame")
	}

	// A fresh, well-formed connection must still be served.
	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	res, err := rem.Call("Echo", "P", 21)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int) != 42 {
		t.Fatalf("echo = %v, want 42", res[0])
	}
}

// TestGobPeerFailsLoudly is the version-negotiation check: a peer that
// opens the stream with anything but this build's hello — the old gob
// framing, say — must fail the link with ErrVersionSkew before a single
// frame is exchanged, not produce garbage calls.
func TestGobPeerFailsLoudly(t *testing.T) {
	_, addr := startEchoNode(t)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A gob stream opens with a type-definition record, never "ALPW".
	if _, err := conn.Write([]byte{0x2b, 0xff, 0x81, 0x03, 0x01, 0x01, 0x05}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// The node answers with its own hello, then kills the link on ours.
	br := bufio.NewReader(conn)
	if err := wire.ReadHello(br); err != nil {
		t.Fatalf("node did not announce its protocol: %v", err)
	}
	buf := make([]byte, 1)
	if _, err := br.Read(buf); err == nil {
		t.Fatal("link stayed up for a gob-era peer")
	}

	// A dialing link that meets a foreign peer classifies the failure as
	// ErrVersionSkew (alongside ErrLinkClosed for the retry machinery).
	left, right := net.Pipe()
	defer right.Close()
	go func() {
		// Drain the link's own hello first — net.Pipe is unbuffered, so the
		// link's eager hello flush blocks until someone reads it.
		_, _ = right.Read(make([]byte, 64))
		_, _ = right.Write([]byte("NOTALPSWIRE"))
	}()
	l := newLink(left, nil, linkHooks{})
	defer l.close()
	deadline := time.Now().Add(5 * time.Second)
	for !l.isClosed() {
		if time.Now().After(deadline) {
			t.Fatal("link did not die on foreign hello")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.closeReason(); !errors.Is(err, ErrVersionSkew) || !errors.Is(err, ErrLinkClosed) {
		t.Fatalf("close reason %v, want ErrVersionSkew and ErrLinkClosed", err)
	}
}

// corruptingConn flips one bit of the byte at stream offset flipAt on the
// read side — a deterministic stand-in for simnet's probabilistic
// CorruptProb, aimed at a chosen frame position.
type corruptingConn struct {
	net.Conn
	off    int
	flipAt int
}

func (c *corruptingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && c.off <= c.flipAt && c.flipAt < c.off+n {
		p[c.flipAt-c.off] ^= 0x10
	}
	c.off += n
	return n, err
}

// TestCorruptFrameTypedError: a frame corrupted in flight — one flipped
// bit inside the CRC of the first response, carried over a simnet
// connection — must surface to the caller as a typed ErrBadFrame failure,
// promptly. Before the checksummed codec, a flip that still gob-decoded
// was executed as-is and one that did not could stall the stream; now
// detection is certain (docs/FAULTS.md §5) and the link dies loudly.
func TestCorruptFrameTypedError(t *testing.T) {
	obj, err := core.New("Echo",
		core.WithEntry(core.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 8,
			Body: func(inv *core.Invocation) error {
				inv.Return(inv.Param(0).(int) * 2)
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = obj.Close() })
	node := NewNode("srv")
	if err := node.Publish(obj); err != nil {
		t.Fatal(err)
	}
	network := simnet.New(simnet.Config{})
	lis, err := network.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = node.Serve(lis) }()
	defer node.Close()

	conn, err := network.DialFrom("cli", "srv")
	if err != nil {
		t.Fatal(err)
	}
	// Offset 7 sits inside the first response frame's CRC field (after the
	// 5-byte hello and the 1-byte length prefix): the checksum can no
	// longer match its payload, whatever the payload bytes are.
	rem := DialConn(&corruptingConn{Conn: conn, flipAt: 7})
	defer rem.Close()

	done := make(chan error, 1)
	go func() {
		_, err := rem.Call("Echo", "P", 1)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call over a corrupted stream succeeded")
		}
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
		if !errors.Is(err, ErrLinkClosed) {
			t.Fatalf("err = %v, want ErrLinkClosed for the retry machinery", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("corrupted frame hung the caller instead of failing typed")
	}
}

func TestFrameValidate(t *testing.T) {
	good := frame{Kind: frameRequest, ErrKind: errNone}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	badKind := frame{Kind: frameKind(0)}
	if err := badKind.Validate(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero kind: err = %v, want ErrBadFrame", err)
	}
	badErr := frame{Kind: frameResponse, ErrKind: errKind(255)}
	if err := badErr.Validate(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad errKind: err = %v, want ErrBadFrame", err)
	}
	if err := decodeErr("mystery", errKind(77)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("decodeErr unknown kind: err = %v, want ErrBadFrame", err)
	}
}
