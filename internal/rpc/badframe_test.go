package rpc

import (
	"encoding/gob"
	"errors"
	"net"
	"testing"
	"time"
)

// TestBadFrameKillsLink sends a structurally invalid frame (unknown kind)
// to a serving node over a raw connection: the node must tear the link
// down — the connection reads EOF — rather than ignore the frame, and the
// node itself must keep serving new connections.
func TestBadFrameKillsLink(t *testing.T) {
	_, addr := startEchoNode(t)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(&frame{Kind: frameKind(42), ID: 1}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("link stayed up after malformed frame")
	}

	// A fresh, well-formed connection must still be served.
	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	res, err := rem.Call("Echo", "P", 21)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int) != 42 {
		t.Fatalf("echo = %v, want 42", res[0])
	}
}

func TestFrameValidate(t *testing.T) {
	good := frame{Kind: frameRequest, ErrKind: errNone}
	if err := good.validate(); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	badKind := frame{Kind: frameKind(0)}
	if err := badKind.validate(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero kind: err = %v, want ErrBadFrame", err)
	}
	badErr := frame{Kind: frameResponse, ErrKind: errKind(-1)}
	if err := badErr.validate(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad errKind: err = %v, want ErrBadFrame", err)
	}
	if err := decodeErr("mystery", errKind(77)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("decodeErr unknown kind: err = %v, want ErrBadFrame", err)
	}
}
