package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
)

// startEchoNode hosts an object "Echo" with entry "P" (one int param, one
// int result) and returns the node and its address.
func startEchoNode(t *testing.T) (*Node, string) {
	t.Helper()
	obj, err := core.New("Echo",
		core.WithEntry(core.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 8,
			Body: func(inv *core.Invocation) error {
				inv.Return(inv.Param(0).(int) * 2)
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = obj.Close() })

	node := NewNode("alpha")
	if err := node.Publish(obj); err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	return node, addr
}

func TestRemoteCallRoundTrip(t *testing.T) {
	_, addr := startEchoNode(t)
	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	res, err := rem.Call("Echo", "P", 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != 42 {
		t.Fatalf("remote call = %v", res)
	}
}

func TestRemoteObjectHandle(t *testing.T) {
	_, addr := startEchoNode(t)
	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	ro := rem.Object("Echo")
	if ro.Name() != "Echo" {
		t.Fatalf("Name = %q", ro.Name())
	}
	res, err := ro.Call("P", 5)
	if err != nil || res[0] != 10 {
		t.Fatalf("handle call = %v, %v", res, err)
	}
}

func TestUnknownObjectAndEntry(t *testing.T) {
	_, addr := startEchoNode(t)
	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	if _, err := rem.Call("Nope", "P", 1); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("unknown object err = %v", err)
	}
	if _, err := rem.Call("Echo", "Nope", 1); !errors.Is(err, core.ErrUnknownEntry) {
		t.Errorf("unknown entry err = %v (sentinel must survive the wire)", err)
	}
	if _, err := rem.Call("Echo", "P"); !errors.Is(err, core.ErrBadArity) {
		t.Errorf("bad arity err = %v", err)
	}
}

func TestList(t *testing.T) {
	node, addr := startEchoNode(t)
	if got := node.Objects(); len(got) != 1 || got[0] != "Echo" {
		t.Fatalf("node.Objects = %v", got)
	}
	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	names, err := rem.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "Echo" {
		t.Fatalf("List = %v", names)
	}
}

func TestConcurrentRemoteCalls(t *testing.T) {
	_, addr := startEchoNode(t)
	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := rem.Call("Echo", "P", i)
			if err != nil {
				t.Errorf("Call(%d): %v", i, err)
				return
			}
			if res[0] != i*2 {
				t.Errorf("Call(%d) = %v: response cross-talk", i, res[0])
			}
		}(i)
	}
	wg.Wait()
}

func TestMultipleClients(t *testing.T) {
	_, addr := startEchoNode(t)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rem, err := Dial(addr)
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer rem.Close()
			for i := 0; i < 20; i++ {
				v := c*100 + i
				res, err := rem.Call("Echo", "P", v)
				if err != nil || res[0] != v*2 {
					t.Errorf("client %d: Call(%d) = %v, %v", c, v, res, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestChannelToExecutingRemoteProcedure exercises the paper's §1 claim: the
// caller passes a channel to a remote entry call and receives messages from
// the executing procedure while it runs.
func TestChannelToExecutingRemoteProcedure(t *testing.T) {
	obj, err := core.New("Streamer",
		core.WithEntry(core.EntrySpec{Name: "Run", Params: 2, Results: 1,
			Body: func(inv *core.Invocation) error {
				n := inv.Param(0).(int)
				progress, ok := inv.Param(1).(*channel.Chan)
				if !ok {
					return fmt.Errorf("param 1 is %T, want *channel.Chan", inv.Param(1))
				}
				for i := 1; i <= n; i++ {
					if err := progress.Send(i); err != nil {
						return err
					}
				}
				inv.Return("done")
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()

	node := NewNode("beta")
	if err := node.Publish(obj); err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	progress := channel.New("progress")
	ref := rem.PublishChan("progress", progress)
	res, err := rem.Call("Streamer", "Run", 5, ref)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "done" {
		t.Fatalf("result = %v", res)
	}
	deadline := make(chan struct{})
	timer := time.AfterFunc(5*time.Second, func() { close(deadline) })
	defer timer.Stop()
	for want := 1; want <= 5; want++ {
		m, ok := progress.RecvDone(deadline)
		if !ok {
			t.Fatal("progress message lost")
		}
		if m[0] != want {
			t.Fatalf("progress = %v, want %d", m[0], want)
		}
	}
}

func TestClientCloseFailsInflightCalls(t *testing.T) {
	gate := make(chan struct{})
	obj, err := core.New("Slow",
		core.WithEntry(core.EntrySpec{Name: "P", Results: 1,
			Body: func(inv *core.Invocation) error {
				select {
				case <-gate:
				case <-inv.Done():
				}
				inv.Return("late")
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	defer close(gate)

	node := NewNode("gamma")
	if err := node.Publish(obj); err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := rem.Call("Slow", "P")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	rem.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight call survived Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call not failed by Close")
	}
}

func TestCallCtxTimeout(t *testing.T) {
	gate := make(chan struct{})
	obj, err := core.New("Slow",
		core.WithEntry(core.EntrySpec{Name: "P", Results: 1,
			Body: func(inv *core.Invocation) error {
				select {
				case <-gate:
				case <-inv.Done():
				}
				inv.Return("late")
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	defer close(gate)

	node := NewNode("delta")
	if err := node.Publish(obj); err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := rem.CallCtx(ctx, "Slow", "P"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestPublishValidation(t *testing.T) {
	node := NewNode("x")
	defer node.Close()
	obj, err := core.New("A",
		core.WithEntry(core.EntrySpec{Name: "P", Body: func(inv *core.Invocation) error { return nil }}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	if err := node.Publish(obj); err != nil {
		t.Fatal(err)
	}
	if err := node.Publish(obj); err == nil {
		t.Fatal("duplicate publish succeeded")
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	node, _ := startEchoNode(t)
	node.Close()
	node.Close()
}

func TestErrCodec(t *testing.T) {
	tests := []struct {
		err  error
		want error
	}{
		{core.ErrClosed, core.ErrClosed},
		{fmt.Errorf("wrap: %w", core.ErrUnknownEntry), core.ErrUnknownEntry},
		{ErrUnknownObject, ErrUnknownObject},
		{core.ErrBadArity, core.ErrBadArity},
		{errors.New("generic"), nil},
	}
	for _, tt := range tests {
		msg, kind := encodeErr(tt.err)
		back := decodeErr(msg, kind)
		if back == nil {
			t.Fatalf("decodeErr(%v) = nil", tt.err)
		}
		if tt.want != nil && !errors.Is(back, tt.want) {
			t.Errorf("sentinel lost: %v -> %v", tt.err, back)
		}
	}
	if msg, kind := encodeErr(nil); msg != "" || kind != errNone {
		t.Error("encodeErr(nil) not empty")
	}
	if decodeErr("", errNone) != nil {
		t.Error("decodeErr(none) not nil")
	}
}
