package rpc

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
)

// boundedObj builds an object with a single bounded entry "P" whose manager
// accepts nothing until gate is closed, then serves everything.
func boundedObj(t *testing.T, gate chan struct{}) *core.Object {
	t.Helper()
	obj, err := core.New("Bounded",
		core.WithEntry(core.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 4, MaxPending: 1,
			Shed: core.ShedRejectNewest,
			Body: func(inv *core.Invocation) error {
				inv.Return(inv.Param(0))
				return nil
			}}),
		core.WithManager(func(m *core.Mgr) {
			select {
			case <-gate:
			case <-m.Closed():
				return
			}
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, core.Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// TestOverloadCrossesWireTyped: a shed call comes back across the gob wire
// still matching errors.Is(err, core.ErrOverload), and both ends count it.
func TestOverloadCrossesWireTyped(t *testing.T) {
	gate := make(chan struct{})
	obj := boundedObj(t, gate)
	defer obj.Close()
	nodeM := &Metrics{}
	network, _ := startSimNode(t, simnet.Config{}, obj, "Bounded", NodeOptions{Metrics: nodeM})

	// Park one call to fill the MaxPending=1 bound.
	parked, err := dialSim(t, network, "parker")
	if err != nil {
		t.Fatal(err)
	}
	defer parked.Close()
	parkDone := make(chan error, 1)
	go func() {
		_, err := parked.Call("Bounded", "P", "held")
		parkDone <- err
	}()
	waitUntil(t, func() bool {
		st, _ := obj.EntryStats("P")
		return st.Pending == 1
	})

	// Second client with no retries sees the typed overload error.
	cliM := &Metrics{}
	rem, err := dialSimWith(t, network, "c1", DialOptions{Metrics: cliM})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	_, err = rem.Call("Bounded", "P", "shed-me")
	if !errors.Is(err, core.ErrOverload) {
		t.Fatalf("err = %v, want core.ErrOverload across the wire", err)
	}
	if errors.Is(err, core.ErrObjectPoisoned) {
		t.Fatal("overload error must not also match ErrObjectPoisoned")
	}
	if nodeM.Overloads.Value() == 0 {
		t.Error("node Overloads counter not incremented")
	}

	close(gate) // let the parked call finish
	if err := <-parkDone; err != nil {
		t.Fatalf("parked call: %v", err)
	}
}

// TestOverloadRetriedWithFreshSeq: a client retrying an overloaded call
// must not be fed the cached rejection by the at-most-once dedup layer —
// the retry uses a fresh sequence number and succeeds once capacity frees.
func TestOverloadRetriedWithFreshSeq(t *testing.T) {
	gate := make(chan struct{})
	obj := boundedObj(t, gate)
	defer obj.Close()
	nodeM := &Metrics{}
	network, _ := startSimNode(t, simnet.Config{}, obj, "Bounded", NodeOptions{Metrics: nodeM})

	parked, err := dialSim(t, network, "parker")
	if err != nil {
		t.Fatal(err)
	}
	defer parked.Close()
	parkDone := make(chan error, 1)
	go func() {
		_, err := parked.Call("Bounded", "P", "held")
		parkDone <- err
	}()
	waitUntil(t, func() bool {
		st, _ := obj.EntryStats("P")
		return st.Pending == 1
	})

	cliM := &Metrics{}
	rem, err := dialSimWith(t, network, "c1", DialOptions{
		Metrics: cliM,
		Retry:   RetryPolicy{Max: 200, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	// Open the gate shortly after the first rejection so the retry loop
	// has fresh capacity to land in. If the retry reused its seq, the
	// dedup cache would replay the rejection forever and this would fail.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(gate)
	}()
	res, err := rem.Call("Bounded", "P", "eventually")
	if err != nil {
		t.Fatalf("retried call = %v, want success after capacity frees", err)
	}
	if res[0] != "eventually" {
		t.Fatalf("res = %v", res)
	}
	if cliM.Overloads.Value() == 0 {
		t.Error("client Overloads counter not incremented despite shed+retry")
	}
	if err := <-parkDone; err != nil {
		t.Fatalf("parked call: %v", err)
	}
}

// TestPoisonedCrossesWireAndIsNotRetried: a manager panic surfaces to the
// remote caller as core.ErrObjectPoisoned and the client does not burn
// retries on it — poison is terminal.
func TestPoisonedCrossesWireAndIsNotRetried(t *testing.T) {
	obj, err := core.New("Doomed",
		core.WithEntry(core.EntrySpec{Name: "P", Results: 1, Array: 2,
			Body: func(inv *core.Invocation) error {
				inv.Return(1)
				return nil
			}}),
		core.WithManager(func(m *core.Mgr) {
			if _, err := m.Accept("P"); err != nil {
				return
			}
			panic("die")
		}, core.Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	nodeM := &Metrics{}
	network, _ := startSimNode(t, simnet.Config{}, obj, "Doomed", NodeOptions{Metrics: nodeM})

	cliM := &Metrics{}
	rem, err := dialSimWith(t, network, "c1", DialOptions{
		Metrics: cliM,
		Retry:   RetryPolicy{Max: 10, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	_, err = rem.Call("Doomed", "P")
	if !errors.Is(err, core.ErrObjectPoisoned) {
		t.Fatalf("err = %v, want core.ErrObjectPoisoned across the wire", err)
	}
	if errors.Is(err, core.ErrOverload) {
		t.Fatal("poison error must not also match ErrOverload")
	}
	if n := cliM.Retries.Value(); n != 0 {
		t.Errorf("client retried a poisoned call %d times; poison is terminal", n)
	}
	if n := cliM.Overloads.Value(); n != 0 {
		t.Errorf("client counted %d overloads on a poison error", n)
	}
	if nodeM.Poisons.Value() == 0 {
		t.Error("node Poisons counter not incremented")
	}

	// A second call fails the same way, straight from admission.
	if _, err := rem.Call("Doomed", "P"); !errors.Is(err, core.ErrObjectPoisoned) {
		t.Fatalf("second call err = %v", err)
	}
}

// dialSim dials the "srv" node from a fresh simnet endpoint.
func dialSim(t *testing.T, network *simnet.Network, name string) (*Remote, error) {
	t.Helper()
	return dialSimWith(t, network, name, DialOptions{})
}

func dialSimWith(t *testing.T, network *simnet.Network, name string, opts DialOptions) (*Remote, error) {
	t.Helper()
	conn, err := network.DialFrom(name, "srv")
	if err != nil {
		return nil, err
	}
	if opts.ClientID == "" {
		opts.ClientID = name
	}
	if opts.Redial == nil {
		opts.Redial = func() (net.Conn, error) { return network.DialFrom(name, "srv") }
	}
	return DialConnWith(conn, opts), nil
}

// waitUntil polls cond for up to five seconds.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
