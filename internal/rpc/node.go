package rpc

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"repro/internal/core"
)

// Node hosts ALPS objects behind a listener, making their entry procedures
// callable as remote procedure calls.
type Node struct {
	name string

	mu      sync.Mutex
	objects map[string]callable
	links   map[*link]struct{}
	lis     net.Listener
	closed  bool

	wg sync.WaitGroup
}

// NewNode creates a node.
func NewNode(name string) *Node {
	registerDefaults()
	return &Node{
		name:    name,
		objects: make(map[string]callable),
		links:   make(map[*link]struct{}),
	}
}

// Name reports the node's name.
func (n *Node) Name() string { return n.name }

// Publish makes an object callable by remote clients under its object name.
func (n *Node) Publish(obj *core.Object) error {
	return n.publish(obj.Name(), obj)
}

// PublishAs makes any callable available under an explicit name (used for
// wrapped objects and in tests).
func (n *Node) PublishAs(name string, obj callable) error {
	return n.publish(name, obj)
}

func (n *Node) publish(name string, obj callable) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return fmt.Errorf("node %s: %w", n.name, ErrLinkClosed)
	}
	if _, dup := n.objects[name]; dup {
		return fmt.Errorf("node %s: object %q already published", n.name, name)
	}
	n.objects[name] = obj
	return nil
}

// Objects reports the published object names, sorted.
func (n *Node) Objects() []string {
	return n.names()
}

// Serve accepts connections on lis until the node closes. It returns the
// accept error (net.ErrClosed after Close). Call it on its own goroutine.
func (n *Node) Serve(lis net.Listener) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = lis.Close()
		return fmt.Errorf("node %s: %w", n.name, ErrLinkClosed)
	}
	n.lis = lis
	n.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("node %s: accept: %w", n.name, err)
		}
		l := newLink(conn, n)
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			l.close()
			continue
		}
		n.links[l] = struct{}{}
		n.mu.Unlock()
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:7100") and serves.
// The returned address is the bound address (useful with port 0).
func (n *Node) ListenAndServe(addr string) (string, error) {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return "", fmt.Errorf("node %s: %w", n.name, ErrLinkClosed)
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("node %s: %w", n.name, err)
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		_ = n.Serve(lis)
	}()
	return lis.Addr().String(), nil
}

// Close stops accepting connections, closes existing links, and waits for
// outstanding request handlers.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return
	}
	n.closed = true
	lis := n.lis
	links := make([]*link, 0, len(n.links))
	for l := range n.links {
		links = append(links, l)
	}
	n.mu.Unlock()

	if lis != nil {
		_ = lis.Close()
	}
	for _, l := range links {
		l.close()
	}
	n.wg.Wait()
}

// lookup implements objectResolver.
func (n *Node) lookup(name string) (callable, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	obj, ok := n.objects[name]
	return obj, ok
}

// names implements objectResolver.
func (n *Node) names() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.objects))
	for name := range n.objects {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
