package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// Node hosts ALPS objects behind a listener, making their entry procedures
// callable as remote procedure calls. It keeps a bounded at-most-once
// cache so retried client calls replay results instead of re-executing
// entry bodies, and Close can drain in-flight invocations gracefully
// (see NodeOptions and docs/FAULTS.md).
type Node struct {
	name  string
	opts  NodeOptions
	dedup *dedupCache

	// ctx outlives individual links: dedup-tracked executions run under it
	// so a retry after a connection failure can replay their results. It
	// is cancelled at Close, after the drain grace.
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	objects map[string]callable
	links   map[*link]struct{}
	lis     net.Listener
	closed  bool

	// objSnap is a copy-on-write snapshot of objects, rebuilt by publish.
	// lookup runs once per request and reads the snapshot without taking
	// n.mu, so the serve hot path never contends with accept/publish.
	objSnap atomic.Pointer[map[string]callable]

	draining atomic.Bool
	inflight atomic.Int64

	wg sync.WaitGroup
}

// NewNode creates a node with default options.
func NewNode(name string) *Node {
	return NewNodeWith(name, NodeOptions{})
}

// NewNodeWith creates a node with explicit resilience options.
func NewNodeWith(name string, opts NodeOptions) *Node {
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		name:    name,
		opts:    opts,
		dedup:   newDedupCache(opts.DedupCap),
		ctx:     ctx,
		cancel:  cancel,
		objects: make(map[string]callable),
		links:   make(map[*link]struct{}),
	}
	if st := opts.Durable; st != nil {
		// At-most-once across process death: the ledger the previous
		// incarnation synced before acknowledging becomes this cache's
		// starting contents, so a retried (client, seq) is answered from
		// disk instead of re-executing.
		for _, a := range st.RecoveredAcks() {
			n.dedup.preload(a.Client, a.Seq, a.Results, a.ErrMsg, errKind(a.ErrKind))
		}
		st.SetDedupDump(n.dedupDump)
	}
	return n
}

// dedupDump snapshots the cache's completed entries for inclusion in a
// durability checkpoint, in completion order.
func (n *Node) dedupDump() []wal.AckEntry { return n.dedup.dump() }

// Name reports the node's name.
func (n *Node) Name() string { return n.name }

// Publish makes an object callable by remote clients under its object name.
func (n *Node) Publish(obj *core.Object) error {
	return n.publish(obj.Name(), obj)
}

// Callable is anything that can service entry calls: a *core.Object, a
// shard.Group, or any wrapper with the same call surface.
type Callable interface {
	CallCtx(ctx context.Context, entry string, params ...any) ([]any, error)
}

// PublishCallable makes any Callable available to remote clients under an
// explicit name. This is how a shard.Group — N replica objects behind one
// router — is hosted under a single published name.
func (n *Node) PublishCallable(name string, c Callable) error {
	if c == nil {
		return fmt.Errorf("node %s: publish %q: nil callable", n.name, name)
	}
	return n.publish(name, c)
}

// PublishAs makes any callable available under an explicit name (used for
// wrapped objects and in tests).
func (n *Node) PublishAs(name string, obj callable) error {
	return n.publish(name, obj)
}

func (n *Node) publish(name string, obj callable) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return fmt.Errorf("node %s: %w", n.name, ErrLinkClosed)
	}
	if _, dup := n.objects[name]; dup {
		return fmt.Errorf("node %s: object %q already published", n.name, name)
	}
	n.objects[name] = obj
	snap := make(map[string]callable, len(n.objects))
	for k, v := range n.objects {
		snap[k] = v
	}
	n.objSnap.Store(&snap)
	return nil
}

// Objects reports the published object names, sorted.
func (n *Node) Objects() []string {
	return n.names()
}

// hooks builds the link callbacks wiring this node's dedup cache, drain
// gate and observation sinks into each accepted connection.
func (n *Node) hooks() linkHooks {
	replayWait := n.opts.ReplayWait
	switch {
	case replayWait == 0:
		replayWait = 30 * time.Second
	case replayWait < 0:
		replayWait = 0 // explicit "wait forever"
	}
	return linkHooks{
		dedup:      n.dedup,
		serveCtx:   n.ctx,
		begin:      n.beginServe,
		end:        n.endServe,
		metrics:    n.opts.Metrics,
		rec:        n.opts.Trace,
		durable:    n.opts.Durable,
		replayWait: replayWait,
		flushGrace: n.opts.FlushGrace,
	}
}

func (n *Node) beginServe() bool {
	if n.draining.Load() {
		return false
	}
	n.inflight.Add(1)
	return true
}

func (n *Node) endServe() { n.inflight.Add(-1) }

// Serve accepts connections on lis until the node closes. It returns the
// accept error (net.ErrClosed after Close). Call it on its own goroutine.
func (n *Node) Serve(lis net.Listener) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = lis.Close()
		return fmt.Errorf("node %s: %w", n.name, ErrLinkClosed)
	}
	n.lis = lis
	n.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("node %s: accept: %w", n.name, err)
		}
		l := newLink(conn, n, n.hooks())
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			l.close()
			continue
		}
		n.links[l] = struct{}{}
		n.mu.Unlock()
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:7100") and serves.
// The returned address is the bound address (useful with port 0).
func (n *Node) ListenAndServe(addr string) (string, error) {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return "", fmt.Errorf("node %s: %w", n.name, ErrLinkClosed)
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("node %s: %w", n.name, err)
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		_ = n.Serve(lis)
	}()
	return lis.Addr().String(), nil
}

// Close stops accepting connections and new requests, lets in-flight
// invocations finish within the configured drain grace, then cancels the
// stragglers, closes the links and waits for outstanding handlers.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return
	}
	n.closed = true
	n.draining.Store(true)
	lis := n.lis
	links := make([]*link, 0, len(n.links))
	for l := range n.links {
		links = append(links, l)
	}
	n.mu.Unlock()

	if lis != nil {
		_ = lis.Close()
	}
	if grace := n.opts.DrainGrace; grace > 0 {
		deadline := time.Now().Add(grace)
		for n.inflight.Load() > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	n.cancel()
	for _, l := range links {
		l.close()
	}
	n.wg.Wait()
}

// Inflight reports how many invocations are currently being served.
func (n *Node) Inflight() int64 { return n.inflight.Load() }

// lookup implements objectResolver.
func (n *Node) lookup(name string) (callable, bool) {
	snap := n.objSnap.Load()
	if snap == nil {
		return nil, false
	}
	obj, ok := (*snap)[name]
	return obj, ok
}

// names implements objectResolver.
func (n *Node) names() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.objects))
	for name := range n.objects {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
