package rpc

import (
	"testing"

	"repro/internal/core"
)

// Job is a user-defined parameter type carried through gob.
type Job struct {
	Name  string
	Pages int
	Tags  []string
}

func TestUserDefinedTypesOverTheWire(t *testing.T) {
	Register(Job{})

	obj, err := core.New("Printer",
		core.WithEntry(core.EntrySpec{Name: "Submit", Params: 1, Results: 1,
			Body: func(inv *core.Invocation) error {
				job, ok := inv.Param(0).(Job)
				if !ok {
					t.Errorf("param decoded as %T", inv.Param(0))
					inv.Return(Job{})
					return nil
				}
				job.Tags = append(job.Tags, "printed")
				inv.Return(job)
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()

	node := NewNode("types")
	if err := node.Publish(obj); err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	sent := Job{Name: "thesis.ps", Pages: 142, Tags: []string{"duplex"}}
	res, err := rem.Call("Printer", "Submit", sent)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res[0].(Job)
	if !ok {
		t.Fatalf("result decoded as %T", res[0])
	}
	if got.Name != sent.Name || got.Pages != sent.Pages {
		t.Fatalf("round trip mangled the struct: %+v", got)
	}
	if len(got.Tags) != 2 || got.Tags[1] != "printed" {
		t.Fatalf("Tags = %v", got.Tags)
	}
}

func TestCompositeBuiltinsOverTheWire(t *testing.T) {
	obj, err := core.New("EchoAny",
		core.WithEntry(core.EntrySpec{Name: "P", Params: 1, Results: 1,
			Body: func(inv *core.Invocation) error {
				inv.Return(inv.Param(0))
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	node := NewNode("builtins")
	if err := node.Publish(obj); err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	vals := []any{
		"string",
		42,
		3.14,
		true,
		[]byte{1, 2, 3},
		[]any{"nested", 1},
		map[string]any{"k": "v"},
	}
	for _, v := range vals {
		res, err := rem.Call("EchoAny", "P", v)
		if err != nil {
			t.Errorf("echo %T: %v", v, err)
			continue
		}
		switch want := v.(type) {
		case []byte:
			got, ok := res[0].([]byte)
			if !ok || string(got) != string(want) {
				t.Errorf("echo []byte = %v", res[0])
			}
		case []any:
			got, ok := res[0].([]any)
			if !ok || len(got) != len(want) {
				t.Errorf("echo []any = %v", res[0])
			}
		case map[string]any:
			got, ok := res[0].(map[string]any)
			if !ok || got["k"] != "v" {
				t.Errorf("echo map = %v", res[0])
			}
		default:
			if res[0] != v {
				t.Errorf("echo %T: got %v, want %v", v, res[0], v)
			}
		}
	}
}
