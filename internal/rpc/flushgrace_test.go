package rpc

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/core"
)

// wedgeLink builds a link whose peer never reads: the hello's combiner
// blocks inside conn.Write, and one more queued frame leaves the write
// queue provably non-empty. Returns the link and the peer end (closed by
// the caller).
func wedgeLink(t *testing.T, grace time.Duration) (*link, net.Conn) {
	t.Helper()
	c1, c2 := net.Pipe()
	l := newLink(c1, nil, linkHooks{flushGrace: grace})
	// Wait for the hello flusher to become the combiner (stuck in Write).
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.wmu.Lock()
		writing := l.writing
		l.wmu.Unlock()
		if writing {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("combiner never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue a frame behind the wedged combiner; with writing=true the send
	// returns immediately, leaving wbuf non-empty for flushPending.
	if err := l.send(&frame{Kind: frameResponse, ID: 1}); err != nil {
		t.Fatalf("send: %v", err)
	}
	l.wmu.Lock()
	queued := len(l.wbuf)
	l.wmu.Unlock()
	if queued == 0 {
		t.Fatal("frame was not queued")
	}
	return l, c2
}

// TestFlushGraceBounds pins the close-time flush bound to its
// configuration: a short grace waits about that long for the queue to
// drain, a negative grace skips the wait entirely. Before FlushGrace
// existed the bound was a hardcoded 1s — a node failing over on purpose
// had to donate a full second to every peer that stopped reading.
func TestFlushGraceBounds(t *testing.T) {
	t.Run("short", func(t *testing.T) {
		l, c2 := wedgeLink(t, 80*time.Millisecond)
		defer c2.Close()
		start := time.Now()
		l.close()
		elapsed := time.Since(start)
		if elapsed < 60*time.Millisecond {
			t.Fatalf("close returned in %v; expected to wait ~80ms for the flush grace", elapsed)
		}
		if elapsed > 700*time.Millisecond {
			t.Fatalf("close took %v; the 80ms grace did not bound the flush wait", elapsed)
		}
	})
	t.Run("negative-skips-wait", func(t *testing.T) {
		l, c2 := wedgeLink(t, -1)
		defer c2.Close()
		start := time.Now()
		l.close()
		if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
			t.Fatalf("close took %v with negative grace; expected immediate teardown", elapsed)
		}
	})
	t.Run("zero-means-default", func(t *testing.T) {
		// The zero value must reproduce the classic 1s bound, so existing
		// nodes keep their behaviour: close must NOT return before a
		// substantial fraction of that second has passed.
		l, c2 := wedgeLink(t, 0)
		defer c2.Close()
		start := time.Now()
		l.close()
		elapsed := time.Since(start)
		if elapsed < 700*time.Millisecond {
			t.Fatalf("close returned in %v with zero grace; expected the 1s default bound", elapsed)
		}
	})
}

// TestNodeFlushGraceOption verifies the option reaches accepted links: a
// node with a negative FlushGrace closes promptly even while a wedged peer
// holds its write queue hostage.
func TestNodeFlushGraceOption(t *testing.T) {
	n := NewNodeWith("grace", NodeOptions{FlushGrace: -1})
	addr, err := n.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A raw TCP peer that completes no hello and reads nothing: the node's
	// link queues its hello and waits on the peer forever.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(20 * time.Millisecond) // let the accept loop register the link
	start := time.Now()
	n.Close()
	if elapsed := time.Since(start); elapsed > 800*time.Millisecond {
		t.Fatalf("Close took %v; negative FlushGrace should skip the flush wait", elapsed)
	}
}

// TestSessionTableRoundTrip covers the exported session surface the
// replication layer builds on: record/lookup with sentinel preservation,
// dump/load rebuilding an identical table, FIFO eviction.
func TestSessionTableRoundTrip(t *testing.T) {
	st := NewSessionTable(4)
	st.Record("c1", 1, []any{"v1", 7}, nil)
	st.Record("c1", 2, nil, core.ErrOverload)

	if _, _, ok := st.Lookup("c1", 3); ok {
		t.Fatal("lookup of unrecorded seq succeeded")
	}
	res, err, ok := st.Lookup("c1", 1)
	if !ok || err != nil || len(res) != 2 || res[0] != "v1" {
		t.Fatalf("lookup(c1,1) = %v, %v, %v", res, err, ok)
	}
	if _, err, ok := st.Lookup("c1", 2); !ok || !errors.Is(err, core.ErrOverload) {
		t.Fatalf("recorded error lost sentinel identity: %v (ok=%v)", err, ok)
	}

	// Dump/Load must rebuild an equivalent table — the rejoin path.
	st2 := NewSessionTable(4)
	st2.Load(st.Dump())
	if st2.Len() != st.Len() {
		t.Fatalf("rebuilt table has %d entries, want %d", st2.Len(), st.Len())
	}
	if _, err, ok := st2.Lookup("c1", 2); !ok || !errors.Is(err, core.ErrOverload) {
		t.Fatalf("rebuilt table lost entry: %v (ok=%v)", err, ok)
	}

	// FIFO eviction at capacity: seqs 1..6 into a table of 4 keeps 3..6.
	for seq := uint64(3); seq <= 6; seq++ {
		st.Record("c1", seq, []any{seq}, nil)
	}
	if _, _, ok := st.Lookup("c1", 1); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	if _, _, ok := st.Lookup("c1", 6); !ok {
		t.Fatal("newest entry missing")
	}
}
