package rpc

import "sync"

// dedupKey identifies a logical call across retries and reconnects.
type dedupKey struct {
	client string
	seq    uint64
}

// dedupEntry tracks one logical call: in flight until done is closed,
// then holding the response for replay to duplicate requests.
type dedupEntry struct {
	done    chan struct{}
	results []any
	errMsg  string
	errKind errKind
	// lsn is the durable ack record's log position (0 when the node has no
	// durability layer, the entry is not journaled, or the response was
	// preloaded from disk and is already durable). Written by the primary
	// before done closes; every responder syncs through it before sending.
	lsn uint64
}

// dedupCache is a node's bounded at-most-once table. The first request
// for a (client, seq) pair executes; duplicates — retries whose original
// lost its response frame, or whose response is still being computed —
// wait for the entry and replay its result instead of re-running the
// entry body. Completed entries are evicted FIFO once the cache exceeds
// its capacity; in-flight entries are never evicted.
type dedupCache struct {
	mu      sync.Mutex
	cap     int
	entries map[dedupKey]*dedupEntry
	order   []dedupKey // completion order, for FIFO eviction
}

func newDedupCache(capacity int) *dedupCache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &dedupCache{cap: capacity, entries: make(map[dedupKey]*dedupEntry)}
}

// begin returns the entry for key and whether the caller is the primary
// executor (first arrival) rather than a duplicate.
func (d *dedupCache) begin(key dedupKey) (*dedupEntry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[key]; ok {
		return e, false
	}
	e := &dedupEntry{done: make(chan struct{})}
	d.entries[key] = e
	return e, true
}

// complete records the response, releases waiting duplicates, and evicts
// the oldest completed entries beyond capacity.
func (d *dedupCache) complete(key dedupKey, e *dedupEntry, results []any, errMsg string, kind errKind) {
	e.results = results
	e.errMsg = errMsg
	e.errKind = kind
	close(e.done)
	d.mu.Lock()
	d.order = append(d.order, key)
	for len(d.order) > d.cap {
		delete(d.entries, d.order[0])
		d.order = d.order[1:]
	}
	d.mu.Unlock()
}

// preload seeds a completed entry recovered from the durability layer, so
// a (client, seq) retried across a node restart replays its on-disk
// response instead of re-executing. Recovered entries arrive snapshot
// table first, then log acks in LSN order; a later entry for the same key
// supersedes the earlier response. Capacity eviction applies as usual.
func (d *dedupCache) preload(client string, seq uint64, results []any, errMsg string, kind errKind) {
	key := dedupKey{client, seq}
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[key]; ok {
		e.results, e.errMsg, e.errKind = results, errMsg, kind
		return
	}
	e := &dedupEntry{done: make(chan struct{}), results: results, errMsg: errMsg, errKind: kind}
	close(e.done)
	d.entries[key] = e
	d.order = append(d.order, key)
	for len(d.order) > d.cap {
		delete(d.entries, d.order[0])
		d.order = d.order[1:]
	}
}

// len reports how many entries (in-flight + completed) are tracked.
func (d *dedupCache) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}
