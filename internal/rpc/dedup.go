package rpc

import (
	"sync"
	"sync/atomic"
)

// dedupKey identifies a logical call across retries and reconnects.
type dedupKey struct {
	client string
	seq    uint64
}

// dedupEntry tracks one logical call: in flight until complete, then
// holding the response for replay to duplicate requests. The completion
// signal is an atomic flag, not a channel: duplicates that need to block
// are rare (a retry racing its primary), so the channel is created lazily
// by waitCh and the common path pays one atomic store instead of a
// channel allocation and close per request.
type dedupEntry struct {
	state   atomic.Uint32 // 0 = in flight, 1 = complete
	done    chan struct{} // lazily created for blocked duplicates; guarded by the cache mutex
	results []any
	errMsg  string
	errKind errKind
	// lsn is the durable ack record's log position (0 when the node has no
	// durability layer, the entry is not journaled, or the response was
	// preloaded from disk and is already durable). Written by the primary
	// before done closes; every responder syncs through it before sending.
	lsn uint64
}

// dedupCache is a node's bounded at-most-once table. The first request
// for a (client, seq) pair executes; duplicates — retries whose original
// lost its response frame, or whose response is still being computed —
// wait for the entry and replay its result instead of re-running the
// entry body. Completed entries are evicted FIFO once the cache exceeds
// its capacity; in-flight entries are never evicted.
type dedupCache struct {
	mu      sync.Mutex
	cap     int
	entries map[dedupKey]*dedupEntry
	order   []dedupKey // completion order, for FIFO eviction
}

func newDedupCache(capacity int) *dedupCache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &dedupCache{cap: capacity, entries: make(map[dedupKey]*dedupEntry)}
}

// completed reports whether the entry's response is recorded. The
// results fields are safe to read once this returns true.
func (e *dedupEntry) completed() bool { return e.state.Load() == 1 }

// closedChan is the ready-made wait channel for already-completed
// entries.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// begin returns the entry for key and whether the caller is the primary
// executor (first arrival) rather than a duplicate.
func (d *dedupCache) begin(key dedupKey) (*dedupEntry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[key]; ok {
		return e, false
	}
	e := &dedupEntry{}
	d.entries[key] = e
	return e, true
}

// waitCh returns a channel that is closed once e completes. Must not be
// called with the cache mutex held.
func (d *dedupCache) waitCh(e *dedupEntry) <-chan struct{} {
	if e.completed() {
		return closedChan
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Re-check under the lock: complete flips state inside this same
	// critical section, so either we see it completed here or complete
	// will see (and close) the channel we create.
	if e.completed() {
		return closedChan
	}
	if e.done == nil {
		e.done = make(chan struct{})
	}
	return e.done
}

// complete records the response, releases waiting duplicates, and evicts
// the oldest completed entries beyond capacity.
func (d *dedupCache) complete(key dedupKey, e *dedupEntry, results []any, errMsg string, kind errKind) {
	e.results = results
	e.errMsg = errMsg
	e.errKind = kind
	d.mu.Lock()
	e.state.Store(1)
	if e.done != nil {
		close(e.done)
	}
	d.order = append(d.order, key)
	for len(d.order) > d.cap {
		delete(d.entries, d.order[0])
		d.order = d.order[1:]
	}
	d.mu.Unlock()
}

// forget releases waiting duplicates with the given response, then drops
// the entry so future arrivals of the same (client, seq) re-execute. Used
// for retryable routing outcomes: a follower's not-leader rejection must
// not be pinned as "the" response for a call the client will retry — same
// seq — against the next leader. Caching it would poison every retry with
// a replayed rejection and the call could never land anywhere.
func (d *dedupCache) forget(key dedupKey, e *dedupEntry, results []any, errMsg string, kind errKind) {
	e.results = results
	e.errMsg = errMsg
	e.errKind = kind
	d.mu.Lock()
	e.state.Store(1)
	if e.done != nil {
		close(e.done)
	}
	if d.entries[key] == e {
		delete(d.entries, key)
	}
	d.mu.Unlock()
}

// preload seeds a completed entry recovered from the durability layer, so
// a (client, seq) retried across a node restart replays its on-disk
// response instead of re-executing. Recovered entries arrive snapshot
// table first, then log acks in LSN order; a later entry for the same key
// supersedes the earlier response. Capacity eviction applies as usual.
func (d *dedupCache) preload(client string, seq uint64, results []any, errMsg string, kind errKind) {
	key := dedupKey{client, seq}
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[key]; ok {
		e.results, e.errMsg, e.errKind = results, errMsg, kind
		return
	}
	e := &dedupEntry{results: results, errMsg: errMsg, errKind: kind}
	e.state.Store(1)
	d.entries[key] = e
	d.order = append(d.order, key)
	for len(d.order) > d.cap {
		delete(d.entries, d.order[0])
		d.order = d.order[1:]
	}
}

// len reports how many entries (in-flight + completed) are tracked.
func (d *dedupCache) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}
