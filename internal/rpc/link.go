package rpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/wire"
)

// framePool recycles frame structs on the decode path; the wire decoder
// fully overwrites a frame before returning it, so recycling cannot leak
// values between messages.
var framePool = sync.Pool{New: func() any { return new(frame) }}

func getFrame() *frame {
	f := framePool.Get().(*frame)
	*f = frame{}
	return f
}

func putFrame(f *frame) { framePool.Put(f) }

// respChPool recycles the per-call response channels. A channel is returned
// only after its pending-table entry is deleted and the buffer drained, so a
// recycled channel can never deliver a stale response to a later call.
var respChPool = sync.Pool{New: func() any { return make(chan frame, 1) }}

// maxQueued bounds the encoded bytes waiting for the write loop. Senders
// crossing it block until the writer drains — backpressure instead of
// unbounded buffering when the peer reads slowly.
const maxQueued = 256 << 10

// readBufSize is the read-side bufio buffer. Batched writes arrive as
// batched reads, so one syscall fills many frames' worth.
const readBufSize = 64 << 10

// objectResolver resolves object names to callable objects (the node's
// registry on the serving side; empty on pure clients).
type objectResolver interface {
	lookup(name string) (callable, bool)
	names() []string
}

// callable is the subset of core.Object the link needs (an interface so
// tests can stub it).
type callable interface {
	CallCtx(ctx context.Context, entry string, params ...any) ([]any, error)
}

// asyncCallable is the optional fast-path surface of a published object:
// core.Object implements it for plain (non-intercepted, unbounded,
// unjournaled) entries. The read loop submits such calls directly and the
// response is sent from the object's completion dispatcher — no serve
// goroutine spawned, no goroutine parked per in-flight request.
type asyncCallable interface {
	CallAsync(entry string, params []any, done func([]any, error)) bool
}

// linkHooks are the owner-supplied callbacks of a link: a node wires in
// its dedup cache, drain gate and node-lifetime execution context; a
// client wires in its metrics and trace sinks. The zero value is valid
// (no dedup, no drain gate, no observation).
type linkHooks struct {
	dedup      *dedupCache     // at-most-once table (nodes only)
	serveCtx   context.Context // execution ctx for dedup-tracked calls (node lifetime)
	begin      func() bool     // drain gate; false rejects the request
	end        func()          // paired with a successful begin
	metrics    *Metrics        // nil-safe counters
	rec        *trace.Recorder // nil-safe event sink
	durable    *wal.Store      // durability store (nodes with -data-dir only)
	replayWait time.Duration   // duplicate wait bound; 0 = unbounded
	flushGrace time.Duration   // graceful-close flush bound; 0 = 1s default, < 0 = none
}

// link is one end of a connection: it can issue requests, serve requests
// (when it has a resolver), and route channel messages both ways. Frames
// are wire-codec binary over a version-negotiated stream; many calls ride
// the link concurrently via the pending table, and writers coalesce their
// frames into batched flushes.
type link struct {
	conn  net.Conn
	res   objectResolver
	hooks linkHooks

	// table is this link's immutable snapshot of the registered user types.
	// Snapshotting at creation means concurrent Register calls can never
	// race the encoder or change the meaning of frames in flight.
	table *wire.TypeTable

	// The write path is a combining queue — the group-commit discipline
	// the WAL and the manager mailbox already proved, without a dedicated
	// writer goroutine. Senders encode into pooled buffers OUTSIDE any
	// lock (the binary codec is stateless, unlike the gob stream) and
	// append the framed bytes to wbuf under wmu. The first sender to find
	// no combiner active becomes it: it swaps wbuf out and commits it with
	// one conn.Write, looping until the queue is empty. Frames appended
	// while its syscall is in flight all ride the next one, so batch size
	// adapts to load with no latency timer and no handoff hop: an idle
	// link writes a lone frame synchronously, a saturated link coalesces
	// dozens of frames per syscall.
	wmu      sync.Mutex
	wcond    *sync.Cond // backpressure: senders wait while wbuf > maxQueued
	wbuf     []byte     // encoded frames awaiting the combiner
	wscratch []byte     // combiner's swap buffer (alternates with wbuf)
	writing  bool       // a combiner is draining the queue

	mu       sync.Mutex
	pending  map[uint64]chan frame
	chans    map[string]*channel.Chan // locally published channels
	proxies  map[string]*channel.Chan // outbound proxies for received ChanRefs
	closed   bool
	closeErr error

	nextID  atomic.Uint64
	nextRef atomic.Uint64
	done    chan struct{}
	wg      sync.WaitGroup

	// ctx is cancelled at shutdown so served calls still waiting to be
	// accepted by a remote object's manager are withdrawn.
	ctx    context.Context
	cancel context.CancelFunc
}

func newLink(conn net.Conn, res objectResolver, hooks linkHooks) *link {
	ctx, cancel := context.WithCancel(context.Background())
	l := &link{
		conn:    conn,
		res:     res,
		hooks:   hooks,
		table:   wire.DefaultTable.Snapshot(),
		pending: make(map[uint64]chan frame),
		chans:   make(map[string]*channel.Chan),
		proxies: make(map[string]*channel.Chan),
		done:    make(chan struct{}),
		ctx:     ctx,
		cancel:  cancel,
	}
	l.wcond = sync.NewCond(&l.wmu)
	hooks.rec.Record("", conn.RemoteAddr().String(), -1, 0, trace.LinkUp)
	// Announce the protocol as the first bytes on the queue: both sides
	// read their peer's hello before decoding frames, and queueing it
	// ahead of any frame keeps the write loop the only writer.
	hb := make([]byte, 0, 8)
	if err := wire.WriteHello((*sliceWriter)(&hb)); err != nil {
		l.shutdown(fmt.Errorf("rpc: hello: %v: %w", err, ErrLinkClosed))
	}
	l.wbuf = hb
	// Flush the hello eagerly even if no frame ever follows: both sides
	// read their peer's banner before decoding frames, and a gob-era or
	// foreign peer should see our protocol announced before we kill its
	// connection.
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		l.flushQueued()
	}()
	l.wg.Add(1)
	go l.readLoop()
	return l
}

// sliceWriter adapts an append target to io.Writer for WriteHello.
type sliceWriter []byte

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

// send encodes one frame, queues it, and drains the queue if no combiner
// is active (see the wbuf comment on the link struct).
//
// Two failure classes, deliberately distinct: an ENCODE failure
// (unsupported value type) happens before any byte is committed, so it is
// returned to the caller and the link survives; a WRITE failure tears the
// whole link down — the combiner that hits it reports it, senders whose
// frames it was carrying observe it through l.done.
func (l *link) send(f *frame) error {
	buf := wire.GetBuf()
	b, err := wire.AppendFrame(*buf, f, l.table)
	if err != nil {
		wire.PutBuf(buf)
		return err
	}
	*buf = b

	l.wmu.Lock()
	for len(l.wbuf) >= maxQueued && l.writing && !l.closedLocked() {
		l.wcond.Wait()
	}
	if l.closedLocked() {
		l.wmu.Unlock()
		wire.PutBuf(buf)
		return l.closeReason()
	}
	l.wbuf = append(l.wbuf, b...)
	if m := l.hooks.metrics; m != nil {
		m.FramesSent.Inc()
	}
	if l.writing {
		// An active combiner will carry these bytes in its next batch.
		l.wmu.Unlock()
		wire.PutBuf(buf)
		return nil
	}
	err = l.drainLocked()
	wire.PutBuf(buf)
	return err
}

// flushQueued drains the write queue if no combiner is active — used to
// push the hello out at link creation.
func (l *link) flushQueued() {
	l.wmu.Lock()
	if l.writing || l.closedLocked() {
		l.wmu.Unlock()
		return
	}
	_ = l.drainLocked()
}

// drainLocked makes the caller the combiner: it repeatedly swaps wbuf out
// and commits it with one conn.Write outside the lock, until the queue is
// empty. Called with wmu held; returns with it released.
func (l *link) drainLocked() error {
	l.writing = true
	for len(l.wbuf) > 0 {
		// Yield before swapping: senders already runnable get to append
		// their frames to this batch instead of starting the next one.
		// On a loaded box (or a single core) this turns lock-step call
		// schedules into multi-frame syscalls; on an idle link it costs
		// one scheduler round trip.
		l.wmu.Unlock()
		runtime.Gosched()
		l.wmu.Lock()
		batch := l.wbuf
		if cap(l.wscratch) > 1<<20 {
			// Don't let one burst pin a huge buffer forever.
			l.wscratch = nil
		}
		l.wbuf = l.wscratch[:0]
		l.wmu.Unlock()
		l.wcond.Broadcast()

		_, err := l.conn.Write(batch)
		if err != nil {
			// A failed write may have left a partial frame on the wire;
			// the stream cannot resynchronize, so the whole link is dead.
			err = fmt.Errorf("rpc: write: %v: %w", err, ErrLinkClosed)
			l.shutdown(err)
			l.wmu.Lock()
			l.writing = false
			l.wmu.Unlock()
			return err
		}
		if m := l.hooks.metrics; m != nil {
			// Frames-per-flush = FramesSent / Flushes; mean batch size =
			// BytesSent / Flushes.
			m.Flushes.Inc()
			m.BytesSent.Add(uint64(len(batch)))
		}
		l.wmu.Lock()
		l.wscratch = batch
	}
	l.writing = false
	l.wmu.Unlock()
	return nil
}

// closedLocked reports closure without taking l.mu — reading l.closed
// under wmu would invert the lock order, so the done channel is the
// source of truth here.
func (l *link) closedLocked() bool {
	select {
	case <-l.done:
		return true
	default:
		return false
	}
}

// isClosed reports whether the link has shut down.
func (l *link) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// call issues a request and waits for its response. client and seq carry
// the logical call identity for the node's at-most-once dedup; they stay
// stable across retries while the link-level frame ID does not.
func (l *link) call(ctx context.Context, object, entry string, params []any, client string, seq uint64) ([]any, error) {
	id := l.nextID.Add(1)
	respCh := respChPool.Get().(chan frame)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		respChPool.Put(respCh)
		return nil, fmt.Errorf("rpc: call %s.%s: %w", object, entry, l.closeReason())
	}
	l.pending[id] = respCh
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.pending, id)
		l.mu.Unlock()
		// The read loop only sends while holding l.mu with the entry still
		// present, so after the delete above no further send can land; one
		// drain leaves the channel provably empty for its next user.
		select {
		case <-respCh:
		default:
		}
		respChPool.Put(respCh)
	}()

	req := frame{Kind: frameRequest, ID: id, Object: object, Entry: entry,
		Params: params, Client: client, Seq: seq}
	if err := l.send(&req); err != nil {
		return nil, fmt.Errorf("rpc: call %s.%s: %w", object, entry, err)
	}
	if ctx.Done() == nil {
		// Uncancellable context (the common hot path): a plain receive —
		// shutdown's poison sweep guarantees a zero-kind frame arrives if
		// the link dies, so no select and no l.done arm are needed.
		resp := <-respCh
		if resp.Kind == 0 {
			return nil, fmt.Errorf("rpc: call %s.%s interrupted: %w", object, entry, l.closeReason())
		}
		if err := decodeErr(resp.Err, resp.ErrKind); err != nil {
			return nil, err
		}
		return resp.Results, nil
	}
	select {
	case resp := <-respCh:
		if resp.Kind == 0 {
			// The send succeeded but the connection died before the
			// response: fail fast and name the call, so the failure is
			// attributable.
			return nil, fmt.Errorf("rpc: call %s.%s interrupted: %w", object, entry, l.closeReason())
		}
		if err := decodeErr(resp.Err, resp.ErrKind); err != nil {
			return nil, err
		}
		return resp.Results, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// list asks the peer for its hosted object names.
func (l *link) list(ctx context.Context) ([]string, error) {
	id := l.nextID.Add(1)
	respCh := respChPool.Get().(chan frame)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		respChPool.Put(respCh)
		return nil, l.closeReason()
	}
	l.pending[id] = respCh
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.pending, id)
		l.mu.Unlock()
		select {
		case <-respCh:
		default:
		}
		respChPool.Put(respCh)
	}()

	req := frame{Kind: frameList, ID: id}
	if err := l.send(&req); err != nil {
		return nil, err
	}
	select {
	case resp := <-respCh:
		if resp.Kind == 0 { // shutdown's poison sweep: the link died
			return nil, l.closeReason()
		}
		return resp.Names, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// publishChan registers ch under a unique name and returns the ChanRef to
// embed in call parameters. Messages arriving for the ref are delivered
// into ch.
func (l *link) publishChan(name string, ch *channel.Chan) ChanRef {
	if name == "" {
		name = fmt.Sprintf("chan-%d", l.nextRef.Add(1))
	}
	l.mu.Lock()
	l.chans[name] = ch
	l.mu.Unlock()
	return ChanRef{Name: name}
}

// resolveParams replaces incoming ChanRef values with live proxy channels
// whose sends are forwarded back over this link.
func (l *link) resolveParams(params []any) []any {
	out := params
	for i, p := range params {
		ref, ok := p.(ChanRef)
		if !ok {
			continue
		}
		out[i] = l.proxyFor(ref)
	}
	return out
}

func (l *link) proxyFor(ref ChanRef) *channel.Chan {
	l.mu.Lock()
	if proxy, ok := l.proxies[ref.Name]; ok {
		l.mu.Unlock()
		return proxy
	}
	proxy := channel.New("proxy:" + ref.Name)
	l.proxies[ref.Name] = proxy
	l.mu.Unlock()

	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			msg, ok := proxy.RecvDone(l.done)
			if !ok {
				return
			}
			fr := frame{Kind: frameChanSend, Chan: ref.Name, Params: msg}
			if err := l.send(&fr); err != nil {
				if errors.Is(err, ErrLinkClosed) {
					return
				}
				// Encode failure: this message is undeliverable but the
				// link (and the channel) live on; drop it and keep
				// forwarding — matching a local unbuffered channel whose
				// reader ignores a malformed message.
				continue
			}
		}
	}()
	return proxy
}

// readLoop is the link's single reader: it verifies the peer's hello, then
// decodes and dispatches frames until the stream dies. Dispatch never
// blocks on a slow consumer — responses land in buffered per-call channels
// (extra sends dropped), channel messages go into unbounded ALPS channels,
// and requests and list queries run on their own goroutines — so one slow
// waiter cannot stall delivery for the calls pipelined behind it.
func (l *link) readLoop() {
	defer l.wg.Done()
	br := bufio.NewReaderSize(l.conn, readBufSize)
	if err := wire.ReadHello(br); err != nil {
		// Wrap with BOTH sentinels: callers check ErrLinkClosed for
		// retry/teardown, operators check ErrVersionSkew to tell a
		// mixed-version cluster from rotten bytes.
		l.shutdown(fmt.Errorf("%w: %w", ErrLinkClosed, err))
		return
	}
	dec := wire.NewDecoder(br, l.table)
	m := l.hooks.metrics
	// One resident frame serves every inline-dispatched message; only
	// request frames — whose ownership passes to a serving goroutine —
	// go through the pool.
	f := getFrame()
	defer func() { putFrame(f) }()
	for {
		err := dec.Decode(f)
		if m != nil {
			m.BytesRecv.Add(dec.BytesRead())
		}
		if err != nil {
			// Includes the typed ErrBadFrame path: corrupted or truncated
			// frames (CRC mismatch, bad tags) classify via errors.Is and
			// fail every pending call instead of hanging it.
			l.shutdown(fmt.Errorf("%w: %w", ErrLinkClosed, err))
			return
		}
		if m != nil {
			m.FramesRecv.Inc()
		}
		switch f.Kind {
		case frameRequest:
			req := f
			f = getFrame()
			if l.serveInline(req) {
				// Submitted straight into the object; the response will be
				// sent from its completion dispatcher and the frame is now
				// owned by that path.
				continue
			}
			// Blocking path, on a detached goroutine: the drain gate (hooks
			// begin/end) already accounts in-flight work for Node.Close,
			// and link teardown must not wait out a long-running body.
			go func() {
				l.serveRequest(req)
				putFrame(req)
			}()
		case frameResponse, frameListResp:
			// Deliver while holding l.mu: call/list delete their pending
			// entry under the same lock before recycling the channel, so a
			// send can never land on a channel a later call owns. The
			// buffered send cannot block — a duplicate response (one send
			// already buffered) is dropped by the default arm.
			l.mu.Lock()
			if respCh, ok := l.pending[f.ID]; ok {
				select {
				case respCh <- *f:
				default:
				}
			}
			l.mu.Unlock()
		case frameChanSend:
			l.mu.Lock()
			ch, ok := l.chans[f.Chan]
			l.mu.Unlock()
			if ok {
				// Never blocks: ALPS channels are unbounded. The message
				// slice is handed off; the recycled frame drops its
				// reference at the next getFrame reset.
				_ = ch.Send(f.Params...)
			}
		case frameList:
			// Off the read loop: the reply's send could block on a full
			// write buffer and stall response dispatch otherwise.
			go func(id uint64) {
				names := []string(nil)
				if l.res != nil {
					names = l.res.names()
				}
				resp := frame{Kind: frameListResp, ID: id, Names: names}
				_ = l.send(&resp)
			}(f.ID)
		}
	}
}

// sendResponse delivers a result-carrying response, downgrading to an
// error response if the results themselves fail to encode — the client
// must never be left waiting on a response that died locally.
func (l *link) sendResponse(r *frame) {
	err := l.send(r)
	if err == nil || errors.Is(err, ErrLinkClosed) {
		return
	}
	fallback := frame{Kind: frameResponse, ID: r.ID}
	fallback.Err, fallback.ErrKind = encodeErr(fmt.Errorf("rpc: encoding response: %v", err))
	_ = l.send(&fallback)
}

// serveRequest executes one incoming request. The frame is only borrowed:
// everything the body needs is copied into locals before the blocking
// call, since the caller recycles f as soon as serveRequest returns.
func (l *link) serveRequest(f *frame) {
	resp := frame{Kind: frameResponse, ID: f.ID}
	if l.hooks.begin != nil && !l.hooks.begin() {
		// The node is draining: refuse new work so Close can finish.
		if m := l.hooks.metrics; m != nil {
			m.DrainDrops.Inc()
		}
		resp.Err, resp.ErrKind = encodeErr(fmt.Errorf("node draining: %w", core.ErrClosed))
		_ = l.send(&resp)
		return
	}
	if l.hooks.end != nil {
		defer l.hooks.end()
	}

	var obj callable
	ok := false
	if l.res != nil {
		obj, ok = l.res.lookup(f.Object)
	}
	if !ok {
		resp.Err, resp.ErrKind = encodeErr(fmt.Errorf("object %q: %w", f.Object, ErrUnknownObject))
		_ = l.send(&resp)
		return
	}

	// At-most-once: the first arrival of a (client, seq) executes; a
	// retry waits for that execution and replays its response. The wait is
	// bounded by replayWait — the wire carries no per-call deadline, so
	// without the bound a primary stuck in a guard that never fires would
	// pin this goroutine forever (and, before the bound existed, did).
	var entry *dedupEntry
	if f.Client != "" && l.hooks.dedup != nil {
		var primary bool
		entry, primary = l.hooks.dedup.begin(dedupKey{f.Client, f.Seq})
		if !primary {
			l.replayDuplicate(f.ID, f.Object, f.Entry, f.Client, f.Seq, entry)
			return
		}
	}

	id, objName, entryName := f.ID, f.Object, f.Entry
	client, seq := f.Client, f.Seq
	params := l.resolveParams(f.Params)
	ctx := l.ctx
	if entry != nil && l.hooks.serveCtx != nil {
		// Dedup-tracked executions outlive their arrival link: at-most-once
		// means a retry must observe this execution's result, so the body
		// is tied to the node's lifetime, not the connection's.
		ctx = l.hooks.serveCtx
	}
	// The body runs inline: serveRequest already has its own goroutine, so
	// the gob-era hand-off through an inner goroutine and result channel
	// is gone — one goroutine and one channel fewer per request.
	var results []any
	var err error
	if sc, needsSession := obj.(sessionCallable); needsSession && client != "" {
		// Session-aware objects (consensus-replicated) carry the caller's
		// at-most-once identity into the replicated log, so a retry after a
		// failover replays on the new leader instead of re-executing.
		results, err = sc.CallSession(ctx, client, seq, entryName, params)
	} else {
		results, err = obj.CallCtx(ctx, entryName, params...)
	}
	r := frame{Kind: frameResponse, ID: id, Results: results}
	if err != nil {
		r.Results = nil
		r.Err, r.ErrKind = encodeErr(err)
		if m := l.hooks.metrics; m != nil {
			switch r.ErrKind {
			case errOverload:
				m.Overloads.Inc()
			case errPoisoned:
				m.Poisons.Inc()
			}
		}
	}
	// Durable at-most-once: journal the acknowledgement and sync it
	// before the response (or any replay of it) can leave the node.
	// The ack is appended AFTER the call's outcome record in the same
	// log, so this one group-committed sync also makes the state
	// transition durable — zero lost acknowledged calls. Failed calls
	// are not journaled: no transition happened, and re-executing them
	// on retry after a crash is the desired behaviour.
	var ackLSN uint64
	if st := l.hooks.durable; st != nil && entry != nil && err == nil && st.DurableEntry(objName, entryName) {
		lsn, aerr := st.AppendAck(objName, entryName, client, seq, r.Results, "", 0)
		if aerr != nil {
			r.Results = nil
			r.Err, r.ErrKind = encodeErr(fmt.Errorf("rpc: %s.%s executed but journal append failed: %w", objName, entryName, aerr))
		} else {
			ackLSN = lsn
			entry.lsn = lsn // published to duplicates by complete's close(done)
		}
	}
	if entry != nil {
		// Record the outcome even if the arrival link is already dead:
		// the retry that replaces it replays from here. Completing
		// before the sync is safe — every responder (this goroutine
		// and any duplicate) still waits on the ack LSN before
		// sending, and the snapshot writer dumps the dedup table
		// before collecting object state (docs/DURABILITY.md).
		// Not-leader rejections are released but not cached: the client
		// retries the SAME seq against the new leader, and a pinned
		// rejection would replay forever (see dedupCache.forget).
		if r.ErrKind == errNotLeader {
			l.hooks.dedup.forget(dedupKey{client, seq}, entry, r.Results, r.Err, r.ErrKind)
		} else {
			l.hooks.dedup.complete(dedupKey{client, seq}, entry, r.Results, r.Err, r.ErrKind)
		}
	}
	if ackLSN != 0 {
		if aerr := l.hooks.durable.WaitSynced(ackLSN); aerr != nil {
			r.Results = nil
			r.Err, r.ErrKind = encodeErr(fmt.Errorf("rpc: %s.%s executed but not durable: %w", objName, entryName, aerr))
		}
	}
	l.sendResponse(&r)
}

// replayDuplicate answers a retry of a (client, seq) whose primary
// execution is recorded or still in flight: it waits — bounded by
// replayWait — for the primary's completion and replays its response. The
// wait is bounded because the wire carries no per-call deadline; without
// the bound a primary stuck in a guard that never fires would pin this
// goroutine forever (and, before the bound existed, did). Callers own the
// drain gate.
func (l *link) replayDuplicate(id uint64, objName, entryName, client string, seq uint64, entry *dedupEntry) {
	resp := frame{Kind: frameResponse, ID: id}
	if m := l.hooks.metrics; m != nil {
		m.DedupHits.Inc()
	}
	l.hooks.rec.Record(objName, entryName, -1, seq, trace.Replayed)
	var timeout <-chan time.Time
	if l.hooks.replayWait > 0 {
		t := time.NewTimer(l.hooks.replayWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-l.hooks.dedup.waitCh(entry):
		// The primary wrote entry.lsn before closing done; sync through it
		// so a replayed acknowledgement is as durable as the original
		// would have been.
		if st := l.hooks.durable; st != nil && entry.lsn != 0 {
			if err := st.WaitSynced(entry.lsn); err != nil {
				resp.Err, resp.ErrKind = encodeErr(fmt.Errorf("rpc: replay %s.%s: durability: %w", objName, entryName, err))
				_ = l.send(&resp)
				return
			}
		}
		resp.Results, resp.Err, resp.ErrKind = entry.results, entry.errMsg, entry.errKind
		l.sendResponse(&resp)
	case <-timeout:
		if m := l.hooks.metrics; m != nil {
			m.ReplayTimeouts.Inc()
		}
		resp.Err, resp.ErrKind = encodeErr(fmt.Errorf(
			"rpc: duplicate of %s.%s (client %s seq %d) still in flight after %v: %w",
			objName, entryName, client, seq, l.hooks.replayWait, ErrReplayTimeout))
		_ = l.send(&resp)
	case <-l.done:
	}
}

// serveInline is the zero-goroutine request path: when the published
// object supports asynchronous completion, the read loop submits the call
// directly and the response is sent by the object's completion
// dispatcher. It reports false — before taking the drain gate or touching
// the dedup table — when the request needs the blocking path: durability
// configured, unknown objects, objects without CallAsync. Returning true
// transfers ownership of f: serveInline (or the work it spawned) recycles
// the frame.
func (l *link) serveInline(f *frame) bool {
	if l.hooks.durable != nil || l.res == nil {
		return false
	}
	obj, ok := l.res.lookup(f.Object)
	if !ok {
		return false
	}
	ac, isAsync := obj.(asyncCallable)
	if !isAsync {
		return false
	}
	if l.hooks.begin != nil && !l.hooks.begin() {
		return false // draining: the blocking path re-checks and rejects
	}
	// The drain gate is held from here on: every path below must reach
	// endServe exactly once, so falling back to serveRequest — which would
	// take the gate a second time — is no longer an option.
	id, objName, entryName := f.ID, f.Object, f.Entry
	client, seq := f.Client, f.Seq
	var entry *dedupEntry
	if client != "" && l.hooks.dedup != nil {
		var primary bool
		entry, primary = l.hooks.dedup.begin(dedupKey{client, seq})
		if !primary {
			// Replays can block on the primary: their own goroutine. The
			// frame is done — everything the wait needs is copied above.
			putFrame(f)
			go func() {
				defer l.endServe()
				l.replayDuplicate(id, objName, entryName, client, seq, entry)
			}()
			return true
		}
	}
	params := l.resolveParams(f.Params)
	done := func(results []any, err error) {
		l.finishServe(id, client, seq, entry, results, err)
		putFrame(f) // params (aliasing f) are dead once the body finished
		l.endServe()
	}
	if ac.CallAsync(entryName, params, done) {
		return true
	}
	// The object declined (intercepted entry, admission bound, journal,
	// sequencer, closing): execute on the blocking path, with the gate and
	// the dedup entry already held.
	go func() {
		defer l.endServe()
		ctx := l.ctx
		if entry != nil && l.hooks.serveCtx != nil {
			ctx = l.hooks.serveCtx
		}
		results, err := obj.CallCtx(ctx, entryName, params...)
		l.finishServe(id, client, seq, entry, results, err)
		putFrame(f)
	}()
	return true
}

func (l *link) endServe() {
	if l.hooks.end != nil {
		l.hooks.end()
	}
}

// finishServe turns a call outcome into the response frame: error
// encoding and metrics, the at-most-once record for replays, then the
// send — non-blocking first, since this runs on the object's shared
// completion dispatcher, with a goroutine fallback when the link is
// backpressured.
func (l *link) finishServe(id uint64, client string, seq uint64, entry *dedupEntry, results []any, err error) {
	r := frame{Kind: frameResponse, ID: id, Results: results}
	if err != nil {
		r.Results = nil
		r.Err, r.ErrKind = encodeErr(err)
		if m := l.hooks.metrics; m != nil {
			switch r.ErrKind {
			case errOverload:
				m.Overloads.Inc()
			case errPoisoned:
				m.Poisons.Inc()
			}
		}
	}
	if entry != nil {
		// Record the outcome even if the arrival link is already dead: the
		// retry that replaces it replays from here — except not-leader
		// rejections, which must not be pinned against the retried seq.
		if r.ErrKind == errNotLeader {
			l.hooks.dedup.forget(dedupKey{client, seq}, entry, r.Results, r.Err, r.ErrKind)
		} else {
			l.hooks.dedup.complete(dedupKey{client, seq}, entry, r.Results, r.Err, r.ErrKind)
		}
	}
	if !l.trySendResponse(&r) {
		go l.sendResponse(&r)
	}
}

// trySendResponse queues r without ever blocking the caller: no
// backpressure wait and no combining — one wedged peer must not stall the
// completion dispatcher for every other caller of the object. It reports
// false (frame not queued) when the queue is over budget or the frame
// fails to encode; the caller retries on the blocking path. When the
// append leaves no combiner active, a flusher goroutine is kicked — under
// load a combiner is almost always draining, so the spawn is rare.
func (l *link) trySendResponse(r *frame) bool {
	buf := wire.GetBuf()
	b, err := wire.AppendFrame(*buf, r, l.table)
	if err != nil {
		wire.PutBuf(buf)
		return false // sendResponse downgrades to an encodable error frame
	}
	*buf = b
	l.wmu.Lock()
	if l.closedLocked() {
		l.wmu.Unlock()
		wire.PutBuf(buf)
		return true // link dead: the response is undeliverable either way
	}
	if len(l.wbuf) >= maxQueued && l.writing {
		l.wmu.Unlock()
		wire.PutBuf(buf)
		return false
	}
	l.wbuf = append(l.wbuf, b...)
	if m := l.hooks.metrics; m != nil {
		m.FramesSent.Inc()
	}
	writing := l.writing
	l.wmu.Unlock()
	wire.PutBuf(buf)
	if !writing {
		go l.flushQueued()
	}
	return true
}

func (l *link) closeReason() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closeErr != nil {
		return l.closeErr
	}
	return ErrLinkClosed
}

// shutdown tears the link down exactly once, failing pending calls.
func (l *link) shutdown(reason error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.closeErr = reason
	// Poison every pending call with a zero-kind frame: the hot receive
	// path in call() is a plain channel recv (no l.done select arm), so
	// link death must reach waiters through their own channels. Calls
	// registering after this sweep see l.closed under the same mutex and
	// fail before ever blocking.
	for _, ch := range l.pending {
		select {
		case ch <- frame{}:
		default:
		}
	}
	proxies := make([]*channel.Chan, 0, len(l.proxies))
	for _, p := range l.proxies {
		proxies = append(proxies, p)
	}
	l.mu.Unlock()

	close(l.done)
	// Release senders blocked on backpressure. The lock pairs the
	// broadcast with their closedLocked re-check: a sender between its
	// check and its Wait still holds wmu, so it cannot miss the wakeup.
	l.wmu.Lock()
	l.wcond.Broadcast()
	l.wmu.Unlock()
	l.cancel()
	_ = l.conn.Close()
	for _, p := range proxies {
		p.Close()
	}
	l.hooks.rec.Record("", l.conn.RemoteAddr().String(), -1, 0, trace.LinkDown)
}

// close shuts the link down gracefully: frames already committed to the
// write queue — responses whose drain-gate accounting has completed but
// whose flush is still pending — reach the wire first, then the link
// tears down and waits for its goroutines.
func (l *link) close() {
	l.flushPending()
	l.shutdown(ErrLinkClosed)
	l.wg.Wait()
}

// flushPending waits, briefly and best-effort, until the write queue is
// empty and no combiner is mid-batch. Bounded by the owner's flush grace
// (NodeOptions.FlushGrace; 1s when unset): a peer that stopped reading
// must not turn a graceful close into a hang. A negative grace skips the
// wait entirely — teardown-speed over response delivery.
func (l *link) flushPending() {
	grace := l.hooks.flushGrace
	if grace == 0 {
		grace = time.Second
	}
	if grace < 0 {
		return
	}
	deadline := time.Now().Add(grace)
	l.wmu.Lock()
	for (len(l.wbuf) > 0 || l.writing) && !l.closedLocked() {
		l.wmu.Unlock()
		runtime.Gosched()
		if time.Now().After(deadline) {
			return
		}
		l.wmu.Lock()
	}
	l.wmu.Unlock()
}
