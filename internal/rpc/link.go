package rpc

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/channel"
)

// objectResolver resolves object names to callable objects (the node's
// registry on the serving side; empty on pure clients).
type objectResolver interface {
	lookup(name string) (callable, bool)
	names() []string
}

// callable is the subset of core.Object the link needs (an interface so
// tests can stub it).
type callable interface {
	CallCtx(ctx context.Context, entry string, params ...any) ([]any, error)
}

// link is one end of a connection: it can issue requests, serve requests
// (when it has a resolver), and route channel messages both ways.
type link struct {
	conn net.Conn
	res  objectResolver

	encMu sync.Mutex
	enc   *gob.Encoder

	mu       sync.Mutex
	pending  map[uint64]chan frame
	chans    map[string]*channel.Chan // locally published channels
	proxies  map[string]*channel.Chan // outbound proxies for received ChanRefs
	closed   bool
	closeErr error

	nextID  atomic.Uint64
	nextRef atomic.Uint64
	done    chan struct{}
	wg      sync.WaitGroup

	// ctx is cancelled at shutdown so served calls still waiting to be
	// accepted by a remote object's manager are withdrawn.
	ctx    context.Context
	cancel context.CancelFunc
}

func newLink(conn net.Conn, res objectResolver) *link {
	registerDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	l := &link{
		conn:    conn,
		res:     res,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan frame),
		chans:   make(map[string]*channel.Chan),
		proxies: make(map[string]*channel.Chan),
		done:    make(chan struct{}),
		ctx:     ctx,
		cancel:  cancel,
	}
	l.wg.Add(1)
	go l.readLoop()
	return l
}

func (l *link) send(f *frame) error {
	l.encMu.Lock()
	defer l.encMu.Unlock()
	if err := l.enc.Encode(f); err != nil {
		return fmt.Errorf("rpc: encode: %w", err)
	}
	return nil
}

// call issues a request and waits for its response.
func (l *link) call(ctx context.Context, object, entry string, params []any) ([]any, error) {
	id := l.nextID.Add(1)
	respCh := make(chan frame, 1)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, l.closeReason()
	}
	l.pending[id] = respCh
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.pending, id)
		l.mu.Unlock()
	}()

	if err := l.send(&frame{Kind: frameRequest, ID: id, Object: object, Entry: entry, Params: params}); err != nil {
		return nil, err
	}
	select {
	case resp := <-respCh:
		if err := decodeErr(resp.Err, resp.ErrKind); err != nil {
			return nil, err
		}
		return resp.Results, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-l.done:
		return nil, l.closeReason()
	}
}

// list asks the peer for its hosted object names.
func (l *link) list(ctx context.Context) ([]string, error) {
	id := l.nextID.Add(1)
	respCh := make(chan frame, 1)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, l.closeReason()
	}
	l.pending[id] = respCh
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.pending, id)
		l.mu.Unlock()
	}()

	if err := l.send(&frame{Kind: frameList, ID: id}); err != nil {
		return nil, err
	}
	select {
	case resp := <-respCh:
		return resp.Names, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-l.done:
		return nil, l.closeReason()
	}
}

// publishChan registers ch under a unique name and returns the ChanRef to
// embed in call parameters. Messages arriving for the ref are delivered
// into ch.
func (l *link) publishChan(name string, ch *channel.Chan) ChanRef {
	if name == "" {
		name = fmt.Sprintf("chan-%d", l.nextRef.Add(1))
	}
	l.mu.Lock()
	l.chans[name] = ch
	l.mu.Unlock()
	return ChanRef{Name: name}
}

// resolveParams replaces incoming ChanRef values with live proxy channels
// whose sends are forwarded back over this link.
func (l *link) resolveParams(params []any) []any {
	out := params
	for i, p := range params {
		ref, ok := p.(ChanRef)
		if !ok {
			continue
		}
		out[i] = l.proxyFor(ref)
	}
	return out
}

func (l *link) proxyFor(ref ChanRef) *channel.Chan {
	l.mu.Lock()
	if proxy, ok := l.proxies[ref.Name]; ok {
		l.mu.Unlock()
		return proxy
	}
	proxy := channel.New("proxy:" + ref.Name)
	l.proxies[ref.Name] = proxy
	l.mu.Unlock()

	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			msg, ok := proxy.RecvDone(l.done)
			if !ok {
				return
			}
			if err := l.send(&frame{Kind: frameChanSend, Chan: ref.Name, Params: msg}); err != nil {
				return
			}
		}
	}()
	return proxy
}

func (l *link) readLoop() {
	defer l.wg.Done()
	dec := gob.NewDecoder(l.conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			l.shutdown(fmt.Errorf("%w: %v", ErrLinkClosed, err))
			return
		}
		switch f.Kind {
		case frameRequest:
			l.wg.Add(1)
			go func(f frame) {
				defer l.wg.Done()
				l.serveRequest(f)
			}(f)
		case frameResponse, frameListResp:
			l.mu.Lock()
			respCh, ok := l.pending[f.ID]
			l.mu.Unlock()
			if ok {
				respCh <- f
			}
		case frameChanSend:
			l.mu.Lock()
			ch, ok := l.chans[f.Chan]
			l.mu.Unlock()
			if ok {
				_ = ch.Send(f.Params...)
			}
		case frameList:
			names := []string(nil)
			if l.res != nil {
				names = l.res.names()
			}
			_ = l.send(&frame{Kind: frameListResp, ID: f.ID, Names: names})
		}
	}
}

func (l *link) serveRequest(f frame) {
	resp := frame{Kind: frameResponse, ID: f.ID}
	var obj callable
	ok := false
	if l.res != nil {
		obj, ok = l.res.lookup(f.Object)
	}
	if !ok {
		resp.Err, resp.ErrKind = encodeErr(fmt.Errorf("object %q: %w", f.Object, ErrUnknownObject))
		_ = l.send(&resp)
		return
	}
	params := l.resolveParams(f.Params)
	type callResult struct {
		results []any
		err     error
	}
	resCh := make(chan callResult, 1)
	// The call runs on its own goroutine so a link teardown abandons the
	// wait instead of blocking shutdown behind a long-running body; the
	// object's own Close remains responsible for the body itself.
	go func() {
		results, err := obj.CallCtx(l.ctx, f.Entry, params...)
		resCh <- callResult{results, err}
	}()
	select {
	case res := <-resCh:
		if res.err != nil {
			resp.Err, resp.ErrKind = encodeErr(res.err)
		} else {
			resp.Results = res.results
		}
		_ = l.send(&resp)
	case <-l.done:
	}
}

func (l *link) closeReason() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closeErr != nil {
		return l.closeErr
	}
	return ErrLinkClosed
}

// shutdown tears the link down exactly once, failing pending calls.
func (l *link) shutdown(reason error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.closeErr = reason
	proxies := make([]*channel.Chan, 0, len(l.proxies))
	for _, p := range l.proxies {
		proxies = append(proxies, p)
	}
	l.mu.Unlock()

	close(l.done)
	l.cancel()
	_ = l.conn.Close()
	for _, p := range proxies {
		p.Close()
	}
}

// close shuts the link down and waits for its goroutines.
func (l *link) close() {
	l.shutdown(ErrLinkClosed)
	l.wg.Wait()
}
