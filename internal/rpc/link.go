package rpc

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/wal"
)

// framePool recycles frame structs on both the encode and decode paths.
var framePool = sync.Pool{New: func() any { return new(frame) }}

// getFrame returns a zeroed frame. Zeroing before gob.Decode is mandatory:
// gob leaves fields absent from the wire untouched, so a recycled frame
// would otherwise leak values from its previous use into the next message.
func getFrame() *frame {
	f := framePool.Get().(*frame)
	*f = frame{}
	return f
}

func putFrame(f *frame) { framePool.Put(f) }

// respChPool recycles the per-call response channels. A channel is returned
// only after its pending-table entry is deleted and the buffer drained, so a
// recycled channel can never deliver a stale response to a later call.
var respChPool = sync.Pool{New: func() any { return make(chan frame, 1) }}

// objectResolver resolves object names to callable objects (the node's
// registry on the serving side; empty on pure clients).
type objectResolver interface {
	lookup(name string) (callable, bool)
	names() []string
}

// callable is the subset of core.Object the link needs (an interface so
// tests can stub it).
type callable interface {
	CallCtx(ctx context.Context, entry string, params ...any) ([]any, error)
}

// linkHooks are the owner-supplied callbacks of a link: a node wires in
// its dedup cache, drain gate and node-lifetime execution context; a
// client wires in its metrics and trace sinks. The zero value is valid
// (no dedup, no drain gate, no observation).
type linkHooks struct {
	dedup      *dedupCache     // at-most-once table (nodes only)
	serveCtx   context.Context // execution ctx for dedup-tracked calls (node lifetime)
	begin      func() bool     // drain gate; false rejects the request
	end        func()          // paired with a successful begin
	metrics    *Metrics        // nil-safe counters
	rec        *trace.Recorder // nil-safe event sink
	durable    *wal.Store      // durability store (nodes with -data-dir only)
	replayWait time.Duration   // duplicate wait bound; 0 = unbounded
}

// link is one end of a connection: it can issue requests, serve requests
// (when it has a resolver), and route channel messages both ways.
type link struct {
	conn  net.Conn
	res   objectResolver
	hooks linkHooks

	encMu sync.Mutex
	bw    *bufio.Writer
	enc   *gob.Encoder

	// wpend counts writers that have entered send but not yet finished
	// encoding; the writer that decrements it to zero flushes the buffered
	// writer, so a burst of frames queued under load leaves in one syscall.
	wpend atomic.Int32

	mu       sync.Mutex
	pending  map[uint64]chan frame
	chans    map[string]*channel.Chan // locally published channels
	proxies  map[string]*channel.Chan // outbound proxies for received ChanRefs
	closed   bool
	closeErr error

	nextID  atomic.Uint64
	nextRef atomic.Uint64
	done    chan struct{}
	wg      sync.WaitGroup

	// ctx is cancelled at shutdown so served calls still waiting to be
	// accepted by a remote object's manager are withdrawn.
	ctx    context.Context
	cancel context.CancelFunc
}

func newLink(conn net.Conn, res objectResolver, hooks linkHooks) *link {
	registerDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	bw := bufio.NewWriterSize(conn, 8<<10)
	l := &link{
		conn:    conn,
		res:     res,
		hooks:   hooks,
		bw:      bw,
		enc:     gob.NewEncoder(bw),
		pending: make(map[uint64]chan frame),
		chans:   make(map[string]*channel.Chan),
		proxies: make(map[string]*channel.Chan),
		done:    make(chan struct{}),
		ctx:     ctx,
		cancel:  cancel,
	}
	hooks.rec.Record("", conn.RemoteAddr().String(), -1, 0, trace.LinkUp)
	l.wg.Add(1)
	go l.readLoop()
	return l
}

// send encodes one frame into the link's buffered writer. Flushes coalesce:
// every writer announces itself in wpend before taking the encode lock, and
// only the writer that finds no successor waiting pays for the flush — a
// burst of concurrent sends becomes a single syscall.
func (l *link) send(f *frame) error {
	l.wpend.Add(1)
	l.encMu.Lock()
	err := l.enc.Encode(f)
	if l.wpend.Add(-1) == 0 && err == nil {
		err = l.bw.Flush()
	}
	l.encMu.Unlock()
	if err != nil {
		// A failed encode or flush may have left a partial frame on the
		// wire; the gob stream cannot resynchronize, so the whole link is
		// dead.
		err = fmt.Errorf("rpc: encode: %v: %w", err, ErrLinkClosed)
		l.shutdown(err)
		return err
	}
	return nil
}

// isClosed reports whether the link has shut down.
func (l *link) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// call issues a request and waits for its response. client and seq carry
// the logical call identity for the node's at-most-once dedup; they stay
// stable across retries while the link-level frame ID does not.
func (l *link) call(ctx context.Context, object, entry string, params []any, client string, seq uint64) ([]any, error) {
	id := l.nextID.Add(1)
	respCh := respChPool.Get().(chan frame)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		respChPool.Put(respCh)
		return nil, fmt.Errorf("rpc: call %s.%s: %w", object, entry, l.closeReason())
	}
	l.pending[id] = respCh
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.pending, id)
		l.mu.Unlock()
		// The read loop only sends while holding l.mu with the entry still
		// present, so after the delete above no further send can land; one
		// drain leaves the channel provably empty for its next user.
		select {
		case <-respCh:
		default:
		}
		respChPool.Put(respCh)
	}()

	req := getFrame()
	req.Kind, req.ID = frameRequest, id
	req.Object, req.Entry, req.Params = object, entry, params
	req.Client, req.Seq = client, seq
	err := l.send(req)
	putFrame(req)
	if err != nil {
		return nil, fmt.Errorf("rpc: call %s.%s: %w", object, entry, err)
	}
	select {
	case resp := <-respCh:
		if err := decodeErr(resp.Err, resp.ErrKind); err != nil {
			return nil, err
		}
		return resp.Results, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-l.done:
		// The send succeeded but the connection died before the response:
		// fail fast and name the call, so the failure is attributable.
		return nil, fmt.Errorf("rpc: call %s.%s interrupted: %w", object, entry, l.closeReason())
	}
}

// list asks the peer for its hosted object names.
func (l *link) list(ctx context.Context) ([]string, error) {
	id := l.nextID.Add(1)
	respCh := respChPool.Get().(chan frame)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		respChPool.Put(respCh)
		return nil, l.closeReason()
	}
	l.pending[id] = respCh
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.pending, id)
		l.mu.Unlock()
		select {
		case <-respCh:
		default:
		}
		respChPool.Put(respCh)
	}()

	req := getFrame()
	req.Kind, req.ID = frameList, id
	err := l.send(req)
	putFrame(req)
	if err != nil {
		return nil, err
	}
	select {
	case resp := <-respCh:
		return resp.Names, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-l.done:
		return nil, l.closeReason()
	}
}

// publishChan registers ch under a unique name and returns the ChanRef to
// embed in call parameters. Messages arriving for the ref are delivered
// into ch.
func (l *link) publishChan(name string, ch *channel.Chan) ChanRef {
	if name == "" {
		name = fmt.Sprintf("chan-%d", l.nextRef.Add(1))
	}
	l.mu.Lock()
	l.chans[name] = ch
	l.mu.Unlock()
	return ChanRef{Name: name}
}

// resolveParams replaces incoming ChanRef values with live proxy channels
// whose sends are forwarded back over this link.
func (l *link) resolveParams(params []any) []any {
	out := params
	for i, p := range params {
		ref, ok := p.(ChanRef)
		if !ok {
			continue
		}
		out[i] = l.proxyFor(ref)
	}
	return out
}

func (l *link) proxyFor(ref ChanRef) *channel.Chan {
	l.mu.Lock()
	if proxy, ok := l.proxies[ref.Name]; ok {
		l.mu.Unlock()
		return proxy
	}
	proxy := channel.New("proxy:" + ref.Name)
	l.proxies[ref.Name] = proxy
	l.mu.Unlock()

	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			msg, ok := proxy.RecvDone(l.done)
			if !ok {
				return
			}
			fr := getFrame()
			fr.Kind, fr.Chan, fr.Params = frameChanSend, ref.Name, msg
			err := l.send(fr)
			putFrame(fr)
			if err != nil {
				return
			}
		}
	}()
	return proxy
}

func (l *link) readLoop() {
	defer l.wg.Done()
	dec := gob.NewDecoder(bufio.NewReaderSize(l.conn, 8<<10))
	for {
		f := getFrame()
		if err := dec.Decode(f); err != nil {
			putFrame(f)
			l.shutdown(fmt.Errorf("%w: %v", ErrLinkClosed, err))
			return
		}
		if err := f.validate(); err != nil {
			// A structurally invalid frame means the peer is not speaking
			// this protocol (or a skewed version of it); nothing later on
			// the stream can be trusted, so fail the link with the typed
			// error instead of silently ignoring the frame.
			putFrame(f)
			l.shutdown(fmt.Errorf("%w: %v", ErrLinkClosed, err))
			return
		}
		switch f.Kind {
		case frameRequest:
			l.wg.Add(1)
			go func(f *frame) {
				defer l.wg.Done()
				l.serveRequest(f)
				putFrame(f)
			}(f)
			continue // ownership passed to the serving goroutine
		case frameResponse, frameListResp:
			// Deliver while holding l.mu: call/list delete their pending
			// entry under the same lock before recycling the channel, so a
			// send can never land on a channel a later call owns. The
			// buffered send cannot block — a duplicate response (one send
			// already buffered) is dropped by the default arm.
			l.mu.Lock()
			if respCh, ok := l.pending[f.ID]; ok {
				select {
				case respCh <- *f:
				default:
				}
			}
			l.mu.Unlock()
		case frameChanSend:
			l.mu.Lock()
			ch, ok := l.chans[f.Chan]
			l.mu.Unlock()
			if ok {
				// The message slice is handed off; the recycled frame drops
				// its reference at the next getFrame reset.
				_ = ch.Send(f.Params...)
			}
		case frameList:
			names := []string(nil)
			if l.res != nil {
				names = l.res.names()
			}
			resp := getFrame()
			resp.Kind, resp.ID, resp.Names = frameListResp, f.ID, names
			_ = l.send(resp)
			putFrame(resp)
		}
		putFrame(f)
	}
}

// serveRequest executes one incoming request. The frame is only borrowed:
// everything the detached body goroutine needs is copied into locals, since
// the caller recycles f as soon as serveRequest returns.
func (l *link) serveRequest(f *frame) {
	resp := frame{Kind: frameResponse, ID: f.ID}
	if l.hooks.begin != nil && !l.hooks.begin() {
		// The node is draining: refuse new work so Close can finish.
		if m := l.hooks.metrics; m != nil {
			m.DrainDrops.Inc()
		}
		resp.Err, resp.ErrKind = encodeErr(fmt.Errorf("node draining: %w", core.ErrClosed))
		_ = l.send(&resp)
		return
	}
	if l.hooks.end != nil {
		defer l.hooks.end()
	}

	var obj callable
	ok := false
	if l.res != nil {
		obj, ok = l.res.lookup(f.Object)
	}
	if !ok {
		resp.Err, resp.ErrKind = encodeErr(fmt.Errorf("object %q: %w", f.Object, ErrUnknownObject))
		_ = l.send(&resp)
		return
	}

	// At-most-once: the first arrival of a (client, seq) executes; a
	// retry waits for that execution and replays its response. The wait is
	// bounded by replayWait — the wire carries no per-call deadline, so
	// without the bound a primary stuck in a guard that never fires would
	// pin this goroutine forever (and, before the bound existed, did).
	var entry *dedupEntry
	if f.Client != "" && l.hooks.dedup != nil {
		var primary bool
		entry, primary = l.hooks.dedup.begin(dedupKey{f.Client, f.Seq})
		if !primary {
			if m := l.hooks.metrics; m != nil {
				m.DedupHits.Inc()
			}
			l.hooks.rec.Record(f.Object, f.Entry, -1, f.Seq, trace.Replayed)
			var timeout <-chan time.Time
			if l.hooks.replayWait > 0 {
				t := time.NewTimer(l.hooks.replayWait)
				defer t.Stop()
				timeout = t.C
			}
			select {
			case <-entry.done:
				// The primary wrote entry.lsn before closing done; sync
				// through it so a replayed acknowledgement is as durable as
				// the original would have been.
				if st := l.hooks.durable; st != nil && entry.lsn != 0 {
					if err := st.WaitSynced(entry.lsn); err != nil {
						resp.Err, resp.ErrKind = encodeErr(fmt.Errorf("rpc: replay %s.%s: durability: %w", f.Object, f.Entry, err))
						_ = l.send(&resp)
						return
					}
				}
				resp.Results, resp.Err, resp.ErrKind = entry.results, entry.errMsg, entry.errKind
				_ = l.send(&resp)
			case <-timeout:
				if m := l.hooks.metrics; m != nil {
					m.ReplayTimeouts.Inc()
				}
				resp.Err, resp.ErrKind = encodeErr(fmt.Errorf(
					"rpc: duplicate of %s.%s (client %s seq %d) still in flight after %v: %w",
					f.Object, f.Entry, f.Client, f.Seq, l.hooks.replayWait, ErrReplayTimeout))
				_ = l.send(&resp)
			case <-l.done:
			}
			return
		}
	}

	id, objName, entryName := f.ID, f.Object, f.Entry
	client, seq := f.Client, f.Seq
	params := l.resolveParams(f.Params)
	ctx := l.ctx
	if entry != nil && l.hooks.serveCtx != nil {
		// Dedup-tracked executions outlive their arrival link: at-most-once
		// means a retry must observe this execution's result, so the body
		// is tied to the node's lifetime, not the connection's.
		ctx = l.hooks.serveCtx
	}
	resCh := make(chan frame, 1)
	// The call runs on its own goroutine so a link teardown abandons the
	// wait instead of blocking shutdown behind a long-running body; the
	// object's own Close remains responsible for the body itself.
	go func() {
		results, err := obj.CallCtx(ctx, entryName, params...)
		r := frame{Kind: frameResponse, ID: id, Results: results}
		if err != nil {
			r.Results = nil
			r.Err, r.ErrKind = encodeErr(err)
			if m := l.hooks.metrics; m != nil {
				switch r.ErrKind {
				case errOverload:
					m.Overloads.Inc()
				case errPoisoned:
					m.Poisons.Inc()
				}
			}
		}
		// Durable at-most-once: journal the acknowledgement and sync it
		// before the response (or any replay of it) can leave the node.
		// The ack is appended AFTER the call's outcome record in the same
		// log, so this one group-committed sync also makes the state
		// transition durable — zero lost acknowledged calls. Failed calls
		// are not journaled: no transition happened, and re-executing them
		// on retry after a crash is the desired behaviour.
		var ackLSN uint64
		if st := l.hooks.durable; st != nil && entry != nil && err == nil && st.DurableEntry(objName, entryName) {
			lsn, aerr := st.AppendAck(objName, entryName, client, seq, r.Results, "", 0)
			if aerr != nil {
				r.Results = nil
				r.Err, r.ErrKind = encodeErr(fmt.Errorf("rpc: %s.%s executed but journal append failed: %w", objName, entryName, aerr))
			} else {
				ackLSN = lsn
				entry.lsn = lsn // published to duplicates by complete's close(done)
			}
		}
		if entry != nil {
			// Record the outcome even if the arrival link is already dead:
			// the retry that replaces it replays from here. Completing
			// before the sync is safe — every responder (this goroutine
			// and any duplicate) still waits on the ack LSN before
			// sending, and the snapshot writer dumps the dedup table
			// before collecting object state (docs/DURABILITY.md).
			l.hooks.dedup.complete(dedupKey{client, seq}, entry, r.Results, r.Err, r.ErrKind)
		}
		if ackLSN != 0 {
			if aerr := l.hooks.durable.WaitSynced(ackLSN); aerr != nil {
				r.Results = nil
				r.Err, r.ErrKind = encodeErr(fmt.Errorf("rpc: %s.%s executed but not durable: %w", objName, entryName, aerr))
			}
		}
		resCh <- r
	}()
	select {
	case r := <-resCh:
		_ = l.send(&r)
	case <-l.done:
	}
}

func (l *link) closeReason() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closeErr != nil {
		return l.closeErr
	}
	return ErrLinkClosed
}

// shutdown tears the link down exactly once, failing pending calls.
func (l *link) shutdown(reason error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.closeErr = reason
	proxies := make([]*channel.Chan, 0, len(l.proxies))
	for _, p := range l.proxies {
		proxies = append(proxies, p)
	}
	l.mu.Unlock()

	close(l.done)
	l.cancel()
	_ = l.conn.Close()
	for _, p := range proxies {
		p.Close()
	}
	l.hooks.rec.Record("", l.conn.RemoteAddr().String(), -1, 0, trace.LinkDown)
}

// close shuts the link down and waits for its goroutines.
func (l *link) close() {
	l.shutdown(ErrLinkClosed)
	l.wg.Wait()
}
