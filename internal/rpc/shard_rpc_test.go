package rpc

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
)

// buildCountShard is one replica of a keyed word-count object: Add(word)
// increments, Count(word) reads, both serialized by the shard's manager.
func buildCountShard(i int, name string) (*core.Object, error) {
	counts := make(map[string]int)
	return core.New(name,
		core.WithEntry(core.EntrySpec{Name: "Add", Params: 1, Results: 1,
			Body: func(inv *core.Invocation) error {
				w := inv.Param(0).(string)
				counts[w]++
				inv.Return(i)
				return nil
			}}),
		core.WithEntry(core.EntrySpec{Name: "Count", Params: 1, Results: 1,
			Body: func(inv *core.Invocation) error {
				inv.Return(counts[inv.Param(0).(string)])
				return nil
			}}),
		core.WithManager(func(m *core.Mgr) {
			_ = m.Loop(
				core.OnAccept("Add", func(a *core.Accepted) { _, _ = m.Execute(a) }),
				core.OnAccept("Count", func(a *core.Accepted) { _, _ = m.Execute(a) }),
			)
		}, core.Intercept("Add"), core.Intercept("Count")),
	)
}

// TestGroupOverRPC publishes a 4-shard group under one name and drives it
// from concurrent remote clients: the node-side router must preserve key
// affinity (every Add for a word lands on one shard) and remote Count
// must observe every preceding Add for its word.
func TestGroupOverRPC(t *testing.T) {
	g, err := shard.New("words", 4, buildCountShard,
		shard.WithKey("Add", shard.StringKey(0)),
		shard.WithKey("Count", shard.StringKey(0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	node := NewNode("host")
	if err := node.PublishCallable("words", g); err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	const words, per = 8, 20
	var wg sync.WaitGroup
	errCh := make(chan error, words)
	for w := 0; w < words; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rem, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer rem.Close()
			word := fmt.Sprintf("word-%d", w)
			shards := make(map[int]bool)
			for i := 0; i < per; i++ {
				res, err := rem.Call("words", "Add", word)
				if err != nil {
					errCh <- fmt.Errorf("Add %s: %w", word, err)
					return
				}
				shards[res[0].(int)] = true
			}
			if len(shards) != 1 {
				errCh <- fmt.Errorf("word %s spread over shards %v", word, shards)
				return
			}
			res, err := rem.Call("words", "Count", word)
			if err != nil {
				errCh <- fmt.Errorf("Count %s: %w", word, err)
				return
			}
			if res[0].(int) != per {
				errCh <- fmt.Errorf("Count %s = %v, want %d", word, res[0], per)
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if agg, ok := g.EntryStats("Add"); !ok || agg.Completed != words*per {
		t.Fatalf("aggregate Add stats = %+v, want %d completed", agg, words*per)
	}
}

func TestPublishCallableNil(t *testing.T) {
	node := NewNode("host")
	defer node.Close()
	if err := node.PublishCallable("x", nil); err == nil {
		t.Fatal("publishing nil callable succeeded")
	}
}
