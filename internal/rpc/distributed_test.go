package rpc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestDistributedNestedCalls is the §2.3 nested-call scenario spread over
// two nodes: X lives on node A, Y on node B; X.P calls Y.Q *over the
// network*, and Y.Q calls back into X.R over the network. X's manager,
// having started P asynchronously, stays receptive to R — so the chain
// completes even though it reenters X while P is still executing.
func TestDistributedNestedCalls(t *testing.T) {
	nodeA := NewNode("A")
	nodeB := NewNode("B")

	addrA, err := nodeA.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	addrB, err := nodeB.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	// Y on node B calls back to X on node A.
	backToA, err := Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer backToA.Close()
	y, err := core.New("Y",
		core.WithEntry(core.EntrySpec{Name: "Q", Params: 1, Results: 1, Array: 8,
			Body: func(inv *core.Invocation) error {
				res, err := backToA.Call("X", "R", inv.Param(0))
				if err != nil {
					return err
				}
				inv.Return(res[0])
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	if err := nodeB.Publish(y); err != nil {
		t.Fatal(err)
	}

	// X on node A calls out to Y on node B.
	toB, err := Dial(addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer toB.Close()
	x, err := core.New("X",
		core.WithEntry(core.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 8,
			Body: func(inv *core.Invocation) error {
				res, err := toB.Call("Y", "Q", inv.Param(0))
				if err != nil {
					return err
				}
				inv.Return(res[0])
				return nil
			}}),
		core.WithEntry(core.EntrySpec{Name: "R", Params: 1, Results: 1, Array: 8,
			Body: func(inv *core.Invocation) error {
				inv.Return(inv.Param(0).(int) + 1)
				return nil
			}}),
		core.WithManager(func(m *core.Mgr) {
			_ = m.Loop(
				core.OnAccept("P", func(a *core.Accepted) { _ = m.Start(a) }),
				core.OnAwait("P", func(aw *core.Awaited) { _ = m.Finish(aw) }),
				core.OnAccept("R", func(a *core.Accepted) { _, _ = m.Execute(a) }),
			)
		}, core.Intercept("P"), core.Intercept("R")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if err := nodeA.Publish(x); err != nil {
		t.Fatal(err)
	}

	// Drive the chain from a third party.
	client, err := Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := client.Call("X", "P", i)
				if err != nil {
					t.Errorf("X.P(%d): %v", i, err)
					return
				}
				if res[0] != i+1 {
					t.Errorf("X.P(%d) = %v, want %d", i, res[0], i+1)
				}
			}(i)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("distributed nested calls deadlocked")
	}
}

// TestNodeCloseFailsClients verifies that tearing a node down fails
// in-flight and subsequent client calls instead of hanging them.
func TestNodeCloseFailsClients(t *testing.T) {
	gate := make(chan struct{})
	obj, err := core.New("Slow",
		core.WithEntry(core.EntrySpec{Name: "P", Results: 1,
			Body: func(inv *core.Invocation) error {
				select {
				case <-gate:
				case <-inv.Done():
				}
				inv.Return("late")
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	defer close(gate)

	node := NewNode("doomed")
	if err := node.Publish(obj); err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	inflight := make(chan error, 1)
	go func() {
		_, err := rem.Call("Slow", "P")
		inflight <- err
	}()
	time.Sleep(50 * time.Millisecond)
	node.Close()
	select {
	case err := <-inflight:
		if err == nil {
			t.Fatal("in-flight call survived node Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung through node Close")
	}
	if _, err := rem.Call("Slow", "P"); !errors.Is(err, ErrLinkClosed) {
		t.Fatalf("call after node Close: %v, want ErrLinkClosed", err)
	}
}

// TestServeOnClosedNode checks Serve's behaviour after Close.
func TestServeOnClosedNode(t *testing.T) {
	node := NewNode("x")
	node.Close()
	if _, err := node.ListenAndServe("127.0.0.1:0"); err == nil {
		t.Fatal("ListenAndServe on closed node succeeded")
	}
}

// TestPublishAfterClose checks Publish's behaviour after Close.
func TestPublishAfterClose(t *testing.T) {
	node := NewNode("x")
	node.Close()
	obj, err := core.New("A",
		core.WithEntry(core.EntrySpec{Name: "P", Body: func(inv *core.Invocation) error { return nil }}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	if err := node.Publish(obj); err == nil {
		t.Fatal("Publish on closed node succeeded")
	}
}
