package rpc

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/simnet"
)

// TestRPCKeyOrderConformance replays a remote execution ledger, produced
// under connection-kill chaos, through the conformance key-order checker:
// the at-most-once dedup layer must absorb every retry (no (client, key,
// seq) executes twice) and each synchronous client's per-key calls must
// execute in issue order despite reconnects.
func TestRPCKeyOrderConformance(t *testing.T) {
	network := simnet.New(simnet.Config{
		Latency:  50 * time.Microsecond,
		Jitter:   25 * time.Microsecond,
		KillProb: 0.02,
		Seed:     7,
	})

	var (
		mu     sync.Mutex
		ledger []conformance.KeyedExec
	)
	obj, err := core.New("Led",
		core.WithEntry(core.EntrySpec{Name: "Exec", Params: 3, Results: 1, Array: 8,
			Body: func(inv *core.Invocation) error {
				mu.Lock()
				ledger = append(ledger, conformance.KeyedExec{
					Key:    inv.Param(0).(string),
					Client: inv.Param(1).(string),
					Seq:    inv.Param(2).(int),
					Shard:  "srv",
				})
				mu.Unlock()
				inv.Return(inv.Param(2))
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}

	node := NewNodeWith("srv", NodeOptions{DedupCap: 8192})
	if err := node.Publish(obj); err != nil {
		t.Fatal(err)
	}
	lis, err := network.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = node.Serve(lis) }()

	const clients, keysPer, seqsPer = 3, 2, 30
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("c%d", c)
			redial := func() (net.Conn, error) { return network.DialFrom(client, "srv") }
			conn, err := redial()
			if err != nil {
				t.Errorf("%s: initial dial: %v", client, err)
				return
			}
			rem := DialConnWith(conn, DialOptions{
				ClientID: client,
				Redial:   redial,
				Retry: RetryPolicy{
					Max:            100,
					Backoff:        time.Millisecond,
					MaxBackoff:     25 * time.Millisecond,
					AttemptTimeout: time.Second,
				},
			})
			defer rem.Close()
			// Interleave the client's keys; per-key seq order follows from
			// the calls being synchronous.
			for s := 0; s < seqsPer; s++ {
				for k := 0; k < keysPer; k++ {
					key := fmt.Sprintf("%s-key%d", client, k)
					res, err := rem.Call("Led", "Exec", key, client, s)
					if err != nil {
						t.Errorf("%s %s seq %d: %v", client, key, s, err)
						return
					}
					if len(res) != 1 || res[0] != s {
						t.Errorf("%s %s seq %d: answered %v", client, key, s, res)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	node.Close()
	if err := obj.Close(); err != nil {
		t.Errorf("close: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if want := clients * keysPer * seqsPer; len(ledger) != want {
		t.Errorf("ledger has %d executions, want %d (retry executed twice, or call lost)", len(ledger), want)
	}
	for _, d := range conformance.CheckKeyOrder(ledger) {
		t.Errorf("divergence: %s", d)
	}
	kills, _, _ := network.Stats()
	t.Logf("chaos: %d connection kills over %d executions", kills, len(ledger))
	if kills == 0 {
		t.Error("fault injection never fired — conformance run is vacuous")
	}
}
