package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// whoCallable answers every call with its node's name, so tests can
// observe which member of a multi-address group actually served.
type whoCallable struct{ id string }

func (w *whoCallable) CallCtx(ctx context.Context, entry string, params ...any) ([]any, error) {
	return []any{w.id}, nil
}

// multiMember is one address slot in a DialMulti group: the port is
// reserved up front so the address is stable across start/stop cycles.
type multiMember struct {
	id   string
	addr string
	node *Node
}

func reserveMultiAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = lis.Addr().String()
		_ = lis.Close()
	}
	return addrs
}

func (m *multiMember) start(t *testing.T) {
	t.Helper()
	m.node = NewNode(m.id)
	if err := m.node.PublishCallable("Who", &whoCallable{id: m.id}); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", m.addr)
	if err != nil {
		t.Fatalf("member %s listen %s: %v", m.id, m.addr, err)
	}
	go func() { _ = m.node.Serve(lis) }()
}

func (m *multiMember) stop() {
	if m.node != nil {
		m.node.Close()
		m.node = nil
	}
}

func whoServes(t *testing.T, rem *Remote) string {
	t.Helper()
	res, err := rem.CallWith(context.Background(),
		CallOptions{Retry: &RetryPolicy{Max: 8, Backoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}},
		"Who", "Who")
	if err != nil {
		t.Fatalf("Who: %v", err)
	}
	id, _ := res[0].(string)
	return id
}

// TestDialMultiRotation is the table-driven rotation suite: which member
// serves, and which typed error surfaces, as group membership comes and
// goes around a multi-address Remote.
func TestDialMultiRotation(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, members []*multiMember, addrs []string)
	}{
		{
			// The initial dial rotates past dead members and lands on the
			// only live one, wherever it sits in the list.
			name: "initial dial skips dead members",
			run: func(t *testing.T, members []*multiMember, addrs []string) {
				members[2].start(t)
				defer members[2].stop()
				rem, err := DialMulti(addrs, DialOptions{ClientID: "c-skip"})
				if err != nil {
					t.Fatalf("DialMulti with one live member: %v", err)
				}
				defer rem.Close()
				if id := whoServes(t, rem); id != "m2" {
					t.Fatalf("served by %s, want m2", id)
				}
			},
		},
		{
			// No live members at all: the dial fails with an error that
			// names the full rotation, wrapping the last dial failure.
			name: "all members down",
			run: func(t *testing.T, members []*multiMember, addrs []string) {
				_, err := DialMulti(addrs, DialOptions{Timeout: time.Second})
				if err == nil {
					t.Fatal("DialMulti succeeded with no live members")
				}
				if !strings.Contains(err.Error(), fmt.Sprintf("all %d addresses failed", len(addrs))) {
					t.Fatalf("error does not report the full rotation: %v", err)
				}
				var ne net.Error
				if !errors.As(err, &ne) && !errors.Is(err, net.ErrClosed) {
					// Connection-refused surfaces as *net.OpError; the typed
					// chain must survive DialMulti's wrapping.
					t.Fatalf("underlying dial error lost: %v", err)
				}
			},
		},
		{
			// The serving member dies mid-stream; the next call redials,
			// rotates to a different live member, and completes.
			name: "failover rotates to surviving member",
			run: func(t *testing.T, members []*multiMember, addrs []string) {
				members[0].start(t)
				members[1].start(t)
				defer members[0].stop()
				defer members[1].stop()
				rem, err := DialMulti(addrs, DialOptions{ClientID: "c-failover"})
				if err != nil {
					t.Fatal(err)
				}
				defer rem.Close()
				first := whoServes(t, rem)
				if first != "m0" && first != "m1" {
					t.Fatalf("served by %s, want m0 or m1", first)
				}
				// Kill the member that served; the survivor must take over.
				for _, m := range members {
					if m.id == first {
						m.stop()
					}
				}
				second := whoServes(t, rem)
				if second == first {
					t.Fatalf("still served by dead member %s", first)
				}
				if second != "m0" && second != "m1" {
					t.Fatalf("served by %s after failover, want the survivor", second)
				}
			},
		},
		{
			// A member that left comes back as the only live one; the
			// rotation finds it again instead of pinning to the dead set.
			name: "single member recovers",
			run: func(t *testing.T, members []*multiMember, addrs []string) {
				members[0].start(t)
				rem, err := DialMulti(addrs, DialOptions{ClientID: "c-recover"})
				if err != nil {
					t.Fatal(err)
				}
				defer rem.Close()
				if id := whoServes(t, rem); id != "m0" {
					t.Fatalf("served by %s, want m0", id)
				}
				members[0].stop()
				// The whole group is down: a bounded call must fail with the
				// typed link error, not hang.
				_, err = rem.CallWith(context.Background(),
					CallOptions{Retry: &RetryPolicy{Max: 2, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}},
					"Who", "Who")
				if !errors.Is(err, ErrLinkClosed) {
					t.Fatalf("call with group down: %v, want ErrLinkClosed", err)
				}
				// A different member recovers; the same Remote rotates onto it.
				members[1].start(t)
				defer members[1].stop()
				if id := whoServes(t, rem); id != "m1" {
					t.Fatalf("served by %s after recovery, want m1", id)
				}
			},
		},
		{
			// Retry budgets are bounded: with the group down, a call with
			// Retry.Max=N makes exactly N+1 attempts (observable as N+1
			// redial probes of the full rotation) and then fails typed.
			name: "bounded retry with typed error",
			run: func(t *testing.T, members []*multiMember, addrs []string) {
				members[0].start(t)
				rem, err := DialMulti(addrs, DialOptions{ClientID: "c-bounded"})
				if err != nil {
					t.Fatal(err)
				}
				defer rem.Close()
				if id := whoServes(t, rem); id != "m0" {
					t.Fatalf("served by %s, want m0", id)
				}
				members[0].stop()
				start := time.Now()
				_, err = rem.CallWith(context.Background(),
					CallOptions{Retry: &RetryPolicy{Max: 3, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}},
					"Who", "Who")
				if err == nil {
					t.Fatal("call succeeded with every member down")
				}
				if !errors.Is(err, ErrLinkClosed) {
					t.Fatalf("exhausted call error %v, want ErrLinkClosed", err)
				}
				if elapsed := time.Since(start); elapsed > 10*time.Second {
					t.Fatalf("bounded retry took %v; budget leak", elapsed)
				}
			},
		},
		{
			// An empty address list is a configuration error, reported
			// immediately.
			name: "no addresses",
			run: func(t *testing.T, members []*multiMember, addrs []string) {
				if _, err := DialMulti(nil, DialOptions{}); err == nil {
					t.Fatal("DialMulti(nil) succeeded")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addrs := reserveMultiAddrs(t, 3)
			members := make([]*multiMember, len(addrs))
			for i := range members {
				members[i] = &multiMember{id: fmt.Sprintf("m%d", i), addr: addrs[i]}
				t.Cleanup(members[i].stop)
			}
			tc.run(t, members, addrs)
		})
	}
}
