package rpc_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/rpc"
)

// Example publishes an object on a node and calls it remotely over TCP
// loopback — "calls to the entry procedures of an object are implemented
// as remote procedure calls" (§1).
func Example() {
	obj, err := core.New("Adder",
		core.WithEntry(core.EntrySpec{Name: "Add", Params: 2, Results: 1,
			Body: func(inv *core.Invocation) error {
				inv.Return(inv.Param(0).(int) + inv.Param(1).(int))
				return nil
			}}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()

	node := rpc.NewNode("example")
	if err := node.Publish(obj); err != nil {
		log.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	rem, err := rpc.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer rem.Close()
	res, err := rem.Call("Adder", "Add", 40, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res[0])
	// Output: 42
}
