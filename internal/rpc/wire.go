// Package rpc is the distributed substrate for ALPS objects (paper §1, §3):
// calls to the entry procedures of a remote object are remote procedure
// calls, and a caller can further communicate with an executing remote
// procedure by message passing on point-to-point channels passed as call
// parameters.
//
// A Node hosts objects (and channels) behind a TCP listener; a Remote is a
// client connection. Frames use internal/wire's length-prefixed binary
// codec over a persistent, pipelined connection; parameter and result
// values must be wire-encodable (basic types, []byte, []any,
// map[string]any and ChanRef work out of the box, user-defined struct
// types are registered with Register).
package rpc

import (
	"errors"

	"repro/internal/wire"
)

// The rpc layer's frame vocabulary is the wire package's, re-exported
// under the historical local names so the serving and dispatch code reads
// unchanged.
type (
	frameKind = wire.Kind
	errKind   = wire.ErrKind
	frame     = wire.Frame
)

const (
	frameRequest  = wire.KindRequest
	frameResponse = wire.KindResponse
	frameChanSend = wire.KindChanSend
	frameList     = wire.KindList
	frameListResp = wire.KindListResp

	errNone          = wire.ErrNone
	errGeneric       = wire.ErrGeneric
	errClosed        = wire.ErrKindClosed
	errUnknownEntry  = wire.ErrKindUnknownEntry
	errUnknownObject = wire.ErrKindUnknownObject
	errBadArity      = wire.ErrKindBadArity
	errOverload      = wire.ErrKindOverload
	errPoisoned      = wire.ErrKindPoisoned
	errReplayTimeout = wire.ErrKindReplayTimeout
	errNotLeader     = wire.ErrKindNotLeader
)

// ChanRef names a channel published on the sending side of a call. When a
// ChanRef arrives as a call parameter, the receiving node replaces it with
// a live channel whose sends are forwarded back to the publisher — this is
// how a user communicates with an executing remote procedure (§1).
type ChanRef = wire.ChanRef

// ErrUnknownObject is returned when a call names an object the node does
// not host.
var ErrUnknownObject = wire.ErrUnknownObject

// ErrBadFrame reports a frame that failed structural validation: a bad
// length prefix, a CRC mismatch, a truncated varint, or an unknown frame
// kind, error kind or value tag. A peer sending such frames is corrupting
// bytes or not speaking this protocol at all, so the link is torn down
// rather than guessing.
var ErrBadFrame = wire.ErrMalformed

// ErrVersionSkew reports a connection whose protocol hello did not match
// this build — an old gob-era peer or a foreign protocol. The link fails
// before any frame is exchanged.
var ErrVersionSkew = wire.ErrVersionSkew

// ErrLinkClosed is returned for calls over a closed or failed connection.
var ErrLinkClosed = errors.New("rpc: connection closed")

// ErrReplayTimeout is returned to a duplicate request that waited
// NodeOptions.ReplayWait for the primary execution of its (client, seq)
// without seeing it complete. The original execution continues; its result
// stays in the dedup cache, so a later retry of the same sequence number
// replays it. Retryable with the SAME sequence number.
var ErrReplayTimeout = wire.ErrReplayTimeout

// ErrNotLeader is returned by a consensus-replicated object when the
// member that received the call cannot commit it: it is a follower, or an
// election is in flight. The call may nevertheless have committed on the
// group (a response lost in a failover), so retries MUST keep the same
// sequence number — the replicated session table turns the retry into a
// replay if the original landed. Remotes built with DialMulti rotate to
// the next group address before retrying (docs/REPLICATION.md).
var ErrNotLeader = wire.ErrNotLeader

// Register makes a user-defined type transmissible as a parameter, result
// or message value. It must be called identically on both ends before the
// type is used — links capture the registered set when they are created.
//
// Registration goes to an explicit type table (wire.DefaultTable), not a
// process-global gob registry: it is concurrency-safe, idempotent, and
// duplicate-name panics are impossible because names are package-path
// qualified.
func Register(value any) {
	wire.Register(value)
}

// encodeErr maps an error to its wire representation.
func encodeErr(err error) (string, errKind) { return wire.EncodeErr(err) }

// decodeErr reconstructs an error from its wire representation, preserving
// sentinel identity for errors.Is.
func decodeErr(msg string, kind errKind) error { return wire.DecodeErr(msg, kind) }
