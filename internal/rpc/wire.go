// Package rpc is the distributed substrate for ALPS objects (paper §1, §3):
// calls to the entry procedures of a remote object are remote procedure
// calls, and a caller can further communicate with an executing remote
// procedure by message passing on point-to-point channels passed as call
// parameters.
//
// A Node hosts objects (and channels) behind a TCP listener; a Remote is a
// client connection. Frames are gob-encoded over a persistent connection;
// parameter and result values must be gob-encodable (basic types work out
// of the box, user-defined types are registered with Register).
package rpc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
)

// frameKind discriminates wire frames.
type frameKind int

const (
	frameRequest  frameKind = iota + 1 // call an entry procedure
	frameResponse                      // results of a request
	frameChanSend                      // message for a published channel
	frameList                          // list hosted objects
	frameListResp                      // response to frameList
)

// errKind carries sentinel-error identity across the wire.
type errKind int

const (
	errNone errKind = iota
	errGeneric
	errClosed
	errUnknownEntry
	errUnknownObject
	errBadArity
	errOverload      // core.ErrOverload: admission control shed the call; retryable
	errPoisoned      // core.ErrObjectPoisoned: object's manager died; terminal
	errReplayTimeout // ErrReplayTimeout: duplicate gave up waiting on the primary; retryable
)

// frame is the single wire message type.
type frame struct {
	Kind    frameKind
	ID      uint64
	Object  string
	Entry   string
	Params  []any
	Results []any
	Err     string
	ErrKind errKind
	Chan    string
	Names   []string

	// Client and Seq identify a logical call across retries and
	// reconnects: Client is the caller's stable identity, Seq its
	// per-client call sequence number. Nodes dedup on the pair so retried
	// requests execute at most once (docs/FAULTS.md); a zero Client means
	// the caller wants no dedup.
	Client string
	Seq    uint64
}

// ChanRef names a channel published on the sending side of a call. When a
// ChanRef arrives as a call parameter, the receiving node replaces it with
// a live channel whose sends are forwarded back to the publisher — this is
// how a user communicates with an executing remote procedure (§1).
type ChanRef struct {
	Name string
}

// ErrUnknownObject is returned when a call names an object the node does
// not host.
var ErrUnknownObject = errors.New("rpc: unknown object")

// ErrBadFrame reports a decoded frame that failed structural validation:
// an unknown frame kind or error kind. A peer sending such frames is
// either a version-skewed build or not speaking this protocol at all, so
// the link is torn down rather than guessing.
var ErrBadFrame = errors.New("rpc: malformed frame")

func (k frameKind) valid() bool { return k >= frameRequest && k <= frameListResp }

func (k errKind) valid() bool { return k >= errNone && k <= errReplayTimeout }

// validate rejects frames whose discriminants fall outside the protocol.
// It runs on every decoded frame before dispatch; gob guarantees the
// field types, this guarantees the values.
func (f *frame) validate() error {
	if !f.Kind.valid() {
		return fmt.Errorf("%w: unknown frame kind %d", ErrBadFrame, int(f.Kind))
	}
	if !f.ErrKind.valid() {
		return fmt.Errorf("%w: unknown error kind %d", ErrBadFrame, int(f.ErrKind))
	}
	return nil
}

// ErrLinkClosed is returned for calls over a closed or failed connection.
var ErrLinkClosed = errors.New("rpc: connection closed")

// ErrReplayTimeout is returned to a duplicate request that waited
// NodeOptions.ReplayWait for the primary execution of its (client, seq)
// without seeing it complete. The original execution continues; its result
// stays in the dedup cache, so a later retry of the same sequence number
// replays it. Retryable with the SAME sequence number.
var ErrReplayTimeout = errors.New("rpc: timed out waiting for in-flight duplicate")

var registerOnce sync.Once

// registerDefaults registers the types commonly carried inside []any.
func registerDefaults() {
	registerOnce.Do(func() {
		gob.Register(ChanRef{})
		gob.Register([]any{})
		gob.Register(map[string]any{})
		gob.Register([]byte(nil))
		gob.Register([2]int{})
	})
}

// Register makes a user-defined type transmissible as a parameter, result
// or message value. It must be called identically on both ends before the
// type is used.
func Register(value any) {
	registerDefaults()
	gob.Register(value)
}

// encodeErr maps an error to its wire representation.
func encodeErr(err error) (string, errKind) {
	if err == nil {
		return "", errNone
	}
	kind := errGeneric
	switch {
	// Poison wraps the manager's panic text, which could itself mention
	// other sentinels; check it first so the terminal classification wins.
	case errors.Is(err, core.ErrObjectPoisoned):
		kind = errPoisoned
	case errors.Is(err, core.ErrOverload):
		kind = errOverload
	case errors.Is(err, core.ErrClosed):
		kind = errClosed
	case errors.Is(err, core.ErrUnknownEntry):
		kind = errUnknownEntry
	case errors.Is(err, ErrUnknownObject):
		kind = errUnknownObject
	case errors.Is(err, core.ErrBadArity):
		kind = errBadArity
	case errors.Is(err, ErrReplayTimeout):
		kind = errReplayTimeout
	}
	return err.Error(), kind
}

// decodeErr reconstructs an error from its wire representation, preserving
// sentinel identity for errors.Is.
func decodeErr(msg string, kind errKind) error {
	if kind == errNone {
		return nil
	}
	switch kind {
	case errClosed:
		return rewrap(msg, core.ErrClosed)
	case errUnknownEntry:
		return rewrap(msg, core.ErrUnknownEntry)
	case errUnknownObject:
		return rewrap(msg, ErrUnknownObject)
	case errBadArity:
		return rewrap(msg, core.ErrBadArity)
	case errOverload:
		return rewrap(msg, core.ErrOverload)
	case errPoisoned:
		return rewrap(msg, core.ErrObjectPoisoned)
	case errReplayTimeout:
		return rewrap(msg, ErrReplayTimeout)
	default:
		// frame.validate rejects out-of-range kinds before dispatch, so
		// this is defense in depth for callers that skip validation.
		return fmt.Errorf("%s: %w", msg, ErrBadFrame)
	}
}

// rewrap re-attaches a sentinel to a remote error message for errors.Is,
// without repeating the sentinel's own text when the message (produced by
// wrapping the same sentinel on the server) already ends with it.
func rewrap(msg string, sentinel error) error {
	s := sentinel.Error()
	if msg == s {
		return sentinel
	}
	msg = strings.TrimSuffix(msg, ": "+s)
	return fmt.Errorf("%s: %w", msg, sentinel)
}
