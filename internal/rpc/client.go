package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// errRemoteClosed fails calls on a Remote the user has Closed. It is
// deliberately not ErrLinkClosed so the retry loop never resurrects a
// closed client.
var errRemoteClosed = errors.New("rpc: remote is closed")

// Remote is a client connection to a node. It can call remote objects,
// list them, and publish channels for executing remote procedures to send
// messages back on. With a Redial function configured it survives link
// failures: calls are retried with exponential backoff over fresh
// connections, and the node's dedup cache guarantees each logical call
// executes at most once (docs/FAULTS.md).
type Remote struct {
	opts DialOptions
	seq  atomic.Uint64

	mu     sync.Mutex
	link   *link
	pubs   map[string]*channel.Chan // published channels, re-announced on reconnect
	closed bool

	rngMu   sync.Mutex
	rng     *workload.RNG
	nextRef atomic.Uint64
}

// Dial connects to a node at addr with default options.
func Dial(addr string) (*Remote, error) {
	return DialWith(addr, DialOptions{})
}

// DialWith connects to a node at addr. When opts.Redial is nil it is
// filled with a TCP redial of addr, so the Remote reconnects through
// link failures.
func DialWith(addr string, opts DialOptions) (*Remote, error) {
	opts = opts.withDefaults()
	if opts.Redial == nil {
		timeout := opts.Timeout
		opts.Redial = func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := opts.Redial()
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return newRemote(conn, opts), nil
}

// DialMulti connects to a replicated group: it dials the first reachable
// address and rotates through the list on every redial, so the Remote
// follows leadership — a link death (the leader was killed) or an
// ErrNotLeader response (we reached a follower) bounces the transport and
// the retry lands on the next address, same sequence number. Supplying
// opts.Redial overrides the rotation entirely (the injection point for
// simnet transports, which rotate in the caller's own dial function).
func DialMulti(addrs []string, opts DialOptions) (*Remote, error) {
	if len(addrs) == 0 {
		return nil, errors.New("rpc: dial multi: no addresses")
	}
	opts = opts.withDefaults()
	if opts.Redial == nil {
		timeout := opts.Timeout
		var next atomic.Uint64
		opts.Redial = func() (net.Conn, error) {
			var lastErr error
			for range addrs {
				addr := addrs[int(next.Add(1)-1)%len(addrs)]
				conn, err := net.DialTimeout("tcp", addr, timeout)
				if err == nil {
					return conn, nil
				}
				lastErr = err
			}
			return nil, fmt.Errorf("rpc: dial multi: all %d addresses failed: %w", len(addrs), lastErr)
		}
	}
	conn, err := opts.Redial()
	if err != nil {
		return nil, err
	}
	return newRemote(conn, opts), nil
}

// DialConn wraps an established connection as a client — the injection
// point for alternative transports such as the simulated transputer
// network (internal/simnet).
func DialConn(conn net.Conn) *Remote {
	return DialConnWith(conn, DialOptions{})
}

// DialConnWith is DialConn with options; supply opts.Redial to enable
// reconnection over the alternative transport.
func DialConnWith(conn net.Conn, opts DialOptions) *Remote {
	return newRemote(conn, opts.withDefaults())
}

func newRemote(conn net.Conn, opts DialOptions) *Remote {
	r := &Remote{opts: opts, rng: workload.NewRNG(seedFrom(opts.ClientID))}
	r.link = newLink(conn, nil, linkHooks{metrics: opts.Metrics, rec: opts.Trace})
	return r
}

// ClientID reports the identity used for at-most-once dedup.
func (r *Remote) ClientID() string { return r.opts.ClientID }

// Call invokes an entry procedure of a remote object ("X.P(...)") and
// blocks until it terminates, applying the Remote's default retry policy.
func (r *Remote) Call(object, entry string, params ...any) ([]any, error) {
	return r.CallWith(context.Background(), CallOptions{}, object, entry, params...)
}

// CallCtx is Call with a context for cancellation. Cancellation abandons
// the wait; the remote call itself may still complete on the node.
func (r *Remote) CallCtx(ctx context.Context, object, entry string, params ...any) ([]any, error) {
	return r.CallWith(ctx, CallOptions{}, object, entry, params...)
}

// CallWith is CallCtx with per-call options. Transport failures are
// retried per the policy; a retry of a call the node already executed
// replays the original result instead of re-running the entry body.
func (r *Remote) CallWith(ctx context.Context, opts CallOptions, object, entry string, params ...any) ([]any, error) {
	pol := r.opts.Retry
	if opts.Retry != nil {
		pol = *opts.Retry
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}
	seq := r.seq.Add(1)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if m := r.opts.Metrics; m != nil {
				m.Retries.Inc()
			}
			r.opts.Trace.Record(object, entry, -1, seq, trace.Retried)
			if err := r.sleep(ctx, pol.delay(attempt, r.jitter)); err != nil {
				return nil, lastErr
			}
		}
		l, err := r.healthyLink()
		if err == nil {
			actx, acancel := ctx, context.CancelFunc(func() {})
			if pol.AttemptTimeout > 0 {
				actx, acancel = context.WithTimeout(ctx, pol.AttemptTimeout)
			}
			var res []any
			res, err = l.call(actx, object, entry, params, r.opts.ClientID, seq)
			acancel()
			if err == nil {
				return res, nil
			}
		}
		lastErr = err
		if attempt >= pol.Max || !retryableErr(err) || ctx.Err() != nil {
			return nil, err
		}
		if errors.Is(err, ErrNotLeader) {
			// The peer cannot commit the call — it is a follower or the
			// group is mid-election. The link itself is healthy, so a bare
			// retry would hit the same non-leader forever; bounce the
			// transport so the redial (rotating through the group's
			// addresses under DialMulti) lands the retry elsewhere. The
			// sequence number is deliberately kept: the call may have
			// committed on the group already, and the replicated session
			// table turns the retry into a replay if it did.
			r.bounceLink()
		}
		if errors.Is(err, core.ErrOverload) {
			// The node shed the call: it definitively did not execute, so
			// the retry is a fresh logical call and must carry a fresh
			// sequence number — reusing seq would make the node's
			// at-most-once cache replay the cached rejection forever.
			seq = r.seq.Add(1)
			if m := r.opts.Metrics; m != nil {
				m.Overloads.Inc()
			}
		}
	}
}

// retryableErr reports whether err is worth retrying: a transport failure,
// or an admission-control rejection (core.ErrOverload — the call was shed
// before executing, so a backed-off retry is always safe). Other errors
// returned by the remote object itself are final; in particular
// core.ErrObjectPoisoned is terminal — the object's manager is dead and no
// amount of retrying will revive it. Per-attempt deadline expiry is
// retryable (the caller checks the overall context).
func retryableErr(err error) bool {
	return errors.Is(err, ErrLinkClosed) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, core.ErrOverload) ||
		// A replay-wait timeout means the original execution is still in
		// flight; retrying with the SAME sequence number (unlike overload)
		// re-enters the wait and eventually replays its result.
		errors.Is(err, ErrReplayTimeout) ||
		// Not-the-leader means the call did not commit HERE, but may have
		// committed on the group; same sequence number, next address.
		errors.Is(err, ErrNotLeader)
}

// bounceLink tears the current link down so the next attempt redials. Used
// when the transport is healthy but pointed at the wrong group member.
func (r *Remote) bounceLink() {
	r.mu.Lock()
	l := r.link
	r.mu.Unlock()
	if l != nil {
		l.close()
	}
}

// healthyLink returns the live link, redialling if the current one died.
// Concurrent callers serialize on the reconnect, so one redial serves all.
func (r *Remote) healthyLink() (*link, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errRemoteClosed
	}
	if r.link != nil && !r.link.isClosed() {
		return r.link, nil
	}
	if r.opts.Redial == nil {
		return nil, fmt.Errorf("rpc: no redial configured: %w", r.link.closeReason())
	}
	conn, err := r.opts.Redial()
	if err != nil {
		return nil, fmt.Errorf("rpc: redial: %v: %w", err, ErrLinkClosed)
	}
	old := r.link
	r.link = newLink(conn, nil, linkHooks{metrics: r.opts.Metrics, rec: r.opts.Trace})
	for name, ch := range r.pubs {
		_ = r.link.publishChan(name, ch)
	}
	if old != nil {
		go old.close()
	}
	if m := r.opts.Metrics; m != nil {
		m.Reconnects.Inc()
	}
	return r.link, nil
}

// jitter draws from the Remote's deterministic backoff stream.
func (r *Remote) jitter(n int) int {
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	return r.rng.Intn(n)
}

// sleep waits for d or the context, whichever first.
func (r *Remote) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// List reports the object names hosted by the node, bounded by the
// configured ListTimeout.
func (r *Remote) List() ([]string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.ListTimeout)
	defer cancel()
	return r.ListCtx(ctx)
}

// ListCtx is List with a caller-supplied context.
func (r *Remote) ListCtx(ctx context.Context) ([]string, error) {
	l, err := r.healthyLink()
	if err != nil {
		return nil, err
	}
	return l.list(ctx)
}

// PublishChan registers a local channel and returns the ChanRef to pass as
// a call parameter: the executing remote procedure receives a live channel
// whose sends are delivered into ch (message passing to an executing
// remote procedure, paper §1). Publications survive reconnects: each new
// link re-announces them under the same name.
func (r *Remote) PublishChan(name string, ch *channel.Chan) ChanRef {
	if name == "" {
		name = fmt.Sprintf("chan-%d", r.nextRef.Add(1))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pubs == nil {
		r.pubs = make(map[string]*channel.Chan)
	}
	r.pubs[name] = ch
	return r.link.publishChan(name, ch)
}

// Close tears the connection down; in-flight calls fail with ErrLinkClosed
// and no further reconnects are attempted.
func (r *Remote) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	l := r.link
	r.mu.Unlock()
	if l != nil {
		l.close()
	}
}

// Object returns a handle binding the object name, for call-site brevity.
func (r *Remote) Object(name string) *RemoteObject {
	return &RemoteObject{remote: r, name: name}
}

// RemoteObject is a bound handle on one remote object.
type RemoteObject struct {
	remote *Remote
	name   string
}

// Name reports the bound object name.
func (ro *RemoteObject) Name() string { return ro.name }

// Call invokes an entry of the bound object.
func (ro *RemoteObject) Call(entry string, params ...any) ([]any, error) {
	return ro.remote.Call(ro.name, entry, params...)
}

// CallCtx is Call with a context.
func (ro *RemoteObject) CallCtx(ctx context.Context, entry string, params ...any) ([]any, error) {
	return ro.remote.CallCtx(ctx, ro.name, entry, params...)
}

// CallWith is Call with a context and per-call options.
func (ro *RemoteObject) CallWith(ctx context.Context, opts CallOptions, entry string, params ...any) ([]any, error) {
	return ro.remote.CallWith(ctx, opts, ro.name, entry, params...)
}
