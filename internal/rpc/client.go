package rpc

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/channel"
)

// Remote is a client connection to a node. It can call remote objects,
// list them, and publish channels for executing remote procedures to send
// messages back on.
type Remote struct {
	link *link
}

// Dial connects to a node at addr.
func Dial(addr string) (*Remote, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return DialConn(conn), nil
}

// DialConn wraps an established connection as a client — the injection
// point for alternative transports such as the simulated transputer
// network (internal/simnet).
func DialConn(conn net.Conn) *Remote {
	return &Remote{link: newLink(conn, nil)}
}

// Call invokes an entry procedure of a remote object ("X.P(...)") and
// blocks until it terminates.
func (r *Remote) Call(object, entry string, params ...any) ([]any, error) {
	return r.CallCtx(context.Background(), object, entry, params...)
}

// CallCtx is Call with a context for cancellation. Cancellation abandons
// the wait; the remote call itself may still complete on the node.
func (r *Remote) CallCtx(ctx context.Context, object, entry string, params ...any) ([]any, error) {
	return r.link.call(ctx, object, entry, params)
}

// List reports the object names hosted by the node.
func (r *Remote) List() ([]string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return r.link.list(ctx)
}

// PublishChan registers a local channel and returns the ChanRef to pass as
// a call parameter: the executing remote procedure receives a live channel
// whose sends are delivered into ch (message passing to an executing
// remote procedure, paper §1).
func (r *Remote) PublishChan(name string, ch *channel.Chan) ChanRef {
	return r.link.publishChan(name, ch)
}

// Object returns a handle binding the object name, for call-site brevity.
func (r *Remote) Object(name string) *RemoteObject {
	return &RemoteObject{remote: r, name: name}
}

// Close tears the connection down; in-flight calls fail with ErrLinkClosed.
func (r *Remote) Close() {
	r.link.close()
}

// RemoteObject is a bound handle on one remote object.
type RemoteObject struct {
	remote *Remote
	name   string
}

// Name reports the bound object name.
func (ro *RemoteObject) Name() string { return ro.name }

// Call invokes an entry of the bound object.
func (ro *RemoteObject) Call(entry string, params ...any) ([]any, error) {
	return ro.remote.Call(ro.name, entry, params...)
}

// CallCtx is Call with a context.
func (ro *RemoteObject) CallCtx(ctx context.Context, entry string, params ...any) ([]any, error) {
	return ro.remote.CallCtx(ctx, ro.name, entry, params...)
}
