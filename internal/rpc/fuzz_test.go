package rpc

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"
)

// FuzzFrameDecode feeds arbitrary byte streams to the frame decoder
// (mirroring internal/channel/fuzz_test.go for the wire layer): readLoop
// treats any decode failure as link death, so a truncated or corrupted
// gob stream must produce an error — never a panic or a hang — and
// whatever does decode must round-trip the error codec safely.
func FuzzFrameDecode(f *testing.F) {
	registerDefaults()
	seedFrames := []frame{
		{Kind: frameRequest, ID: 1, Object: "X", Entry: "P", Params: []any{1, "s"}, Client: "c", Seq: 7},
		{Kind: frameResponse, ID: 2, Results: []any{42}, Err: "boom", ErrKind: errClosed},
		{Kind: frameChanSend, Chan: "chan-1", Params: []any{[]byte{1, 2, 3}}},
		{Kind: frameList, ID: 3},
		{Kind: frameListResp, ID: 3, Names: []string{"A", "B"}},
		// Group-routed request: a call addressed to a shard.Group published
		// under one name, with the string routing key in params — the wire
		// shape cmd/alpsd serves with -shards.
		{Kind: frameRequest, ID: 4, Object: "words", Entry: "Add", Params: []any{"alps", 3}, Client: "g", Seq: 1},
		{Kind: frameResponse, ID: 4, Err: "shard 2 poisoned", ErrKind: errPoisoned},
		// Out-of-protocol discriminants: validate must flag both without
		// the decoder panicking or the codec round-trip misbehaving.
		{Kind: frameKind(99), ID: 5},
		{Kind: frameResponse, ID: 6, Err: "mystery", ErrKind: errKind(77)},
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for i := range seedFrames {
		if err := enc.Encode(&seedFrames[i]); err != nil {
			f.Fatal(err)
		}
	}
	full := buf.Bytes()
	f.Add(full)
	for _, cut := range []int{1, len(full) / 3, len(full) / 2, len(full) - 1} {
		f.Add(append([]byte(nil), full[:cut]...))
	}
	corrupted := append([]byte(nil), full...)
	for i := 7; i < len(corrupted); i += 13 {
		corrupted[i] ^= 0xff
	}
	f.Add(corrupted)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := gob.NewDecoder(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			var fr frame
			if err := dec.Decode(&fr); err != nil {
				return // corrupt/truncated input must fail cleanly
			}
			if err := decodeErr(fr.Err, fr.ErrKind); (err == nil) != (fr.ErrKind == errNone) {
				t.Fatalf("decodeErr(%q, %d) nil-ness inconsistent", fr.Err, fr.ErrKind)
			}
			if err := fr.validate(); err != nil {
				if !errors.Is(err, ErrBadFrame) {
					t.Fatalf("validate returned untyped error %v", err)
				}
				if fr.Kind.valid() && fr.ErrKind.valid() {
					t.Fatalf("validate rejected in-range frame %+v: %v", fr, err)
				}
			} else if !fr.Kind.valid() || !fr.ErrKind.valid() {
				t.Fatalf("validate accepted out-of-range frame %+v", fr)
			}
		}
	})
}
