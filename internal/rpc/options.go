package rpc

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"net"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wal"
)

// RetryPolicy governs how a Remote re-issues failed calls. Retries are
// only attempted for transport-level failures (link death, redial
// failure, per-attempt timeout), never for errors the object itself
// returned; combined with the node's at-most-once cache, a retried call
// observes the original execution's result rather than running twice.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt (0 = no retry).
	Max int
	// Backoff is the delay before the first retry (default 5ms). Each
	// subsequent retry doubles it, with ±50% deterministic jitter.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 500ms).
	MaxBackoff time.Duration
	// AttemptTimeout bounds each individual attempt (0 = unbounded). An
	// attempt that times out while the overall context is still live is
	// retried — the dedup cache makes that safe.
	AttemptTimeout time.Duration
}

// delay computes the backoff before the attempt-th retry (attempt >= 1):
// exponential with a cap, jittered to [d/2, d] via the caller's generator.
func (p RetryPolicy) delay(attempt int, intn func(int) int) time.Duration {
	base := p.Backoff
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	ceil := p.MaxBackoff
	if ceil <= 0 {
		ceil = 500 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(intn(int(half)+1))
}

// DialOptions configures a Remote. The zero value reproduces the classic
// behaviour: 10s dial and list timeouts, no retries, a random client
// identity, reconnect-on-demand for address-based dials.
type DialOptions struct {
	// Timeout bounds the TCP connect in Dial/DialWith (default 10s).
	Timeout time.Duration
	// ListTimeout bounds List (default 10s).
	ListTimeout time.Duration
	// Redial re-establishes the transport after a link failure. DialWith
	// fills it with a TCP redial of the original address when nil;
	// DialConnWith leaves it nil, which disables reconnection.
	Redial func() (net.Conn, error)
	// Retry is the default policy applied by Call/CallCtx; CallWith can
	// override it per call.
	Retry RetryPolicy
	// ClientID is the stable identity used for at-most-once dedup on the
	// node. Defaults to a random ID; set it explicitly for deterministic
	// tests or for clients that survive process restarts.
	ClientID string
	// Metrics, when non-nil, accumulates resilience counters.
	Metrics *Metrics
	// Trace, when non-nil, records link and retry events.
	Trace *trace.Recorder
}

// withDefaults fills the zero fields.
func (o DialOptions) withDefaults() DialOptions {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.ListTimeout <= 0 {
		o.ListTimeout = 10 * time.Second
	}
	if o.ClientID == "" {
		o.ClientID = randomClientID()
	}
	return o
}

// CallOptions tunes one call.
type CallOptions struct {
	// Deadline bounds the whole call including retries (0 = none).
	Deadline time.Duration
	// Retry overrides the Remote's default policy when non-nil.
	Retry *RetryPolicy
}

// Metrics aggregates the resilience counters of clients (retries,
// reconnects) and nodes (dedup hits, drain rejections). Share one
// instance across Remotes/Nodes to aggregate, or use one each.
type Metrics struct {
	Retries    metrics.Counter // call attempts beyond the first
	Reconnects metrics.Counter // successful redials
	DedupHits  metrics.Counter // retried requests answered from the cache
	DrainDrops metrics.Counter // requests rejected while draining

	// Overloads counts calls that failed with core.ErrOverload: on a node,
	// requests its hosted objects shed; on a client, shed responses that
	// triggered a fresh-sequence retry.
	Overloads metrics.Counter
	// Poisons counts responses that failed with core.ErrObjectPoisoned
	// (terminal; never retried).
	Poisons metrics.Counter
	// ReplayTimeouts counts duplicate requests that gave up waiting on an
	// in-flight primary execution (ErrReplayTimeout responses).
	ReplayTimeouts metrics.Counter

	// Transport counters, accumulated per link and summed across the links
	// sharing this Metrics. FramesSent/Flushes is the frames-per-flush
	// coalescing ratio (1.0 = lock-step, higher = batched) and
	// BytesSent/Flushes the mean batch size — the numbers the pipelined
	// benches use to prove coalescing actually happens.
	BytesSent  metrics.Counter // payload+framing bytes flushed to the wire
	BytesRecv  metrics.Counter // framed bytes consumed off the wire
	FramesSent metrics.Counter // frames written (requests, responses, chan sends)
	FramesRecv metrics.Counter // frames decoded
	Flushes    metrics.Counter // explicit write-buffer flushes (batch boundaries)

	// Supervision, when non-nil, is the object-layer supervision counter
	// set shared with the hosted objects (via core.ObjectOptions.Metrics),
	// so restart/shed/poison/stall counts surface alongside the wire
	// counters. The rpc layer itself never writes to it.
	Supervision *metrics.Supervision

	// Replication counters, written by internal/replica when its Config
	// carries this Metrics instance (replica.Config.Metrics). They make
	// the PR 9 fast paths observable: if ReplRounds ≈ ReplProposals the
	// combiner never combined, if ReplWindow only ever lands in the ≤1
	// bucket the pipeline ran stop-and-wait, and ReplReads vs ReplRounds
	// is the fraction of traffic that skipped the log entirely.
	ReplProposals   metrics.Counter  // proposals entering the leader's combining queue
	ReplCombined    metrics.Counter  // proposals that rode another proposer's round
	ReplRounds      metrics.Counter  // combined append rounds (one log sync each)
	ReplReads       metrics.Counter  // ReadIndex reads served from leader-local state
	ReplReadRounds  metrics.Counter  // quorum confirmation rounds issued for reads
	ReplReadRetries metrics.Counter  // reads bounced retryable mid-protocol
	ReplBatch       metrics.SizeHist // entries per AppendEntries frame
	ReplWindow      metrics.SizeHist // per-peer in-flight frames at send time
}

// NodeOptions configures a Node. The zero value reproduces the classic
// behaviour: immediate teardown on Close and a 1024-entry dedup cache.
type NodeOptions struct {
	// DedupCap bounds the at-most-once cache (completed calls retained
	// for replay); default 1024. Retries arriving after eviction
	// re-execute, so size it above clients × in-flight window.
	DedupCap int
	// DrainGrace is how long Close waits for in-flight invocations to
	// finish before cancelling them (default 0: cancel immediately).
	DrainGrace time.Duration
	// Metrics, when non-nil, accumulates dedup/drain counters.
	Metrics *Metrics
	// Trace, when non-nil, records link lifecycle and replay events.
	Trace *trace.Recorder
	// Durable mounts a write-ahead durability store on the node. Acks for
	// journaled entries are synced to it before their responses leave, the
	// at-most-once table recovered from it seeds the dedup cache, and
	// snapshots include the cache's completed entries. The node does not
	// own the store: open it (and recover the objects) before creating the
	// node, close it after Node.Close. Nil — the default — keeps the serve
	// path free of durability work.
	Durable *wal.Store
	// ReplayWait bounds how long a duplicate request waits for the
	// in-flight primary execution of its (client, seq) before answering
	// ErrReplayTimeout (the wire carries no per-call deadline, so the node
	// must bound this wait itself or a stalled primary pins the duplicate's
	// serve goroutine forever). 0 selects the 30s default; negative
	// disables the bound.
	ReplayWait time.Duration
	// FlushGrace bounds how long a graceful link close waits for queued
	// response frames to reach the wire before tearing the connection
	// down — the bound that keeps a peer who stopped reading from turning
	// Close into a hang. 0 selects the historical 1s; negative skips the
	// flush wait entirely (teardown speed over response delivery — a
	// deliberately failing-over replica uses this so a wedged follower
	// cannot slow its exit).
	FlushGrace time.Duration
}

func randomClientID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("client-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// seedFrom hashes a client ID into a jitter seed, so backoff sequences
// are deterministic per identity.
func seedFrom(id string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return h.Sum64()
}
