package rpc

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// TestPipelinedCoalescing drives many concurrent clients over one link
// and checks the transport counters prove frame coalescing: more frames
// than flushes (batching actually happened) and byte counters that
// account for every frame. This is the regression guard for the batched
// write path — if the combiner degrades to one-write-per-frame the
// frames-per-flush ratio collapses to ~1 and this test fails.
func TestPipelinedCoalescing(t *testing.T) {
	obj, err := core.New("Echo",
		core.WithEntry(core.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 128,
			Body: func(inv *core.Invocation) error {
				inv.Return(inv.Param(0))
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()

	nm := &Metrics{}
	node := NewNodeWith("coalesce", NodeOptions{Metrics: nm})
	if err := node.Publish(obj); err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	cm := &Metrics{}
	rem, err := DialWith(addr, DialOptions{Metrics: cm})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	const clients, perClient = 64, 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := rem.Call("Echo", "P", i); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	const calls = clients * perClient
	for _, side := range []struct {
		name string
		m    *Metrics
	}{{"client", cm}, {"node", nm}} {
		frames, flushes := side.m.FramesSent.Value(), side.m.Flushes.Value()
		sent, recv := side.m.BytesSent.Value(), side.m.BytesRecv.Value()
		if frames < calls {
			t.Errorf("%s: FramesSent = %d, want >= %d", side.name, frames, calls)
		}
		if flushes == 0 {
			t.Fatalf("%s: no flushes recorded", side.name)
		}
		if sent == 0 || recv == 0 {
			t.Errorf("%s: BytesSent = %d, BytesRecv = %d, want both > 0", side.name, sent, recv)
		}
		ratio := float64(frames) / float64(flushes)
		t.Logf("%s: %d frames / %d flushes = %.2f frames/flush, %d bytes out (%d per flush), %d bytes in",
			side.name, frames, flushes, ratio, sent, sent/flushes, recv)
		// 64 concurrent callers on one link must coalesce well beyond
		// lock-step. The bound is deliberately loose (the scheduler decides
		// actual batch sizes); degradation to ~1 is what it catches.
		if ratio < 1.5 {
			t.Errorf("%s: frames/flush = %.2f, want >= 1.5 (coalescing collapsed)", side.name, ratio)
		}
	}
}
