package rpc

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestDedupEvictionTable pins the at-most-once cache's retention contract:
// completed entries evict FIFO in completion order once the cache exceeds
// capacity, in-flight entries are never evicted, and a retry arriving
// after eviction re-executes (the documented at-most-once window).
func TestDedupEvictionTable(t *testing.T) {
	cases := []struct {
		name     string
		cap      int
		complete []uint64 // seqs completed, in this order
		inflight []uint64 // seqs begun but never completed
		wantLen  int
		// replayed maps seq -> whether a fresh begin() should find the
		// cached entry (false = primary again, i.e. re-executes).
		replayed map[uint64]bool
	}{
		{
			name:     "at capacity everything replays",
			cap:      4,
			complete: []uint64{1, 2, 3, 4},
			wantLen:  4,
			replayed: map[uint64]bool{1: true, 2: true, 3: true, 4: true},
		},
		{
			name:     "beyond capacity evicts oldest completed first",
			cap:      3,
			complete: []uint64{1, 2, 3, 4, 5},
			wantLen:  3,
			replayed: map[uint64]bool{1: false, 2: false, 3: true, 4: true, 5: true},
		},
		{
			name:     "in-flight entries are never evicted",
			cap:      2,
			inflight: []uint64{1},
			complete: []uint64{2, 3, 4, 5},
			wantLen:  3, // 1 (in-flight) + the 2 newest completed
			replayed: map[uint64]bool{1: true, 2: false, 3: false, 4: true, 5: true},
		},
		{
			name:     "replay after eviction re-executes",
			cap:      1,
			complete: []uint64{1, 2},
			wantLen:  1,
			replayed: map[uint64]bool{1: false, 2: true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newDedupCache(tc.cap)
			for _, seq := range tc.inflight {
				if _, primary := d.begin(dedupKey{"c", seq}); !primary {
					t.Fatalf("in-flight seq %d: not primary", seq)
				}
			}
			for _, seq := range tc.complete {
				e, primary := d.begin(dedupKey{"c", seq})
				if !primary {
					t.Fatalf("seq %d: not primary", seq)
				}
				d.complete(dedupKey{"c", seq}, e, []any{seq}, "", errNone)
			}
			if got := d.len(); got != tc.wantLen {
				t.Fatalf("len = %d, want %d", got, tc.wantLen)
			}
			for seq, want := range tc.replayed {
				if _, primary := d.begin(dedupKey{"c", seq}); primary == want {
					t.Errorf("seq %d: replayed = %v, want %v", seq, !primary, want)
				}
			}
		})
	}
}

// TestDedupPreload covers seeding the cache from a recovered durability
// ledger: preloaded entries replay immediately, a later record for the
// same key supersedes the earlier response (snapshot table first, then
// log acks in LSN order), and capacity eviction still applies.
func TestDedupPreload(t *testing.T) {
	t.Run("preloaded entry replays without waiting", func(t *testing.T) {
		d := newDedupCache(4)
		d.preload("c", 1, []any{"disk"}, "", errNone)
		e, primary := d.begin(dedupKey{"c", 1})
		if primary {
			t.Fatal("preloaded entry treated as primary")
		}
		if !e.completed() {
			t.Fatal("preloaded entry not completed")
		}
		if e.results[0] != "disk" {
			t.Fatalf("results = %v", e.results)
		}
	})
	t.Run("later record supersedes earlier", func(t *testing.T) {
		d := newDedupCache(4)
		d.preload("c", 1, []any{"snapshot"}, "", errNone)
		d.preload("c", 1, []any{"log"}, "", errNone)
		e, _ := d.begin(dedupKey{"c", 1})
		if e.results[0] != "log" {
			t.Fatalf("results = %v, want the log ack to win", e.results)
		}
		if got := d.len(); got != 1 {
			t.Fatalf("len = %d after re-preload, want 1", got)
		}
	})
	t.Run("capacity applies to preloads", func(t *testing.T) {
		d := newDedupCache(2)
		for seq := uint64(1); seq <= 5; seq++ {
			d.preload("c", seq, []any{seq}, "", errNone)
		}
		if got := d.len(); got != 2 {
			t.Fatalf("len = %d, want 2", got)
		}
		if _, primary := d.begin(dedupKey{"c", 1}); !primary {
			t.Error("evicted preload still replayed")
		}
		if _, primary := d.begin(dedupKey{"c", 5}); primary {
			t.Error("retained preload not replayed")
		}
	})
}

// TestDuplicateWaitHonorsReplayWait is the regression test for the
// unbounded duplicate wait: a duplicate request whose primary execution
// never completes used to block on the dedup entry forever, pinning the
// serve goroutine. Now the node bounds the wait with ReplayWait and
// answers a typed, retryable ErrReplayTimeout; once the primary finally
// completes, a same-sequence retry replays its result without
// re-executing the body.
func TestDuplicateWaitHonorsReplayWait(t *testing.T) {
	var execs atomic.Int64
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	obj, err := core.New("Slow",
		core.WithEntry(core.EntrySpec{Name: "P", Results: 1, Array: 2,
			Body: func(inv *core.Invocation) error {
				execs.Add(1)
				started <- struct{}{}
				<-release
				inv.Return("v")
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()

	nm := &Metrics{}
	node := NewNodeWith("srv", NodeOptions{ReplayWait: 50 * time.Millisecond, Metrics: nm})
	if err := node.PublishAs("Slow", obj); err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	dial := func(retry RetryPolicy) *Remote {
		rem, err := DialWith(addr, DialOptions{ClientID: "dup", Retry: retry})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rem.Close)
		return rem
	}

	// The primary: seq 1 from client "dup", parked in the entry body.
	prim := dial(RetryPolicy{})
	primDone := make(chan error, 1)
	go func() {
		_, err := prim.Call("Slow", "P")
		primDone <- err
	}()
	<-started

	// A second Remote with the same ClientID re-issues seq 1 — the wire
	// shape of a retry whose original is still executing. With no retries
	// allowed the typed timeout must surface to the caller.
	dup := dial(RetryPolicy{Max: 0})
	t0 := time.Now()
	_, err = dup.Call("Slow", "P")
	if !errors.Is(err, ErrReplayTimeout) {
		t.Fatalf("duplicate wait returned %v, want ErrReplayTimeout", err)
	}
	if waited := time.Since(t0); waited > 5*time.Second {
		t.Fatalf("duplicate blocked %v — ReplayWait not honored", waited)
	}
	if got := nm.ReplayTimeouts.Value(); got == 0 {
		t.Error("ReplayTimeouts counter not incremented")
	}
	if !retryableErr(err) {
		t.Error("ErrReplayTimeout must be retryable (same sequence)")
	}

	// A third Remote, same ClientID and seq, this time with retries: the
	// first attempt times out again, the primary completes, and the retry
	// replays the cached result instead of re-executing.
	dup2 := dial(RetryPolicy{Max: 10, Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond})
	res2 := make(chan []any, 1)
	go func() {
		res, err := dup2.Call("Slow", "P")
		if err != nil {
			t.Errorf("retrying duplicate failed: %v", err)
		}
		res2 <- res
	}()
	time.Sleep(60 * time.Millisecond) // let its first attempt hit the timeout
	close(release)

	if err := <-primDone; err != nil {
		t.Fatalf("primary call failed: %v", err)
	}
	select {
	case res := <-res2:
		if len(res) != 1 || res[0] != "v" {
			t.Fatalf("replayed result = %v", res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("retrying duplicate never completed")
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("body executed %d times, want 1", n)
	}
	_ = net.ErrClosed
}
