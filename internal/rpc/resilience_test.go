package rpc

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// startSimNode publishes obj on a fresh simnet node named "srv" and
// returns the network and node.
func startSimNode(t *testing.T, cfg simnet.Config, obj callable, name string, nopts NodeOptions) (*simnet.Network, *Node) {
	t.Helper()
	network := simnet.New(cfg)
	node := NewNodeWith("srv", nopts)
	if err := node.PublishAs(name, obj); err != nil {
		t.Fatal(err)
	}
	lis, err := network.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = node.Serve(lis) }()
	t.Cleanup(node.Close)
	return network, node
}

// TestRetryAfterLinkKillReplaysCachedResult is the at-most-once
// acceptance scenario: the connection dies after the entry body executed
// but before the response arrives; the retried call reconnects and gets
// the original result back without re-executing the body.
func TestRetryAfterLinkKillReplaysCachedResult(t *testing.T) {
	var (
		execMu  sync.Mutex
		execs   int
		brkReq  = make(chan struct{})
		brkDone = make(chan struct{})
	)
	obj, err := core.New("Ctr",
		core.WithEntry(core.EntrySpec{Name: "Get", Results: 1, Array: 4,
			Body: func(inv *core.Invocation) error {
				execMu.Lock()
				execs++
				n := execs
				execMu.Unlock()
				if n == 1 {
					// Hold the first execution until the test has severed
					// the client's connection, so the response frame is
					// guaranteed to be lost.
					brkReq <- struct{}{}
					<-brkDone
				}
				inv.Return(n)
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()

	nodeMetrics := &Metrics{}
	network, _ := startSimNode(t, simnet.Config{}, obj, "Ctr", NodeOptions{Metrics: nodeMetrics})

	first, err := network.DialFrom("c1", "srv")
	if err != nil {
		t.Fatal(err)
	}
	cliMetrics := &Metrics{}
	rem := DialConnWith(first, DialOptions{
		ClientID: "c1",
		Redial:   func() (net.Conn, error) { return network.DialFrom("c1", "srv") },
		Retry:    RetryPolicy{Max: 5, Backoff: time.Millisecond, AttemptTimeout: 2 * time.Second},
		Metrics:  cliMetrics,
	})
	defer rem.Close()

	result := make(chan []any, 1)
	callErr := make(chan error, 1)
	go func() {
		res, err := rem.Call("Ctr", "Get")
		callErr <- err
		result <- res
	}()

	select {
	case <-brkReq:
	case <-time.After(5 * time.Second):
		t.Fatal("entry body never started")
	}
	if err := simnet.BreakConn(first); err != nil {
		t.Fatal(err)
	}
	close(brkDone)

	select {
	case err := <-callErr:
		if err != nil {
			t.Fatalf("retried call failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("retried call never completed")
	}
	res := <-result
	if len(res) != 1 || res[0] != 1 {
		t.Fatalf("retried call = %v, want the first execution's result 1", res)
	}
	execMu.Lock()
	finalExecs := execs
	execMu.Unlock()
	if finalExecs != 1 {
		t.Fatalf("entry body executed %d times, want exactly 1", finalExecs)
	}
	if got := cliMetrics.Retries.Value(); got == 0 {
		t.Error("client retry counter not incremented")
	}
	if got := cliMetrics.Reconnects.Value(); got == 0 {
		t.Error("client reconnect counter not incremented")
	}
	if got := nodeMetrics.DedupHits.Value(); got != 1 {
		t.Errorf("node dedup hits = %d, want 1", got)
	}
}

// TestWireLevelDuplicateSuppressed replays the exact same request frame
// over two separate connections — the rawest form of a retry — and
// checks the node executes once and answers identically both times.
func TestWireLevelDuplicateSuppressed(t *testing.T) {
	var (
		mu    sync.Mutex
		execs int
	)
	obj, err := core.New("Ctr",
		core.WithEntry(core.EntrySpec{Name: "Inc", Results: 1, Array: 4,
			Body: func(inv *core.Invocation) error {
				mu.Lock()
				execs++
				n := execs
				mu.Unlock()
				inv.Return(n)
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()

	network, _ := startSimNode(t, simnet.Config{}, obj, "Ctr", NodeOptions{})

	req := frame{Kind: frameRequest, ID: 1, Object: "Ctr", Entry: "Inc", Client: "raw", Seq: 7}
	roundTrip := func() frame {
		t.Helper()
		conn, err := network.Dial("srv")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		tab := wire.DefaultTable.Snapshot()
		br := bufio.NewReader(conn)
		if err := wire.WriteHello(conn); err != nil {
			t.Fatal(err)
		}
		if err := wire.ReadHello(br); err != nil {
			t.Fatal(err)
		}
		b, err := wire.AppendFrame(nil, &req, tab)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(b); err != nil {
			t.Fatal(err)
		}
		var resp frame
		if err := wire.NewDecoder(br, tab).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	first := roundTrip()
	second := roundTrip()
	if first.Err != "" || second.Err != "" {
		t.Fatalf("errors: %q / %q", first.Err, second.Err)
	}
	if len(first.Results) != 1 || len(second.Results) != 1 || first.Results[0] != second.Results[0] {
		t.Fatalf("results diverged: %v vs %v", first.Results, second.Results)
	}
	mu.Lock()
	defer mu.Unlock()
	if execs != 1 {
		t.Fatalf("duplicate frame re-executed the body: execs = %d", execs)
	}
}

// TestDedupCacheEviction checks the cache stays bounded and evicts FIFO.
func TestDedupCacheEviction(t *testing.T) {
	d := newDedupCache(2)
	for seq := uint64(1); seq <= 5; seq++ {
		e, primary := d.begin(dedupKey{"c", seq})
		if !primary {
			t.Fatalf("seq %d: not primary", seq)
		}
		d.complete(dedupKey{"c", seq}, e, []any{seq}, "", errNone)
	}
	if got := d.len(); got != 2 {
		t.Fatalf("cache holds %d entries, want 2", got)
	}
	// Oldest evicted: seq 4 and 5 remain, a replay of 1 re-executes.
	if _, primary := d.begin(dedupKey{"c", 1}); !primary {
		t.Error("evicted entry still replayed")
	}
	if _, primary := d.begin(dedupKey{"c", 5}); primary {
		t.Error("retained entry not replayed")
	}
}

// TestDrainGraceLetsInflightFinish: with a drain grace configured, Close
// waits for an in-flight invocation and delivers its response.
func TestDrainGraceLetsInflightFinish(t *testing.T) {
	started := make(chan struct{}, 1)
	obj, err := core.New("Slow",
		core.WithEntry(core.EntrySpec{Name: "P", Results: 1, Array: 4,
			Body: func(inv *core.Invocation) error {
				started <- struct{}{}
				time.Sleep(100 * time.Millisecond)
				inv.Return("done")
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()

	node := NewNodeWith("drain", NodeOptions{DrainGrace: 5 * time.Second})
	if err := node.PublishAs("Slow", obj); err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	type outcome struct {
		res []any
		err error
	}
	got := make(chan outcome, 1)
	go func() {
		res, err := rem.Call("Slow", "P")
		got <- outcome{res, err}
	}()
	<-started
	node.Close() // drains: the in-flight call must complete
	select {
	case o := <-got:
		if o.err != nil {
			t.Fatalf("in-flight call failed during drain: %v", o.err)
		}
		if len(o.res) != 1 || o.res[0] != "done" {
			t.Fatalf("in-flight call = %v", o.res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drained call never returned")
	}
}

// TestDrainRejectsNewCalls: requests arriving while the node drains are
// refused with ErrClosed instead of executing.
func TestDrainRejectsNewCalls(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	obj, err := core.New("Slow",
		core.WithEntry(core.EntrySpec{Name: "P", Results: 1, Array: 4,
			Body: func(inv *core.Invocation) error {
				started <- struct{}{}
				select {
				case <-gate:
				case <-inv.Done():
				}
				inv.Return("done")
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()

	metrics := &Metrics{}
	node := NewNodeWith("drain2", NodeOptions{DrainGrace: 5 * time.Second, Metrics: metrics})
	if err := node.PublishAs("Slow", obj); err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rem, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	first := make(chan error, 1)
	go func() {
		_, err := rem.Call("Slow", "P")
		first <- err
	}()
	<-started

	closed := make(chan struct{})
	go func() {
		node.Close()
		close(closed)
	}()
	// Wait until the drain gate is actually up, then issue a new call.
	for !node.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	if _, err := rem.Call("Slow", "P"); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("call during drain = %v, want ErrClosed", err)
	}
	if metrics.DrainDrops.Value() == 0 {
		t.Error("drain drop counter not incremented")
	}
	close(gate) // let the in-flight call finish; drain completes
	if err := <-first; err != nil {
		t.Errorf("in-flight call failed during drain: %v", err)
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung in drain")
	}
}

// TestCallRetryExhaustion: with no server, a retrying call fails after
// its budget with a link error rather than hanging.
func TestCallRetryExhaustion(t *testing.T) {
	network := simnet.New(simnet.Config{})
	lis, err := network.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := network.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	_ = lis.Close()

	dials := 0
	rem := DialConnWith(conn, DialOptions{
		ClientID: "exhaust",
		Redial: func() (net.Conn, error) {
			dials++
			return network.Dial("srv")
		},
		Retry: RetryPolicy{Max: 3, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	defer rem.Close()

	// Sever the only conn; every retry's redial then fails (no listener).
	if err := simnet.BreakConn(conn); err != nil {
		t.Fatal(err)
	}
	for !rem.link.isClosed() { // wait until the readLoop notices the break
		time.Sleep(time.Millisecond)
	}
	_, err = rem.Call("X", "P")
	if !errors.Is(err, ErrLinkClosed) {
		t.Fatalf("err = %v, want ErrLinkClosed", err)
	}
	if dials != 4 {
		t.Errorf("redial attempts = %d, want 4 (initial + 3 retries)", dials)
	}
}

// TestClosedRemoteDoesNotReconnect: Close is terminal even with retries
// and a redial function configured.
func TestClosedRemoteDoesNotReconnect(t *testing.T) {
	obj, err := core.New("Echo",
		core.WithEntry(core.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 4,
			Body: func(inv *core.Invocation) error {
				inv.Return(inv.Param(0))
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	network, _ := startSimNode(t, simnet.Config{}, obj, "Echo", NodeOptions{})

	conn, err := network.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	redialed := false
	rem := DialConnWith(conn, DialOptions{
		Redial: func() (net.Conn, error) {
			redialed = true
			return network.Dial("srv")
		},
		Retry: RetryPolicy{Max: 3, Backoff: time.Millisecond},
	})
	rem.Close()
	if _, err := rem.Call("Echo", "P", 1); !errors.Is(err, errRemoteClosed) {
		t.Fatalf("call on closed remote = %v", err)
	}
	if redialed {
		t.Error("closed remote attempted a reconnect")
	}
}

// TestPerCallDeadline: CallWith's Deadline bounds the whole call.
func TestPerCallDeadline(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	obj, err := core.New("Slow",
		core.WithEntry(core.EntrySpec{Name: "P", Results: 1, Array: 4,
			Body: func(inv *core.Invocation) error {
				select {
				case <-gate:
				case <-inv.Done():
				}
				inv.Return("late")
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	network, _ := startSimNode(t, simnet.Config{}, obj, "Slow", NodeOptions{})
	conn, err := network.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	rem := DialConnWith(conn, DialOptions{})
	defer rem.Close()

	start := time.Now()
	_, err = rem.CallWith(context.Background(), CallOptions{Deadline: 50 * time.Millisecond}, "Slow", "P")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline not enforced: took %v", elapsed)
	}
}

// TestDialListTimeoutsConfigurable: the satellite requirement that the
// old hardcoded 10s timeouts are now options with the same defaults.
func TestDialListTimeoutsConfigurable(t *testing.T) {
	if def := (DialOptions{}).withDefaults(); def.Timeout != 10*time.Second || def.ListTimeout != 10*time.Second {
		t.Fatalf("defaults = %v/%v, want 10s/10s", def.Timeout, def.ListTimeout)
	}

	// A listener that accepts but never answers the hello: List must give
	// up after the configured (short) timeout instead of 10s.
	network := simnet.New(simnet.Config{})
	if _, err := network.Listen("mute"); err != nil {
		t.Fatal(err)
	}
	conn, err := network.Dial("mute")
	if err != nil {
		t.Fatal(err)
	}
	rem := DialConnWith(conn, DialOptions{ListTimeout: 50 * time.Millisecond})
	defer rem.Close()
	start := time.Now()
	if _, err := rem.List(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("List on mute endpoint = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("ListTimeout not honored: %v", elapsed)
	}
}
