package rpc

import (
	"context"

	"repro/internal/wal"
)

// sessionCallable is the optional serve surface of a published object that
// needs the caller's at-most-once identity alongside the call itself. The
// consensus-replicated object (internal/replica) implements it: the
// (client, seq) pair travels inside the replicated log entry, so every
// member of the group — including a leader elected after a failover —
// recognizes a retry of an already-committed call and replays its recorded
// response instead of re-executing the entry body. Requests without a
// client identity fall back to the plain CallCtx path.
type sessionCallable interface {
	CallSession(ctx context.Context, client string, seq uint64, entry string, params []any) ([]any, error)
}

// SessionTable is the at-most-once table of PR 1, exported for the
// replication layer: the same bounded (client, seq) → response cache a
// node uses to answer retried RPCs doubles as a replicated group's
// client-session table. internal/replica keeps one per member, mutates it
// ONLY from the deterministic apply loop (so contents and eviction order
// are identical on every replica), snapshots it with Dump, and rebuilds a
// rejoining member's copy with Load — the wal.AckEntry vocabulary is
// shared with the durability layer so the two snapshot paths stay one
// format.
type SessionTable struct {
	d *dedupCache
}

// NewSessionTable creates a table retaining up to capacity completed
// responses (<= 0 selects the dedup default of 1024). Eviction is FIFO in
// completion order; capacity must be identical across the members of a
// replication group or their tables diverge.
func NewSessionTable(capacity int) *SessionTable {
	return &SessionTable{d: newDedupCache(capacity)}
}

// Lookup returns the response recorded for (client, seq), with sentinel
// error identity restored for errors.Is. ok is false when the pair was
// never recorded — or was evicted, which is why capacity must exceed
// clients × in-flight window.
func (t *SessionTable) Lookup(client string, seq uint64) (results []any, callErr error, ok bool) {
	t.d.mu.Lock()
	e, found := t.d.entries[dedupKey{client, seq}]
	t.d.mu.Unlock()
	if !found || !e.completed() {
		return nil, nil, false
	}
	return e.results, decodeErr(e.errMsg, e.errKind), true
}

// Record stores the response of a completed call, overwriting any earlier
// record for the same pair (recovery replays records in log order, so the
// last write is the authoritative one).
func (t *SessionTable) Record(client string, seq uint64, results []any, callErr error) {
	msg, kind := encodeErr(callErr)
	t.d.preload(client, seq, results, msg, kind)
}

// Dump snapshots the completed entries in completion order, the format a
// group leader ships to a rejoining member and the durability layer packs
// into checkpoints.
func (t *SessionTable) Dump() []wal.AckEntry { return t.d.dump() }

// Load folds dumped entries back in, in order; later entries for a pair
// supersede earlier ones.
func (t *SessionTable) Load(entries []wal.AckEntry) {
	for _, a := range entries {
		t.d.preload(a.Client, a.Seq, a.Results, a.ErrMsg, errKind(a.ErrKind))
	}
}

// Len reports how many responses are retained.
func (t *SessionTable) Len() int { return t.d.len() }

// dump snapshots the cache's completed entries in completion order. Shared
// by Node's durability checkpoints and SessionTable.Dump.
func (d *dedupCache) dump() []wal.AckEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]wal.AckEntry, 0, len(d.order))
	for _, key := range d.order {
		e, ok := d.entries[key]
		if !ok || !e.completed() {
			continue // in-flight: not replayable yet
		}
		out = append(out, wal.AckEntry{
			Client: key.client, Seq: key.seq,
			Results: e.results, ErrMsg: e.errMsg, ErrKind: int32(e.errKind),
		})
	}
	return out
}
