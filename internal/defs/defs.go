// Package defs loads object *definition parts* (paper §2.2) from a small
// declarative text format and instantiates them as live ALPS objects whose
// entries are pure synchronization points (no-op bodies). This turns the
// node daemon into a coordination service: clients call entries purely for
// their scheduling semantics — mutexes, turnstiles, rendezvous, and any
// path-expression-governed protocol — with the entire policy declared in
// the definition, exactly the separation the paper argues for.
//
// Format (line oriented; '#' starts a comment):
//
//	object Mutex
//	  procs lock, unlock
//	  path 1:(lock; unlock)
//
//	object Turnstile
//	  procs enter
//	  policy concurrent enter=5
//
//	object Log
//	  procs append, rotate
//	  policy exclusive
//
// Each object names its procedures, then exactly one scheduling clause:
// `path <expr>` (compiled by internal/pathexpr; its procedures must be a
// subset of procs) or `policy exclusive|fifo|concurrent k=v,...`.
package defs

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	alps "repro"
	"repro/internal/pathexpr"
	"repro/internal/policy"
)

// Def is one parsed object definition.
type Def struct {
	Name   string
	Procs  []string
	Path   string         // path expression, if any
	Policy string         // "exclusive", "fifo", "concurrent", if any
	Limits map[string]int // concurrent policy limits
	Array  int            // hidden array size per entry (default 8)
}

// Parse reads definitions from the textual format.
func Parse(src string) ([]Def, error) {
	var defs []Def
	var cur *Def
	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	flush := func() error {
		if cur == nil {
			return nil
		}
		if err := cur.validate(); err != nil {
			return err
		}
		defs = append(defs, *cur)
		cur = nil
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "object":
			if err := flush(); err != nil {
				return nil, err
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("defs line %d: object needs exactly one name", lineNo)
			}
			cur = &Def{Name: fields[1], Array: 8}
		case "procs":
			if cur == nil {
				return nil, fmt.Errorf("defs line %d: procs outside an object", lineNo)
			}
			rest := strings.TrimSpace(strings.TrimPrefix(line, "procs"))
			for _, name := range strings.Split(rest, ",") {
				name = strings.TrimSpace(name)
				if name == "" {
					return nil, fmt.Errorf("defs line %d: empty procedure name", lineNo)
				}
				cur.Procs = append(cur.Procs, name)
			}
		case "array":
			if cur == nil {
				return nil, fmt.Errorf("defs line %d: array outside an object", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("defs line %d: array needs a size", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("defs line %d: bad array size %q", lineNo, fields[1])
			}
			cur.Array = n
		case "path":
			if cur == nil {
				return nil, fmt.Errorf("defs line %d: path outside an object", lineNo)
			}
			if cur.Path != "" || cur.Policy != "" {
				return nil, fmt.Errorf("defs line %d: object %s already has a scheduling clause", lineNo, cur.Name)
			}
			cur.Path = strings.TrimSpace(strings.TrimPrefix(line, "path"))
			if cur.Path == "" {
				return nil, fmt.Errorf("defs line %d: empty path expression", lineNo)
			}
		case "policy":
			if cur == nil {
				return nil, fmt.Errorf("defs line %d: policy outside an object", lineNo)
			}
			if cur.Path != "" || cur.Policy != "" {
				return nil, fmt.Errorf("defs line %d: object %s already has a scheduling clause", lineNo, cur.Name)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("defs line %d: policy needs a kind", lineNo)
			}
			cur.Policy = fields[1]
			switch cur.Policy {
			case "exclusive", "fifo":
				if len(fields) > 2 {
					return nil, fmt.Errorf("defs line %d: policy %s takes no arguments", lineNo, cur.Policy)
				}
			case "concurrent":
				cur.Limits = make(map[string]int)
				for _, kv := range fields[2:] {
					name, val, ok := strings.Cut(kv, "=")
					if !ok {
						return nil, fmt.Errorf("defs line %d: concurrent wants name=limit, got %q", lineNo, kv)
					}
					n, err := strconv.Atoi(val)
					if err != nil || n < 1 {
						return nil, fmt.Errorf("defs line %d: bad limit %q", lineNo, kv)
					}
					cur.Limits[strings.TrimSuffix(name, ",")] = n
				}
				if len(cur.Limits) == 0 {
					return nil, fmt.Errorf("defs line %d: concurrent needs at least one name=limit", lineNo)
				}
			default:
				return nil, fmt.Errorf("defs line %d: unknown policy %q", lineNo, cur.Policy)
			}
		default:
			return nil, fmt.Errorf("defs line %d: unknown keyword %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("defs: no objects defined")
	}
	return defs, nil
}

func (d *Def) validate() error {
	if len(d.Procs) == 0 {
		return fmt.Errorf("defs: object %s has no procs", d.Name)
	}
	seen := make(map[string]bool, len(d.Procs))
	for _, p := range d.Procs {
		if seen[p] {
			return fmt.Errorf("defs: object %s: duplicate proc %s", d.Name, p)
		}
		seen[p] = true
	}
	if d.Path == "" && d.Policy == "" {
		return fmt.Errorf("defs: object %s has no scheduling clause", d.Name)
	}
	if d.Path != "" {
		p, err := pathexpr.Compile(d.Path)
		if err != nil {
			return fmt.Errorf("defs: object %s: %w", d.Name, err)
		}
		for _, name := range p.Procs() {
			if !seen[name] {
				return fmt.Errorf("defs: object %s: path uses undeclared proc %s", d.Name, name)
			}
		}
	}
	if d.Policy == "concurrent" {
		for name := range d.Limits {
			if !seen[name] {
				return fmt.Errorf("defs: object %s: limit for undeclared proc %s", d.Name, name)
			}
		}
	}
	return nil
}

// Build instantiates one definition as a live object. Bodies are no-ops:
// calls return when (and only when) the declared scheduling admits and
// completes them.
func (d *Def) Build() (*alps.Object, error) {
	var mgr func(*alps.Mgr)
	var icpts []alps.InterceptSpec
	switch {
	case d.Path != "":
		p, err := pathexpr.Compile(d.Path)
		if err != nil {
			return nil, err
		}
		mgr, icpts = p.Manager()
	case d.Policy == "exclusive":
		mgr, icpts = policy.Exclusive(d.Procs...)
	case d.Policy == "fifo":
		mgr, icpts = policy.FIFO(d.Procs...)
	case d.Policy == "concurrent":
		limits := make(map[string]int, len(d.Procs))
		for _, p := range d.Procs {
			limits[p] = 1
		}
		for name, n := range d.Limits {
			limits[name] = n
		}
		mgr, icpts = policy.Concurrent(limits)
	default:
		return nil, fmt.Errorf("defs: object %s: no scheduling clause", d.Name)
	}

	// Procs not mentioned in the path run implicitly, like any entry
	// missing from an intercepts clause (paper §2.3).
	opts := []alps.Option{alps.WithManager(mgr, icpts...)}
	for _, name := range d.Procs {
		opts = append(opts, alps.WithEntry(alps.EntrySpec{
			Name:  name,
			Array: d.Array,
			Body:  func(inv *alps.Invocation) error { return nil },
		}))
	}
	return alps.New(d.Name, opts...)
}

// BuildAll parses src and instantiates every definition, closing the
// already-built objects if a later one fails.
func BuildAll(src string) ([]*alps.Object, error) {
	ds, err := Parse(src)
	if err != nil {
		return nil, err
	}
	objs := make([]*alps.Object, 0, len(ds))
	for i := range ds {
		obj, err := ds[i].Build()
		if err != nil {
			for _, o := range objs {
				_ = o.Close()
			}
			return nil, err
		}
		objs = append(objs, obj)
	}
	return objs, nil
}
