package defs

import (
	"strings"
	"sync"
	"testing"
	"time"

	alps "repro"
)

const sample = `
# A coordination-service definition file.
object Mutex
  procs lock, unlock
  path 1:(lock; unlock)

object Turnstile
  procs enter
  policy concurrent enter=3

object Log
  procs append, rotate
  policy exclusive

object Queue
  procs put, get
  array 4
  path put; get
`

func TestParseSample(t *testing.T) {
	ds, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 {
		t.Fatalf("parsed %d objects, want 4", len(ds))
	}
	byName := map[string]Def{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	if d := byName["Mutex"]; d.Path != "1:(lock; unlock)" || len(d.Procs) != 2 {
		t.Fatalf("Mutex = %+v", d)
	}
	if d := byName["Turnstile"]; d.Policy != "concurrent" || d.Limits["enter"] != 3 {
		t.Fatalf("Turnstile = %+v", d)
	}
	if d := byName["Log"]; d.Policy != "exclusive" {
		t.Fatalf("Log = %+v", d)
	}
	if d := byName["Queue"]; d.Array != 4 {
		t.Fatalf("Queue = %+v", d)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"procs a",                   // outside object
		"object X",                  // no procs, no clause
		"object X\nprocs a",         // no scheduling clause
		"object X\nprocs a\npath b", // path uses undeclared proc
		"object X\nprocs a\npolicy concurrent b=2",  // limit for undeclared proc
		"object X\nprocs a\npolicy magic",           // unknown policy
		"object X\nprocs a\npolicy exclusive extra", // extra args
		"object X\nprocs a\npolicy concurrent",      // missing limits
		"object X\nprocs a\npolicy concurrent a=x",  // bad limit
		"object X\nprocs a, a\npolicy exclusive",    // duplicate proc
		"object X\nprocs a\npath (a",                // bad path
		"object X\nprocs a\npath a\npolicy fifo",    // two clauses
		"object X Y\nprocs a\npolicy fifo",          // two names
		"object X\nprocs a\narray zero\npolicy fifo",
		"object X\nprocs a\nwibble",
		"object X\nprocs ,\npolicy fifo",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestBuildMutexEnforcesAlternation(t *testing.T) {
	objs, err := BuildAll("object Mutex\nprocs lock, unlock\npath 1:(lock; unlock)")
	if err != nil {
		t.Fatal(err)
	}
	mutex := objs[0]
	defer mutex.Close()

	if _, err := mutex.Call("lock"); err != nil {
		t.Fatal(err)
	}
	// A second lock blocks until unlock.
	locked := make(chan struct{})
	go func() {
		if _, err := mutex.Call("lock"); err == nil {
			close(locked)
		}
	}()
	select {
	case <-locked:
		t.Fatal("second lock acquired while held")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := mutex.Call("unlock"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-locked:
	case <-time.After(2 * time.Second):
		t.Fatal("second lock not granted after unlock")
	}
}

func TestBuildTurnstileLimitsConcurrency(t *testing.T) {
	// The turnstile's no-op bodies complete instantly, so concurrency is
	// not observable through them; instead verify the semantics end to
	// end: with limit 3 and 10 waiting callers, all complete (liveness)
	// and the manager never over-admits (checked by the policy tests).
	objs, err := BuildAll("object T\nprocs enter\npolicy concurrent enter=3")
	if err != nil {
		t.Fatal(err)
	}
	ts := objs[0]
	defer ts.Close()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ts.Call("enter"); err != nil {
				t.Errorf("enter: %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestBuildAllClosesOnFailure(t *testing.T) {
	// Second object is invalid at build time? All parse-time here; force a
	// build error via duplicate names in one object... build errors are
	// hard to trigger post-validate, so check the parse error path.
	if _, err := BuildAll("object A\nprocs x\npolicy fifo\nobject A2\nprocs y\npath z"); err == nil {
		t.Fatal("BuildAll with bad second object succeeded")
	}
	if !strings.Contains(sample, "object") {
		t.Fatal("sanity")
	}
}

func TestQueuePathOrdering(t *testing.T) {
	objs, err := BuildAll("object Q\nprocs put, get\npath put; get")
	if err != nil {
		t.Fatal(err)
	}
	q := objs[0]
	defer q.Close()
	// get before any put must block.
	got := make(chan struct{})
	go func() {
		if _, err := q.Call("get"); err == nil {
			close(got)
		}
	}()
	select {
	case <-got:
		t.Fatal("get completed before any put")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := q.Call("put"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("get not released by put")
	}
	_ = alps.ErrClosed
}
