package defs_test

import (
	"fmt"
	"log"

	"repro/internal/defs"
)

// Example loads a mutex from its definition part and uses it: the lock and
// unlock entries exist purely for their scheduling semantics.
func Example() {
	objs, err := defs.BuildAll(`
object Mutex
  procs lock, unlock
  path 1:(lock; unlock)
`)
	if err != nil {
		log.Fatal(err)
	}
	mutex := objs[0]
	defer mutex.Close()

	if _, err := mutex.Call("lock"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("critical section")
	if _, err := mutex.Call("unlock"); err != nil {
		log.Fatal(err)
	}
	// Output: critical section
}
