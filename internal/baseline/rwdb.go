package baseline

import (
	"sync"
	"time"
)

// RWMutexDB is the conventional readers-writers database built directly on
// sync.RWMutex, the baseline for experiment E2. It has no ReadMax bound and
// relies on the Go runtime's writer-preference for starvation avoidance —
// the scheduling policy is fixed by the primitive, which is exactly the
// inflexibility the manager construct addresses.
type RWMutexDB struct {
	mu   sync.RWMutex
	data map[int]int
}

// NewRWMutexDB creates an empty database.
func NewRWMutexDB() *RWMutexDB {
	return &RWMutexDB{data: make(map[int]int)}
}

// Read returns the value stored at key.
func (db *RWMutexDB) Read(key int) (int, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.data[key]
	return v, ok
}

// Write stores value at key.
func (db *RWMutexDB) Write(key, value int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.data[key] = value
}

// BoundedRWDB adds a ReadMax bound to the RWMutex baseline so the
// comparison with the ALPS readers-writers object (which enforces ReadMax)
// is apples-to-apples. The bound is a counting semaphore taken around the
// read lock — note the policy is again wired through every procedure.
type BoundedRWDB struct {
	sem       chan struct{}
	mu        sync.RWMutex
	data      map[int]int
	readCost  time.Duration
	writeCost time.Duration
}

// NewBoundedRWDB creates an empty database admitting at most readMax
// concurrent readers.
func NewBoundedRWDB(readMax int) *BoundedRWDB {
	return NewBoundedRWDBCost(readMax, 0, 0)
}

// NewBoundedRWDBCost additionally simulates per-operation I/O time inside
// the critical sections, matching the ALPS rwdb configuration for
// experiment E2.
func NewBoundedRWDBCost(readMax int, readCost, writeCost time.Duration) *BoundedRWDB {
	return &BoundedRWDB{
		sem:       make(chan struct{}, readMax),
		data:      make(map[int]int),
		readCost:  readCost,
		writeCost: writeCost,
	}
}

// Read returns the value stored at key, admitting at most ReadMax
// concurrent readers.
func (db *BoundedRWDB) Read(key int) (int, bool) {
	db.sem <- struct{}{}
	defer func() { <-db.sem }()
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.readCost > 0 {
		time.Sleep(db.readCost)
	}
	v, ok := db.data[key]
	return v, ok
}

// Write stores value at key in exclusion.
func (db *BoundedRWDB) Write(key, value int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.writeCost > 0 {
		time.Sleep(db.writeCost)
	}
	db.data[key] = value
}
