// Package baseline implements the conventional synchronization structures
// ALPS positions itself against (paper §1): monitors (mutex + condition
// variables), semaphores, and nested-monitor objects. They serve as the
// comparison points for the experiment harness — the paper's claim is not
// that managers are faster, but that they centralize scheduling that these
// structures scatter across procedures, without losing much performance.
package baseline

import (
	"errors"
	"sync"
)

// ErrClosed reports an operation on a closed baseline structure.
var ErrClosed = errors.New("baseline: closed")

// MonitorBuffer is the classic monitor-style bounded buffer: the
// synchronization code (wait/signal on notFull/notEmpty) lives inside the
// Deposit and Remove procedures themselves — exactly the scattering of the
// scheduling policy that the manager construct removes.
type MonitorBuffer struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []any
	head     int
	count    int
	closed   bool
}

// NewMonitorBuffer creates a bounded buffer with n slots.
func NewMonitorBuffer(n int) *MonitorBuffer {
	b := &MonitorBuffer{buf: make([]any, n)}
	b.notFull = sync.NewCond(&b.mu)
	b.notEmpty = sync.NewCond(&b.mu)
	return b
}

// Deposit blocks while the buffer is full, then stores the message.
func (b *MonitorBuffer) Deposit(msg any) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.count == len(b.buf) && !b.closed {
		b.notFull.Wait()
	}
	if b.closed {
		return ErrClosed
	}
	b.buf[(b.head+b.count)%len(b.buf)] = msg
	b.count++
	b.notEmpty.Signal()
	return nil
}

// Remove blocks while the buffer is empty, then returns the oldest message.
func (b *MonitorBuffer) Remove() (any, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.count == 0 && !b.closed {
		b.notEmpty.Wait()
	}
	if b.count == 0 && b.closed {
		return nil, ErrClosed
	}
	msg := b.buf[b.head]
	b.buf[b.head] = nil
	b.head = (b.head + 1) % len(b.buf)
	b.count--
	b.notFull.Signal()
	return msg, nil
}

// Len reports the number of buffered messages.
func (b *MonitorBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// Close fails blocked and future deposits; buffered messages remain
// removable.
func (b *MonitorBuffer) Close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.notFull.Broadcast()
	b.notEmpty.Broadcast()
}

// SemaphoreBuffer is the semaphore-style bounded buffer: empty/full counting
// semaphores (buffered Go channels) plus a mutex.
type SemaphoreBuffer struct {
	empty chan struct{}
	full  chan struct{}
	mu    sync.Mutex
	buf   []any
	head  int
	count int
}

// NewSemaphoreBuffer creates a bounded buffer with n slots.
func NewSemaphoreBuffer(n int) *SemaphoreBuffer {
	b := &SemaphoreBuffer{
		empty: make(chan struct{}, n),
		full:  make(chan struct{}, n),
		buf:   make([]any, n),
	}
	for i := 0; i < n; i++ {
		b.empty <- struct{}{}
	}
	return b
}

// Deposit blocks on the empty semaphore, then stores the message.
func (b *SemaphoreBuffer) Deposit(msg any) {
	<-b.empty
	b.mu.Lock()
	b.buf[(b.head+b.count)%len(b.buf)] = msg
	b.count++
	b.mu.Unlock()
	b.full <- struct{}{}
}

// Remove blocks on the full semaphore, then returns the oldest message.
func (b *SemaphoreBuffer) Remove() any {
	<-b.full
	b.mu.Lock()
	msg := b.buf[b.head]
	b.buf[b.head] = nil
	b.head = (b.head + 1) % len(b.buf)
	b.count--
	b.mu.Unlock()
	b.empty <- struct{}{}
	return msg
}
