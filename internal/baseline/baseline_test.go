package baseline

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestMonitorBufferFIFO(t *testing.T) {
	b := NewMonitorBuffer(4)
	for i := 0; i < 4; i++ {
		if err := b.Deposit(i); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	for i := 0; i < 4; i++ {
		v, err := b.Remove()
		if err != nil || v != i {
			t.Fatalf("Remove = %v, %v; want %d", v, err, i)
		}
	}
}

func TestMonitorBufferBlocksWhenFull(t *testing.T) {
	b := NewMonitorBuffer(1)
	if err := b.Deposit("x"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.Deposit("y") }()
	select {
	case <-done:
		t.Fatal("Deposit into full buffer returned")
	case <-time.After(30 * time.Millisecond):
	}
	if _, err := b.Remove(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Deposit did not resume")
	}
}

func TestMonitorBufferProducerConsumer(t *testing.T) {
	b := NewMonitorBuffer(8)
	const items = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			if err := b.Deposit(i); err != nil {
				t.Errorf("Deposit: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			v, err := b.Remove()
			if err != nil {
				t.Errorf("Remove: %v", err)
				return
			}
			if v != i {
				t.Errorf("Remove = %v, want %d (FIFO)", v, i)
				return
			}
		}
	}()
	wg.Wait()
}

func TestMonitorBufferClose(t *testing.T) {
	b := NewMonitorBuffer(2)
	if err := b.Deposit(1); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		_, err := b.Remove() // succeeds: one item buffered
		blocked <- err
	}()
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	go func() {
		_, err := b.Remove() // blocks: empty
		blocked <- err
	}()
	time.Sleep(20 * time.Millisecond)
	b.Close()
	if err := <-blocked; !errors.Is(err, ErrClosed) {
		t.Fatalf("Remove after Close = %v, want ErrClosed", err)
	}
	if err := b.Deposit(2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Deposit after Close = %v, want ErrClosed", err)
	}
}

func TestSemaphoreBufferProducerConsumer(t *testing.T) {
	b := NewSemaphoreBuffer(4)
	const items = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			b.Deposit(i)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			if v := b.Remove(); v != i {
				t.Errorf("Remove = %v, want %d (FIFO)", v, i)
				return
			}
		}
	}()
	wg.Wait()
}

func TestRWMutexDB(t *testing.T) {
	db := NewRWMutexDB()
	if _, ok := db.Read(1); ok {
		t.Fatal("Read on empty db reported ok")
	}
	db.Write(1, 42)
	if v, ok := db.Read(1); !ok || v != 42 {
		t.Fatalf("Read = %d, %v", v, ok)
	}
}

func TestBoundedRWDBLimitsReaders(t *testing.T) {
	const readMax = 2
	db := NewBoundedRWDB(readMax)
	db.Write(0, 1)
	var mu sync.Mutex
	inRead, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			db.sem <- struct{}{}
			mu.Lock()
			inRead++
			if inRead > peak {
				peak = inRead
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			inRead--
			mu.Unlock()
			<-db.sem
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if peak > readMax {
		t.Fatalf("peak concurrent readers %d > ReadMax %d", peak, readMax)
	}
}

func TestBoundedRWDBReadWrite(t *testing.T) {
	db := NewBoundedRWDB(4)
	db.Write(7, 99)
	if v, ok := db.Read(7); !ok || v != 99 {
		t.Fatalf("Read = %d, %v", v, ok)
	}
	if _, ok := db.Read(8); ok {
		t.Fatal("missing key reported ok")
	}
}

func TestNoCombineDictCountsEverySearch(t *testing.T) {
	d := NewNoCombineDict(0)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := d.Search("same"); got != "meaning of same" {
				t.Errorf("Search = %q", got)
			}
		}()
	}
	wg.Wait()
	if got := d.Searches(); got != 10 {
		t.Fatalf("Searches = %d, want 10 (no combining)", got)
	}
}

func TestSingleFlightDictCombinesDuplicates(t *testing.T) {
	d := NewSingleFlightDict(20 * time.Millisecond)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if got := d.Search("same"); got != "meaning of same" {
				t.Errorf("Search = %q", got)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := d.Searches(); got >= 10 {
		t.Fatalf("Searches = %d, want far fewer than 10 (duplicates combined)", got)
	}
	// Distinct words are not combined.
	if d.Search("other") != "meaning of other" {
		t.Fatal("Search(other) wrong")
	}
}

func TestNestedMonitorDeadlocks(t *testing.T) {
	p := NewNestedMonitorPair()
	err := p.CallP(50 * time.Millisecond)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("CallP = %v, want ErrDeadlock (the nested monitor call problem)", err)
	}
}
