package baseline

import (
	"sync"
	"time"
)

// NoCombineDict is the dictionary baseline for experiment E3: every query
// performs its own full search, even when an identical query is already in
// flight. The ALPS version combines such requests into a single execution
// (paper §2.7).
type NoCombineDict struct {
	searchCost time.Duration
	mu         sync.Mutex
	searches   uint64
}

// NewNoCombineDict creates a dictionary whose every lookup costs
// searchCost of (simulated) search time.
func NewNoCombineDict(searchCost time.Duration) *NoCombineDict {
	return &NoCombineDict{searchCost: searchCost}
}

// Search looks up the meaning of word, always paying the full search cost.
func (d *NoCombineDict) Search(word string) string {
	d.mu.Lock()
	d.searches++
	d.mu.Unlock()
	SimulateSearch(d.searchCost)
	return "meaning of " + word
}

// Searches reports how many full searches were executed.
func (d *NoCombineDict) Searches() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.searches
}

// SimulateSearch stands in for scanning the dictionary database. It sleeps
// rather than spins so that experiments measure scheduling behaviour, not
// the host's single-core arithmetic throughput; the paper's dictionary
// lives on a multiprocessor where concurrent searches genuinely overlap.
func SimulateSearch(cost time.Duration) {
	if cost > 0 {
		time.Sleep(cost)
	}
}

// SingleFlightDict is the modern Go idiom for the same combining idea
// (duplicate suppression à la golang.org/x/sync/singleflight), included to
// position the manager-based combining against how one would write it
// today. Each in-flight word holds a waiters list; followers block on the
// leader's result.
type SingleFlightDict struct {
	searchCost time.Duration
	mu         sync.Mutex
	inflight   map[string]*flightCall
	searches   uint64
}

type flightCall struct {
	done   chan struct{}
	result string
}

// NewSingleFlightDict creates a duplicate-suppressing dictionary.
func NewSingleFlightDict(searchCost time.Duration) *SingleFlightDict {
	return &SingleFlightDict{
		searchCost: searchCost,
		inflight:   make(map[string]*flightCall),
	}
}

// Search looks up the meaning of word, joining an identical in-flight
// search if one exists.
func (d *SingleFlightDict) Search(word string) string {
	d.mu.Lock()
	if fc, ok := d.inflight[word]; ok {
		d.mu.Unlock()
		<-fc.done
		return fc.result
	}
	fc := &flightCall{done: make(chan struct{})}
	d.inflight[word] = fc
	d.searches++
	d.mu.Unlock()

	SimulateSearch(d.searchCost)
	fc.result = "meaning of " + word

	d.mu.Lock()
	delete(d.inflight, word)
	d.mu.Unlock()
	close(fc.done)
	return fc.result
}

// Searches reports how many full searches were executed.
func (d *SingleFlightDict) Searches() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.searches
}
