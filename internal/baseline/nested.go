package baseline

import (
	"errors"
	"sync"
	"time"
)

// ErrDeadlock reports that a nested monitor call did not complete within
// the detection window.
var ErrDeadlock = errors.New("baseline: nested monitor call deadlocked")

// NestedMonitorPair demonstrates the nested monitor call problem
// (paper §2.3, [18]): monitor X's entry P, holding X's lock, calls monitor
// Y's entry Q, which calls back into X's entry R. R needs X's lock, which P
// still holds — deadlock. DP, Ada and SR suffer from this; an ALPS manager
// does not, because start is asynchronous and the manager can accept R
// while P runs.
type NestedMonitorPair struct {
	muX sync.Mutex
	muY sync.Mutex
}

// NewNestedMonitorPair creates the two-monitor configuration.
func NewNestedMonitorPair() *NestedMonitorPair {
	return &NestedMonitorPair{}
}

// CallP runs X.P -> Y.Q -> X.R with monitor semantics (each entry holds its
// monitor's lock for its full duration). timeout bounds the deadlock
// detection: if R cannot acquire X within it, ErrDeadlock is returned.
func (p *NestedMonitorPair) CallP(timeout time.Duration) error {
	p.muX.Lock() // enter monitor X (entry P)
	defer p.muX.Unlock()
	return p.callQ(timeout)
}

func (p *NestedMonitorPair) callQ(timeout time.Duration) error {
	p.muY.Lock() // enter monitor Y (entry Q)
	defer p.muY.Unlock()
	return p.callR(timeout)
}

// callR needs monitor X again; under true monitor semantics this blocks
// forever. A timed acquisition stands in for the deadlock detector.
func (p *NestedMonitorPair) callR(timeout time.Duration) error {
	acquired := make(chan struct{})
	go func() {
		p.muX.Lock()
		close(acquired)
		p.muX.Unlock()
	}()
	select {
	case <-acquired:
		return nil // only reachable if P released X, i.e. not monitor semantics
	case <-time.After(timeout):
		return ErrDeadlock
	}
}
