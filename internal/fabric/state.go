package fabric

import (
	"encoding/json"
	"fmt"
)

// clientRec is one client's dedup tail for one key. Clients issue appends
// synchronously per key, so the only retriable duplicate is the LAST
// sequence number — keeping (seq, the count it observed, and where/when
// it executed) is a complete at-most-once ledger, and it is small enough
// to travel inside handoff state. Epoch and Node make a deduplicated
// retry's acknowledgement describe the ORIGINAL execution: a retry
// answered by the key's new home after a migration must not report the
// new epoch/node for an append that ran at the old one, or client-side
// ledgers stop being valid conformance-oracle input.
type clientRec struct {
	Seq   uint64 `json:"seq"`   // highest executed sequence number
	Count uint64 `json:"count"` // key count returned by that execution
	Epoch uint64 `json:"epoch"` // placement epoch that execution ran at
	Node  string `json:"node"`  // member that ran it
}

// keyState is one key's ledger entry. It lives on exactly one shard of
// one node at a time; the whole struct — dedup history included — moves
// with the key during handoff, which is what keeps at-most-once intact
// across process boundaries (the PR 8 session-table discipline applied
// per key instead of per connection).
type keyState struct {
	// Epoch is the placement epoch: the ring epoch at which the key
	// arrived at its current home (creation or last install). Executions
	// report it so the conformance oracle can verify affinity per epoch
	// and monotone movement.
	Epoch uint64 `json:"epoch"`
	// Count is the number of appends executed on the key, ever, across
	// all homes.
	Count uint64 `json:"count"`
	// Clients is the per-client dedup tail.
	Clients map[string]clientRec `json:"clients"`
	// Moved marks the tombstone left behind by Extract: the key's state
	// has been handed off and calls must be forwarded, never served here.
	Moved bool `json:"moved,omitempty"`
	// MovedSpec is the ring spec the key moved under; forwarding resolves
	// the key's next home against it (or any newer ring).
	MovedSpec string `json:"movedSpec,omitempty"`
}

func newKeyState(epoch uint64) *keyState {
	return &keyState{Epoch: epoch, Clients: make(map[string]clientRec)}
}

// encodeState serializes a key's ledger entry for handoff, journaling and
// audits.
func encodeState(st *keyState) ([]byte, error) {
	b, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("fabric: encode key state: %w", err)
	}
	return b, nil
}

func decodeState(b []byte) (*keyState, error) {
	st := &keyState{}
	if err := json.Unmarshal(b, st); err != nil {
		return nil, fmt.Errorf("fabric: decode key state: %w", err)
	}
	if st.Clients == nil {
		st.Clients = make(map[string]clientRec)
	}
	return st, nil
}
