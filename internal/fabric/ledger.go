// The ledger is the fabric's per-node state machine: a shard.Group whose
// replicas each own a disjoint slice of the node's resident keys. Every
// entry is routed by key through the group's key-affinity router and
// executed inline on the shard's manager, so one key's calls — appends,
// the Extract tombstone, Install, Forget — form a single FIFO stream.
// That ordering is what makes drain-then-forward work: an Extract queued
// behind in-flight Appends executes only after they finish, and every
// Append queued after it observes the tombstone and is forwarded instead.
package fabric

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/wal"
)

// Ledger entry statuses. They travel as plain result values (not errors)
// because only the sentinel error kinds survive the wire codec; a typed
// status tuple keeps the protocol's full vocabulary intact end to end.
const (
	statusOK         = "ok"          // executed (or deduplicated) here
	statusDup        = "dup"         // idempotent repeat of a completed step
	statusNone       = "none"        // key not resident
	statusMoved      = "moved"       // tombstone: forward to the key's new home
	statusWrongOwner = "wrong-owner" // this node never owned the key; re-resolve
	statusRetry      = "retry"       // transient: ring still settling, try again
	statusGap        = "gap"         // client sequence gap: oracle-grade failure
	statusStale      = "stale"       // install older than resident state
)

// journalFn persists one fabric record (append + group-commit sync)
// before the mutation it describes is acknowledged. nil disables
// durability.
type journalFn func(rec *wal.Record) error

// newLedger builds the node's ledger group: shards key-affine replicas
// holding keyState maps. maxPending bounds each shard's pending Append
// calls with reject-newest shedding (core.ErrOverload), the admission
// control the router surfaces as a typed OverloadError.
func newLedger(shards, maxPending int, nodeID string, journal journalFn) (*shard.Group, error) {
	return shard.New("Fabric", shards,
		func(i int, shardName string) (*core.Object, error) {
			return newLedgerShard(shardName, maxPending, nodeID, journal)
		},
		shard.WithKey("Append", shard.StringKey(0)),
		shard.WithKey("Extract", shard.StringKey(0)),
		shard.WithKey("Install", shard.StringKey(0)),
		shard.WithKey("InstallCheck", shard.StringKey(0)),
		shard.WithKey("Forget", shard.StringKey(0)),
		shard.WithKey("Audit", shard.StringKey(0)),
		shard.WithKey("Restore", shard.StringKey(0)),
	)
}

// newLedgerShard builds one replica. The states map is confined to the
// shard's manager: every entry is intercepted and executed inline on the
// manager process, so bodies need no locking and observe a total order.
func newLedgerShard(name string, maxPending int, nodeID string, journal journalFn) (*core.Object, error) {
	states := make(map[string]*keyState)
	// installed is the shard's move-arbitration memory: per key, one past
	// the highest epoch at which an install was ever accepted here (0 =
	// never), kept past Forget. A crashed source that re-pushes a
	// completed move transaction is answered "dup" from this memory —
	// re-accepting the image after the key moved on would resurrect a
	// stale, executable replica of the lineage. Rebuilt from journal
	// install records on recovery.
	installed := make(map[string]uint64)

	record := func(rec *wal.Record) error {
		if journal == nil {
			return nil
		}
		return journal(rec)
	}

	// Append(key, client, seq, payload, owned, gate, epoch) ->
	// (status, epoch, count, info, node). owned/gate/epoch are the host's
	// view of the current ring at routing time; the body re-checks them
	// only for fresh keys — resident state always wins, which is precisely
	// the grandfathering window that lets the old owner drain queued calls
	// before the tombstone lands. For deduplicated retries, epoch/node
	// are the ORIGINAL execution's, read from the client's dedup tail.
	appendBody := func(inv *core.Invocation) error {
		key, _ := inv.Param(0).(string)
		client, _ := inv.Param(1).(string)
		seq, _ := inv.Param(2).(uint64)
		owned, _ := inv.Param(4).(bool)
		gate, _ := inv.Param(5).(bool)
		epoch, _ := inv.Param(6).(uint64)
		st := states[key]
		if st == nil {
			switch {
			case !owned:
				inv.Return(statusWrongOwner, uint64(0), uint64(0), "", "")
				return nil
			case !gate:
				// A prior owner may still hold this key's dedup history;
				// creating a parallel fresh history here would lose it.
				inv.Return(statusRetry, uint64(0), uint64(0), "settle", "")
				return nil
			case seq != 0:
				// The client is ahead of a key this node has never seen:
				// its history is still in flight — the settle gate holds
				// the fresh path closed while any source is known-unsettled,
				// but a late image can land at its arbiter after the source
				// settled, and the rescan's re-push takes a moment. Back
				// off without creating state; only a resident entry can
				// prove a genuine sequence gap.
				inv.Return(statusRetry, epoch, uint64(0), "arriving", "")
				return nil
			}
			st = newKeyState(epoch)
			states[key] = st
		}
		if st.Moved {
			inv.Return(statusMoved, st.Epoch, uint64(0), st.MovedSpec, "")
			return nil
		}
		if cr, known := st.Clients[client]; known && seq <= cr.Seq {
			if seq == cr.Seq {
				// Retry or duplicate forward of the client's last append:
				// answer from the ledger, never re-execute — and describe
				// the ORIGINAL execution (its epoch and node), not the
				// key's current placement, so a retry answered after a
				// migration doesn't fabricate an epoch-regressing ack.
				inv.Return(statusOK, cr.Epoch, cr.Count, "dup", cr.Node)
				return nil
			}
			inv.Return(statusOK, st.Epoch, uint64(0), "dup-old", "")
			return nil
		}
		want := uint64(0)
		if cr, known := st.Clients[client]; known {
			want = cr.Seq + 1
		}
		if seq != want {
			inv.Return(statusGap, st.Epoch, want, "", "")
			return nil
		}
		prev, hadPrev := st.Clients[client]
		st.Count++
		st.Clients[client] = clientRec{Seq: seq, Count: st.Count, Epoch: st.Epoch, Node: nodeID}
		if err := record(&wal.Record{
			Kind: wal.KindOutcome, Object: journalObject, Entry: "append",
			Client: client, Seq: seq,
			Params: []any{key, st.Epoch, st.Count},
		}); err != nil {
			// Never acknowledge an unjournaled execution: roll the
			// mutation back and fail the call.
			st.Count--
			if hadPrev {
				st.Clients[client] = prev
			} else {
				delete(st.Clients, client)
			}
			return fmt.Errorf("fabric: journal append: %w", err)
		}
		inv.Return(statusOK, st.Epoch, st.Count, "", nodeID)
		return nil
	}

	// Extract(key, destSpec) -> (status, state). Plants the tombstone and
	// returns the serialized ledger entry for the push to the new owner.
	// Repeats return "dup" with the same state, so a crashed handoff can
	// simply re-extract on restart.
	extractBody := func(inv *core.Invocation) error {
		key, _ := inv.Param(0).(string)
		destSpec, _ := inv.Param(1).(string)
		st := states[key]
		if st == nil {
			inv.Return(statusNone, []byte(nil))
			return nil
		}
		if st.Moved {
			b, err := encodeState(st)
			if err != nil {
				return err
			}
			inv.Return(statusDup, b)
			return nil
		}
		if spec, err := ParseSpec(destSpec); err == nil && st.Epoch > spec.Epoch() {
			// The key arrived under a ring NEWER than the handoff pass's
			// snapshot: the pass raced the install, and the key is not
			// misplaced — it is home under the ring that carried it here.
			// Extracting it pinned at the older ring would push it back
			// into its own wake, where the previous owner's install
			// memory (correctly) answers dup and both sides would then
			// forget the only live copy. Skip; a pass under a ring at
			// least as new as the resident epoch moves it if it is still
			// misplaced then. This also keeps a key's placement epoch
			// monotone along its lineage, which is what makes the
			// install memory a sound arbiter in the first place.
			inv.Return(statusRetry, []byte(nil))
			return nil
		}
		st.Moved = true
		st.MovedSpec = destSpec
		b, err := encodeState(st)
		if err != nil {
			st.Moved = false
			st.MovedSpec = ""
			return err
		}
		if err := record(&wal.Record{
			Kind: wal.KindOutcome, Object: journalObject, Entry: "extract",
			Params: []any{key, destSpec, b},
		}); err != nil {
			st.Moved = false
			st.MovedSpec = ""
			return fmt.Errorf("fabric: journal extract: %w", err)
		}
		inv.Return(statusOK, b)
		return nil
	}

	// Install(key, epoch, state) -> (status). Applies the handed-off
	// ledger entry at its new home. Precedence is by lineage: Count only
	// grows along a key's single history, so the image with the higher
	// Count is always the newer one regardless of which ring epoch carried
	// it — a crashed handoff's re-pushed (stale, lower-Count) image must
	// never displace a live copy, and a returning live copy must displace
	// the tombstone it left behind. Ties break by placement epoch, which
	// keeps duplicate pushes idempotent.
	installBody := func(inv *core.Invocation) error {
		key, _ := inv.Param(0).(string)
		epoch, _ := inv.Param(1).(uint64)
		b, _ := inv.Param(2).([]byte)
		if epoch < installed[key] {
			// This move transaction (or a later one) already delivered
			// here; the pushing source can safely Forget. The state may
			// have moved on since — answering dup instead of re-accepting
			// is what keeps one installable image per key in flight.
			inv.Return(statusDup)
			return nil
		}
		ns, err := decodeState(b)
		if err != nil {
			return err
		}
		if st := states[key]; st != nil {
			if ns.Count < st.Count || (ns.Count == st.Count && epoch <= st.Epoch) {
				if st.Moved {
					inv.Return(statusStale)
				} else {
					inv.Return(statusDup)
				}
				return nil
			}
		}
		ns.Epoch = epoch
		ns.Moved = false
		ns.MovedSpec = ""
		prev := states[key]
		states[key] = ns
		if err := record(&wal.Record{
			Kind: wal.KindOutcome, Object: journalObject, Entry: "install",
			Params: []any{key, epoch, b},
		}); err != nil {
			if prev != nil {
				states[key] = prev
			} else {
				delete(states, key)
			}
			return fmt.Errorf("fabric: journal install: %w", err)
		}
		installed[key] = epoch + 1
		inv.Return(statusOK)
		return nil
	}

	// InstallCheck(key, epoch) -> (status). Read-only probe of the
	// arbitration memory: "dup" when an install at epoch (or later) was
	// already accepted here, "none" otherwise. The host consults it before
	// refusing a stale-placement push — a completed transaction is
	// answered "dup" from memory, a first delivery is sent back to the
	// source to re-pin at the current ring.
	installCheckBody := func(inv *core.Invocation) error {
		key, _ := inv.Param(0).(string)
		epoch, _ := inv.Param(1).(uint64)
		if epoch < installed[key] {
			inv.Return(statusDup)
		} else {
			inv.Return(statusNone)
		}
		return nil
	}

	// Forget(key) -> (status). Drops a tombstone once the install it
	// covers has been acknowledged; late calls for the key then take the
	// wrong-owner path instead of the forward path. Only tombstones are
	// ever dropped — live state can leave a node exclusively via Extract.
	forgetBody := func(inv *core.Invocation) error {
		key, _ := inv.Param(0).(string)
		st := states[key]
		if st == nil || !st.Moved {
			inv.Return(statusNone)
			return nil
		}
		delete(states, key)
		if err := record(&wal.Record{
			Kind: wal.KindOutcome, Object: journalObject, Entry: "forget",
			Params: []any{key},
		}); err != nil {
			states[key] = st
			return fmt.Errorf("fabric: journal forget: %w", err)
		}
		inv.Return(statusOK)
		return nil
	}

	// Audit(key) -> (status, state). Read-only snapshot of the key's
	// ledger entry for the conformance oracle's convergence check.
	auditBody := func(inv *core.Invocation) error {
		key, _ := inv.Param(0).(string)
		st := states[key]
		if st == nil {
			inv.Return(statusNone, []byte(nil))
			return nil
		}
		b, err := encodeState(st)
		if err != nil {
			return err
		}
		inv.Return(statusOK, b)
		return nil
	}

	// Restore(key, state, installedFence) -> (status). Recovery-only bulk
	// load, replayed from the journal before the node serves traffic;
	// never journaled itself. state may be empty for keys whose entry was
	// forgotten but whose install memory (the fence, epoch+1 form) must
	// survive the restart.
	restoreBody := func(inv *core.Invocation) error {
		key, _ := inv.Param(0).(string)
		b, _ := inv.Param(1).([]byte)
		fence, _ := inv.Param(2).(uint64)
		if fence > installed[key] {
			installed[key] = fence
		}
		if len(b) == 0 {
			inv.Return(statusOK)
			return nil
		}
		st, err := decodeState(b)
		if err != nil {
			return err
		}
		states[key] = st
		inv.Return(statusOK)
		return nil
	}

	// Keys() -> (json). Resident keys with their moved flag, one shard's
	// worth; the host broadcasts and merges.
	keysBody := func(inv *core.Invocation) error {
		m := make(map[string]bool, len(states))
		for k, st := range states {
			m[k] = st.Moved
		}
		b, err := json.Marshal(m)
		if err != nil {
			return err
		}
		inv.Return(b)
		return nil
	}

	return core.New(name,
		core.WithEntry(core.EntrySpec{Name: "Append", Params: 7, Results: 5, Body: appendBody,
			MaxPending: maxPending, Shed: core.ShedRejectNewest}),
		core.WithEntry(core.EntrySpec{Name: "Extract", Params: 2, Results: 2, Body: extractBody}),
		core.WithEntry(core.EntrySpec{Name: "Install", Params: 3, Results: 1, Body: installBody}),
		core.WithEntry(core.EntrySpec{Name: "InstallCheck", Params: 2, Results: 1, Body: installCheckBody}),
		core.WithEntry(core.EntrySpec{Name: "Forget", Params: 1, Results: 1, Body: forgetBody}),
		core.WithEntry(core.EntrySpec{Name: "Audit", Params: 1, Results: 2, Body: auditBody}),
		core.WithEntry(core.EntrySpec{Name: "Restore", Params: 3, Results: 1, Body: restoreBody}),
		core.WithEntry(core.EntrySpec{Name: "Keys", Results: 1, Body: keysBody}),
		core.WithManager(func(m *core.Mgr) {
			_ = m.Loop(
				core.OnAccept("Append", func(a *core.Accepted) { _, _ = m.Execute(a) }),
				core.OnAccept("Extract", func(a *core.Accepted) { _, _ = m.Execute(a) }),
				core.OnAccept("Install", func(a *core.Accepted) { _, _ = m.Execute(a) }),
				core.OnAccept("InstallCheck", func(a *core.Accepted) { _, _ = m.Execute(a) }),
				core.OnAccept("Forget", func(a *core.Accepted) { _, _ = m.Execute(a) }),
				core.OnAccept("Audit", func(a *core.Accepted) { _, _ = m.Execute(a) }),
				core.OnAccept("Restore", func(a *core.Accepted) { _, _ = m.Execute(a) }),
				core.OnAccept("Keys", func(a *core.Accepted) { _, _ = m.Execute(a) }),
			)
		}, core.Intercept("Append"), core.Intercept("Extract"), core.Intercept("Install"),
			core.Intercept("InstallCheck"), core.Intercept("Forget"), core.Intercept("Audit"),
			core.Intercept("Restore"), core.Intercept("Keys")),
	)
}

// journalObject names fabric records in the shared write-ahead log.
const journalObject = "fabric"
