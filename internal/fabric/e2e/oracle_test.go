package e2e

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/conformance"
	"repro/internal/fabric"
	"repro/internal/testutil"
)

// ledgerFile mirrors the JSON alpsclient fabric-load writes.
type ledgerFile struct {
	Client     string            `json:"client"`
	Execs      []fabric.Exec     `json:"execs"`
	Incomplete map[string]uint64 `json:"incomplete"`
}

func readLedger(t *testing.T, path string) ledgerFile {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ledger %s: %v", path, err)
	}
	var lf ledgerFile
	if err := json.Unmarshal(b, &lf); err != nil {
		t.Fatalf("ledger %s: %v", path, err)
	}
	return lf
}

// serverOrder reconstructs each key's server-side execution order from
// the merged client ledgers: Count is assigned under the owning shard
// manager's serialization, so sorting one key's acknowledged execs by
// Count yields the order the fabric actually ran them in — valid input
// for conformance.CheckKeyOrder even though it was observed client-side.
func serverOrder(execs []fabric.Exec) []conformance.KeyedExec {
	byKey := make(map[string][]fabric.Exec)
	for _, e := range execs {
		byKey[e.Key] = append(byKey[e.Key], e)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []conformance.KeyedExec
	for _, k := range keys {
		es := byKey[k]
		sort.Slice(es, func(i, j int) bool { return es[i].Count < es[j].Count })
		for _, e := range es {
			out = append(out, conformance.KeyedExec{
				Key: e.Key, Client: e.Client, Seq: int(e.Seq), Shard: e.Node, Epoch: e.Epoch,
			})
		}
	}
	return out
}

// checkCounts verifies that each key's acknowledged counts are exactly
// 1..N: a repeated count is a duplicated execution (lost update), a hole
// is an execution acknowledged to no one — both oracle-grade failures.
func checkCounts(execs []fabric.Exec) []string {
	byKey := make(map[string][]uint64)
	for _, e := range execs {
		byKey[e.Key] = append(byKey[e.Key], e.Count)
	}
	var problems []string
	for key, counts := range byKey {
		sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
		for i, c := range counts {
			if c != uint64(i+1) {
				problems = append(problems, fmt.Sprintf(
					"key %q: acknowledged counts not contiguous at position %d (got %d, want %d; %d acks total)",
					key, i, c, i+1, len(counts)))
				break
			}
		}
	}
	sort.Strings(problems)
	return problems
}

// auditOracle cross-checks every key's server-side ledger against the
// merged client view: the owner's count must equal the number of
// acknowledged execs, and its per-client high-water seq must match what
// each client believes it pushed. Retries until the budget expires so a
// still-settling handoff isn't misread as divergence.
func auditOracle(t *testing.T, c *cluster, execs []fabric.Exec) {
	t.Helper()
	type expect struct {
		count   uint64
		clients map[string]uint64
	}
	want := make(map[string]*expect)
	for _, e := range execs {
		w := want[e.Key]
		if w == nil {
			w = &expect{clients: make(map[string]uint64)}
			want[e.Key] = w
		}
		w.count++
		if e.Seq >= w.clients[e.Client] {
			w.clients[e.Client] = e.Seq
		}
	}
	ring, err := fabric.NewRing(c.epoch, c.ringSeed, 0, c.members)
	if err != nil {
		t.Fatal(err)
	}
	router, err := fabric.NewRouter(ring.Spec(), fabric.RouterOptions{ClientID: "oracle", DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var lastMismatch string
	ok := func() bool {
		for _, key := range keys {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			a, err := router.Audit(ctx, key)
			cancel()
			if err != nil {
				lastMismatch = fmt.Sprintf("audit %q: %v", key, err)
				return false
			}
			w := want[key]
			if !a.Found || a.Count != w.count {
				lastMismatch = fmt.Sprintf("key %q: owner %s has count %d (found=%v), clients acknowledged %d",
					key, a.Node, a.Count, a.Found, w.count)
				return false
			}
			for client, seq := range w.clients {
				if got, okc := a.Clients[client]; !okc || got != seq {
					lastMismatch = fmt.Sprintf("key %q: owner %s records client %q at seq %d (present=%v), client acknowledged through %d",
						key, a.Node, client, got, okc, seq)
					return false
				}
			}
		}
		return true
	}
	deadline := time.Now().Add(30 * time.Second)
	if b := testutil.WaitBudget(t); b.Before(deadline) {
		deadline = b
	}
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("audit convergence failed: %s", lastMismatch)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// migrationProof asserts the corpus actually exercised a live handoff:
// at least one key must have executions at two different placement
// epochs on two different nodes.
func migrationProof(execs []fabric.Exec) (string, bool) {
	type firstSeen struct {
		node  string
		epoch uint64
	}
	seen := make(map[string]firstSeen)
	for _, e := range execs {
		f, ok := seen[e.Key]
		if !ok {
			seen[e.Key] = firstSeen{node: e.Node, epoch: e.Epoch}
			continue
		}
		if e.Node != f.node && e.Epoch != f.epoch {
			return e.Key, true
		}
	}
	return "", false
}

func formatDivergences(divs []conformance.Divergence) string {
	var b strings.Builder
	for i, d := range divs {
		if i >= 10 {
			fmt.Fprintf(&b, "... and %d more\n", len(divs)-i)
			break
		}
		fmt.Fprintf(&b, "%+v\n", d)
	}
	return b.String()
}
