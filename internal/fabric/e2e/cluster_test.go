package e2e

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// Built binaries, shared across every run in the package.
var (
	buildOnce     sync.Once
	buildErr      error
	alpsdBin      string
	alpsclientBin string
)

// binaries builds the real alpsd and alpsclient once per test binary.
// The harness is black-box: everything on the data path runs as a
// separate OS process talking TCP. FABRIC_E2E_RACE=1 builds the child
// binaries with the race detector, so CI's race job watches the product
// side of the TCP boundary too, not just the harness side.
func binaries(t *testing.T) (string, string) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "fabric-e2e-bin-")
		if err != nil {
			buildErr = err
			return
		}
		args := []string{"build", "-o", dir}
		if os.Getenv("FABRIC_E2E_RACE") == "1" {
			args = append(args, "-race")
		}
		args = append(args, "repro/cmd/alpsd", "repro/cmd/alpsclient")
		cmd := exec.Command("go", args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
			return
		}
		alpsdBin = filepath.Join(dir, "alpsd")
		alpsclientBin = filepath.Join(dir, "alpsclient")
	})
	if buildErr != nil {
		t.Fatalf("building binaries: %v", buildErr)
	}
	return alpsdBin, alpsclientBin
}

// reservePort grabs a free loopback port and releases it for the caller
// to bind shortly after.
func reservePort(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	_ = lis.Close()
	return addr
}

// procNode is one alpsd process: a real listen address, a data dir whose
// journal survives SIGKILL, and the proxy its advertised address routes
// through.
type procNode struct {
	id       string
	realAddr string
	dataDir  string
	logPath  string
	px       *proxy
	args     []string

	mu   sync.Mutex
	cmd  *exec.Cmd
	done chan struct{} // closed by the reaper once the process is waited on
}

func (n *procNode) start(t *testing.T) {
	t.Helper()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cmd != nil {
		return
	}
	logf, err := os.OpenFile(n.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(alpsdBin, n.args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		_ = logf.Close()
		t.Fatalf("start %s: %v", n.id, err)
	}
	done := make(chan struct{})
	go func() {
		_ = cmd.Wait()
		_ = logf.Close()
		close(done)
	}()
	n.cmd, n.done = cmd, done
}

// kill SIGKILLs the node — no shutdown hooks run, which is the point:
// only the journal may save it.
func (n *procNode) kill() {
	n.mu.Lock()
	cmd, done := n.cmd, n.done
	n.cmd, n.done = nil, nil
	n.mu.Unlock()
	if cmd == nil {
		return
	}
	_ = cmd.Process.Kill()
	// Wait for the start goroutine to reap the process so the listen
	// port frees before a restart.
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
}

func (n *procNode) running() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cmd != nil
}

// waitReady probes the node's real address (not the proxy: readiness is
// about the process, partitions are orthogonal).
func (n *procNode) waitReady(t *testing.T) {
	t.Helper()
	testutil.WaitUntil(t, n.id+" accepting", func() bool {
		c, err := net.DialTimeout("tcp", n.realAddr, 200*time.Millisecond)
		if err != nil {
			return false
		}
		_ = c.Close()
		return true
	})
}

// cluster is one chaos run's process fleet plus the harness's model of
// the current ring (epoch, placement seed, membership).
type cluster struct {
	t   *testing.T
	dir string

	bootSeed    uint64 // founding ring's placement seed
	bootMembers string // founding members spec (proxy addresses)

	epoch    uint64
	ringSeed uint64
	members  map[string]string // current membership, id -> proxy addr
	nodes    map[string]*procNode
	order    []string // node ids, deterministic iteration for seeded picks
}

// memberSpec renders "id=addr,..." with sorted ids, the format alpsd and
// alpsclient share.
func memberSpec(members map[string]string) string {
	ids := make([]string, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		parts = append(parts, id+"="+members[id])
	}
	return strings.Join(parts, ",")
}

// newCluster boots n founding members at epoch 0 behind proxies and
// waits until every process accepts.
func newCluster(t *testing.T, dir string, n int, seed uint64) *cluster {
	t.Helper()
	c := &cluster{
		t:        t,
		dir:      dir,
		bootSeed: seed,
		epoch:    0,
		ringSeed: seed,
		members:  make(map[string]string),
		nodes:    make(map[string]*procNode),
	}
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("n%d", i)
	}
	real := make(map[string]string)
	for _, id := range ids {
		real[id] = reservePort(t)
		c.members[id] = reservePort(t) // proxy address, advertised
	}
	c.bootMembers = memberSpec(c.members)
	for _, id := range ids {
		c.addNode(id, real[id], c.bootMembers, 0, seed)
	}
	for _, id := range ids {
		c.nodes[id].waitReady(t)
	}
	return c
}

// addNode creates (and starts) one member process plus its proxy. The
// boot ring flags pin the epoch/seed the node joins at; anything newer
// is learned from the journal or from peers.
func (c *cluster) addNode(id, realAddr, membersSpec string, epoch, seed uint64) *procNode {
	c.t.Helper()
	px := newProxy(c.members[id], realAddr)
	if err := px.Start(); err != nil {
		c.t.Fatalf("proxy %s: %v", id, err)
	}
	c.t.Cleanup(px.Stop)
	dataDir := filepath.Join(c.dir, id)
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		c.t.Fatal(err)
	}
	n := &procNode{
		id:       id,
		realAddr: realAddr,
		dataDir:  dataDir,
		logPath:  filepath.Join(c.dir, id+".log"),
		px:       px,
		args: []string{
			"-addr", realAddr,
			"-data-dir", dataDir,
			"-fabric-id", id,
			"-fabric-members", membersSpec,
			"-fabric-epoch", fmt.Sprint(epoch),
			"-fabric-seed", fmt.Sprint(seed),
			"-fabric-shards", "2",
			"-fabric-max-pending", "64",
		},
	}
	c.nodes[id] = n
	c.order = append(c.order, id)
	sort.Strings(c.order)
	n.start(c.t)
	c.t.Cleanup(n.kill)
	return n
}

// client builds an alpsclient invocation rooted at the founding members;
// the client adopts newer rings from wrong-owner hints like any other.
func (c *cluster) client(extra []string, args ...string) *exec.Cmd {
	base := []string{
		"-fabric-members", c.bootMembers,
		"-fabric-seed", fmt.Sprint(c.bootSeed),
		"-timeout", "5s",
	}
	base = append(base, extra...)
	base = append(base, args...)
	return exec.Command(alpsclientBin, base...)
}

// runClient runs an alpsclient command to completion, returning its
// combined output.
func (c *cluster) runClient(extra []string, args ...string) (string, error) {
	cmd := c.client(extra, args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// loadProc is one running fabric-load process and where its ledger will
// land.
type loadProc struct {
	client string
	ledger string
	cmd    *exec.Cmd
	out    *bytes.Buffer
}

// startLoad launches one seeded fabric-load traffic process.
func (c *cluster) startLoad(client, prefix string, keys, seqs int, jitterSeed uint64, pace time.Duration) *loadProc {
	c.t.Helper()
	ledger := filepath.Join(c.dir, client+".ledger.json")
	var out bytes.Buffer
	cmd := c.client(
		[]string{"-client", client, "-load-deadline", "100s", "-load-pace", pace.String()},
		"fabric-load", prefix, fmt.Sprint(keys), fmt.Sprint(seqs), ledger, fmt.Sprint(jitterSeed),
	)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		c.t.Fatalf("start load %s: %v", client, err)
	}
	return &loadProc{client: client, ledger: ledger, cmd: cmd, out: &out}
}

// nodeLogTail returns the last lines of every node log, for failure
// reports.
func (c *cluster) nodeLogTail(lines int) string {
	var b strings.Builder
	for _, id := range c.order {
		data, err := os.ReadFile(c.nodes[id].logPath)
		if err != nil {
			continue
		}
		all := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(all) > lines {
			all = all[len(all)-lines:]
		}
		fmt.Fprintf(&b, "--- %s ---\n%s\n", id, strings.Join(all, "\n"))
	}
	return b.String()
}
