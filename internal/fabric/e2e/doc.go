// Package e2e holds the fabric's black-box chaos harness. All of the
// machinery lives in _test.go files: the tests build the real alpsd and
// alpsclient binaries, boot a multi-node fabric cluster on loopback TCP
// behind partitionable proxy listeners, drive seeded mixed traffic from
// separate client processes, apply hundreds of seeded chaos actions
// (SIGKILL + restart, partitions, live reshards, overload bursts), and
// then replay every client-side ledger through the conformance oracle —
// zero lost calls, zero duplicated executions, per-key FIFO across live
// reshards. Failures print a deterministic reproducer seed; see
// docs/FABRIC.md and docs/TESTING.md.
package e2e
