package e2e

import (
	"io"
	"net"
	"sync"
	"time"
)

// proxy is a partitionable TCP forwarder. The cluster advertises proxy
// addresses in -fabric-members, so every byte between peers — and
// between clients and nodes — crosses one of these. Stop() simulates a
// network partition of the node behind it: the listener closes and every
// live connection is severed; Start() heals it on the same address.
type proxy struct {
	addr   string // advertised (stable across Stop/Start cycles)
	target string // the node's real listen address

	mu    sync.Mutex
	lis   net.Listener
	conns map[net.Conn]struct{}
}

func newProxy(addr, target string) *proxy {
	return &proxy{addr: addr, target: target, conns: make(map[net.Conn]struct{})}
}

// Start begins (or resumes) forwarding. Idempotent.
func (p *proxy) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lis != nil {
		return nil
	}
	lis, err := net.Listen("tcp", p.addr)
	if err != nil {
		return err
	}
	p.lis = lis
	go p.accept(lis)
	return nil
}

// Stop severs the node: no new connections, and every existing one dies
// mid-stream — exactly what a partition looks like to both ends.
func (p *proxy) Stop() {
	p.mu.Lock()
	lis := p.lis
	p.lis = nil
	conns := p.conns
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
	if lis != nil {
		_ = lis.Close()
	}
	for c := range conns {
		_ = c.Close()
	}
}

func (p *proxy) accept(lis net.Listener) {
	for {
		c, err := lis.Accept()
		if err != nil {
			return
		}
		go p.forward(lis, c)
	}
}

func (p *proxy) forward(lis net.Listener, c net.Conn) {
	up, err := net.DialTimeout("tcp", p.target, 2*time.Second)
	if err != nil {
		_ = c.Close()
		return
	}
	p.mu.Lock()
	if p.lis != lis {
		// A Stop() raced this accept; sever instead of leaking a healed
		// path through a partition.
		p.mu.Unlock()
		_ = c.Close()
		_ = up.Close()
		return
	}
	p.conns[c] = struct{}{}
	p.conns[up] = struct{}{}
	p.mu.Unlock()
	done := func() {
		_ = c.Close()
		_ = up.Close()
		p.mu.Lock()
		delete(p.conns, c)
		delete(p.conns, up)
		p.mu.Unlock()
	}
	go func() {
		_, _ = io.Copy(up, c)
		done()
	}()
	_, _ = io.Copy(c, up)
	done()
}
