package e2e

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/conformance"
	"repro/internal/fabric"
	"repro/internal/workload"
)

// actionsPerRun is each seeded run's chaos budget. Three corpus seeds ×
// 70 actions = 210 seeded chaos actions per full pass, all driven
// against real alpsd processes over loopback TCP.
const actionsPerRun = 70

// TestChaosOracle is the fabric's black-box convergence proof: build the
// real binaries, boot a founding 3-node cluster behind partitionable
// proxies, run seeded mixed traffic from separate alpsclient processes,
// and interleave SIGKILLs, partitions, live reshards (including the 3→6
// growth mid-traffic) and overload bursts. When the dust settles, every
// client-side ledger is merged and replayed through the conformance
// oracle: counts contiguous (nothing lost, nothing executed twice),
// per-key FIFO per client across placement epochs, and the owners'
// ledgers agreeing with everything the clients were told.
//
// Every run is reproducible: FABRIC_E2E_SEED=<seed> reruns exactly one
// seed's action schedule.
func TestChaosOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("black-box e2e chaos harness; skipped with -short")
	}
	binaries(t)
	seeds := []uint64{1, 2, 3}
	if env := os.Getenv("FABRIC_E2E_SEED"); env != "" {
		v, err := strconv.ParseUint(env, 10, 64)
		if err != nil {
			t.Fatalf("FABRIC_E2E_SEED=%q: %v", env, err)
		}
		seeds = []uint64{v}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

// reproducer is printed with every failure so one command replays the
// exact schedule that broke.
func reproducer(seed uint64) string {
	return fmt.Sprintf("reproduce with: FABRIC_E2E_SEED=%d go test ./internal/fabric/e2e -run TestChaosOracle -count=1 -v", seed)
}

func runChaos(t *testing.T, seed uint64) {
	// FABRIC_E2E_DIR keeps every run's working state (node logs, journals,
	// client ledgers) in a named directory that survives the test — CI
	// uploads it as the failure artifact.
	dir := t.TempDir()
	if base := os.Getenv("FABRIC_E2E_DIR"); base != "" {
		dir = filepath.Join(base, fmt.Sprintf("seed-%d", seed))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	c := newCluster(t, dir, 3, 1000+seed)
	rng := workload.NewRNG(seed)

	// Mixed traffic: four clients interleaving on six shared keys, paced
	// so their streams span the chaos window (and in particular are still
	// mid-flight when the ring grows).
	loads := make([]*loadProc, 0, 4)
	for i := 0; i < 4; i++ {
		loads = append(loads, c.startLoad(fmt.Sprintf("c%d", i), "w", 6, 50, seed*100+uint64(i), 150*time.Millisecond))
	}
	bursts := make([]*loadProc, 0, 16)

	growAt := 8 + rng.Intn(6)
	var kills, partitions, reshards, burstN, pauses int
	for i := 0; i < actionsPerRun; i++ {
		if i == growAt {
			c.grow(t, seed, []string{"n3", "n4", "n5"})
			reshards++
			continue
		}
		switch p := rng.Intn(100); {
		case p < 20:
			// SIGKILL a member, then restart it on its journal. The node
			// must come back owing nothing it acknowledged.
			id := c.order[rng.Intn(len(c.order))]
			n := c.nodes[id]
			n.kill()
			time.Sleep(time.Duration(150+rng.Intn(400)) * time.Millisecond)
			n.start(t)
			n.waitReady(t)
			kills++
		case p < 45:
			// Partition a member from everyone — peers and clients — then
			// heal. Handoffs and settles must stall, not fork.
			id := c.order[rng.Intn(len(c.order))]
			px := c.nodes[id].px
			px.Stop()
			time.Sleep(time.Duration(150+rng.Intn(400)) * time.Millisecond)
			if err := px.Start(); err != nil {
				t.Fatalf("heal %s: %v\n%s", id, err, reproducer(seed))
			}
			partitions++
		case p < 56:
			// Reshard in place with a new placement seed: same members,
			// new epoch, most keys migrate live.
			c.reshard(t, seed)
			reshards++
		case p < 76:
			// Overload burst: a short-lived extra client hammering fresh
			// keys at full speed; sheds surface as typed retry hints, not
			// lost calls.
			name := fmt.Sprintf("b%d", i)
			bursts = append(bursts, c.startLoad(name, name, 3, 8, seed^uint64(i), 0))
			burstN++
		default:
			time.Sleep(time.Duration(80+rng.Intn(220)) * time.Millisecond)
			pauses++
		}
	}

	// Heal everything: every proxy forwarding, every process running. The
	// fabric's obligations (handoffs, settles, retried appends) must now
	// drain to a single converged history.
	for _, id := range c.order {
		if err := c.nodes[id].px.Start(); err != nil {
			t.Fatalf("final heal %s: %v\n%s", id, err, reproducer(seed))
		}
		if !c.nodes[id].running() {
			c.nodes[id].start(t)
			c.nodes[id].waitReady(t)
		}
	}
	t.Logf("seed %d: %d actions (%d kills, %d partitions, %d reshards, %d bursts, %d pauses), ring at epoch %d with %d members",
		seed, actionsPerRun, kills, partitions, reshards, burstN, pauses, c.epoch, len(c.members))

	// Every traffic process must finish with a full ledger: a sequence
	// gap (exit 5) or an incomplete stream is a lost or reordered call.
	var execs []fabric.Exec
	for _, lp := range append(append([]*loadProc{}, loads...), bursts...) {
		if err := lp.cmd.Wait(); err != nil {
			t.Fatalf("load %s failed: %v\noutput:\n%s\n%s\nnode logs:\n%s",
				lp.client, err, lp.out.String(), reproducer(seed), c.nodeLogTail(15))
		}
		lf := readLedger(t, lp.ledger)
		if len(lf.Incomplete) > 0 {
			t.Fatalf("load %s left incomplete streams %v\n%s", lp.client, lf.Incomplete, reproducer(seed))
		}
		execs = append(execs, lf.Execs...)
	}
	t.Logf("seed %d: %d acknowledged appends across %d traffic processes", seed, len(execs), len(loads)+len(bursts))

	// Oracle, part 1: acknowledged counts per key are exactly 1..N —
	// no execution lost, none duplicated.
	if problems := checkCounts(execs); len(problems) > 0 {
		t.Fatalf("count contiguity violated:\n%s\n%s", problems[0], reproducer(seed))
	}
	// Oracle, part 2: replay the reconstructed server order through the
	// conformance checker — per-key FIFO per client, single placement per
	// epoch, monotone epochs.
	if divs := conformance.CheckKeyOrder(serverOrder(execs)); len(divs) > 0 {
		t.Fatalf("CheckKeyOrder found %d divergences:\n%s%s", len(divs), formatDivergences(divs), reproducer(seed))
	}
	// Oracle, part 3: the owners' ledgers must agree with everything the
	// clients were told.
	auditOracle(t, c, execs)
	// And the run must actually have proven a live migration: some key
	// executed at two epochs on two nodes.
	if key, ok := migrationProof(execs); !ok {
		t.Fatalf("no key migrated across epochs — chaos schedule never exercised a live handoff\n%s", reproducer(seed))
	} else {
		t.Logf("seed %d: live migration proven (key %q executed on two nodes at two epochs)", seed, key)
	}
}

// grow boots the new members at the next epoch's ring (so their
// fresh-create gate holds from the first byte) and reshards the cluster
// onto the doubled membership — the paper's N→2N reconfiguration, live.
func (c *cluster) grow(t *testing.T, seed uint64, newIDs []string) {
	t.Helper()
	newEpoch := c.epoch + 1
	newSeed := c.bootSeed + 97*newEpoch
	real := make(map[string]string)
	for _, id := range newIDs {
		real[id] = reservePort(t)
		c.members[id] = reservePort(t)
	}
	spec := memberSpec(c.members)
	for _, id := range newIDs {
		c.addNode(id, real[id], spec, newEpoch, newSeed)
	}
	for _, id := range newIDs {
		c.nodes[id].waitReady(t)
	}
	out, err := c.runClient(nil, "fabric-reshard", fmt.Sprint(newEpoch), spec, fmt.Sprint(newSeed))
	if err != nil {
		t.Fatalf("grow reshard: %v\n%s\n%s", err, out, reproducer(seed))
	}
	c.epoch, c.ringSeed = newEpoch, newSeed
}

// reshard bumps the epoch with a fresh placement seed over the current
// membership: a same-size migration that moves most keys.
func (c *cluster) reshard(t *testing.T, seed uint64) {
	t.Helper()
	newEpoch := c.epoch + 1
	newSeed := c.bootSeed + 97*newEpoch
	spec := memberSpec(c.members)
	out, err := c.runClient(nil, "fabric-reshard", fmt.Sprint(newEpoch), spec, fmt.Sprint(newSeed))
	if err != nil {
		t.Fatalf("reshard to epoch %d: %v\n%s\n%s", newEpoch, err, out, reproducer(seed))
	}
	c.epoch, c.ringSeed = newEpoch, newSeed
}
