package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/shard"
	"repro/internal/wal"
)

// HostOptions configures one fabric node.
type HostOptions struct {
	// ID is this node's member id; it must appear in Spec.
	ID string
	// Spec is the initial ring (Ring.Spec format). A newer ring recovered
	// from the journal, or learned from any peer or client, supersedes it.
	Spec string
	// Shards is the ledger shard count (default 4).
	Shards int
	// MaxPending bounds each ledger shard's pending Append calls; beyond
	// it the shard sheds with core.ErrOverload (0 = unbounded).
	MaxPending int
	// Dir, when non-empty, holds the fabric's write-ahead journal: every
	// executed append, handoff step and ring advance is synced there
	// before acknowledgement, and recovery replays it so a SIGKILL loses
	// nothing acknowledged.
	Dir string
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// maxForwardHops bounds the moved-forwarding chain; past it the caller is
// told to re-resolve instead (guards against routing loops while specs
// disagree mid-reshard).
const maxForwardHops = 4

// Host is one fabric node: a key-affine ledger group, the node's view of
// the ring, the drain-then-forward handoff worker and the settled-vector
// bookkeeping. Publish it on an rpc.Node as a Callable (conventionally
// under the name "fabric") and route client calls through a Router.
type Host struct {
	id    string
	group *shard.Group
	log   *wal.Log // nil when durability is off
	logf  func(format string, args ...any)

	mu        sync.Mutex
	ring      *Ring
	known     map[string]string // every member id -> addr ever seen
	settled   map[string]uint64 // member -> highest settled epoch
	completed uint64            // own outgoing obligations done through this epoch
	conns     map[string]*hostConn
	closed    bool

	// gateEpoch caches the highest epoch whose fresh-create gate has been
	// observed satisfied; the gate is monotone, so the cache never lies.
	gateEpoch  atomic.Uint64
	refreshing atomic.Bool

	kick    chan struct{}
	closeCh chan struct{}
	done    chan struct{}
}

type hostConn struct {
	addr string
	rem  *rpc.Remote
}

// NewHost builds a node: recovers the journal (when Dir is set), restores
// the ledger, and starts the handoff worker. The returned Host is ready
// to publish.
func NewHost(opts HostOptions) (*Host, error) {
	ring, err := ParseSpec(opts.Spec)
	if err != nil {
		return nil, err
	}
	if !ring.Has(opts.ID) {
		return nil, fmt.Errorf("fabric: member %q is not in ring %q", opts.ID, opts.Spec)
	}
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	h := &Host{
		id:      opts.ID,
		logf:    opts.Logf,
		ring:    ring,
		known:   make(map[string]string),
		settled: make(map[string]uint64),
		conns:   make(map[string]*hostConn),
		kick:    make(chan struct{}, 1),
		closeCh: make(chan struct{}),
		done:    make(chan struct{}),
	}
	if h.logf == nil {
		h.logf = func(string, ...any) {}
	}
	for _, id := range ring.Members() {
		h.known[id] = ring.Addr(id)
	}

	var states map[string]*keyState
	var installed map[string]uint64
	if opts.Dir != "" {
		log, recovered, err := wal.Open(opts.Dir, wal.Options{})
		if err != nil {
			return nil, fmt.Errorf("fabric: open journal: %w", err)
		}
		h.log = log
		states, installed, err = h.replay(recovered.Records)
		if err != nil {
			_ = log.Close()
			return nil, err
		}
	}
	h.completed = h.settled[h.id]

	h.group, err = newLedger(opts.Shards, opts.MaxPending, opts.ID, h.journalRecord)
	if err != nil {
		if h.log != nil {
			_ = h.log.Close()
		}
		return nil, err
	}
	restore := func(key string, b []byte) error {
		_, err := h.group.Call("Restore", key, b, installed[key])
		return err
	}
	for key, st := range states {
		b, err := encodeState(st)
		if err == nil {
			err = restore(key, b)
		}
		if err != nil {
			_ = h.group.Close()
			if h.log != nil {
				_ = h.log.Close()
			}
			return nil, fmt.Errorf("fabric: restore key %q: %w", key, err)
		}
	}
	// Keys whose entry was forgotten keep their install-arbitration memory:
	// a crashed source re-pushing a move that completed here long ago must
	// still be answered "dup", not handed a second life for a stale image.
	for key := range installed {
		if _, resident := states[key]; resident {
			continue
		}
		if err := restore(key, nil); err != nil {
			_ = h.group.Close()
			if h.log != nil {
				_ = h.log.Close()
			}
			return nil, fmt.Errorf("fabric: restore install memory %q: %w", key, err)
		}
	}
	if n := len(states); n > 0 {
		h.logf("fabric: recovered %d keys, ring epoch %d, settled self@%d", n, h.ring.Epoch(), h.completed)
	}

	go h.handoffLoop()
	h.kickHandoff()
	return h, nil
}

// replay folds the recovered journal, in LSN order, back into the node's
// pre-serve state: the newest ring, the settled vector, every key's
// ledger entry (including tombstones, so unfinished handoffs resume) and
// the per-key install-arbitration memory.
func (h *Host) replay(records []*wal.Record) (map[string]*keyState, map[string]uint64, error) {
	states := make(map[string]*keyState)
	installed := make(map[string]uint64)
	for _, rec := range records {
		if rec.Object != journalObject {
			continue
		}
		switch rec.Entry {
		case "advance":
			spec, _ := rec.Params[0].(string)
			ring, err := ParseSpec(spec)
			if err != nil {
				return nil, nil, fmt.Errorf("fabric: journal advance (lsn %d): %w", rec.LSN, err)
			}
			if ring.Epoch() > h.ring.Epoch() {
				h.ring = ring
			}
			for _, id := range ring.Members() {
				h.known[id] = ring.Addr(id)
			}
		case "append":
			key, _ := rec.Params[0].(string)
			epoch, _ := rec.Params[1].(uint64)
			count, _ := rec.Params[2].(uint64)
			st := states[key]
			if st == nil {
				st = newKeyState(epoch)
				states[key] = st
			}
			st.Count = count
			// The journaled epoch is the placement epoch the append ran at,
			// and it ran here: the dedup tail must reproduce the original
			// acknowledgement after recovery.
			st.Clients[rec.Client] = clientRec{Seq: rec.Seq, Count: count, Epoch: epoch, Node: h.id}
		case "extract":
			key, _ := rec.Params[0].(string)
			destSpec, _ := rec.Params[1].(string)
			b, _ := rec.Params[2].([]byte)
			st, err := decodeState(b)
			if err != nil {
				return nil, nil, fmt.Errorf("fabric: journal extract (lsn %d): %w", rec.LSN, err)
			}
			st.Moved = true
			st.MovedSpec = destSpec
			states[key] = st
		case "install":
			key, _ := rec.Params[0].(string)
			epoch, _ := rec.Params[1].(uint64)
			b, _ := rec.Params[2].([]byte)
			st, err := decodeState(b)
			if err != nil {
				return nil, nil, fmt.Errorf("fabric: journal install (lsn %d): %w", rec.LSN, err)
			}
			// Only accepted installs are journaled, so every record feeds the
			// arbitration memory (fence form: epoch+1).
			if epoch+1 > installed[key] {
				installed[key] = epoch + 1
			}
			// Mirror the ledger's lineage precedence (Count, then epoch) so
			// recovery reproduces exactly the accept/reject decisions the
			// live node made.
			if cur := states[key]; cur != nil {
				if st.Count < cur.Count || (st.Count == cur.Count && epoch <= cur.Epoch) {
					continue
				}
			}
			st.Epoch = epoch
			st.Moved = false
			st.MovedSpec = ""
			states[key] = st
		case "forget":
			key, _ := rec.Params[0].(string)
			delete(states, key)
		case "settled":
			member, _ := rec.Params[0].(string)
			epoch, _ := rec.Params[1].(uint64)
			if epoch > h.settled[member] {
				h.settled[member] = epoch
			}
		}
	}
	return states, installed, nil
}

// journalRecord persists one record with group-commit durability. The
// ledger bodies call it before acknowledging any mutation.
func (h *Host) journalRecord(rec *wal.Record) error {
	if h.log == nil {
		return nil
	}
	lsn, err := h.log.Append(rec)
	if err != nil {
		return err
	}
	return h.log.WaitSynced(lsn)
}

// ID reports the node's member id.
func (h *Host) ID() string { return h.id }

// Spec reports the node's current ring spec.
func (h *Host) Spec() string { return h.ringSnapshot().Spec() }

func (h *Host) ringSnapshot() *Ring {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ring
}

func (h *Host) completedLevel() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.completed
}

// adopt parses spec and, when it names a newer epoch than the node's
// current ring, journals and installs it and wakes the handoff worker.
// Ring knowledge spreads through every message that carries a spec —
// Install, Settled, Status, Reshard, forwards — so one Reshard call
// anywhere eventually reaches every node.
func (h *Host) adopt(spec string) error {
	if spec == "" {
		return nil
	}
	ring, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrClosed
	}
	if ring.Epoch() <= h.ring.Epoch() {
		h.mu.Unlock()
		return nil
	}
	// Journal the advance before the new ring steers a single call: a
	// node must never acknowledge routing decisions it would forget.
	if err := h.journalRecord(&wal.Record{
		Kind: wal.KindOutcome, Object: journalObject, Entry: "advance",
		Params: []any{ring.Spec()},
	}); err != nil {
		h.mu.Unlock()
		return fmt.Errorf("fabric: journal advance: %w", err)
	}
	h.ring = ring
	for _, id := range ring.Members() {
		h.known[id] = ring.Addr(id)
	}
	h.mu.Unlock()
	h.logf("fabric: %s adopted ring epoch %d (%d members)", h.id, ring.Epoch(), len(ring.Members()))
	h.kickHandoff()
	return nil
}

// recordSettled folds one member's settled epoch into the vector.
func (h *Host) recordSettled(member string, epoch uint64) {
	h.mu.Lock()
	if h.closed || epoch <= h.settled[member] {
		h.mu.Unlock()
		return
	}
	h.settled[member] = epoch
	h.mu.Unlock()
	if err := h.journalRecord(&wal.Record{
		Kind: wal.KindOutcome, Object: journalObject, Entry: "settled",
		Params: []any{member, epoch},
	}); err != nil {
		h.logf("fabric: journal settled(%s@%d): %v", member, epoch, err)
	}
}

// gateOK reports whether fresh keys may be created at epoch: every other
// member this node has ever seen must have settled through epoch, which
// guarantees no prior owner still holds (or has in transit) dedup history
// for a key this node now owns. The predicate is monotone, so a satisfied
// epoch is cached.
func (h *Host) gateOK(epoch uint64) bool {
	if h.gateEpoch.Load() >= epoch {
		return true
	}
	h.mu.Lock()
	ok := true
	for id := range h.known {
		if id == h.id {
			continue
		}
		if h.settled[id] < epoch {
			ok = false
			break
		}
	}
	h.mu.Unlock()
	if ok {
		for {
			cur := h.gateEpoch.Load()
			if cur >= epoch || h.gateEpoch.CompareAndSwap(cur, epoch) {
				break
			}
		}
	}
	return ok
}

// CallCtx implements rpc.Callable: the node's wire surface.
//
//	Append(key, client, seq, payload[, hops, spec]) -> (status, member, epoch, count, info)
//	Install(key, epoch, state, spec)                -> (status)
//	Settled(member, epoch, spec)                    -> (status)
//	Reshard(spec)                                   -> (status, spec)
//	Ring()                                          -> (spec)
//	Status([spec])                                  -> (member, spec, completed, settledJSON)
//	Audit(key)                                      -> (status, state, spec)
func (h *Host) CallCtx(ctx context.Context, entry string, params ...core.Value) ([]core.Value, error) {
	switch entry {
	case "Append":
		key, kok := param[string](params, 0)
		client, cok := param[string](params, 1)
		seq, sok := param[uint64](params, 2)
		if !kok || !cok || !sok || len(params) < 4 || (len(params) != 4 && len(params) != 6) {
			return nil, fmt.Errorf("fabric: Append(key, client, seq, payload[, hops, spec]): %w", core.ErrBadArity)
		}
		payload, _ := param[[]byte](params, 3)
		var hops uint64
		if len(params) == 6 {
			hops, _ = param[uint64](params, 4)
			spec, _ := param[string](params, 5)
			if err := h.adopt(spec); err != nil && !errors.Is(err, ErrClosed) {
				h.logf("fabric: adopt from forward: %v", err)
			}
		}
		return h.append(ctx, key, client, seq, payload, hops)
	case "Install":
		key, kok := param[string](params, 0)
		epoch, eok := param[uint64](params, 1)
		state, bok := param[[]byte](params, 2)
		spec, pok := param[string](params, 3)
		if !kok || !eok || !bok || !pok || len(params) != 4 {
			return nil, fmt.Errorf("fabric: Install(key, epoch, state, spec): %w", core.ErrBadArity)
		}
		if err := h.adopt(spec); err != nil {
			return nil, err
		}
		ring := h.ringSnapshot()
		if epoch < ring.Epoch() && ring.Owner(key) != h.id {
			// A lagging source is delivering a placement this node's ring
			// has moved past. This node is the move transaction's arbiter:
			// if its install memory says the transaction already completed,
			// answer dup (the lineage lives downstream — re-accepting would
			// resurrect a stale, executable replica next to the live copy).
			// A first delivery is REFUSED with the current spec instead of
			// accepted: never-accepted means the source still holds the
			// key's unique lineage head, so it can safely re-pin the push
			// at the newer ring — and it stays unsettled until the image
			// lands at the serving owner, which is what holds that owner's
			// fresh-create gate closed ahead of the state's arrival.
			// Accepting here (this node is settled) would park the image on
			// a node the ring no longer routes to and open that gate with
			// the history still in flight.
			chk, err := h.group.CallCtx(ctx, "InstallCheck", key, epoch)
			if err != nil {
				return nil, err
			}
			if st, _ := chk[0].(string); st == statusDup {
				return []core.Value{statusDup, ring.Spec()}, nil
			}
			return []core.Value{statusWrongOwner, ring.Spec()}, nil
		}
		res, err := h.group.CallCtx(ctx, "Install", key, epoch, state)
		if err != nil {
			return nil, err
		}
		if st, _ := res[0].(string); st == statusOK && h.ringSnapshot().Owner(key) != h.id {
			// The ring advanced while the install was in flight: the key
			// just landed misplaced. Wake the handoff worker, which moves
			// misplaced residents even when already settled.
			h.kickHandoff()
		}
		return []core.Value{res[0], h.Spec()}, nil
	case "Settled":
		member, mok := param[string](params, 0)
		epoch, eok := param[uint64](params, 1)
		spec, pok := param[string](params, 2)
		if !mok || !eok || !pok || len(params) != 3 {
			return nil, fmt.Errorf("fabric: Settled(member, epoch, spec): %w", core.ErrBadArity)
		}
		if err := h.adopt(spec); err != nil {
			return nil, err
		}
		h.recordSettled(member, epoch)
		return []core.Value{statusOK}, nil
	case "Reshard":
		spec, pok := param[string](params, 0)
		if !pok || len(params) != 1 {
			return nil, fmt.Errorf("fabric: Reshard(spec): %w", core.ErrBadArity)
		}
		if err := h.adopt(spec); err != nil {
			return nil, err
		}
		return []core.Value{statusOK, h.Spec()}, nil
	case "Ring":
		return []core.Value{h.Spec()}, nil
	case "Status":
		if len(params) == 1 {
			if spec, ok := param[string](params, 0); ok {
				if err := h.adopt(spec); err != nil && !errors.Is(err, ErrClosed) {
					h.logf("fabric: adopt from status: %v", err)
				}
			}
		}
		h.mu.Lock()
		vec, err := json.Marshal(h.settled)
		completed := h.completed
		h.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return []core.Value{h.id, h.Spec(), completed, vec}, nil
	case "Audit":
		key, kok := param[string](params, 0)
		if !kok || len(params) != 1 {
			return nil, fmt.Errorf("fabric: Audit(key): %w", core.ErrBadArity)
		}
		res, err := h.group.CallCtx(ctx, "Audit", key)
		if err != nil {
			return nil, err
		}
		return []core.Value{res[0], res[1], h.Spec()}, nil
	default:
		return nil, fmt.Errorf("fabric: %q: %w", entry, core.ErrUnknownEntry)
	}
}

// param extracts a typed parameter, tolerating short slices.
func param[T any](params []core.Value, i int) (T, bool) {
	var zero T
	if i >= len(params) {
		return zero, false
	}
	v, ok := params[i].(T)
	if !ok {
		return zero, false
	}
	return v, ok
}

// append serves one keyed append: route into the ledger, then translate
// the shard's verdict into the wire tuple — serving, forwarding past a
// tombstone, or telling the caller to re-resolve/back off.
func (h *Host) append(ctx context.Context, key, client string, seq uint64, payload []byte, hops uint64) ([]core.Value, error) {
	ring := h.ringSnapshot()
	owned := ring.Owner(key) == h.id
	gate := false
	if owned {
		gate = h.gateOK(ring.Epoch())
		if !gate {
			// Only consulted for fresh keys, but kick anti-entropy now so
			// a blocked create converges without waiting for gossip luck.
			defer h.refreshSettled()
		}
	}
	res, err := h.group.CallCtx(ctx, "Append", key, client, seq, payload, owned, gate, ring.Epoch())
	if err != nil {
		return nil, err
	}
	status, _ := res[0].(string)
	epoch, _ := res[1].(uint64)
	count, _ := res[2].(uint64)
	info, _ := res[3].(string)
	node, _ := res[4].(string)
	switch status {
	case statusOK:
		// The ledger names the member that actually executed the append —
		// for a deduplicated retry that is the ORIGINAL node, which may not
		// be this one.
		if node == "" {
			node = h.id
		}
		return []core.Value{status, node, epoch, count, info}, nil
	case statusGap:
		return []core.Value{status, h.id, epoch, count, info}, nil
	case statusWrongOwner:
		return []core.Value{statusWrongOwner, h.id, ring.Epoch(), uint64(0), ring.Spec()}, nil
	case statusRetry:
		return []core.Value{statusRetry, h.id, ring.Epoch(), uint64(0), info}, nil
	case statusMoved:
		return h.forward(ctx, key, client, seq, payload, hops, info)
	default:
		return nil, fmt.Errorf("fabric: unexpected ledger status %q", status)
	}
}

// forward relays an append past a tombstone to the key's next home,
// carrying the ORIGINAL client identity so the destination's dedup ledger
// absorbs retries and duplicate forwards alike.
func (h *Host) forward(ctx context.Context, key, client string, seq uint64, payload []byte, hops uint64, movedSpec string) ([]core.Value, error) {
	if hops >= maxForwardHops {
		return []core.Value{statusRetry, h.id, h.ringSnapshot().Epoch(), uint64(0), "hops"}, nil
	}
	// Resolve against the newest ring we can see: the tombstone's spec,
	// or the node's current ring if it has moved further ahead.
	dest, err := ParseSpec(movedSpec)
	if err != nil {
		return nil, fmt.Errorf("fabric: tombstone spec: %w", err)
	}
	if cur := h.ringSnapshot(); cur.Epoch() > dest.Epoch() {
		dest = cur
	}
	target := dest.Owner(key)
	if target == h.id {
		// The key's state moved out but a newer ring routes it back here;
		// the in-flight install will land shortly.
		return []core.Value{statusRetry, h.id, dest.Epoch(), uint64(0), "returning"}, nil
	}
	rem, err := h.conn(target, dest.Addr(target))
	if err != nil {
		return []core.Value{statusRetry, h.id, dest.Epoch(), uint64(0), "forward-dial"}, nil
	}
	res, err := rem.CallCtx(ctx, "fabric", "Append", key, client, seq, payload, hops+1, dest.Spec())
	if err != nil {
		if errors.Is(err, core.ErrOverload) {
			return nil, err
		}
		h.dropConn(target)
		return []core.Value{statusRetry, h.id, dest.Epoch(), uint64(0), "forward-link"}, nil
	}
	out := make([]core.Value, len(res))
	copy(out, res)
	return out, nil
}

// refreshSettled pulls Status from every member whose settled epoch lags
// the current ring, folding their levels (and any newer ring) back in.
// It is the anti-entropy path that revives gossip after crashes: a
// settled broadcast a node missed while dead is re-learned here the
// first time a blocked fresh-create asks for it.
func (h *Host) refreshSettled() {
	if !h.refreshing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer h.refreshing.Store(false)
		ring := h.ringSnapshot()
		epoch := ring.Epoch()
		h.mu.Lock()
		var stale []string
		for id := range h.known {
			if id != h.id && h.settled[id] < epoch {
				stale = append(stale, id)
			}
		}
		h.mu.Unlock()
		for _, id := range stale {
			if h.isClosed() {
				return
			}
			h.pollStatus(id)
		}
	}()
}

// pollStatus asks one member for its settled level, exchanging ring specs
// both ways.
func (h *Host) pollStatus(member string) {
	addr := h.addrOf(member)
	if addr == "" {
		return
	}
	rem, err := h.conn(member, addr)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	res, err := rem.CallCtx(ctx, "fabric", "Status", h.Spec())
	cancel()
	if err != nil {
		h.dropConn(member)
		return
	}
	if len(res) != 4 {
		return
	}
	id, _ := res[0].(string)
	spec, _ := res[1].(string)
	completed, _ := res[2].(uint64)
	if err := h.adopt(spec); err != nil && !errors.Is(err, ErrClosed) {
		h.logf("fabric: adopt from status poll: %v", err)
	}
	if id != "" {
		h.recordSettled(id, completed)
	}
	if vec, ok := res[3].([]byte); ok && len(vec) > 0 {
		var m map[string]uint64
		if json.Unmarshal(vec, &m) == nil {
			for mid, e := range m {
				h.recordSettled(mid, e)
			}
		}
	}
}

func (h *Host) addrOf(member string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if a := h.ring.Addr(member); a != "" {
		return a
	}
	return h.known[member]
}

// conn returns a cached connection to member at addr, dialing outside the
// host lock.
func (h *Host) conn(member, addr string) (*rpc.Remote, error) {
	if addr == "" {
		return nil, fmt.Errorf("fabric: no address for member %q", member)
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrClosed
	}
	if c := h.conns[member]; c != nil && c.addr == addr {
		rem := c.rem
		h.mu.Unlock()
		return rem, nil
	}
	h.mu.Unlock()
	// Fresh identity per dialed connection: a reconnect sharing the old
	// one would have the peer's replay cache answer this connection's
	// early calls with the previous connection's cached responses — an
	// aliased Install "ok" here would let pushInstall forget state that
	// never landed.
	linkID, err := linkIdentity("fabric-" + h.id)
	if err != nil {
		return nil, err
	}
	rem, err := rpc.DialWith(addr, rpc.DialOptions{
		Timeout:  2 * time.Second,
		ClientID: linkID,
	})
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		rem.Close()
		return nil, ErrClosed
	}
	if c := h.conns[member]; c != nil && c.addr == addr {
		// Lost a dial race. Keep the cached link — it may already carry
		// in-flight calls (closing it would interrupt them) — and discard
		// ours.
		cached := c.rem
		h.mu.Unlock()
		rem.Close()
		return cached, nil
	}
	if old := h.conns[member]; old != nil {
		// The member moved: the old-address link is stale.
		old.rem.Close()
	}
	h.conns[member] = &hostConn{addr: addr, rem: rem}
	h.mu.Unlock()
	return rem, nil
}

func (h *Host) dropConn(member string) {
	h.mu.Lock()
	c := h.conns[member]
	delete(h.conns, member)
	h.mu.Unlock()
	if c != nil {
		c.rem.Close()
	}
}

func (h *Host) kickHandoff() {
	select {
	case h.kick <- struct{}{}:
	default:
	}
}

func (h *Host) isClosed() bool {
	select {
	case <-h.closeCh:
		return true
	default:
		return false
	}
}

// handoffLoop is the node's single handoff worker: whenever the ring
// advances past the node's settled level it drains and pushes every
// resident key the new ring places elsewhere, then declares itself
// settled. One worker means extractions are serial per node — deliberate:
// handoff throughput is bounded by the destination's install rate anyway,
// and a single in-order pass makes crash recovery a plain re-run.
func (h *Host) handoffLoop() {
	defer close(h.done)
	h.broadcastSettled()
	for {
		select {
		case <-h.closeCh:
			return
		case <-h.kick:
		}
		for h.runHandoff() {
			if h.isClosed() {
				return
			}
		}
	}
}

// runHandoff performs one pass against a ring snapshot; it reports
// whether the ring advanced meanwhile and another pass is needed. The
// pass also runs when the node is already settled but holds misplaced
// residents — a late install (accepted mid-advance) or a recovered
// journal can land state the current ring places elsewhere, and it must
// move out even though no epoch boundary is being crossed.
func (h *Host) runHandoff() bool {
	ring := h.ringSnapshot()
	moving := h.residentKeysNotOwnedBy(ring)
	if h.completedLevel() >= ring.Epoch() && len(moving) == 0 {
		return false
	}
	h.logf("fabric: %s handoff to epoch %d: %d keys moving", h.id, ring.Epoch(), len(moving))
	for _, key := range moving {
		if h.isClosed() {
			return false
		}
		res, err := h.group.Call("Extract", key, ring.Spec())
		if err != nil {
			h.logf("fabric: extract %q: %v", key, err)
			return false
		}
		status, _ := res[0].(string)
		if status == statusNone || status == statusRetry {
			// None: already gone. Retry: the key was installed under a
			// ring newer than this pass's snapshot — it is not misplaced
			// and must not be pushed back into its own wake; a later
			// pass re-evaluates it under a fresher ring.
			continue
		}
		state, _ := res[1].([]byte)
		if !h.pushInstall(key, state) {
			return false
		}
		if _, err := h.group.Call("Forget", key); err != nil {
			h.logf("fabric: forget %q: %v", key, err)
			return false
		}
	}
	h.setCompleted(ring.Epoch())
	h.broadcastSettled()
	return h.ringSnapshot().Epoch() > ring.Epoch()
}

// residentKeysNotOwnedBy enumerates this node's resident keys (tombstones
// included, so interrupted pushes resume) that ring places elsewhere.
func (h *Host) residentKeysNotOwnedBy(ring *Ring) []string {
	results, err := h.group.Broadcast(context.Background(), "Keys")
	if err != nil {
		h.logf("fabric: enumerate keys: %v", err)
	}
	var out []string
	for _, res := range results {
		if len(res) != 1 {
			continue
		}
		b, _ := res[0].([]byte)
		var m map[string]bool
		if json.Unmarshal(b, &m) != nil {
			continue
		}
		for key := range m {
			if ring.Owner(key) != h.id {
				out = append(out, key)
			}
		}
	}
	return out
}

// pushInstall delivers one extracted key to its new home, retrying with
// backoff until the destination acknowledges (it may be dead or
// partitioned — the e2e chaos plan restarts and heals, and the push must
// survive until then). The delivery is PINNED to the ring the key was
// extracted under (the tombstone's MovedSpec, travelling inside state):
// the pinned destination is the move transaction's arbiter — only it can
// tell a first delivery from a crashed source's re-push of a transaction
// that already completed (dup from its journal-backed install memory).
// The ONE re-targeting the push ever does is on the arbiter's explicit
// wrong-owner refusal: never-accepted means this image is still the
// key's unique lineage head — no downstream copy can exist — so re-
// pinning it at the arbiter's newer ring is fork-free. Pushing anywhere
// without that verdict could land a stale image next to the live copy
// and fork the lineage. Returns false only when the host is closing.
func (h *Host) pushInstall(key string, state []byte) bool {
	dest := h.ringSnapshot()
	if st, err := decodeState(state); err == nil && st.MovedSpec != "" {
		if ring, err := ParseSpec(st.MovedSpec); err == nil {
			dest = ring
		}
	}
	backoff := 10 * time.Millisecond
	for {
		if h.isClosed() {
			return false
		}
		target := dest.Owner(key)
		if target == h.id {
			// A refusal chain led the key back home: install locally (the
			// lineage guard in the ledger keeps this idempotent) and let
			// the handoff rescan move it again if the current ring says so.
			if _, err := h.group.Call("Install", key, dest.Epoch(), state); err == nil {
				h.kickHandoff()
				return true
			}
			h.sleep(backoff)
			continue
		}
		rem, err := h.conn(target, dest.Addr(target))
		if err == nil {
			ctx, cancel := context.WithTimeout(context.Background(), 4*time.Second)
			res, cerr := rem.CallCtx(ctx, "fabric", "Install", key, dest.Epoch(), state, dest.Spec())
			cancel()
			if cerr == nil && len(res) >= 1 {
				var spec string
				if len(res) >= 2 {
					spec, _ = res[1].(string)
					if err := h.adopt(spec); err != nil && !errors.Is(err, ErrClosed) {
						h.logf("fabric: adopt from install reply: %v", err)
					}
				}
				switch status, _ := res[0].(string); status {
				case statusWrongOwner:
					// The arbiter never accepted this transaction and its
					// ring has moved past the pinned placement: re-pin at
					// the ring it returned and deliver the head there.
					if ring, err := ParseSpec(spec); err == nil && ring.Epoch() > dest.Epoch() {
						dest = ring
						continue
					}
				case statusRetry:
					// Transient at the destination; keep pushing.
				default:
					return true // ok, dup or stale: the move is complete
				}
			} else if cerr != nil {
				h.dropConn(target)
			}
		}
		h.sleep(backoff)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// setCompleted records the node's own settled level.
func (h *Host) setCompleted(epoch uint64) {
	h.mu.Lock()
	if epoch > h.completed {
		h.completed = epoch
	}
	h.mu.Unlock()
	h.recordSettled(h.id, epoch)
	h.logf("fabric: %s settled through epoch %d", h.id, epoch)
}

// broadcastSettled announces the node's settled level to every known
// member, best effort — a peer that misses it (dead, partitioned) pulls
// it later via refreshSettled.
func (h *Host) broadcastSettled() {
	completed := h.completedLevel()
	if completed == 0 {
		return
	}
	spec := h.Spec()
	h.mu.Lock()
	members := make([]string, 0, len(h.known))
	for id := range h.known {
		if id != h.id {
			members = append(members, id)
		}
	}
	h.mu.Unlock()
	for _, id := range members {
		if h.isClosed() {
			return
		}
		rem, err := h.conn(id, h.addrOf(id))
		if err != nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, err = rem.CallCtx(ctx, "fabric", "Settled", h.id, completed, spec)
		cancel()
		if err != nil {
			h.dropConn(id)
		}
	}
}

func (h *Host) sleep(d time.Duration) {
	select {
	case <-h.closeCh:
	case <-time.After(d):
	}
}

// Close stops the handoff worker, closes peer connections, the ledger and
// the journal, in that order.
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	conns := h.conns
	h.conns = make(map[string]*hostConn)
	h.mu.Unlock()
	close(h.closeCh)
	<-h.done
	for _, c := range conns {
		c.rem.Close()
	}
	err := h.group.Close()
	if h.log != nil {
		if cerr := h.log.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
