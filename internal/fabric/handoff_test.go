package fabric

// Handoff edge cases pinned at the unit level: the lineage-precedence
// install guard, the install-arbitration memory, the misplaced-resident
// rescan, and the dup acknowledgement describing the original execution.
// Each of these was (or would be) a convergence failure the e2e chaos
// oracle can catch only probabilistically; here the exact interleaving
// is constructed.

import (
	"testing"

	"repro/internal/testutil"
)

// soloNode boots a single-member ring at the given epoch.
func soloNode(t *testing.T, epoch uint64) *testFabricNode {
	t.Helper()
	addr := reserveAddrs(t, 1)[0]
	r, err := NewRing(epoch, 42, 32, map[string]string{"solo": addr})
	if err != nil {
		t.Fatal(err)
	}
	n := startFabricNode(t, "solo", addr, r.Spec(), "", 0)
	t.Cleanup(n.stop)
	return n
}

// image builds an encoded key state with one client's dedup tail.
func image(t *testing.T, count uint64, client string, seq, epoch uint64, node string) []byte {
	t.Helper()
	st := newKeyState(0)
	st.Count = count
	if client != "" {
		st.Clients[client] = clientRec{Seq: seq, Count: count, Epoch: epoch, Node: node}
	}
	b, err := encodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestInstallLineagePrecedence: installs are ordered by lineage Count
// first, placement epoch second. A crashed handoff's re-pushed stale
// image (lower Count, even at a higher epoch) must never displace a
// live copy; a higher-Count image of the same lineage always wins.
func TestInstallLineagePrecedence(t *testing.T) {
	n := soloNode(t, 1)
	ctx := testCtx(t)
	spec := n.host.Spec()

	res, err := n.host.CallCtx(ctx, "Install", "k", uint64(1), image(t, 5, "c", 4, 0, "old"), spec)
	if err != nil || res[0] != statusOK {
		t.Fatalf("first install: %v %v", res, err)
	}
	// Stale image at a HIGHER epoch: count rules, the live copy stays.
	res, err = n.host.CallCtx(ctx, "Install", "k", uint64(2), image(t, 3, "c", 2, 0, "old"), spec)
	if err != nil || res[0] != statusDup {
		t.Fatalf("stale higher-epoch install should be dup: %v %v", res, err)
	}
	// Duplicate of the resident image: idempotent.
	res, err = n.host.CallCtx(ctx, "Install", "k", uint64(1), image(t, 5, "c", 4, 0, "old"), spec)
	if err != nil || res[0] != statusDup {
		t.Fatalf("duplicate install should be dup: %v %v", res, err)
	}
	// Newer image of the same lineage returning under a newer ring (a
	// key can only come back at a higher epoch): replaces.
	res, err = n.host.CallCtx(ctx, "Install", "k", uint64(2), image(t, 7, "c", 6, 0, "old"), spec)
	if err != nil || res[0] != statusOK {
		t.Fatalf("newer lineage image should install: %v %v", res, err)
	}
	audit, err := n.host.CallCtx(ctx, "Audit", "k")
	if err != nil || audit[0] != statusOK {
		t.Fatalf("audit: %v %v", audit, err)
	}
	st, err := decodeState(audit[1].([]byte))
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 7 {
		t.Fatalf("resident count = %d, want 7 (newer image must have won)", st.Count)
	}
}

// TestInstallArbitrationFenceAndRefusal: the pinned destination of a
// move transaction is its arbiter — the only node that can tell a first
// delivery from a crashed source's re-push of a transaction that already
// completed. A re-push of an accepted install is answered "dup" from the
// arbiter's journal-backed install memory, even after the key has moved
// on (the memory survives Forget) and even across a crash (it is rebuilt
// from the journal). A first delivery whose placement the arbiter's ring
// has moved past is REFUSED with the current spec, never accepted: the
// never-accepted source still holds the key's unique lineage head and
// re-pins the push, while parking the image on the settled arbiter would
// let the new owner's fresh-create gate open ahead of the state. The e2e
// chaos oracle caught both failure modes, as acknowledged sequences
// vanishing from the serving owner and as parallel fresh histories.
func TestInstallArbitrationFenceAndRefusal(t *testing.T) {
	addrs := reserveAddrs(t, 2)
	members := map[string]string{"a": addrs[0], "b": addrs[1]}
	r1, err := NewRing(1, 42, 32, members)
	if err != nil {
		t.Fatal(err)
	}
	// An epoch-2 ring under which some key migrates b->a, plus a second
	// key also placed on a that b will never see installed.
	var r2 *Ring
	var key, key2 string
	for seed := uint64(1); seed < 500 && key2 == ""; seed++ {
		cand, err := NewRing(2, seed, 32, members)
		if err != nil {
			t.Fatal(err)
		}
		key, key2 = "", ""
		for i := 0; i < 500; i++ {
			k := keyName("arb", i)
			if key == "" && r1.Owner(k) == "b" && cand.Owner(k) == "a" {
				key = k
			} else if key != "" && key2 == "" && cand.Owner(k) == "a" {
				key2, r2 = k, cand
				break
			}
		}
	}
	if key2 == "" {
		t.Fatal("no migrating key pair found")
	}
	dir := t.TempDir()
	a := startFabricNode(t, "a", addrs[0], r1.Spec(), "", 0)
	t.Cleanup(a.stop)
	b := startFabricNode(t, "b", addrs[1], r1.Spec(), dir, 0)
	t.Cleanup(func() { b.stop() })
	ctx := testCtx(t)

	// The move's first delivery lands at its pinned epoch-1 destination.
	res, err := b.host.CallCtx(ctx, "Install", key, uint64(1), image(t, 4, "c", 3, 1, "x"), r1.Spec())
	if err != nil || res[0] != statusOK {
		t.Fatalf("first delivery: %v %v", res, err)
	}
	// Reshard: b's handoff moves the key to a, then forgets it.
	if res, err = b.host.CallCtx(ctx, "Reshard", r2.Spec()); err != nil || res[0] != statusOK {
		t.Fatalf("reshard: %v %v", res, err)
	}
	testutil.WaitUntil(t, "key handed off to a", func() bool {
		audit, err := a.host.CallCtx(ctx, "Audit", key)
		if err != nil || audit[0] != statusOK {
			return false
		}
		st, err := decodeState(audit[1].([]byte))
		return err == nil && st.Count == 4 && !st.Moved
	})
	testutil.WaitUntil(t, "b forgot the tombstone", func() bool {
		audit, err := b.host.CallCtx(ctx, "Audit", key)
		return err == nil && audit[0] == statusNone
	})
	// The crashed source re-pushes the completed move at its pinned
	// destination: dup from the install memory, despite the Forget.
	res, err = b.host.CallCtx(ctx, "Install", key, uint64(1), image(t, 4, "c", 3, 1, "x"), r1.Spec())
	if err != nil || res[0] != statusDup {
		t.Fatalf("re-push of a completed move should be dup: %v %v", res, err)
	}
	// A first delivery of a placement b's ring has moved past: refused
	// with the current spec, and nothing rests on b.
	res, err = b.host.CallCtx(ctx, "Install", key2, uint64(1), image(t, 2, "d", 1, 1, "x"), r1.Spec())
	if err != nil || res[0] != statusWrongOwner {
		t.Fatalf("stale first delivery should be refused: %v %v", res, err)
	}
	if ring, err := ParseSpec(res[1].(string)); err != nil || ring.Epoch() != 2 {
		t.Fatalf("refusal should carry the current ring: %v %v", res[1], err)
	}
	if audit, err := b.host.CallCtx(ctx, "Audit", key2); err != nil || audit[0] != statusNone {
		t.Fatalf("refusal parked state on the arbiter: %v %v", audit, err)
	}
	// The install memory survives a crash: restart b from its journal and
	// re-push the completed move again — still dup, lineage untouched.
	b.stop()
	b = startFabricNode(t, "b", addrs[1], r1.Spec(), dir, 0)
	res, err = b.host.CallCtx(ctx, "Install", key, uint64(1), image(t, 4, "c", 3, 1, "x"), r1.Spec())
	if err != nil || res[0] != statusDup {
		t.Fatalf("re-push after restart should be dup: %v %v", res, err)
	}
	audit, err := a.host.CallCtx(ctx, "Audit", key)
	if err != nil || audit[0] != statusOK {
		t.Fatalf("audit at owner: %v %v", audit, err)
	}
	if st, err := decodeState(audit[1].([]byte)); err != nil || st.Count != 4 {
		t.Fatalf("lineage corrupted: %+v %v", st, err)
	}
}

// TestExtractRefusesStalePass: a handoff pass that snapshotted the ring
// before an install landed must not extract the freshly installed key —
// the key is home under the newer ring that carried it, and pushing it
// pinned at the pass's older ring would send it back into its own wake,
// where the previous owner's install memory answers "dup" and both
// sides then forget the only live copy. The e2e chaos oracle caught
// exactly that as a key evaporating from every node's journal (a stream
// stalled "arriving" forever). The ledger refuses the extract when the
// resident placement epoch exceeds the pinned spec's.
func TestExtractRefusesStalePass(t *testing.T) {
	n := soloNode(t, 1)
	ctx := testCtx(t)
	soloAddr := n.host.ringSnapshot().Addr("solo")
	oldRing, err := NewRing(1, 42, 32, map[string]string{"solo": soloAddr})
	if err != nil {
		t.Fatal(err)
	}
	newRing, err := NewRing(2, 42, 32, map[string]string{"solo": soloAddr})
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.host.CallCtx(ctx, "Install", "k", uint64(2), image(t, 3, "c", 2, 2, "x"), newRing.Spec())
	if err != nil || res[0] != statusOK {
		t.Fatalf("install: %v %v", res, err)
	}
	// A pass pinned at epoch 1 (stale snapshot) must be refused.
	res, err = n.host.group.Call("Extract", "k", oldRing.Spec())
	if err != nil || res[0] != statusRetry {
		t.Fatalf("stale-pass extract should be refused with retry: %v %v", res, err)
	}
	audit, err := n.host.CallCtx(ctx, "Audit", "k")
	if err != nil || audit[0] != statusOK {
		t.Fatalf("refused extract must leave the key resident: %v %v", audit, err)
	}
	if st, err := decodeState(audit[1].([]byte)); err != nil || st.Moved {
		t.Fatalf("refused extract planted a tombstone: %+v %v", st, err)
	}
	// A pass at least as new as the resident epoch extracts normally.
	res, err = n.host.group.Call("Extract", "k", newRing.Spec())
	if err != nil || res[0] != statusOK {
		t.Fatalf("current-ring extract: %v %v", res, err)
	}
}

// TestHandoffMovesMisplacedResident: a key that lands on a non-owner at
// the current epoch (the install raced a ring advance) must be moved by
// the handoff worker even though the node is already settled — the
// rescan, not an epoch boundary, drives it.
func TestHandoffMovesMisplacedResident(t *testing.T) {
	addrs := reserveAddrs(t, 2)
	members := map[string]string{"a": addrs[0], "b": addrs[1]}
	r, err := NewRing(1, 42, 32, members)
	if err != nil {
		t.Fatal(err)
	}
	a := startFabricNode(t, "a", addrs[0], r.Spec(), "", 0)
	t.Cleanup(a.stop)
	b := startFabricNode(t, "b", addrs[1], r.Spec(), "", 0)
	t.Cleanup(b.stop)
	ctx := testCtx(t)

	key := ""
	for i := 0; i < 1000; i++ {
		k := keyName("stray", i)
		if r.Owner(k) == "b" {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key owned by b")
	}
	// Same-epoch install to the wrong member: accepted, then detected as
	// misplaced and handed off by the rescan.
	res, err := a.host.CallCtx(ctx, "Install", key, uint64(1), image(t, 2, "c", 1, 1, "a"), r.Spec())
	if err != nil || res[0] != statusOK {
		t.Fatalf("install: %v %v", res, err)
	}
	testutil.WaitUntil(t, "misplaced key pushed to its owner", func() bool {
		audit, err := b.host.CallCtx(ctx, "Audit", key)
		if err != nil || audit[0] != statusOK {
			return false
		}
		st, err := decodeState(audit[1].([]byte))
		return err == nil && st.Count == 2 && !st.Moved
	})
	testutil.WaitUntil(t, "source forgot the tombstone", func() bool {
		audit, err := a.host.CallCtx(ctx, "Audit", key)
		return err == nil && audit[0] == statusNone
	})
}

// TestDupAckDescribesOriginalExecution: a retried append answered from
// the dedup tail must report the epoch and node of the ORIGINAL
// execution, not the key's current placement — otherwise client-side
// ledgers show later counts at older epochs and the conformance oracle
// flags epoch regressions.
func TestDupAckDescribesOriginalExecution(t *testing.T) {
	n := soloNode(t, 3)
	ctx := testCtx(t)
	spec := n.host.Spec()

	// A migrated-in state: client c executed seq 4 (count 5) at epoch 1
	// on node "origin" before the key moved here at epoch 3.
	res, err := n.host.CallCtx(ctx, "Install", "k", uint64(3), image(t, 5, "c", 4, 1, "origin"), spec)
	if err != nil || res[0] != statusOK {
		t.Fatalf("install: %v %v", res, err)
	}
	res, err = n.host.CallCtx(ctx, "Append", "k", "c", uint64(4), []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != statusOK || res[4] != "dup" {
		t.Fatalf("retry = %v, want deduplicated ok", res)
	}
	if node, _ := res[1].(string); node != "origin" {
		t.Fatalf("dup ack node = %q, want the original executor %q", node, "origin")
	}
	if epoch, _ := res[2].(uint64); epoch != 1 {
		t.Fatalf("dup ack epoch = %d, want the original execution's epoch 1", epoch)
	}
	if count, _ := res[3].(uint64); count != 5 {
		t.Fatalf("dup ack count = %d, want 5", count)
	}
}

func keyName(prefix string, i int) string {
	return prefix + "-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}
