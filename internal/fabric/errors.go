package fabric

import (
	"errors"
	"fmt"
	"time"
)

// OverloadError reports that the owning node shed a call under admission
// control (core.ErrOverload propagated over the wire). The call
// definitively did not execute; the caller may retry with the SAME
// sequence number after RetryAfter — the per-key dedup ledger absorbs the
// retry even if a concurrent handoff moved the key meanwhile.
type OverloadError struct {
	Node       string        // member that shed the call
	RetryAfter time.Duration // suggested client backoff
	Err        error         // the wire error (errors.Is -> core.ErrOverload)
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("fabric: node %s overloaded (retry after %v): %v", e.Node, e.RetryAfter, e.Err)
}

func (e *OverloadError) Unwrap() error { return e.Err }

// GapError reports a sequence gap: the owner expected the client's next
// append at Expect but received Seq. Synchronous clients never produce
// gaps, so one means lost state — it is an oracle-grade failure, not a
// retriable condition.
type GapError struct {
	Key    string
	Client string
	Seq    uint64
	Expect uint64
}

func (e *GapError) Error() string {
	return fmt.Sprintf("fabric: sequence gap on key %q: client %q sent seq %d, owner expected %d",
		e.Key, e.Client, e.Seq, e.Expect)
}

// ErrRetriesExhausted reports that the router ran out of retry budget
// while the fabric kept answering retriable statuses (node down, ring
// settling, handoff in flight). The wrapped detail names the last status.
var ErrRetriesExhausted = errors.New("fabric: retries exhausted")

// ErrClosed reports use of a closed Router or Host.
var ErrClosed = errors.New("fabric: closed")
