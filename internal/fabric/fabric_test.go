package fabric

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/testutil"
)

// testFabricNode is one in-process fabric node: a Host published on a
// real rpc.Node over loopback TCP, with an optional journal directory so
// tests can stop and restart it "crashed" (every acknowledged mutation is
// already synced, so close-and-reopen exercises the same recovery path a
// SIGKILL does; the e2e harness adds the real SIGKILL).
type testFabricNode struct {
	id   string
	addr string
	dir  string
	host *Host
	node *rpc.Node
}

func startFabricNode(t *testing.T, id, addr, spec, dir string, maxPending int) *testFabricNode {
	t.Helper()
	host, err := NewHost(HostOptions{
		ID: id, Spec: spec, Shards: 2, MaxPending: maxPending, Dir: dir,
		Logf: func(format string, args ...any) { t.Logf(format, args...) },
	})
	if err != nil {
		t.Fatalf("start %s: %v", id, err)
	}
	node := rpc.NewNode(id)
	if err := node.PublishCallable("fabric", host); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	go func() { _ = node.Serve(lis) }()
	return &testFabricNode{id: id, addr: lis.Addr().String(), dir: dir, host: host, node: node}
}

func (n *testFabricNode) stop() {
	n.node.Close()
	_ = n.host.Close()
}

// specFor builds a ring spec for members laid out on pre-bound listeners.
func specFor(epoch uint64, members map[string]string) string {
	r, err := NewRing(epoch, 42, 32, members)
	if err != nil {
		panic(err)
	}
	return r.Spec()
}

// reserveAddrs grabs n loopback ports so ring specs can name addresses
// before the nodes exist.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = lis.Addr().String()
		_ = lis.Close()
	}
	return addrs
}

func testCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithDeadline(context.Background(), testutil.WaitBudget(t))
	t.Cleanup(cancel)
	return ctx
}

// execsInServerOrder arranges acknowledged execs into each key's
// execution order: Count is assigned by the owning shard under its
// manager's serialization, so sorting a key's execs by Count reconstructs
// the order the servers actually ran them in, across clients and homes.
func execsInServerOrder(execs []Exec) []conformance.KeyedExec {
	byKey := make(map[string][]Exec)
	for _, e := range execs {
		byKey[e.Key] = append(byKey[e.Key], e)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []conformance.KeyedExec
	for _, k := range keys {
		es := byKey[k]
		sort.Slice(es, func(i, j int) bool { return es[i].Count < es[j].Count })
		for _, e := range es {
			out = append(out, conformance.KeyedExec{
				Key: e.Key, Client: e.Client, Seq: int(e.Seq), Shard: e.Node, Epoch: e.Epoch,
			})
		}
	}
	return out
}

// TestFabricAppendAndAudit: a 3-node ring serves keyed appends from
// several clients; every ack names the ring's predicted owner, the
// conformance oracle passes, and server-side audits agree exactly with
// the client-side ledgers.
func TestFabricAppendAndAudit(t *testing.T) {
	addrs := reserveAddrs(t, 3)
	members := map[string]string{"n00": addrs[0], "n01": addrs[1], "n02": addrs[2]}
	spec := specFor(0, members)
	var nodes []*testFabricNode
	for id, addr := range members {
		n := startFabricNode(t, id, addr, spec, "", 0)
		nodes = append(nodes, n)
		defer n.stop()
	}
	ctx := testCtx(t)

	const clients, keys, per = 4, 12, 10
	var mu sync.Mutex
	var all []Exec
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r, err := NewRouter(spec, RouterOptions{ClientID: fmt.Sprintf("c%d", c)})
			if err != nil {
				errCh <- err
				return
			}
			defer r.Close()
			for s := uint64(0); s < per; s++ {
				for k := 0; k < keys; k++ {
					key := fmt.Sprintf("key-%d", k)
					exec, err := r.Append(ctx, key, s, nil)
					if err != nil {
						errCh <- fmt.Errorf("client %d key %s seq %d: %w", c, key, s, err)
						return
					}
					mu.Lock()
					all = append(all, exec)
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	ring, _ := ParseSpec(spec)
	for _, e := range all {
		if want := ring.Owner(e.Key); e.Node != want {
			t.Fatalf("key %s executed on %s, ring says %s", e.Key, e.Node, want)
		}
		if e.Epoch != 0 {
			t.Fatalf("key %s executed at epoch %d before any reshard", e.Key, e.Epoch)
		}
	}
	if divs := conformance.CheckKeyOrder(execsInServerOrder(all)); len(divs) != 0 {
		t.Fatalf("oracle divergences: %v", divs)
	}

	r, err := NewRouter(spec, RouterOptions{ClientID: "auditor"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		a, err := r.Audit(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Found || a.Count != clients*per {
			t.Fatalf("audit %s: found=%v count=%d, want %d", key, a.Found, a.Count, clients*per)
		}
		for c := 0; c < clients; c++ {
			if got := a.Clients[fmt.Sprintf("c%d", c)]; got != per-1 {
				t.Fatalf("audit %s client c%d: last seq %d, want %d", key, c, got, per-1)
			}
		}
	}
}

// TestFabricLiveReshard is the cross-process extension of the shard
// package's TestKeyAffinityOrdering: clients hammer keyed appends while
// the ring doubles 3 -> 6 under them. Every append must ack exactly once,
// per-key order must hold across the handoff (epoch-aware oracle), and
// the moved keys' dedup history must survive the move.
func TestFabricLiveReshard(t *testing.T) {
	addrs := reserveAddrs(t, 6)
	members := map[string]string{"n00": addrs[0], "n01": addrs[1], "n02": addrs[2]}
	grown := map[string]string{
		"n00": addrs[0], "n01": addrs[1], "n02": addrs[2],
		"n03": addrs[3], "n04": addrs[4], "n05": addrs[5],
	}
	spec := specFor(0, members)
	grownSpec := specFor(1, grown)

	var nodes []*testFabricNode
	for id, addr := range members {
		n := startFabricNode(t, id, addr, spec, "", 0)
		nodes = append(nodes, n)
		defer n.stop()
	}
	ctx := testCtx(t)

	const clients, keys, per = 4, 16, 30
	var mu sync.Mutex
	var all []Exec
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	reshardAt := make(chan struct{})
	var reshardOnce sync.Once
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r, err := NewRouter(spec, RouterOptions{ClientID: fmt.Sprintf("c%d", c)})
			if err != nil {
				errCh <- err
				return
			}
			defer r.Close()
			for s := uint64(0); s < per; s++ {
				if s == per/3 {
					reshardOnce.Do(func() { close(reshardAt) })
				}
				for k := 0; k < keys; k++ {
					key := fmt.Sprintf("key-%d", k)
					exec, err := r.Append(ctx, key, s, nil)
					if err != nil {
						errCh <- fmt.Errorf("client %d key %s seq %d: %w", c, key, s, err)
						return
					}
					mu.Lock()
					all = append(all, exec)
					mu.Unlock()
				}
			}
		}(c)
	}

	// Mid-traffic: boot the second half of the ring and double it.
	<-reshardAt
	for _, id := range []string{"n03", "n04", "n05"} {
		n := startFabricNode(t, id, grown[id], grownSpec, "", 0)
		nodes = append(nodes, n)
		defer n.stop()
	}
	admin, err := NewRouter(spec, RouterOptions{ClientID: "admin"})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if _, err := admin.Reshard(ctx, grownSpec); err != nil {
		t.Fatal(err)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if len(all) != clients*keys*per {
		t.Fatalf("acked %d appends, want %d", len(all), clients*keys*per)
	}
	if divs := conformance.CheckKeyOrder(execsInServerOrder(all)); len(divs) != 0 {
		t.Fatalf("oracle divergences across live reshard: %v", divs)
	}

	// The reshard must actually have moved traffic: some key must have
	// executed at both epochs, on different nodes.
	movedKeys := 0
	byKey := make(map[string]map[string]bool)
	for _, e := range all {
		if byKey[e.Key] == nil {
			byKey[e.Key] = make(map[string]bool)
		}
		byKey[e.Key][fmt.Sprintf("%s@%d", e.Node, e.Epoch)] = true
	}
	for _, homes := range byKey {
		if len(homes) > 1 {
			movedKeys++
		}
	}
	if movedKeys == 0 {
		t.Fatal("no key observed a live handoff; reshard did not overlap traffic")
	}
	t.Logf("live reshard: %d/%d keys moved mid-traffic", movedKeys, keys)

	// Convergence: every member settles the new epoch, and audits agree
	// with the client ledgers.
	grownRing, _ := ParseSpec(grownSpec)
	testutil.WaitUntil(t, "all members settled epoch 1", func() bool {
		for _, id := range grownRing.Members() {
			_, completed, _, err := admin.Status(ctx, id)
			if err != nil || completed < 1 {
				return false
			}
		}
		return true
	})
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		a, err := admin.Audit(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if a.Count != clients*per {
			t.Fatalf("audit %s after reshard: count %d, want %d", key, a.Count, clients*per)
		}
		if want := grownRing.Owner(key); a.Node != want {
			t.Fatalf("audit %s served by %s, grown ring says %s", key, a.Node, want)
		}
	}
}

// TestFabricDuplicateForwardDedup drives the same (client, seq) append
// twice — the wire-level shape of a duplicate handoff forward or a retry
// after a lost ack. The second call must answer from the ledger with the
// original count, never re-execute.
func TestFabricDuplicateForwardDedup(t *testing.T) {
	addrs := reserveAddrs(t, 1)
	members := map[string]string{"n00": addrs[0]}
	spec := specFor(0, members)
	n := startFabricNode(t, "n00", addrs[0], spec, "", 0)
	defer n.stop()
	ctx := testCtx(t)

	rem, err := rpc.DialWith(addrs[0], rpc.DialOptions{ClientID: "raw"})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	for s := uint64(0); s < 3; s++ {
		res, err := rem.CallCtx(ctx, "fabric", "Append", "dup-key", "cA", s, []byte(nil))
		if err != nil {
			t.Fatal(err)
		}
		if res[0].(string) != statusOK || res[4].(string) != "" {
			t.Fatalf("seq %d first delivery: status %v info %v", s, res[0], res[4])
		}
	}
	// Duplicate of the latest seq: ledger answer, same count, marked dup.
	res, err := rem.CallCtx(ctx, "fabric", "Append", "dup-key", "cA", uint64(2), []byte(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(string) != statusOK || res[3].(uint64) != 3 || res[4].(string) != "dup" {
		t.Fatalf("duplicate delivery: status %v count %v info %v", res[0], res[3], res[4])
	}
	// A gap (skipping seq 3 to 5) is refused with the expected seq.
	res, err = rem.CallCtx(ctx, "fabric", "Append", "dup-key", "cA", uint64(5), []byte(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(string) != statusGap || res[3].(uint64) != 3 {
		t.Fatalf("gap delivery: status %v want-seq %v", res[0], res[3])
	}
	// Audit shows exactly 3 executions.
	r, err := NewRouter(spec, RouterOptions{ClientID: "auditor"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	a, err := r.Audit(ctx, "dup-key")
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != 3 || a.Clients["cA"] != 2 {
		t.Fatalf("audit after duplicates: %+v", a)
	}
}

// TestFabricOverloadPropagation drives appends at a 1-slot admission
// bound while the owning shard's manager is kept deterministically busy
// (a stream of large Install states, each decoded inline on the manager
// for milliseconds — racing bare appends against a microsecond manager
// never builds a queue). Sheds must surface to the client as a typed
// *OverloadError naming the owning node, unwrapping to core.ErrOverload,
// with a retry hint that makes retrying the SAME sequence number safe.
func TestFabricOverloadPropagation(t *testing.T) {
	addrs := reserveAddrs(t, 1)
	members := map[string]string{"n00": addrs[0]}
	spec := specFor(0, members)
	n := startFabricNode(t, "n00", addrs[0], spec, "", 1)
	defer n.stop()
	ctx := testCtx(t)

	const workers = 8
	routers := make([]*Router, workers)
	for w := range routers {
		r, err := NewRouter(spec, RouterOptions{ClientID: fmt.Sprintf("w%d", w)})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		routers[w] = r
		// Warm the connection so pressure measures admission, not dialing.
		if _, err := r.Append(ctx, "hot", 0, nil); err != nil {
			t.Fatal(err)
		}
	}

	// A pad key on the SAME ledger shard as "hot": Install traffic to it
	// occupies that shard's manager without disturbing the hot key's
	// history (admission bounds are per shard, so a co-located key is
	// required for interference).
	padKey := ""
	hotShard := n.host.group.ShardFor("Append", "hot")
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("pad-%d", i)
		if n.host.group.ShardFor("Append", k) == hotShard {
			padKey = k
			break
		}
	}
	if padKey == "" {
		t.Fatal("no pad key co-located with hot")
	}
	big := newKeyState(0)
	big.Count = 1
	for i := 0; i < 30000; i++ {
		big.Clients[fmt.Sprintf("ghost-%05d", i)] = clientRec{Seq: 1, Count: 1}
	}
	bigB, err := encodeState(big)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	installerDone := make(chan error, 1)
	go func() {
		rem, err := rpc.DialWith(addrs[0], rpc.DialOptions{ClientID: "loader"})
		if err != nil {
			installerDone <- err
			return
		}
		defer rem.Close()
		for epoch := uint64(1); ; epoch++ {
			select {
			case <-stop:
				installerDone <- nil
				return
			default:
			}
			if _, err := rem.CallCtx(ctx, "fabric", "Install", padKey, epoch, bigB, spec); err != nil {
				installerDone <- fmt.Errorf("install %d: %w", epoch, err)
				return
			}
		}
	}()

	var mu sync.Mutex
	var overloads, oks int
	seqs := make([]uint64, workers) // next seq per worker; 0 already acked
	for w := range seqs {
		seqs[w] = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shedLast := false
			for {
				select {
				case <-stop:
					return
				default:
				}
				exec, err := routers[w].Append(ctx, "hot", seqs[w], nil)
				if err == nil {
					if shedLast && exec.Info == "dup" {
						t.Errorf("worker %d seq %d: shed call had executed anyway", w, seqs[w])
						return
					}
					shedLast = false
					mu.Lock()
					oks++
					mu.Unlock()
					seqs[w]++
					continue
				}
				var oe *OverloadError
				if !errors.As(err, &oe) {
					if ctx.Err() != nil {
						return
					}
					t.Errorf("worker %d: %v (want *OverloadError)", w, err)
					return
				}
				if oe.Node != "n00" {
					t.Errorf("overload names node %q, want n00", oe.Node)
					return
				}
				if !errors.Is(err, core.ErrOverload) {
					t.Errorf("overload does not unwrap to core.ErrOverload: %v", err)
					return
				}
				if oe.RetryAfter <= 0 {
					t.Errorf("overload carries no retry hint: %+v", oe)
					return
				}
				mu.Lock()
				overloads++
				mu.Unlock()
				shedLast = true
				// Typed retry hint: back off, then loop retries the SAME
				// seq — the shed call never executed, so no gap and no dup.
				time.Sleep(oe.RetryAfter)
			}
		}(w)
	}
	testutil.WaitUntil(t, "overloads observed under a busy manager", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return overloads >= 2*workers || t.Failed()
	})
	close(stop)
	wg.Wait()
	if err := <-installerDone; err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		return
	}
	t.Logf("overload propagation: %d sheds, %d acks", overloads, oks)

	// No lost and no duplicated executions: the server-side count must
	// equal the warm-up appends plus every acknowledged append.
	a, err := routers[0].Audit(ctx, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != uint64(workers+oks) {
		t.Fatalf("audit count %d, want %d (lost or duplicated executions)", a.Count, workers+oks)
	}
	for w := range seqs {
		if got := a.Clients[fmt.Sprintf("w%d", w)]; got != seqs[w]-1 {
			t.Fatalf("worker %d: server last seq %d, client last acked %d", w, got, seqs[w]-1)
		}
	}
}

// TestFabricRecovery: a journaled node is stopped and reopened from its
// data dir; the ledger (counts, dedup tails) must survive, duplicates of
// pre-crash appends must answer from the recovered ledger, and fresh
// appends continue the sequence.
func TestFabricRecovery(t *testing.T) {
	addrs := reserveAddrs(t, 1)
	members := map[string]string{"n00": addrs[0]}
	spec := specFor(0, members)
	dir := t.TempDir()
	n := startFabricNode(t, "n00", addrs[0], spec, dir, 0)
	ctx := testCtx(t)

	r, err := NewRouter(spec, RouterOptions{ClientID: "cA"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for s := uint64(0); s < 5; s++ {
		if _, err := r.Append(ctx, "durable-key", s, nil); err != nil {
			t.Fatal(err)
		}
	}
	n.stop()

	n = startFabricNode(t, "n00", addrs[0], spec, dir, 0)
	defer n.stop()
	r.dropConn("n00") // the old TCP connection died with the node

	// Duplicate of the last pre-crash append: recovered ledger answers.
	exec, err := r.Append(ctx, "durable-key", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Count != 5 || exec.Info != "dup" {
		t.Fatalf("post-recovery duplicate: %+v (want count 5, dup)", exec)
	}
	// The sequence continues exactly where it stopped.
	exec, err = r.Append(ctx, "durable-key", 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Count != 6 || exec.Info != "" {
		t.Fatalf("post-recovery append: %+v (want count 6, fresh)", exec)
	}
}

// TestFabricReshardWhileNodeDead: the ring advances while one member is
// down. Keys whose history lives on the dead node must NOT accept fresh
// parallel histories at their new owner (the settled-vector gate holds
// them in retry), and once the dead node restarts from its journal the
// handoff completes and the sequence resumes with dedup intact.
func TestFabricReshardWhileNodeDead(t *testing.T) {
	addrs := reserveAddrs(t, 3)
	members := map[string]string{"n00": addrs[0], "n01": addrs[1]}
	grown := map[string]string{"n00": addrs[0], "n01": addrs[1], "n02": addrs[2]}
	spec := specFor(0, members)
	grownSpec := specFor(1, grown)
	oldRing, _ := ParseSpec(spec)
	grownRing, _ := ParseSpec(grownSpec)

	// Find a key that moves n01 -> n02 on the grow.
	movingKey := ""
	for k := 0; k < 4096; k++ {
		key := fmt.Sprintf("key-%d", k)
		if oldRing.Owner(key) == "n01" && grownRing.Owner(key) == "n02" {
			movingKey = key
			break
		}
	}
	if movingKey == "" {
		t.Fatal("no key moves n01 -> n02 under this seed")
	}

	dirs := map[string]string{"n00": t.TempDir(), "n01": t.TempDir(), "n02": t.TempDir()}
	n0 := startFabricNode(t, "n00", addrs[0], spec, dirs["n00"], 0)
	defer n0.stop()
	n1 := startFabricNode(t, "n01", addrs[1], spec, dirs["n01"], 0)
	ctx := testCtx(t)

	r, err := NewRouter(spec, RouterOptions{ClientID: "cA"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for s := uint64(0); s < 4; s++ {
		if _, err := r.Append(ctx, movingKey, s, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the key's home, then advance the ring without it.
	n1.stop()
	n2 := startFabricNode(t, "n02", addrs[2], grownSpec, dirs["n02"], 0)
	defer n2.stop()
	admin, err := NewRouter(spec, RouterOptions{ClientID: "admin"})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if _, err := admin.Reshard(ctx, grownSpec); err != nil {
		t.Fatal(err)
	}

	// The new owner must refuse to start a parallel history while the
	// dead node's settled level lags: a short-budget append only sees
	// retry statuses.
	shortCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	gated, err := NewRouter(grownSpec, RouterOptions{ClientID: "cA", Retries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer gated.Close()
	_, err = gated.Append(shortCtx, movingKey, 4, nil)
	cancel()
	if err == nil {
		t.Fatal("append to gated key succeeded while its history was on a dead node")
	}
	if !errors.Is(err, ErrRetriesExhausted) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("gated append failed with %v, want retries-exhausted/deadline", err)
	}

	// Restart the dead node from its journal; anti-entropy teaches it the
	// new ring, it hands the key off, and the append goes through with
	// the full dedup history.
	n1 = startFabricNode(t, "n01", addrs[1], spec, dirs["n01"], 0)
	defer n1.stop()
	exec, err := gated.Append(ctx, movingKey, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Count != 5 {
		t.Fatalf("resumed append count %d, want 5 (history lost?)", exec.Count)
	}
	if exec.Node != "n02" || exec.Epoch != 1 {
		t.Fatalf("resumed append executed on %s@%d, want n02@1", exec.Node, exec.Epoch)
	}
	// And the pre-crash duplicate still answers from the moved ledger.
	dup, err := gated.Append(ctx, movingKey, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dup.Count != 5 || dup.Info != "dup" {
		t.Fatalf("post-handoff duplicate: %+v", dup)
	}
}
