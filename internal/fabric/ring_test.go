package fabric

import (
	"fmt"
	"testing"
)

func testMembers(n int) map[string]string {
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		m[fmt.Sprintf("n%02d", i)] = fmt.Sprintf("127.0.0.1:%d", 7100+i)
	}
	return m
}

// TestRingDeterministicPlacement: the same (epoch, seed, vnodes, members)
// must place every key identically across independently-built rings —
// placement is a pure function, never dependent on map iteration order.
func TestRingDeterministicPlacement(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 0xdeadbeef} {
		a, err := NewRing(3, seed, 128, testMembers(5))
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewRing(3, seed, 128, testMembers(5))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 10000; k++ {
			key := fmt.Sprintf("key-%d", k)
			if a.Owner(key) != b.Owner(key) {
				t.Fatalf("seed %d key %s: %s vs %s", seed, key, a.Owner(key), b.Owner(key))
			}
		}
	}
}

// TestRingSpecRoundTrip: Spec/ParseSpec must reproduce the identical
// placement — specs are how rings travel between processes.
func TestRingSpecRoundTrip(t *testing.T) {
	r, err := NewRing(9, 42, 64, testMembers(4))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ParseSpec(r.Spec())
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", r.Spec(), err)
	}
	if r2.Epoch() != 9 || r2.Seed() != 42 || r2.VNodes() != 64 {
		t.Fatalf("round trip lost header: %q -> epoch %d seed %d vnodes %d",
			r.Spec(), r2.Epoch(), r2.Seed(), r2.VNodes())
	}
	for k := 0; k < 5000; k++ {
		key := fmt.Sprintf("key-%d", k)
		if r.Owner(key) != r2.Owner(key) {
			t.Fatalf("key %s moved across spec round trip", key)
		}
	}
	if r2.Addr("n02") != "127.0.0.1:7102" {
		t.Fatalf("addr lost: %q", r2.Addr("n02"))
	}
}

func TestRingSpecRejects(t *testing.T) {
	for _, bad := range []string{
		"", "1;2;3", "x;2;128;a=b", "1;y;128;a=b", "1;2;0;a=b",
		"1;2;128;", "1;2;128;a", "1;2;128;a=b,a=c", "1;2;128;=x", "1;2;128;a=",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	if _, err := NewRing(1, 0, 128, map[string]string{"a;b": "x"}); err == nil {
		t.Error("member id with delimiter accepted")
	}
	if _, err := NewRing(1, 0, 128, nil); err == nil {
		t.Error("empty ring accepted")
	}
}

// TestRingMovement: growing N members to N+1 must move at most 2/(N+1) of
// the keyspace — the consistent-hashing contract that makes live
// resharding affordable. (Ideal is 1/(N+1); the factor-2 bound leaves room
// for vnode variance while still catching a modulo-style rehash, which
// would move ~N/(N+1) of all keys.)
func TestRingMovement(t *testing.T) {
	const keys = 20000
	for _, n := range []int{3, 4, 7} {
		for seed := uint64(1); seed <= 3; seed++ {
			old, err := NewRing(1, seed, 128, testMembers(n))
			if err != nil {
				t.Fatal(err)
			}
			grown, err := NewRing(2, seed, 128, testMembers(n+1))
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("key-%d", k)
				from, to := old.Owner(key), grown.Owner(key)
				if from != to {
					moved++
					// Movement must only flow toward the new member: a key
					// relocating between two old members is gratuitous churn.
					if to != fmt.Sprintf("n%02d", n) {
						t.Fatalf("n=%d seed %d: key %s moved %s -> %s (not the new member)",
							n, seed, key, from, to)
					}
				}
			}
			limit := 2 * keys / (n + 1)
			if moved > limit {
				t.Fatalf("n=%d seed %d: %d/%d keys moved on grow, limit %d", n, seed, moved, keys, limit)
			}
			if moved == 0 {
				t.Fatalf("n=%d seed %d: no keys moved to the new member", n, seed)
			}
		}
	}
}

// TestRingBalance: at 128 vnodes every member's share of a large keyspace
// must stay within 15% of fair share, for several member counts and seeds.
func TestRingBalance(t *testing.T) {
	const keys = 40000
	for _, n := range []int{3, 4, 6, 8} {
		for seed := uint64(1); seed <= 3; seed++ {
			r, err := NewRing(1, seed, 128, testMembers(n))
			if err != nil {
				t.Fatal(err)
			}
			counts := make(map[string]int)
			for k := 0; k < keys; k++ {
				counts[r.Owner(fmt.Sprintf("key-%d", k))]++
			}
			fair := float64(keys) / float64(n)
			for id, c := range counts {
				dev := (float64(c) - fair) / fair
				if dev > 0.15 || dev < -0.15 {
					t.Fatalf("n=%d seed %d: member %s holds %d keys (fair %.0f, dev %+.1f%%)",
						n, seed, id, c, fair, dev*100)
				}
			}
			if len(counts) != n {
				t.Fatalf("n=%d seed %d: only %d members own keys", n, seed, len(counts))
			}
		}
	}
}

// TestRingN2NMovement: the N→2N reshard the e2e harness drives mid-traffic
// moves roughly half the keyspace and nothing between surviving members.
func TestRingN2NMovement(t *testing.T) {
	const keys = 20000
	old, err := NewRing(1, 7, 128, testMembers(3))
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := NewRing(2, 7, 128, testMembers(6))
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		from, to := old.Owner(key), doubled.Owner(key)
		if from == to {
			continue
		}
		moved++
		if old.Has(to) {
			t.Fatalf("key %s moved between old members %s -> %s", key, from, to)
		}
	}
	// Doubling should hand the new half of the ring ~1/2 of the keys;
	// accept a generous band around it.
	if moved < keys/4 || moved > 3*keys/4 {
		t.Fatalf("N->2N moved %d/%d keys, expected roughly half", moved, keys)
	}
}
