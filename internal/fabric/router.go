package fabric

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
)

// RouterOptions configures a client-side Router.
type RouterOptions struct {
	// ClientID is the stable identity under which appends are issued (it
	// is the dedup key on the ledger, so it must survive reconnects and
	// even process restarts of the client when exactly-once matters).
	ClientID string
	// Retries bounds how many retriable responses (node down, ring
	// settling, handoff in flight) one Append absorbs before giving up
	// with ErrRetriesExhausted (default 64; the context deadline cuts it
	// shorter).
	Retries int
	// RetryBase is the backoff before the first settle/link retry
	// (default 5ms, doubling to 250ms).
	RetryBase time.Duration
	// DialTimeout bounds each TCP connect (default 2s).
	DialTimeout time.Duration
}

// Exec is one acknowledged append: who executed it, at which placement
// epoch, and the key's running count after it. Feed these (in
// acknowledgement order per client) to conformance.CheckKeyOrder to
// verify the fabric's ordering promises from the outside.
type Exec struct {
	Key    string
	Client string
	Seq    uint64
	Node   string // member that executed the call
	Epoch  uint64 // key's placement epoch at execution
	Count  uint64 // key count after this append
	Info   string // "" for a fresh execution, "dup" when answered from the ledger
}

// Audit is one key's server-side ledger entry, fetched from its owner.
type Audit struct {
	Key     string
	Node    string
	Found   bool
	Epoch   uint64
	Count   uint64
	Clients map[string]uint64 // client -> highest executed seq
}

// Router routes keyed appends to the owning fabric node, adopting newer
// ring specs from wrong-owner hints, propagating overload as typed
// errors and absorbing the transient statuses a live reshard produces.
// Safe for concurrent use.
type Router struct {
	opts RouterOptions

	mu     sync.Mutex
	ring   *Ring
	conns  map[string]*hostConn
	closed bool
}

// linkIdentity salts base with a fresh nonce, producing the transport
// at-most-once identity for ONE dialed connection. Each rpc.Remote
// numbers its calls from 1 and the nodes' replay cache keys on
// (identity, call number), so two connections sharing an identity — a
// reconnect after dropConn, or two processes running the same client —
// would replay the first connection's cached responses to the second's
// unrelated calls. Exactly-once for appends is the ledger's job, keyed
// on the stable ClientID that travels as a call parameter; the link
// identity only has to be unique per connection.
func linkIdentity(base string) (string, error) {
	nonce := make([]byte, 6)
	if _, err := rand.Read(nonce); err != nil {
		return "", fmt.Errorf("fabric: link nonce: %w", err)
	}
	return base + "#" + hex.EncodeToString(nonce), nil
}

// NewRouter builds a router from an initial ring spec.
func NewRouter(spec string, opts RouterOptions) (*Router, error) {
	ring, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	if opts.ClientID == "" {
		return nil, errors.New("fabric: RouterOptions.ClientID is required")
	}
	if opts.Retries <= 0 {
		opts.Retries = 64
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 5 * time.Millisecond
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 2 * time.Second
	}
	return &Router{opts: opts, ring: ring, conns: make(map[string]*hostConn)}, nil
}

// Ring reports the router's current ring spec.
func (r *Router) Ring() string { return r.ringSnapshot().Spec() }

func (r *Router) ringSnapshot() *Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring
}

// adopt installs a newer ring spec (no-op otherwise).
func (r *Router) adopt(spec string) {
	ring, err := ParseSpec(spec)
	if err != nil {
		return
	}
	r.mu.Lock()
	if ring.Epoch() > r.ring.Epoch() {
		r.ring = ring
	}
	r.mu.Unlock()
}

// Append executes one keyed append with at-most-once semantics: it may
// retry internally across node failures, wrong-owner bounces, overloads
// and live handoffs, because the (ClientID, key, seq) identity makes
// every retry idempotent. Sequence numbers must be issued densely
// (0,1,2,...) per (ClientID, key), one in flight at a time.
//
// Errors: *OverloadError after the retry budget drowns in shed responses
// (callers see the owning node and a backoff hint), *GapError for a
// sequence gap (oracle-grade failure — do not retry), ErrRetriesExhausted
// when the fabric kept answering transient statuses, or the context's
// error.
func (r *Router) Append(ctx context.Context, key string, seq uint64, payload []byte) (Exec, error) {
	var lastStatus string
	var lastErr error
	backoff := r.opts.RetryBase
	for attempt := 0; attempt < r.opts.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return Exec{}, err
		}
		if r.isClosed() {
			return Exec{}, ErrClosed
		}
		ring := r.ringSnapshot()
		owner := ring.Owner(key)
		rem, err := r.conn(owner, ring.Addr(owner))
		if err != nil {
			lastStatus, lastErr = "dial", err
			if serr := r.sleep(ctx, backoff); serr != nil {
				return Exec{}, serr
			}
			backoff = bump(backoff)
			continue
		}
		res, err := rem.CallCtx(ctx, "fabric", "Append", key, r.opts.ClientID, seq, payload)
		if err != nil {
			if errors.Is(err, core.ErrOverload) {
				return Exec{}, &OverloadError{Node: owner, RetryAfter: backoff, Err: err}
			}
			if ctx.Err() != nil {
				return Exec{}, ctx.Err()
			}
			// Link-level failure: the call may or may not have executed;
			// retrying the same seq is safe against the dedup ledger.
			r.dropConn(owner)
			lastStatus, lastErr = "link", err
			if serr := r.sleep(ctx, backoff); serr != nil {
				return Exec{}, serr
			}
			backoff = bump(backoff)
			continue
		}
		if len(res) != 5 {
			return Exec{}, fmt.Errorf("fabric: malformed append response (%d values)", len(res))
		}
		status, _ := res[0].(string)
		member, _ := res[1].(string)
		epoch, _ := res[2].(uint64)
		count, _ := res[3].(uint64)
		info, _ := res[4].(string)
		switch status {
		case statusOK:
			return Exec{Key: key, Client: r.opts.ClientID, Seq: seq, Node: member, Epoch: epoch, Count: count, Info: info}, nil
		case statusGap:
			return Exec{}, &GapError{Key: key, Client: r.opts.ClientID, Seq: seq, Expect: count}
		case statusWrongOwner:
			// The node's ring is newer (or ours is): adopt and go again
			// without consuming backoff — this is the fast re-resolve.
			r.adopt(info)
			lastStatus, lastErr = status, nil
		case statusRetry, statusMoved:
			lastStatus, lastErr = status, nil
			if serr := r.sleep(ctx, backoff); serr != nil {
				return Exec{}, serr
			}
			backoff = bump(backoff)
		default:
			return Exec{}, fmt.Errorf("fabric: unexpected append status %q", status)
		}
	}
	if lastErr != nil {
		return Exec{}, fmt.Errorf("%w after %d attempts (last: %s): %v", ErrRetriesExhausted, r.opts.Retries, lastStatus, lastErr)
	}
	return Exec{}, fmt.Errorf("%w after %d attempts (last status %q)", ErrRetriesExhausted, r.opts.Retries, lastStatus)
}

// Audit fetches one key's server-side ledger entry from its current
// owner, following ring updates like Append does.
func (r *Router) Audit(ctx context.Context, key string) (Audit, error) {
	backoff := r.opts.RetryBase
	var last error
	for attempt := 0; attempt < r.opts.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return Audit{}, err
		}
		ring := r.ringSnapshot()
		owner := ring.Owner(key)
		rem, err := r.conn(owner, ring.Addr(owner))
		if err == nil {
			var res []any
			res, err = rem.CallCtx(ctx, "fabric", "Audit", key)
			if err == nil && len(res) == 3 {
				status, _ := res[0].(string)
				spec, _ := res[2].(string)
				r.adopt(spec)
				if owner != r.ringSnapshot().Owner(key) {
					continue // ring moved on; re-ask the real owner
				}
				switch status {
				case statusOK:
					b, _ := res[1].([]byte)
					st, derr := decodeState(b)
					if derr != nil {
						return Audit{}, derr
					}
					if st.Moved {
						break // handoff still in flight; back off and re-ask
					}
					a := Audit{Key: key, Node: owner, Found: true, Epoch: st.Epoch, Count: st.Count,
						Clients: make(map[string]uint64, len(st.Clients))}
					for c, cr := range st.Clients {
						a.Clients[c] = cr.Seq
					}
					return a, nil
				case statusNone:
					return Audit{Key: key, Node: owner}, nil
				}
			}
		}
		if err != nil {
			r.dropConn(owner)
			last = err
		}
		if serr := r.sleep(ctx, backoff); serr != nil {
			return Audit{}, serr
		}
		backoff = bump(backoff)
	}
	return Audit{}, fmt.Errorf("%w: audit %q: %v", ErrRetriesExhausted, key, last)
}

// Reshard broadcasts a new ring spec to every member of both the current
// and the new ring, returning how many acknowledged. One acknowledgement
// is enough for eventual convergence (specs gossip), but the count lets
// operators see partition effects.
func (r *Router) Reshard(ctx context.Context, spec string) (int, error) {
	ring, err := ParseSpec(spec)
	if err != nil {
		return 0, err
	}
	old := r.ringSnapshot()
	if ring.Epoch() <= old.Epoch() {
		return 0, fmt.Errorf("fabric: reshard spec epoch %d is not newer than current %d", ring.Epoch(), old.Epoch())
	}
	targets := make(map[string]string)
	for _, id := range old.Members() {
		targets[id] = old.Addr(id)
	}
	for _, id := range ring.Members() {
		targets[id] = ring.Addr(id)
	}
	acked := 0
	for id, addr := range targets {
		rem, err := r.conn(id, addr)
		if err != nil {
			continue
		}
		if _, err := rem.CallCtx(ctx, "fabric", "Reshard", spec); err != nil {
			r.dropConn(id)
			continue
		}
		acked++
	}
	if acked == 0 {
		return 0, fmt.Errorf("fabric: reshard to epoch %d reached no member", ring.Epoch())
	}
	r.adopt(spec)
	return acked, nil
}

// Status asks one member for its view: ring spec, settled level and
// settled vector. The router adopts any newer spec it learns.
func (r *Router) Status(ctx context.Context, member string) (spec string, completed uint64, settled map[string]uint64, err error) {
	ring := r.ringSnapshot()
	rem, err := r.conn(member, ring.Addr(member))
	if err != nil {
		return "", 0, nil, err
	}
	res, err := rem.CallCtx(ctx, "fabric", "Status", ring.Spec())
	if err != nil {
		r.dropConn(member)
		return "", 0, nil, err
	}
	if len(res) != 4 {
		return "", 0, nil, fmt.Errorf("fabric: malformed status response (%d values)", len(res))
	}
	spec, _ = res[1].(string)
	completed, _ = res[2].(uint64)
	if b, ok := res[3].([]byte); ok && len(b) > 0 {
		_ = json.Unmarshal(b, &settled)
	}
	r.adopt(spec)
	return spec, completed, settled, nil
}

func (r *Router) conn(member, addr string) (*rpc.Remote, error) {
	if addr == "" {
		return nil, fmt.Errorf("fabric: no address for member %q", member)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if c := r.conns[member]; c != nil && c.addr == addr {
		rem := c.rem
		r.mu.Unlock()
		return rem, nil
	}
	r.mu.Unlock()
	linkID, err := linkIdentity(r.opts.ClientID)
	if err != nil {
		return nil, err
	}
	rem, err := rpc.DialWith(addr, rpc.DialOptions{
		Timeout:  r.opts.DialTimeout,
		ClientID: linkID,
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		rem.Close()
		return nil, ErrClosed
	}
	if old := r.conns[member]; old != nil {
		old.rem.Close()
	}
	r.conns[member] = &hostConn{addr: addr, rem: rem}
	r.mu.Unlock()
	return rem, nil
}

func (r *Router) dropConn(member string) {
	r.mu.Lock()
	c := r.conns[member]
	delete(r.conns, member)
	r.mu.Unlock()
	if c != nil {
		c.rem.Close()
	}
}

func (r *Router) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

func (r *Router) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func bump(d time.Duration) time.Duration {
	if d >= 250*time.Millisecond {
		return d
	}
	return d * 2
}

// Close closes every member connection.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	conns := r.conns
	r.conns = make(map[string]*hostConn)
	r.mu.Unlock()
	for _, c := range conns {
		c.rem.Close()
	}
}
