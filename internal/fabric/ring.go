// Package fabric scales shard groups across processes: a consistent-hash
// ring places key ranges on rpc nodes, a client-side Router routes keyed
// calls to the owning node over the wire transport, and a per-key handoff
// protocol moves keys between nodes during live resharding without
// breaking per-key FIFO or at-most-once (docs/FABRIC.md).
//
// The layering extends the in-process story one level up:
//
//	core.Object   — one manager, per-object FIFO (the paper's model)
//	shard.Group   — N objects behind one name, per-key FIFO (PR 4)
//	fabric        — M nodes behind one ring, per-key FIFO across processes
package fabric

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DefaultVNodes is the virtual-node count per member when a spec does not
// say otherwise. 128 points per member keeps the keyspace balanced within
// ~15% of fair share (see TestRingBalance) at the cost of a few KiB of
// sorted points.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash placement: an epoch-numbered
// member set projected onto the hash circle as vnodes*64 fixed, equal
// virtual-node strata, each stratum assigned to the member winning a
// seeded rendezvous draw (highest mix(stratum, member) score; ties broken
// by member id). Keys hash onto the circle and belong to their stratum's
// member.
//
// Fixing the strata and letting rendezvous pick the owner keeps all three
// placement properties at once: the assignment is a pure function of
// (epoch is advisory, seed, vnodes, members) so every process computes the
// identical ring; adding a member reassigns exactly the strata the new
// member wins — ~1/(N+1) of the keyspace, never a key between two
// surviving members; and each member's share concentrates tightly around
// fair (relative deviation ~sqrt(members/strata), a few percent at the
// default 8192 strata) where classic random-point rings at 128 points per
// member routinely drift past 15%.
type Ring struct {
	epoch  uint64
	seed   uint64
	vnodes int

	members []string          // sorted ids
	addrs   map[string]string // id -> advertised address

	owners []int // stratum index -> member index
}

// strataPerVNode scales the vnodes knob into the fixed stratum count; at
// DefaultVNodes the circle has 8192 strata.
const strataPerVNode = 64

// NewRing builds a ring. members maps member id to advertised address;
// vnodes <= 0 selects DefaultVNodes. The same (epoch, seed, vnodes,
// members) always yields the identical placement on every process.
func NewRing(epoch, seed uint64, vnodes int, members map[string]string) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("fabric: ring epoch %d has no members", epoch)
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		epoch:  epoch,
		seed:   seed,
		vnodes: vnodes,
		addrs:  make(map[string]string, len(members)),
	}
	for id, addr := range members {
		if id == "" || addr == "" {
			return nil, fmt.Errorf("fabric: ring epoch %d: empty member id or address", epoch)
		}
		if strings.ContainsAny(id, ";,=") || strings.ContainsAny(addr, ";,=") {
			return nil, fmt.Errorf("fabric: ring member %q=%q contains a spec delimiter", id, addr)
		}
		r.members = append(r.members, id)
		r.addrs[id] = addr
	}
	sort.Strings(r.members)
	memberHash := make([]uint64, len(r.members))
	for mi, id := range r.members {
		memberHash[mi] = mix64(seed ^ strHash(id))
	}
	strata := vnodes * strataPerVNode
	r.owners = make([]int, strata)
	for s := 0; s < strata; s++ {
		salt := mix64(seed + uint64(s)*0x9e3779b97f4a7c15)
		best, bestScore := 0, uint64(0)
		for mi := range r.members {
			// Ties (astronomically rare) fall through to the lower member
			// index — sorted ids keep that deterministic too.
			if score := mix64(salt ^ memberHash[mi]); score > bestScore {
				best, bestScore = mi, score
			}
		}
		r.owners[s] = best
	}
	return r, nil
}

// Epoch reports the ring's generation number.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Seed reports the placement seed.
func (r *Ring) Seed() uint64 { return r.seed }

// VNodes reports the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Members reports the sorted member ids.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Addr reports a member's advertised address ("" if unknown).
func (r *Ring) Addr(id string) string { return r.addrs[id] }

// Has reports whether id is a ring member.
func (r *Ring) Has(id string) bool { _, ok := r.addrs[id]; return ok }

// Owner reports the member owning key.
func (r *Ring) Owner(key string) string {
	h := mix64(r.seed ^ strHash(key))
	// The circle is len(owners) equal strata; the key's high bits pick one.
	s := int(h / (^uint64(0)/uint64(len(r.owners)) + 1))
	return r.members[r.owners[s]]
}

// Spec serializes the ring as "epoch;seed;vnodes;id=addr,id=addr,..."
// (members sorted). Specs travel in WrongOwner hints, Install/Settled
// gossip and the alpsd -fabric-members flag; ParseSpec reverses it.
func (r *Ring) Spec() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d;%d;%d;", r.epoch, r.seed, r.vnodes)
	for i, id := range r.members {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(id)
		b.WriteByte('=')
		b.WriteString(r.addrs[id])
	}
	return b.String()
}

// ParseSpec parses the Spec format back into a ring.
func ParseSpec(spec string) (*Ring, error) {
	parts := strings.SplitN(spec, ";", 4)
	if len(parts) != 4 {
		return nil, fmt.Errorf("fabric: bad ring spec %q (want epoch;seed;vnodes;members)", spec)
	}
	epoch, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("fabric: bad ring spec epoch %q: %w", parts[0], err)
	}
	seed, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("fabric: bad ring spec seed %q: %w", parts[1], err)
	}
	vnodes, err := strconv.Atoi(parts[2])
	if err != nil || vnodes <= 0 {
		return nil, fmt.Errorf("fabric: bad ring spec vnodes %q", parts[2])
	}
	members := make(map[string]string)
	for _, m := range strings.Split(parts[3], ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		id, addr, ok := strings.Cut(m, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("fabric: bad ring spec member %q (want id=addr)", m)
		}
		if _, dup := members[id]; dup {
			return nil, fmt.Errorf("fabric: duplicate ring member %q", id)
		}
		members[id] = addr
	}
	return NewRing(epoch, seed, vnodes, members)
}

// strHash is FNV-1a over s.
func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the SplitMix64 finalizer (Steele et al.).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
