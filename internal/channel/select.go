package channel

// The paper's select/loop constructs are general language constructs: any
// process may use receive commands in guards (§2.1.2, §2.4), not only
// managers. This file provides that facility for ordinary processes; the
// manager's richer select (accept/await guards) lives in internal/core and
// reuses the same Peek/Take/Subscribe hooks.

// RecvGuard is one "receive C(...) [when B] [pri E]" alternative.
type RecvGuard struct {
	Ch       *Chan
	When     func(Message) bool // acceptance condition on the would-be message
	Pri      func(Message) int  // run-time priority; nil means PriConst
	PriConst int
}

// Select blocks until one guard has an eligible message and receives it,
// returning the guard's index and the message. Among eligible guards the
// smallest priority value wins (§2.4). It returns ok=false when done is
// closed, or when every channel is closed with no eligible message left.
func Select(done <-chan struct{}, guards ...RecvGuard) (idx int, msg Message, ok bool) {
	if len(guards) == 0 {
		return -1, nil, false
	}
	poke := make(chan struct{}, 1)
	unsubs := make([]func(), len(guards))
	for i, g := range guards {
		if g.Ch == nil {
			for j := 0; j < i; j++ {
				unsubs[j]()
			}
			return -1, nil, false
		}
		unsubs[i] = g.Ch.Subscribe(poke)
	}
	defer func() {
		for _, u := range unsubs {
			u()
		}
	}()

	for {
		best := -1
		bestPri := 0
		var bestMsg Message
		// With no eligible message found, the select can only ever fire
		// again if some channel can still receive sends: predicates are
		// pure, so a closed channel whose buffered messages all failed
		// their conditions is dead for this select.
		allDead := true
		for i, g := range guards {
			if !g.Ch.Closed() {
				allDead = false
			}
			m, found := g.Ch.PeekWhere(g.When)
			if !found {
				continue
			}
			pri := g.PriConst
			if g.Pri != nil {
				pri = g.Pri(m)
			}
			if best < 0 || pri < bestPri {
				best, bestPri, bestMsg = i, pri, m
			}
		}
		if best >= 0 {
			g := guards[best]
			if m, found := g.Ch.TakeWhere(g.When); found {
				return best, m, true
			}
			_ = bestMsg // stolen between peek and take: rescan
			continue
		}
		if allDead {
			return -1, nil, false
		}
		select {
		case <-poke:
		case <-done:
			return -1, nil, false
		}
	}
}

// TrySelect is Select without blocking: it receives from the best eligible
// guard if any message is immediately available.
func TrySelect(guards ...RecvGuard) (idx int, msg Message, ok bool) {
	best := -1
	bestPri := 0
	for i, g := range guards {
		if g.Ch == nil {
			continue
		}
		m, found := g.Ch.PeekWhere(g.When)
		if !found {
			continue
		}
		pri := g.PriConst
		if g.Pri != nil {
			pri = g.Pri(m)
		}
		if best < 0 || pri < bestPri {
			best, bestPri = i, pri
		}
	}
	if best < 0 {
		return -1, nil, false
	}
	if m, found := guards[best].Ch.TakeWhere(guards[best].When); found {
		return best, m, true
	}
	return -1, nil, false
}
