package channel

import (
	"sync"
	"testing"
	"time"
)

func TestSelectReceivesFromReadyChannel(t *testing.T) {
	a, b := New("a"), New("b")
	if err := b.Send("hello"); err != nil {
		t.Fatal(err)
	}
	idx, msg, ok := Select(nil, RecvGuard{Ch: a}, RecvGuard{Ch: b})
	if !ok || idx != 1 || msg[0] != "hello" {
		t.Fatalf("Select = %d, %v, %v", idx, msg, ok)
	}
}

func TestSelectBlocksUntilSend(t *testing.T) {
	a := New("a")
	got := make(chan Message, 1)
	go func() {
		_, msg, ok := Select(nil, RecvGuard{Ch: a})
		if ok {
			got <- msg
		}
	}()
	select {
	case <-got:
		t.Fatal("Select returned before any send")
	case <-time.After(30 * time.Millisecond):
	}
	if err := a.Send(7); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if msg[0] != 7 {
			t.Fatalf("msg = %v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Select did not wake on send")
	}
}

func TestSelectPriority(t *testing.T) {
	a, b := New("a"), New("b")
	if err := a.Send("low"); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("high"); err != nil {
		t.Fatal(err)
	}
	idx, msg, ok := Select(nil,
		RecvGuard{Ch: a, PriConst: 5},
		RecvGuard{Ch: b, PriConst: 1},
	)
	if !ok || idx != 1 || msg[0] != "high" {
		t.Fatalf("Select = %d, %v, %v; want the pri-1 guard", idx, msg, ok)
	}
}

func TestSelectMessagePriority(t *testing.T) {
	a := New("a")
	for _, v := range []int{30, 10, 20} {
		if err := a.Send(v); err != nil {
			t.Fatal(err)
		}
	}
	// Pri over the frontmost eligible message of each guard; one guard per
	// value class picks the global minimum.
	small := func(m Message) bool { return m[0].(int) < 15 }
	big := func(m Message) bool { return m[0].(int) >= 15 }
	pri := func(m Message) int { return m[0].(int) }
	idx, msg, ok := Select(nil,
		RecvGuard{Ch: a, When: big, Pri: pri},
		RecvGuard{Ch: a, When: small, Pri: pri},
	)
	if !ok || idx != 1 || msg[0] != 10 {
		t.Fatalf("Select = %d, %v, %v; want 10 via the small guard", idx, msg, ok)
	}
}

func TestSelectWhenFiltersMessages(t *testing.T) {
	a := New("a")
	if err := a.Send(1); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2); err != nil {
		t.Fatal(err)
	}
	even := func(m Message) bool { return m[0].(int)%2 == 0 }
	_, msg, ok := Select(nil, RecvGuard{Ch: a, When: even})
	if !ok || msg[0] != 2 {
		t.Fatalf("Select(even) = %v, %v", msg, ok)
	}
	if a.Len() != 1 {
		t.Fatalf("ineligible message consumed: Len = %d", a.Len())
	}
}

func TestSelectDoneCancels(t *testing.T) {
	a := New("a")
	done := make(chan struct{})
	res := make(chan bool, 1)
	go func() {
		_, _, ok := Select(done, RecvGuard{Ch: a})
		res <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	close(done)
	select {
	case ok := <-res:
		if ok {
			t.Fatal("cancelled Select reported ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Select ignored done")
	}
}

func TestSelectAllChannelsClosed(t *testing.T) {
	a, b := New("a"), New("b")
	if err := a.Send("last"); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b.Close()
	// Drains the remaining message first...
	idx, msg, ok := Select(nil, RecvGuard{Ch: a}, RecvGuard{Ch: b})
	if !ok || idx != 0 || msg[0] != "last" {
		t.Fatalf("Select = %d, %v, %v", idx, msg, ok)
	}
	// ...then reports exhaustion instead of blocking forever.
	if _, _, ok := Select(nil, RecvGuard{Ch: a}, RecvGuard{Ch: b}); ok {
		t.Fatal("Select on dead channels reported ok")
	}
}

func TestSelectNilAndEmpty(t *testing.T) {
	if _, _, ok := Select(nil); ok {
		t.Fatal("empty Select reported ok")
	}
	a := New("a")
	if _, _, ok := Select(nil, RecvGuard{Ch: a}, RecvGuard{}); ok {
		t.Fatal("Select with nil channel reported ok")
	}
}

func TestTrySelect(t *testing.T) {
	a := New("a")
	if _, _, ok := TrySelect(RecvGuard{Ch: a}); ok {
		t.Fatal("TrySelect on empty channel reported ok")
	}
	if err := a.Send(9); err != nil {
		t.Fatal(err)
	}
	idx, msg, ok := TrySelect(RecvGuard{Ch: a})
	if !ok || idx != 0 || msg[0] != 9 {
		t.Fatalf("TrySelect = %d, %v, %v", idx, msg, ok)
	}
	if _, _, ok := TrySelect(RecvGuard{Ch: nil}); ok {
		t.Fatal("TrySelect with nil channel reported ok")
	}
}

func TestSelectConcurrentConsumers(t *testing.T) {
	// Two selectors race for the same stream; every message is delivered
	// exactly once.
	a := New("a")
	const items = 200
	var mu sync.Mutex
	seen := make(map[int]bool, items)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, msg, ok := Select(done, RecvGuard{Ch: a})
				if !ok {
					return
				}
				mu.Lock()
				v := msg[0].(int)
				if seen[v] {
					t.Errorf("message %d delivered twice", v)
				}
				seen[v] = true
				n := len(seen)
				mu.Unlock()
				if n == items {
					close(done)
					return
				}
			}
		}()
	}
	for i := 0; i < items; i++ {
		if err := a.Send(i); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != items {
		t.Fatalf("delivered %d of %d", len(seen), items)
	}
}

func TestSelectClosedWithIneligibleMessages(t *testing.T) {
	// A closed channel holding only messages that fail the acceptance
	// condition can never fire: Select must report exhaustion, not hang.
	a := New("a")
	if err := a.Send(1); err != nil { // odd: never eligible
		t.Fatal(err)
	}
	a.Close()
	even := func(m Message) bool { return m[0].(int)%2 == 0 }
	res := make(chan bool, 1)
	go func() {
		_, _, ok := Select(nil, RecvGuard{Ch: a, When: even})
		res <- ok
	}()
	select {
	case ok := <-res:
		if ok {
			t.Fatal("Select fired on an ineligible message")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Select hung on a dead channel with ineligible messages")
	}
}
