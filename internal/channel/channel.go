// Package channel implements ALPS asynchronous point-to-point channels
// (paper §2.1.2).
//
// An ALPS channel carries typed tuples: "var C: chan(T1, ..., Tn)". A send
// buffers the message and never blocks the sender; a receive blocks until a
// message is available. Unlike Occam's synchronous channels, ALPS channels
// are asynchronous with unbounded buffering. Channels are first-class: they
// can be stored in data structures, passed as procedure parameters, and sent
// as message values.
//
// A message is a tuple represented as []any. Receives are also usable as
// guards in a manager's select/loop statement; the core package drives that
// through the Peek/Take and Subscribe hooks.
package channel

import (
	"errors"
	"fmt"
	"sync"
)

// Message is one tuple sent over a channel ("send C(v1, ..., vn)").
type Message []any

// ErrClosed is returned by Send after Close, and reported by receive
// operations once a closed channel has drained.
var ErrClosed = errors.New("channel: closed")

// Chan is an asynchronous point-to-point channel. The zero value is not
// usable; construct with New.
type Chan struct {
	mu             sync.Mutex
	name           string
	arity          int // expected tuple width; 0 disables checking
	queue          []Message
	head           int // index of first live element in queue
	closed         bool
	recvWaiters    []chan struct{} // one-shot wakeups for blocked receivers
	subs           map[int]chan<- struct{}
	nextSub        int
	sent, received uint64
}

// Option configures a channel at construction time.
type Option func(*Chan)

// WithArity declares the tuple width of the channel, mirroring the
// "chan(T1, ..., Tn)" declaration. Sends with a different number of values
// return an error. Arity 0 (the default) disables the check.
func WithArity(n int) Option {
	return func(c *Chan) { c.arity = n }
}

// New creates a channel. The name is used in errors and traces only.
func New(name string, opts ...Option) *Chan {
	c := &Chan{name: name}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Name reports the channel's name.
func (c *Chan) Name() string { return c.name }

// Arity reports the declared tuple width (0 if unchecked).
func (c *Chan) Arity() int { return c.arity }

// Send buffers a message and returns immediately ("send C(v1, ..., vn)").
// It fails only if the channel is closed or the tuple width is wrong.
func (c *Chan) Send(vals ...any) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("send on %q: %w", c.name, ErrClosed)
	}
	if c.arity != 0 && len(vals) != c.arity {
		c.mu.Unlock()
		return fmt.Errorf("send on %q: got %d values, channel has arity %d", c.name, len(vals), c.arity)
	}
	msg := make(Message, len(vals))
	copy(msg, vals)
	c.queue = append(c.queue, msg)
	c.sent++
	waiters := c.takeWaitersLocked()
	subs := c.snapshotSubsLocked()
	c.mu.Unlock()

	for _, w := range waiters {
		close(w)
	}
	for _, s := range subs {
		poke(s)
	}
	return nil
}

// Recv blocks until a message is available and returns it
// ("receive C(x1, ..., xn)"). ok is false once the channel is closed and
// drained.
func (c *Chan) Recv() (msg Message, ok bool) {
	for {
		c.mu.Lock()
		if m, found := c.popLocked(); found {
			c.mu.Unlock()
			return m, true
		}
		if c.closed {
			c.mu.Unlock()
			return nil, false
		}
		w := make(chan struct{})
		c.recvWaiters = append(c.recvWaiters, w)
		c.mu.Unlock()
		<-w
	}
}

// RecvDone is like Recv but also aborts when done is closed, returning
// ErrClosed-free (nil, false). Pass a context's Done() channel for
// cancellable receives.
func (c *Chan) RecvDone(done <-chan struct{}) (msg Message, ok bool) {
	for {
		c.mu.Lock()
		if m, found := c.popLocked(); found {
			c.mu.Unlock()
			return m, true
		}
		if c.closed {
			c.mu.Unlock()
			return nil, false
		}
		w := make(chan struct{})
		c.recvWaiters = append(c.recvWaiters, w)
		c.mu.Unlock()
		select {
		case <-w:
		case <-done:
			return nil, false
		}
	}
}

// TryRecv returns a message if one is immediately available.
func (c *Chan) TryRecv() (Message, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.popLocked()
}

// PeekWhere reports whether a buffered message satisfies pred, returning the
// first match without consuming it. A nil pred matches any message. This is
// the eligibility check for "receive C(...) when B" guards: the acceptance
// condition is evaluated against the values that would be received.
func (c *Chan) PeekWhere(pred func(Message) bool) (Message, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := c.head; i < len(c.queue); i++ {
		if pred == nil || pred(c.queue[i]) {
			return c.queue[i], true
		}
	}
	return nil, false
}

// TakeWhere atomically removes and returns the first buffered message
// satisfying pred (nil matches any). It is the commit step for a selected
// receive guard.
func (c *Chan) TakeWhere(pred func(Message) bool) (Message, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := c.head; i < len(c.queue); i++ {
		if pred == nil || pred(c.queue[i]) {
			m := c.queue[i]
			c.removeAtLocked(i)
			c.received++
			return m, true
		}
	}
	return nil, false
}

// Len reports the number of buffered messages.
func (c *Chan) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue) - c.head
}

// Stats reports lifetime sent and received counts.
func (c *Chan) Stats() (sent, received uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent, c.received
}

// Close marks the channel closed. Buffered messages remain receivable;
// further sends fail. Close is idempotent.
func (c *Chan) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	waiters := c.takeWaitersLocked()
	subs := c.snapshotSubsLocked()
	c.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
	for _, s := range subs {
		poke(s)
	}
}

// Closed reports whether Close has been called.
func (c *Chan) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Subscribe registers a poke channel that receives a non-blocking signal
// whenever a message arrives or the channel closes. It returns an
// unsubscribe function. The poke channel should be buffered (capacity 1);
// coalesced wakeups are expected and receivers must re-scan state.
func (c *Chan) Subscribe(pokeCh chan<- struct{}) (unsubscribe func()) {
	c.mu.Lock()
	id := c.nextSub
	c.nextSub++
	if c.subs == nil {
		c.subs = make(map[int]chan<- struct{})
	}
	c.subs[id] = pokeCh
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		delete(c.subs, id)
		c.mu.Unlock()
	}
}

func (c *Chan) popLocked() (Message, bool) {
	if c.head >= len(c.queue) {
		return nil, false
	}
	m := c.queue[c.head]
	c.removeAtLocked(c.head)
	c.received++
	return m, true
}

// removeAtLocked deletes queue[i], compacting lazily: popping from the front
// advances head; once half the backing array is dead it is copied down so
// the buffer does not grow without bound under steady-state traffic.
func (c *Chan) removeAtLocked(i int) {
	if i == c.head {
		c.queue[i] = nil
		c.head++
	} else {
		copy(c.queue[i:], c.queue[i+1:])
		c.queue[len(c.queue)-1] = nil
		c.queue = c.queue[:len(c.queue)-1]
	}
	if c.head > 32 && c.head*2 >= len(c.queue) {
		n := copy(c.queue, c.queue[c.head:])
		for j := n; j < len(c.queue); j++ {
			c.queue[j] = nil
		}
		c.queue = c.queue[:n]
		c.head = 0
	}
}

func (c *Chan) takeWaitersLocked() []chan struct{} {
	ws := c.recvWaiters
	c.recvWaiters = nil
	return ws
}

func (c *Chan) snapshotSubsLocked() []chan<- struct{} {
	if len(c.subs) == 0 {
		return nil
	}
	out := make([]chan<- struct{}, 0, len(c.subs))
	for _, s := range c.subs {
		out = append(out, s)
	}
	return out
}

func poke(ch chan<- struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}
