package channel

import (
	"testing"
)

// FuzzOps drives a channel with an arbitrary operation sequence and checks
// conservation: everything sent is received exactly once, in FIFO order
// among the plain receives.
func FuzzOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 0, 3, 1, 1})
	f.Add([]byte{4, 0, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		c := New("fuzz")
		next := 0
		received := make(map[int]bool)
		expectPlain := 0 // next FIFO value a plain receive may see... tracked loosely
		closed := false
		_ = expectPlain
		for _, op := range ops {
			switch op % 5 {
			case 0, 1: // send
				err := c.Send(next)
				if closed && err == nil {
					t.Fatal("Send succeeded after Close")
				}
				if !closed {
					if err != nil {
						t.Fatalf("Send: %v", err)
					}
					next++
				}
			case 2: // try-receive
				if m, ok := c.TryRecv(); ok {
					v := m[0].(int)
					if received[v] {
						t.Fatalf("value %d received twice", v)
					}
					received[v] = true
				}
			case 3: // take even values out of order
				if m, ok := c.TakeWhere(func(m Message) bool { return m[0].(int)%2 == 0 }); ok {
					v := m[0].(int)
					if v%2 != 0 {
						t.Fatalf("TakeWhere(even) returned %d", v)
					}
					if received[v] {
						t.Fatalf("value %d received twice", v)
					}
					received[v] = true
				}
			case 4: // close (idempotent)
				c.Close()
				closed = true
			}
		}
		// Drain and check conservation.
		for {
			m, ok := c.TryRecv()
			if !ok {
				break
			}
			v := m[0].(int)
			if received[v] {
				t.Fatalf("value %d received twice at drain", v)
			}
			received[v] = true
		}
		if len(received) != next {
			t.Fatalf("sent %d values, received %d", next, len(received))
		}
		sent, recv := c.Stats()
		if sent != uint64(next) || recv != uint64(next) {
			t.Fatalf("Stats = (%d, %d), want (%d, %d)", sent, recv, next, next)
		}
	})
}
