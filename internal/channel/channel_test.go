package channel

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSendRecvFIFO(t *testing.T) {
	c := New("c")
	for i := 0; i < 100; i++ {
		if err := c.Send(i); err != nil {
			t.Fatalf("Send(%d): %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		m, ok := c.Recv()
		if !ok {
			t.Fatalf("Recv %d: channel reported closed", i)
		}
		if got := m[0].(int); got != i {
			t.Fatalf("Recv %d: got %d, want FIFO order", i, got)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", c.Len())
	}
}

func TestSendNeverBlocks(t *testing.T) {
	c := New("c")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000; i++ {
			if err := c.Send(i); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("asynchronous Send blocked")
	}
	if got := c.Len(); got != 10000 {
		t.Fatalf("Len = %d, want 10000", got)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	c := New("c")
	got := make(chan Message, 1)
	go func() {
		m, _ := c.Recv()
		got <- m
	}()
	select {
	case <-got:
		t.Fatal("Recv returned before any Send")
	case <-time.After(20 * time.Millisecond):
	}
	if err := c.Send("hello", 42); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m[0] != "hello" || m[1] != 42 {
			t.Fatalf("got %v, want [hello 42]", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not wake after Send")
	}
}

func TestTupleValuesAreCopied(t *testing.T) {
	c := New("c")
	vals := []any{1, 2}
	if err := c.Send(vals...); err != nil {
		t.Fatal(err)
	}
	vals[0] = 99
	m, _ := c.Recv()
	if m[0] != 1 {
		t.Fatalf("message aliased sender's slice: got %v", m[0])
	}
}

func TestArityChecking(t *testing.T) {
	c := New("pair", WithArity(2))
	if err := c.Send(1); err == nil {
		t.Fatal("Send with 1 value on arity-2 channel succeeded")
	}
	if err := c.Send(1, 2, 3); err == nil {
		t.Fatal("Send with 3 values on arity-2 channel succeeded")
	}
	if err := c.Send(1, 2); err != nil {
		t.Fatalf("Send with matching arity failed: %v", err)
	}
	if c.Arity() != 2 {
		t.Fatalf("Arity = %d, want 2", c.Arity())
	}
}

func TestCloseSemantics(t *testing.T) {
	c := New("c")
	if err := c.Send(1); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent

	if err := c.Send(2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close: err = %v, want ErrClosed", err)
	}
	// Buffered message still receivable.
	if m, ok := c.Recv(); !ok || m[0] != 1 {
		t.Fatalf("Recv after Close = %v, %v; want buffered 1", m, ok)
	}
	if _, ok := c.Recv(); ok {
		t.Fatal("Recv on drained closed channel reported ok")
	}
	if !c.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}

func TestCloseWakesBlockedReceiver(t *testing.T) {
	c := New("c")
	done := make(chan bool, 1)
	go func() {
		_, ok := c.Recv()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned ok=true on closed empty channel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked receiver not woken by Close")
	}
}

func TestRecvDoneCancel(t *testing.T) {
	c := New("c")
	done := make(chan struct{})
	res := make(chan bool, 1)
	go func() {
		_, ok := c.RecvDone(done)
		res <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	close(done)
	select {
	case ok := <-res:
		if ok {
			t.Fatal("cancelled RecvDone reported ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvDone ignored done channel")
	}
	// Channel still usable after a cancelled receive.
	if err := c.Send(7); err != nil {
		t.Fatal(err)
	}
	if m, ok := c.TryRecv(); !ok || m[0] != 7 {
		t.Fatalf("TryRecv = %v, %v", m, ok)
	}
}

func TestTryRecv(t *testing.T) {
	c := New("c")
	if _, ok := c.TryRecv(); ok {
		t.Fatal("TryRecv on empty channel reported ok")
	}
	if err := c.Send("x"); err != nil {
		t.Fatal(err)
	}
	if m, ok := c.TryRecv(); !ok || m[0] != "x" {
		t.Fatalf("TryRecv = %v, %v", m, ok)
	}
}

func TestPeekAndTakeWhere(t *testing.T) {
	c := New("c")
	for i := 1; i <= 5; i++ {
		if err := c.Send(i); err != nil {
			t.Fatal(err)
		}
	}
	even := func(m Message) bool { return m[0].(int)%2 == 0 }

	if m, ok := c.PeekWhere(even); !ok || m[0] != 2 {
		t.Fatalf("PeekWhere(even) = %v, %v; want first even = 2", m, ok)
	}
	if c.Len() != 5 {
		t.Fatalf("PeekWhere consumed a message: Len = %d", c.Len())
	}
	if m, ok := c.TakeWhere(even); !ok || m[0] != 2 {
		t.Fatalf("TakeWhere(even) = %v, %v", m, ok)
	}
	// FIFO among the rest is preserved: 1, 3, 4, 5.
	want := []int{1, 3, 4, 5}
	for _, w := range want {
		m, ok := c.TryRecv()
		if !ok || m[0] != w {
			t.Fatalf("after TakeWhere, got %v, want %d", m, w)
		}
	}
	if _, ok := c.TakeWhere(nil); ok {
		t.Fatal("TakeWhere on empty channel reported ok")
	}
	if _, ok := c.PeekWhere(func(Message) bool { return false }); ok {
		t.Fatal("PeekWhere with always-false predicate reported ok")
	}
}

func TestSubscribePoke(t *testing.T) {
	c := New("c")
	pokeCh := make(chan struct{}, 1)
	unsub := c.Subscribe(pokeCh)
	if err := c.Send(1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-pokeCh:
	case <-time.After(2 * time.Second):
		t.Fatal("subscriber not poked on Send")
	}
	unsub()
	if err := c.Send(2); err != nil {
		t.Fatal(err)
	}
	select {
	case <-pokeCh:
		t.Fatal("poked after unsubscribe")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestSubscribePokeOnClose(t *testing.T) {
	c := New("c")
	pokeCh := make(chan struct{}, 1)
	defer c.Subscribe(pokeCh)()
	c.Close()
	select {
	case <-pokeCh:
	case <-time.After(2 * time.Second):
		t.Fatal("subscriber not poked on Close")
	}
}

func TestStats(t *testing.T) {
	c := New("c")
	for i := 0; i < 3; i++ {
		if err := c.Send(i); err != nil {
			t.Fatal(err)
		}
	}
	c.TryRecv()
	sent, recv := c.Stats()
	if sent != 3 || recv != 1 {
		t.Fatalf("Stats = (%d, %d), want (3, 1)", sent, recv)
	}
}

func TestChannelsAreFirstClass(t *testing.T) {
	// Channels can be passed as message values (paper §2.1.2).
	carrier := New("carrier")
	inner := New("inner")
	if err := carrier.Send(inner); err != nil {
		t.Fatal(err)
	}
	m, ok := carrier.Recv()
	if !ok {
		t.Fatal("Recv failed")
	}
	got, ok := m[0].(*Chan)
	if !ok {
		t.Fatalf("message value is %T, want *Chan", m[0])
	}
	if err := got.Send("through"); err != nil {
		t.Fatal(err)
	}
	if im, ok := inner.TryRecv(); !ok || im[0] != "through" {
		t.Fatalf("inner channel did not carry the message: %v, %v", im, ok)
	}
}

// TestConcurrentSendersOneReceiver checks no message is lost or duplicated
// with many senders (point-to-point means one receiver, but ALPS permits the
// sending side to be any process holding the channel).
func TestConcurrentSendersOneReceiver(t *testing.T) {
	const senders, perSender = 8, 500
	c := New("c")
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := c.Send(s, i); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(s)
	}
	go func() {
		wg.Wait()
		c.Close()
	}()

	seen := make(map[[2]int]bool, senders*perSender)
	lastPer := make([]int, senders)
	for i := range lastPer {
		lastPer[i] = -1
	}
	for {
		m, ok := c.Recv()
		if !ok {
			break
		}
		key := [2]int{m[0].(int), m[1].(int)}
		if seen[key] {
			t.Fatalf("duplicate message %v", key)
		}
		seen[key] = true
		// Per-sender FIFO must hold even with interleaving.
		if key[1] <= lastPer[key[0]] {
			t.Fatalf("per-sender order violated: sender %d seq %d after %d", key[0], key[1], lastPer[key[0]])
		}
		lastPer[key[0]] = key[1]
	}
	if len(seen) != senders*perSender {
		t.Fatalf("received %d messages, want %d", len(seen), senders*perSender)
	}
}

// Property: for any interleaving of sends and receives the channel conserves
// messages and preserves FIFO order.
func TestQuickFIFOConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New("q")
		next := 0
		expect := 0
		for _, op := range ops {
			if op%3 != 0 { // two thirds sends
				if err := c.Send(next); err != nil {
					return false
				}
				next++
			} else if m, ok := c.TryRecv(); ok {
				if m[0].(int) != expect {
					return false
				}
				expect++
			}
		}
		// Drain the rest.
		for {
			m, ok := c.TryRecv()
			if !ok {
				break
			}
			if m[0].(int) != expect {
				return false
			}
			expect++
		}
		return expect == next && c.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: TakeWhere removes exactly one matching element and preserves the
// relative order of the rest.
func TestQuickTakeWherePreservesOrder(t *testing.T) {
	f := func(vals []int, modRaw uint8) bool {
		mod := int(modRaw%5) + 2
		c := New("q")
		for _, v := range vals {
			if err := c.Send(v); err != nil {
				return false
			}
		}
		pred := func(m Message) bool { return m[0].(int)%mod == 0 }
		taken, ok := c.TakeWhere(pred)

		var want []int
		removed := false
		for _, v := range vals {
			if !removed && v%mod == 0 {
				removed = true
				continue
			}
			want = append(want, v)
		}
		if ok != removed {
			return false
		}
		if ok && taken[0].(int)%mod != 0 {
			return false
		}
		for _, w := range want {
			m, got := c.TryRecv()
			if !got || m[0].(int) != w {
				return false
			}
		}
		_, extra := c.TryRecv()
		return !extra
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHeadCompaction(t *testing.T) {
	// Exercise the lazy compaction path: heavy pop-from-front traffic must
	// not grow the backing array without bound.
	c := New("c")
	for round := 0; round < 100; round++ {
		for i := 0; i < 100; i++ {
			if err := c.Send(i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 100; i++ {
			m, ok := c.TryRecv()
			if !ok || m[0].(int) != i {
				t.Fatalf("round %d: got %v, %v", round, m, ok)
			}
		}
	}
	c.mu.Lock()
	backing := cap(c.queue)
	c.mu.Unlock()
	if backing > 4096 {
		t.Fatalf("backing array grew to %d despite compaction", backing)
	}
}

func ExampleChan() {
	c := New("results", WithArity(2))
	_ = c.Send("answer", 42)
	m, _ := c.Recv()
	fmt.Println(m[0], m[1])
	// Output: answer 42
}
