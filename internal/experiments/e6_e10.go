package experiments

import (
	"fmt"
	"sync"
	"time"

	alps "repro"
	"repro/internal/baseline"
	"repro/internal/metrics"
	"repro/internal/objects/buffer"
	"repro/internal/objects/crossobj"
	"repro/internal/objects/dict"
	"repro/internal/objects/diskhead"
	"repro/internal/rpc"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E6NestedCalls (§2.3): X.P → Y.Q → X.R. The ALPS version completes because
// X's manager, having *started* P, is free to accept R; the monitor version
// deadlocks (detected by timeout).
func E6NestedCalls(scale Scale) (*metrics.Table, error) {
	drivers := pick(scale, 8, 64)
	table := metrics.NewTable(
		fmt.Sprintf("E6: nested calls X.P -> Y.Q -> X.R, %d concurrent drivers", drivers),
		"impl", "outcome", "completed", "elapsed")

	pair, err := crossobj.New()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, drivers)
	for i := 0; i < drivers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := pair.CallP(i); err != nil {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	_ = pair.Close()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	table.AddRow("alps-manager", "completed", pair.RRuns(), elapsed.Round(time.Millisecond))

	mon := baseline.NewNestedMonitorPair()
	start = time.Now()
	monErr := mon.CallP(100 * time.Millisecond)
	outcome := "completed"
	if monErr != nil {
		outcome = "DEADLOCK (timeout)"
	}
	table.AddRow("nested-monitor", outcome, 0, time.Since(start).Round(time.Millisecond))
	return table, nil
}

// E7PoolSizing (§3): the same offered load over the paper's three process-
// provisioning strategies. The shape: a pool of M ≪ N processes creates far
// fewer processes while keeping throughput within a small factor of
// one-to-one at moderate load.
func E7PoolSizing(scale Scale) (*metrics.Table, error) {
	var (
		arrayN   = 64
		callers  = 32
		calls    = pick(scale, 40, 300) // per caller
		bodyCost = 200 * time.Microsecond
	)
	table := metrics.NewTable(
		fmt.Sprintf("E7: hidden array N=%d, %d callers x %d calls, %v/body",
			arrayN, callers, calls, bodyCost),
		"pool", "workers", "created", "max resident", "throughput")

	configs := []struct {
		name    string
		mode    sched.Mode
		workers int
	}{
		{"one-to-one (N)", sched.ModeOneToOne, arrayN},
		{"pooled M=8", sched.ModePooled, 8},
		{"pooled M=2", sched.ModePooled, 2},
		{"spawn", sched.ModeSpawn, 0},
	}
	for _, cfg := range configs {
		obj, err := alps.New("Service",
			alps.WithEntry(alps.EntrySpec{Name: "P", Array: arrayN, Body: func(inv *alps.Invocation) error {
				time.Sleep(bodyCost)
				return nil
			}}),
			alps.WithPool(cfg.mode, cfg.workers),
		)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, callers)
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < calls; i++ {
					if _, err := obj.Call("P"); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := obj.PoolStats()
		_ = obj.Close()
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
		table.AddRow(cfg.name, st.Workers, st.ProcessesCreated, st.MaxResident,
			throughput(callers*calls, elapsed))
	}
	return table, nil
}

// E8PriorityGate (§3): the paper asks for a high-priority manager so it is
// "more receptive to entry calls". We measure accept latency (arrival to
// accept, from the lifecycle trace) with the wake-ordering gate on and off.
func E8PriorityGate(scale Scale) (*metrics.Table, error) {
	items := pick(scale, 3_000, 20_000)
	table := metrics.NewTable(
		fmt.Sprintf("E8: bounded buffer under load, %d items: manager priority gate", items),
		"gate", "throughput", "mean accept latency", "max accept latency")

	for _, gate := range []bool{true, false} {
		rec := trace.NewRecorder(0)
		b, err := buffer.New(8, alps.WithTrace(rec), alps.WithPriorityGate(gate))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		errCh := make(chan error, 1)
		go func() {
			for i := 0; i < items; i++ {
				if err := b.Deposit(i); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}()
		for i := 0; i < items; i++ {
			if _, err := b.Remove(); err != nil {
				return nil, err
			}
		}
		if err := <-errCh; err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		_ = b.Close()

		aa := trace.Between(rec.Events(), trace.Arrived, trace.Accepted)
		label := "on"
		if !gate {
			label = "off"
		}
		table.AddRow(label, throughput(2*items, elapsed), aa.Mean, aa.Max)
	}
	return table, nil
}

// E9DiskSchedule (§2.4): value-dependent pri guards give shortest-seek-
// time-first. The shape: total head travel well below FIFO, close to the
// offline greedy schedule.
func E9DiskSchedule(scale Scale) (*metrics.Table, error) {
	requests := pick(scale, 48, 256)
	const cylinders = 1000
	tr, err := workload.NewTracks(17, cylinders)
	if err != nil {
		return nil, err
	}
	tracks := make([]int, requests)
	for i := range tracks {
		tracks[i] = tr.Next()
	}
	start := cylinders / 2

	table := metrics.NewTable(
		fmt.Sprintf("E9: disk head scheduling, %d requests over %d cylinders", requests, cylinders),
		"policy", "total seek", "vs FIFO")

	fifo := diskhead.FIFOSeek(start, tracks)
	greedy := diskhead.GreedySSTF(start, tracks)
	table.AddRow("FIFO (offline)", fifo, fmtFactor(1))
	table.AddRow("greedy SSTF (offline)", greedy, fmtFactor(float64(greedy)/float64(fifo)))

	// Head travel takes real time, so the request queue builds up and the
	// pri guard has pending alternatives to choose among. SSTF and SCAN are
	// the same guard with different run-time priority functions.
	for _, pol := range []diskhead.Policy{diskhead.SSTF, diskhead.SCAN} {
		s, err := diskhead.New(diskhead.Config{
			QueueMax: requests, Start: start, Cylinders: cylinders,
			Policy: pol, TrackCost: 3 * time.Microsecond,
		})
		if err != nil {
			return nil, err
		}
		var wg sync.WaitGroup
		errCh := make(chan error, requests)
		for _, track := range tracks {
			wg.Add(1)
			go func(track int) {
				defer wg.Done()
				if err := s.Seek(track); err != nil {
					errCh <- err
				}
			}(track)
		}
		wg.Wait()
		_, total := s.Stats()
		_ = s.Close()
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
		table.AddRow(fmt.Sprintf("alps pri-guard %v (online)", pol), total,
			fmtFactor(float64(total)/float64(fifo)))
	}
	return table, nil
}

// E10RemoteCalls (§1, §3): the dictionary served over TCP loopback. The
// shape: remote calls cost a transport constant over local ones, and
// combining still collapses duplicate requests arriving from remote
// clients.
func E10RemoteCalls(scale Scale) (*metrics.Table, error) {
	var (
		requests   = pick(scale, 240, 2_000)
		clients    = 8
		vocab      = 16
		searchCost = time.Millisecond
	)
	table := metrics.NewTable(
		fmt.Sprintf("E10: dictionary over TCP loopback, %d clients, %d requests, %v/search",
			clients, requests, searchCost),
		"access", "executions", "elapsed", "throughput")

	// Local.
	d, err := dict.New(dict.Options{SearchMax: clients * 2, SearchCost: searchCost, Combine: true})
	if err != nil {
		return nil, err
	}
	elapsed, err := driveWords(d.Search, clients, requests, vocab, 1.1)
	if err != nil {
		_ = d.Close()
		return nil, err
	}
	_, localExec, _ := d.Stats()
	_ = d.Close()
	table.AddRow("local", localExec, elapsed.Round(time.Millisecond), throughput(requests, elapsed))

	// Remote.
	d2, err := dict.New(dict.Options{SearchMax: clients * 2, SearchCost: searchCost, Combine: true})
	if err != nil {
		return nil, err
	}
	node := rpc.NewNode("dictnode")
	if err := node.Publish(d2.Object()); err != nil {
		return nil, err
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	rems := make([]*rpc.Remote, clients)
	for i := range rems {
		rem, err := rpc.Dial(addr)
		if err != nil {
			return nil, err
		}
		rems[i] = rem
	}
	per := requests / clients
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ws, err := workload.NewWordStream(uint64(c)+7, vocab, 1.1)
			if err != nil {
				errCh <- err
				return
			}
			ro := rems[c].Object("Dictionary")
			for i := 0; i < per; i++ {
				if _, err := ro.Call("Search", ws.Next()); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsedRemote := time.Since(start)
	_, remoteExec, _ := d2.Stats()
	for _, rem := range rems {
		rem.Close()
	}
	node.Close()
	_ = d2.Close()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	table.AddRow("remote (TCP)", remoteExec, elapsedRemote.Round(time.Millisecond),
		throughput(requests, elapsedRemote))
	return table, nil
}
