package experiments

import (
	"fmt"
	"sync"
	"time"

	alps "repro"
	"repro/internal/metrics"
	"repro/internal/shard"
)

// E14ShardScaling: the paper's manager is one logical process, so one
// managed object's Execute throughput is capped at one manager's speed
// regardless of cores. A shard.Group recovers scaling the ALPS way — many
// objects, one router. Each replica here serializes a fixed per-call cost
// through Execute (the §2.3 exclusion shape: the body is a critical
// section on the object's state); N shards give N managers whose critical
// sections overlap, so throughput should rise ~linearly in the shard
// count until callers run out.
func E14ShardScaling(scale Scale) (*metrics.Table, error) {
	var (
		clients  = 64
		calls    = pick(scale, 10, 60) // per client
		bodyCost = 200 * time.Microsecond
	)
	table := metrics.NewTable(
		fmt.Sprintf("E14: %d clients x %d Execute calls, %v/body, load-routed",
			clients, calls, bodyCost),
		"shards", "throughput", "speedup", "min/max per-shard calls")

	base := 0.0
	for _, shards := range []int{1, 2, 4, 8} {
		g, err := shard.New("Service", shards,
			func(i int, name string) (*alps.Object, error) {
				return alps.New(name,
					alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1,
						Body: func(inv *alps.Invocation) error {
							time.Sleep(bodyCost) // stand-in for the body's exclusive work
							inv.Return(inv.Param(0))
							return nil
						}}),
					alps.WithManager(func(m *alps.Mgr) {
						_ = m.Loop(alps.OnAccept("P", func(a *alps.Accepted) {
							_, _ = m.Execute(a)
						}))
					}, alps.Intercept("P")),
				)
			})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < calls; i++ {
					if _, err := g.Call("P", c*calls+i); err != nil {
						errCh <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errCh:
			_ = g.Close()
			return nil, err
		default:
		}

		minCalls, maxCalls := uint64(1<<62), uint64(0)
		for i := 0; i < g.Len(); i++ {
			st, _ := g.Shard(i).EntryStats("P")
			if st.Calls < minCalls {
				minCalls = st.Calls
			}
			if st.Calls > maxCalls {
				maxCalls = st.Calls
			}
		}
		_ = g.Close()

		ops := float64(clients*calls) / elapsed.Seconds()
		if shards == 1 {
			base = ops
		}
		table.AddRow(shards, throughput(clients*calls, elapsed),
			fmt.Sprintf("%.2fx", ops/base),
			fmt.Sprintf("%d / %d", minCalls, maxCalls))
	}
	return table, nil
}
