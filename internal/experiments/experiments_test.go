package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllHaveUniqueIDsAndTitles(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 14 {
		t.Fatalf("have %d experiments, want 14", len(seen))
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E3"); !ok {
		t.Fatal("Find(E3) failed")
	}
	if _, ok := Find("E99"); ok {
		t.Fatal("Find(E99) succeeded")
	}
}

// TestEveryExperimentRunsQuick executes the whole suite at Quick scale —
// the integration test of the entire system: core, channels, sched, rpc,
// all example objects and all baselines working together.
func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			table, err := e.Run(Quick)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if table.Rows() == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
			out := table.String()
			if !strings.Contains(out, e.ID+":") {
				t.Errorf("%s: table title %q missing experiment id", e.ID, out)
			}
			t.Logf("\n%s", out)
		})
	}
}

// TestE3ShapeCombiningWins asserts the headline combining shape numerically:
// under Zipf skew, executions must be well below requests.
func TestE3ShapeCombiningWins(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	table, err := E3Combining(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := table.String()
	// Parse the alps-combine row at skew 1.1 and confirm executions < requests.
	var executions int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "alps-combine") && strings.Contains(line, "zipf1.1-16") {
			fields := strings.Fields(line)
			// impl, skew, dup, executions, ...
			v, err := strconv.Atoi(fields[3])
			if err != nil {
				t.Fatalf("cannot parse executions from %q", line)
			}
			executions = v
		}
	}
	if executions == 0 {
		t.Fatalf("no alps-combine skew-1.1 row in:\n%s", out)
	}
	if executions >= 240 {
		t.Fatalf("combining executed %d searches for 240 requests; no win:\n%s", executions, out)
	}
}

// TestE6ShapeDeadlock asserts the monitor baseline really deadlocks while
// the manager version completes.
func TestE6ShapeDeadlock(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	table, err := E6NestedCalls(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := table.String()
	if !strings.Contains(out, "DEADLOCK") {
		t.Fatalf("monitor baseline did not deadlock:\n%s", out)
	}
	if !strings.Contains(out, "alps-manager") || !strings.Contains(out, "completed") {
		t.Fatalf("manager version did not complete:\n%s", out)
	}
}

// TestE9ShapeSSTF asserts the pri-guard schedule beats FIFO.
func TestE9ShapeSSTF(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	table, err := E9DiskSchedule(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := table.String()
	firstInt := func(line string) int64 {
		for _, f := range strings.Fields(line) {
			if v, err := strconv.ParseInt(f, 10, 64); err == nil {
				return v
			}
		}
		return 0
	}
	var fifo, online int64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "FIFO") {
			fifo = firstInt(line)
		}
		if strings.HasPrefix(line, "alps pri-guard SSTF") {
			online = firstInt(line)
		}
	}
	if fifo == 0 || online == 0 {
		t.Fatalf("could not parse table:\n%s", out)
	}
	if online*2 > fifo {
		t.Fatalf("online SSTF travel %d not clearly below FIFO %d:\n%s", online, fifo, out)
	}
}
