package experiments

import (
	"fmt"
	"sync"
	"time"

	alps "repro"
	"repro/internal/metrics"
	"repro/internal/pathexpr"
	"repro/internal/policy"
)

// E11Generality substantiates §1's claim that the manager generalizes the
// classical synchronization abstractions: a monitor, a serializer-style
// bounded resource, strict FIFO service, and a compiled path expression
// are each installed as a prebuilt manager over the same entries, driven
// under load, and checked against their defining invariant.
func E11Generality(scale Scale) (*metrics.Table, error) {
	calls := pick(scale, 200, 2_000)
	table := metrics.NewTable(
		fmt.Sprintf("E11: classical abstractions as managers, %d calls each", calls),
		"abstraction", "policy", "invariant", "held", "throughput")

	type probe struct {
		mu   sync.Mutex
		cur  map[string]int
		peak map[string]int
		log  []string
	}
	newProbe := func() *probe {
		return &probe{cur: make(map[string]int), peak: make(map[string]int)}
	}
	body := func(pr *probe, name string, hold time.Duration) alps.Body {
		return func(inv *alps.Invocation) error {
			pr.mu.Lock()
			pr.cur[name]++
			if pr.cur[name] > pr.peak[name] {
				pr.peak[name] = pr.cur[name]
			}
			pr.log = append(pr.log, name)
			pr.mu.Unlock()
			if hold > 0 {
				time.Sleep(hold)
			}
			pr.mu.Lock()
			pr.cur[name]--
			pr.mu.Unlock()
			return nil
		}
	}
	drive := func(obj *alps.Object, entries []string, n int) (time.Duration, error) {
		start := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, len(entries))
		for _, entry := range entries {
			wg.Add(1)
			go func(entry string) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if _, err := obj.Call(entry); err != nil {
						errCh <- err
						return
					}
				}
			}(entry)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return 0, err
		default:
		}
		return time.Since(start), nil
	}
	per := calls / 2

	// Monitor: mutual exclusion across two entries.
	{
		pr := newProbe()
		mgr, icpts := policy.Exclusive("A", "B")
		obj, err := alps.New("Mon",
			alps.WithEntry(alps.EntrySpec{Name: "A", Array: 4, Body: body(pr, "A", 50*time.Microsecond)}),
			alps.WithEntry(alps.EntrySpec{Name: "B", Array: 4, Body: body(pr, "B", 50*time.Microsecond)}),
			alps.WithManager(mgr, icpts...),
		)
		if err != nil {
			return nil, err
		}
		elapsed, err := drive(obj, []string{"A", "B"}, per)
		_ = obj.Close()
		if err != nil {
			return nil, err
		}
		held := pr.peak["A"] <= 1 && pr.peak["B"] <= 1 && pr.peak["A"]+pr.peak["B"] <= 2
		table.AddRow("monitor", "Exclusive(A,B)", "≤1 inside", held, throughput(calls, elapsed))
	}

	// Serializer: per-entry concurrency limits.
	{
		pr := newProbe()
		mgr, icpts := policy.Concurrent(map[string]int{"A": 3, "B": 1})
		obj, err := alps.New("Ser",
			alps.WithEntry(alps.EntrySpec{Name: "A", Array: 8, Body: body(pr, "A", 50*time.Microsecond)}),
			alps.WithEntry(alps.EntrySpec{Name: "B", Array: 8, Body: body(pr, "B", 50*time.Microsecond)}),
			alps.WithManager(mgr, icpts...),
		)
		if err != nil {
			return nil, err
		}
		elapsed, err := drive(obj, []string{"A", "B"}, per)
		_ = obj.Close()
		if err != nil {
			return nil, err
		}
		held := pr.peak["A"] <= 3 && pr.peak["B"] <= 1
		table.AddRow("serializer", "Concurrent(A:3,B:1)", "limits kept", held, throughput(calls, elapsed))
	}

	// FIFO: strict arrival order.
	{
		pr := newProbe()
		mgr, icpts := policy.FIFO("A")
		obj, err := alps.New("Fifo",
			alps.WithEntry(alps.EntrySpec{Name: "A", Array: 8, Body: body(pr, "A", 0)}),
			alps.WithManager(mgr, icpts...),
		)
		if err != nil {
			return nil, err
		}
		elapsed, err := drive(obj, []string{"A"}, calls)
		_ = obj.Close()
		if err != nil {
			return nil, err
		}
		held := len(pr.log) == calls
		table.AddRow("fifo", "FIFO(A)", "all served 1-by-1", held, throughput(calls, elapsed))
	}

	// Path expression: strict alternation via "1:(deposit; remove)".
	{
		pr := newProbe()
		path, err := pathexpr.Compile("1:(deposit; remove)")
		if err != nil {
			return nil, err
		}
		mgr, icpts := path.Manager()
		obj, err := alps.New("Path",
			alps.WithEntry(alps.EntrySpec{Name: "deposit", Array: 4, Body: body(pr, "deposit", 0)}),
			alps.WithEntry(alps.EntrySpec{Name: "remove", Array: 4, Body: body(pr, "remove", 0)}),
			alps.WithManager(mgr, icpts...),
		)
		if err != nil {
			return nil, err
		}
		elapsed, err := drive(obj, []string{"deposit", "remove"}, per)
		_ = obj.Close()
		if err != nil {
			return nil, err
		}
		held := true
		for i, e := range pr.log {
			want := "deposit"
			if i%2 == 1 {
				want = "remove"
			}
			if e != want {
				held = false
				break
			}
		}
		table.AddRow("path expr", `"1:(deposit; remove)"`, "strict alternation", held, throughput(calls, elapsed))
	}
	return table, nil
}
