// Package experiments regenerates the paper's evaluation. The ICDCS 1988
// paper contains no numbered tables or figures — its evaluation is the
// worked examples of §2.4–2.8 and the implementation claims of §3 — so each
// experiment here reproduces one example or claim, with the conventional
// baseline the paper positions managers against. See DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for recorded results.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// Experiment is one runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(scale Scale) (*metrics.Table, error)
}

// Scale selects how much work each experiment does.
type Scale int

const (
	// Quick keeps the full suite under roughly a minute.
	Quick Scale = iota + 1
	// Full runs the sizes recorded in EXPERIMENTS.md.
	Full
)

// pick returns q under Quick and f under Full.
func pick(scale Scale, q, f int) int {
	if scale == Full {
		return f
	}
	return q
}

// All lists the experiments in order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Bounded buffer: manager vs monitor vs semaphore (§2.4.1)", Run: E1BoundedBuffer},
		{ID: "E2", Title: "Readers-writers: hidden array vs RWMutex (§2.5.1)", Run: E2ReadersWriters},
		{ID: "E3", Title: "Request combining in the dictionary (§2.7)", Run: E3Combining},
		{ID: "E4", Title: "Printer spooler: hidden params/results (§2.8.1)", Run: E4Spooler},
		{ID: "E5", Title: "Parallel vs serial bounded buffer (§2.8.2)", Run: E5ParallelBuffer},
		{ID: "E6", Title: "Nested calls: manager vs monitor deadlock (§2.3)", Run: E6NestedCalls},
		{ID: "E7", Title: "Process pools: one-to-one vs M«N vs spawn (§3)", Run: E7PoolSizing},
		{ID: "E8", Title: "Manager priority gate: accept latency (§3)", Run: E8PriorityGate},
		{ID: "E9", Title: "Run-time pri guards: SSTF disk scheduling (§2.4)", Run: E9DiskSchedule},
		{ID: "E10", Title: "Remote calls and remote combining (§1, §3)", Run: E10RemoteCalls},
		{ID: "E11", Title: "Monitors, serializers, path expressions as managers (§1)", Run: E11Generality},
		{ID: "E12", Title: "Remote calls over simulated transputer links (§4)", Run: E12SimulatedLinks},
		{ID: "E13", Title: "Parameter-based scheduling: allocator policies (§1)", Run: E13Allocator},
		{ID: "E14", Title: "Shard groups: managed-object scaling across managers", Run: E14ShardScaling},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// throughput formats ops over elapsed.
func throughput(ops int, elapsed time.Duration) string {
	return metrics.Rate(uint64(ops), elapsed)
}

// opsPerSec is the numeric form used for speedup columns.
func opsPerSec(ops int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// fmtFactor renders a ×-factor column.
func fmtFactor(f float64) string {
	return fmt.Sprintf("%.2fx", f)
}
