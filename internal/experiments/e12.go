package experiments

import (
	"fmt"
	"time"

	alps "repro"
	"repro/internal/metrics"
	"repro/internal/rpc"
	"repro/internal/simnet"
)

// E12SimulatedLinks (§4): the paper's runtime targeted a 16-node transputer
// network whose links have real latency. We run the rpc substrate over the
// simulated network and sweep the one-way link latency: client-observed
// call latency must track 2×link (request + response) plus the local
// service constant, confirming the simulation behaves like a network and
// the protocol adds no hidden round trips.
func E12SimulatedLinks(scale Scale) (*metrics.Table, error) {
	calls := pick(scale, 100, 500)
	table := metrics.NewTable(
		fmt.Sprintf("E12: remote echo over simulated links, %d calls per row", calls),
		"one-way link latency", "mean call latency", "minus 2x link", "throughput")

	for _, latency := range []time.Duration{0, 200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		obj, err := alps.New("Echo",
			alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 4,
				Body: func(inv *alps.Invocation) error {
					inv.Return(inv.Param(0))
					return nil
				}}),
		)
		if err != nil {
			return nil, err
		}
		node := rpc.NewNode("sim")
		if err := node.Publish(obj); err != nil {
			return nil, err
		}
		network := simnet.New(simnet.Config{Latency: latency})
		lis, err := network.Listen("sim")
		if err != nil {
			return nil, err
		}
		serveDone := make(chan struct{})
		go func() {
			defer close(serveDone)
			_ = node.Serve(lis)
		}()
		conn, err := network.Dial("sim")
		if err != nil {
			return nil, err
		}
		rem := rpc.DialConn(conn)

		hist := metrics.NewHistogram(0)
		start := time.Now()
		for i := 0; i < calls; i++ {
			t0 := time.Now()
			if _, err := rem.Call("Echo", "P", i); err != nil {
				return nil, err
			}
			hist.Observe(time.Since(t0))
		}
		elapsed := time.Since(start)

		rem.Close()
		node.Close()
		<-serveDone
		_ = obj.Close()

		mean := hist.Mean()
		overhead := mean - 2*latency
		table.AddRow(latency, mean, overhead, throughput(calls, elapsed))
	}
	return table, nil
}
