package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/metrics"
	"repro/internal/objects/buffer"
	"repro/internal/objects/dict"
	"repro/internal/objects/parbuffer"
	"repro/internal/objects/rwdb"
	"repro/internal/objects/spooler"
	"repro/internal/workload"
)

// E1BoundedBuffer (§2.4.1): one producer and one consumer stream items
// through a bounded buffer of N slots. The ALPS manager centralizes the
// scheduling; the monitor and semaphore baselines scatter it. The expected
// shape: all three are correct, and the manager pays a bounded constant
// factor for centralization.
func E1BoundedBuffer(scale Scale) (*metrics.Table, error) {
	items := pick(scale, 5_000, 50_000)
	table := metrics.NewTable(
		fmt.Sprintf("E1: bounded buffer, 1 producer + 1 consumer, %d items", items),
		"impl", "N", "throughput", "per item", "vs monitor")

	for _, n := range []int{1, 8, 64} {
		monOps := 0.0
		for _, impl := range []string{"monitor", "semaphore", "alps-manager"} {
			elapsed, err := runE1(impl, n, items)
			if err != nil {
				return nil, err
			}
			ops := opsPerSec(items, elapsed)
			if impl == "monitor" {
				monOps = ops
			}
			perItem := (elapsed / time.Duration(items)).Round(10 * time.Nanosecond)
			table.AddRow(impl, n, throughput(items, elapsed), perItem.String(),
				fmtFactor(ops/monOps))
		}
	}
	return table, nil
}

func runE1(impl string, n, items int) (time.Duration, error) {
	var deposit func(v any) error
	var remove func() (any, error)
	var cleanup func()

	switch impl {
	case "monitor":
		b := baseline.NewMonitorBuffer(n)
		deposit = b.Deposit
		remove = b.Remove
		cleanup = b.Close
	case "semaphore":
		b := baseline.NewSemaphoreBuffer(n)
		deposit = func(v any) error { b.Deposit(v); return nil }
		remove = func() (any, error) { return b.Remove(), nil }
		cleanup = func() {}
	case "alps-manager":
		b, err := buffer.New(n)
		if err != nil {
			return 0, err
		}
		deposit = b.Deposit
		remove = b.Remove
		cleanup = func() { _ = b.Close() }
	default:
		return 0, fmt.Errorf("unknown impl %q", impl)
	}
	defer cleanup()

	start := time.Now()
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < items; i++ {
			if err := deposit(i); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for i := 0; i < items; i++ {
		v, err := remove()
		if err != nil {
			return 0, err
		}
		if v != i {
			return 0, fmt.Errorf("%s: FIFO violated at %d (got %v)", impl, i, v)
		}
	}
	if err := <-errCh; err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// E2ReadersWriters (§2.5.1): K clients issue a 90/10 read/write mix against
// the managed database and the RWMutex baseline, with simulated I/O inside
// the critical sections. The shape: read throughput grows with ReadMax
// (hidden-array concurrency), safety violations are zero, and the baseline
// with the same reader bound behaves comparably.
func E2ReadersWriters(scale Scale) (*metrics.Table, error) {
	var (
		ops       = pick(scale, 400, 4_000)
		clients   = 8
		readCost  = 200 * time.Microsecond
		writeCost = 500 * time.Microsecond
		writeFrac = 0.1
	)
	table := metrics.NewTable(
		fmt.Sprintf("E2: readers-writers, %d clients, %d ops, 10%% writes, read %v / write %v",
			clients, ops, readCost, writeCost),
		"impl", "ReadMax", "throughput", "peak readers", "violations")

	for _, readMax := range []int{1, 4, 16} {
		db, err := rwdb.New(rwdb.Config{ReadMax: readMax, ReadCost: readCost, WriteCost: writeCost})
		if err != nil {
			return nil, err
		}
		elapsed, err := driveMix(clients, ops, writeFrac, func(key int) error {
			_, _, err := db.Read(key)
			return err
		}, func(key, val int) error {
			return db.Write(key, val)
		})
		if err != nil {
			_ = db.Close()
			return nil, err
		}
		peak, violations := db.Stats()
		_ = db.Close()
		table.AddRow("alps-rwdb", readMax, throughput(ops, elapsed), peak, violations)

		base := baseline.NewBoundedRWDBCost(readMax, readCost, writeCost)
		elapsed, err = driveMix(clients, ops, writeFrac, func(key int) error {
			base.Read(key)
			return nil
		}, func(key, val int) error {
			base.Write(key, val)
			return nil
		})
		if err != nil {
			return nil, err
		}
		table.AddRow("rwmutex", readMax, throughput(ops, elapsed), "-", "-")
	}
	return table, nil
}

// driveMix runs a closed-loop read/write mix across clients.
func driveMix(clients, totalOps int, writeFrac float64, read func(int) error, write func(int, int) error) (time.Duration, error) {
	per := totalOps / clients
	start := time.Now()
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mix, err := workload.NewOpMix(uint64(c)+1, 32, writeFrac)
			if err != nil {
				errCh <- err
				return
			}
			for i := 0; i < per; i++ {
				op := mix.Next()
				if op.Write {
					err = write(op.Key, op.Value)
				} else {
					err = read(op.Key)
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return time.Since(start), nil
}

// E3Combining (§2.7): clients query a slow dictionary with uniform and
// Zipf-skewed word streams. The shape: with duplication, combining executes
// far fewer searches than it answers requests and wins wall-clock time; on
// a duplicate-free workload it costs nothing material.
func E3Combining(scale Scale) (*metrics.Table, error) {
	var (
		requests   = pick(scale, 240, 2_000)
		clients    = 12
		searchMax  = 24 // hidden array: all concurrent requests visible to the manager
		maxActive  = 2  // database bandwidth: simultaneous search executions
		searchCost = time.Millisecond
	)
	table := metrics.NewTable(
		fmt.Sprintf("E3: dictionary, %d clients, %d requests, %d search processors, %v/search",
			clients, requests, maxActive, searchCost),
		"impl", "workload", "dup ratio", "executions", "elapsed", "vs no-combine")

	workloads := []struct {
		name  string
		vocab int
		skew  float64
	}{
		{"uniform-4096", 4096, 0},
		{"zipf1.1-16", 16, 1.1},
	}
	for _, wl := range workloads {
		dup, err := workload.DuplicationRatio(99, wl.vocab, wl.skew, requests)
		if err != nil {
			return nil, err
		}
		var noCombine float64
		for _, combine := range []bool{false, true} {
			d, err := dict.New(dict.Options{
				SearchMax:  searchMax,
				MaxActive:  maxActive,
				SearchCost: searchCost,
				Combine:    combine,
			})
			if err != nil {
				return nil, err
			}
			elapsed, err := driveWords(d.Search, clients, requests, wl.vocab, wl.skew)
			if err != nil {
				_ = d.Close()
				return nil, err
			}
			_, executions, _ := d.Stats()
			_ = d.Close()
			ops := opsPerSec(requests, elapsed)
			name := "no-combine"
			if combine {
				name = "alps-combine"
			} else {
				noCombine = ops
			}
			table.AddRow(name, wl.name, fmt.Sprintf("%.2f", dup), executions,
				elapsed.Round(time.Millisecond), fmtFactor(ops/noCombine))
		}
		// Modern Go idiom for the same trick, for perspective (unbounded
		// concurrency, so not an apples-to-apples elapsed comparison).
		sf := baseline.NewSingleFlightDict(searchCost)
		elapsed, err := driveWords(func(w string) (string, error) { return sf.Search(w), nil },
			clients, requests, wl.vocab, wl.skew)
		if err != nil {
			return nil, err
		}
		table.AddRow("singleflight", wl.name, fmt.Sprintf("%.2f", dup), sf.Searches(),
			elapsed.Round(time.Millisecond), fmtFactor(opsPerSec(requests, elapsed)/noCombine))
	}
	return table, nil
}

func driveWords(search func(string) (string, error), clients, requests, vocab int, skew float64) (time.Duration, error) {
	per := requests / clients
	start := time.Now()
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ws, err := workload.NewWordStream(uint64(c)+7, vocab, skew)
			if err != nil {
				errCh <- err
				return
			}
			for i := 0; i < per; i++ {
				word := ws.Next()
				got, err := search(word)
				if err != nil {
					errCh <- err
					return
				}
				if got == "" {
					errCh <- fmt.Errorf("empty meaning for %q", word)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return time.Since(start), nil
}

// E4Spooler (§2.8.1): jobs with varying sizes over printer pools. The
// shape: zero double-allocations, all printers utilized, and elapsed time
// shrinking roughly with pool size.
func E4Spooler(scale Scale) (*metrics.Table, error) {
	var (
		jobs     = pick(scale, 60, 400)
		pageCost = 500 * time.Microsecond
	)
	table := metrics.NewTable(
		fmt.Sprintf("E4: spooler, %d jobs, 1-5 pages, %v/page", jobs, pageCost),
		"printers", "elapsed", "throughput", "min/printer", "max/printer", "violations")

	for _, printers := range []int{1, 2, 4} {
		s, err := spooler.New(spooler.Config{Printers: printers, PrintMax: 4 * printers, PageCost: pageCost})
		if err != nil {
			return nil, err
		}
		sizes, err := workload.NewJobSizes(3, 1, 5)
		if err != nil {
			_ = s.Close()
			return nil, err
		}
		pages := make([]int, jobs)
		for i := range pages {
			pages[i] = sizes.Next()
		}
		start := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, jobs)
		for i := 0; i < jobs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := s.Print(fmt.Sprintf("job-%d", i), pages[i]); err != nil {
					errCh <- err
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errCh:
			_ = s.Close()
			return nil, err
		default:
		}
		_, per, violations := s.Stats()
		_ = s.Close()
		minJ, maxJ := per[0], per[0]
		for _, v := range per {
			if v < minJ {
				minJ = v
			}
			if v > maxJ {
				maxJ = v
			}
		}
		table.AddRow(printers, elapsed.Round(time.Millisecond), throughput(jobs, elapsed), minJ, maxJ, violations)
	}
	return table, nil
}

// E5ParallelBuffer (§2.8.2): producers and consumers move messages with a
// simulated long copy through the parallel buffer versus the serial §2.4.1
// buffer. The shape: the serial buffer's elapsed time is about
// items × 2 × copyCost regardless of parallelism, while the parallel
// buffer's shrinks as producers/consumers grow.
func E5ParallelBuffer(scale Scale) (*metrics.Table, error) {
	var (
		items    = pick(scale, 64, 512)
		copyCost = time.Millisecond
		slots    = 16
	)
	table := metrics.NewTable(
		fmt.Sprintf("E5: buffer with %v message copies, %d items, %d slots", copyCost, items, slots),
		"impl", "producers=consumers", "elapsed", "throughput", "vs serial")

	for _, k := range []int{1, 4} {
		serial, err := buffer.NewCost(slots, copyCost)
		if err != nil {
			return nil, err
		}
		elapsedSerial, err := driveBuffer(serial.Deposit, serial.Remove, k, items)
		_ = serial.Close()
		if err != nil {
			return nil, err
		}
		serialOps := opsPerSec(items, elapsedSerial)
		table.AddRow("serial (§2.4.1)", k, elapsedSerial.Round(time.Millisecond),
			throughput(items, elapsedSerial), fmtFactor(1))

		par, err := parbuffer.New(parbuffer.Config{
			Slots: slots, ProducerMax: k, ConsumerMax: k, CopyCost: copyCost,
		})
		if err != nil {
			return nil, err
		}
		elapsedPar, err := driveBuffer(par.Deposit, par.Remove, k, items)
		if err != nil {
			_ = par.Close()
			return nil, err
		}
		_, _, violations := par.Stats()
		_ = par.Close()
		if violations != 0 {
			return nil, fmt.Errorf("parbuffer: %d slot violations", violations)
		}
		table.AddRow("parallel (§2.8.2)", k, elapsedPar.Round(time.Millisecond),
			throughput(items, elapsedPar), fmtFactor(opsPerSec(items, elapsedPar)/serialOps))
	}
	return table, nil
}

func driveBuffer(deposit func(any) error, remove func() (any, error), k, items int) (time.Duration, error) {
	per := items / k
	start := time.Now()
	errCh := make(chan error, 2*k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := deposit([2]int{p, i}); err != nil {
					errCh <- err
					return
				}
			}
		}(p)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := remove(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return time.Since(start), nil
}
