package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/objects/allocator"
	"repro/internal/workload"
)

// E13Allocator (§1): scheduling "based on the invocation parameters". A
// counting allocator serves a stream of small requests while occasional
// whole-pool requests arrive. The policy trade-off the manager expresses
// in one line each: FirstFit maximizes utilization but can starve the
// large requests behind the small stream; Ordered admits in arrival order,
// bounding the large request's wait at the cost of idling units.
func E13Allocator(scale Scale) (*metrics.Table, error) {
	var (
		units     = 8
		smallOps  = pick(scale, 300, 1_500) // per small worker
		workers   = 6
		largeOnes = 5
		holdTime  = 300 * time.Microsecond
	)
	table := metrics.NewTable(
		fmt.Sprintf("E13: allocator, %d units, %d small workers, %d whole-pool requests",
			units, workers, largeOnes),
		"policy", "small throughput", "peak util", "mean large wait", "max large wait", "violations")

	for _, pol := range []struct {
		name string
		p    allocator.Policy
	}{
		{"first-fit", allocator.FirstFit},
		{"ordered", allocator.Ordered},
	} {
		a, err := allocator.New(allocator.Config{Units: units, Policy: pol.p, AcquireMax: 64})
		if err != nil {
			return nil, err
		}

		var wg sync.WaitGroup
		errCh := make(chan error, workers+largeOnes)
		start := time.Now()

		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := workload.NewRNG(uint64(w) + 21)
				for i := 0; i < smallOps; i++ {
					n := rng.Intn(2) + 1
					if err := a.Acquire(n); err != nil {
						errCh <- err
						return
					}
					time.Sleep(holdTime)
					if err := a.Release(n); err != nil {
						errCh <- err
						return
					}
				}
			}(w)
		}

		largeWaits := make(chan time.Duration, largeOnes)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < largeOnes; i++ {
				time.Sleep(5 * time.Millisecond)
				t0 := time.Now()
				if err := a.Acquire(units); err != nil {
					errCh <- err
					return
				}
				largeWaits <- time.Since(t0)
				if err := a.Release(units); err != nil {
					errCh <- err
					return
				}
			}
		}()
		wg.Wait()
		elapsed := time.Since(start)
		close(largeWaits)
		select {
		case err := <-errCh:
			_ = a.Close()
			return nil, err
		default:
		}
		var sum, max time.Duration
		n := 0
		for d := range largeWaits {
			sum += d
			if d > max {
				max = d
			}
			n++
		}
		mean := time.Duration(0)
		if n > 0 {
			mean = sum / time.Duration(n)
		}
		peak, violations := a.Stats()
		_ = a.Close()
		table.AddRow(pol.name, throughput(workers*smallOps, elapsed),
			fmt.Sprintf("%d/%d", peak, units), mean, max, violations)
	}
	return table, nil
}
