package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// seedFrames builds a few well-formed frames plus the mutations the decoder
// must survive: truncated tails, flipped CRC bytes, oversized lengths.
func seedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := appendRecord(&buf, &Record{
		Kind: KindOutcome, Object: "kv", Entry: "Write",
		CallID: 42, Params: []any{1, 2}, Results: []any{"ok"},
	}); err != nil {
		tb.Fatal(err)
	}
	good := append([]byte(nil), buf.Bytes()...)

	seeds := [][]byte{good, {}, good[:3]}
	// Truncated tails at every interesting boundary.
	for _, cut := range []int{recHeaderLen - 1, recHeaderLen, recHeaderLen + 1, len(good) - 1} {
		if cut >= 0 && cut < len(good) {
			seeds = append(seeds, good[:cut])
		}
	}
	// Flipped CRC byte.
	bad := append([]byte(nil), good...)
	bad[5] ^= 0x01
	seeds = append(seeds, bad)
	// Flipped payload byte (CRC now mismatches).
	bad2 := append([]byte(nil), good...)
	bad2[recHeaderLen] ^= 0xff
	seeds = append(seeds, bad2)
	// Oversized / zero lengths.
	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge[0:4], maxRecordLen+1)
	seeds = append(seeds, huge)
	zero := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(zero[0:4], 0)
	seeds = append(seeds, zero)
	return seeds
}

// FuzzDecodeRecord asserts the record decoder never panics, never
// over-reads, and classifies every failure as either a torn tail
// (io.ErrUnexpectedEOF) or corruption (ErrCorrupt).
func FuzzDecodeRecord(f *testing.F) {
	for _, s := range seedFrames(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if err != nil {
			if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if rec == nil || !rec.Kind.valid() {
			t.Fatalf("nil or invalid record decoded without error: %+v", rec)
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// A decoded record must re-encode; round-tripping must agree.
		var buf bytes.Buffer
		if err := appendRecord(&buf, rec); err != nil {
			t.Fatalf("re-encode decoded record: %v", err)
		}
		rec2, _, err := decodeRecord(buf.Bytes())
		if err != nil {
			t.Fatalf("decode re-encoded record: %v", err)
		}
		if rec2.Kind != rec.Kind || rec2.Object != rec.Object || rec2.Entry != rec.Entry ||
			rec2.Client != rec.Client || rec2.Seq != rec.Seq {
			t.Fatalf("round trip mismatch: %+v vs %+v", rec, rec2)
		}
	})
}

func seedSnapshots(tb testing.TB) [][]byte {
	tb.Helper()
	good, err := encodeSnapshot(&Snapshot{
		LSN:     17,
		Objects: map[string][]byte{"kv": {1, 2, 3}},
		Dedup:   []AckEntry{{Client: "c", Seq: 9, Results: []any{3}}},
	})
	if err != nil {
		tb.Fatal(err)
	}
	seeds := [][]byte{good, {}, good[:recHeaderLen-1], good[:len(good)-1]}
	bad := append([]byte(nil), good...)
	bad[4] ^= 0x10
	seeds = append(seeds, bad)
	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge[0:4], maxRecordLen+1)
	seeds = append(seeds, huge)
	return seeds
}

// FuzzDecodeSnapshot asserts the snapshot decoder never panics and
// classifies all damage.
func FuzzDecodeSnapshot(f *testing.F) {
	for _, s := range seedSnapshots(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if s == nil {
			t.Fatal("nil snapshot decoded without error")
		}
		// Round trip.
		data2, err := encodeSnapshot(s)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		s2, err := decodeSnapshot(data2)
		if err != nil {
			t.Fatalf("decode re-encoded snapshot: %v", err)
		}
		if s2.LSN != s.LSN || len(s2.Objects) != len(s.Objects) || len(s2.Dedup) != len(s.Dedup) {
			t.Fatalf("round trip mismatch: %+v vs %+v", s, s2)
		}
	})
}
