package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// JournalOptions configures one object's journal.
type JournalOptions struct {
	// Skip excludes an entry from the durable ledger (read-only entries,
	// the snapshot entry itself). Skipped entries cost nothing on the hot
	// path and are re-executed, not replayed, if retried across a crash.
	Skip func(entry string) bool
	// Wait makes WaitDurable block local awaiters until the outcome record
	// is synced. Leave false when the object is served over rpc: the ack
	// record is appended after the outcome in the same log, so the rpc
	// layer's single pre-response sync covers both and the extra wait here
	// would just double the fsyncs.
	Wait bool
}

// RecoverHooks are the object-side callbacks for crash recovery and
// snapshots. All three operate on the object's public call surface; the
// wal layer never sees object internals.
type RecoverHooks struct {
	// Restore loads a state blob captured by Snapshot, before replay.
	Restore func(data []byte) error
	// Replay re-executes one journaled successful outcome.
	Replay func(entry string, params []any) error
	// Snapshot captures the object's state for future checkpoints
	// (typically by calling a manager-exclusive entry so the blob is
	// consistent). Nil disables state snapshots for this object; its
	// records are then never pruned and recovery is pure replay.
	Snapshot func() ([]byte, error)
}

// ObjectJournal journals one object's call outcomes. It satisfies
// core.Journal structurally; core never imports this package, mirroring
// how core.Sequencer keeps the disabled path a nil field check.
type ObjectJournal struct {
	s    *Store
	name string
	opts JournalOptions

	replaying atomic.Bool

	mu   sync.Mutex
	snap func() ([]byte, error)
	// err is sticky: once an append fails the journal reports it from
	// WaitDurable so no caller acknowledges a transition that never hit
	// the log.
	err error
}

// Journal creates (or returns) the journal for the named object. Create
// the object with this journal in its ObjectOptions, then call Recover
// before serving traffic.
func (s *Store) Journal(name string, opts JournalOptions) *ObjectJournal {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.journals[name]; ok {
		return j
	}
	j := &ObjectJournal{s: s, name: name, opts: opts}
	s.journals[name] = j
	return j
}

func (j *ObjectJournal) skips(entry string) bool {
	return j.opts.Skip != nil && j.opts.Skip(entry)
}

func (j *ObjectJournal) snapshotHook() func() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snap
}

// Recover restores the object from the newest snapshot and replays every
// journaled outcome above its floor, in LSN order. Outcomes recorded while
// replaying are suppressed (the log already has them). It returns the
// number of records replayed.
func (j *ObjectJournal) Recover(h RecoverHooks) (int, error) {
	j.s.mu.Lock()
	blob, hasBlob := j.s.snapState[j.name]
	pending := j.s.byObject[j.name]
	delete(j.s.byObject, j.name)
	j.s.mu.Unlock()

	j.replaying.Store(true)
	defer j.replaying.Store(false)

	if hasBlob && h.Restore != nil {
		if err := h.Restore(blob); err != nil {
			return 0, fmt.Errorf("wal: restore %s: %w", j.name, err)
		}
	}
	replayed := 0
	if h.Replay != nil {
		for _, r := range pending {
			if err := h.Replay(r.Entry, r.Params); err != nil {
				return replayed, fmt.Errorf("wal: replay %s.%s (lsn %d): %w", j.name, r.Entry, r.LSN, err)
			}
			replayed++
		}
	}

	j.mu.Lock()
	j.snap = h.Snapshot
	j.mu.Unlock()
	return replayed, nil
}

// RecordOutcome implements core.Journal: journal one delivered call
// outcome and return the LSN local awaiters should wait on (0 = nothing to
// wait for). Failed calls are not journaled — they made no state
// transition to replay; their response, if any, travels in the rpc ack
// record instead.
func (j *ObjectJournal) RecordOutcome(entry string, callID uint64, params, results []any, callErr error) uint64 {
	if callErr != nil || j.replaying.Load() || j.skips(entry) {
		return 0
	}
	lsn, err := j.s.append(&Record{
		Kind:    KindOutcome,
		Object:  j.name,
		Entry:   entry,
		CallID:  callID,
		Params:  params,
		Results: results,
	})
	if err != nil {
		j.mu.Lock()
		j.err = err
		j.mu.Unlock()
		return 0
	}
	if !j.opts.Wait {
		return 0
	}
	return lsn
}

// WaitDurable implements core.Journal: block until lsn is on stable
// storage (or report the journal's sticky append error).
func (j *ObjectJournal) WaitDurable(lsn uint64) error {
	j.mu.Lock()
	err := j.err
	j.mu.Unlock()
	if err != nil {
		return err
	}
	if lsn == 0 {
		return nil
	}
	return j.s.WaitSynced(lsn)
}

// Err reports the journal's sticky append error, if any (diagnostics).
func (j *ObjectJournal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
