package wal

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// FailFS is an in-memory filesystem with a power-loss failpoint: every file
// tracks how many of its bytes have been made durable by Sync, and Crash
// discards everything volatile — unsynced bytes (optionally leaving a torn
// prefix of them, as a real disk may persist part of a block) and
// directory-level operations not yet pinned by SyncDir. Crash tests write
// through a FailFS, pull the plug, and recover from what a real disk would
// have kept.
type FailFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	// dirDirty tracks files created, renamed-in or removed since the last
	// SyncDir of their directory; on Crash, un-pinned creations vanish and
	// un-pinned removals resurrect the durable content.
	dirDirty map[string]dirOp
	// TornTail, when n > 0, makes Crash keep up to n bytes of each file's
	// unsynced suffix — a torn write for the recovery path to truncate.
	TornTail int

	syncs   int // fsync count, for assertions
	crashes int
}

type dirOp int

const (
	dirCreated dirOp = iota + 1
	dirRemoved
)

type memFile struct {
	data   []byte
	synced int  // prefix length made durable by Sync
	open   bool // an unclosed writer handle exists
}

// NewFailFS creates an empty failpoint filesystem.
func NewFailFS() *FailFS {
	return &FailFS{files: make(map[string]*memFile), dirDirty: make(map[string]dirOp)}
}

type failFile struct {
	fs   *FailFS
	name string
}

func (f *failFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	mf, ok := f.fs.files[f.name]
	if !ok {
		return 0, fmt.Errorf("wal: failfs: write %s: file vanished", f.name)
	}
	mf.data = append(mf.data, p...)
	return len(p), nil
}

func (f *failFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if mf, ok := f.fs.files[f.name]; ok {
		mf.synced = len(mf.data)
	}
	f.fs.syncs++
	return nil
}

func (f *failFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if mf, ok := f.fs.files[f.name]; ok {
		mf.open = false
	}
	return nil
}

// Create implements FS.
func (fs *FailFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = &memFile{open: true}
	fs.markDirtyLocked(name, dirCreated)
	return &failFile{fs: fs, name: name}, nil
}

// Append implements FS.
func (fs *FailFS) Append(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		fs.files[name] = &memFile{}
		fs.markDirtyLocked(name, dirCreated)
	}
	fs.files[name].open = true
	return &failFile{fs: fs, name: name}, nil
}

// Open implements FS.
func (fs *FailFS) Open(name string) (io.ReadCloser, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	mf, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: failfs: open %s: no such file", name)
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), mf.data...))), nil
}

// List implements FS.
func (fs *FailFS) List(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], "/") {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS. The rename itself becomes durable at the next
// SyncDir (or is already durable if the target directory has no pending
// operations and the source was durable — modelled conservatively: the new
// name is dirty until SyncDir).
func (fs *FailFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	mf, ok := fs.files[oldname]
	if !ok {
		return fmt.Errorf("wal: failfs: rename %s: no such file", oldname)
	}
	delete(fs.files, oldname)
	fs.files[newname] = mf
	fs.markDirtyLocked(newname, dirCreated)
	fs.markDirtyLocked(oldname, dirRemoved)
	return nil
}

// Remove implements FS.
func (fs *FailFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("wal: failfs: remove %s: no such file", name)
	}
	delete(fs.files, name)
	fs.markDirtyLocked(name, dirRemoved)
	return nil
}

// Truncate implements FS.
func (fs *FailFS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	mf, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("wal: failfs: truncate %s: no such file", name)
	}
	if int(size) < len(mf.data) {
		mf.data = mf.data[:size]
	}
	if mf.synced > len(mf.data) {
		mf.synced = len(mf.data)
	}
	return nil
}

// MkdirAll implements FS.
func (fs *FailFS) MkdirAll(string) error { return nil }

// SyncDir implements FS: pins every pending create/rename/remove in dir.
func (fs *FailFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	for name := range fs.dirDirty {
		if strings.HasPrefix(name, prefix) {
			delete(fs.dirDirty, name)
		}
	}
	fs.syncs++
	return nil
}

func (fs *FailFS) markDirtyLocked(name string, op dirOp) {
	// A remove of a file whose creation was never pinned cancels out; any
	// other sequence collapses to the latest operation.
	if op == dirRemoved {
		if prev, ok := fs.dirDirty[name]; ok && prev == dirCreated {
			delete(fs.dirDirty, name)
			return
		}
	}
	fs.dirDirty[name] = op
}

// Crash simulates power loss: unsynced bytes are dropped (up to TornTail of
// them survive as a torn tail), files whose creation was never pinned by
// SyncDir vanish, and unpinned removals are ignored (the file's durable
// bytes were already gone from our map — a conservative model: we treat an
// unpinned remove as durable, which only makes recovery harder). Open
// handles are invalidated.
func (fs *FailFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashes++
	for name, op := range fs.dirDirty {
		if op == dirCreated {
			delete(fs.files, name)
		}
		delete(fs.dirDirty, name)
	}
	for _, mf := range fs.files {
		keep := mf.synced
		if fs.TornTail > 0 && len(mf.data) > keep {
			torn := len(mf.data) - keep
			if torn > fs.TornTail {
				torn = fs.TornTail
			}
			keep += torn
		}
		mf.data = mf.data[:keep]
		if mf.synced > keep {
			mf.synced = keep
		}
		mf.open = false
	}
}

// Syncs reports how many fsync-class operations have run.
func (fs *FailFS) Syncs() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.syncs
}

// bytesOf reports a file's current contents (tests only).
func (fs *FailFS) bytesOf(name string) []byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if mf, ok := fs.files[name]; ok {
		return append([]byte(nil), mf.data...)
	}
	return nil
}
