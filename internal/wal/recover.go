package wal

import (
	"errors"
	"fmt"
	"io"
	"path"
	"strings"
	"time"
)

// Recovered is what a crashed process left behind: the newest snapshot (if
// any), every record above its floor in LSN order, and the repair stats the
// daemon logs at startup.
type Recovered struct {
	// Snapshot is the newest durable snapshot, nil on a cold start.
	Snapshot *Snapshot
	// Records holds every log record above the snapshot floor, in LSN
	// order: the replay work list.
	Records []*Record
	// LastLSN is the highest LSN known to the store (snapshot floor or last
	// record, whichever is greater); appending resumes above it.
	LastLSN uint64
	// TornBytes counts bytes truncated from the final segment's torn tail.
	TornBytes int64
	// Segments counts log segments scanned.
	Segments int
	// Duration is the wall time recovery took (scan + truncate, not
	// replay).
	Duration time.Duration
}

// Open recovers the WAL directory and returns a Log positioned to append
// after everything that survived, plus the recovered state to replay.
//
// Recovery protocol:
//  1. Drop leftover *.tmp files (snapshots that never published).
//  2. Load the newest snapshot; older snapshots are pruned.
//  3. Scan segments in LSN order, CRC-checking every record. A short or
//     corrupt record in the FINAL segment is a torn write: truncate it and
//     keep everything before it. The same damage in any earlier segment is
//     data loss (sealed segments were fsynced before rotation) and fails
//     recovery rather than silently dropping acknowledged history.
//  4. Verify LSN continuity from the snapshot floor.
func Open(dir string, opts Options) (*Log, *Recovered, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	start := time.Now()
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}

	names, err := fs.List(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			_ = fs.Remove(path.Join(dir, name))
		}
	}

	rec := &Recovered{}

	// Newest snapshot wins; prune the rest (and any that fail to decode —
	// they were published atomically, so damage means the file is garbage,
	// and an older intact snapshot plus the un-pruned log still recovers).
	snaps, err := listSorted(fs, dir, snapPrefix, snapSuffix)
	if err != nil {
		return nil, nil, err
	}
	var snapLSN uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		if rec.Snapshot != nil {
			_ = fs.Remove(path.Join(dir, snaps[i].name))
			continue
		}
		s, err := readSnapshot(fs, dir, snaps[i].name)
		if err != nil {
			_ = fs.Remove(path.Join(dir, snaps[i].name))
			continue
		}
		rec.Snapshot = s
		snapLSN = s.LSN
	}

	segs, err := listSorted(fs, dir, segPrefix, segSuffix)
	if err != nil {
		return nil, nil, err
	}
	rec.Segments = len(segs)
	lastLSN := snapLSN
	for i, seg := range segs {
		final := i == len(segs)-1
		recs, goodLen, total, err := scanSegment(fs, dir, seg)
		if err != nil {
			if !final {
				return nil, nil, fmt.Errorf("wal: segment %s: %w (damage before the final segment is data loss)", seg.name, err)
			}
			// Torn tail: keep the valid prefix, and make the truncation
			// itself durable — this segment will no longer be final once a
			// fresh one opens, and damage in a non-final segment fails the
			// NEXT recovery.
			rec.TornBytes = total - goodLen
			if err := fs.Truncate(path.Join(dir, seg.name), goodLen); err != nil {
				return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", seg.name, err)
			}
			if f, err := fs.Append(path.Join(dir, seg.name)); err == nil {
				serr := f.Sync()
				cerr := f.Close()
				if serr != nil || cerr != nil {
					return nil, nil, fmt.Errorf("wal: sync truncated %s: sync=%v close=%v", seg.name, serr, cerr)
				}
			}
		}
		// Continuity: this segment must start exactly where history left
		// off (pruning only removes fully covered segments).
		if len(recs) > 0 {
			if recs[0].LSN <= snapLSN {
				// Covered by the snapshot (prune raced a crash); skip those.
				for len(recs) > 0 && recs[0].LSN <= snapLSN {
					recs = recs[1:]
				}
			}
		}
		for _, r := range recs {
			if r.LSN != lastLSN+1 {
				return nil, nil, fmt.Errorf("wal: segment %s: LSN gap (have %d, want %d)", seg.name, r.LSN, lastLSN+1)
			}
			lastLSN = r.LSN
			rec.Records = append(rec.Records, r)
		}
	}
	rec.LastLSN = lastLSN

	// Drop the trailing segment from the bookkeeping list if we are about
	// to recreate it under the same name (an empty tail segment from a
	// previous clean start).
	if n := len(segs); n > 0 && segs[n-1].first == lastLSN+1 {
		segs = segs[:n-1]
	}

	l, err := openLog(dir, opts, lastLSN, segs, snapLSN)
	if err != nil {
		return nil, nil, err
	}
	rec.Duration = time.Since(start)
	return l, rec, nil
}

// scanSegment decodes every record in one segment. It returns the records
// decoded, the byte offset of the end of the last good record, the
// segment's total size, and a non-nil error if the tail failed to decode
// (io.ErrUnexpectedEOF for a short frame, ErrCorrupt for a mangled one).
func scanSegment(fs FS, dir string, seg segmentInfo) ([]*Record, int64, int64, error) {
	r, err := fs.Open(path.Join(dir, seg.name))
	if err != nil {
		return nil, 0, 0, err
	}
	data, err := io.ReadAll(r)
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, 0, 0, err
	}
	var (
		recs []*Record
		off  int64
		next = seg.first
	)
	for int(off) < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrCorrupt) {
				return recs, off, int64(len(data)), err
			}
			return recs, off, int64(len(data)), fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		rec.LSN = next
		next++
		off += int64(n)
		recs = append(recs, rec)
	}
	return recs, off, int64(len(data)), nil
}
