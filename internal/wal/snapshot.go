package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"path"
)

// Snapshot is a durable checkpoint: opaque per-object state plus the node's
// completed at-most-once table, with the log position the state is known to
// cover.
//
// The floor is FUZZY: the LSN is read before object state is collected, so
// state may already include the effects of records above it. Recovery
// replays every record above the floor, which makes replay at-least-once in
// that window — journaled entries must therefore be replay-idempotent
// (last-write-wins updates are; counters that increment blindly are not).
// See docs/DURABILITY.md.
type Snapshot struct {
	// LSN is the floor: every record at or below it is covered by this
	// snapshot and its segment may be pruned.
	LSN uint64
	// Objects maps object name to the opaque state blob its Snapshot hook
	// produced (decoded by its Restore hook).
	Objects map[string][]byte
	// Dedup is the completed at-most-once table at snapshot time.
	Dedup []AckEntry
}

// AckEntry is one completed (client, seq) response preserved across
// restarts so a retry is answered from disk, never re-executed.
type AckEntry struct {
	Client  string
	Seq     uint64
	Results []any
	ErrMsg  string
	ErrKind int32
}

func snapshotName(lsn uint64) string { return fmt.Sprintf("%s%016d%s", snapPrefix, lsn, snapSuffix) }

// encodeSnapshot frames a snapshot exactly like a log record
// (uint32 length | uint32 crc32c | gob payload) so the decoder shares the
// corruption taxonomy.
func encodeSnapshot(s *Snapshot) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return nil, fmt.Errorf("wal: encode snapshot: %w", err)
	}
	out := make([]byte, recHeaderLen+payload.Len())
	binary.LittleEndian.PutUint32(out[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload.Bytes(), crcTable))
	copy(out[recHeaderLen:], payload.Bytes())
	return out, nil
}

// decodeSnapshot is the inverse of encodeSnapshot. A short or mangled
// buffer returns io.ErrUnexpectedEOF or ErrCorrupt; the atomic-rename
// publish protocol means either indicates real damage, not a torn write.
func decodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < recHeaderLen {
		return nil, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n == 0 || n > maxRecordLen {
		return nil, fmt.Errorf("%w: implausible snapshot length %d", ErrCorrupt, n)
	}
	if len(data) < recHeaderLen+int(n) {
		return nil, io.ErrUnexpectedEOF
	}
	payload := data[recHeaderLen : recHeaderLen+int(n)]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(data[4:8]); got != want {
		return nil, fmt.Errorf("%w: snapshot crc mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: snapshot payload: %v", ErrCorrupt, err)
	}
	return &s, nil
}

// writeSnapshot publishes s atomically: write + fsync a temporary file,
// rename it to its final name, fsync the directory. A crash at any point
// leaves either the old snapshot set or the new one — never a torn file
// under the final name.
func writeSnapshot(fs FS, dir string, s *Snapshot) (string, error) {
	data, err := encodeSnapshot(s)
	if err != nil {
		return "", err
	}
	final := snapshotName(s.LSN)
	tmp := path.Join(dir, final+tmpSuffix)
	f, err := fs.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("wal: create snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return "", fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return "", fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("wal: close snapshot: %w", err)
	}
	if err := fs.Rename(tmp, path.Join(dir, final)); err != nil {
		return "", fmt.Errorf("wal: publish snapshot: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return "", fmt.Errorf("wal: sync dir: %w", err)
	}
	return final, nil
}

// readSnapshot loads the named snapshot file.
func readSnapshot(fs FS, dir, name string) (*Snapshot, error) {
	r, err := fs.Open(path.Join(dir, name))
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(r)
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(data)
}
