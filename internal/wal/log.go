package wal

import (
	"bufio"
	"bytes"
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Metrics aggregates the durability counters. Share one instance across a
// node's log to surface them through rpc.Metrics.
type Metrics struct {
	Fsyncs    metrics.Counter // fsync-class operations issued
	Bytes     metrics.Counter // record bytes appended (framed)
	Records   metrics.Counter // records appended
	Snapshots metrics.Counter // snapshots written
}

// Options configures a Log. The zero value is usable: OS filesystem, 4 MiB
// segments, no forced sync cadence (callers that need durability use
// WaitSynced / Append with sync).
type Options struct {
	// FS is the filesystem; nil selects OSFS. Crash tests inject a FailFS.
	FS FS
	// SegmentBytes rotates the active segment beyond this size
	// (default 4 MiB).
	SegmentBytes int64
	// SyncEvery forces a flush+fsync after every N appended records
	// (0 = none). It bounds the volatile window for appenders that do not
	// wait on durability themselves.
	SyncEvery int
	// SyncInterval starts a background flusher that syncs any unsynced
	// suffix on this cadence (0 = none). Like SyncEvery it bounds the
	// volatile window; acknowledged calls are still synced inline via
	// WaitSynced before their response leaves.
	SyncInterval time.Duration
	// Metrics, when non-nil, accumulates fsync/byte/record counters.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Log is an append-only segmented record log with group-commit durability.
//
// Concurrent appenders serialize on an internal mutex for the buffered
// write; durability is paid separately and batched: WaitSynced(lsn) returns
// once every record up to lsn is on stable storage, and at most one caller
// at a time runs the flush+fsync while later callers wait for its result —
// a burst of concurrent acknowledgements costs one fsync, the same
// "last writer flushes" shape the rpc write path uses for its buffered
// frames (docs/PERFORMANCE.md).
type Log struct {
	fs   FS
	dir  string
	opts Options

	// mu guards the active segment: writer, byte counts, LSN assignment.
	mu          sync.Mutex
	f           File
	bw          *bufio.Writer
	scratch     bytes.Buffer
	lsn         uint64 // last assigned LSN
	segStart    uint64 // first LSN of the active segment
	segBytes    int64
	unsynced    int // records appended since the last sync
	closed      bool
	writeErr    error // sticky: a failed write poisons the log
	segments    []segmentInfo
	activeName  string
	snapshotLSN uint64 // floor below which segments have been pruned

	// smu guards the durability frontier and elects the single flusher.
	smu      sync.Mutex
	scond    *sync.Cond
	synced   uint64
	flushing bool

	tickStop chan struct{}
	tickDone chan struct{}
}

type segmentInfo struct {
	name  string
	first uint64 // first LSN in the segment
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".db"
	tmpSuffix  = ".tmp"
)

func segmentName(first uint64) string { return fmt.Sprintf("%s%016d%s", segPrefix, first, segSuffix) }

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// open prepares a Log for appending after recovery scanned the directory:
// lastLSN is the highest LSN already on disk, segs the surviving segments
// (sorted by first LSN), snapLSN the snapshot floor.
func openLog(dir string, opts Options, lastLSN uint64, segs []segmentInfo, snapLSN uint64) (*Log, error) {
	opts = opts.withDefaults()
	l := &Log{
		fs:          opts.FS,
		dir:         dir,
		opts:        opts,
		lsn:         lastLSN,
		synced:      lastLSN, // everything recovery saw is on disk
		segments:    segs,
		snapshotLSN: snapLSN,
	}
	l.scond = sync.NewCond(&l.smu)
	if err := l.openSegmentLocked(lastLSN + 1); err != nil {
		return nil, err
	}
	if opts.SyncInterval > 0 {
		l.tickStop = make(chan struct{})
		l.tickDone = make(chan struct{})
		go l.runTicker(opts.SyncInterval)
	}
	return l, nil
}

// openSegmentLocked starts a fresh segment whose first record will carry
// LSN first. Called with l.mu held (or before the log is shared).
func (l *Log) openSegmentLocked(first uint64) error {
	name := segmentName(first)
	f, err := l.fs.Create(path.Join(l.dir, name))
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 64<<10)
	l.segStart = first
	l.segBytes = 0
	l.activeName = name
	l.segments = append(l.segments, segmentInfo{name: name, first: first})
	return nil
}

// Append encodes rec, assigns it the next LSN and writes it to the active
// segment's buffer. The record is NOT durable until a sync covers its LSN:
// callers that acknowledge externally must WaitSynced(lsn) first.
func (l *Log) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: append: log closed")
	}
	if l.writeErr != nil {
		err := l.writeErr
		l.mu.Unlock()
		return 0, err
	}
	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.writeErr = err
			l.mu.Unlock()
			return 0, err
		}
	}
	l.scratch.Reset()
	rec.LSN = l.lsn + 1
	if err := appendRecord(&l.scratch, rec); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	if _, err := l.bw.Write(l.scratch.Bytes()); err != nil {
		l.writeErr = fmt.Errorf("wal: write: %w", err)
		err = l.writeErr
		l.mu.Unlock()
		return 0, err
	}
	l.lsn++
	lsn := l.lsn
	n := int64(l.scratch.Len())
	l.segBytes += n
	l.unsynced++
	forceSync := l.opts.SyncEvery > 0 && l.unsynced >= l.opts.SyncEvery
	l.mu.Unlock()

	if m := l.opts.Metrics; m != nil {
		m.Records.Inc()
		m.Bytes.Add(uint64(n))
	}
	if forceSync {
		if err := l.WaitSynced(lsn); err != nil {
			return lsn, err
		}
	}
	return lsn, nil
}

// rotateLocked seals the active segment (flush + fsync, so only the final
// segment can ever carry a torn tail) and starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.flushSyncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	return l.openSegmentLocked(l.lsn + 1)
}

// flushSyncLocked flushes the buffered writer and fsyncs the active file.
func (l *Log) flushSyncLocked() error {
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.unsynced = 0
	if m := l.opts.Metrics; m != nil {
		m.Fsyncs.Inc()
	}
	return nil
}

// AppendedLSN reports the highest assigned LSN.
func (l *Log) AppendedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// SyncedLSN reports the durability frontier.
func (l *Log) SyncedLSN() uint64 {
	l.smu.Lock()
	defer l.smu.Unlock()
	return l.synced
}

// WaitSynced blocks until every record up to target is durable (group
// commit: one concurrent caller flushes on behalf of the batch) and returns
// the log's sticky write error, if any.
func (l *Log) WaitSynced(target uint64) error {
	l.smu.Lock()
	for {
		if l.synced >= target {
			l.smu.Unlock()
			return nil
		}
		l.mu.Lock()
		if l.writeErr != nil {
			err := l.writeErr
			l.mu.Unlock()
			l.smu.Unlock()
			return err
		}
		l.mu.Unlock()
		if !l.flushing {
			l.flushing = true
			l.smu.Unlock()

			l.mu.Lock()
			upTo := l.lsn
			err := l.flushSyncLocked()
			if err != nil {
				l.writeErr = err
			}
			l.mu.Unlock()

			l.smu.Lock()
			l.flushing = false
			if err == nil && upTo > l.synced {
				l.synced = upTo
			}
			l.scond.Broadcast()
			if err != nil {
				l.smu.Unlock()
				return err
			}
			continue
		}
		l.scond.Wait()
	}
}

// Sync makes everything appended so far durable.
func (l *Log) Sync() error { return l.WaitSynced(l.AppendedLSN()) }

func (l *Log) runTicker(iv time.Duration) {
	defer close(l.tickDone)
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-l.tickStop:
			return
		case <-t.C:
		}
		if l.AppendedLSN() > l.SyncedLSN() {
			_ = l.Sync()
		}
	}
}

// Close syncs the tail and closes the active segment. Further appends fail.
func (l *Log) Close() error {
	if l.tickStop != nil {
		close(l.tickStop)
		<-l.tickDone
		l.tickStop = nil
	}
	err := l.Sync()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	return err
}

// pruneTo removes snapshots and whole segments made redundant by a durable
// snapshot at snapLSN: a segment is deletable when the next segment starts
// at or below snapLSN+1 (every record in it is covered by the snapshot).
func (l *Log) pruneTo(snapLSN uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if snapLSN > l.snapshotLSN {
		l.snapshotLSN = snapLSN
	}
	kept := l.segments[:0]
	removed := false
	for i, seg := range l.segments {
		covered := false
		if i+1 < len(l.segments) && l.segments[i+1].first <= snapLSN+1 && seg.name != l.activeName {
			covered = true
		}
		if covered {
			if err := l.fs.Remove(path.Join(l.dir, seg.name)); err == nil {
				removed = true
				continue
			}
		}
		kept = append(kept, seg)
	}
	l.segments = append([]segmentInfo(nil), kept...)
	if removed {
		_ = l.fs.SyncDir(l.dir)
	}
}

// listSorted returns dir's entries with the given prefix/suffix, sorted by
// their embedded number.
func listSorted(fs FS, dir, prefix, suffix string) ([]segmentInfo, error) {
	names, err := fs.List(dir)
	if err != nil {
		return nil, err
	}
	var out []segmentInfo
	for _, name := range names {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, segmentInfo{name: name, first: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].first < out[j].first })
	return out, nil
}
