package wal

import (
	"fmt"
	"sync"
	"time"
)

// StoreOptions configures OpenStore.
type StoreOptions struct {
	// FS is the filesystem (nil = OSFS).
	FS FS
	// SegmentBytes, SyncEvery, SyncInterval configure the underlying Log.
	SegmentBytes int64
	SyncEvery    int
	SyncInterval time.Duration
	// SnapshotEvery triggers a snapshot after this many appended records
	// (0 = snapshots disabled; the log grows until the process restarts).
	SnapshotEvery int
	// Metrics, when non-nil, accumulates durability counters.
	Metrics *Metrics
}

// Store is the durability layer a node mounts on a data directory: one
// shared log for every journaled object plus the node's at-most-once ack
// ledger, periodic snapshots, and the recovery state left by the previous
// incarnation.
//
// Lifecycle: OpenStore (recovery scan) → Journal(name) per object →
// ObjectJournal.Recover per object (restore + replay) → serve. The rpc
// layer appends ack records and syncs them before a response leaves;
// RecoveredAcks seeds the dedup cache so retries across the crash are
// answered from disk.
type Store struct {
	log  *Log
	dir  string
	fs   FS
	opts StoreOptions

	mu        sync.Mutex
	journals  map[string]*ObjectJournal
	byObject  map[string][]*Record // recovered outcomes awaiting replay
	byGroup   map[string][]*Record // recovered consensus records by replication group
	acks      []AckEntry           // recovered at-most-once ledger
	dedupDump func() []AckEntry    // set by the node; completed entries only
	snapState map[string][]byte    // recovered snapshot blobs by object

	stats RecoveryStats

	recsSinceSnap int
	snapping      bool
	snapWG        sync.WaitGroup
	closed        bool
}

// RecoveryStats summarizes what recovery found; the daemon logs it at
// startup.
type RecoveryStats struct {
	Outcomes   int // outcome records replayed from the log
	Acks       int // ack records folded into the dedup seed
	Replica    int // consensus records staged for replication groups
	SnapshotAt uint64
	TornBytes  int64
	Segments   int
	Duration   time.Duration
}

// OpenStore recovers dir and returns a Store ready for Journal/Recover.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	l, rec, err := Open(dir, Options{
		FS:           opts.FS,
		SegmentBytes: opts.SegmentBytes,
		SyncEvery:    opts.SyncEvery,
		SyncInterval: opts.SyncInterval,
		Metrics:      opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	s := &Store{
		log:      l,
		dir:      dir,
		fs:       l.fs,
		opts:     opts,
		journals: make(map[string]*ObjectJournal),
		byObject: make(map[string][]*Record),
		byGroup:  make(map[string][]*Record),
	}
	s.stats.TornBytes = rec.TornBytes
	s.stats.Segments = rec.Segments
	s.stats.Duration = rec.Duration
	if snap := rec.Snapshot; snap != nil {
		s.stats.SnapshotAt = snap.LSN
		s.snapState = snap.Objects
		s.acks = append(s.acks, snap.Dedup...)
	}
	for _, r := range rec.Records {
		switch r.Kind {
		case KindOutcome:
			s.byObject[r.Object] = append(s.byObject[r.Object], r)
			s.stats.Outcomes++
		case KindAck:
			s.acks = append(s.acks, AckEntry{
				Client: r.Client, Seq: r.Seq,
				Results: r.Results, ErrMsg: r.ErrMsg, ErrKind: r.ErrKind,
			})
			s.stats.Acks++
		case KindReplica:
			s.byGroup[r.Object] = append(s.byGroup[r.Object], r)
			s.stats.Replica++
		}
	}
	return s, nil
}

// Stats reports what recovery found.
func (s *Store) Stats() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// RecoveredAcks returns the at-most-once ledger the previous incarnation
// made durable (snapshot table plus ack records above its floor), for
// seeding the node's dedup cache. Later entries supersede earlier ones for
// the same (client, seq).
func (s *Store) RecoveredAcks() []AckEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]AckEntry(nil), s.acks...)
}

// SetDedupDump registers the node's callback producing the COMPLETED
// at-most-once entries for inclusion in snapshots. The dump is taken
// before object state is collected, so every acknowledged call a snapshot
// remembers also has its effects in the snapshot's state (see
// docs/DURABILITY.md, "snapshot ordering").
func (s *Store) SetDedupDump(fn func() []AckEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dedupDump = fn
}

// DurableEntry reports whether calls to object/entry are journaled (and
// must therefore be synced before acknowledgement).
func (s *Store) DurableEntry(object, entry string) bool {
	s.mu.Lock()
	j, ok := s.journals[object]
	s.mu.Unlock()
	return ok && !j.skips(entry)
}

// AppendAck journals an acknowledgement record: the (client, seq) identity
// and the response about to leave the node. The caller must WaitSynced on
// the returned LSN before sending the response; because the ack is
// appended after the call's outcome record in the same log, that single
// sync also makes the state transition durable.
func (s *Store) AppendAck(object, entry, client string, seq uint64, results []any, errMsg string, errKind int32) (uint64, error) {
	return s.append(&Record{
		Kind:   KindAck,
		Object: object,
		Entry:  entry,
		Client: client,
		Seq:    seq,

		Results: results,
		ErrMsg:  errMsg,
		ErrKind: errKind,
	})
}

// AppendReplica journals one consensus record for a replication group:
// hard state, a log entry, a truncation or a snapshot floor. The record's
// Kind is forced to KindReplica; internal/replica owns the sub-kind
// vocabulary carried in rec.Entry. Callers WaitSynced on the returned LSN
// before acting on the record (granting a vote, acknowledging an append) —
// the same ack-before-response discipline the rpc layer uses.
func (s *Store) AppendReplica(rec *Record) (uint64, error) {
	rec.Kind = KindReplica
	return s.append(rec)
}

// ReplicaRecords returns (and un-stages) the consensus records recovery
// found for the named replication group, in LSN order. The group's next
// incarnation folds them back into its term, vote and log before rejoining
// its peers.
func (s *Store) ReplicaRecords(group string) []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.byGroup[group]
	delete(s.byGroup, group)
	return recs
}

// WaitSynced blocks until every record up to lsn is on stable storage.
func (s *Store) WaitSynced(lsn uint64) error { return s.log.WaitSynced(lsn) }

// SyncedLSN reports the durability frontier (diagnostics).
func (s *Store) SyncedLSN() uint64 { return s.log.SyncedLSN() }

// append funnels every record through the snapshot trigger.
func (s *Store) append(rec *Record) (uint64, error) {
	lsn, err := s.log.Append(rec)
	if err != nil {
		return lsn, err
	}
	if s.opts.SnapshotEvery > 0 {
		s.mu.Lock()
		s.recsSinceSnap++
		fire := s.recsSinceSnap >= s.opts.SnapshotEvery && !s.snapping && !s.closed
		if fire {
			s.snapping = true
			s.recsSinceSnap = 0
			s.snapWG.Add(1)
		}
		s.mu.Unlock()
		if fire {
			go s.snapshot()
		}
	}
	return lsn, nil
}

// ForceSnapshot takes a snapshot synchronously (tests and operator tools).
func (s *Store) ForceSnapshot() error {
	s.mu.Lock()
	if s.snapping || s.closed {
		s.mu.Unlock()
		return fmt.Errorf("wal: snapshot already in progress or store closed")
	}
	s.snapping = true
	s.recsSinceSnap = 0
	s.snapWG.Add(1)
	s.mu.Unlock()
	return s.snapshot()
}

// snapshot builds and publishes one checkpoint.
//
// Ordering is load-bearing, in three steps:
//  1. floor := AppendedLSN — the snapshot claims to cover records ≤ floor.
//     Anything recorded after this line may also leak into the collected
//     state (the floor is fuzzy), which is why replay above the floor must
//     be idempotent.
//  2. Dedup dump BEFORE object state: an ack completed by dump time had
//     finished its body earlier still, so its effects are guaranteed to be
//     in the state collected in step 3 — a snapshot never remembers an
//     acknowledgement whose state it lost.
//  3. Per-object state via each journal's snapshot hook (typically a
//     manager-exclusive entry, so the blob is not torn mid-write).
func (s *Store) snapshot() error {
	defer func() {
		s.mu.Lock()
		s.snapping = false
		s.mu.Unlock()
		s.snapWG.Done()
	}()

	floor := s.log.AppendedLSN()

	s.mu.Lock()
	dump := s.dedupDump
	hooks := make(map[string]func() ([]byte, error), len(s.journals))
	for name, j := range s.journals {
		if h := j.snapshotHook(); h != nil {
			hooks[name] = h
		}
	}
	s.mu.Unlock()

	snap := &Snapshot{LSN: floor, Objects: make(map[string][]byte, len(hooks))}
	if dump != nil {
		snap.Dedup = dump()
	}
	for name, h := range hooks {
		blob, err := h()
		if err != nil {
			return fmt.Errorf("wal: snapshot %s: %w", name, err)
		}
		snap.Objects[name] = blob
	}

	// The floor must itself be durable before older segments go away: the
	// snapshot's state covers those records, but the snapshot file is the
	// only copy once they are pruned.
	if err := s.log.WaitSynced(floor); err != nil {
		return err
	}
	if _, err := writeSnapshot(s.fs, s.dir, snap); err != nil {
		return err
	}
	if m := s.opts.Metrics; m != nil {
		m.Snapshots.Inc()
	}
	s.pruneSnapshots(floor)
	s.log.pruneTo(floor)
	return nil
}

// pruneSnapshots removes snapshot files older than the one at floor.
func (s *Store) pruneSnapshots(floor uint64) {
	snaps, err := listSorted(s.fs, s.dir, snapPrefix, snapSuffix)
	if err != nil {
		return
	}
	for _, sn := range snaps {
		if sn.first < floor {
			_ = s.fs.Remove(s.dir + "/" + sn.name)
		}
	}
}

// Close waits for any in-flight snapshot, syncs the log tail and closes
// the store. Safe to call once during drain.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.snapWG.Wait()
	return s.log.Close()
}
