package wal

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func appendOutcome(t *testing.T, l *Log, object string, i int) uint64 {
	t.Helper()
	lsn, err := l.Append(&Record{
		Kind:   KindOutcome,
		Object: object,
		Entry:  "Write",
		CallID: uint64(i),
		Params: []any{i, i * 10},
	})
	if err != nil {
		t.Fatalf("append %d: %v", i, err)
	}
	return lsn
}

func TestLogAppendRecoverRoundTrip(t *testing.T) {
	fs := NewFailFS()
	l, rec, err := Open("data", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.Snapshot != nil {
		t.Fatalf("cold start recovered %d records, snapshot %v", len(rec.Records), rec.Snapshot)
	}
	for i := 0; i < 10; i++ {
		if lsn := appendOutcome(t, l, "kv", i); lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2, err := Open("data", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec2.Records) != 10 {
		t.Fatalf("recovered %d records, want 10", len(rec2.Records))
	}
	for i, r := range rec2.Records {
		if r.LSN != uint64(i+1) || r.CallID != uint64(i) || r.Entry != "Write" {
			t.Fatalf("record %d = %+v", i, r)
		}
		if k, v := r.Params[0].(int), r.Params[1].(int); k != i || v != i*10 {
			t.Fatalf("record %d params = %v", i, r.Params)
		}
	}
	if rec2.LastLSN != 10 {
		t.Fatalf("LastLSN = %d, want 10", rec2.LastLSN)
	}
	// Appending resumes above recovered history.
	if lsn := appendOutcome(t, l2, "kv", 10); lsn != 11 {
		t.Fatalf("post-recovery lsn = %d, want 11", lsn)
	}
}

func TestCrashDropsUnsyncedTail(t *testing.T) {
	for _, torn := range []int{0, 5} {
		t.Run(fmt.Sprintf("torn=%d", torn), func(t *testing.T) {
			fs := NewFailFS()
			fs.TornTail = torn
			l, _, err := Open("data", Options{FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 6; i++ {
				appendOutcome(t, l, "kv", i)
			}
			if err := l.WaitSynced(6); err != nil {
				t.Fatal(err)
			}
			for i := 6; i < 9; i++ {
				appendOutcome(t, l, "kv", i)
			}
			// Flush to the file WITHOUT fsync so the bytes are vulnerable.
			l.mu.Lock()
			_ = l.bw.Flush()
			l.mu.Unlock()
			fs.Crash()

			l2, rec, err := Open("data", Options{FS: fs})
			if err != nil {
				t.Fatalf("recovery after crash: %v", err)
			}
			if len(rec.Records) != 6 {
				t.Fatalf("recovered %d records, want the 6 synced ones", len(rec.Records))
			}
			if torn > 0 && rec.TornBytes == 0 {
				t.Fatalf("expected a torn tail to be truncated, TornBytes = 0")
			}
			// Survive a second crash immediately after recovery (the
			// truncation must be durable).
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			fs.Crash()
			_, rec3, err := Open("data", Options{FS: fs})
			if err != nil {
				t.Fatalf("second recovery: %v", err)
			}
			if len(rec3.Records) != 6 {
				t.Fatalf("second recovery found %d records, want 6", len(rec3.Records))
			}
		})
	}
}

func TestSealedSegmentsSurviveCrashWithoutSync(t *testing.T) {
	fs := NewFailFS()
	// Tiny segments: every record rotates, and rotation fsyncs the sealed
	// segment, so records are durable without any explicit caller sync.
	l, _, err := Open("data", Options{FS: fs, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		appendOutcome(t, l, "kv", i)
	}
	fs.Crash()
	_, rec, err := Open("data", Options{FS: fs, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The last record may be lost (its segment was still buffered), every
	// sealed one must not be.
	if len(rec.Records) < 4 {
		t.Fatalf("recovered %d records, want >= 4 sealed ones", len(rec.Records))
	}
}

func TestCorruptSealedSegmentFailsRecovery(t *testing.T) {
	fs := NewFailFS()
	l, _, err := Open("data", Options{FS: fs, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		appendOutcome(t, l, "kv", i)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the FIRST segment: damage before the final
	// segment is data loss, not a torn tail, and recovery must say so.
	fs.mu.Lock()
	var first string
	for name := range fs.files {
		if strings.Contains(name, segPrefix) && (first == "" || name < first) {
			first = name
		}
	}
	fs.files[first].data[recHeaderLen] ^= 0xff
	fs.mu.Unlock()

	_, _, err = Open("data", Options{FS: fs, SegmentBytes: 1})
	if err == nil {
		t.Fatal("recovery accepted a corrupt sealed segment")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	fs := NewFailFS()
	l, _, err := Open("data", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const writers = 16
	base := fs.Syncs()
	var wg sync.WaitGroup
	lsns := make([]uint64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lsn, err := l.Append(&Record{Kind: KindOutcome, Object: "kv", Entry: "Write", Params: []any{w}})
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			lsns[w] = lsn
			if err := l.WaitSynced(lsn); err != nil {
				t.Errorf("wait: %v", err)
			}
		}(w)
	}
	wg.Wait()
	if got := l.SyncedLSN(); got < uint64(writers) {
		t.Fatalf("synced frontier = %d, want >= %d", got, writers)
	}
	if syncs := fs.Syncs() - base; syncs > writers {
		t.Fatalf("fsyncs = %d for %d waiters (no batching at all)", syncs, writers)
	}
}

func TestSyncEveryBoundsUnsyncedWindow(t *testing.T) {
	fs := NewFailFS()
	l, _, err := Open("data", Options{FS: fs, SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		appendOutcome(t, l, "kv", i)
	}
	// 5 appends with SyncEvery=2: records 1..4 forced durable, 5 may not be.
	if got := l.SyncedLSN(); got < 4 {
		t.Fatalf("synced = %d, want >= 4", got)
	}
	fs.Crash()
	_, rec, err := Open("data", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) < 4 {
		t.Fatalf("recovered %d records, want >= 4", len(rec.Records))
	}
}

// kvState is the fake journaled object for store tests: a last-write-wins
// map with gob snapshot hooks, the same shape rwdb exposes.
type kvState struct {
	mu   sync.Mutex
	data map[int]int
}

func newKVState() *kvState { return &kvState{data: make(map[int]int)} }

func (s *kvState) write(k, v int) {
	s.mu.Lock()
	s.data[k] = v
	s.mu.Unlock()
}

func (s *kvState) hooks() RecoverHooks {
	return RecoverHooks{
		Restore: func(data []byte) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			return gob.NewDecoder(bytes.NewReader(data)).Decode(&s.data)
		},
		Replay: func(entry string, params []any) error {
			if entry != "Write" {
				return fmt.Errorf("unexpected replay entry %q", entry)
			}
			s.write(params[0].(int), params[1].(int))
			return nil
		},
		Snapshot: func() ([]byte, error) {
			s.mu.Lock()
			defer s.mu.Unlock()
			var buf bytes.Buffer
			err := gob.NewEncoder(&buf).Encode(s.data)
			return buf.Bytes(), err
		},
	}
}

func storeWrite(t *testing.T, j *ObjectJournal, s *kvState, k, v int) {
	t.Helper()
	s.write(k, v)
	if lsn := j.RecordOutcome("Write", 0, []any{k, v}, nil, nil); lsn == 0 {
		if err := j.Err(); err != nil {
			t.Fatalf("journal write: %v", err)
		}
	}
}

func TestStoreSnapshotReplayAcrossCrash(t *testing.T) {
	fs := NewFailFS()
	st, err := OpenStore("data", StoreOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	kv := newKVState()
	j := st.Journal("kv", JournalOptions{
		Wait: true,
		Skip: func(entry string) bool { return entry == "Read" },
	})
	if _, err := j.Recover(kv.hooks()); err != nil {
		t.Fatal(err)
	}

	// Ten writes, snapshot, five overwrites, a couple of acks, sync.
	for i := 0; i < 10; i++ {
		storeWrite(t, j, kv, i, i)
	}
	if err := st.ForceSnapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		storeWrite(t, j, kv, i, 100+i)
	}
	lsn, err := st.AppendAck("kv", "Write", "client-1", 7, []any{}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitSynced(lsn); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	st2, err := OpenStore("data", StoreOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.Stats()
	if stats.SnapshotAt == 0 {
		t.Fatalf("stats = %+v, want a snapshot floor", stats)
	}
	if stats.Outcomes < 5 || stats.Acks != 1 {
		t.Fatalf("stats = %+v, want >=5 outcomes and 1 ack", stats)
	}
	acks := st2.RecoveredAcks()
	if len(acks) != 1 || acks[0].Client != "client-1" || acks[0].Seq != 7 {
		t.Fatalf("recovered acks = %+v", acks)
	}

	kv2 := newKVState()
	j2 := st2.Journal("kv", JournalOptions{Wait: true})
	replayed, err := j2.Recover(kv2.hooks())
	if err != nil {
		t.Fatal(err)
	}
	if replayed < 5 {
		t.Fatalf("replayed %d records, want >= 5", replayed)
	}
	kv.mu.Lock()
	want := kv.data
	kv.mu.Unlock()
	kv2.mu.Lock()
	defer kv2.mu.Unlock()
	if len(kv2.data) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(kv2.data), len(want))
	}
	for k, v := range want {
		if kv2.data[k] != v {
			t.Fatalf("key %d = %d after recovery, want %d", k, kv2.data[k], v)
		}
	}
}

func TestSnapshotPrunesSegments(t *testing.T) {
	fs := NewFailFS()
	st, err := OpenStore("data", StoreOptions{FS: fs, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	kv := newKVState()
	j := st.Journal("kv", JournalOptions{Wait: true})
	if _, err := j.Recover(kv.hooks()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		storeWrite(t, j, kv, i, i)
	}
	segsBefore, _ := listSorted(fs, "data", segPrefix, segSuffix)
	if err := st.ForceSnapshot(); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := listSorted(fs, "data", segPrefix, segSuffix)
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("snapshot pruned nothing: %d segments before, %d after", len(segsBefore), len(segsAfter))
	}
	snaps, _ := listSorted(fs, "data", snapPrefix, snapSuffix)
	if len(snaps) != 1 {
		t.Fatalf("%d snapshot files, want 1", len(snaps))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery from snapshot + surviving suffix reproduces the state.
	st2, err := OpenStore("data", StoreOptions{FS: fs, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	kv2 := newKVState()
	j2 := st2.Journal("kv", JournalOptions{Wait: true})
	if _, err := j2.Recover(kv2.hooks()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if kv2.data[i] != i {
			t.Fatalf("key %d = %d after pruned recovery, want %d", i, kv2.data[i], i)
		}
	}
}

func TestSnapshotEveryTriggersAutomatically(t *testing.T) {
	fs := NewFailFS()
	st, err := OpenStore("data", StoreOptions{FS: fs, SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	kv := newKVState()
	j := st.Journal("kv", JournalOptions{Wait: true})
	if _, err := j.Recover(kv.hooks()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		storeWrite(t, j, kv, i, i)
	}
	if err := st.Close(); err != nil { // waits for in-flight snapshots
		t.Fatal(err)
	}
	snaps, _ := listSorted(fs, "data", snapPrefix, snapSuffix)
	if len(snaps) == 0 {
		t.Fatal("no snapshot after 25 appends with SnapshotEvery=10")
	}
}

func TestReplayDoesNotReJournal(t *testing.T) {
	fs := NewFailFS()
	st, err := OpenStore("data", StoreOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	kv := newKVState()
	j := st.Journal("kv", JournalOptions{Wait: true})
	if _, err := j.Recover(kv.hooks()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		storeWrite(t, j, kv, i, i)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore("data", StoreOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	before := st2.log.AppendedLSN()
	kv2 := newKVState()
	j2 := st2.Journal("kv", JournalOptions{Wait: true})
	hooks := kv2.hooks()
	replay := hooks.Replay
	hooks.Replay = func(entry string, params []any) error {
		// A real object's replay runs back through the journaled call
		// path; simulate that by recording the outcome mid-replay.
		if err := replay(entry, params); err != nil {
			return err
		}
		if lsn := j2.RecordOutcome(entry, 0, params, nil, nil); lsn != 0 {
			return fmt.Errorf("RecordOutcome returned lsn %d during replay", lsn)
		}
		return nil
	}
	if _, err := j2.Recover(hooks); err != nil {
		t.Fatal(err)
	}
	if after := st2.log.AppendedLSN(); after != before {
		t.Fatalf("replay appended %d records to the log", after-before)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSkippedEntriesNotJournaled(t *testing.T) {
	fs := NewFailFS()
	st, err := OpenStore("data", StoreOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	j := st.Journal("kv", JournalOptions{Skip: func(e string) bool { return e == "Read" }})
	if _, err := j.Recover(RecoverHooks{}); err != nil {
		t.Fatal(err)
	}
	if lsn := j.RecordOutcome("Read", 0, []any{1}, []any{2}, nil); lsn != 0 {
		t.Fatalf("skipped entry journaled at lsn %d", lsn)
	}
	if got := st.log.AppendedLSN(); got != 0 {
		t.Fatalf("log has %d records after skipped outcome", got)
	}
	if !st.DurableEntry("kv", "Write") || st.DurableEntry("kv", "Read") || st.DurableEntry("other", "Write") {
		t.Fatal("DurableEntry misclassifies")
	}
}

func TestFailedOutcomesNotJournaled(t *testing.T) {
	fs := NewFailFS()
	st, err := OpenStore("data", StoreOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	j := st.Journal("kv", JournalOptions{})
	if lsn := j.RecordOutcome("Write", 0, []any{1, 2}, nil, errors.New("boom")); lsn != 0 {
		t.Fatalf("failed outcome journaled at lsn %d", lsn)
	}
	if got := st.log.AppendedLSN(); got != 0 {
		t.Fatalf("log has %d records after failed outcome", got)
	}
}
