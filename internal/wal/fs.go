// Package wal is the pluggable durability layer for ALPS objects: an
// append-only, CRC-checked, segmented write-ahead log of externally visible
// call outcomes, periodic snapshots that bound replay time, and a recovery
// path that rebuilds an object (and the node's at-most-once dedup ledger)
// after process death. See docs/DURABILITY.md for the format, the
// group-commit model and the crash matrix.
//
// The layer is event sourcing pointed at disk: internal/trace already emits
// the accept/start/await/finish lifecycle stream the conformance model
// replays; the WAL records the durable subset of it — the outcomes a caller
// was (or is about to be) told about — so a restarted process can replay
// them into a fresh object and answer retried calls from disk.
package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS abstracts the filesystem so crash tests can inject a power-loss
// failpoint (see FailFS). OSFS is the production implementation.
type FS interface {
	// Create truncates or creates the named file for writing.
	Create(name string) (File, error)
	// Append opens the named file for appending, creating it if absent.
	Append(name string) (File, error)
	// Open opens the named file for reading.
	Open(name string) (io.ReadCloser, error)
	// List reports the file names (not paths) in dir, sorted. A missing
	// directory is an empty listing, not an error.
	List(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes the named file.
	Remove(name string) error
	// Truncate shortens the named file to size bytes.
	Truncate(name string, size int64) error
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string) error
	// SyncDir makes directory-level operations (create, rename, remove)
	// durable.
	SyncDir(dir string) error
}

// File is a writable log file: buffered writes become durable only after
// Sync returns.
type File interface {
	io.Writer
	// Sync flushes the file's written data to stable storage.
	Sync() error
	io.Closer
}

// OSFS is the production FS backed by the operating system.
type OSFS struct{}

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// Append implements FS.
func (OSFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Open implements FS.
func (OSFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

// List implements FS.
func (OSFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
