package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Kind discriminates log records.
type Kind int

const (
	// KindOutcome is a call outcome journaled by the object runtime in
	// delivery order: entry, parameters and results (or error). Replaying
	// the successful outcomes against a fresh object rebuilds its state.
	KindOutcome Kind = iota + 1
	// KindAck is an acknowledgement record appended by the RPC layer just
	// before a response leaves the node: the (client, seq) dedup identity
	// and the response. Recovery folds these into the node's at-most-once
	// cache so a retried call is answered from disk, never re-executed.
	KindAck
	// KindReplica is a consensus-state record appended by internal/replica:
	// hard state (term, vote), replicated log entries, truncations and
	// snapshot floors for one replication group. The wal layer stores them
	// opaquely — Object names the group, Entry the sub-kind — and recovery
	// stages them, in LSN order, for the group's next incarnation
	// (docs/REPLICATION.md).
	KindReplica
)

func (k Kind) valid() bool { return k >= KindOutcome && k <= KindReplica }

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindOutcome:
		return "outcome"
	case KindAck:
		return "ack"
	case KindReplica:
		return "replica"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Record is one durable log entry. Params/Results values must be
// gob-encodable (the same constraint the rpc wire imposes).
type Record struct {
	Kind   Kind
	Object string
	Entry  string
	CallID uint64 // runtime call id (outcome records; diagnostic only)

	// Dedup identity (ack records): the caller's stable client ID and its
	// per-client sequence number.
	Client string
	Seq    uint64

	Params  []any
	Results []any
	ErrMsg  string // non-empty for failed calls
	ErrKind int32  // rpc sentinel classification, carried opaquely

	// LSN is the record's log sequence number, assigned by Log.Append and
	// restored by recovery. It is not part of the encoded payload.
	LSN uint64
}

// ErrCorrupt reports a record that failed structural validation: a bad
// CRC, an implausible length, or an undecodable payload. Recovery treats a
// corrupt record at the tail of the final segment as a torn write (truncate
// and continue) and anywhere else as data loss (fail).
var ErrCorrupt = errors.New("wal: corrupt record")

// recHeaderLen is the frame prologue: uint32 payload length, uint32 CRC.
const recHeaderLen = 8

// maxRecordLen bounds a single record's payload; a length beyond it is
// corruption, not a huge record (prevents a flipped length byte from
// driving a multi-gigabyte allocation during recovery).
const maxRecordLen = 64 << 20

var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func init() {
	// Values travel inside []any; register the composites the rpc layer
	// also supports so parameters survive the gob round trip.
	gob.Register([]any{})
	gob.Register(map[string]any{})
	gob.Register([]byte(nil))
}

// appendRecord encodes rec into a frame appended to buf:
//
//	uint32 length | uint32 crc32c(payload) | payload (gob)
func appendRecord(buf *bytes.Buffer, rec *Record) error {
	payload := encBufPool.Get().(*bytes.Buffer)
	payload.Reset()
	defer encBufPool.Put(payload)
	if err := gob.NewEncoder(payload).Encode(rec); err != nil {
		return fmt.Errorf("wal: encode record: %w", err)
	}
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload.Bytes(), crcTable))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())
	return nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// decodeRecord decodes one framed record from data, returning the record
// and the bytes consumed. io.ErrUnexpectedEOF means the frame is cut short
// (a torn tail); ErrCorrupt means the frame is structurally wrong.
func decodeRecord(data []byte) (*Record, int, error) {
	if len(data) < recHeaderLen {
		return nil, 0, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n == 0 || n > maxRecordLen {
		return nil, 0, fmt.Errorf("%w: implausible length %d", ErrCorrupt, n)
	}
	if len(data) < recHeaderLen+int(n) {
		return nil, 0, io.ErrUnexpectedEOF
	}
	payload := data[recHeaderLen : recHeaderLen+int(n)]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(data[4:8]); got != want {
		return nil, 0, fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	var rec Record
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return nil, 0, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	if !rec.Kind.valid() {
		return nil, 0, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, int(rec.Kind))
	}
	return &rec, recHeaderLen + int(n), nil
}
