package conformance

import "fmt"

// KeyedExec is one observed execution in a sharded or remote deployment's
// ledger: the routing key, the issuing client, that client's per-key
// sequence number (clients issue synchronously, numbering 0,1,2,...), the
// shard or node that executed the call, and — for fabric deployments —
// the key's placement epoch at execution time (0 when the deployment
// never reshards).
type KeyedExec struct {
	Key    string
	Client string
	Seq    int
	Shard  string
	Epoch  uint64
}

// CheckKeyOrder replays an execution ledger (in observed execution order)
// against the sharding/RPC invariants the runtime promises:
//
//	key-affinity:  within one placement epoch, every execution for a key
//	               lands on the same shard — the key router never splits a
//	               key. A key may change shard only together with an epoch
//	               increase (a fabric handoff); single-process deployments
//	               leave Epoch at 0 and recover the original strict rule.
//	epoch-regress: a key's placement epoch never decreases — once a handoff
//	               moves a key to a new home, no call executes at the old
//	               placement again.
//	per-key-fifo:  for each (client, key), sequence numbers execute in issue
//	               order with no gaps — a synchronous client's calls are
//	               totally ordered through its key's object, and the
//	               drain-then-forward handoff preserves that order across
//	               process boundaries.
//	at-most-once:  no (client, key, seq) executes twice — the dedup ledger
//	               absorbs retries even under connection kills, partitions
//	               and duplicate handoff forwards.
func CheckKeyOrder(execs []KeyedExec) []Divergence {
	type ck struct{ client, key string }
	type cks struct {
		client, key string
		seq         int
	}
	type placement struct {
		shard string
		epoch uint64
	}
	place := make(map[string]placement)
	lastSeq := make(map[ck]int)
	seen := make(map[cks]int) // index of first execution
	var divs []Divergence
	for i, e := range execs {
		if prev, ok := place[e.Key]; !ok {
			place[e.Key] = placement{e.Shard, e.Epoch}
		} else {
			switch {
			case e.Epoch < prev.epoch:
				divs = append(divs, Divergence{
					Rule:  "epoch-regress",
					Entry: e.Key,
					Index: i,
					Detail: fmt.Sprintf("key %q executed at epoch %d after epoch %d",
						e.Key, e.Epoch, prev.epoch),
				})
			case e.Epoch == prev.epoch && e.Shard != prev.shard:
				divs = append(divs, Divergence{
					Rule:  "key-affinity",
					Entry: e.Key,
					Index: i,
					Detail: fmt.Sprintf("key %q executed on shard %q after shard %q within epoch %d",
						e.Key, e.Shard, prev.shard, e.Epoch),
				})
			default:
				place[e.Key] = placement{e.Shard, e.Epoch}
			}
		}
		id := cks{e.Client, e.Key, e.Seq}
		if first, dup := seen[id]; dup {
			divs = append(divs, Divergence{
				Rule:  "at-most-once",
				Entry: e.Key,
				Index: i,
				Detail: fmt.Sprintf("client %q key %q seq %d executed again (first at index %d)",
					e.Client, e.Key, e.Seq, first),
			})
			continue // don't double-report as a FIFO violation too
		}
		seen[id] = i
		c := ck{e.Client, e.Key}
		last, started := lastSeq[c]
		want := 0
		if started {
			want = last + 1
		}
		if e.Seq != want {
			divs = append(divs, Divergence{
				Rule:  "per-key-fifo",
				Entry: e.Key,
				Index: i,
				Detail: fmt.Sprintf("client %q key %q executed seq %d, expected %d",
					e.Client, e.Key, e.Seq, want),
			})
		}
		if !started || e.Seq > last {
			lastSeq[c] = e.Seq
		}
	}
	return divs
}
