package conformance

import "fmt"

// KeyedExec is one observed execution in a sharded or remote deployment's
// ledger: the routing key, the issuing client, that client's per-key
// sequence number (clients issue synchronously, numbering 0,1,2,...), and
// the shard or node that executed the call.
type KeyedExec struct {
	Key    string
	Client string
	Seq    int
	Shard  string
}

// CheckKeyOrder replays an execution ledger (in observed execution order)
// against the sharding/RPC invariants the runtime promises:
//
//	key-affinity:  every execution for a key lands on the same shard — the
//	               shard.Group key router never splits a key.
//	per-key-fifo:  for each (client, key), sequence numbers execute in issue
//	               order with no gaps — a synchronous client's calls are
//	               totally ordered through its key's object.
//	at-most-once:  no (client, key, seq) executes twice — the RPC dedup
//	               ledger absorbs retries even under connection kills and
//	               partitions.
func CheckKeyOrder(execs []KeyedExec) []Divergence {
	type ck struct{ client, key string }
	type cks struct {
		client, key string
		seq         int
	}
	shardOf := make(map[string]string)
	lastSeq := make(map[ck]int)
	seen := make(map[cks]int) // index of first execution
	var divs []Divergence
	for i, e := range execs {
		if prev, ok := shardOf[e.Key]; !ok {
			shardOf[e.Key] = e.Shard
		} else if prev != e.Shard {
			divs = append(divs, Divergence{
				Rule:  "key-affinity",
				Entry: e.Key,
				Index: i,
				Detail: fmt.Sprintf("key %q executed on shard %q after shard %q",
					e.Key, e.Shard, prev),
			})
		}
		id := cks{e.Client, e.Key, e.Seq}
		if first, dup := seen[id]; dup {
			divs = append(divs, Divergence{
				Rule:  "at-most-once",
				Entry: e.Key,
				Index: i,
				Detail: fmt.Sprintf("client %q key %q seq %d executed again (first at index %d)",
					e.Client, e.Key, e.Seq, first),
			})
			continue // don't double-report as a FIFO violation too
		}
		seen[id] = i
		c := ck{e.Client, e.Key}
		last, started := lastSeq[c]
		want := 0
		if started {
			want = last + 1
		}
		if e.Seq != want {
			divs = append(divs, Divergence{
				Rule:  "per-key-fifo",
				Entry: e.Key,
				Index: i,
				Detail: fmt.Sprintf("client %q key %q executed seq %d, expected %d",
					e.Client, e.Key, e.Seq, want),
			})
		}
		if !started || e.Seq > last {
			lastSeq[c] = e.Seq
		}
	}
	return divs
}
