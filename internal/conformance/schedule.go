package conformance

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Decision is what the schedule perturbator does to the goroutine that hit a
// scheduling decision point.
type Decision uint8

const (
	// DecideRun lets the goroutine continue immediately.
	DecideRun Decision = iota
	// DecideYield calls runtime.Gosched, offering the processor to any other
	// runnable goroutine (caller, manager or body).
	DecideYield
	// DecidePark parks the goroutine for a short, seeded duration, forcing
	// interleavings the Go scheduler would rarely produce on its own (a body
	// overtaking its caller, a manager scanning mid-submission, ...).
	DecidePark
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case DecideRun:
		return "run"
	case DecideYield:
		return "yield"
	case DecidePark:
		return "park"
	default:
		return "Decision(?)"
	}
}

// logCap bounds the recorded decision log; enough for any single conformance
// run while keeping long exploration loops from accumulating memory.
const logCap = 1 << 14

// Schedule is the seeded virtual-scheduler hook: a core.Sequencer whose
// decision stream is a pure function of its seed and of the order goroutines
// reach decision points. Every Point draws the next decision from a splitmix64
// PRNG under one mutex — parks happen while the mutex is held, so scheduling
// decisions are fully serialized: at most one goroutine transits a decision
// point at a time, and a parked decision holds every other participant at its
// own point until the park expires. That serialization is what makes a
// (program seed, schedule seed) pair re-runnable: the same seeds replay the
// same decision stream against the same workload (see Replay).
//
// Inject via core.ObjectOptions{Sequencer: NewSchedule(seed)}.
type Schedule struct {
	maxPark time.Duration

	mu     sync.Mutex
	rng    *workload.RNG
	points uint64
	counts [3]uint64
	log    []Decision
}

// NewSchedule creates a perturbator seeded with seed. Parks are bounded at
// 50µs so even park-heavy schedules finish quickly.
func NewSchedule(seed uint64) *Schedule {
	return &Schedule{
		maxPark: 50 * time.Microsecond,
		rng:     workload.NewRNG(seed),
	}
}

// Point implements core.Sequencer. It is called by the runtime with no locks
// held, so parking here can delay the object but never deadlock it.
func (s *Schedule) Point(p core.SeqPoint, object, entry string, callID uint64) {
	s.mu.Lock()
	s.points++
	d, park := s.decide()
	s.counts[d]++
	if len(s.log) < logCap {
		s.log = append(s.log, d)
	}
	switch d {
	case DecidePark:
		// Parking inside the mutex serializes the whole system through this
		// decision: every goroutine at a Point waits until the park ends.
		time.Sleep(park)
		s.mu.Unlock()
	case DecideYield:
		s.mu.Unlock()
		runtime.Gosched()
	default:
		s.mu.Unlock()
	}
}

// decide draws the next decision: 50% run, 37.5% yield, 12.5% park with a
// seeded duration in [1µs, maxPark]. Called with s.mu held.
func (s *Schedule) decide() (Decision, time.Duration) {
	r := s.rng.Uint64()
	switch {
	case r&7 < 4:
		return DecideRun, 0
	case r&7 < 7:
		return DecideYield, 0
	default:
		span := uint64(s.maxPark / time.Microsecond)
		return DecidePark, time.Duration(1+(r>>32)%span) * time.Microsecond
	}
}

// Points reports how many decision points this schedule has served.
func (s *Schedule) Points() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.points
}

// Counts reports how many times each Decision was taken, indexed by Decision.
func (s *Schedule) Counts() [3]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts
}

// Log returns the recorded decision stream (capped at an internal bound), for
// determinism tests: two same-seed schedules fed the same point sequence
// produce identical logs.
func (s *Schedule) Log() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Decision(nil), s.log...)
}
