package conformance

import "fmt"

// RepOp is one client-observed call in a replicated counter history: the
// routing key, the issuing client, that client's per-key issue number
// (synchronous clients number 0,1,2,... — a RETRY keeps its number), the
// counter value the acknowledged call returned, and optional wall-clock
// bounds (UnixNano; 0 = unknown) for the real-time check. Read marks a
// read-only observation (the ReadIndex fast path): it returns the
// counter without advancing it, so the oracle holds it to observation
// rules rather than increment rules.
type RepOp struct {
	Key    string
	Client string
	Seq    int
	Value  uint64
	Start  int64
	End    int64
	Read   bool
}

// CheckLinearizable replays a per-key increment history against the
// promises a consensus-replicated object makes across failover
// (docs/REPLICATION.md). It extends CheckKeyOrder from "executions land
// in order on one executor" to "acknowledged results are consistent with
// ONE total order of increments", which is what survives a leader kill:
//
//	per-key-fifo:     for each (client, key), issue numbers are gapless
//	                  and in order — the ledger records synchronous
//	                  sessions faithfully.
//	value-duplicated: no two acknowledged calls observed the same counter
//	                  value — two increments can never return the same
//	                  value in any linear order. A duplicate means a
//	                  retried call re-executed: exactly-once broken.
//	lost-update:      end-of-run, the observed values for a key are
//	                  exactly {1..N} for N observed calls. A gap means the
//	                  counter advanced without any acknowledged owner —
//	                  a double-apply consumed the missing value.
//	session-order:    for each (client, key), returned values strictly
//	                  increase in issue order — a session never observes
//	                  the counter moving backwards across a failover.
//	                  Reads may repeat the session's last value (two
//	                  reads with no write between them), but never sink
//	                  below it.
//	real-time:        for op pairs with known bounds, an op that ENDED
//	                  before another STARTED must hold the smaller value —
//	                  the linearization respects wall-clock precedence,
//	                  not just per-session order. Pairwise, O(n²) per key:
//	                  sized for harness ledgers, not production traces.
//
// Reads are held to observation rules instead of increment rules: they
// are excluded from value-duplicated and lost-update (many reads may
// legally observe one value, and reads never mint values), and gain two
// rules of their own:
//
//	stale-read:       a read that STARTED after an increment ENDED must
//	                  observe at least that increment's value, and an
//	                  increment that STARTED after a read ENDED must
//	                  produce a value strictly above what the read saw —
//	                  the ReadIndex fast path may never serve a commit
//	                  frontier that misses an acknowledged write.
//	read-unwritten:   end-of-run, no read observed a value above the
//	                  key's highest acknowledged increment — a read that
//	                  sees a value no write owns observed a double-apply
//	                  or phantom entry.
//
// Together (values distinct, contiguous, session-monotonic, real-time
// consistent, reads observing exactly the committed prefix) these
// certify the history is linearizable: order-by-value is a legal
// linearization, with each read slotted after the increment it observed.
func CheckLinearizable(ops []RepOp) []Divergence {
	type ck struct{ client, key string }
	type cks struct {
		client, key string
		seq         int
	}
	type kv struct {
		key   string
		value uint64
	}
	var divs []Divergence
	seen := make(map[cks]int)
	valueAt := make(map[kv]int)
	lastSeq := make(map[ck]int)
	lastVal := make(map[ck]uint64)
	count := make(map[string]int)
	maxVal := make(map[string]uint64)
	maxRead := make(map[string]uint64)
	for i, op := range ops {
		id := cks{op.Client, op.Key, op.Seq}
		if first, dup := seen[id]; dup {
			divs = append(divs, Divergence{
				Rule:  "at-most-once",
				Entry: op.Key,
				Index: i,
				Detail: fmt.Sprintf("client %q key %q seq %d acknowledged twice (first at index %d)",
					op.Client, op.Key, op.Seq, first),
			})
			continue
		}
		seen[id] = i

		if op.Read {
			if op.Value > maxRead[op.Key] {
				maxRead[op.Key] = op.Value
			}
		} else {
			v := kv{op.Key, op.Value}
			if first, dup := valueAt[v]; dup {
				divs = append(divs, Divergence{
					Rule:  "value-duplicated",
					Entry: op.Key,
					Index: i,
					Detail: fmt.Sprintf("key %q value %d observed twice (first at index %d) — a retry re-executed",
						op.Key, op.Value, first),
				})
			} else {
				valueAt[v] = i
			}
			count[op.Key]++
			if op.Value > maxVal[op.Key] {
				maxVal[op.Key] = op.Value
			}
		}

		c := ck{op.Client, op.Key}
		last, started := lastSeq[c]
		want := 0
		if started {
			want = last + 1
		}
		if op.Seq != want {
			divs = append(divs, Divergence{
				Rule:  "per-key-fifo",
				Entry: op.Key,
				Index: i,
				Detail: fmt.Sprintf("client %q key %q issued seq %d, expected %d",
					op.Client, op.Key, op.Seq, want),
			})
		}
		// Increments strictly advance a session's view; reads may repeat
		// it but never regress it.
		if started && (op.Value < lastVal[c] || (!op.Read && op.Value == lastVal[c])) {
			divs = append(divs, Divergence{
				Rule:  "session-order",
				Entry: op.Key,
				Index: i,
				Detail: fmt.Sprintf("client %q key %q observed value %d after value %d — session moved backwards",
					op.Client, op.Key, op.Value, lastVal[c]),
			})
		}
		if !started || op.Seq > last {
			lastSeq[c] = op.Seq
		}
		if op.Value > lastVal[c] {
			lastVal[c] = op.Value
		}
	}

	// End-of-run: the acknowledged values of each key must be exactly
	// {1..N}. (Duplicates are already reported above; here gaps surface.)
	for key, n := range count {
		if max := maxVal[key]; max != uint64(n) {
			missing := make([]uint64, 0, 4)
			for v := uint64(1); v <= max && len(missing) < 4; v++ {
				if _, ok := valueAt[kv{key, v}]; !ok {
					missing = append(missing, v)
				}
			}
			divs = append(divs, Divergence{
				Rule:  "lost-update",
				Entry: key,
				Index: -1,
				Detail: fmt.Sprintf("key %q: %d acknowledged calls but counter reached %d (missing values %v…) — increments applied without an owner",
					key, n, max, missing),
			})
		}
	}

	// End-of-run: every value a read observed must be owned by some
	// acknowledged increment.
	for key, mr := range maxRead {
		if mr > maxVal[key] {
			divs = append(divs, Divergence{
				Rule:  "read-unwritten",
				Entry: key,
				Index: -1,
				Detail: fmt.Sprintf("key %q: a read observed value %d but the highest acknowledged increment is %d — the read saw an unowned apply",
					key, mr, maxVal[key]),
			})
		}
	}

	// Real-time precedence, where timestamps are known: for a ending
	// before b starts, b's observation must be consistent with a's effect
	// (or observation) being already linearized. Increments must strictly
	// advance past a preceding read's view; reads must carry at least the
	// preceding op's value. A read that undercuts a finished increment is
	// the stale-read class the ReadIndex quorum round exists to prevent.
	for i, a := range ops {
		if a.End == 0 {
			continue
		}
		for j, b := range ops {
			if i == j || b.Start == 0 || a.Key != b.Key || a.End >= b.Start {
				continue
			}
			switch {
			case b.Read && b.Value < a.Value:
				divs = append(divs, Divergence{
					Rule:  "stale-read",
					Entry: a.Key,
					Index: j,
					Detail: fmt.Sprintf("key %q: read observed value %d after a call holding value %d had finished — the committed prefix was missed",
						a.Key, b.Value, a.Value),
				})
			case !b.Read && a.Read && b.Value <= a.Value:
				divs = append(divs, Divergence{
					Rule:  "stale-read",
					Entry: a.Key,
					Index: j,
					Detail: fmt.Sprintf("key %q: increment produced value %d after a read had already observed %d — the increment landed behind the read",
						a.Key, b.Value, a.Value),
				})
			case !b.Read && !a.Read && a.Value > b.Value:
				divs = append(divs, Divergence{
					Rule:  "real-time",
					Entry: a.Key,
					Index: j,
					Detail: fmt.Sprintf("key %q: call with value %d finished before the call with value %d started — no linear order explains both",
						a.Key, a.Value, b.Value),
				})
			}
		}
	}
	return divs
}
