package conformance

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Style selects how the generated manager serves an entry's calls.
type Style int

const (
	// StyleExecute accepts each call and runs it inline via Mgr.Execute
	// ("execute P" = start; await; finish, §2.3).
	StyleExecute Style = iota + 1
	// StylePipeline drives the full accept → start → await → finish
	// pipeline, rewriting the intercepted parameter prefix at start and the
	// intercepted result prefix at finish (initial-subsequence transfer,
	// §2.6).
	StylePipeline
	// StyleCombine answers calls whose token hashes even by FinishAccepted —
	// request combining, §2.7: the caller gets results although no body ever
	// ran — and executes the rest.
	StyleCombine
	// StyleDirect leaves the entry out of the intercepts clause: calls start
	// as soon as an array element frees up, with no manager involvement.
	StyleDirect
)

// String implements fmt.Stringer.
func (s Style) String() string {
	switch s {
	case StyleExecute:
		return "execute"
	case StylePipeline:
		return "pipeline"
	case StyleCombine:
		return "combine"
	case StyleDirect:
		return "direct"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// EntryProgram is the generated shape of one entry: its hidden-array width,
// hidden parameter/result arity, manager style and guard decorations.
type EntryProgram struct {
	Name   string
	Style  Style
	Array  int // hidden-procedure-array width, 1..4
	Hidden int // hidden params == hidden results, 0..2 (0 for StyleDirect)

	// Guard decorations (intercepted styles only). When attaches an
	// acceptance condition that reads the scratch handle's intercepted
	// params; PriRT attaches a run-time priority computed from them; a
	// constant Pri is used otherwise. Both exercise §2.4's rule that guard
	// evaluation happens on temporaries and commits nothing.
	When  bool
	PriRT bool
	Pri   int
}

// Program is one generated manager program: a set of entries plus the seed
// it was derived from. The same seed always regenerates the same program.
type Program struct {
	Seed    uint64
	Entries []EntryProgram
}

// GenerateProgram derives a random manager program from seed: 2–4 entries
// with hidden arrays of width 1–4, a mix of manager styles, hidden
// parameters, and When/Pri guard decorations. Entry 0 is always intercepted
// so every program has a manager.
func GenerateProgram(seed uint64) Program {
	rng := workload.NewRNG(seed ^ 0xa1b5c3d7e9f01234)
	p := Program{Seed: seed}
	n := 2 + rng.Intn(3) // 2..4 entries
	for i := 0; i < n; i++ {
		ep := EntryProgram{
			Name:   fmt.Sprintf("E%d", i),
			Array:  1 + rng.Intn(4),
			Hidden: rng.Intn(3),
		}
		style := 1 + rng.Intn(4)
		if i == 0 && Style(style) == StyleDirect {
			style = int(StyleExecute) // at least one intercepted entry
		}
		ep.Style = Style(style)
		if ep.Style == StyleDirect {
			ep.Hidden = 0 // hidden values are supplied by the manager at start
		} else {
			ep.When = rng.Bool(0.5)
			if rng.Bool(0.4) {
				ep.PriRT = true
			} else {
				ep.Pri = rng.Intn(3)
			}
		}
		p.Entries = append(p.Entries, ep)
	}
	return p
}

// Expected computes the result a caller of ep must receive for token. Every
// style's transform chain is deterministic, so the harness can verify the
// paper's parameter/result transfer end to end:
//
//	execute/combine/direct: body (or combining manager) answers "R:"+token
//	pipeline:               manager start rewrites the param to "P:"+token,
//	                        body answers "R:P:"+token, manager finish
//	                        rewrites the result to "F:R:P:"+token
func (ep EntryProgram) Expected(token string) string {
	if ep.Style == StylePipeline {
		return "F:R:P:" + token
	}
	return "R:" + token
}

// Combinable reports whether a StyleCombine manager answers token by
// combining (even FNV hash) or by executing a body (odd).
func Combinable(token string) bool {
	h := fnv.New64a()
	_, _ = h.Write([]byte(token))
	return h.Sum64()%2 == 0
}

// Probe collects the program-level observations the trace cannot express:
// guard predicate evaluations (the When/Pri temporaries check), hidden
// parameter/result mismatches, and manager primitive errors.
type Probe struct {
	WhenEvals       atomic.Uint64 // When predicate evaluations
	PriEvals        atomic.Uint64 // run-time priority evaluations
	HiddenBad       atomic.Uint64 // body saw wrong hidden params
	HiddenResultBad atomic.Uint64 // manager saw wrong hidden results
	Combined        atomic.Uint64 // calls answered by FinishAccepted
	MgrErrors       atomic.Uint64 // primitive errors before close
	closed          atomic.Bool   // set by Run just before Close: shutdown errors are expected
}

func (pr *Probe) noteMgrErr(err error) {
	if err == nil || pr.closed.Load() {
		return
	}
	pr.MgrErrors.Add(1)
}

// hiddenVals is the deterministic hidden-parameter vector the manager
// supplies at start/execute: entry-h0, entry-h1, ...
func hiddenVals(ep EntryProgram) []core.Value {
	if ep.Hidden == 0 {
		return nil
	}
	out := make([]core.Value, ep.Hidden)
	for i := range out {
		out[i] = fmt.Sprintf("%s-h%d", ep.Name, i)
	}
	return out
}

// Build constructs a live object implementing program p, with the given
// schedule perturbator and trace recorder injected. The returned Probe
// accumulates program-level observations; call Close on the object when the
// workload is done.
func Build(p Program, seq core.Sequencer, rec *trace.Recorder) (*core.Object, *Probe, error) {
	probe := &Probe{}
	var opts []core.Option
	var intercepts []core.InterceptSpec
	for _, ep := range p.Entries {
		ep := ep
		body := func(inv *core.Invocation) error {
			tok, _ := inv.Param(0).(string)
			for i := 0; i < ep.Hidden; i++ {
				if want := fmt.Sprintf("%s-h%d", ep.Name, i); inv.Hidden(i) != want {
					probe.HiddenBad.Add(1)
				}
			}
			if ep.Hidden > 0 {
				// Echo the hidden params back reversed, so the manager can
				// verify hidden-result transfer (§2.8).
				rev := make([]core.Value, ep.Hidden)
				for i := range rev {
					rev[i] = inv.Hidden(ep.Hidden - 1 - i)
				}
				inv.ReturnHidden(rev...)
			}
			inv.Return("R:" + tok)
			return nil
		}
		opts = append(opts, core.WithEntry(core.EntrySpec{
			Name: ep.Name, Params: 1, Results: 1, Array: ep.Array,
			HiddenParams: ep.Hidden, HiddenResults: ep.Hidden,
			Body: body,
		}))
		switch ep.Style {
		case StyleExecute:
			intercepts = append(intercepts, core.InterceptPR(ep.Name, 1, 0))
		case StylePipeline, StyleCombine:
			intercepts = append(intercepts, core.InterceptPR(ep.Name, 1, 1))
		}
	}

	mgrFn := func(m *core.Mgr) {
		var guards []core.Guard
		for _, ep := range p.Entries {
			ep := ep
			checkHidden := func(aw *core.Awaited) {
				for i := 0; i < ep.Hidden; i++ {
					want := fmt.Sprintf("%s-h%d", ep.Name, ep.Hidden-1-i)
					if i >= len(aw.Hidden) || aw.Hidden[i] != want {
						probe.HiddenResultBad.Add(1)
					}
				}
			}
			var g core.Guard
			switch ep.Style {
			case StyleExecute:
				g = core.OnAccept(ep.Name, func(a *core.Accepted) {
					aw, err := m.Execute(a, hiddenVals(ep)...)
					if err != nil {
						probe.noteMgrErr(err)
						return
					}
					checkHidden(aw)
				})
			case StylePipeline:
				g = core.OnAccept(ep.Name, func(a *core.Accepted) {
					// Initial-subsequence parameter transfer: replace the
					// intercepted prefix before start (§2.6).
					tok, _ := a.Params[0].(string)
					a.Params[0] = "P:" + tok
					probe.noteMgrErr(m.Start(a, hiddenVals(ep)...))
				})
				aw := core.OnAwait(ep.Name, func(aw *core.Awaited) {
					checkHidden(aw)
					res, _ := aw.Results[0].(string)
					probe.noteMgrErr(m.Finish(aw, "F:"+res))
				})
				guards = append(guards, decorateAwait(aw, ep, probe))
			case StyleCombine:
				g = core.OnAccept(ep.Name, func(a *core.Accepted) {
					tok, _ := a.Params[0].(string)
					if Combinable(tok) {
						// Request combining: answer without running a body.
						if err := m.FinishAccepted(a, "R:"+tok); err != nil {
							probe.noteMgrErr(err)
							return
						}
						probe.Combined.Add(1)
						return
					}
					aw, err := m.Execute(a, hiddenVals(ep)...)
					if err != nil {
						probe.noteMgrErr(err)
						return
					}
					checkHidden(aw)
				})
			default: // StyleDirect: no guard
				continue
			}
			guards = append(guards, decorateAccept(g, ep, probe))
		}
		_ = m.Loop(guards...)
	}

	opts = append(opts,
		core.WithManager(mgrFn, intercepts...),
		core.WithTrace(rec),
		core.WithObjectOptions(core.ObjectOptions{Sequencer: seq}),
	)
	o, err := core.New(fmt.Sprintf("conf-%x", p.Seed), opts...)
	if err != nil {
		return nil, nil, err
	}
	return o, probe, nil
}

// decorateAccept applies the generated When/Pri decorations to an accept
// guard. The predicates read the scratch handle's intercepted params — §2.4:
// acceptance conditions and run-time priorities are evaluated against the
// values that would be received, on temporaries, committing nothing.
func decorateAccept(g core.Guard, ep EntryProgram, probe *Probe) core.Guard {
	if ep.When {
		g = g.When(func(a *core.Accepted) bool {
			probe.WhenEvals.Add(1)
			tok, _ := a.Params[0].(string)
			return !strings.HasPrefix(tok, "\x00") // reads the temporary; always true
		})
	}
	if ep.PriRT {
		g = g.PriAccept(func(a *core.Accepted) int {
			probe.PriEvals.Add(1)
			tok, _ := a.Params[0].(string)
			return len(tok) % 3
		})
	} else {
		g = g.Pri(ep.Pri)
	}
	return g
}

// decorateAwait mirrors decorateAccept for the pipeline's await guard.
func decorateAwait(g core.Guard, ep EntryProgram, probe *Probe) core.Guard {
	if ep.When {
		g = g.WhenAwait(func(aw *core.Awaited) bool {
			probe.WhenEvals.Add(1)
			return aw.Err == nil // reads the temporary; generated bodies never fail
		})
	}
	if !ep.PriRT {
		g = g.Pri(ep.Pri)
	}
	return g
}
