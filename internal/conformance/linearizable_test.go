package conformance

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/simnet"
)

// has reports whether divs contains a divergence of rule.
func has(divs []Divergence, rule string) bool {
	for _, d := range divs {
		if d.Rule == rule {
			return true
		}
	}
	return false
}

// TestCheckLinearizableNegativeControls: the oracle must accept a clean
// interleaved history and flag each corruption class — an oracle that
// cannot fail is not an oracle.
func TestCheckLinearizableNegativeControls(t *testing.T) {
	clean := []RepOp{
		{Key: "k", Client: "p", Seq: 0, Value: 1},
		{Key: "k", Client: "q", Seq: 0, Value: 2},
		{Key: "k", Client: "p", Seq: 1, Value: 3},
		{Key: "k", Client: "q", Seq: 1, Value: 4},
	}
	cases := []struct {
		name string
		ops  []RepOp
		rule string // "" = expect clean
	}{
		{"clean interleaved history", clean, ""},
		{"re-executed retry duplicates a value", []RepOp{
			{Key: "k", Client: "p", Seq: 0, Value: 1},
			{Key: "k", Client: "q", Seq: 0, Value: 1},
		}, "value-duplicated"},
		{"double-apply leaves an unowned value", []RepOp{
			{Key: "k", Client: "p", Seq: 0, Value: 1},
			{Key: "k", Client: "p", Seq: 1, Value: 2},
			{Key: "k", Client: "p", Seq: 2, Value: 4}, // value 3 applied, never acknowledged
		}, "lost-update"},
		{"session observes the counter moving backwards", []RepOp{
			{Key: "k", Client: "p", Seq: 0, Value: 2},
			{Key: "k", Client: "p", Seq: 1, Value: 1},
		}, "session-order"},
		{"issue numbering gap", []RepOp{
			{Key: "k", Client: "p", Seq: 0, Value: 1},
			{Key: "k", Client: "p", Seq: 2, Value: 2},
		}, "per-key-fifo"},
		{"same call acknowledged twice", []RepOp{
			{Key: "k", Client: "p", Seq: 0, Value: 1},
			{Key: "k", Client: "p", Seq: 0, Value: 2},
		}, "at-most-once"},
		{"wall-clock precedence inverted", []RepOp{
			{Key: "k", Client: "p", Seq: 0, Value: 2, Start: 10, End: 20},
			{Key: "k", Client: "q", Seq: 0, Value: 1, Start: 30, End: 40},
		}, "real-time"},
		{"clean history with interleaved reads", []RepOp{
			{Key: "k", Client: "p", Seq: 0, Value: 1, Start: 10, End: 20},
			{Key: "k", Client: "q", Seq: 0, Value: 1, Start: 30, End: 40, Read: true},
			{Key: "k", Client: "q", Seq: 1, Value: 1, Start: 50, End: 60, Read: true},
			{Key: "k", Client: "p", Seq: 1, Value: 2, Start: 70, End: 80},
			{Key: "k", Client: "q", Seq: 2, Value: 2, Start: 90, End: 100, Read: true},
		}, ""},
		{"stale read misses a committed write", []RepOp{
			{Key: "k", Client: "p", Seq: 0, Value: 1, Start: 10, End: 20},
			{Key: "k", Client: "p", Seq: 1, Value: 2, Start: 30, End: 40},
			{Key: "k", Client: "q", Seq: 0, Value: 1, Start: 50, End: 60, Read: true},
		}, "stale-read"},
		{"increment lands behind a finished read", []RepOp{
			{Key: "k", Client: "p", Seq: 0, Value: 1, Start: 10, End: 20},
			{Key: "k", Client: "q", Seq: 0, Value: 1, Start: 30, End: 40, Read: true},
			{Key: "k", Client: "p", Seq: 1, Value: 1, Start: 50, End: 60},
		}, "stale-read"},
		{"read observes a value no increment owns", []RepOp{
			{Key: "k", Client: "p", Seq: 0, Value: 1},
			{Key: "k", Client: "q", Seq: 0, Value: 3, Read: true},
		}, "read-unwritten"},
		{"session read regresses across failover", []RepOp{
			{Key: "k", Client: "p", Seq: 0, Value: 2, Read: true},
			{Key: "k", Client: "p", Seq: 1, Value: 1, Read: true},
		}, "session-order"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			divs := CheckLinearizable(c.ops)
			if c.rule == "" {
				if len(divs) != 0 {
					t.Fatalf("clean history flagged: %v", divs)
				}
				return
			}
			if !has(divs, c.rule) {
				t.Fatalf("corruption not flagged as %q; got %v", c.rule, divs)
			}
		})
	}
}

// counterCallable is the replicated object under test: a keyed counter.
type counterCallable struct {
	mu   sync.Mutex
	data map[string]uint64
}

func (o *counterCallable) CallCtx(_ context.Context, entry string, params ...any) ([]any, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	switch entry {
	case "Inc":
		key, _ := params[0].(string)
		o.data[key]++
		return []any{o.data[key]}, nil
	case "Get":
		key, _ := params[0].(string)
		return []any{o.data[key]}, nil
	default:
		return nil, fmt.Errorf("counter: unknown entry %q", entry)
	}
}

// leaderKiller is the core.Sequencer hook that turns "kill the leader
// mid-traffic" into a deterministic schedule: it counts occurrences of
// one sequencer point — SeqMgrExecute (one per applied log entry) for
// the write soak, SeqMgrStart (emitted between ReadIndex confirmation
// and local serve) for the read soak — and, at the configured count,
// crashes the member iff it is the leader. One kill fires per run (the
// flag is shared group-wide); with fixed network, election and workload
// seeds the same member dies at the same point every time.
type leaderKiller struct {
	point core.SeqPoint
	after uint64
	count atomic.Uint64
	fired *atomic.Bool
	lead  func() bool
	crash func()
}

func (k *leaderKiller) Point(p core.SeqPoint, _, _ string, _ uint64) {
	if p != k.point {
		return
	}
	if k.count.Add(1) < k.after || !k.lead() || k.fired.Swap(true) {
		return
	}
	go k.crash() // async: Close waits for the loop this runs on
}

// TestReplicatedHistoryLinearizableAcrossLeaderKill is the acceptance
// soak: three replicas over simnet, two synchronous clients hammering
// two keys, and a Sequencer-scheduled kill of the leader mid-traffic.
// Every acknowledged call must fit one linear order per key.
func TestReplicatedHistoryLinearizableAcrossLeaderKill(t *testing.T) {
	nw := simnet.New(simnet.Config{Seed: 21})
	ids := []string{"A", "B", "C"}
	peers := map[string]string{"A": "A", "B": "B", "C": "C"}
	fired := &atomic.Bool{}

	type memberT struct {
		rep  *replica.Replica
		node *rpc.Node
	}
	members := make(map[string]*memberT)
	for _, id := range ids {
		id := id
		obj := &counterCallable{data: make(map[string]uint64)}
		killer := &leaderKiller{point: core.SeqMgrExecute, after: 12, fired: fired}
		rep, err := replica.New(replica.Config{
			ID:    id,
			Group: "KV",
			Peers: peers,
			Dial: func(addr string) (net.Conn, error) {
				return nw.DialFrom(id, addr)
			},
			ElectionTimeout: 60 * time.Millisecond,
			Seed:            13,
			Sequencer:       killer,
		}, obj)
		if err != nil {
			t.Fatal(err)
		}
		node := rpc.NewNode(id)
		if err := rep.Publish(node); err != nil {
			t.Fatal(err)
		}
		lis, err := nw.Listen(id)
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = node.Serve(lis) }()
		m := &memberT{rep: rep, node: node}
		members[id] = m
		killer.lead = func() bool {
			role, _, _ := rep.Status()
			return role == replica.Leader
		}
		killer.crash = func() {
			t.Logf("sequencer: killing leader %s", id)
			nw.Kill(id)
			rep.Close()
			node.Close()
		}
		t.Cleanup(func() {
			rep.Close()
			node.Close()
		})
	}

	keys := []string{"x", "y"}
	const perClient = 24 // 12 per key per client; the kill fires mid-run
	var (
		opsMu sync.Mutex
		ops   []RepOp
	)
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, clientID := range []string{"alice", "bob"} {
		clientID := clientID
		wg.Add(1)
		go func() {
			defer wg.Done()
			var next atomic.Uint64
			redial := func() (net.Conn, error) {
				var lastErr error
				for range ids {
					addr := ids[int(next.Add(1)-1)%len(ids)]
					conn, err := nw.DialFrom(clientID, addr)
					if err == nil {
						return conn, nil
					}
					lastErr = err
				}
				return nil, fmt.Errorf("all members down: %w", lastErr)
			}
			conn, err := redial()
			if err != nil {
				errs <- err
				return
			}
			rem := rpc.DialConnWith(conn, rpc.DialOptions{
				ClientID: clientID,
				Redial:   redial,
				Retry: rpc.RetryPolicy{
					Max:            200,
					Backoff:        time.Millisecond,
					MaxBackoff:     25 * time.Millisecond,
					AttemptTimeout: time.Second,
				},
			})
			defer rem.Close()
			seqPerKey := make(map[string]int)
			for i := 0; i < perClient; i++ {
				key := keys[i%len(keys)]
				start := time.Now().UnixNano()
				res, err := rem.Call("KV", "Inc", key)
				end := time.Now().UnixNano()
				if err != nil {
					errs <- fmt.Errorf("%s: Inc %s #%d: %w", clientID, key, i, err)
					return
				}
				op := RepOp{
					Key: key, Client: clientID, Seq: seqPerKey[key],
					Value: res[0].(uint64), Start: start, End: end,
				}
				seqPerKey[key]++
				opsMu.Lock()
				ops = append(ops, op)
				opsMu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !fired.Load() {
		t.Fatal("the scheduled leader kill never fired — the soak did not test failover")
	}
	if divs := CheckLinearizable(ops); len(divs) != 0 {
		for _, d := range divs {
			t.Error(d)
		}
		t.Fatalf("replicated history not linearizable across the leader kill (%d divergences)", len(divs))
	}
}

// TestReadIndexHistoryLinearizableAcrossLeaderKill is the ReadIndex
// acceptance soak: the Sequencer kills the leader INSIDE the read fast
// path — after quorum confirmation, before the local serve — which is
// exactly the window where a naive implementation would serve a stale
// frontier from a deposed leader. Every acknowledged read must still
// fit the per-key linear order: it either failed typed-retryable (and
// the client's retry observed the new leader's committed prefix) or the
// value it returned is consistent with every increment that finished
// before it started.
func TestReadIndexHistoryLinearizableAcrossLeaderKill(t *testing.T) {
	nw := simnet.New(simnet.Config{Seed: 41})
	ids := []string{"A", "B", "C"}
	peers := map[string]string{"A": "A", "B": "B", "C": "C"}
	fired := &atomic.Bool{}

	type memberT struct {
		rep  *replica.Replica
		node *rpc.Node
	}
	members := make(map[string]*memberT)
	for _, id := range ids {
		id := id
		obj := &counterCallable{data: make(map[string]uint64)}
		killer := &leaderKiller{point: core.SeqMgrStart, after: 8, fired: fired}
		rep, err := replica.New(replica.Config{
			ID:    id,
			Group: "KV",
			Peers: peers,
			Dial: func(addr string) (net.Conn, error) {
				return nw.DialFrom(id, addr)
			},
			ElectionTimeout: 60 * time.Millisecond,
			Seed:            23,
			Sequencer:       killer,
			ReadOnly:        func(entry string) bool { return entry == "Get" },
		}, obj)
		if err != nil {
			t.Fatal(err)
		}
		node := rpc.NewNode(id)
		if err := rep.Publish(node); err != nil {
			t.Fatal(err)
		}
		lis, err := nw.Listen(id)
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = node.Serve(lis) }()
		m := &memberT{rep: rep, node: node}
		members[id] = m
		killer.lead = func() bool {
			role, _, _ := rep.Status()
			return role == replica.Leader
		}
		killer.crash = func() {
			t.Logf("sequencer: killing leader %s inside the read window", id)
			nw.Kill(id)
			rep.Close()
			node.Close()
		}
		t.Cleanup(func() {
			rep.Close()
			node.Close()
		})
	}

	keys := []string{"x", "y"}
	const perClient = 32 // alternating Inc/Get per key; the kill fires mid-run
	var (
		opsMu sync.Mutex
		ops   []RepOp
	)
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, clientID := range []string{"alice", "bob"} {
		clientID := clientID
		wg.Add(1)
		go func() {
			defer wg.Done()
			var next atomic.Uint64
			redial := func() (net.Conn, error) {
				var lastErr error
				for range ids {
					addr := ids[int(next.Add(1)-1)%len(ids)]
					conn, err := nw.DialFrom(clientID, addr)
					if err == nil {
						return conn, nil
					}
					lastErr = err
				}
				return nil, fmt.Errorf("all members down: %w", lastErr)
			}
			conn, err := redial()
			if err != nil {
				errs <- err
				return
			}
			rem := rpc.DialConnWith(conn, rpc.DialOptions{
				ClientID: clientID,
				Redial:   redial,
				Retry: rpc.RetryPolicy{
					Max:            200,
					Backoff:        time.Millisecond,
					MaxBackoff:     25 * time.Millisecond,
					AttemptTimeout: time.Second,
				},
			})
			defer rem.Close()
			seqPerKey := make(map[string]int)
			for i := 0; i < perClient; i++ {
				key := keys[i%len(keys)]
				read := i%4 >= 2 // Inc, Inc, Get, Get per key round-robin
				entry := "Inc"
				if read {
					entry = "Get"
				}
				start := time.Now().UnixNano()
				res, err := rem.Call("KV", entry, key)
				end := time.Now().UnixNano()
				if err != nil {
					errs <- fmt.Errorf("%s: %s %s #%d: %w", clientID, entry, key, i, err)
					return
				}
				op := RepOp{
					Key: key, Client: clientID, Seq: seqPerKey[key],
					Value: res[0].(uint64), Start: start, End: end, Read: read,
				}
				seqPerKey[key]++
				opsMu.Lock()
				ops = append(ops, op)
				opsMu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !fired.Load() {
		t.Fatal("the scheduled read-window leader kill never fired — the soak did not test the confirm-then-serve race")
	}
	if divs := CheckLinearizable(ops); len(divs) != 0 {
		for _, d := range divs {
			t.Error(d)
		}
		t.Fatalf("read/write history not linearizable across the read-window leader kill (%d divergences)", len(divs))
	}
}
