package conformance

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/trace"
	"repro/internal/workload"
)

// RunConfig identifies one conformance run completely: a program seed (which
// manager program to generate), a schedule seed (which interleavings the
// perturbator provokes), and the client workload dimensions.
type RunConfig struct {
	ProgramSeed  uint64
	ScheduleSeed uint64
	Clients      int // concurrent caller goroutines (min 1)
	Ops          int // synchronous calls per client (min 1)
}

// String renders the config as a stable one-liner for logs and reproducers.
func (c RunConfig) String() string {
	return fmt.Sprintf("program=%#x schedule=%#x clients=%d ops=%d",
		c.ProgramSeed, c.ScheduleSeed, c.Clients, c.Ops)
}

func (c RunConfig) normalized() RunConfig {
	if c.Clients < 1 {
		c.Clients = 1
	}
	if c.Ops < 1 {
		c.Ops = 1
	}
	return c
}

// Report is the outcome of one conformance run. A run conforms iff
// Divergences is empty: the trace replayed cleanly through the reference
// model, every caller saw the exact transformed result the program's style
// dictates, and the probe counters agree with the trace.
type Report struct {
	Config      RunConfig
	Program     Program
	Meta        map[string]EntryMeta
	Divergences []Divergence
	Events      []trace.Event
	Calls       int    // client calls issued
	Combined    uint64 // calls answered by request combining
	Points      uint64 // scheduling decision points served
}

// OK reports whether the run produced no divergences.
func (r Report) OK() bool { return len(r.Divergences) == 0 }

// Run executes one (program, schedule) pair: it generates the program,
// builds the live object with the seeded perturbator and an unlimited trace
// recorder injected, drives it with the seeded client workload, then replays
// the recorded trace through the reference model and cross-checks
// caller-observed outcomes and probe counters against it.
func Run(cfg RunConfig) (Report, error) {
	cfg = cfg.normalized()
	prog := GenerateProgram(cfg.ProgramSeed)
	rec := trace.NewRecorder(0) // unlimited: a dropped event would read as a divergence
	sched := NewSchedule(cfg.ScheduleSeed)
	o, probe, err := Build(prog, sched, rec)
	if err != nil {
		return Report{Config: cfg, Program: prog}, err
	}
	meta := MetaFor(o)

	var (
		mu       sync.Mutex
		outcomes = make(map[string]Outcome)
		perEntry = make(map[string]int) // calls issued per entry
		divs     []Divergence
	)
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := workload.NewRNG(cfg.ProgramSeed ^ cfg.ScheduleSeed ^ (uint64(ci)+1)*0x9e3779b97f4a7c15)
			var local []Divergence
			localOut := make(map[string]Outcome)
			localCalls := make(map[string]int)
			for op := 0; op < cfg.Ops; op++ {
				ep := prog.Entries[rng.Intn(len(prog.Entries))]
				// Variable-length tokens so run-time priorities (len%3)
				// actually discriminate between competitors.
				token := fmt.Sprintf("c%d-%d%s", ci, op, strings.Repeat("x", rng.Intn(3)))
				localCalls[ep.Name]++
				results, err := o.Call(ep.Name, token)
				out := localOut[ep.Name]
				if err != nil {
					out.Err++
					local = append(local, Divergence{
						Rule:  "call-error",
						Entry: ep.Name,
						Index: -1,
						Detail: fmt.Sprintf("client %d op %d (%q): unexpected error: %v",
							ci, op, token, err),
					})
				} else {
					out.OK++
					want := ep.Expected(token)
					if len(results) != 1 || results[0] != want {
						local = append(local, Divergence{
							Rule:  "result-value",
							Entry: ep.Name,
							Index: -1,
							Detail: fmt.Sprintf("client %d op %d (%q): got %v, want [%q]",
								ci, op, token, results, want),
						})
					}
				}
				localOut[ep.Name] = out
			}
			mu.Lock()
			for k, v := range localOut {
				agg := outcomes[k]
				agg.OK += v.OK
				agg.Err += v.Err
				outcomes[k] = agg
			}
			for k, v := range localCalls {
				perEntry[k] += v
			}
			divs = append(divs, local...)
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	probe.closed.Store(true) // manager errors from shutdown drain are expected
	if err := o.Close(); err != nil {
		divs = append(divs, Divergence{
			Rule: "close-error", Index: -1,
			Detail: fmt.Sprintf("Close: %v", err),
		})
	}

	events := rec.Events()
	divs = append(divs, Check(events, meta)...)
	divs = append(divs, CheckOutcomes(events, outcomes)...)
	divs = append(divs, auditProbe(prog, probe, perEntry, events)...)

	return Report{
		Config:      cfg,
		Program:     prog,
		Meta:        meta,
		Divergences: divs,
		Events:      events,
		Calls:       cfg.Clients * cfg.Ops,
		Combined:    probe.Combined.Load(),
		Points:      sched.Points(),
	}, nil
}

// auditProbe cross-checks the program-level probe counters against the
// program shape and the trace: hidden parameter/result vectors intact, guard
// predicates actually evaluated for decorated entries that received calls,
// combining accounted for, no manager primitive errors.
func auditProbe(prog Program, probe *Probe, perEntry map[string]int, events []trace.Event) []Divergence {
	var divs []Divergence
	if n := probe.HiddenBad.Load(); n > 0 {
		divs = append(divs, Divergence{
			Rule: "hidden-param-mismatch", Index: -1,
			Detail: fmt.Sprintf("%d bodies saw hidden params differing from what the manager supplied", n),
		})
	}
	if n := probe.HiddenResultBad.Load(); n > 0 {
		divs = append(divs, Divergence{
			Rule: "hidden-result-mismatch", Index: -1,
			Detail: fmt.Sprintf("%d awaits saw hidden results differing from what the body returned", n),
		})
	}
	if n := probe.MgrErrors.Load(); n > 0 {
		divs = append(divs, Divergence{
			Rule: "manager-error", Index: -1,
			Detail: fmt.Sprintf("%d manager primitive errors before close", n),
		})
	}

	// §2.4: if any decorated entry was called, its acceptance condition /
	// run-time priority must have been evaluated at least once. (The counters
	// are aggregates, so this is a lower bound, never a false positive.)
	var whenCalled, priCalled bool
	for _, ep := range prog.Entries {
		if perEntry[ep.Name] == 0 {
			continue
		}
		if ep.When {
			whenCalled = true
		}
		if ep.PriRT {
			priCalled = true
		}
	}
	if whenCalled && probe.WhenEvals.Load() == 0 {
		divs = append(divs, Divergence{
			Rule: "guard-eval-missing", Index: -1,
			Detail: "entries with acceptance conditions received calls but no When predicate ever ran",
		})
	}
	if priCalled && probe.PriEvals.Load() == 0 {
		divs = append(divs, Divergence{
			Rule: "guard-eval-missing", Index: -1,
			Detail: "entries with run-time priorities received calls but no Pri function ever ran",
		})
	}

	var traced uint64
	for _, ev := range events {
		if ev.Kind == trace.Combined {
			traced++
		}
	}
	if got := probe.Combined.Load(); got != traced {
		divs = append(divs, Divergence{
			Rule: "combine-accounting", Index: -1,
			Detail: fmt.Sprintf("manager combined %d calls, trace recorded %d Combined events", got, traced),
		})
	}
	return divs
}

// Replay re-runs a previously failing (program, schedule) pair — the entry
// point emitted into shrunken reproducers — and returns its divergences.
func Replay(programSeed, scheduleSeed uint64, clients, ops int) ([]Divergence, error) {
	rep, err := Run(RunConfig{
		ProgramSeed:  programSeed,
		ScheduleSeed: scheduleSeed,
		Clients:      clients,
		Ops:          ops,
	})
	if err != nil {
		return nil, err
	}
	return rep.Divergences, nil
}
