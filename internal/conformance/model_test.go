package conformance

import (
	"testing"

	"repro/internal/trace"
)

// metaFixture declares the entries the hand-built streams use:
//
//	I — intercepted, 1 param / 1 result fully intercepted, array width 2
//	D — direct (outside the intercepts clause), array width 1
//	P — intercepted with only 1 of 2 params intercepted (combining illegal)
func metaFixture() map[string]EntryMeta {
	return map[string]EntryMeta{
		"I": {Name: "I", Params: 1, Results: 1, Array: 2, Intercepted: true, IPParams: 1, IPResults: 1},
		"D": {Name: "D", Params: 1, Results: 1, Array: 1},
		"P": {Name: "P", Params: 2, Results: 1, Array: 1, Intercepted: true, IPParams: 1, IPResults: 1},
	}
}

func ev(k trace.Kind, entry string, slot int, id uint64) trace.Event {
	return trace.Event{Object: "t", Entry: entry, Slot: slot, CallID: id, Kind: k}
}

// fullI is a complete, conformant lifecycle of call id on entry I in slot.
func fullI(id uint64, slot int) []trace.Event {
	return []trace.Event{
		ev(trace.Arrived, "I", -1, id),
		ev(trace.Attached, "I", slot, id),
		ev(trace.Accepted, "I", slot, id),
		ev(trace.Started, "I", slot, id),
		ev(trace.Ready, "I", slot, id),
		ev(trace.Awaited, "I", slot, id),
		ev(trace.Finished, "I", slot, id),
	}
}

func ruleSet(divs []Divergence) map[string]int {
	out := make(map[string]int)
	for _, d := range divs {
		out[d.Rule]++
	}
	return out
}

// wantRules asserts divs contains exactly the given rules (as a set).
func wantRules(t *testing.T, divs []Divergence, want ...string) {
	t.Helper()
	got := ruleSet(divs)
	wantSet := make(map[string]bool)
	for _, r := range want {
		wantSet[r] = true
		if got[r] == 0 {
			t.Errorf("missing expected divergence %q; got %v", r, divs)
		}
	}
	for r := range got {
		if !wantSet[r] {
			t.Errorf("unexpected divergence rule %q; got %v", r, divs)
		}
	}
}

func TestCheckConformantStreams(t *testing.T) {
	for name, events := range map[string][]trace.Event{
		"intercepted pipeline": fullI(1, 0),
		"direct entry": {
			ev(trace.Arrived, "D", -1, 1),
			ev(trace.Attached, "D", 0, 1),
			ev(trace.Started, "D", 0, 1),
			ev(trace.Finished, "D", 0, 1),
		},
		"combined request": {
			ev(trace.Arrived, "I", -1, 1),
			ev(trace.Attached, "I", 0, 1),
			ev(trace.Accepted, "I", 0, 1),
			ev(trace.Combined, "I", 0, 1),
		},
		"two calls two elements": append(fullI(1, 0), fullI(2, 1)...),
		"shed fresh id (reject-newest)": {
			ev(trace.Shed, "I", -1, 9),
		},
		"restart requeue with marker": {
			ev(trace.Arrived, "I", -1, 1),
			ev(trace.Attached, "I", 0, 1),
			ev(trace.Accepted, "I", 0, 1),
			ev(trace.MgrRestart, "", 0, 1),
			ev(trace.Attached, "I", 0, 1), // accepted → attached requeue
			ev(trace.Accepted, "I", 0, 1),
			ev(trace.Started, "I", 0, 1),
			ev(trace.Ready, "I", 0, 1),
			ev(trace.Awaited, "I", 0, 1),
			ev(trace.Finished, "I", 0, 1),
		},
		"close relaxation: runtime finishes started body": {
			ev(trace.Arrived, "I", -1, 1),
			ev(trace.Attached, "I", 0, 1),
			ev(trace.Accepted, "I", 0, 1),
			ev(trace.Started, "I", 0, 1),
			ev(trace.Closed, "", -1, 0),
			ev(trace.Finished, "I", 0, 1), // no await: manager is gone
		},
	} {
		t.Run(name, func(t *testing.T) {
			if divs := Check(events, metaFixture()); len(divs) != 0 {
				t.Errorf("conformant stream flagged: %v", divs)
			}
		})
	}
}

// TestCheckCatchesSkippedFinishEndorsement is the harness's own negative
// control: an implementation that delivers results without the manager's
// await+finish endorsement (the paper's central guarantee, §2.3) must be
// flagged. The stream below "forgets" the Awaited step.
func TestCheckCatchesSkippedFinishEndorsement(t *testing.T) {
	events := []trace.Event{
		ev(trace.Arrived, "I", -1, 1),
		ev(trace.Attached, "I", 0, 1),
		ev(trace.Accepted, "I", 0, 1),
		ev(trace.Started, "I", 0, 1),
		ev(trace.Ready, "I", 0, 1),
		ev(trace.Finished, "I", 0, 1), // skipped the manager's await
	}
	wantRules(t, Check(events, metaFixture()), "finish-without-await")
}

func TestCheckNegativeStreams(t *testing.T) {
	cases := []struct {
		name   string
		events []trace.Event
		rules  []string
	}{
		{
			name: "combine after start ran a body",
			events: []trace.Event{
				ev(trace.Arrived, "I", -1, 1),
				ev(trace.Attached, "I", 0, 1),
				ev(trace.Accepted, "I", 0, 1),
				ev(trace.Started, "I", 0, 1),
				ev(trace.Combined, "I", 0, 1),
			},
			rules: []string{"bad-combine", "combine-after-start"},
		},
		{
			name: "combining with partial param interception",
			events: []trace.Event{
				ev(trace.Arrived, "P", -1, 1),
				ev(trace.Attached, "P", 0, 1),
				ev(trace.Accepted, "P", 0, 1),
				ev(trace.Combined, "P", 0, 1),
			},
			rules: []string{"combine-partial-params"},
		},
		{
			name: "exclusion: two calls in one array element",
			events: []trace.Event{
				ev(trace.Arrived, "I", -1, 1),
				ev(trace.Attached, "I", 0, 1),
				ev(trace.Arrived, "I", -1, 2),
				ev(trace.Attached, "I", 0, 2), // element 0 still owned by call 1
				ev(trace.Accepted, "I", 0, 1),
				ev(trace.Started, "I", 0, 1),
				ev(trace.Ready, "I", 0, 1),
				ev(trace.Awaited, "I", 0, 1),
				ev(trace.Finished, "I", 0, 1),
				ev(trace.Accepted, "I", 0, 2),
				ev(trace.Started, "I", 0, 2),
				ev(trace.Ready, "I", 0, 2),
				ev(trace.Awaited, "I", 0, 2),
				ev(trace.Finished, "I", 0, 2),
			},
			rules: []string{"slot-exclusion"},
		},
		{
			name: "attachment out of arrival order",
			events: []trace.Event{
				ev(trace.Arrived, "I", -1, 1),
				ev(trace.Arrived, "I", -1, 2),
				ev(trace.Attached, "I", 0, 2), // call 1 arrived first
				ev(trace.Attached, "I", 1, 1),
				ev(trace.Accepted, "I", 0, 2),
				ev(trace.Combined, "I", 0, 2),
				ev(trace.Accepted, "I", 1, 1),
				ev(trace.Combined, "I", 1, 1),
			},
			rules: []string{"attach-not-fifo"},
		},
		{
			name: "double terminal",
			events: append(fullI(1, 0),
				ev(trace.Failed, "I", 0, 1)),
			rules: []string{"double-terminal"},
		},
		{
			name: "restart requeue without restart marker",
			events: []trace.Event{
				ev(trace.Arrived, "I", -1, 1),
				ev(trace.Attached, "I", 0, 1),
				ev(trace.Accepted, "I", 0, 1),
				ev(trace.Attached, "I", 0, 1), // requeue, but no MgrRestart seen
				ev(trace.Accepted, "I", 0, 1),
				ev(trace.Combined, "I", 0, 1),
			},
			rules: []string{"requeue-without-restart"},
		},
		{
			name: "stream ends with live call",
			events: []trace.Event{
				ev(trace.Arrived, "I", -1, 1),
			},
			rules: []string{"call-not-terminated"},
		},
		{
			name: "slot lies about its element",
			events: []trace.Event{
				ev(trace.Arrived, "I", -1, 1),
				ev(trace.Attached, "I", 0, 1),
				ev(trace.Accepted, "I", 1, 1), // attached to 0, accepted claims 1
				ev(trace.Combined, "I", 0, 1),
			},
			rules: []string{"slot-mismatch"},
		},
		{
			name: "accept on a non-intercepted entry",
			events: []trace.Event{
				ev(trace.Arrived, "D", -1, 1),
				ev(trace.Attached, "D", 0, 1),
				ev(trace.Accepted, "D", 0, 1),
				ev(trace.Started, "D", 0, 1),
				ev(trace.Finished, "D", 0, 1),
			},
			// The bogus accept also derails start and finish downstream.
			rules: []string{"accept-not-intercepted", "bad-start", "finish-without-await"},
		},
		{
			name: "shed of a running call",
			events: []trace.Event{
				ev(trace.Arrived, "I", -1, 1),
				ev(trace.Attached, "I", 0, 1),
				ev(trace.Accepted, "I", 0, 1),
				ev(trace.Started, "I", 0, 1),
				ev(trace.Shed, "I", 0, 1),
			},
			rules: []string{"bad-shed"},
		},
		{
			name: "start skips the manager's accept",
			events: []trace.Event{
				ev(trace.Arrived, "I", -1, 1),
				ev(trace.Attached, "I", 0, 1),
				ev(trace.Started, "I", 0, 1), // intercepted: must be accepted first
				ev(trace.Ready, "I", 0, 1),
				ev(trace.Awaited, "I", 0, 1),
				ev(trace.Finished, "I", 0, 1),
			},
			rules: []string{"bad-start", "bad-ready", "bad-await", "finish-without-await"},
		},
		{
			name: "event for a call that never arrived",
			events: []trace.Event{
				ev(trace.Attached, "I", 0, 7),
			},
			rules: []string{"attach-without-arrival"},
		},
		{
			name: "undeclared entry",
			events: []trace.Event{
				ev(trace.Arrived, "ghost", -1, 1),
			},
			rules: []string{"unknown-entry"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantRules(t, Check(tc.events, metaFixture()), tc.rules...)
		})
	}
}

func TestCheckOutcomesAccounting(t *testing.T) {
	endorsedOne := fullI(1, 0) // one Finished on I
	cases := []struct {
		name     string
		outcomes map[string]Outcome
		rules    []string
	}{
		{"balanced", map[string]Outcome{"I": {OK: 1}}, nil},
		{"result without finish", map[string]Outcome{"I": {OK: 2}}, []string{"result-without-finish"}},
		{"finish without result", map[string]Outcome{"I": {OK: 0}}, []string{"finish-without-result"}},
		{"error accounting", map[string]Outcome{"I": {OK: 1, Err: 1}}, []string{"error-accounting"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantRules(t, CheckOutcomes(endorsedOne, tc.outcomes), tc.rules...)
		})
	}
}

func TestCheckKeyOrder(t *testing.T) {
	cases := []struct {
		name  string
		execs []KeyedExec
		rules []string
	}{
		{
			name: "clean ledger",
			execs: []KeyedExec{
				{"k1", "c1", 0, "s0", 0},
				{"k2", "c1", 0, "s1", 0},
				{"k1", "c2", 0, "s0", 0},
				{"k1", "c1", 1, "s0", 0},
				{"k2", "c1", 1, "s1", 0},
			},
		},
		{
			name: "key splits across shards",
			execs: []KeyedExec{
				{"k1", "c1", 0, "s0", 0},
				{"k1", "c1", 1, "s2", 0},
			},
			rules: []string{"key-affinity"},
		},
		{
			name: "per-key FIFO violated",
			execs: []KeyedExec{
				{"k1", "c1", 1, "s0", 0},
				{"k1", "c1", 0, "s0", 0},
			},
			rules: []string{"per-key-fifo", "per-key-fifo"},
		},
		{
			name: "duplicate execution",
			execs: []KeyedExec{
				{"k1", "c1", 0, "s0", 0},
				{"k1", "c1", 0, "s0", 0},
				{"k1", "c1", 1, "s0", 0},
			},
			rules: []string{"at-most-once"},
		},
		{
			// A handoff is a shard change accompanied by an epoch bump:
			// legal, and FIFO continues across the move.
			name: "handoff moves key with epoch bump",
			execs: []KeyedExec{
				{"k1", "c1", 0, "n0", 1},
				{"k1", "c1", 1, "n0", 1},
				{"k1", "c1", 2, "n3", 2},
				{"k1", "c2", 0, "n3", 2},
			},
		},
		{
			// Same-epoch shard change is still a split even when a later
			// epoch made moves legal for other keys.
			name: "key splits within an epoch",
			execs: []KeyedExec{
				{"k1", "c1", 0, "n0", 2},
				{"k1", "c1", 1, "n3", 2},
			},
			rules: []string{"key-affinity"},
		},
		{
			// An execution at the old placement after the key moved on:
			// the old owner kept serving a key it handed off.
			name: "epoch regresses",
			execs: []KeyedExec{
				{"k1", "c1", 0, "n0", 1},
				{"k1", "c1", 1, "n3", 2},
				{"k1", "c1", 2, "n0", 1},
			},
			rules: []string{"epoch-regress"},
		},
		{
			// Duplicate handoff forward executed twice at the new home:
			// at-most-once must still catch it across the epoch boundary.
			name: "duplicate across handoff",
			execs: []KeyedExec{
				{"k1", "c1", 0, "n0", 1},
				{"k1", "c1", 1, "n0", 1},
				{"k1", "c1", 1, "n3", 2},
			},
			rules: []string{"at-most-once"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantRules(t, CheckKeyOrder(tc.execs), tc.rules...)
		})
	}
}
