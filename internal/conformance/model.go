package conformance

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// EntryMeta is the static declaration the model needs about one entry:
// arities, hidden-array width and the manager's intercepts clause. It is
// the model-side mirror of core.EntrySpec + core.InterceptSpec.
type EntryMeta struct {
	Name          string
	Params        int
	Results       int
	Array         int
	HiddenParams  int
	HiddenResults int
	Intercepted   bool
	IPParams      int
	IPResults     int
}

// MetaFor extracts the model metadata for every entry of a live object.
func MetaFor(o *core.Object) map[string]EntryMeta {
	out := make(map[string]EntryMeta)
	for _, name := range o.Entries() {
		spec, ok := o.EntryInfo(name)
		if !ok {
			continue
		}
		ic, ipp, ipr := o.EntryIntercepted(name)
		out[name] = EntryMeta{
			Name:          name,
			Params:        spec.Params,
			Results:       spec.Results,
			Array:         spec.Array,
			HiddenParams:  spec.HiddenParams,
			HiddenResults: spec.HiddenResults,
			Intercepted:   ic,
			IPParams:      ipp,
			IPResults:     ipr,
		}
	}
	return out
}

// Divergence is one disagreement between the reference model and an
// observed trace: the implementation performed a transition the paper's
// semantics do not allow.
type Divergence struct {
	Rule   string // stable identifier, e.g. "slot-exclusion"
	Entry  string
	CallID uint64
	Index  int // index into the event stream; -1 for end-of-run checks
	Detail string
}

// String implements fmt.Stringer.
func (d Divergence) String() string {
	at := "end-of-run"
	if d.Index >= 0 {
		at = fmt.Sprintf("event %d", d.Index)
	}
	return fmt.Sprintf("[%s] %s.%d at %s: %s", d.Rule, d.Entry, d.CallID, at, d.Detail)
}

// callState is the model's view of one call's position in the paper's
// lifecycle (§2.3, §2.5): the slot state machine
// free→attached→accepted→started→ready→awaited plus the pre-attachment
// wait queue and the terminal outcomes.
type callState int

const (
	csArrived callState = iota + 1
	csAttached
	csAccepted
	csStarted
	csReady
	csAwaited
	csTerminal
)

func (s callState) String() string {
	switch s {
	case csArrived:
		return "arrived"
	case csAttached:
		return "attached"
	case csAccepted:
		return "accepted"
	case csStarted:
		return "started"
	case csReady:
		return "ready"
	case csAwaited:
		return "awaited"
	case csTerminal:
		return "terminal"
	default:
		return fmt.Sprintf("callState(%d)", int(s))
	}
}

// callInfo tracks one call through the model.
type callInfo struct {
	entry       string
	state       callState
	slot        int // -1 until attached
	everStarted bool
	terminal    trace.Kind
}

// entryModel tracks per-entry model state: the arrival order (for the
// FIFO-attachment rule) and hidden-array occupancy (for exclusion).
type entryModel struct {
	arrivals []uint64       // ids arrived and not yet attached, FIFO
	slots    map[int]uint64 // array element -> occupying call id
}

// checker interprets a trace stream against the reference model.
type checker struct {
	meta     map[string]EntryMeta
	calls    map[uint64]*callInfo
	entries  map[string]*entryModel
	closing  bool // Closed marker seen
	poisoned bool // Poisoned marker seen
	requeues int  // restart-requeue transitions observed
	restarts int  // MgrRestart markers observed
	divs     []Divergence
}

// Check replays a trace event stream against the reference model and
// reports every divergence, including end-of-stream completeness checks
// (a closed object must leave no live call behind).
//
// meta must describe every entry appearing in the stream. The model
// understands the close/poison relaxations: after the Closed or Poisoned
// marker a call may jump straight to Failed from any live state, and a
// started body of an intercepted entry may record Finished without the
// manager's await (the manager is gone; the runtime terminates directly).
func Check(events []trace.Event, meta map[string]EntryMeta) []Divergence {
	c := &checker{
		meta:    meta,
		calls:   make(map[uint64]*callInfo),
		entries: make(map[string]*entryModel),
	}
	for i, ev := range events {
		c.step(i, ev)
	}
	c.finish()
	return c.divs
}

func (c *checker) fail(idx int, ev trace.Event, rule, format string, args ...any) {
	c.divs = append(c.divs, Divergence{
		Rule:   rule,
		Entry:  ev.Entry,
		CallID: ev.CallID,
		Index:  idx,
		Detail: fmt.Sprintf(format, args...),
	})
}

func (c *checker) entryModelFor(name string) *entryModel {
	em := c.entries[name]
	if em == nil {
		em = &entryModel{slots: make(map[int]uint64)}
		c.entries[name] = em
	}
	return em
}

// terminalKind reports whether k ends a call's lifecycle.
func terminalKind(k trace.Kind) bool {
	switch k {
	case trace.Finished, trace.Combined, trace.Failed, trace.Shed:
		return true
	}
	return false
}

func (c *checker) step(idx int, ev trace.Event) {
	switch ev.Kind {
	case trace.Closed:
		c.closing = true
		return
	case trace.Poisoned:
		c.poisoned = true
		return
	case trace.MgrRestart:
		// The restart marker reuses CallID as a restart ordinal; it is not
		// a call event. Requeue transitions are validated via c.requeues.
		c.restarts++
		return
	case trace.Stalled, trace.LinkUp, trace.LinkDown, trace.Retried, trace.Replayed:
		return // informational; no lifecycle transition
	}

	relaxed := c.closing || c.poisoned
	m, haveMeta := c.meta[ev.Entry]
	if !haveMeta && ev.Kind != trace.Shed {
		c.fail(idx, ev, "unknown-entry", "event %v for undeclared entry %q", ev.Kind, ev.Entry)
		return
	}
	ci := c.calls[ev.CallID]

	switch ev.Kind {
	case trace.Arrived:
		if ci != nil {
			c.fail(idx, ev, "duplicate-arrival", "call already %v", ci.state)
			return
		}
		c.calls[ev.CallID] = &callInfo{entry: ev.Entry, state: csArrived, slot: -1}
		em := c.entryModelFor(ev.Entry)
		em.arrivals = append(em.arrivals, ev.CallID)

	case trace.Shed:
		// ShedRejectNewest burns a fresh id with no Arrived event;
		// ShedRejectOldest evicts a pending (arrived or attached) call.
		if ci == nil {
			c.calls[ev.CallID] = &callInfo{entry: ev.Entry, state: csTerminal, slot: -1, terminal: ev.Kind}
			return
		}
		if ci.state != csArrived && ci.state != csAttached {
			c.fail(idx, ev, "bad-shed", "shed from state %v; only pending calls may be shed", ci.state)
		}
		c.terminate(ci, ev)

	case trace.Attached:
		if ci == nil {
			c.fail(idx, ev, "attach-without-arrival", "attached call never arrived")
			return
		}
		em := c.entryModelFor(ev.Entry)
		switch ci.state {
		case csArrived:
			// §2.5: waiting requests are attached to free elements in
			// arrival order. Skip arrivals that left the queue early
			// (withdrawn, shed or failed before attachment).
			for len(em.arrivals) > 0 {
				head := em.arrivals[0]
				if hc := c.calls[head]; hc != nil && hc.state == csTerminal {
					em.arrivals = em.arrivals[1:]
					continue
				}
				break
			}
			if len(em.arrivals) == 0 || em.arrivals[0] != ev.CallID {
				c.fail(idx, ev, "attach-not-fifo",
					"attached out of arrival order (queue head %v)", queueHead(em.arrivals))
			}
			c.dequeue(em, ev.CallID)
		case csAccepted:
			// Manager-restart requeue: accepted-but-unstarted calls
			// re-attach for the next incarnation (docs/SUPERVISION.md).
			c.requeues++
			if ev.Slot != ci.slot {
				c.fail(idx, ev, "requeue-slot-change", "requeued to element %d, was %d", ev.Slot, ci.slot)
			}
		default:
			c.fail(idx, ev, "bad-attach", "attach from state %v", ci.state)
			return
		}
		if ev.Slot < 0 || ev.Slot >= m.Array {
			c.fail(idx, ev, "slot-range", "element %d outside array [0,%d)", ev.Slot, m.Array)
			return
		}
		if owner, busy := em.slots[ev.Slot]; busy && owner != ev.CallID {
			c.fail(idx, ev, "slot-exclusion",
				"element %d already occupied by call %d", ev.Slot, owner)
		}
		em.slots[ev.Slot] = ev.CallID
		ci.slot = ev.Slot
		ci.state = csAttached

	case trace.Accepted:
		if ci == nil {
			c.fail(idx, ev, "accept-without-arrival", "accepted call never arrived")
			return
		}
		if !m.Intercepted {
			c.fail(idx, ev, "accept-not-intercepted", "accept on entry outside the intercepts clause")
		}
		if ci.state != csAttached {
			c.fail(idx, ev, "bad-accept", "accept from state %v, want attached", ci.state)
			return
		}
		c.checkSlot(idx, ev, ci)
		ci.state = csAccepted

	case trace.Started:
		if ci == nil {
			c.fail(idx, ev, "start-without-arrival", "started call never arrived")
			return
		}
		// Intercepted entries start only by manager decision after accept
		// (§2.3); non-intercepted entries start directly on attachment.
		want := csAttached
		if m.Intercepted {
			want = csAccepted
		}
		if ci.state != want {
			c.fail(idx, ev, "bad-start", "start from state %v, want %v", ci.state, want)
			return
		}
		c.checkSlot(idx, ev, ci)
		ci.everStarted = true
		ci.state = csStarted

	case trace.Ready:
		if ci == nil {
			c.fail(idx, ev, "ready-without-arrival", "ready call never arrived")
			return
		}
		switch ci.state {
		case csStarted:
		case csAwaited:
			// Manager-restart requeue: awaited-but-unfinished calls become
			// ready again for the next incarnation.
			c.requeues++
		default:
			c.fail(idx, ev, "bad-ready", "ready from state %v", ci.state)
			return
		}
		c.checkSlot(idx, ev, ci)
		ci.state = csReady

	case trace.Awaited:
		if ci == nil {
			c.fail(idx, ev, "await-without-arrival", "awaited call never arrived")
			return
		}
		if ci.state != csReady {
			c.fail(idx, ev, "bad-await", "await from state %v, want ready", ci.state)
			return
		}
		c.checkSlot(idx, ev, ci)
		ci.state = csAwaited

	case trace.Finished:
		if ci == nil {
			c.fail(idx, ev, "finish-without-arrival", "finished call never arrived")
			return
		}
		// Intercepted entries require the manager's full endorsement:
		// await must precede finish (§2.3). During close/poison the manager
		// is gone and the runtime terminates started bodies directly.
		switch {
		case !m.Intercepted && ci.state == csStarted:
		case m.Intercepted && ci.state == csAwaited:
		case m.Intercepted && ci.state == csStarted && relaxed:
		default:
			c.fail(idx, ev, "finish-without-await",
				"finish from state %v (intercepted=%v, close/poison=%v)", ci.state, m.Intercepted, relaxed)
		}
		c.terminate(ci, ev)

	case trace.Combined:
		if ci == nil {
			c.fail(idx, ev, "combine-without-arrival", "combined call never arrived")
			return
		}
		// §2.7: combining answers an accepted request without starting it.
		if ci.state != csAccepted {
			c.fail(idx, ev, "bad-combine", "combine from state %v, want accepted", ci.state)
		}
		if ci.everStarted {
			c.fail(idx, ev, "combine-after-start", "combined request also ran a body")
		}
		if m.IPParams != m.Params {
			c.fail(idx, ev, "combine-partial-params",
				"combining with %d of %d params intercepted", m.IPParams, m.Params)
		}
		c.terminate(ci, ev)

	case trace.Failed:
		if ci == nil {
			c.fail(idx, ev, "fail-without-arrival", "failed call never arrived")
			return
		}
		if ci.state == csTerminal {
			c.fail(idx, ev, "double-terminal", "failed after %v", ci.terminal)
			return
		}
		c.terminate(ci, ev)

	default:
		c.fail(idx, ev, "unknown-kind", "unrecognised event kind %v", ev.Kind)
	}
}

// checkSlot verifies an in-lifecycle event names the call's own element.
func (c *checker) checkSlot(idx int, ev trace.Event, ci *callInfo) {
	if ev.Slot != ci.slot {
		c.fail(idx, ev, "slot-mismatch", "event names element %d, call is bound to %d", ev.Slot, ci.slot)
	}
}

// terminate moves a call to its terminal state, frees its array element
// and flags repeated terminals.
func (c *checker) terminate(ci *callInfo, ev trace.Event) {
	if ci.state == csTerminal {
		c.divs = append(c.divs, Divergence{
			Rule:   "double-terminal",
			Entry:  ev.Entry,
			CallID: ev.CallID,
			Index:  -1,
			Detail: fmt.Sprintf("%v after %v", ev.Kind, ci.terminal),
		})
		return
	}
	if em := c.entries[ci.entry]; em != nil {
		if ci.slot >= 0 && em.slots[ci.slot] == ev.CallID {
			delete(em.slots, ci.slot)
		}
		c.dequeue(em, ev.CallID)
	}
	ci.state = csTerminal
	ci.terminal = ev.Kind
}

// dequeue removes id from the entry's arrival queue wherever it sits.
func (c *checker) dequeue(em *entryModel, id uint64) {
	for i, q := range em.arrivals {
		if q == id {
			em.arrivals = append(em.arrivals[:i], em.arrivals[i+1:]...)
			return
		}
	}
}

func queueHead(q []uint64) any {
	if len(q) == 0 {
		return "<empty>"
	}
	return q[0]
}

// finish runs the end-of-stream checks: every call terminal, restart
// requeues justified by a restart marker.
func (c *checker) finish() {
	for id, ci := range c.calls {
		if ci.state != csTerminal {
			c.divs = append(c.divs, Divergence{
				Rule:   "call-not-terminated",
				Entry:  ci.entry,
				CallID: id,
				Index:  -1,
				Detail: fmt.Sprintf("stream ended with call in state %v", ci.state),
			})
		}
	}
	if c.requeues > 0 && c.restarts == 0 {
		c.divs = append(c.divs, Divergence{
			Rule:   "requeue-without-restart",
			Index:  -1,
			Detail: fmt.Sprintf("%d restart-requeue transitions but no MgrRestart marker", c.requeues),
		})
	}
}

// Outcome tallies what an entry's callers observed, for the result-delivery
// audit: a caller must receive results exactly when the manager endorsed
// the call's termination (finish, §2.3) or combined it (§2.7).
type Outcome struct {
	OK  int // calls that returned results to their caller
	Err int // calls that returned an error
}

// CheckOutcomes cross-checks caller-observed outcomes against the trace:
// #results delivered must equal #finished + #combined per entry (no result
// without a finish endorsement, no endorsement that delivered nothing),
// and #errors must equal #failed + #shed. It assumes an error-free run —
// a body that returns an error produces a Finished event with an error
// outcome and should be reported separately by the harness.
func CheckOutcomes(events []trace.Event, outcomes map[string]Outcome) []Divergence {
	type counts struct{ finished, combined, failed, shed int }
	byEntry := make(map[string]*counts)
	for _, ev := range events {
		cnt := byEntry[ev.Entry]
		if cnt == nil {
			cnt = &counts{}
			byEntry[ev.Entry] = cnt
		}
		switch ev.Kind {
		case trace.Finished:
			cnt.finished++
		case trace.Combined:
			cnt.combined++
		case trace.Failed:
			cnt.failed++
		case trace.Shed:
			cnt.shed++
		}
	}
	var divs []Divergence
	for entry, out := range outcomes {
		cnt := byEntry[entry]
		if cnt == nil {
			cnt = &counts{}
		}
		if endorsed := cnt.finished + cnt.combined; out.OK != endorsed {
			rule := "result-without-finish"
			if out.OK < endorsed {
				rule = "finish-without-result"
			}
			divs = append(divs, Divergence{
				Rule:  rule,
				Entry: entry,
				Index: -1,
				Detail: fmt.Sprintf("callers saw %d results, trace endorsed %d (finished %d + combined %d)",
					out.OK, endorsed, cnt.finished, cnt.combined),
			})
		}
		if terminalErrs := cnt.failed + cnt.shed; out.Err != terminalErrs {
			divs = append(divs, Divergence{
				Rule:  "error-accounting",
				Entry: entry,
				Index: -1,
				Detail: fmt.Sprintf("callers saw %d errors, trace recorded %d (failed %d + shed %d)",
					out.Err, terminalErrs, cnt.failed, cnt.shed),
			})
		}
	}
	return divs
}
