package conformance

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestScheduleDeterminism: a schedule's decision stream is a pure function
// of its seed and the point sequence — two same-seed schedules fed the same
// points produce identical logs and tallies.
func TestScheduleDeterminism(t *testing.T) {
	s1, s2 := NewSchedule(0xfeed), NewSchedule(0xfeed)
	for i := 0; i < 400; i++ {
		s1.Point(core.SeqSubmit, "o", "e", uint64(i))
		s2.Point(core.SeqSubmit, "o", "e", uint64(i))
	}
	if s1.Points() != 400 || s2.Points() != 400 {
		t.Fatalf("points = %d, %d, want 400", s1.Points(), s2.Points())
	}
	if s1.Counts() != s2.Counts() {
		t.Fatalf("same-seed tallies differ: %v vs %v", s1.Counts(), s2.Counts())
	}
	l1, l2 := s1.Log(), s2.Log()
	if len(l1) != len(l2) {
		t.Fatalf("log lengths differ: %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("logs diverge at %d: %v vs %v", i, l1[i], l2[i])
		}
	}
	// Different seeds must explore differently.
	s3 := NewSchedule(0xbeef)
	for i := 0; i < 400; i++ {
		s3.Point(core.SeqSubmit, "o", "e", uint64(i))
	}
	l3 := s3.Log()
	same := len(l3) == len(l1)
	if same {
		for i := range l1 {
			if l1[i] != l3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical 400-decision streams")
	}
}

// TestRunConforms: generated programs under perturbed schedules replay
// through the reference model with zero divergences.
func TestRunConforms(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(RunConfig{
				ProgramSeed:  seed,
				ScheduleSeed: seed*2654435761 + 1,
				Clients:      3,
				Ops:          8,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range rep.Divergences {
				t.Errorf("divergence: %s", d)
			}
			if rep.Calls != 24 {
				t.Errorf("calls = %d, want 24", rep.Calls)
			}
			if rep.Points == 0 {
				t.Error("schedule served no decision points — sequencer not wired in")
			}
			if len(rep.Events) == 0 {
				t.Error("no trace events recorded")
			}
		})
	}
}

// TestExploreQuick runs a miniature campaign and expects full conformance.
func TestExploreQuick(t *testing.T) {
	res := Explore(ExploreConfig{Seed: 42, Programs: 6, Schedules: 2}, t.Logf)
	if res.Runs != 12 {
		t.Errorf("runs = %d, want 12", res.Runs)
	}
	for _, f := range res.Failures {
		t.Errorf("failure at %s:\n%s", f.Config, f.Reproducer())
	}
}

func TestExploreDeadline(t *testing.T) {
	res := Explore(ExploreConfig{
		Seed: 1, Programs: 100, Schedules: 100,
		Deadline: time.Now().Add(-time.Second),
	}, nil)
	if !res.Stopped {
		t.Error("expired deadline did not stop the campaign")
	}
	if res.Runs != 0 {
		t.Errorf("runs = %d after expired deadline", res.Runs)
	}
}

func TestFailureReproducer(t *testing.T) {
	f := Failure{
		Config:      RunConfig{ProgramSeed: 0xab, ScheduleSeed: 0xcd, Clients: 2, Ops: 3},
		Divergences: []Divergence{{Rule: "slot-exclusion", Entry: "E0", Index: 4, Detail: "x"}},
	}
	src := f.Reproducer()
	for _, want := range []string{
		"func TestConformanceRepro_ab_cd(t *testing.T)",
		"conformance.Replay(0xab, 0xcd, 2, 3)",
		"slot-exclusion",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("reproducer missing %q:\n%s", want, src)
		}
	}
}

// TestMutantTraceCaught doctors a real run's trace — deleting one Awaited
// event, i.e. pretending the implementation delivered results without the
// manager's endorsement — and requires the checker to flag it. This proves
// the model has teeth against realistic streams, not just hand-built ones.
func TestMutantTraceCaught(t *testing.T) {
	rep, err := Run(RunConfig{ProgramSeed: 1, ScheduleSeed: 99, Clients: 2, Ops: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("baseline run diverged: %v", rep.Divergences)
	}
	// Find an Awaited event whose call went on to Finish, and delete it.
	finished := make(map[uint64]bool)
	for _, ev := range rep.Events {
		if ev.Kind == trace.Finished {
			finished[ev.CallID] = true
		}
	}
	cut := -1
	for i, ev := range rep.Events {
		if ev.Kind == trace.Awaited && finished[ev.CallID] {
			cut = i
			break
		}
	}
	if cut < 0 {
		t.Skip("run produced no awaited+finished call (all combined); pick another seed")
	}
	mutant := append(append([]trace.Event{}, rep.Events[:cut]...), rep.Events[cut+1:]...)
	divs := Check(mutant, rep.Meta)
	if len(divs) == 0 {
		t.Fatal("checker accepted a trace with a deleted Awaited event")
	}
	found := false
	for _, d := range divs {
		if d.Rule == "finish-without-await" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected finish-without-await, got %v", divs)
	}
}

// TestGuardTemporariesDirected pins §2.4 against the live runtime: with
// When and run-time Pri decorations on a width-2 array, guard evaluation
// runs on scratch temporaries — predicates fire at least once per accepted
// call (and extra times for losing candidates), yet exactly one Accepted
// event per call commits and every caller still sees its own untouched
// parameters round-tripped.
func TestGuardTemporariesDirected(t *testing.T) {
	var whenEvals, priEvals atomic.Int64
	rec := trace.NewRecorder(0)
	o, err := core.New("guards",
		core.WithEntry(core.EntrySpec{
			Name: "G", Params: 1, Results: 1, Array: 2,
			Body: func(inv *core.Invocation) error {
				inv.Return("R:" + inv.Param(0).(string))
				return nil
			},
		}),
		core.WithManager(func(m *core.Mgr) {
			_ = m.Loop(
				core.OnAccept("G", func(a *core.Accepted) {
					if _, err := m.Execute(a); err != nil {
						return
					}
				}).When(func(a *core.Accepted) bool {
					whenEvals.Add(1)
					return a.Params[0] != nil // reads the temporary
				}).PriAccept(func(a *core.Accepted) int {
					priEvals.Add(1)
					return len(a.Params[0].(string)) % 3
				}),
			)
		}, core.InterceptPR("G", 1, 0)),
		core.WithTrace(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	meta := MetaFor(o)

	const calls = 12
	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			token := fmt.Sprintf("tok-%d%s", i, strings.Repeat("y", i%3))
			res, err := o.Call("G", token)
			if err != nil {
				errs[i] = err
				return
			}
			if len(res) != 1 || res[0] != "R:"+token {
				errs[i] = fmt.Errorf("call %d: got %v, want R:%s", i, res, token)
			}
		}(i)
	}
	wg.Wait()
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}

	events := rec.Events()
	accepted := 0
	for _, ev := range events {
		if ev.Kind == trace.Accepted {
			accepted++
		}
	}
	if accepted != calls {
		t.Errorf("accepted commits = %d, want exactly %d (guard evaluation must not commit)", accepted, calls)
	}
	if n := whenEvals.Load(); n < calls {
		t.Errorf("When evaluated %d times, want >= %d", n, calls)
	}
	if n := priEvals.Load(); n < calls {
		t.Errorf("PriAccept evaluated %d times, want >= %d", n, calls)
	}
	for _, d := range Check(events, meta) {
		t.Errorf("divergence: %s", d)
	}
}

// TestReplayAgreement: Replay is the reproducer entry point; it must agree
// with Run for the same seeds.
func TestReplayAgreement(t *testing.T) {
	divs, err := Replay(3, 7, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range divs {
		t.Errorf("divergence: %s", d)
	}
}
