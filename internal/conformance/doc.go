// Package conformance is the deterministic conformance harness for the
// ALPS runtime: it checks that internal/core implements the paper's
// primitive semantics (accept / start / await / finish, hidden procedure
// arrays, interception, combining, guarded selection) on every schedule a
// seeded virtual scheduler can provoke.
//
// The harness has four layers (docs/TESTING.md):
//
//  1. A schedule perturbator (Schedule) implementing core.Sequencer: at
//     every scheduling decision point inside the runtime it draws from a
//     seeded PRNG and yields, spins or parks the calling goroutine. The
//     decision stream is a pure function of the seed, so a failing
//     (program, schedule) pair is re-runnable.
//  2. A reference model (Check) — an obviously-correct interpreter of the
//     paper's call lifecycle over abstract histories — driven by the
//     internal/trace event stream the real implementation emits. Any
//     transition the model does not allow is reported as a Divergence:
//     exclusion violations, non-FIFO attachment, combined requests that
//     also ran a body, results delivered without the manager's finish
//     endorsement, and so on.
//  3. A generative layer (GenerateProgram, Run, Explore): random manager
//     programs — entries with hidden arrays of width 1..4, manager styles
//     covering execute, start/await/finish pipelines, request combining
//     and guarded selection with when/pri — exercised by random client
//     workloads under K seeded schedules per program. Failing seeds are
//     shrunk to a minimal reproducer (Shrink, Reproducer).
//  4. Checker invariants reusable outside this package: CheckKeyOrder
//     verifies per-key FIFO execution and at-most-once delivery for the
//     sharding and RPC layers under simulated network chaos,
//     CheckCrashRecovery verifies zero lost acknowledged writes for the
//     durability layer's kill -9 soak (docs/DURABILITY.md), and
//     CheckLinearizable certifies a linearizable per-key history —
//     exactly-once acks, no lost or duplicated effects, session order,
//     real-time precedence — for the replication layer's leader-kill
//     failover soak (docs/REPLICATION.md).
//
// cmd/alpsconform wraps Explore as a CLI for CI and overnight soaking.
package conformance
